package edgetune

import (
	"context"
	"path/filepath"
	"testing"
)

func TestRecommendAllDevices(t *testing.T) {
	recs, err := Recommend(context.Background(), RecommendRequest{
		Workload:    "IC",
		ModelConfig: map[string]float64{"layers": 18},
		Trials:      10,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d recommendations, want one per built-in device", len(recs))
	}
	seen := make(map[string]bool)
	for _, r := range recs {
		seen[r.Device] = true
		if r.BatchSize < 1 || r.Cores < 1 || r.Throughput <= 0 {
			t.Errorf("implausible recommendation: %+v", r)
		}
	}
	if len(seen) != 3 {
		t.Error("duplicate devices in recommendations")
	}
}

func TestRecommendSubsetAndMetric(t *testing.T) {
	recs, err := Recommend(context.Background(), RecommendRequest{
		Workload:    "OD",
		ModelConfig: map[string]float64{"dropout": 0.3},
		Devices:     []string{"rpi3b+"},
		Metric:      MetricEnergy,
		Trials:      8,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Device != "rpi3b+" {
		t.Fatalf("recs = %+v, want only rpi3b+", recs)
	}
}

func TestRecommendValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Recommend(ctx, RecommendRequest{}); err == nil {
		t.Error("missing workload accepted")
	}
	if _, err := Recommend(ctx, RecommendRequest{Workload: "IC"}); err == nil {
		t.Error("missing model config accepted")
	}
	if _, err := Recommend(ctx, RecommendRequest{
		Workload:    "IC",
		ModelConfig: map[string]float64{"layers": 18},
		Devices:     []string{"tpu"},
	}); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestRecommendPersistentStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "recs.json")
	req := RecommendRequest{
		Workload:    "SR",
		ModelConfig: map[string]float64{"embed_dim": 64},
		Trials:      6,
		StorePath:   path,
		Seed:        9,
	}
	first, err := Recommend(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Recommend(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("persisted store returned a different recommendation: %+v vs %+v", first[i], second[i])
		}
	}
}
