package edgetune

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"

	"edgetune/internal/cluster"
	"edgetune/internal/obs"
	"edgetune/internal/obs/flight"
	"edgetune/internal/obs/slo"
)

// ClusterOptions configures a sharded multi-tenant tuning cluster: N
// simulated nodes, each pairing the tuner + inference server with a
// crash-consistent durable store, behind a dispatcher that
// consistent-hash-shards jobs, enforces per-tenant quotas, and ships
// every shard's write-ahead log to a follower for failover.
type ClusterOptions struct {
	// Shards is the node-pair count (default 2).
	Shards int
	// VirtualNodes is the consistent-hash ring's points per shard
	// (default 64).
	VirtualNodes int
	// Dir is the directory holding every node's store files: each shard
	// gets Dir/shard<i>/{primary,follower}. Required.
	Dir string
	// TenantRate and TenantBurst configure the dispatcher's per-tenant
	// token bucket: each tenant earns TenantRate tokens per cluster
	// submission and holds at most TenantBurst (rate 0 disables quotas,
	// burst default 4). Rejections surface as ErrTenantQuota, per-tenant
	// counters, and the cluster/tenant-admission SLO.
	TenantRate  float64
	TenantBurst int
	// Seed drives the cluster's fault injector.
	Seed uint64
	// Faults configures the cluster fault classes (ShardKill,
	// NetPartition, FollowerLag); job-level classes belong on each Job.
	Faults FaultConfig
	// KillShardAfterRungs, when positive, deterministically kills a
	// job's shard at its Nth completed rung (while the shard still has a
	// follower) — the scripted chaos hook the failover gate uses.
	KillShardAfterRungs int
	// SnapshotEvery compacts each primary's WAL after this many records
	// (default 256).
	SnapshotEvery int
	// TracePath, when set, writes the cluster's dispatcher spans (job
	// routing, failovers) as JSON Lines at Close.
	TracePath string
	// DebugAddr, when set (e.g. "localhost:0"), serves the cluster's
	// debug endpoints: the dispatcher registry on /metrics*, plus a
	// merged /metrics/prom where every shard's store instruments carry
	// a shard="<name>" label alongside the unlabeled cluster series.
	DebugAddr string
	// Flight gives every shard its own always-on flight recorder: WAL
	// appends, replication shipping, serving events, and failovers land
	// on the shard's ring, and a shard kill fires the shard-failover
	// trigger. The recorder outlives the failover, so one dossier spans
	// the kill, the promotion, and the resumed run. Incidents (and
	// ClusterReport.Incidents) expose the dossiers.
	Flight bool
	// FlightSlots sizes each shard's ring (default 65536).
	FlightSlots int
	// IncidentsDir, when set (implies Flight), writes every shard's
	// incident dossiers at Close/Drain as JSON artefacts named
	// <shard>-incident-<seq>-<trigger>.json.
	IncidentsDir string
}

// Cluster is a running sharded tuning cluster. Tune routes jobs to
// shards; Close (or Drain) seals every node's store.
type Cluster struct {
	inner        *cluster.Cluster
	reg          *obs.Registry
	ev           *slo.Evaluator
	tracer       *obs.Tracer
	path         string
	incidentsDir string
	dbg          *obs.DebugServer
}

// ClusterReport is a completed cluster job's outcome.
type ClusterReport struct {
	*Report
	// Shard is the node the job ran on.
	Shard string
	// FailedOver reports that the job survived its shard's death by
	// WAL-shipped failover to the follower.
	FailedOver bool
}

// NewCluster starts a cluster. Callers must Close (or Drain) it.
func NewCluster(opts ClusterOptions) (*Cluster, error) {
	if opts.IncidentsDir != "" {
		opts.Flight = true
	}
	reg := obs.NewRegistry()
	ev := slo.NewEvaluator()
	var tracer *obs.Tracer
	if opts.TracePath != "" {
		tracer = obs.NewTracer()
	}
	inner, err := cluster.New(cluster.Options{
		Shards:              opts.Shards,
		VirtualNodes:        opts.VirtualNodes,
		Dir:                 opts.Dir,
		TenantRate:          opts.TenantRate,
		TenantBurst:         opts.TenantBurst,
		Seed:                opts.Seed,
		Fault:               opts.Faults.toInternal(),
		KillShardAfterRungs: opts.KillShardAfterRungs,
		SnapshotEvery:       opts.SnapshotEvery,
		Metrics:             reg,
		SLO:                 ev,
		Trace:               tracer,
		Flight:              opts.Flight,
		FlightSlots:         opts.FlightSlots,
	})
	if err != nil {
		return nil, err
	}
	c := &Cluster{inner: inner, reg: reg, ev: ev, tracer: tracer,
		path: opts.TracePath, incidentsDir: opts.IncidentsDir}
	if opts.DebugAddr != "" {
		dbg, err := obs.StartDebugServerOpts(opts.DebugAddr, obs.DebugOptions{
			Registry: reg,
			Handlers: map[string]http.Handler{
				// Override the single-registry exposition with the
				// merged cluster view: dispatcher series unlabeled,
				// each shard's store series labeled shard="<name>".
				"/metrics/prom": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
					w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
					parts := []obs.LabeledSnapshot{{Snapshot: c.reg.Snapshot()}}
					shards := c.inner.ShardMetrics()
					names := make([]string, 0, len(shards))
					for name := range shards {
						names = append(names, name)
					}
					sort.Strings(names)
					for _, name := range names {
						parts = append(parts, obs.LabeledSnapshot{Value: name, Snapshot: shards[name]})
					}
					obs.WritePrometheusLabeled(w, "shard", parts)
				}),
			},
		})
		if err != nil {
			inner.Close()
			return nil, fmt.Errorf("edgetune: cluster debug server: %w", err)
		}
		c.dbg = dbg
	}
	return c, nil
}

// DebugAddr reports the bound debug listen address ("" when disabled).
func (c *Cluster) DebugAddr() string { return c.dbg.Addr() }

// Tune runs one job on the shard owning its key (the tenant/workload
// pair), failing over mid-job if that shard's primary is killed. Jobs
// sharing a shard serialize and share its historical store; jobs on
// different shards run concurrently. Job options that configure
// single-node storage (StorePath, StoreWAL, and the disk-fault hooks
// that ride on them) are rejected — the cluster's shards own their
// durable stores.
func (c *Cluster) Tune(ctx context.Context, job Job) (*ClusterReport, error) {
	if job.StorePath != "" || job.StoreWAL {
		return nil, errors.New("edgetune: cluster jobs must not set StorePath/StoreWAL (shards own their stores)")
	}
	opts, err := job.coreOptions()
	if err != nil {
		return nil, err
	}
	// Per-job observability: each job's metrics, SLO events, and
	// resilience counters stay on its own registry (exactly as a
	// single-node Tune), with the dispatcher's cluster instruments kept
	// separately on the cluster registry.
	opts.Metrics = obs.NewRegistry()
	opts.SLO = slo.NewEvaluator()
	opts.Trace = c.tracer

	tenant := job.Tenant
	if tenant == "" {
		tenant = "default"
	}
	res, err := c.inner.Submit(ctx, cluster.Job{
		Key:    fmt.Sprintf("%s/%s", tenant, job.Workload),
		Tenant: tenant,
		Opts:   opts,
	})
	if err != nil {
		return nil, err
	}
	return &ClusterReport{
		Report:     buildReport(res.Result),
		Shard:      res.Shard,
		FailedOver: res.FailedOver,
	}, nil
}

// Shards lists the cluster's shard names.
func (c *Cluster) Shards() []string { return c.inner.Shards() }

// Metrics snapshots the dispatcher's cluster-level instruments: job
// routing, failovers, WAL shipping, and per-tenant quota rejections.
func (c *Cluster) Metrics() MetricsReport {
	return buildMetricsReport(c.reg.Snapshot())
}

// ShardMetrics snapshots each shard's store instruments, keyed by shard
// name — the same per-shard series the debug endpoint's merged
// /metrics/prom labels with shard="<name>".
func (c *Cluster) ShardMetrics() map[string]MetricsReport {
	shards := c.inner.ShardMetrics()
	out := make(map[string]MetricsReport, len(shards))
	for name, snap := range shards {
		out[name] = buildMetricsReport(snap)
	}
	return out
}

// SLO evaluates the cluster's service-level objectives (currently the
// tenant-admission objective).
func (c *Cluster) SLO() SLOReport {
	return buildSLOReport(c.ev.Snapshot())
}

// Incidents summarises each shard's flight-recorder dossiers, keyed by
// shard name (empty without ClusterOptions.Flight, or when no trigger
// fired). Call after the shard's jobs have finished; the build is
// repeatable. The full artefacts land in IncidentsDir at Close/Drain.
func (c *Cluster) Incidents() map[string][]Incident {
	out := make(map[string][]Incident)
	for name, ds := range c.inner.Incidents() {
		sums := make([]Incident, 0, len(ds))
		for _, d := range ds {
			sums = append(sums, Incident{
				Trigger:   d.Trigger.Kind,
				Detail:    d.Trigger.Detail,
				AtMinutes: d.Trigger.At.Minutes(),
				Seq:       d.Trigger.Seq,
				Events:    len(d.Events),
				Truncated: d.Truncated,
				Digest:    d.Digest,
			})
		}
		out[name] = sums
	}
	return out
}

// Drain stops the cluster gracefully: in-flight jobs finish (bounded
// by ctx) before every shard's store is sealed.
func (c *Cluster) Drain(ctx context.Context) error {
	err := c.saveIncidents(c.inner.Drain(ctx))
	c.dbg.Close()
	return c.saveTrace(err)
}

// Close cancels in-flight jobs and seals every shard's store.
// Idempotent.
func (c *Cluster) Close() error {
	err := c.saveIncidents(c.inner.Close())
	c.dbg.Close()
	return c.saveTrace(err)
}

func (c *Cluster) saveTrace(err error) error {
	if c.tracer == nil || c.path == "" {
		return err
	}
	path := c.path
	c.path = "" // write once
	if serr := c.tracer.SaveJSONL(path); serr != nil && err == nil {
		err = fmt.Errorf("edgetune: write cluster trace: %w", serr)
	}
	return err
}

// saveIncidents writes every shard's dossiers under the shard's name
// prefix, once, at shutdown — after the jobs (and any failover rerun)
// have quiesced, so the artefacts are the deterministic final builds.
func (c *Cluster) saveIncidents(err error) error {
	if c.incidentsDir == "" {
		return err
	}
	dir := c.incidentsDir
	c.incidentsDir = "" // write once
	for shard, ds := range c.inner.Incidents() {
		if _, werr := flight.WriteDossiers(dir, shard, ds); werr != nil && err == nil {
			err = fmt.Errorf("edgetune: write cluster incidents: %w", werr)
		}
	}
	return err
}

// ErrTenantQuota is returned by Cluster.Tune when the submitting
// tenant's token bucket is empty.
var ErrTenantQuota = cluster.ErrTenantQuota
