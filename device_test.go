package edgetune

import (
	"context"
	"testing"
)

func jetsonLike() *DeviceProfile {
	return &DeviceProfile{
		Name:               "jetson-like",
		Cores:              6,
		MinFrequencyGHz:    0.8,
		MaxFrequencyGHz:    2.2,
		FlopsPerCorePerGHz: 2e9,
		MemBytesPerSec:     6e9,
		IdlePowerW:         3,
		CorePowerW:         2,
	}
}

func TestTuneCustomDevice(t *testing.T) {
	job := quickJob()
	job.CustomDevice = jetsonLike()
	rep, err := Tune(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Device != "jetson-like" {
		t.Errorf("device = %q, want jetson-like", rep.Device)
	}
	rec := rep.Recommendation
	if rec.Device != "jetson-like" || rec.Cores > 6 {
		t.Errorf("recommendation ignored the custom device: %+v", rec)
	}
	if rec.FrequencyGHz < 0.8 || rec.FrequencyGHz > 2.2 {
		t.Errorf("recommended frequency %v outside the custom DVFS range", rec.FrequencyGHz)
	}
}

func TestTuneCustomDeviceValidation(t *testing.T) {
	job := quickJob()
	bad := jetsonLike()
	bad.Cores = 0
	job.CustomDevice = bad
	if _, err := Tune(context.Background(), job); err == nil {
		t.Error("invalid custom device accepted")
	}
	collide := jetsonLike()
	collide.Name = "i7"
	job.CustomDevice = collide
	if _, err := Tune(context.Background(), job); err == nil {
		t.Error("built-in name collision accepted")
	}
}

func TestCustomDevicePrecedesNamedDevice(t *testing.T) {
	job := quickJob()
	job.Device = "rpi3b+"
	job.CustomDevice = jetsonLike()
	rep, err := Tune(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Device != "jetson-like" {
		t.Errorf("custom device did not take precedence: %q", rep.Device)
	}
}
