package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"sort"

	"edgetune/internal/obs/flight"
)

// runIncident dispatches the flight-recorder dossier subcommands.
func runIncident(args []string, out io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: tracetool incident <show|diff> [flags] args")
	}
	switch args[0] {
	case "show":
		return runIncidentShow(args[1:], out)
	case "diff":
		return runIncidentDiff(args[1:], out)
	default:
		return fmt.Errorf("unknown incident subcommand %q (want show or diff)", args[0])
	}
}

// kindCounts tallies a dossier's window events by kind, sorted.
func kindCounts(d flight.Dossier) (kinds []string, counts map[string]int) {
	counts = make(map[string]int)
	for _, e := range d.Events {
		counts[e.Kind]++
	}
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds, counts
}

// runIncidentShow prints one dossier's summary — trigger, window,
// event-kind tally, and the embedded mini-analysis — after verifying
// the stored digest against the content. Exit 2 on a digest mismatch:
// the artefact was edited, truncated, or mixed up after it was cut.
func runIncidentShow(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracetool incident show", flag.ContinueOnError)
	var (
		asJSON = fs.Bool("json", false, "re-emit the verified dossier as JSON instead of text")
		events = fs.Bool("events", false, "print the full event timeline, not just the per-kind tally")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: tracetool incident show [-json] [-events] dossier.json")
	}
	d, err := flight.ReadDossier(fs.Arg(0))
	if err != nil {
		return err
	}
	want, got, ok := d.Verify()
	if !ok {
		return fmt.Errorf("%w: dossier digest mismatch (artefact says %s, content hashes to %s)",
			errGate, want, got)
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(d)
	}
	fmt.Fprintf(out, "trigger  #%d %s (%s) at %s\n", d.Trigger.Seq, d.Trigger.Kind, d.Trigger.Detail, d.Trigger.At)
	fmt.Fprintf(out, "window   %s .. %s\n", d.Window.From, d.Window.To)
	fmt.Fprintf(out, "events   %d in window, %d dropped from ring, truncated=%v\n",
		len(d.Events), d.Dropped, d.Truncated)
	kinds, counts := kindCounts(d)
	for _, k := range kinds {
		fmt.Fprintf(out, "  %-10s %d\n", k, counts[k])
	}
	if *events {
		fmt.Fprintf(out, "timeline:\n")
		for _, e := range d.Events {
			fmt.Fprintf(out, "  %12s  %-10s %-24s %-12s a=%d b=%d\n",
				e.Time, e.Kind, e.Subject, e.Detail, e.A, e.B)
		}
	}
	if d.Analysis != nil {
		fmt.Fprintf(out, "analysis %d span classes, %d spans in window\n",
			len(d.Analysis.Classes), d.Analysis.Spans)
	}
	fmt.Fprintf(out, "digest   %s (verified)\n", d.Digest)
	return nil
}

// runIncidentDiff compares two dossiers field by field. Two same-seed
// runs must cut byte-identical dossiers, so CI diffs a fresh artefact
// against a rerun's; exit 2 on any divergence. Both inputs are
// digest-verified first — diffing a tampered artefact is meaningless.
func runIncidentDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracetool incident diff", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return errors.New("usage: tracetool incident diff a.json b.json")
	}
	var ds [2]flight.Dossier
	for i := 0; i < 2; i++ {
		d, err := flight.ReadDossier(fs.Arg(i))
		if err != nil {
			return err
		}
		if want, got, ok := d.Verify(); !ok {
			return fmt.Errorf("%w: %s digest mismatch (artefact says %s, content hashes to %s)",
				errGate, fs.Arg(i), want, got)
		}
		ds[i] = d
	}
	a, b := ds[0], ds[1]

	diffs := 0
	check := func(field, av, bv string) {
		if av == bv {
			fmt.Fprintf(out, "ok   %-10s %s\n", field, av)
		} else {
			diffs++
			fmt.Fprintf(out, "DIFF %-10s %s != %s\n", field, av, bv)
		}
	}
	check("trigger", a.Trigger.Kind, b.Trigger.Kind)
	check("detail", a.Trigger.Detail, b.Trigger.Detail)
	check("at", a.Trigger.At.String(), b.Trigger.At.String())
	check("window", fmt.Sprintf("%s..%s", a.Window.From, a.Window.To),
		fmt.Sprintf("%s..%s", b.Window.From, b.Window.To))
	check("events", fmt.Sprint(len(a.Events)), fmt.Sprint(len(b.Events)))
	ka, ca := kindCounts(a)
	kb, cb := kindCounts(b)
	union := append(ka, kb...)
	sort.Strings(union)
	for i, k := range union {
		if i > 0 && union[i-1] == k {
			continue
		}
		check("  "+k, fmt.Sprint(ca[k]), fmt.Sprint(cb[k]))
	}
	check("digest", a.Digest, b.Digest)
	if diffs > 0 {
		return fmt.Errorf("%w: dossiers differ in %d fields", errGate, diffs)
	}
	return nil
}
