// Command tracetool consumes the pipeline's observability artefacts:
// it analyses JSONL span traces ("where did the time go?"), diffs two
// same-workload traces span-class by span-class, gates CI on benchtab
// wall-time and allocation regressions, checks captured pprof profiles
// for expected label strings, and scrubs durable-store files for
// corruption.
//
// Usage:
//
//	tracetool analyze [-json] trace.jsonl
//	tracetool diff [-threshold 0.10] a.jsonl b.jsonl
//	tracetool check-bench [-tolerance 0.5] [-min-seconds 1] [-alloc-tolerance 0.25] [-alloc-slack 16] -baseline BENCH_old.json current.json
//	tracetool profile check -want tenant,shard,rung cpu.pprof
//	tracetool store verify [-json] [-wal store.json.wal] store.json
//	tracetool incident show [-json] [-events] dossier.json
//	tracetool incident diff a.json b.json
//	tracetool fuzz run [-mode single|cluster] [-seed N] [-n N] [-plant-double-charge] [-out dir]
//	tracetool fuzz replay [-plant-double-charge] repro.json
//	tracetool fuzz shrink [-plant-double-charge] [-out min.json] repro.json
//	tracetool fuzz gen [-mode single|cluster] [-seed N] [-n N] -out dir
//
// Exit codes: 0 clean, 1 usage or I/O error, 2 gate failure (flagged
// diff deltas, a wall-time or alloc regression, missing profile
// labels, store corruption, a dossier digest mismatch, two dossiers
// that should match but differ, or a chaos-fuzz invariant violation).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"edgetune/internal/obs/analyze"
	"edgetune/internal/obs/prof"
	"edgetune/internal/store"
)

// errGate marks a gate failure (exit 2): the tool worked, the input
// failed the check.
var errGate = errors.New("gate failed")

func main() {
	err := run(os.Args[1:], os.Stdout)
	switch {
	case err == nil:
	case errors.Is(err, errGate):
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: tracetool <analyze|diff|check-bench> [flags] args")
	}
	switch args[0] {
	case "analyze":
		return runAnalyze(args[1:], out)
	case "diff":
		return runDiff(args[1:], out)
	case "check-bench":
		return runCheckBench(args[1:], out)
	case "profile":
		return runProfile(args[1:], out)
	case "store":
		return runStore(args[1:], out)
	case "incident":
		return runIncident(args[1:], out)
	case "fuzz":
		return runFuzz(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want analyze, diff, check-bench, profile, store, incident, or fuzz)", args[0])
	}
}

// runProfile dispatches the pprof-profile subcommands.
func runProfile(args []string, out io.Writer) error {
	if len(args) == 0 || args[0] != "check" {
		return errors.New("usage: tracetool profile check -want k1,k2,... profile.pprof")
	}
	return runProfileCheck(args[1:], out)
}

// runProfileCheck verifies that a captured pprof profile's string
// table contains every wanted string — the label keys (and values)
// the profiling plane is expected to have attributed samples with.
// Exit 2 when any are missing: either labels were not applied, or no
// labelled work was sampled.
func runProfileCheck(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracetool profile check", flag.ContinueOnError)
	want := fs.String("want", "", "comma-separated strings that must appear in the profile's string table (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *want == "" || fs.NArg() != 1 {
		return errors.New("usage: tracetool profile check -want k1,k2,... profile.pprof")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	table, err := prof.ProfileStrings(data)
	if err != nil {
		return err
	}
	var wanted []string
	for _, w := range strings.Split(*want, ",") {
		if w = strings.TrimSpace(w); w != "" {
			wanted = append(wanted, w)
		}
	}
	missing := prof.MissingStrings(table, wanted)
	for _, w := range wanted {
		status := "ok  "
		for _, m := range missing {
			if m == w {
				status = "MISS"
			}
		}
		fmt.Fprintf(out, "%s %s\n", status, w)
	}
	fmt.Fprintf(out, "profile: %d strings in table, %d/%d wanted present\n",
		len(table), len(wanted)-len(missing), len(wanted))
	if len(missing) > 0 {
		return fmt.Errorf("%w: profile missing %d label strings: %s",
			errGate, len(missing), strings.Join(missing, ", "))
	}
	return nil
}

// runStore dispatches the store maintenance subcommands.
func runStore(args []string, out io.Writer) error {
	if len(args) == 0 || args[0] != "verify" {
		return errors.New("usage: tracetool store verify [-json] [-wal path] store.json")
	}
	return runStoreVerify(args[1:], out)
}

// runStoreVerify scrubs a durable store's on-disk files read-only:
// snapshot generations, WAL framing and checksums, torn tails. Exit 2
// when anything is corrupt — the same gate semantics as diff.
func runStoreVerify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracetool store verify", flag.ContinueOnError)
	var (
		asJSON  = fs.Bool("json", false, "emit the scrub report as JSON instead of text")
		walPath = fs.String("wal", "", "write-ahead log path (default <store>.wal)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: tracetool store verify [-json] [-wal path] store.json")
	}
	rep, err := store.Scrub(nil, fs.Arg(0), *walPath)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		snap := "missing"
		switch {
		case rep.SnapshotPresent && rep.SnapshotValid:
			snap = "valid"
		case rep.SnapshotPresent:
			snap = "CORRUPT: " + rep.SnapshotError
		}
		fmt.Fprintf(out, "snapshot %-40s %s\n", rep.SnapshotPath, snap)
		if rep.PrevPresent {
			prev := "valid"
			if !rep.PrevValid {
				prev = "CORRUPT"
			}
			fmt.Fprintf(out, "previous %-40s %s\n", rep.SnapshotPath+".prev", prev)
		}
		if rep.WALPresent {
			fmt.Fprintf(out, "wal      %-40s %d records, %d quarantined, %d torn bytes\n",
				rep.WALPath, rep.WALRecords, rep.WALQuarantined, rep.WALTornBytes)
		} else {
			fmt.Fprintf(out, "wal      %-40s missing\n", rep.WALPath)
		}
		fmt.Fprintf(out, "state    %d entries, %d checkpoints\n", rep.Entries, rep.Checkpoints)
	}
	if !rep.Clean {
		return fmt.Errorf("%w: store has corruption (snapshot valid=%v, %d quarantined records, %d torn bytes)",
			errGate, !rep.SnapshotPresent || rep.SnapshotValid, rep.WALQuarantined, rep.WALTornBytes)
	}
	fmt.Fprintln(out, "clean")
	return nil
}

func runAnalyze(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracetool analyze", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit the report as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: tracetool analyze [-json] trace.jsonl")
	}
	tr, err := analyze.ParseFile(fs.Arg(0))
	if err != nil {
		return err
	}
	rep := analyze.Analyze(tr)
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	return rep.WriteText(out)
}

func runDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracetool diff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.10, "relative span-class duration change that flags a delta")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return errors.New("usage: tracetool diff [-threshold 0.10] a.jsonl b.jsonl")
	}
	ta, err := analyze.ParseFile(fs.Arg(0))
	if err != nil {
		return err
	}
	tb, err := analyze.ParseFile(fs.Arg(1))
	if err != nil {
		return err
	}
	d := analyze.DiffReports(analyze.Analyze(ta), analyze.Analyze(tb), *threshold)
	if err := d.WriteText(out); err != nil {
		return err
	}
	if d.Flagged > 0 {
		return fmt.Errorf("%w: %d span classes moved beyond %.0f%%", errGate, d.Flagged, *threshold*100)
	}
	return nil
}

// benchEntry and benchReport mirror benchtab's -json artefact. The
// alloc fields are pointers because absent-vs-zero matters: a missing
// field means the experiment carried no probe, while an explicit 0 is
// a measured allocation-free hot loop the gate must defend.
type benchEntry struct {
	ID          string   `json:"id"`
	Title       string   `json:"title"`
	Rows        int      `json:"rows"`
	WallSeconds float64  `json:"wallSeconds"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
}

type benchReport struct {
	Experiments  []benchEntry `json:"experiments"`
	TotalSeconds float64      `json:"totalSeconds"`
}

func readBench(path string) (benchReport, error) {
	var rep benchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func runCheckBench(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracetool check-bench", flag.ContinueOnError)
	var (
		baseline   = fs.String("baseline", "", "committed BENCH_*.json to compare against (required)")
		tolerance  = fs.Float64("tolerance", 0.5, "allowed relative wall-time growth per experiment")
		minSeconds = fs.Float64("min-seconds", 1.0, "ignore regressions where the current time is below this floor (microsecond-scale baselines are all noise)")
		allocTol   = fs.Float64("alloc-tolerance", 0.25, "allowed relative allocs/op growth per experiment (alloc counts are near-deterministic, so this is tighter than wall time)")
		allocSlack = fs.Float64("alloc-slack", 16, "absolute allocs/op headroom added to the limit, absorbing runtime noise on tiny baselines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseline == "" || fs.NArg() != 1 {
		return errors.New("usage: tracetool check-bench -baseline BENCH_old.json [flags] current.json")
	}
	base, err := readBench(*baseline)
	if err != nil {
		return err
	}
	cur, err := readBench(fs.Arg(0))
	if err != nil {
		return err
	}
	curByID := make(map[string]benchEntry, len(cur.Experiments))
	for _, e := range cur.Experiments {
		curByID[e.ID] = e
	}

	regressions := 0
	for _, b := range base.Experiments {
		c, ok := curByID[b.ID]
		if !ok {
			fmt.Fprintf(out, "SKIP %-28s not in current run\n", b.ID)
			continue
		}
		limit := b.WallSeconds * (1 + *tolerance)
		switch {
		case c.WallSeconds <= limit || c.WallSeconds < *minSeconds:
			fmt.Fprintf(out, "ok   %-28s %.6fs -> %.6fs (limit %.6fs)\n",
				b.ID, b.WallSeconds, c.WallSeconds, limit)
		default:
			regressions++
			fmt.Fprintf(out, "FAIL %-28s %.6fs -> %.6fs exceeds limit %.6fs\n",
				b.ID, b.WallSeconds, c.WallSeconds, limit)
		}
		// Alloc gating: only for experiments whose baseline carries a
		// probe (a zero-alloc baseline still gates — alloc-slack is the
		// headroom). A current run without the probe (older binary)
		// skips rather than comparing an absent value.
		if b.AllocsPerOp != nil {
			switch allocLimit := *b.AllocsPerOp*(1+*allocTol) + *allocSlack; {
			case c.AllocsPerOp == nil:
				fmt.Fprintf(out, "SKIP %-28s no allocs/op in current run\n", b.ID)
			case *c.AllocsPerOp <= allocLimit:
				fmt.Fprintf(out, "ok   %-28s %.1f -> %.1f allocs/op (limit %.1f)\n",
					b.ID, *b.AllocsPerOp, *c.AllocsPerOp, allocLimit)
			default:
				regressions++
				fmt.Fprintf(out, "FAIL %-28s %.1f -> %.1f allocs/op exceeds limit %.1f\n",
					b.ID, *b.AllocsPerOp, *c.AllocsPerOp, allocLimit)
			}
		}
	}
	totalLimit := base.TotalSeconds * (1 + *tolerance)
	if cur.TotalSeconds > totalLimit && cur.TotalSeconds >= *minSeconds {
		regressions++
		fmt.Fprintf(out, "FAIL total %.6fs -> %.6fs exceeds limit %.6fs\n",
			base.TotalSeconds, cur.TotalSeconds, totalLimit)
	} else {
		fmt.Fprintf(out, "ok   total %.6fs -> %.6fs (limit %.6fs)\n",
			base.TotalSeconds, cur.TotalSeconds, totalLimit)
	}
	if regressions > 0 {
		return fmt.Errorf("%w: %d wall-time or allocs/op regressions beyond tolerance", errGate, regressions)
	}
	return nil
}
