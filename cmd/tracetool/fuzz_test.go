package main

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"edgetune/internal/chaosfuzz"
	"edgetune/internal/fault"
	"edgetune/internal/obs/flight"
)

// TestFuzzCorpusReplayDeterministic pins the corpus workflow: a
// generated entry is clean, and two replays of it produce
// byte-identical output with exit 0 — the property the CI chaos-fuzz
// gate depends on.
func TestFuzzCorpusReplayDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full tuning jobs")
	}
	dir := t.TempDir()
	var gen bytes.Buffer
	if err := run([]string{"fuzz", "gen", "-mode", "single", "-seed", "21", "-n", "1", "-out", dir}, &gen); err != nil {
		t.Fatalf("fuzz gen: %v\n%s", err, gen.String())
	}
	entry := filepath.Join(dir, "single-00.json")

	var r1, r2 bytes.Buffer
	if err := run([]string{"fuzz", "replay", entry}, &r1); err != nil {
		t.Fatalf("replay 1: %v\n%s", err, r1.String())
	}
	if err := run([]string{"fuzz", "replay", entry}, &r2); err != nil {
		t.Fatalf("replay 2: %v\n%s", err, r2.String())
	}
	if !bytes.Equal(r1.Bytes(), r2.Bytes()) {
		t.Errorf("corpus replay not byte-identical:\n%s\n---\n%s", r1.String(), r2.String())
	}
	if !strings.Contains(r1.String(), "clean: all invariants hold") {
		t.Errorf("corpus replay not clean:\n%s", r1.String())
	}
}

// TestFuzzFindingDossierAndReplayGate pins the finding workflow end to
// end: an invariant-failure dossier's digest verifies through
// `tracetool incident show`, and `fuzz replay` of the repro exits
// through the gate while the bug is present.
func TestFuzzFindingDossierAndReplayGate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full tuning jobs")
	}
	// Build a finding directly: plant the double charge and minimize a
	// schedule holding one retry-causing fault from the discovered
	// catalog — cheaper than full exploration, same artefacts.
	r := &chaosfuzz.Runner{Mode: chaosfuzz.ModeSingle, Seed: 21, PlantDoubleChargeRetry: true}
	f, err := chaosfuzz.New(r)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var crash *chaosfuzz.Point
	for i, p := range f.Catalog {
		if p.Class == fault.TrialCrash && p.Attempt == 0 {
			crash = &f.Catalog[i]
			break
		}
	}
	if crash == nil {
		t.Fatal("catalog has no trial-crash point")
	}
	s := chaosfuzz.Schedule{Seed: 21, Mode: chaosfuzz.ModeSingle, Events: []fault.Event{
		{Class: crash.Class, Site: crash.Site, Attempt: crash.Attempt, Intensity: 1},
	}}
	finding, err := f.Minimize(s, "budget-conservation")
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}

	dir := t.TempDir()
	paths, err := flight.WriteDossiers(dir, "fuzz", []flight.Dossier{finding.Dossier})
	if err != nil || len(paths) != 1 {
		t.Fatalf("WriteDossiers: %v (%d paths)", err, len(paths))
	}
	var show bytes.Buffer
	if err := run([]string{"incident", "show", paths[0]}, &show); err != nil {
		t.Fatalf("incident show rejected the finding dossier: %v\n%s", err, show.String())
	}
	if !strings.Contains(show.String(), "invariant-violation") || !strings.Contains(show.String(), "(verified)") {
		t.Errorf("incident show output missing trigger or verification:\n%s", show.String())
	}

	reproPath := filepath.Join(dir, "repro.json")
	if err := chaosfuzz.WriteRepro(reproPath, finding.Repro); err != nil {
		t.Fatalf("WriteRepro: %v", err)
	}
	var replay bytes.Buffer
	err = run([]string{"fuzz", "replay", "-plant-double-charge", reproPath}, &replay)
	if !errors.Is(err, errGate) {
		t.Fatalf("planted replay must fail the gate, got %v\n%s", err, replay.String())
	}
	if !strings.Contains(replay.String(), "budget-conservation") {
		t.Errorf("replay output missing the violated invariant:\n%s", replay.String())
	}

	var sound bytes.Buffer
	if err := run([]string{"fuzz", "replay", reproPath}, &sound); err != nil {
		t.Fatalf("replay without the planted bug must be clean: %v\n%s", err, sound.String())
	}
}
