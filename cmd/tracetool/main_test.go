package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edgetune/internal/autoscale"
	"edgetune/internal/core"
	"edgetune/internal/fault"
	"edgetune/internal/obs"
	"edgetune/internal/obs/analyze"
	"edgetune/internal/workload"
)

// traceJob runs one small same-seed tuning job and saves its JSONL
// trace to path.
func traceJob(t *testing.T, path string, seed uint64) {
	t.Helper()
	tr := obs.NewTracer()
	_, err := core.Tune(context.Background(), core.Options{
		Workload:       workload.MustNew("IC", 1),
		InitialConfigs: 2,
		Rungs:          2,
		MaxBrackets:    1,
		InferenceAware: true,
		SystemParams:   true,
		Seed:           seed,
		Fault:          fault.Config{TrialCrash: 0.2, DroppedReply: 0.1},
		Trace:          tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SaveJSONL(path); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyzeAndDiffDeterministic: two same-seed runs analyse to
// byte-identical reports and diff clean; the analysis names the
// sections the issue demands.
func TestAnalyzeAndDiffDeterministic(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "b.jsonl")
	traceJob(t, a, 11)
	traceJob(t, b, 11)

	var outA, outB bytes.Buffer
	if err := run([]string{"analyze", a}, &outA); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"analyze", b}, &outB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(outA.Bytes(), outB.Bytes()) {
		t.Errorf("same-seed analyses differ:\n%s\n---\n%s", outA.String(), outB.String())
	}
	for _, section := range []string{
		"critical paths", "queue wait vs service", "per-device breakdown", "hedging",
	} {
		if !strings.Contains(outA.String(), section) {
			t.Errorf("analysis missing %q section:\n%s", section, outA.String())
		}
	}

	var diff1, diff2 bytes.Buffer
	if err := run([]string{"diff", a, b}, &diff1); err != nil {
		t.Errorf("same-seed diff must pass the gate: %v\n%s", err, diff1.String())
	}
	if err := run([]string{"diff", a, b}, &diff2); err != nil {
		t.Errorf("repeat diff: %v", err)
	}
	if !bytes.Equal(diff1.Bytes(), diff2.Bytes()) {
		t.Errorf("diff output not deterministic:\n%s\n---\n%s", diff1.String(), diff2.String())
	}

	// A different seed moves span totals; the gate must notice.
	c := filepath.Join(dir, "c.jsonl")
	traceJob(t, c, 12)
	var diffC bytes.Buffer
	if err := run([]string{"diff", "-threshold", "0.01", a, c}, &diffC); !errors.Is(err, errGate) {
		t.Errorf("cross-seed diff err = %v, want gate failure\n%s", err, diffC.String())
	}
}

// TestAnalyzeAutoscaledTraceScaleEvents: the autoscaler's scale-event
// spans land on TrackAutoscale, and the analyser surfaces them as their
// own span class — so "where did the time go?" can answer "the control
// loop fired N times" without a dedicated report section.
func TestAnalyzeAutoscaledTraceScaleEvents(t *testing.T) {
	tr := obs.NewTracer()
	_, err := core.Tune(context.Background(), core.Options{
		Workload:       workload.MustNew("IC", 1),
		InitialConfigs: 2,
		Rungs:          2,
		MaxBrackets:    1,
		InferenceAware: true,
		SystemParams:   true,
		Seed:           7,
		Fault:          fault.Config{FlashCrowd: 0.4},
		Autoscale:      &autoscale.Config{},
		Trace:          tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "autoscaled.jsonl")
	if err := tr.SaveJSONL(path); err != nil {
		t.Fatal(err)
	}

	rep := analyze.Analyze(mustParse(t, path))
	found := false
	for _, c := range rep.Classes {
		if c.Name == "scale-event" {
			found = true
			if c.Count == 0 {
				t.Error("scale-event class present but counted no spans")
			}
		}
	}
	if !found {
		t.Fatalf("scale-event missing from per-class stats: %+v", rep.Classes)
	}

	var out bytes.Buffer
	if err := run([]string{"analyze", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "scale-event") {
		t.Errorf("analyze text output lacks the scale-event class:\n%s", out.String())
	}
}

func mustParse(t *testing.T, path string) *analyze.Trace {
	t.Helper()
	tr, err := analyze.ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestAnalyzeMalformedTrace: a truncated trace is reported, not fatal.
func TestAnalyzeMalformedTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	content := `{"id":1,"parent":0,"name":"request","track":2,"startNs":0,"durNs":10}` + "\n" +
		"{garbage\n" +
		`{"id":2,"parent":1,"name":"serve","track":2,"startNs":3,"durNs":7` // truncated
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"analyze", path}, &out); err != nil {
		t.Fatalf("malformed trace must not fail the analysis: %v", err)
	}
	if !strings.Contains(out.String(), "2 malformed lines skipped") {
		t.Errorf("analysis must surface malformed lines:\n%s", out.String())
	}
}

func writeBench(t *testing.T, path, body string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckBench(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	writeBench(t, base, `{"experiments":[{"id":"Table 2","title":"t","rows":3,"wallSeconds":2.0}],"totalSeconds":2.0}`)

	// Identical run: clean exit.
	same := filepath.Join(dir, "same.json")
	writeBench(t, same, `{"experiments":[{"id":"Table 2","title":"t","rows":3,"wallSeconds":2.0}],"totalSeconds":2.0}`)
	var out bytes.Buffer
	if err := run([]string{"check-bench", "-baseline", base, same}, &out); err != nil {
		t.Fatalf("identical bench must pass: %v\n%s", err, out.String())
	}

	// Injected 5× regression above the floor: gate failure.
	slow := filepath.Join(dir, "slow.json")
	writeBench(t, slow, `{"experiments":[{"id":"Table 2","title":"t","rows":3,"wallSeconds":10.0}],"totalSeconds":10.0}`)
	out.Reset()
	if err := run([]string{"check-bench", "-baseline", base, slow}, &out); !errors.Is(err, errGate) {
		t.Fatalf("regression err = %v, want gate failure\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "FAIL Table 2") {
		t.Errorf("regression output must name the experiment:\n%s", out.String())
	}

	// The same 5× growth below the absolute floor is noise, not a
	// regression (microsecond-scale baselines).
	tinyBase := filepath.Join(dir, "tiny-base.json")
	writeBench(t, tinyBase, `{"experiments":[{"id":"Table 2","title":"t","rows":3,"wallSeconds":0.000002}],"totalSeconds":0.000002}`)
	tinySlow := filepath.Join(dir, "tiny-slow.json")
	writeBench(t, tinySlow, `{"experiments":[{"id":"Table 2","title":"t","rows":3,"wallSeconds":0.00001}],"totalSeconds":0.00001}`)
	out.Reset()
	if err := run([]string{"check-bench", "-baseline", tinyBase, tinySlow}, &out); err != nil {
		t.Fatalf("sub-floor growth must pass: %v\n%s", err, out.String())
	}
}

// TestCheckBenchAllocGate: the alloc gate fires on a real allocs/op
// regression (exit 2), tolerates growth within tolerance+slack, and
// skips experiments without a probe in either run.
func TestCheckBenchAllocGate(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	writeBench(t, base, `{"experiments":[
		{"id":"BenchmarkWALAppend","title":"t","rows":1,"wallSeconds":0.1,"allocs_per_op":100},
		{"id":"Table 2","title":"t","rows":3,"wallSeconds":0.1}],"totalSeconds":0.2}`)

	// 3x the baseline allocs: well past 100*1.25+16.
	slow := filepath.Join(dir, "alloc-regress.json")
	writeBench(t, slow, `{"experiments":[
		{"id":"BenchmarkWALAppend","title":"t","rows":1,"wallSeconds":0.1,"allocs_per_op":300},
		{"id":"Table 2","title":"t","rows":3,"wallSeconds":0.1}],"totalSeconds":0.2}`)
	var out bytes.Buffer
	if err := run([]string{"check-bench", "-baseline", base, slow}, &out); !errors.Is(err, errGate) {
		t.Fatalf("alloc regression err = %v, want gate failure\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "allocs/op exceeds limit") {
		t.Errorf("output must name the alloc regression:\n%s", out.String())
	}

	// Within tolerance + slack: 100 -> 130 <= 100*1.25+16.
	ok := filepath.Join(dir, "alloc-ok.json")
	writeBench(t, ok, `{"experiments":[
		{"id":"BenchmarkWALAppend","title":"t","rows":1,"wallSeconds":0.1,"allocs_per_op":130},
		{"id":"Table 2","title":"t","rows":3,"wallSeconds":0.1}],"totalSeconds":0.2}`)
	out.Reset()
	if err := run([]string{"check-bench", "-baseline", base, ok}, &out); err != nil {
		t.Fatalf("in-tolerance alloc growth must pass: %v\n%s", err, out.String())
	}

	// Probe absent from the current run: skip, not a 0-vs-100 failure.
	noprobe := filepath.Join(dir, "alloc-none.json")
	writeBench(t, noprobe, `{"experiments":[
		{"id":"BenchmarkWALAppend","title":"t","rows":1,"wallSeconds":0.1},
		{"id":"Table 2","title":"t","rows":3,"wallSeconds":0.1}],"totalSeconds":0.2}`)
	out.Reset()
	if err := run([]string{"check-bench", "-baseline", base, noprobe}, &out); err != nil {
		t.Fatalf("missing current probe must skip, got: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no allocs/op in current run") {
		t.Errorf("output must note the skipped probe:\n%s", out.String())
	}
}

// pprofString encodes one Profile.string_table entry (field 6).
func pprofString(b []byte, s string) []byte {
	b = append(b, 6<<3|2, byte(len(s)))
	return append(b, s...)
}

// TestProfileCheck: the profile gate passes when every wanted string
// is in the profile's string table and exits 2 when one is missing.
func TestProfileCheck(t *testing.T) {
	var raw []byte
	for _, s := range []string{"", "samples", "tenant", "acme", "rung"} {
		raw = pprofString(raw, s)
	}
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"profile", "check", "-want", "tenant,rung,acme", path}, &out); err != nil {
		t.Fatalf("present labels must pass: %v\n%s", err, out.String())
	}
	out.Reset()
	if err := run([]string{"profile", "check", "-want", "tenant,shard", path}, &out); !errors.Is(err, errGate) {
		t.Fatalf("missing label err = %v, want gate failure\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "MISS shard") {
		t.Errorf("output must name the missing string:\n%s", out.String())
	}
}
