package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"edgetune/internal/chaosfuzz"
	"edgetune/internal/obs/flight"
)

// runFuzz dispatches the chaos-fuzz subcommands: seeded exploration of
// the fault-schedule space, replay of committed repro artefacts, and
// standalone shrinking.
func runFuzz(args []string, out io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: tracetool fuzz <run|replay|shrink|gen> [flags] args")
	}
	switch args[0] {
	case "run":
		return runFuzzRun(args[1:], out)
	case "replay":
		return runFuzzReplay(args[1:], out)
	case "shrink":
		return runFuzzShrink(args[1:], out)
	case "gen":
		return runFuzzGen(args[1:], out)
	default:
		return fmt.Errorf("unknown fuzz subcommand %q (want run, replay, shrink, or gen)", args[0])
	}
}

// fuzzFlags declares the flags every fuzz subcommand that builds a
// runner shares. The plant flag wires in the deliberately broken
// retry-budget accounting — a built-in planted bug for proving,
// end to end, that the pipeline detects, shrinks, and replays a real
// invariant violation.
func fuzzFlags(fs *flag.FlagSet) (mode *string, seed *uint64, plant *bool) {
	mode = fs.String("mode", chaosfuzz.ModeSingle, "job topology to fuzz: single or cluster")
	seed = fs.Uint64("seed", 1, "master seed for discovery, generation, and execution")
	plant = fs.Bool("plant-double-charge", false, "plant the known retry-budget double-charge bug (pipeline self-test)")
	return
}

// printSchedule renders a schedule's events in the compact
// class@site#attempt form, one per line.
func printSchedule(out io.Writer, s chaosfuzz.Schedule) {
	fmt.Fprintf(out, "schedule seed=%d mode=%s events=%d\n", s.Seed, s.Mode, len(s.Events))
	for _, ev := range s.Events {
		fmt.Fprintf(out, "  %s\n", ev)
	}
}

// printViolations renders the verdict for one evaluated schedule.
func printViolations(out io.Writer, violations []chaosfuzz.Violation) {
	if len(violations) == 0 {
		fmt.Fprintln(out, "clean: all invariants hold")
		return
	}
	for _, v := range violations {
		fmt.Fprintf(out, "FAIL %s: %s\n", v.Invariant, v.Detail)
	}
}

// runFuzzRun explores n seeded schedules against the invariant
// registry. Every violation is shrunk to a minimal schedule; with
// -out, each finding's repro JSON and flight-recorder dossier land
// there as replayable artefacts. All output is derived from the seed
// alone, so two runs of the same command are byte-identical. Exit 2
// when anything was found.
func runFuzzRun(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracetool fuzz run", flag.ContinueOnError)
	mode, seed, plant := fuzzFlags(fs)
	var (
		n      = fs.Int("n", 16, "number of schedules to generate and evaluate")
		outDir = fs.String("out", "", "directory to write finding artefacts (repro JSON + dossier) into")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return errors.New("usage: tracetool fuzz run [-mode single|cluster] [-seed N] [-n N] [-plant-double-charge] [-out dir]")
	}
	r := &chaosfuzz.Runner{Mode: *mode, Seed: *seed, PlantDoubleChargeRetry: *plant}
	f, err := chaosfuzz.New(r)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "catalog  %d decision points (%s mode, seed %d)\n", len(f.Catalog), *mode, *seed)
	findings, err := f.Explore(*n)
	if err != nil {
		return err
	}
	if len(findings) == 0 {
		fmt.Fprintf(out, "explored %d schedules: no invariant violations\n", *n)
		return nil
	}
	for i, finding := range findings {
		fmt.Fprintf(out, "finding #%d (%d violation(s), shrunk to %d event(s))\n",
			i+1, len(finding.Violations), len(finding.Schedule.Events))
		printSchedule(out, finding.Schedule)
		printViolations(out, finding.Violations)
		if *outDir != "" {
			reproPath := filepath.Join(*outDir, fmt.Sprintf("repro-%02d.json", i+1))
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			if err := chaosfuzz.WriteRepro(reproPath, finding.Repro); err != nil {
				return err
			}
			paths, err := flight.WriteDossiers(*outDir, fmt.Sprintf("fuzz-%02d", i+1), []flight.Dossier{finding.Dossier})
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", filepath.Base(reproPath))
			for _, p := range paths {
				fmt.Fprintf(out, "wrote %s\n", filepath.Base(p))
			}
		}
	}
	return fmt.Errorf("%w: %d invariant finding(s) in %d schedules", errGate, len(findings), *n)
}

// runFuzzReplay re-executes a repro artefact's schedule and
// re-evaluates the full invariant registry. Exit 2 when any invariant
// is violated (the bug is still there), 0 when clean (a corpus entry,
// or a since-fixed repro). Output depends only on the artefact, so two
// replays are byte-identical.
func runFuzzReplay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracetool fuzz replay", flag.ContinueOnError)
	plant := fs.Bool("plant-double-charge", false, "plant the known retry-budget double-charge bug (pipeline self-test)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: tracetool fuzz replay [-plant-double-charge] repro.json")
	}
	rep, err := chaosfuzz.ReadRepro(fs.Arg(0))
	if err != nil {
		return err
	}
	r := &chaosfuzz.Runner{Mode: rep.Schedule.Mode, Seed: rep.Schedule.Seed, PlantDoubleChargeRetry: *plant}
	f := &chaosfuzz.Fuzzer{Runner: r}
	printSchedule(out, rep.Schedule)
	if rep.Invariant != "" {
		fmt.Fprintf(out, "recorded %s: %s\n", rep.Invariant, rep.Detail)
	}
	violations, _, err := f.Evaluate(rep.Schedule)
	if err != nil {
		return err
	}
	printViolations(out, violations)
	if len(violations) > 0 {
		return fmt.Errorf("%w: %d invariant violation(s) on replay", errGate, len(violations))
	}
	return nil
}

// runFuzzShrink delta-debugs a repro's schedule down to a minimal one
// still violating its recorded invariant (or, absent a record, the
// first invariant the schedule violates), then emits the minimized
// repro — to -out as JSON when given, to stdout otherwise.
func runFuzzShrink(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracetool fuzz shrink", flag.ContinueOnError)
	var (
		plant   = fs.Bool("plant-double-charge", false, "plant the known retry-budget double-charge bug (pipeline self-test)")
		outPath = fs.String("out", "", "write the minimized repro JSON here instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: tracetool fuzz shrink [-plant-double-charge] [-out min.json] repro.json")
	}
	rep, err := chaosfuzz.ReadRepro(fs.Arg(0))
	if err != nil {
		return err
	}
	r := &chaosfuzz.Runner{Mode: rep.Schedule.Mode, Seed: rep.Schedule.Seed, PlantDoubleChargeRetry: *plant}
	f := &chaosfuzz.Fuzzer{Runner: r}
	violations, _, err := f.Evaluate(rep.Schedule)
	if err != nil {
		return err
	}
	if len(violations) == 0 {
		return fmt.Errorf("%s: schedule violates no invariant, nothing to shrink", fs.Arg(0))
	}
	target := rep.Invariant
	if target == "" {
		target = violations[0].Invariant
	}
	finding, err := f.Minimize(rep.Schedule, target)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "shrunk %d -> %d event(s) for %s\n",
		len(rep.Schedule.Events), len(finding.Schedule.Events), target)
	printSchedule(out, finding.Schedule)
	if *outPath != "" {
		if err := chaosfuzz.WriteRepro(*outPath, finding.Repro); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", filepath.Base(*outPath))
		return nil
	}
	raw, err := chaosfuzz.MarshalRepro(finding.Repro)
	if err != nil {
		return err
	}
	_, err = out.Write(raw)
	return err
}

// runFuzzGen generates n seeded schedules, proves each one holds every
// invariant, and writes them as corpus entries — the committed seeds
// CI replays on every change. A generated schedule that violates
// anything aborts generation with exit 2: that is a finding, not a
// corpus entry.
func runFuzzGen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracetool fuzz gen", flag.ContinueOnError)
	mode, seed, plant := fuzzFlags(fs)
	var (
		n      = fs.Int("n", 4, "number of corpus entries to generate")
		outDir = fs.String("out", "", "directory to write corpus entries into (required)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outDir == "" || fs.NArg() != 0 {
		return errors.New("usage: tracetool fuzz gen [-mode single|cluster] [-seed N] [-n N] -out dir")
	}
	r := &chaosfuzz.Runner{Mode: *mode, Seed: *seed, PlantDoubleChargeRetry: *plant}
	f, err := chaosfuzz.New(r)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	for i := 0; i < *n; i++ {
		s := f.Generate(i)
		violations, _, err := f.Evaluate(s)
		if err != nil {
			return err
		}
		if len(violations) > 0 {
			printSchedule(out, s)
			printViolations(out, violations)
			return fmt.Errorf("%w: generated schedule %d is a finding, not a corpus entry", errGate, i)
		}
		path := filepath.Join(*outDir, fmt.Sprintf("%s-%02d.json", *mode, i))
		if err := chaosfuzz.WriteRepro(path, chaosfuzz.Repro{Schedule: s}); err != nil {
			return err
		}
		fmt.Fprintf(out, "corpus %s: %d event(s), clean\n", filepath.Base(path), len(s.Events))
	}
	return nil
}
