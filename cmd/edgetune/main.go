// Command edgetune runs an inference-aware tuning job from the command
// line and prints the tuned configuration and inference recommendation.
//
// Usage:
//
//	edgetune -workload IC [-device i7] [-budget multi] [-metric runtime]
//	         [-hierarchical] [-no-inference] [-stop-at-target]
//	         [-store history.json] [-store-wal] [-store-snapshot-every 256]
//	         [-autoscale] [-autoscale-min 1] [-autoscale-max 4]
//	         [-fault-flash-crowd 0.1] [-fault-mass-devicefail 0.1] [-fault-scale-stall 0.1]
//	         [-seed 1] [-json]
//	         [-trace spans.jsonl] [-trace-chrome trace.json]
//	         [-flight] [-flight-slots 65536] [-incidents-dir ./incidents]
//	         [-debug-addr 127.0.0.1:6060] [-metrics]
//	edgetune -job job.json
//	edgetune -workload IC -cluster 2 -cluster-dir ./cluster [-tenant acme]
//	         [-tenant-rate 0.5] [-tenant-burst 4] [-cluster-kill-rungs 2]
//	         [-fault-shard-kill 0.1] [-fault-partition 0.1] [-fault-follower-lag 0.1]
//
// With -job, the flags are read from a JSON file matching the
// edgetune.Job structure instead. With -cluster N, the job runs on a
// sharded multi-tenant cluster of N simulated nodes: jobs are
// consistent-hash-routed by tenant and workload, every shard journals
// to a write-ahead log shipped to a follower, and a killed shard fails
// over to its follower mid-job.
//
// With -flight, an always-on flight recorder captures a compact event
// stream from both pipelines into a preallocated ring; anomaly
// triggers (SLO alerts, ladder engagement, shard failover, crash
// salvage, mass device failure) cut deterministic incident dossiers
// into the report, written as JSON artefacts under -incidents-dir. In
// cluster mode each shard gets its own recorder and its dossiers are
// written (shard-prefixed) when the cluster closes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"edgetune"
	"edgetune/internal/fault"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "edgetune:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("edgetune", flag.ContinueOnError)
	var (
		jobPath      = fs.String("job", "", "read the job from a JSON file")
		workloadID   = fs.String("workload", "", "workload to tune: IC, SR, NLP, or OD")
		deviceName   = fs.String("device", "", "edge device: i7, armv7, or rpi3b+ (default i7)")
		budgetKind   = fs.String("budget", "", "trial budget: epochs, dataset, or multi (default multi)")
		metric       = fs.String("metric", "", "objective: runtime or energy (default runtime)")
		modelAlgo    = fs.String("model-algo", "", "model-server search algorithm (default bohb)")
		inferAlgo    = fs.String("infer-algo", "", "inference-server search algorithm (default bohb)")
		hierarchical = fs.Bool("hierarchical", false, "use two-tier hierarchical tuning instead of onefold")
		noInference  = fs.Bool("no-inference", false, "disable the inference tuning server")
		stopAtTarget = fs.Bool("stop-at-target", false, "stop once the target accuracy is reached")
		storePath    = fs.String("store", "", "persist the historical inference database to this JSON file")
		storeWAL     = fs.Bool("store-wal", false, "make the store crash-consistent: journal every mutation to a checksummed write-ahead log (requires -store)")
		storeSnapEv  = fs.Int("store-snapshot-every", 0, "compact the WAL into a fresh snapshot every N records (default 256)")
		storeKill    = fs.Int("store-kill-after", 0, "chaos: kill the process (exit 3) right after the Nth acknowledged WAL append")
		seed         = fs.Uint64("seed", 1, "random seed (jobs are deterministic per seed)")
		asJSON       = fs.Bool("json", false, "print the report as JSON")

		faultCrash      = fs.Float64("fault-crash", 0, "probability a training trial crashes partway")
		faultNaN        = fs.Float64("fault-nan", 0, "probability a training trial diverges to NaN")
		faultStraggler  = fs.Float64("fault-straggler", 0, "probability a trial straggles (cost inflated)")
		faultFlap       = fs.Float64("fault-flap", 0, "probability the edge device drops an inference attempt")
		faultBrownout   = fs.Float64("fault-brownout", 0, "probability an inference attempt is slowed by a device brown-out")
		brownoutFactor  = fs.Float64("brownout-factor", 0, "maximum brown-out slowdown multiplier (default 6)")
		faultOverload   = fs.Float64("fault-overload", 0, "probability an inference submission is shed by a synthetic overload burst")
		faultStoreWrite = fs.Float64("fault-store-write", 0, "probability a historical-store write fails")
		faultDrop       = fs.Float64("fault-drop", 0, "probability an inference reply is lost in flight")
		faultDiskTorn   = fs.Float64("fault-disk-torn", 0, "probability a durable-store disk write is torn short")
		faultDiskCrash  = fs.Float64("fault-disk-crash", 0, "probability a durable-store disk write half-lands and kills the disk")
		faultDiskFlip   = fs.Float64("fault-disk-flip", 0, "probability a durable-store disk write is silently bit-flipped")
		faultDiskFull   = fs.Float64("fault-disk-full", 0, "probability a durable-store disk write fails with ENOSPC")
		faultDiskFsync  = fs.Float64("fault-disk-slow-fsync", 0, "probability a durable-store fsync stalls (succeeds slowly)")
		maxAttempts     = fs.Int("max-attempts", 0, "retry cap per training trial under faults (default 3)")
		checkpoint      = fs.Bool("checkpoint", false, "checkpoint completed rungs for resumable tuning")

		autoscaleOn   = fs.Bool("autoscale", false, "enable the SLO-driven device-pool autoscaler and graceful-degradation ladder")
		autoscaleMin  = fs.Int("autoscale-min", 0, "minimum device replicas (default 1, requires -autoscale)")
		autoscaleMax  = fs.Int("autoscale-max", 0, "maximum device replicas (default 4, requires -autoscale)")
		faultCrowd    = fs.Float64("fault-flash-crowd", 0, "probability a submission brings a phantom flash-crowd arrival surge (requires -autoscale)")
		faultMassFail = fs.Float64("fault-mass-devicefail", 0, "probability the whole device pool is quarantined at once, at most once per job (requires -autoscale)")
		faultStall    = fs.Float64("fault-scale-stall", 0, "probability a scale-up stalls: warm-up charged, replica never joins (requires -autoscale)")

		clusterN      = fs.Int("cluster", 0, "run the job on a sharded cluster with this many nodes (requires -cluster-dir)")
		clusterDir    = fs.String("cluster-dir", "", "directory holding every cluster node's durable store")
		tenant        = fs.String("tenant", "", "tenant the job is submitted as (default \"default\")")
		tenantRate    = fs.Float64("tenant-rate", 0, "per-tenant admission tokens earned per cluster submission (0 disables quotas)")
		tenantBurst   = fs.Int("tenant-burst", 0, "per-tenant admission token cap (default 4)")
		clusterKill   = fs.Int("cluster-kill-rungs", 0, "chaos: kill the job's shard after its Nth completed rung and fail over to the follower")
		faultShard    = fs.Float64("fault-shard-kill", 0, "probability a shard dies at a rung boundary (cluster only)")
		faultPart     = fs.Float64("fault-partition", 0, "probability a shipped WAL frame is dropped by a network partition (cluster only)")
		faultFollower = fs.Float64("fault-follower-lag", 0, "probability a shipped WAL frame is delayed behind its successors (cluster only)")

		tracePath    = fs.String("trace", "", "write the deterministic span trace as JSON Lines to this file")
		chromePath   = fs.String("trace-chrome", "", "write the trace in Chrome trace-event format (Perfetto-loadable)")
		debugAddr    = fs.String("debug-addr", "", "serve /metrics, /metrics/prom, /healthz, /slo, /analyze, /flight, /debug/vars, and /debug/pprof on this address while tuning")
		profileOn    = fs.Bool("profile", false, "enable the profiling plane: pprof label attribution on both pipelines plus per-stage allocation probes in the report")
		flightOn     = fs.Bool("flight", false, "enable the always-on flight recorder: anomaly triggers cut deterministic incident dossiers into the report")
		flightSlots  = fs.Int("flight-slots", 0, "flight recorder ring size in event slots (default 65536, requires -flight)")
		incidentsDir = fs.String("incidents-dir", "", "write each incident dossier as a JSON artefact into this directory (implies -flight)")
		showMetrics  = fs.Bool("metrics", false, "print the full metrics snapshot and SLO evaluation after the report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Fail fast on malformed flag values, before any tuning work starts:
	// every fault class is a probability, and the scalar knobs must not
	// be negative. (-store-snapshot-every is the deliberate exception —
	// a negative value disables periodic compaction.) The bounds tables
	// are the shared internal/fault helpers the chaos fuzzer's schedule
	// validation also runs through, so the surfaces cannot drift.
	if err := fault.CheckProbs([]fault.NamedValue{
		{Name: "-fault-crash", Value: *faultCrash},
		{Name: "-fault-nan", Value: *faultNaN},
		{Name: "-fault-straggler", Value: *faultStraggler},
		{Name: "-fault-flap", Value: *faultFlap},
		{Name: "-fault-brownout", Value: *faultBrownout},
		{Name: "-fault-overload", Value: *faultOverload},
		{Name: "-fault-store-write", Value: *faultStoreWrite},
		{Name: "-fault-drop", Value: *faultDrop},
		{Name: "-fault-disk-torn", Value: *faultDiskTorn},
		{Name: "-fault-disk-crash", Value: *faultDiskCrash},
		{Name: "-fault-disk-flip", Value: *faultDiskFlip},
		{Name: "-fault-disk-full", Value: *faultDiskFull},
		{Name: "-fault-disk-slow-fsync", Value: *faultDiskFsync},
		{Name: "-fault-shard-kill", Value: *faultShard},
		{Name: "-fault-partition", Value: *faultPart},
		{Name: "-fault-follower-lag", Value: *faultFollower},
		{Name: "-fault-flash-crowd", Value: *faultCrowd},
		{Name: "-fault-mass-devicefail", Value: *faultMassFail},
		{Name: "-fault-scale-stall", Value: *faultStall},
	}); err != nil {
		return err
	}
	if err := fault.CheckNonNegative([]fault.NamedValue{
		{Name: "-brownout-factor", Value: *brownoutFactor},
		{Name: "-max-attempts", Value: float64(*maxAttempts)},
		{Name: "-autoscale-min", Value: float64(*autoscaleMin)},
		{Name: "-autoscale-max", Value: float64(*autoscaleMax)},
		{Name: "-tenant-rate", Value: *tenantRate},
		{Name: "-tenant-burst", Value: float64(*tenantBurst)},
		{Name: "-cluster", Value: float64(*clusterN)},
		{Name: "-cluster-kill-rungs", Value: float64(*clusterKill)},
		{Name: "-store-kill-after", Value: float64(*storeKill)},
		{Name: "-flight-slots", Value: float64(*flightSlots)},
	}); err != nil {
		return err
	}

	var job edgetune.Job
	if *jobPath != "" {
		data, err := os.ReadFile(*jobPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &job); err != nil {
			return fmt.Errorf("parse %s: %w", *jobPath, err)
		}
		// Observability flags compose with a job file: they describe
		// where this invocation writes its diagnostics, not the job.
		if *tracePath != "" {
			job.TracePath = *tracePath
		}
		if *chromePath != "" {
			job.TraceChromePath = *chromePath
		}
		if *debugAddr != "" {
			job.DebugAddr = *debugAddr
		}
		if *profileOn {
			job.Profile = true
		}
		if *flightOn {
			job.Flight = true
		}
		if *flightSlots > 0 {
			job.FlightSlots = *flightSlots
		}
		if *incidentsDir != "" {
			job.IncidentsDir = *incidentsDir
		}
	} else {
		job = edgetune.Job{
			Workload:              *workloadID,
			Device:                *deviceName,
			Budget:                edgetune.BudgetKind(*budgetKind),
			Metric:                edgetune.Metric(*metric),
			ModelAlgorithm:        edgetune.Algorithm(*modelAlgo),
			InferenceAlgorithm:    edgetune.Algorithm(*inferAlgo),
			Hierarchical:          *hierarchical,
			WithoutInference:      *noInference,
			StopAtTarget:          *stopAtTarget,
			StorePath:             *storePath,
			StoreWAL:              *storeWAL,
			StoreSnapshotEvery:    *storeSnapEv,
			StoreKillAfterAppends: *storeKill,
			Autoscale:             *autoscaleOn,
			AutoscaleMin:          *autoscaleMin,
			AutoscaleMax:          *autoscaleMax,
			Seed:                  *seed,
			Faults: edgetune.FaultConfig{
				TrialCrash:     *faultCrash,
				TrialNaN:       *faultNaN,
				Straggler:      *faultStraggler,
				DeviceFlap:     *faultFlap,
				DeviceBrownout: *faultBrownout,
				BrownoutFactor: *brownoutFactor,
				OverloadBurst:  *faultOverload,
				StoreWrite:     *faultStoreWrite,
				DroppedReply:   *faultDrop,
				DiskTornWrite:  *faultDiskTorn,
				DiskCrash:      *faultDiskCrash,
				DiskBitFlip:    *faultDiskFlip,
				DiskFull:       *faultDiskFull,
				DiskSlowFsync:  *faultDiskFsync,
				FlashCrowd:     *faultCrowd,
				MassDeviceFail: *faultMassFail,
				ScaleStall:     *faultStall,
			},
			MaxTrialAttempts: *maxAttempts,
			Checkpoint:       *checkpoint,
			TracePath:        *tracePath,
			TraceChromePath:  *chromePath,
			DebugAddr:        *debugAddr,
			Profile:          *profileOn,
			Flight:           *flightOn,
			FlightSlots:      *flightSlots,
			IncidentsDir:     *incidentsDir,
		}
	}

	if *tenant != "" {
		job.Tenant = *tenant
	}

	if *clusterN > 0 {
		if *clusterDir == "" {
			return fmt.Errorf("-cluster requires -cluster-dir")
		}
		// The cluster owns each shard's durable store and the trace; the
		// single-node store and trace paths don't apply to its jobs.
		copts := edgetune.ClusterOptions{
			Shards:      *clusterN,
			Dir:         *clusterDir,
			TenantRate:  *tenantRate,
			TenantBurst: *tenantBurst,
			Seed:        job.Seed,
			Faults: edgetune.FaultConfig{
				ShardKill:    *faultShard,
				NetPartition: *faultPart,
				FollowerLag:  *faultFollower,
			},
			KillShardAfterRungs: *clusterKill,
			SnapshotEvery:       *storeSnapEv,
			TracePath:           job.TracePath,
			Flight:              job.Flight,
			FlightSlots:         job.FlightSlots,
			IncidentsDir:        job.IncidentsDir,
		}
		job.TracePath, job.TraceChromePath, job.DebugAddr = "", "", ""
		// The cluster owns the flight recorders too: one ring per shard,
		// artefacts written (shard-prefixed) at Close.
		job.Flight, job.FlightSlots, job.IncidentsDir = false, 0, ""
		return runCluster(out, copts, job, *asJSON, *showMetrics)
	}

	report, err := edgetune.Tune(context.Background(), job)
	if err != nil {
		return err
	}

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	printReport(out, report)
	if *showMetrics {
		printMetrics(out, report.Metrics)
		printSLO(out, report.SLO)
	}
	return nil
}

// runCluster executes the job on a freshly started sharded cluster and
// renders the report plus the dispatcher's view (owning shard,
// failover, cluster metrics).
func runCluster(out io.Writer, copts edgetune.ClusterOptions, job edgetune.Job, asJSON, showMetrics bool) error {
	c, err := edgetune.NewCluster(copts)
	if err != nil {
		return err
	}
	rep, tuneErr := c.Tune(context.Background(), job)
	incidents := c.Incidents()
	if closeErr := c.Close(); tuneErr == nil {
		tuneErr = closeErr
	}
	if tuneErr != nil {
		return tuneErr
	}

	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	printReport(out, rep.Report)
	fmt.Fprintf(out, "  cluster:\n")
	fmt.Fprintf(out, "    shards            %d\n", len(c.Shards()))
	fmt.Fprintf(out, "    ran on            %s\n", rep.Shard)
	fmt.Fprintf(out, "    failed over       %v\n", rep.FailedOver)
	if len(incidents) > 0 {
		shardNames := make([]string, 0, len(incidents))
		for name := range incidents {
			shardNames = append(shardNames, name)
		}
		sort.Strings(shardNames)
		fmt.Fprintf(out, "    incidents:\n")
		for _, name := range shardNames {
			for _, inc := range incidents[name] {
				fmt.Fprintf(out, "      %s #%d %-17s at %.1fm  events=%d  %s\n",
					name, inc.Seq, inc.Trigger, inc.AtMinutes, inc.Events, inc.Digest)
			}
		}
	}
	if showMetrics {
		printMetrics(out, rep.Metrics)
		printSLO(out, rep.SLO)
		fmt.Fprintf(out, "  cluster metrics:\n")
		for _, ctr := range c.Metrics().Counters {
			fmt.Fprintf(out, "    counter   %-36s %d\n", ctr.Name, ctr.Value)
		}
		printSLO(out, c.SLO())
	}
	return nil
}

// printSLO renders the objective evaluations after the metrics dump:
// overall compliance plus the per-window burn rates behind each alert.
func printSLO(out io.Writer, s edgetune.SLOReport) {
	if len(s.Objectives) == 0 {
		return
	}
	fmt.Fprintf(out, "  slo (horizon %.1f simulated minutes):\n", s.HorizonMinutes)
	for _, o := range s.Objectives {
		state := "ok"
		if o.Alerting {
			state = "ALERT"
		}
		fmt.Fprintf(out, "    %-5s %-24s target=%.2f good=%.3f budget-used=%.2f events=%d errors=%d\n",
			state, o.Name, o.Target, o.GoodFraction, o.ErrorBudgetUsed, o.Events, o.Errors)
		for _, w := range o.Windows {
			fmt.Fprintf(out, "          window %5.1fm burn=%.2f (%d/%d errors, threshold %.1f)\n",
				w.WindowMinutes, w.BurnRate, w.Errors, w.Events, o.BurnThreshold)
		}
	}
}

// printMetrics dumps the full metrics snapshot in its (sorted) registry
// order, so the text output is byte-stable across same-seed runs.
func printMetrics(out io.Writer, m edgetune.MetricsReport) {
	fmt.Fprintf(out, "  metrics:\n")
	for _, c := range m.Counters {
		fmt.Fprintf(out, "    counter   %-36s %d\n", c.Name, c.Value)
	}
	for _, g := range m.Gauges {
		fmt.Fprintf(out, "    gauge     %-36s %g\n", g.Name, g.Value)
	}
	for _, h := range m.Histograms {
		fmt.Fprintf(out, "    histogram %-36s count=%d p50=%.3g p95=%.3g p99=%.3g\n",
			h.Name, h.Count, h.P50, h.P95, h.P99)
	}
}

func printReport(out io.Writer, r *edgetune.Report) {
	fmt.Fprintf(out, "EdgeTune report — workload %s on device %s (objective: %s)\n",
		r.Workload, r.Device, r.Metric)
	fmt.Fprintf(out, "  trials run:        %d (cache hits/misses: %d/%d)\n",
		r.TrialsRun, r.CacheHits, r.CacheMisses)
	if sr := r.StoreRecovery; sr != nil {
		fmt.Fprintf(out, "  store recovery:    %s snapshot, %d replayed, %d quarantined, %d bytes truncated → %d entries, %d checkpoints\n",
			sr.SnapshotSource, sr.RecordsReplayed, sr.RecordsQuarantined, sr.TruncatedBytes, sr.Entries, sr.Checkpoints)
	}
	fmt.Fprintf(out, "  tuning cost:       %.1f simulated minutes, %.1f kJ\n",
		r.TuningMinutes, r.TuningEnergyKJ)
	fmt.Fprintf(out, "  best accuracy:     %.3f (max observed %.3f, target reached: %v)\n",
		r.BestAccuracy, r.MaxAccuracy, r.ReachedTarget)
	fmt.Fprintf(out, "  best configuration:\n")
	keys := make([]string, 0, len(r.BestConfig))
	for k := range r.BestConfig {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(out, "    %-12s %g\n", k, r.BestConfig[k])
	}
	rec := r.Recommendation
	if rec.BatchSize > 0 {
		label := "inference recommendation"
		if r.RecommendationDegraded {
			label += " (degraded fallback)"
		}
		fmt.Fprintf(out, "  %s (%s):\n", label, rec.Device)
		fmt.Fprintf(out, "    batch size    %d\n", rec.BatchSize)
		fmt.Fprintf(out, "    cores         %d\n", rec.Cores)
		fmt.Fprintf(out, "    frequency     %.2f GHz\n", rec.FrequencyGHz)
		fmt.Fprintf(out, "    throughput    %.1f samples/s\n", rec.Throughput)
		fmt.Fprintf(out, "    energy        %.3f J/sample\n", rec.EnergyPerSampleJ)
	}
	if len(r.Profile) > 0 {
		fmt.Fprintf(out, "  profile (allocs/op, bytes/op):\n")
		for _, p := range r.Profile {
			fmt.Fprintf(out, "    %-22s %8.1f  %10.0f\n", p.Stage, p.AllocsPerOp, p.BytesPerOp)
		}
	}
	if len(r.Incidents) > 0 {
		fmt.Fprintf(out, "  incidents:\n")
		for _, inc := range r.Incidents {
			fmt.Fprintf(out, "    #%d %-17s at %.1fm  events=%d  %s\n",
				inc.Seq, inc.Trigger, inc.AtMinutes, inc.Events, inc.Digest)
			if inc.Path != "" {
				fmt.Fprintf(out, "       dossier %s\n", inc.Path)
			}
		}
	}
	if a := r.Autoscale; a != nil {
		fmt.Fprintf(out, "  autoscale:\n")
		fmt.Fprintf(out, "    ticks             %d (decisions %d)\n", a.Ticks, a.Decisions)
		fmt.Fprintf(out, "    scale up/down     %d/%d (final replicas %d)\n",
			a.ScaleUps, a.ScaleDowns, a.FinalReplicas)
		fmt.Fprintf(out, "    ladder            deepest %s, final %s (degrade/recover %d/%d)\n",
			a.DeepestMode, a.FinalMode, a.DegradeSteps, a.RecoverSteps)
		fmt.Fprintf(out, "    warm-up cost      %.1f simulated minutes, %.3f kJ\n",
			a.WarmupMinutes, a.WarmupEnergyKJ)
		fmt.Fprintf(out, "    digest            %s\n", a.Digest)
	}
	res := r.Resilience
	if res.TotalFaults > 0 || res.Retries > 0 || res.ResumedRungs > 0 {
		fmt.Fprintf(out, "  resilience:\n")
		fmt.Fprintf(out, "    faults injected   %d\n", res.TotalFaults)
		for _, f := range res.Faults {
			fmt.Fprintf(out, "      %-15s %d\n", f.Class, f.Count)
		}
		fmt.Fprintf(out, "    retries           %d\n", res.Retries)
		fmt.Fprintf(out, "    breaker open/half/close  %d/%d/%d\n",
			res.BreakerOpens, res.BreakerHalfOpens, res.BreakerCloses)
		fmt.Fprintf(out, "    degraded outcomes %d\n", res.Degraded)
		if res.ResumedRungs > 0 {
			fmt.Fprintf(out, "    resumed rungs     %d\n", res.ResumedRungs)
		}
	}
	// Serving counters, printed in a fixed order so reports are
	// byte-stable across identically-seeded runs.
	if res.Shed > 0 || res.RateLimited > 0 || res.Preempted > 0 ||
		res.Hedges > 0 || res.Quarantines > 0 || res.Probes > 0 || res.Drained > 0 {
		fmt.Fprintf(out, "  serving:\n")
		fmt.Fprintf(out, "    shed              %d\n", res.Shed)
		fmt.Fprintf(out, "    rate limited      %d\n", res.RateLimited)
		fmt.Fprintf(out, "    preempted         %d\n", res.Preempted)
		fmt.Fprintf(out, "    hedges (won)      %d (%d)\n", res.Hedges, res.HedgeWins)
		fmt.Fprintf(out, "    quarantines       %d\n", res.Quarantines)
		fmt.Fprintf(out, "    probes            %d\n", res.Probes)
		fmt.Fprintf(out, "    drained           %d\n", res.Drained)
	}
}
