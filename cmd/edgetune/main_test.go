package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edgetune"
)

// quickArgs keep CLI tests fast: a tiny job file overriding the search
// scale.
func quickJobFile(t *testing.T, job edgetune.Job) string {
	t.Helper()
	if job.Configs == 0 {
		job.Configs = 2
	}
	if job.Rungs == 0 {
		job.Rungs = 2
	}
	if job.Brackets == 0 {
		job.Brackets = 1
	}
	if job.InferenceTrials == 0 {
		job.InferenceTrials = 4
	}
	data, err := json.Marshal(job)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "job.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTextReport(t *testing.T) {
	path := quickJobFile(t, edgetune.Job{Workload: "IC", Seed: 1})
	var out bytes.Buffer
	if err := run([]string{"-job", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"EdgeTune report",
		"workload IC on device i7",
		"inference recommendation (i7):",
		"batch size",
		"throughput",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}

func TestRunJSONReport(t *testing.T) {
	path := quickJobFile(t, edgetune.Job{Workload: "IC", Seed: 1})
	var out bytes.Buffer
	if err := run([]string{"-job", path, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var rep edgetune.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Workload != "IC" || rep.TrialsRun == 0 {
		t.Errorf("unexpected report: %+v", rep)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-workload", "XX"}, &out); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-job", "/does/not/exist.json"}, &out); err == nil {
		t.Error("missing job file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-job", bad}, &out); err == nil {
		t.Error("corrupt job file accepted")
	}
	if err := run([]string{"-bogus-flag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunChaosTextReport(t *testing.T) {
	path := quickJobFile(t, edgetune.Job{
		Workload: "IC",
		Seed:     1,
		Faults:   edgetune.FaultConfig{TrialCrash: 0.3, DroppedReply: 0.3},
	})
	var out bytes.Buffer
	if err := run([]string{"-job", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"resilience:", "faults injected", "retries"} {
		if !strings.Contains(got, want) {
			t.Errorf("chaos report missing %q:\n%s", want, got)
		}
	}
}

func TestRunOverloadTextReport(t *testing.T) {
	path := quickJobFile(t, edgetune.Job{
		Workload: "IC",
		Seed:     1,
		Faults:   edgetune.FaultConfig{OverloadBurst: 0.5},
	})
	var out bytes.Buffer
	if err := run([]string{"-job", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"serving:", "shed", "rate limited", "hedges (won)", "drained"} {
		if !strings.Contains(got, want) {
			t.Errorf("overload report missing %q:\n%s", want, got)
		}
	}
	// Same seed, same job: the serving block must be byte-stable.
	var again bytes.Buffer
	if err := run([]string{"-job", path}, &again); err != nil {
		t.Fatal(err)
	}
	if got != again.String() {
		t.Error("identically-seeded runs produced different reports")
	}
}

func TestRunMetricsSLOSection(t *testing.T) {
	path := quickJobFile(t, edgetune.Job{
		Workload: "IC",
		Seed:     1,
		Faults:   edgetune.FaultConfig{OverloadBurst: 0.5},
	})
	var out bytes.Buffer
	if err := run([]string{"-job", path, "-metrics"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"metrics:", "slo (horizon", "serving/rejections", "serving/latency",
		"tuning/trial-overrun", "window",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("-metrics output missing %q:\n%s", want, got)
		}
	}
}

func TestRunFaultFlagValidation(t *testing.T) {
	// An out-of-range probability must fail fast, before any trial runs
	// — this exercises the flag plumbing without a full tuning job.
	var out bytes.Buffer
	if err := run([]string{"-workload", "IC", "-fault-crash", "1.5"}, &out); err == nil {
		t.Error("out-of-range -fault-crash accepted")
	}
	if err := run([]string{"-workload", "IC", "-max-attempts", "-2"}, &out); err == nil {
		t.Error("negative -max-attempts accepted")
	}
}

func TestRunNoInferenceOmitsRecommendation(t *testing.T) {
	path := quickJobFile(t, edgetune.Job{Workload: "IC", Seed: 1, WithoutInference: true})
	var out bytes.Buffer
	if err := run([]string{"-job", path}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "inference recommendation") {
		t.Error("inference-unaware run printed a recommendation")
	}
}

// TestTraceFlagDeterministic: running the CLI twice with the same job
// and seed must produce byte-identical trace files.
func TestTraceFlagDeterministic(t *testing.T) {
	path := quickJobFile(t, edgetune.Job{
		Workload: "IC",
		Seed:     11,
		Faults:   edgetune.FaultConfig{TrialCrash: 0.2, Straggler: 0.2},
	})
	dir := t.TempDir()
	trace := func(name string) []byte {
		t.Helper()
		out := filepath.Join(dir, name)
		var buf bytes.Buffer
		if err := run([]string{"-job", path, "-trace", out}, &buf); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Fatal("trace file is empty")
		}
		return data
	}
	a, b := trace("a.jsonl"), trace("b.jsonl")
	if !bytes.Equal(a, b) {
		t.Error("same-seed trace files differ")
	}
}
