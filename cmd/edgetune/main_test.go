package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edgetune"
)

// quickArgs keep CLI tests fast: a tiny job file overriding the search
// scale.
func quickJobFile(t *testing.T, job edgetune.Job) string {
	t.Helper()
	if job.Configs == 0 {
		job.Configs = 2
	}
	if job.Rungs == 0 {
		job.Rungs = 2
	}
	if job.Brackets == 0 {
		job.Brackets = 1
	}
	if job.InferenceTrials == 0 {
		job.InferenceTrials = 4
	}
	data, err := json.Marshal(job)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "job.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTextReport(t *testing.T) {
	path := quickJobFile(t, edgetune.Job{Workload: "IC", Seed: 1})
	var out bytes.Buffer
	if err := run([]string{"-job", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"EdgeTune report",
		"workload IC on device i7",
		"inference recommendation (i7):",
		"batch size",
		"throughput",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}

func TestRunJSONReport(t *testing.T) {
	path := quickJobFile(t, edgetune.Job{Workload: "IC", Seed: 1})
	var out bytes.Buffer
	if err := run([]string{"-job", path, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var rep edgetune.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Workload != "IC" || rep.TrialsRun == 0 {
		t.Errorf("unexpected report: %+v", rep)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-workload", "XX"}, &out); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-job", "/does/not/exist.json"}, &out); err == nil {
		t.Error("missing job file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-job", bad}, &out); err == nil {
		t.Error("corrupt job file accepted")
	}
	if err := run([]string{"-bogus-flag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunChaosTextReport(t *testing.T) {
	path := quickJobFile(t, edgetune.Job{
		Workload: "IC",
		Seed:     1,
		Faults:   edgetune.FaultConfig{TrialCrash: 0.3, DroppedReply: 0.3},
	})
	var out bytes.Buffer
	if err := run([]string{"-job", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"resilience:", "faults injected", "retries"} {
		if !strings.Contains(got, want) {
			t.Errorf("chaos report missing %q:\n%s", want, got)
		}
	}
}

func TestRunOverloadTextReport(t *testing.T) {
	path := quickJobFile(t, edgetune.Job{
		Workload: "IC",
		Seed:     1,
		Faults:   edgetune.FaultConfig{OverloadBurst: 0.5},
	})
	var out bytes.Buffer
	if err := run([]string{"-job", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"serving:", "shed", "rate limited", "hedges (won)", "drained"} {
		if !strings.Contains(got, want) {
			t.Errorf("overload report missing %q:\n%s", want, got)
		}
	}
	// Same seed, same job: the serving block must be byte-stable.
	var again bytes.Buffer
	if err := run([]string{"-job", path}, &again); err != nil {
		t.Fatal(err)
	}
	if got != again.String() {
		t.Error("identically-seeded runs produced different reports")
	}
}

func TestRunMetricsSLOSection(t *testing.T) {
	path := quickJobFile(t, edgetune.Job{
		Workload: "IC",
		Seed:     1,
		Faults:   edgetune.FaultConfig{OverloadBurst: 0.5},
	})
	var out bytes.Buffer
	if err := run([]string{"-job", path, "-metrics"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"metrics:", "slo (horizon", "serving/rejections", "serving/latency",
		"tuning/trial-overrun", "window",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("-metrics output missing %q:\n%s", want, got)
		}
	}
}

func TestRunFaultFlagValidation(t *testing.T) {
	// Malformed flag values must fail fast with a one-line error before
	// any trial runs — this exercises the flag plumbing without a full
	// tuning job.
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"prob-above-one", []string{"-fault-crash", "1.5"}, "outside [0,1]"},
		{"prob-negative", []string{"-fault-flash-crowd", "-0.1"}, "outside [0,1]"},
		{"mass-devicefail-above-one", []string{"-fault-mass-devicefail", "2"}, "outside [0,1]"},
		{"scale-stall-negative", []string{"-fault-scale-stall", "-1"}, "outside [0,1]"},
		{"shard-kill-above-one", []string{"-fault-shard-kill", "7"}, "outside [0,1]"},
		{"negative-max-attempts", []string{"-max-attempts", "-2"}, "negative"},
		{"negative-autoscale-min", []string{"-autoscale-min", "-1"}, "negative"},
		{"negative-autoscale-max", []string{"-autoscale-max", "-4"}, "negative"},
		{"negative-tenant-rate", []string{"-tenant-rate", "-0.5"}, "negative"},
		{"negative-tenant-burst", []string{"-tenant-burst", "-4"}, "negative"},
		{"negative-brownout-factor", []string{"-brownout-factor", "-6"}, "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(append([]string{"-workload", "IC"}, tc.args...), &out)
			if err == nil {
				t.Fatalf("%v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.args[0]) || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %q, want it to name %s and say %q", err, tc.args[0], tc.want)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Errorf("validation error spans multiple lines: %q", err)
			}
		})
	}
	// The documented exception: a negative -store-snapshot-every
	// disables periodic compaction and must stay accepted.
	path := quickJobFile(t, edgetune.Job{Workload: "IC", Seed: 1})
	var out bytes.Buffer
	st := filepath.Join(t.TempDir(), "h.json")
	if err := run([]string{"-job", path, "-store", st, "-store-wal", "-store-snapshot-every", "-1"}, &out); err != nil {
		t.Errorf("negative -store-snapshot-every rejected: %v", err)
	}
}

func TestRunAutoscaleTextReport(t *testing.T) {
	var out bytes.Buffer
	args := []string{
		"-workload", "IC", "-seed", "7",
		"-autoscale", "-autoscale-max", "3",
		"-fault-flash-crowd", "0.3",
	}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"autoscale:",
		"scale up/down",
		"ladder",
		"warm-up cost",
		"digest",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("autoscale report missing %q:\n%s", want, got)
		}
	}
	// Same seed, same flags: the autoscale block (digest included) must
	// be byte-stable.
	var again bytes.Buffer
	if err := run(args, &again); err != nil {
		t.Fatal(err)
	}
	if got != again.String() {
		t.Error("identically-seeded autoscaled runs produced different reports")
	}
}

func TestRunNoInferenceOmitsRecommendation(t *testing.T) {
	path := quickJobFile(t, edgetune.Job{Workload: "IC", Seed: 1, WithoutInference: true})
	var out bytes.Buffer
	if err := run([]string{"-job", path}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "inference recommendation") {
		t.Error("inference-unaware run printed a recommendation")
	}
}

// TestTraceFlagDeterministic: running the CLI twice with the same job
// and seed must produce byte-identical trace files.
func TestTraceFlagDeterministic(t *testing.T) {
	path := quickJobFile(t, edgetune.Job{
		Workload: "IC",
		Seed:     11,
		Faults:   edgetune.FaultConfig{TrialCrash: 0.2, Straggler: 0.2},
	})
	dir := t.TempDir()
	trace := func(name string) []byte {
		t.Helper()
		out := filepath.Join(dir, name)
		var buf bytes.Buffer
		if err := run([]string{"-job", path, "-trace", out}, &buf); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Fatal("trace file is empty")
		}
		return data
	}
	a, b := trace("a.jsonl"), trace("b.jsonl")
	if !bytes.Equal(a, b) {
		t.Error("same-seed trace files differ")
	}
}
