// Command benchtab regenerates every table and figure of the paper's
// evaluation as text tables (the same data the root benchmarks report).
//
// Usage:
//
//	benchtab            # all experiments, paper order
//	benchtab -only 13   # a single figure/table by number
//	benchtab -list      # list available experiments
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"edgetune/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	var (
		only = fs.String("only", "", "run only the experiment whose ID contains this string (e.g. \"13\" or \"Table 1\")")
		list = fs.Bool("list", false, "list experiment IDs and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ran := 0
	for _, exp := range experiments.All() {
		if *only != "" && !strings.Contains(exp.ID, *only) {
			continue
		}
		if *list {
			fmt.Fprintf(out, "%s\n", exp.ID)
			ran++
			continue
		}
		start := time.Now()
		tab, err := exp.Run()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s(regenerated in %.1fs)\n\n", tab, time.Since(start).Seconds())
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches %q", *only)
	}
	return nil
}
