// Command benchtab regenerates every table and figure of the paper's
// evaluation as text tables (the same data the root benchmarks report).
//
// Usage:
//
//	benchtab                   # all experiments, paper order
//	benchtab -only 13          # a single figure/table by number
//	benchtab -list             # list available experiments
//	benchtab -json bench.json  # also write per-experiment wall times
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"edgetune/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

// benchEntry is one experiment's wall-time record in the -json output.
type benchEntry struct {
	ID          string  `json:"id"`
	Title       string  `json:"title"`
	Rows        int     `json:"rows"`
	WallSeconds float64 `json:"wallSeconds"`
}

// benchReport is the -json output: per-experiment regeneration times,
// for CI trend tracking.
type benchReport struct {
	Experiments  []benchEntry `json:"experiments"`
	TotalSeconds float64      `json:"totalSeconds"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	var (
		only     = fs.String("only", "", "run only the experiment whose ID contains this string (e.g. \"13\" or \"Table 1\")")
		list     = fs.Bool("list", false, "list experiment IDs and exit")
		jsonPath = fs.String("json", "", "write per-experiment wall times to this JSON file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var bench benchReport
	ran := 0
	for _, exp := range experiments.All() {
		if *only != "" && !strings.Contains(exp.ID, *only) {
			continue
		}
		if *list {
			fmt.Fprintf(out, "%s\n", exp.ID)
			ran++
			continue
		}
		start := time.Now()
		tab, err := exp.Run()
		if err != nil {
			return err
		}
		elapsed := time.Since(start).Seconds()
		fmt.Fprintf(out, "%s(regenerated in %.1fs)\n\n", tab, elapsed)
		bench.Experiments = append(bench.Experiments, benchEntry{
			ID:          exp.ID,
			Title:       tab.Title,
			Rows:        len(tab.Rows),
			WallSeconds: elapsed,
		})
		bench.TotalSeconds += elapsed
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches %q", *only)
	}
	if *jsonPath != "" && !*list {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}
