// Command benchtab regenerates every table and figure of the paper's
// evaluation as text tables (the same data the root benchmarks report).
//
// Usage:
//
//	benchtab                   # all experiments, paper order
//	benchtab -only 13          # a single figure/table by number
//	benchtab -list             # list available experiments
//	benchtab -json bench.json  # also write per-experiment wall times
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"edgetune/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

// benchEntry is one experiment's record in the -json output: wall time
// plus, for experiments carrying an alloc probe, the hot loop's
// allocation cost per operation. The alloc fields are pointers so a
// probed zero-alloc loop still reports "allocs_per_op": 0 — that zero
// is a guarantee the regression gate protects — while unprobed
// experiments omit the fields entirely.
type benchEntry struct {
	ID          string   `json:"id"`
	Title       string   `json:"title"`
	Rows        int      `json:"rows"`
	WallSeconds float64  `json:"wallSeconds"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
}

// benchReport is the -json output: per-experiment regeneration times,
// for CI trend tracking.
type benchReport struct {
	Experiments  []benchEntry `json:"experiments"`
	TotalSeconds float64      `json:"totalSeconds"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	var (
		only     = fs.String("only", "", "run only experiments whose ID contains one of these comma-separated strings (e.g. \"13\", \"Table 1\", or \"Table 2,Benchmark\")")
		list     = fs.Bool("list", false, "list experiment IDs and exit")
		jsonPath = fs.String("json", "", "write per-experiment wall times to this JSON file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var filters []string
	if *only != "" {
		filters = strings.Split(*only, ",")
	}
	matches := func(id string) bool {
		if len(filters) == 0 {
			return true
		}
		for _, f := range filters {
			if strings.Contains(id, strings.TrimSpace(f)) {
				return true
			}
		}
		return false
	}

	var bench benchReport
	ran := 0
	for _, exp := range experiments.All() {
		if !matches(exp.ID) {
			continue
		}
		if *list {
			fmt.Fprintf(out, "%s\n", exp.ID)
			ran++
			continue
		}
		start := time.Now()
		tab, err := exp.Run()
		if err != nil {
			return err
		}
		elapsed := time.Since(start).Seconds()
		fmt.Fprintf(out, "%s(regenerated in %.1fs)\n\n", tab, elapsed)
		entry := benchEntry{
			ID:          exp.ID,
			Title:       tab.Title,
			Rows:        len(tab.Rows),
			WallSeconds: elapsed,
		}
		if tab.ProbeRuns > 0 {
			allocs, bytes := tab.AllocsPerOp, tab.BytesPerOp
			entry.AllocsPerOp, entry.BytesPerOp = &allocs, &bytes
		}
		bench.Experiments = append(bench.Experiments, entry)
		bench.TotalSeconds += elapsed
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches %q", *only)
	}
	if *jsonPath != "" && !*list {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}
