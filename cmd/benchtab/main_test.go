package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"Figure 1", "Figure 17", "Table 1", "Table 2",
		"BenchmarkAutoscaleDecision", "BenchmarkNNMiniBatch",
		"BenchmarkWALAppend", "BenchmarkClusterDispatch",
		"BenchmarkFlightRecord",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("list missing %q", want)
		}
	}
	if lines := strings.Count(got, "\n"); lines != 26 {
		t.Errorf("list has %d lines, want 26 experiments", lines)
	}
}

func TestRunOnly(t *testing.T) {
	var out bytes.Buffer
	// Table 2 is static and instantaneous.
	if err := run([]string{"-only", "Table 2"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "EdgeTune") || strings.Contains(got, "Figure 1 —") {
		t.Errorf("filter leaked other experiments:\n%s", got)
	}
}

func TestRunOnlyNoMatch(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "Figure 99"}, &out); err == nil {
		t.Error("non-matching filter did not error")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-frobnicate"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunJSON(t *testing.T) {
	var out bytes.Buffer
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-only", "Table 2", "-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Experiments []struct {
			ID          string  `json:"id"`
			Title       string  `json:"title"`
			Rows        int     `json:"rows"`
			WallSeconds float64 `json:"wallSeconds"`
		} `json:"experiments"`
		TotalSeconds float64 `json:"totalSeconds"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench JSON does not parse: %v", err)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "Table 2" {
		t.Fatalf("experiments = %+v, want exactly Table 2", rep.Experiments)
	}
	if rep.Experiments[0].Rows == 0 || rep.Experiments[0].Title == "" {
		t.Errorf("entry missing rows/title: %+v", rep.Experiments[0])
	}
	if rep.Experiments[0].WallSeconds < 0 {
		t.Errorf("negative wall time: %v", rep.Experiments[0].WallSeconds)
	}
}
