package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Figure 1", "Figure 17", "Table 1", "Table 2"} {
		if !strings.Contains(got, want) {
			t.Errorf("list missing %q", want)
		}
	}
	if lines := strings.Count(got, "\n"); lines != 18 {
		t.Errorf("list has %d lines, want 18 experiments", lines)
	}
}

func TestRunOnly(t *testing.T) {
	var out bytes.Buffer
	// Table 2 is static and instantaneous.
	if err := run([]string{"-only", "Table 2"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "EdgeTune") || strings.Contains(got, "Figure 1 —") {
		t.Errorf("filter leaked other experiments:\n%s", got)
	}
}

func TestRunOnlyNoMatch(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "Figure 99"}, &out); err == nil {
		t.Error("non-matching filter did not error")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-frobnicate"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
