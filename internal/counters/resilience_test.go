package counters

import (
	"reflect"
	"sync"
	"testing"

	"edgetune/internal/obs"
)

func TestResilienceNilSafe(t *testing.T) {
	var r *Resilience
	r.RecordFault("trial-crash")
	r.AddRetry()
	r.AddShed()
	r.AddRateLimited()
	r.AddPreempted()
	r.AddHedge()
	r.AddHedgeWin()
	r.AddQuarantine()
	r.AddProbe()
	r.AddDrained()
	r.AddResumedRungs(2)
	if s := r.Snapshot(); !reflect.DeepEqual(s, ResilienceSnapshot{}) {
		t.Errorf("nil snapshot = %+v", s)
	}
	r.Restore(ResilienceSnapshot{Shed: 1}) // must not panic
}

func TestResilienceServingCounters(t *testing.T) {
	r := NewResilience()
	for i := 0; i < 3; i++ {
		r.AddShed()
	}
	r.AddRateLimited()
	r.AddRateLimited()
	r.AddPreempted()
	r.AddHedge()
	r.AddHedge()
	r.AddHedgeWin()
	r.AddQuarantine()
	r.AddProbe()
	r.AddDrained()
	s := r.Snapshot()
	want := ResilienceSnapshot{
		Shed: 3, RateLimited: 2, Preempted: 1,
		Hedges: 2, HedgeWins: 1, Quarantines: 1, Probes: 1, Drained: 1,
	}
	if !reflect.DeepEqual(s, want) {
		t.Errorf("snapshot = %+v, want %+v", s, want)
	}
}

func TestResilienceRestoreRoundTrip(t *testing.T) {
	r := NewResilience()
	r.RecordFault("overload-burst")
	r.AddShed()
	r.AddHedge()
	r.AddHedgeWin()
	r.AddQuarantine()
	r.AddDrained()
	snap := r.Snapshot()

	fresh := NewResilience()
	fresh.Restore(snap)
	if got := fresh.Snapshot(); !reflect.DeepEqual(got, snap) {
		t.Errorf("restored snapshot = %+v, want %+v", got, snap)
	}
	// Counters keep accumulating on top of a restore.
	fresh.AddShed()
	if got := fresh.Snapshot().Shed; got != snap.Shed+1 {
		t.Errorf("shed after restore+add = %d, want %d", got, snap.Shed+1)
	}
}

func TestResilienceConcurrentServingCounters(t *testing.T) {
	r := NewResilience()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.AddShed()
				r.AddHedge()
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Shed != 800 || s.Hedges != 800 {
		t.Errorf("shed/hedges = %d/%d, want 800/800", s.Shed, s.Hedges)
	}
}

func TestResilienceBackedByRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewResilienceOn(reg)
	if r.Registry() != reg {
		t.Fatal("Registry() must expose the backing registry")
	}
	r.AddShed()
	r.AddRetry()
	r.AddRetry()
	r.RecordFault("trial-crash")
	snap := reg.Snapshot()
	if got := snap.Counter("serving.shed"); got != 1 {
		t.Errorf("registry serving.shed = %d, want 1", got)
	}
	if got := snap.Counter("resilience.retries"); got != 2 {
		t.Errorf("registry resilience.retries = %d, want 2", got)
	}
	if got := snap.Counter("fault.trial-crash"); got != 1 {
		t.Errorf("registry fault.trial-crash = %d, want 1", got)
	}
	// The typed snapshot reads the same cells.
	s := r.Snapshot()
	if s.Shed != 1 || s.Retries != 2 || s.FaultCount("trial-crash") != 1 {
		t.Errorf("typed snapshot disagrees with registry: %+v", s)
	}
	// Restore replaces fault classes rather than merging them.
	r.Restore(ResilienceSnapshot{Faults: []FaultCount{{Class: "straggler", Count: 3}}})
	s = r.Snapshot()
	if s.FaultCount("trial-crash") != 0 || s.FaultCount("straggler") != 3 || s.TotalFaults != 3 {
		t.Errorf("restore did not replace fault state: %+v", s)
	}
	if r.Registry() == nil {
		t.Fatal("backing registry lost after restore")
	}
	var nilRec *Resilience
	if nilRec.Registry() != nil {
		t.Fatal("nil recorder must have nil registry")
	}
}
