package counters

import (
	"reflect"
	"sync"
	"testing"
)

func TestResilienceNilSafe(t *testing.T) {
	var r *Resilience
	r.RecordFault("trial-crash")
	r.AddRetry()
	r.AddShed()
	r.AddRateLimited()
	r.AddPreempted()
	r.AddHedge()
	r.AddHedgeWin()
	r.AddQuarantine()
	r.AddProbe()
	r.AddDrained()
	r.AddResumedRungs(2)
	if s := r.Snapshot(); !reflect.DeepEqual(s, ResilienceSnapshot{}) {
		t.Errorf("nil snapshot = %+v", s)
	}
	r.Restore(ResilienceSnapshot{Shed: 1}) // must not panic
}

func TestResilienceServingCounters(t *testing.T) {
	r := NewResilience()
	for i := 0; i < 3; i++ {
		r.AddShed()
	}
	r.AddRateLimited()
	r.AddRateLimited()
	r.AddPreempted()
	r.AddHedge()
	r.AddHedge()
	r.AddHedgeWin()
	r.AddQuarantine()
	r.AddProbe()
	r.AddDrained()
	s := r.Snapshot()
	want := ResilienceSnapshot{
		Shed: 3, RateLimited: 2, Preempted: 1,
		Hedges: 2, HedgeWins: 1, Quarantines: 1, Probes: 1, Drained: 1,
	}
	if !reflect.DeepEqual(s, want) {
		t.Errorf("snapshot = %+v, want %+v", s, want)
	}
}

func TestResilienceRestoreRoundTrip(t *testing.T) {
	r := NewResilience()
	r.RecordFault("overload-burst")
	r.AddShed()
	r.AddHedge()
	r.AddHedgeWin()
	r.AddQuarantine()
	r.AddDrained()
	snap := r.Snapshot()

	fresh := NewResilience()
	fresh.Restore(snap)
	if got := fresh.Snapshot(); !reflect.DeepEqual(got, snap) {
		t.Errorf("restored snapshot = %+v, want %+v", got, snap)
	}
	// Counters keep accumulating on top of a restore.
	fresh.AddShed()
	if got := fresh.Snapshot().Shed; got != snap.Shed+1 {
		t.Errorf("shed after restore+add = %d, want %d", got, snap.Shed+1)
	}
}

func TestResilienceConcurrentServingCounters(t *testing.T) {
	r := NewResilience()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.AddShed()
				r.AddHedge()
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Shed != 800 || s.Hedges != 800 {
		t.Errorf("shed/hedges = %d/%d, want 800/800", s.Shed, s.Hedges)
	}
}
