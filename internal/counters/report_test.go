package counters

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	c, err := NewCollector(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	train, err := c.Collect(TrainingForward, 1)
	if err != nil {
		t.Fatal(err)
	}
	infer, err := c.Collect(Inference, 1)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteCSV(&buf, train, infer); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(rows) != len(Events())+1 {
		t.Fatalf("%d rows, want header + %d events", len(rows), len(Events()))
	}
	if rows[0][0] != "event" || rows[0][4] != "ratio" {
		t.Errorf("header = %v", rows[0])
	}
	for _, row := range rows[1:] {
		if row[1] != "cpu" && row[1] != "memory" {
			t.Errorf("bad class %q", row[1])
		}
		if !strings.Contains(row[4], ".") {
			t.Errorf("ratio %q not formatted as a decimal", row[4])
		}
	}
}

func TestWriteCSVValidation(t *testing.T) {
	c, _ := NewCollector(1, 0)
	train, _ := c.Collect(TrainingForward, 1)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, train, train[:2]); err == nil {
		t.Error("mismatched lengths accepted")
	}
	infer, _ := c.Collect(Inference, 1)
	infer[0], infer[1] = infer[1], infer[0]
	if err := WriteCSV(&buf, train, infer); err == nil {
		t.Error("misaligned readings accepted")
	}
}
