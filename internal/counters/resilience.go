package counters

import (
	"sort"
	"strings"

	"edgetune/internal/obs"
)

// Registry names for the resilience and serving counters. Keeping them
// in one place ties the typed accessors below to the generic metrics
// snapshot: both views read the same obs.Counter cells.
const (
	faultPrefix = "fault."

	nameRetries          = "resilience.retries"
	nameBreakerOpens     = "resilience.breaker.opens"
	nameBreakerHalfOpens = "resilience.breaker.half-opens"
	nameBreakerCloses    = "resilience.breaker.closes"
	nameDegraded         = "resilience.degraded"
	nameResumedRungs     = "resilience.resumed-rungs"

	nameShed        = "serving.shed"
	nameRateLimited = "serving.rate-limited"
	namePreempted   = "serving.preempted"
	nameHedges      = "serving.hedges"
	nameHedgeWins   = "serving.hedge-wins"
	nameQuarantines = "serving.quarantines"
	nameProbes      = "serving.probes"
	nameDrained     = "serving.drained"
)

// Resilience accumulates the fault-tolerance counters of a tuning job:
// injected faults by class, retries, circuit-breaker transitions,
// degraded outcomes, and checkpoint-resume savings. It is a typed
// facade over an obs.Registry — the same cells surface in the generic
// metrics snapshot under "resilience.*", "serving.*", and "fault.*"
// names. All methods are safe for concurrent use and nil-safe, so call
// sites need no guards when resilience accounting is disabled.
type Resilience struct {
	reg *obs.Registry

	retries          *obs.Counter
	breakerOpens     *obs.Counter
	breakerHalfOpens *obs.Counter
	breakerCloses    *obs.Counter
	degraded         *obs.Counter
	resumedRungs     *obs.Counter

	shed        *obs.Counter
	rateLimited *obs.Counter
	preempted   *obs.Counter
	hedges      *obs.Counter
	hedgeWins   *obs.Counter
	quarantines *obs.Counter
	probes      *obs.Counter
	drained     *obs.Counter
}

// NewResilience returns an empty counter set on a private registry.
func NewResilience() *Resilience {
	return NewResilienceOn(obs.NewRegistry())
}

// NewResilienceOn returns a counter set registered on reg, so the
// resilience counters appear alongside the rest of the job's metrics.
// A nil reg gets a private registry.
func NewResilienceOn(reg *obs.Registry) *Resilience {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Resilience{
		reg:              reg,
		retries:          reg.Counter(nameRetries),
		breakerOpens:     reg.Counter(nameBreakerOpens),
		breakerHalfOpens: reg.Counter(nameBreakerHalfOpens),
		breakerCloses:    reg.Counter(nameBreakerCloses),
		degraded:         reg.Counter(nameDegraded),
		resumedRungs:     reg.Counter(nameResumedRungs),
		shed:             reg.Counter(nameShed),
		rateLimited:      reg.Counter(nameRateLimited),
		preempted:        reg.Counter(namePreempted),
		hedges:           reg.Counter(nameHedges),
		hedgeWins:        reg.Counter(nameHedgeWins),
		quarantines:      reg.Counter(nameQuarantines),
		probes:           reg.Counter(nameProbes),
		drained:          reg.Counter(nameDrained),
	}
}

// Registry exposes the backing registry (nil for a nil receiver), so
// callers can register further instruments next to these counters.
func (r *Resilience) Registry() *obs.Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// RecordFault counts one injected fault of the named class.
func (r *Resilience) RecordFault(class string) {
	if r == nil {
		return
	}
	r.reg.Counter(faultPrefix + class).Inc()
}

// AddRetry counts one retried operation (trial re-run or inference
// request re-attempt).
func (r *Resilience) AddRetry() {
	if r == nil {
		return
	}
	r.retries.Inc()
}

// AddBreakerOpen counts a closed→open (or half-open→open) transition.
func (r *Resilience) AddBreakerOpen() {
	if r == nil {
		return
	}
	r.breakerOpens.Inc()
}

// AddBreakerHalfOpen counts an open→half-open transition.
func (r *Resilience) AddBreakerHalfOpen() {
	if r == nil {
		return
	}
	r.breakerHalfOpens.Inc()
}

// AddBreakerClose counts a half-open→closed transition.
func (r *Resilience) AddBreakerClose() {
	if r == nil {
		return
	}
	r.breakerCloses.Inc()
}

// AddDegraded counts one outcome served from a fallback (historical
// store entry or performance-model estimate) instead of a measurement.
func (r *Resilience) AddDegraded() {
	if r == nil {
		return
	}
	r.degraded.Inc()
}

// AddShed counts one submission rejected at the admission gate because
// the intake queue was full (or an injected overload burst fired).
func (r *Resilience) AddShed() {
	if r == nil {
		return
	}
	r.shed.Inc()
}

// AddRateLimited counts one submission rejected by the per-client
// token-bucket rate limiter.
func (r *Resilience) AddRateLimited() {
	if r == nil {
		return
	}
	r.rateLimited.Inc()
}

// AddPreempted counts one queued background request evicted to make
// room for a recommendation-critical one.
func (r *Resilience) AddPreempted() {
	if r == nil {
		return
	}
	r.preempted.Inc()
}

// AddHedge counts one speculative re-issue to a second device after the
// primary exceeded its straggler deadline or failed transiently.
func (r *Resilience) AddHedge() {
	if r == nil {
		return
	}
	r.hedges.Inc()
}

// AddHedgeWin counts a hedge whose secondary attempt produced the
// winning result.
func (r *Resilience) AddHedgeWin() {
	if r == nil {
		return
	}
	r.hedgeWins.Inc()
}

// AddQuarantine counts a device transition into the quarantined state.
func (r *Resilience) AddQuarantine() {
	if r == nil {
		return
	}
	r.quarantines.Inc()
}

// AddProbe counts a probe request routed to a quarantined device to
// test for recovery.
func (r *Resilience) AddProbe() {
	if r == nil {
		return
	}
	r.probes.Inc()
}

// AddDrained counts one in-flight request completed during graceful
// shutdown (after new intake was already rejected).
func (r *Resilience) AddDrained() {
	if r == nil {
		return
	}
	r.drained.Inc()
}

// AddResumedRungs counts rungs skipped because a checkpoint already
// held their results.
func (r *Resilience) AddResumedRungs(n int64) {
	if r == nil || n == 0 {
		return
	}
	r.resumedRungs.Add(n)
}

// FaultCount is one (class, count) pair of a snapshot, sorted by class.
type FaultCount struct {
	Class string `json:"class"`
	Count int64  `json:"count"`
}

// ResilienceSnapshot is a point-in-time copy of the counters, with
// deterministic (sorted) fault ordering so reports serialise
// byte-identically across same-seed runs.
type ResilienceSnapshot struct {
	Faults           []FaultCount `json:"faults,omitempty"`
	TotalFaults      int64        `json:"totalFaults"`
	Retries          int64        `json:"retries"`
	BreakerOpens     int64        `json:"breakerOpens"`
	BreakerHalfOpens int64        `json:"breakerHalfOpens"`
	BreakerCloses    int64        `json:"breakerCloses"`
	Degraded         int64        `json:"degraded"`
	ResumedRungs     int64        `json:"resumedRungs"`

	Shed        int64 `json:"shed"`
	RateLimited int64 `json:"rateLimited"`
	Preempted   int64 `json:"preempted"`
	Hedges      int64 `json:"hedges"`
	HedgeWins   int64 `json:"hedgeWins"`
	Quarantines int64 `json:"quarantines"`
	Probes      int64 `json:"probes"`
	Drained     int64 `json:"drained"`
}

// FaultCount reports the count for one class (0 if never injected).
func (s ResilienceSnapshot) FaultCount(class string) int64 {
	for _, f := range s.Faults {
		if f.Class == class {
			return f.Count
		}
	}
	return 0
}

// Snapshot copies the current counters. A nil receiver yields a zero
// snapshot.
func (r *Resilience) Snapshot() ResilienceSnapshot {
	var s ResilienceSnapshot
	if r == nil {
		return s
	}
	for _, name := range r.reg.CounterNames() {
		if !strings.HasPrefix(name, faultPrefix) {
			continue
		}
		n := r.reg.Counter(name).Value()
		if n == 0 {
			continue
		}
		s.Faults = append(s.Faults, FaultCount{Class: strings.TrimPrefix(name, faultPrefix), Count: n})
		s.TotalFaults += n
	}
	sort.Slice(s.Faults, func(i, j int) bool { return s.Faults[i].Class < s.Faults[j].Class })
	s.Retries = r.retries.Value()
	s.BreakerOpens = r.breakerOpens.Value()
	s.BreakerHalfOpens = r.breakerHalfOpens.Value()
	s.BreakerCloses = r.breakerCloses.Value()
	s.Degraded = r.degraded.Value()
	s.ResumedRungs = r.resumedRungs.Value()
	s.Shed = r.shed.Value()
	s.RateLimited = r.rateLimited.Value()
	s.Preempted = r.preempted.Value()
	s.Hedges = r.hedges.Value()
	s.HedgeWins = r.hedgeWins.Value()
	s.Quarantines = r.quarantines.Value()
	s.Probes = r.probes.Value()
	s.Drained = r.drained.Value()
	return s
}

// Restore overwrites the counters from a snapshot, used when resuming a
// checkpointed job so that the final report's totals cover the whole
// job rather than only the resumed portion.
func (r *Resilience) Restore(s ResilienceSnapshot) {
	if r == nil {
		return
	}
	// Zero fault classes the snapshot no longer carries before loading
	// the saved counts, so Restore fully replaces the fault state.
	for _, name := range r.reg.CounterNames() {
		if strings.HasPrefix(name, faultPrefix) {
			r.reg.Counter(name).Set(0)
		}
	}
	for _, f := range s.Faults {
		r.reg.Counter(faultPrefix + f.Class).Set(f.Count)
	}
	r.retries.Set(s.Retries)
	r.breakerOpens.Set(s.BreakerOpens)
	r.breakerHalfOpens.Set(s.BreakerHalfOpens)
	r.breakerCloses.Set(s.BreakerCloses)
	r.degraded.Set(s.Degraded)
	r.resumedRungs.Set(s.ResumedRungs)
	r.shed.Set(s.Shed)
	r.rateLimited.Set(s.RateLimited)
	r.preempted.Set(s.Preempted)
	r.hedges.Set(s.Hedges)
	r.hedgeWins.Set(s.HedgeWins)
	r.quarantines.Set(s.Quarantines)
	r.probes.Set(s.Probes)
	r.drained.Set(s.Drained)
}
