package counters

import (
	"sort"
	"sync"
)

// Resilience accumulates the fault-tolerance counters of a tuning job:
// injected faults by class, retries, circuit-breaker transitions,
// degraded outcomes, and checkpoint-resume savings. All methods are
// safe for concurrent use and nil-safe, so call sites need no guards
// when resilience accounting is disabled.
type Resilience struct {
	mu     sync.Mutex
	faults map[string]int64

	retries          int64
	breakerOpens     int64
	breakerHalfOpens int64
	breakerCloses    int64
	degraded         int64
	resumedRungs     int64

	shed        int64
	rateLimited int64
	preempted   int64
	hedges      int64
	hedgeWins   int64
	quarantines int64
	probes      int64
	drained     int64
}

// NewResilience returns an empty counter set.
func NewResilience() *Resilience {
	return &Resilience{faults: make(map[string]int64)}
}

// RecordFault counts one injected fault of the named class.
func (r *Resilience) RecordFault(class string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.faults == nil {
		r.faults = make(map[string]int64)
	}
	r.faults[class]++
}

// AddRetry counts one retried operation (trial re-run or inference
// request re-attempt).
func (r *Resilience) AddRetry() {
	if r == nil {
		return
	}
	r.add(&r.retries)
}

// AddBreakerOpen counts a closed→open (or half-open→open) transition.
func (r *Resilience) AddBreakerOpen() {
	if r == nil {
		return
	}
	r.add(&r.breakerOpens)
}

// AddBreakerHalfOpen counts an open→half-open transition.
func (r *Resilience) AddBreakerHalfOpen() {
	if r == nil {
		return
	}
	r.add(&r.breakerHalfOpens)
}

// AddBreakerClose counts a half-open→closed transition.
func (r *Resilience) AddBreakerClose() {
	if r == nil {
		return
	}
	r.add(&r.breakerCloses)
}

// AddDegraded counts one outcome served from a fallback (historical
// store entry or performance-model estimate) instead of a measurement.
func (r *Resilience) AddDegraded() {
	if r == nil {
		return
	}
	r.add(&r.degraded)
}

// AddShed counts one submission rejected at the admission gate because
// the intake queue was full (or an injected overload burst fired).
func (r *Resilience) AddShed() {
	if r == nil {
		return
	}
	r.add(&r.shed)
}

// AddRateLimited counts one submission rejected by the per-client
// token-bucket rate limiter.
func (r *Resilience) AddRateLimited() {
	if r == nil {
		return
	}
	r.add(&r.rateLimited)
}

// AddPreempted counts one queued background request evicted to make
// room for a recommendation-critical one.
func (r *Resilience) AddPreempted() {
	if r == nil {
		return
	}
	r.add(&r.preempted)
}

// AddHedge counts one speculative re-issue to a second device after the
// primary exceeded its straggler deadline or failed transiently.
func (r *Resilience) AddHedge() {
	if r == nil {
		return
	}
	r.add(&r.hedges)
}

// AddHedgeWin counts a hedge whose secondary attempt produced the
// winning result.
func (r *Resilience) AddHedgeWin() {
	if r == nil {
		return
	}
	r.add(&r.hedgeWins)
}

// AddQuarantine counts a device transition into the quarantined state.
func (r *Resilience) AddQuarantine() {
	if r == nil {
		return
	}
	r.add(&r.quarantines)
}

// AddProbe counts a probe request routed to a quarantined device to
// test for recovery.
func (r *Resilience) AddProbe() {
	if r == nil {
		return
	}
	r.add(&r.probes)
}

// AddDrained counts one in-flight request completed during graceful
// shutdown (after new intake was already rejected).
func (r *Resilience) AddDrained() {
	if r == nil {
		return
	}
	r.add(&r.drained)
}

// AddResumedRungs counts rungs skipped because a checkpoint already
// held their results.
func (r *Resilience) AddResumedRungs(n int64) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resumedRungs += n
}

func (r *Resilience) add(field *int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	*field++
}

// FaultCount is one (class, count) pair of a snapshot, sorted by class.
type FaultCount struct {
	Class string `json:"class"`
	Count int64  `json:"count"`
}

// ResilienceSnapshot is a point-in-time copy of the counters, with
// deterministic (sorted) fault ordering so reports serialise
// byte-identically across same-seed runs.
type ResilienceSnapshot struct {
	Faults           []FaultCount `json:"faults,omitempty"`
	TotalFaults      int64        `json:"totalFaults"`
	Retries          int64        `json:"retries"`
	BreakerOpens     int64        `json:"breakerOpens"`
	BreakerHalfOpens int64        `json:"breakerHalfOpens"`
	BreakerCloses    int64        `json:"breakerCloses"`
	Degraded         int64        `json:"degraded"`
	ResumedRungs     int64        `json:"resumedRungs"`

	Shed        int64 `json:"shed"`
	RateLimited int64 `json:"rateLimited"`
	Preempted   int64 `json:"preempted"`
	Hedges      int64 `json:"hedges"`
	HedgeWins   int64 `json:"hedgeWins"`
	Quarantines int64 `json:"quarantines"`
	Probes      int64 `json:"probes"`
	Drained     int64 `json:"drained"`
}

// FaultCount reports the count for one class (0 if never injected).
func (s ResilienceSnapshot) FaultCount(class string) int64 {
	for _, f := range s.Faults {
		if f.Class == class {
			return f.Count
		}
	}
	return 0
}

// Snapshot copies the current counters. A nil receiver yields a zero
// snapshot.
func (r *Resilience) Snapshot() ResilienceSnapshot {
	var s ResilienceSnapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for class, n := range r.faults {
		s.Faults = append(s.Faults, FaultCount{Class: class, Count: n})
		s.TotalFaults += n
	}
	sort.Slice(s.Faults, func(i, j int) bool { return s.Faults[i].Class < s.Faults[j].Class })
	s.Retries = r.retries
	s.BreakerOpens = r.breakerOpens
	s.BreakerHalfOpens = r.breakerHalfOpens
	s.BreakerCloses = r.breakerCloses
	s.Degraded = r.degraded
	s.ResumedRungs = r.resumedRungs
	s.Shed = r.shed
	s.RateLimited = r.rateLimited
	s.Preempted = r.preempted
	s.Hedges = r.hedges
	s.HedgeWins = r.hedgeWins
	s.Quarantines = r.quarantines
	s.Probes = r.probes
	s.Drained = r.drained
	return s
}

// Restore overwrites the counters from a snapshot, used when resuming a
// checkpointed job so that the final report's totals cover the whole
// job rather than only the resumed portion.
func (r *Resilience) Restore(s ResilienceSnapshot) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.faults = make(map[string]int64, len(s.Faults))
	for _, f := range s.Faults {
		r.faults[f.Class] = f.Count
	}
	r.retries = s.Retries
	r.breakerOpens = s.BreakerOpens
	r.breakerHalfOpens = s.BreakerHalfOpens
	r.breakerCloses = s.BreakerCloses
	r.degraded = s.Degraded
	r.resumedRungs = s.ResumedRungs
	r.shed = s.Shed
	r.rateLimited = s.RateLimited
	r.preempted = s.Preempted
	r.hedges = s.Hedges
	r.hedgeWins = s.HedgeWins
	r.quarantines = s.Quarantines
	r.probes = s.Probes
	r.drained = s.Drained
}
