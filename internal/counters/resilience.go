package counters

import (
	"sort"
	"sync"
)

// Resilience accumulates the fault-tolerance counters of a tuning job:
// injected faults by class, retries, circuit-breaker transitions,
// degraded outcomes, and checkpoint-resume savings. All methods are
// safe for concurrent use and nil-safe, so call sites need no guards
// when resilience accounting is disabled.
type Resilience struct {
	mu     sync.Mutex
	faults map[string]int64

	retries          int64
	breakerOpens     int64
	breakerHalfOpens int64
	breakerCloses    int64
	degraded         int64
	resumedRungs     int64
}

// NewResilience returns an empty counter set.
func NewResilience() *Resilience {
	return &Resilience{faults: make(map[string]int64)}
}

// RecordFault counts one injected fault of the named class.
func (r *Resilience) RecordFault(class string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.faults == nil {
		r.faults = make(map[string]int64)
	}
	r.faults[class]++
}

// AddRetry counts one retried operation (trial re-run or inference
// request re-attempt).
func (r *Resilience) AddRetry() { r.add(&r.retries) }

// AddBreakerOpen counts a closed→open (or half-open→open) transition.
func (r *Resilience) AddBreakerOpen() { r.add(&r.breakerOpens) }

// AddBreakerHalfOpen counts an open→half-open transition.
func (r *Resilience) AddBreakerHalfOpen() { r.add(&r.breakerHalfOpens) }

// AddBreakerClose counts a half-open→closed transition.
func (r *Resilience) AddBreakerClose() { r.add(&r.breakerCloses) }

// AddDegraded counts one outcome served from a fallback (historical
// store entry or performance-model estimate) instead of a measurement.
func (r *Resilience) AddDegraded() { r.add(&r.degraded) }

// AddResumedRungs counts rungs skipped because a checkpoint already
// held their results.
func (r *Resilience) AddResumedRungs(n int64) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resumedRungs += n
}

func (r *Resilience) add(field *int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	*field++
}

// FaultCount is one (class, count) pair of a snapshot, sorted by class.
type FaultCount struct {
	Class string `json:"class"`
	Count int64  `json:"count"`
}

// ResilienceSnapshot is a point-in-time copy of the counters, with
// deterministic (sorted) fault ordering so reports serialise
// byte-identically across same-seed runs.
type ResilienceSnapshot struct {
	Faults           []FaultCount `json:"faults,omitempty"`
	TotalFaults      int64        `json:"totalFaults"`
	Retries          int64        `json:"retries"`
	BreakerOpens     int64        `json:"breakerOpens"`
	BreakerHalfOpens int64        `json:"breakerHalfOpens"`
	BreakerCloses    int64        `json:"breakerCloses"`
	Degraded         int64        `json:"degraded"`
	ResumedRungs     int64        `json:"resumedRungs"`
}

// FaultCount reports the count for one class (0 if never injected).
func (s ResilienceSnapshot) FaultCount(class string) int64 {
	for _, f := range s.Faults {
		if f.Class == class {
			return f.Count
		}
	}
	return 0
}

// Snapshot copies the current counters. A nil receiver yields a zero
// snapshot.
func (r *Resilience) Snapshot() ResilienceSnapshot {
	var s ResilienceSnapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for class, n := range r.faults {
		s.Faults = append(s.Faults, FaultCount{Class: class, Count: n})
		s.TotalFaults += n
	}
	sort.Slice(s.Faults, func(i, j int) bool { return s.Faults[i].Class < s.Faults[j].Class })
	s.Retries = r.retries
	s.BreakerOpens = r.breakerOpens
	s.BreakerHalfOpens = r.breakerHalfOpens
	s.BreakerCloses = r.breakerCloses
	s.Degraded = r.degraded
	s.ResumedRungs = r.resumedRungs
	return s
}

// Restore overwrites the counters from a snapshot, used when resuming a
// checkpointed job so that the final report's totals cover the whole
// job rather than only the resumed portion.
func (r *Resilience) Restore(s ResilienceSnapshot) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.faults = make(map[string]int64, len(s.Faults))
	for _, f := range s.Faults {
		r.faults[f.Class] = f.Count
	}
	r.retries = s.Retries
	r.breakerOpens = s.BreakerOpens
	r.breakerHalfOpens = s.BreakerHalfOpens
	r.breakerCloses = s.BreakerCloses
	r.degraded = s.Degraded
	r.resumedRungs = s.ResumedRungs
}
