// Package counters simulates the hardware performance-counter study of
// Figure 1: the paper collects perf events during the *forward phase of
// training* and during *inference with the trained model* and observes
// that CPU-bound events are consistent across the two phases while
// memory-bound events diverge (training keeps weights hot and mutable;
// inference streams constant weights over single samples). That
// divergence is the argument for a dedicated inference tuning server
// rather than reusing forward-pass measurements.
package counters

import (
	"fmt"
	"math"
	"sort"

	"edgetune/internal/sim"
)

// Phase distinguishes the two measured execution phases.
type Phase int

// Execution phases of Figure 1.
const (
	TrainingForward Phase = iota + 1
	Inference
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case TrainingForward:
		return "training-forward"
	case Inference:
		return "inference"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Class partitions events into the two behavioural groups of Figure 1.
type Class int

// Event classes.
const (
	// CPUBound events track instruction execution and scheduling; they
	// behave consistently between training-forward and inference.
	CPUBound Class = iota + 1
	// MemoryBound events track the cache/branch hierarchy; they diverge
	// between the phases.
	MemoryBound
)

// Event is one perf counter from Figure 1.
type Event struct {
	Name  string
	Class Class
	// baseRate is the training-forward event rate (events/second) for
	// the reference workload (AlexNet-class model on CIFAR10-class
	// data).
	baseRate float64
	// inferenceFactor multiplies the rate during inference. CPU-bound
	// events have factors near 1; memory-bound events deviate strongly.
	inferenceFactor float64
}

// Events returns the Figure 1 event catalogue, sorted by name. Rates are
// order-of-magnitude calibrated to the figure's legend buckets
// (>10⁸ … <10²).
func Events() []Event {
	evs := []Event{
		{"cpu.cycles", CPUBound, 2.4e9, 0.97},
		{"cpu.clock", CPUBound, 1.0e9, 1.02},
		{"bus.cycles", CPUBound, 9.0e7, 0.95},
		{"context.switches", CPUBound, 3.0e3, 1.05},
		{"cpu.migrations", CPUBound, 4.0e1, 1.1},
		{"branch.instructions", CPUBound, 4.5e8, 0.96},
		{"branches", CPUBound, 4.5e8, 0.96},

		{"L1.dcache.loads", MemoryBound, 9.0e8, 0.38},
		{"L1.dcache.load.misses", MemoryBound, 6.0e7, 3.1},
		{"L1.dcache.stores", MemoryBound, 5.0e8, 0.22},
		{"L1.icache.load.misses", MemoryBound, 2.0e6, 2.4},
		{"LLC.loads", MemoryBound, 3.0e7, 2.8},
		{"LLC.load.misses", MemoryBound, 8.0e6, 4.2},
		{"LLC.stores", MemoryBound, 1.5e7, 0.18},
		{"LLC.store.misses", MemoryBound, 3.0e6, 0.25},
		{"cache.references", MemoryBound, 6.0e7, 2.6},
		{"cache.misses", MemoryBound, 1.2e7, 3.8},
		{"branch.misses", MemoryBound, 7.0e6, 2.9},
		{"branch.loads", MemoryBound, 4.0e8, 0.42},
		{"branch.load.misses", MemoryBound, 5.0e6, 3.3},
		{"br_inst_retired.all_branches", MemoryBound, 4.2e8, 0.45},
		{"br_inst_retired.far_branch", MemoryBound, 9.0e3, 2.2},
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Name < evs[j].Name })
	return evs
}

// Reading is a simulated counter observation.
type Reading struct {
	Event Event
	Phase Phase
	// Rate is events per second.
	Rate float64
}

// Collector produces simulated counter readings with run-to-run jitter.
type Collector struct {
	rng    *sim.RNG
	jitter float64
}

// NewCollector creates a collector; jitter is the relative standard
// deviation of each reading.
func NewCollector(seed uint64, jitter float64) (*Collector, error) {
	if jitter < 0 || jitter > 0.5 {
		return nil, fmt.Errorf("counters: jitter %v out of [0, 0.5]", jitter)
	}
	return &Collector{rng: sim.NewRNG(seed), jitter: jitter}, nil
}

// Collect reads every Figure 1 event for the given phase. deviceScale
// rescales absolute rates for slower devices (1.0 = the i7 reference).
func (c *Collector) Collect(phase Phase, deviceScale float64) ([]Reading, error) {
	if phase != TrainingForward && phase != Inference {
		return nil, fmt.Errorf("counters: unknown phase %v", phase)
	}
	if deviceScale <= 0 {
		return nil, fmt.Errorf("counters: device scale %v must be positive", deviceScale)
	}
	events := Events()
	out := make([]Reading, 0, len(events))
	for _, ev := range events {
		rate := ev.baseRate * deviceScale
		if phase == Inference {
			rate *= ev.inferenceFactor
		}
		rate *= 1 + c.rng.NormFloat64()*c.jitter
		if rate < 0 {
			rate = 0
		}
		out = append(out, Reading{Event: ev, Phase: phase, Rate: rate})
	}
	return out, nil
}

// Divergence summarises how far inference rates sit from
// training-forward rates per event class: the mean absolute log10 ratio.
// Figure 1's observation is recovered when the MemoryBound divergence is
// much larger than the CPUBound one.
func Divergence(train, infer []Reading) (cpu, mem float64, err error) {
	if len(train) != len(infer) {
		return 0, 0, fmt.Errorf("counters: reading sets differ in length (%d vs %d)", len(train), len(infer))
	}
	var cpuN, memN int
	for i := range train {
		if train[i].Event.Name != infer[i].Event.Name {
			return 0, 0, fmt.Errorf("counters: reading sets misaligned at %d", i)
		}
		if train[i].Rate <= 0 || infer[i].Rate <= 0 {
			continue
		}
		d := absLog10(infer[i].Rate / train[i].Rate)
		switch train[i].Event.Class {
		case CPUBound:
			cpu += d
			cpuN++
		case MemoryBound:
			mem += d
			memN++
		}
	}
	if cpuN > 0 {
		cpu /= float64(cpuN)
	}
	if memN > 0 {
		mem /= float64(memN)
	}
	return cpu, mem, nil
}

func absLog10(x float64) float64 {
	return math.Abs(math.Log10(x))
}
