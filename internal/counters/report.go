package counters

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV exports aligned training-forward and inference readings as
// CSV (event, class, train_rate, inference_rate, ratio), the format the
// Figure-1 analysis notebooks consume.
func WriteCSV(w io.Writer, train, infer []Reading) error {
	if len(train) != len(infer) {
		return fmt.Errorf("counters: reading sets differ in length (%d vs %d)", len(train), len(infer))
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"event", "class", "train_forward_rate", "inference_rate", "ratio"}); err != nil {
		return fmt.Errorf("counters: write header: %w", err)
	}
	for i := range train {
		if train[i].Event.Name != infer[i].Event.Name {
			return fmt.Errorf("counters: reading sets misaligned at %d", i)
		}
		class := "cpu"
		if train[i].Event.Class == MemoryBound {
			class = "memory"
		}
		ratio := 0.0
		if train[i].Rate > 0 {
			ratio = infer[i].Rate / train[i].Rate
		}
		rec := []string{
			train[i].Event.Name,
			class,
			strconv.FormatFloat(train[i].Rate, 'g', 6, 64),
			strconv.FormatFloat(infer[i].Rate, 'g', 6, 64),
			strconv.FormatFloat(ratio, 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("counters: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("counters: flush: %w", err)
	}
	return nil
}
