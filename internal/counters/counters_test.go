package counters

import (
	"testing"
)

func TestEventsCatalogue(t *testing.T) {
	evs := Events()
	if len(evs) != 22 {
		t.Fatalf("catalogue has %d events, want the 22 of Figure 1", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i-1].Name >= evs[i].Name {
			t.Error("events not sorted by name")
		}
	}
	var cpu, mem int
	for _, e := range evs {
		switch e.Class {
		case CPUBound:
			cpu++
		case MemoryBound:
			mem++
		default:
			t.Errorf("event %q has no class", e.Name)
		}
		if e.baseRate <= 0 {
			t.Errorf("event %q has non-positive base rate", e.Name)
		}
	}
	if cpu == 0 || mem == 0 {
		t.Error("both event classes must be populated")
	}
}

func TestCollectorValidation(t *testing.T) {
	if _, err := NewCollector(1, -0.1); err == nil {
		t.Error("negative jitter accepted")
	}
	c, err := NewCollector(1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Collect(Phase(9), 1); err == nil {
		t.Error("unknown phase accepted")
	}
	if _, err := c.Collect(Inference, 0); err == nil {
		t.Error("zero device scale accepted")
	}
}

func TestCollectReturnsAllEvents(t *testing.T) {
	c, err := NewCollector(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []Phase{TrainingForward, Inference} {
		rs, err := c.Collect(phase, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != len(Events()) {
			t.Fatalf("%v: %d readings, want %d", phase, len(rs), len(Events()))
		}
		for _, r := range rs {
			if r.Rate < 0 {
				t.Errorf("%v: negative rate for %s", phase, r.Event.Name)
			}
			if r.Phase != phase {
				t.Errorf("reading tagged with wrong phase")
			}
		}
	}
}

// TestFig1Divergence is the package's core claim: CPU-bound events stay
// consistent between training-forward and inference while memory-bound
// events diverge.
func TestFig1Divergence(t *testing.T) {
	c, err := NewCollector(3, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	train, err := c.Collect(TrainingForward, 1)
	if err != nil {
		t.Fatal(err)
	}
	infer, err := c.Collect(Inference, 1)
	if err != nil {
		t.Fatal(err)
	}
	cpu, mem, err := Divergence(train, infer)
	if err != nil {
		t.Fatal(err)
	}
	if cpu > 0.1 {
		t.Errorf("CPU-bound divergence %.3f too large: should be consistent across phases", cpu)
	}
	if mem < 3*cpu {
		t.Errorf("memory-bound divergence %.3f not clearly above CPU-bound %.3f", mem, cpu)
	}
}

func TestDivergenceValidation(t *testing.T) {
	c, _ := NewCollector(1, 0)
	train, _ := c.Collect(TrainingForward, 1)
	if _, _, err := Divergence(train, train[:3]); err == nil {
		t.Error("mismatched lengths accepted")
	}
	infer, _ := c.Collect(Inference, 1)
	// Misalign by swapping two readings.
	infer[0], infer[1] = infer[1], infer[0]
	if _, _, err := Divergence(train, infer); err == nil {
		t.Error("misaligned readings accepted")
	}
}

func TestDeviceScaleRescalesRates(t *testing.T) {
	c, _ := NewCollector(1, 0)
	fast, _ := c.Collect(TrainingForward, 1)
	c2, _ := NewCollector(1, 0)
	slow, _ := c2.Collect(TrainingForward, 0.25)
	for i := range fast {
		if slow[i].Rate >= fast[i].Rate {
			t.Errorf("%s: slow device rate %v >= fast %v", fast[i].Event.Name, slow[i].Rate, fast[i].Rate)
		}
	}
}

func TestPhaseString(t *testing.T) {
	if TrainingForward.String() != "training-forward" || Inference.String() != "inference" {
		t.Error("phase names wrong")
	}
	if Phase(9).String() == "" {
		t.Error("unknown phase should still format")
	}
}
