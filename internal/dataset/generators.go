package dataset

import (
	"math"

	"edgetune/internal/sim"
	"edgetune/internal/tensor"
)

// Synthetic corpus dimensions. Sizes are the Table 1 counts divided by
// _downScale, preserving the relative sizes of the four workloads.
const (
	_downScale = 50

	// ImageDim is the feature width of the image-classification dataset.
	ImageDim = 24
	// ImageClasses matches CIFAR10's 10 classes.
	ImageClasses = 10

	// SpeechDim is the waveform feature width.
	SpeechDim = 40
	// SpeechClasses matches the Speech Commands keyword count used in
	// typical 12-way evaluation setups.
	SpeechClasses = 12

	// NewsVocab is the vocabulary size of the token dataset.
	NewsVocab = 128
	// NewsSeqLen is the token-sequence length before striding.
	NewsSeqLen = 64
	// NewsClasses matches AG News' 4 topics.
	NewsClasses = 4

	// DetectDim is the detection feature width.
	DetectDim = 32
	// DetectClasses is the number of dominant-object classes.
	DetectClasses = 16
)

// teacher is a fixed random two-layer network used to label feature
// vectors. Labelling with a non-linear teacher makes model capacity
// matter: deeper/wider student networks genuinely reach higher accuracy,
// which is what gives the paper's model hyperparameters (layers,
// embedding dim) real influence on tuning outcomes.
type teacher struct {
	w1, w2 *tensor.Matrix
}

func newTeacher(in, hidden, classes int, rng *sim.RNG) *teacher {
	return &teacher{
		w1: tensor.Randn(in, hidden, 1/math.Sqrt(float64(in)), rng),
		w2: tensor.Randn(hidden, classes, 1/math.Sqrt(float64(hidden)), rng),
	}
}

func (t *teacher) label(x *tensor.Matrix) []int {
	h := tensor.MatMul(x, t.w1)
	h.Apply(math.Tanh)
	logits := tensor.MatMul(h, t.w2)
	return logits.ArgmaxRows()
}

// labelMargin returns the label and the logit margin (top minus
// runner-up) for a single feature row.
func (t *teacher) labelMargin(row []float64) (int, float64) {
	x, _ := tensor.FromSlice(1, len(row), row)
	h := tensor.MatMul(x, t.w1)
	h.Apply(math.Tanh)
	logits := tensor.MatMul(h, t.w2)
	best, second, bestIdx := math.Inf(-1), math.Inf(-1), 0
	for j, v := range logits.Row(0) {
		if v > best {
			second = best
			best, bestIdx = v, j
		} else if v > second {
			second = v
		}
	}
	return bestIdx, best - second
}

// NewImageClassification emulates the IC workload (ResNet on CIFAR10):
// dense image-like feature vectors labelled by a non-linear teacher, with
// mild label noise standing in for the irreducible error of CIFAR10.
func NewImageClassification(seed uint64) Split {
	const (
		train = 50000 / _downScale
		test  = 10000 / _downScale
	)
	rng := sim.NewRNG(seed)
	t := newTeacher(ImageDim, 16, ImageClasses, rng)
	// Rejection-sample near-boundary points: a clean (but non-linear)
	// decision surface keeps the task learnable to high accuracy while
	// model depth still governs how well it is approximated.
	const margin = 0.5
	gen := func(n int, r *sim.RNG) *Dataset {
		x := tensor.New(n, ImageDim)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			row := x.Row(i)
			for attempt := 0; ; attempt++ {
				for j := range row {
					row[j] = r.NormFloat64()
				}
				label, m := t.labelMargin(row)
				if m >= margin || attempt >= 50 {
					labels[i] = label
					break
				}
			}
		}
		flipLabels(labels, ImageClasses, 0.05, r)
		return &Dataset{
			Meta: Meta{
				ID:              "IC",
				Corpus:          "CIFAR10 (synthetic analogue)",
				PaperTrainFiles: 50000,
				PaperTestFiles:  10000,
				PaperSizeBytes:  163 << 20,
				Scale:           _downScale,
			},
			X: x, Labels: labels, Classes: ImageClasses,
		}
	}
	return Split{Train: gen(train, rng.Split()), Test: gen(test, rng.Split())}
}

// NewSpeech emulates the SR workload (M5 on Speech Commands): each class
// is a keyword rendered as a short waveform of class-specific fundamental
// frequency with harmonics, phase jitter, and additive noise.
func NewSpeech(seed uint64) Split {
	const (
		train = 85511 / _downScale
		test  = 4890 / _downScale
	)
	rng := sim.NewRNG(seed)
	gen := func(n int, r *sim.RNG) *Dataset {
		x := tensor.New(n, SpeechDim)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			cls := r.Intn(SpeechClasses)
			labels[i] = cls
			f := 0.2 + 0.05*float64(cls) // class fundamental frequency
			phase := r.Float64() * 2 * math.Pi
			amp2 := 0.3 + 0.4*r.Float64()
			row := x.Row(i)
			for j := range row {
				tt := float64(j)
				row[j] = math.Sin(f*tt+phase) +
					amp2*math.Sin(2*f*tt+phase) +
					0.7*r.NormFloat64()
			}
		}
		return &Dataset{
			Meta: Meta{
				ID:              "SR",
				Corpus:          "Speech Commands (synthetic analogue)",
				PaperTrainFiles: 85511,
				PaperTestFiles:  4890,
				PaperSizeBytes:  8_774_474_301, // 8.17 GiB
				Scale:           _downScale,
			},
			X: x, Labels: labels, Classes: SpeechClasses,
		}
	}
	return Split{Train: gen(train, rng.Split()), Test: gen(test, rng.Split())}
}

// NewNews emulates the NLP workload (RNN on AG News): token sequences
// drawn from class-specific unigram distributions over a shared
// vocabulary. Raw tokens are retained so the workload's stride
// hyperparameter can subsample them before featurisation.
func NewNews(seed uint64) Split {
	const (
		train = 120000 / _downScale
		test  = 7600 / _downScale
	)
	rng := sim.NewRNG(seed)
	// Class-conditional unigram distributions: a shared background plus
	// a boosted class-specific topic block.
	weights := make([][]float64, NewsClasses)
	for c := range weights {
		w := make([]float64, NewsVocab)
		for v := range w {
			w[v] = 0.3 + rng.Float64()
		}
		blockSize := NewsVocab / NewsClasses
		for v := c * blockSize; v < (c+1)*blockSize; v++ {
			w[v] += 2.5
		}
		weights[c] = cumulative(w)
	}
	gen := func(n int, r *sim.RNG) *Dataset {
		tokens := make([][]int, n)
		labels := make([]int, n)
		x := tensor.New(n, NewsVocab)
		for i := 0; i < n; i++ {
			cls := r.Intn(NewsClasses)
			labels[i] = cls
			seq := make([]int, NewsSeqLen)
			for j := range seq {
				seq[j] = sampleCumulative(weights[cls], r)
			}
			tokens[i] = seq
			bagOfTokens(x.Row(i), seq, 1)
		}
		return &Dataset{
			Meta: Meta{
				ID:              "NLP",
				Corpus:          "AG News (synthetic analogue)",
				PaperTrainFiles: 120000,
				PaperTestFiles:  7600,
				PaperSizeBytes:  63_018_598, // 60.10 MB
				Scale:           _downScale,
			},
			X: x, Labels: labels, Classes: NewsClasses,
			Tokens: tokens, Vocab: NewsVocab,
		}
	}
	return Split{Train: gen(train, rng.Split()), Test: gen(test, rng.Split())}
}

// NewDetection emulates the OD workload (YOLO on COCO): each sample mixes
// a dominant object's signature with one or two distractor objects and
// heavy background clutter; the label is the dominant object. The clutter
// makes regularisation (the tuned dropout rate) genuinely matter.
func NewDetection(seed uint64) Split {
	const (
		train = 164000 / _downScale
		test  = 41000 / _downScale
	)
	rng := sim.NewRNG(seed)
	// Fixed class signatures.
	sig := tensor.Randn(DetectClasses, DetectDim, 1, rng)
	gen := func(n int, r *sim.RNG) *Dataset {
		x := tensor.New(n, DetectDim)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			cls := r.Intn(DetectClasses)
			labels[i] = cls
			row := x.Row(i)
			copy(row, sig.Row(cls))
			// Distractor object at lower amplitude.
			d := r.Intn(DetectClasses)
			drow := sig.Row(d)
			for j := range row {
				row[j] += 0.5*drow[j] + 0.95*r.NormFloat64()
			}
		}
		flipLabels(labels, DetectClasses, 0.03, r)
		return &Dataset{
			Meta: Meta{
				ID:              "OD",
				Corpus:          "COCO (synthetic analogue)",
				PaperTrainFiles: 164000,
				PaperTestFiles:  41000,
				PaperSizeBytes:  19 << 30,
				Scale:           _downScale,
			},
			X: x, Labels: labels, Classes: DetectClasses,
		}
	}
	return Split{Train: gen(train, rng.Split()), Test: gen(test, rng.Split())}
}

// BagOfTokens featurises a token sequence into counts, taking every
// stride-th token. It is exported for the workload layer, which maps the
// paper's RNN stride hyperparameter onto featurisation granularity.
func BagOfTokens(dst []float64, seq []int, stride int) {
	bagOfTokens(dst, seq, stride)
}

func bagOfTokens(dst []float64, seq []int, stride int) {
	if stride < 1 {
		stride = 1
	}
	for i := range dst {
		dst[i] = 0
	}
	count := 0
	for i := 0; i < len(seq); i += stride {
		dst[seq[i]]++
		count++
	}
	if count > 0 {
		inv := 1 / float64(count)
		for i := range dst {
			dst[i] *= inv
		}
	}
}

// flipLabels randomly reassigns a fraction of labels, bounding the best
// achievable accuracy the way real-world label noise does.
func flipLabels(labels []int, classes int, frac float64, rng *sim.RNG) {
	for i := range labels {
		if rng.Float64() < frac {
			labels[i] = rng.Intn(classes)
		}
	}
}

// cumulative converts weights to a cumulative distribution.
func cumulative(w []float64) []float64 {
	out := make([]float64, len(w))
	var sum float64
	for i, v := range w {
		sum += v
		out[i] = sum
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// sampleCumulative draws an index from a cumulative distribution.
func sampleCumulative(cum []float64, rng *sim.RNG) int {
	u := rng.Float64()
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
