// Package dataset provides the seeded synthetic datasets that stand in
// for the paper's four workload corpora (Table 1): CIFAR10, Speech
// Commands, AG News, and COCO. Each generator produces a learnable
// classification problem with the same modality structure and the same
// *relative* train/test sizes as the original corpus, scaled down by a
// constant factor so that real SGD training completes in milliseconds.
// The scale factor is retained in the metadata so the performance model
// can charge simulated time and energy as if the full-size corpus had
// been processed.
package dataset

import (
	"fmt"

	"edgetune/internal/tensor"
)

// Meta describes a dataset's provenance and its relation to the paper's
// full-size corpus.
type Meta struct {
	// ID is the paper's workload identifier: IC, SR, NLP, or OD.
	ID string
	// Corpus names the original dataset being emulated.
	Corpus string
	// PaperTrainFiles and PaperTestFiles are the sample counts from
	// Table 1 of the paper.
	PaperTrainFiles int
	PaperTestFiles  int
	// PaperSizeBytes is the corpus size from Table 1.
	PaperSizeBytes int64
	// Scale is the number of paper-scale samples each synthetic sample
	// represents. Simulated cost models multiply by this factor.
	Scale float64
}

// Dataset is a labelled classification dataset. Features are dense; the
// NLP variant additionally carries raw token sequences so the workload's
// stride hyperparameter can re-featurise them.
type Dataset struct {
	Meta    Meta
	X       *tensor.Matrix
	Labels  []int
	Classes int

	// Tokens is non-nil only for token-sequence datasets (NLP).
	Tokens [][]int
	// Vocab is the vocabulary size for token datasets.
	Vocab int
}

// Split pairs a training set with a held-out evaluation set.
type Split struct {
	Train *Dataset
	Test  *Dataset
}

// Len returns the number of samples.
func (d *Dataset) Len() int {
	if d == nil || d.X == nil {
		return 0
	}
	return d.X.Rows
}

// PaperSamples returns the paper-scale sample count this dataset
// represents (Len × Scale).
func (d *Dataset) PaperSamples() float64 {
	return float64(d.Len()) * d.Meta.Scale
}

// Subset returns a dataset containing the first ceil(frac·n) samples.
// Generators pre-shuffle samples, so a prefix is an unbiased subsample;
// using a deterministic prefix keeps budget growth monotone: a larger
// budget strictly contains a smaller one, as in the paper's
// dataset-fraction budgets.
func (d *Dataset) Subset(frac float64) (*Dataset, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("dataset: fraction %v out of (0,1]", frac)
	}
	n := d.Len()
	k := int(frac*float64(n) + 0.999999)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	sub := &Dataset{
		Meta:    d.Meta,
		Classes: d.Classes,
		Vocab:   d.Vocab,
		Labels:  d.Labels[:k],
	}
	m := tensor.New(k, d.X.Cols)
	copy(m.Data, d.X.Data[:k*d.X.Cols])
	sub.X = m
	if d.Tokens != nil {
		sub.Tokens = d.Tokens[:k]
	}
	return sub, nil
}
