package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"edgetune/internal/sim"
)

func allSplits(seed uint64) map[string]Split {
	return map[string]Split{
		"IC":  NewImageClassification(seed),
		"SR":  NewSpeech(seed),
		"NLP": NewNews(seed),
		"OD":  NewDetection(seed),
	}
}

func TestGeneratorSizesMatchTable1Ratios(t *testing.T) {
	tests := []struct {
		id          string
		paperTrain  int
		paperTest   int
		wantClasses int
	}{
		{id: "IC", paperTrain: 50000, paperTest: 10000, wantClasses: ImageClasses},
		{id: "SR", paperTrain: 85511, paperTest: 4890, wantClasses: SpeechClasses},
		{id: "NLP", paperTrain: 120000, paperTest: 7600, wantClasses: NewsClasses},
		{id: "OD", paperTrain: 164000, paperTest: 41000, wantClasses: DetectClasses},
	}
	splits := allSplits(1)
	for _, tt := range tests {
		t.Run(tt.id, func(t *testing.T) {
			s := splits[tt.id]
			if got := s.Train.Len(); got != tt.paperTrain/_downScale {
				t.Errorf("train size = %d, want %d", got, tt.paperTrain/_downScale)
			}
			if got := s.Test.Len(); got != tt.paperTest/_downScale {
				t.Errorf("test size = %d, want %d", got, tt.paperTest/_downScale)
			}
			if s.Train.Classes != tt.wantClasses {
				t.Errorf("classes = %d, want %d", s.Train.Classes, tt.wantClasses)
			}
			if s.Train.Meta.PaperTrainFiles != tt.paperTrain {
				t.Errorf("meta train files = %d, want %d", s.Train.Meta.PaperTrainFiles, tt.paperTrain)
			}
			// Paper-scale accounting should recover the paper counts.
			if got := s.Train.PaperSamples(); math.Abs(got-float64(tt.paperTrain)) > float64(_downScale) {
				t.Errorf("PaperSamples = %v, want ~%d", got, tt.paperTrain)
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for id := range allSplits(7) {
		a, b := allSplits(7)[id], allSplits(7)[id]
		if a.Train.Len() != b.Train.Len() {
			t.Fatalf("%s: lengths differ", id)
		}
		for i := 0; i < a.Train.Len()*a.Train.X.Cols; i++ {
			if a.Train.X.Data[i] != b.Train.X.Data[i] {
				t.Fatalf("%s: feature %d differs across same-seed runs", id, i)
			}
		}
		for i, l := range a.Train.Labels {
			if l != b.Train.Labels[i] {
				t.Fatalf("%s: label %d differs across same-seed runs", id, i)
			}
		}
	}
}

func TestGeneratorsSeedSensitivity(t *testing.T) {
	a := NewImageClassification(1).Train
	b := NewImageClassification(2).Train
	same := 0
	for i := range a.X.Data {
		if a.X.Data[i] == b.X.Data[i] {
			same++
		}
	}
	if same == len(a.X.Data) {
		t.Error("different seeds produced identical features")
	}
}

func TestLabelsInRange(t *testing.T) {
	for id, s := range allSplits(3) {
		for _, d := range []*Dataset{s.Train, s.Test} {
			for i, l := range d.Labels {
				if l < 0 || l >= d.Classes {
					t.Fatalf("%s: label[%d] = %d out of [0,%d)", id, i, l, d.Classes)
				}
			}
		}
	}
}

func TestAllClassesPresent(t *testing.T) {
	for id, s := range allSplits(5) {
		seen := make(map[int]bool)
		for _, l := range s.Train.Labels {
			seen[l] = true
		}
		if len(seen) != s.Train.Classes {
			t.Errorf("%s: only %d/%d classes present in train set", id, len(seen), s.Train.Classes)
		}
	}
}

func TestSubset(t *testing.T) {
	d := NewImageClassification(1).Train
	tests := []struct {
		frac float64
		want int
	}{
		{frac: 1, want: d.Len()},
		{frac: 0.5, want: d.Len() / 2},
		{frac: 0.0001, want: 1}, // never empty
	}
	for _, tt := range tests {
		sub, err := d.Subset(tt.frac)
		if err != nil {
			t.Fatal(err)
		}
		if sub.Len() != tt.want {
			t.Errorf("Subset(%v) len = %d, want %d", tt.frac, sub.Len(), tt.want)
		}
		// Prefix property: features must match the parent's prefix.
		for i := 0; i < sub.Len()*sub.X.Cols; i++ {
			if sub.X.Data[i] != d.X.Data[i] {
				t.Fatalf("Subset(%v) is not a prefix at %d", tt.frac, i)
			}
		}
	}
}

func TestSubsetErrors(t *testing.T) {
	d := NewImageClassification(1).Train
	for _, frac := range []float64{0, -0.5, 1.5} {
		if _, err := d.Subset(frac); err == nil {
			t.Errorf("Subset(%v) did not error", frac)
		}
	}
}

func TestSubsetMonotoneContainment(t *testing.T) {
	d := NewNews(1).Train
	f := func(a, b uint8) bool {
		fa := 0.01 + float64(a%100)/100
		fb := 0.01 + float64(b%100)/100
		if fa > 1 {
			fa = 1
		}
		if fb > 1 {
			fb = 1
		}
		if fa > fb {
			fa, fb = fb, fa
		}
		small, err1 := d.Subset(fa)
		large, err2 := d.Subset(fb)
		if err1 != nil || err2 != nil {
			return false
		}
		// A smaller budget's data must be a prefix of the larger one's.
		if small.Len() > large.Len() {
			return false
		}
		for i := 0; i < small.Len(); i++ {
			if small.Labels[i] != large.Labels[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNewsTokensRetained(t *testing.T) {
	s := NewNews(1)
	if s.Train.Tokens == nil {
		t.Fatal("news dataset lost tokens")
	}
	if len(s.Train.Tokens) != s.Train.Len() {
		t.Fatalf("tokens %d != samples %d", len(s.Train.Tokens), s.Train.Len())
	}
	for _, seq := range s.Train.Tokens[:10] {
		if len(seq) != NewsSeqLen {
			t.Fatalf("sequence length %d, want %d", len(seq), NewsSeqLen)
		}
		for _, tok := range seq {
			if tok < 0 || tok >= NewsVocab {
				t.Fatalf("token %d out of vocab", tok)
			}
		}
	}
	sub, err := s.Train.Subset(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Tokens) != sub.Len() {
		t.Error("subset lost token alignment")
	}
}

func TestBagOfTokens(t *testing.T) {
	seq := []int{0, 1, 0, 2}
	dst := make([]float64, 3)
	BagOfTokens(dst, seq, 1)
	want := []float64{0.5, 0.25, 0.25}
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Errorf("stride 1: dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	// Stride 2 keeps tokens 0 and 0.
	BagOfTokens(dst, seq, 2)
	if dst[0] != 1 || dst[1] != 0 || dst[2] != 0 {
		t.Errorf("stride 2: dst = %v, want [1 0 0]", dst)
	}
	// Stride < 1 is clamped to 1.
	BagOfTokens(dst, seq, 0)
	if math.Abs(dst[0]-0.5) > 1e-12 {
		t.Errorf("stride 0 not clamped: dst[0]=%v", dst[0])
	}
}

func TestSampleCumulative(t *testing.T) {
	rng := sim.NewRNG(1)
	cum := cumulative([]float64{1, 1, 8})
	counts := make([]int, 3)
	for i := 0; i < 10000; i++ {
		counts[sampleCumulative(cum, rng)]++
	}
	if counts[2] < 7000 {
		t.Errorf("heavy bucket drew %d/10000, want ~8000", counts[2])
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Error("light buckets never drawn")
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// Nearest-centroid accuracy must beat chance comfortably on every
	// dataset; otherwise tuning cannot produce meaningful accuracy
	// differences.
	for id, s := range allSplits(11) {
		d := s.Train
		dim := d.X.Cols
		centroids := make([][]float64, d.Classes)
		counts := make([]int, d.Classes)
		for c := range centroids {
			centroids[c] = make([]float64, dim)
		}
		for i := 0; i < d.Len(); i++ {
			row := d.X.Row(i)
			c := d.Labels[i]
			counts[c]++
			for j, v := range row {
				centroids[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] /= float64(counts[c])
			}
		}
		correct := 0
		test := s.Test
		for i := 0; i < test.Len(); i++ {
			row := test.X.Row(i)
			best, bestC := math.Inf(1), 0
			for c := range centroids {
				var dist float64
				for j, v := range row {
					diff := v - centroids[c][j]
					dist += diff * diff
				}
				if dist < best {
					best, bestC = dist, c
				}
			}
			if bestC == test.Labels[i] {
				correct++
			}
		}
		acc := float64(correct) / float64(test.Len())
		chance := 1 / float64(d.Classes)
		if acc < 2*chance {
			t.Errorf("%s: nearest-centroid accuracy %.3f not above 2x chance %.3f", id, acc, 2*chance)
		}
	}
}
