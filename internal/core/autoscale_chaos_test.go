package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"
	"time"

	"edgetune/internal/autoscale"
	"edgetune/internal/fault"
	"edgetune/internal/obs"
	"edgetune/internal/obs/slo"
	"edgetune/internal/store"
	"edgetune/internal/testutil"
)

// autoscaleTune runs a full tuning job with the autoscaler enabled and
// flash-crowd faults injected, returning the result and the serialized
// trace (which includes every scale-event span).
func autoscaleTune(t *testing.T) (Result, []byte) {
	t.Helper()
	opts := chaosOptions(fault.Config{FlashCrowd: 0.3})
	opts.Autoscale = &autoscale.Config{}
	opts.Trace = obs.NewTracer()
	res, err := Tune(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := opts.Trace.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestAutoscaleFlashCrowdDeterminism: two identically-seeded tuning
// runs under flash-crowd faults must produce byte-identical autoscale
// digests, decision streams, and traces — the same-seed contract
// extended to the control loop.
func TestAutoscaleFlashCrowdDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	a, atr := autoscaleTune(t)
	b, btr := autoscaleTune(t)

	if a.Autoscale == nil || b.Autoscale == nil {
		t.Fatal("autoscale report missing from tuning result")
	}
	if a.Autoscale.ScaleUps == 0 {
		t.Error("flash crowds never drove a scale-up; raise the rate")
	}
	if a.Autoscale.Digest != b.Autoscale.Digest {
		t.Errorf("autoscale digests differ: %016x vs %016x", a.Autoscale.Digest, b.Autoscale.Digest)
	}
	if !reflect.DeepEqual(a.Autoscale, b.Autoscale) {
		t.Errorf("autoscale reports differ:\n%+v\n%+v", a.Autoscale, b.Autoscale)
	}
	if a.BestScore != b.BestScore {
		t.Errorf("best scores differ: %v vs %v", a.BestScore, b.BestScore)
	}
	if a.TuningDuration != b.TuningDuration {
		t.Errorf("tuning durations differ: %v vs %v", a.TuningDuration, b.TuningDuration)
	}
	if a.Recommendation.Signature != b.Recommendation.Signature {
		t.Errorf("recommendations differ: %q vs %q", a.Recommendation.Signature, b.Recommendation.Signature)
	}
	if !reflect.DeepEqual(a.Resilience, b.Resilience) {
		t.Errorf("resilience counters differ:\n%+v\n%+v", a.Resilience, b.Resilience)
	}
	if !bytes.Contains(atr, []byte("scale-event")) {
		t.Error("trace has no scale-event spans")
	}
	if !bytes.Equal(atr, btr) {
		t.Error("traces differ between identically-seeded runs")
	}
	// The warm-up bill must have landed on the tuning budget.
	if a.Autoscale.WarmupTime <= 0 {
		t.Error("scale-ups charged no warm-up time")
	}
}

// TestAutoscaleMassDeviceFailRecovery: a mass device failure collapses
// the pool; the autoscaler must ride the degradation ladder down to
// critical-only, rebuild capacity from warm replicas and recovery
// probes, release every rung, scale back to Min, and leave the
// serving/capacity burn-rate alert cleared.
func TestAutoscaleMassDeviceFailRecovery(t *testing.T) {
	testutil.CheckGoroutineLeak(t, 2)
	inj, err := fault.NewInjector(fault.Config{MassDeviceFail: 1}, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev := slo.NewEvaluator()
	srv, rec := servingServer(t, store.New(), func(o *InferenceServerOptions) {
		o.Fault = inj
		o.SLO = ev
		o.Autoscale = &autoscale.Config{
			Min:              1,
			Max:              3,
			Window:           8,
			HysteresisTicks:  2,
			LadderAfterTicks: 2,
			WarmupTime:       300 * time.Second,
			WarmupEnergyJ:    50,
		}
	})

	sawAlert := false
	for i := 0; i < 60; i++ {
		req := sigRequest(i)
		req.SubmitTime = time.Duration(i) * 10 * time.Second
		mustOutcome(t, srv.Submit(context.Background(), req))
		if o, ok := ev.Snapshot().Objective("serving/capacity"); ok && o.Alerting {
			sawAlert = true
		}
	}
	if !sawAlert {
		t.Error("serving/capacity never alerted during the outage")
	}
	if o, ok := ev.Snapshot().Objective("serving/capacity"); !ok {
		t.Error("serving/capacity objective not registered")
	} else if o.Alerting {
		t.Errorf("serving/capacity still alerting after recovery: %+v", o)
	}

	rep := srv.AutoscaleReport()
	if rep == nil {
		t.Fatal("no autoscale report")
	}
	if rep.DeepestMode != autoscale.ModeCriticalOnly {
		t.Errorf("deepest mode = %v, want critical-only", rep.DeepestMode)
	}
	if rep.FinalMode != autoscale.ModeNormal {
		t.Errorf("final mode = %v, want normal (ladder fully released)", rep.FinalMode)
	}
	if rep.FinalReplicas != 1 {
		t.Errorf("final replicas = %d, want scale-down back to Min", rep.FinalReplicas)
	}
	if rep.ScaleUps < 2 || rep.ScaleDowns < 2 {
		t.Errorf("scale-ups/downs = %d/%d, want at least 2 each", rep.ScaleUps, rep.ScaleDowns)
	}
	if rep.DegradeSteps != 3 || rep.RecoverSteps != 3 {
		t.Errorf("degrade/recover steps = %d/%d, want full ladder traversal (3/3)", rep.DegradeSteps, rep.RecoverSteps)
	}
	if got := rec.Snapshot().Quarantines; got < 1 {
		t.Errorf("quarantine counter = %d, want the failed pool recorded", got)
	}

	// Close must be idempotent after the chaos run.
	srv.Close()
	srv.Close()
}

// TestAutoscaleScaleStall: with every scale-up stalled, the warm-up
// cost is still charged, no replica ever joins, and the controller
// keeps retrying because the replica count it observes never moves.
func TestAutoscaleScaleStall(t *testing.T) {
	inj, err := fault.NewInjector(fault.Config{FlashCrowd: 1, ScaleStall: 1}, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := servingServer(t, store.New(), func(o *InferenceServerOptions) {
		o.Fault = inj
		o.Autoscale = &autoscale.Config{
			Min:           1,
			Max:           3,
			WarmupTime:    20 * time.Second,
			WarmupEnergyJ: 50,
		}
	})
	const n = 8
	for i := 0; i < n; i++ {
		req := sigRequest(i)
		req.SubmitTime = time.Duration(i) * 10 * time.Second
		mustOutcome(t, srv.Submit(context.Background(), req))
	}
	rep := srv.AutoscaleReport()
	if rep.ScaleUps != n {
		t.Errorf("scale-ups = %d, want one per hot tick (%d)", rep.ScaleUps, n)
	}
	if got := srv.AutoscaleStalls(); got != n {
		t.Errorf("stalls = %d, want every scale-up swallowed (%d)", got, n)
	}
	if rep.FinalReplicas != 1 {
		t.Errorf("final replicas = %d, want 1: stalled replicas must not join", rep.FinalReplicas)
	}
	if want := time.Duration(n) * 20 * time.Second; rep.WarmupTime != want {
		t.Errorf("warm-up time = %v, want %v charged despite the stalls", rep.WarmupTime, want)
	}
	if rep.WarmupEnergyJ != n*50 {
		t.Errorf("warm-up energy = %v J, want %v", rep.WarmupEnergyJ, n*50)
	}
}
