package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"edgetune/internal/counters"
	"edgetune/internal/device"
	"edgetune/internal/fault"
	"edgetune/internal/obs/slo"
	"edgetune/internal/store"
	"edgetune/internal/testutil"
	"edgetune/internal/workload"
)

// i7Twin returns a second I7 ("i7-b"): an identical replica board, the
// simplest healthy hedge target since it shares the search space.
func i7Twin() device.Device {
	d := device.I7()
	d.Profile.Name = "i7-b"
	return d
}

// servingServer builds a server for the overload/hedging tests with a
// recorder attached; cfg mutates the defaults.
func servingServer(t *testing.T, st *store.Store, cfg func(*InferenceServerOptions)) (*InferenceServer, *counters.Resilience) {
	t.Helper()
	w := workload.MustNew("IC", 1)
	dev := device.I7()
	space, err := w.InferenceSpace(dev)
	if err != nil {
		t.Fatal(err)
	}
	rec := counters.NewResilience()
	opts := InferenceServerOptions{
		Device:   dev,
		Space:    space,
		Metric:   MetricRuntime,
		Trials:   6,
		Workers:  1,
		Store:    st,
		Seed:     7,
		Recorder: rec,
	}
	if cfg != nil {
		cfg(&opts)
	}
	srv, err := NewInferenceServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, rec
}

func sigRequest(i int) InferRequest {
	return InferRequest{
		Signature:      fmt.Sprintf("IC/layers=%d", 18+i),
		FLOPsPerSample: 5.6e8,
		Params:         11e6,
		Client:         "test-client",
	}
}

func mustOutcome(t *testing.T, ch <-chan InferOutcome) InferOutcome {
	t.Helper()
	select {
	case out := <-ch:
		return out
	case <-time.After(10 * time.Second):
		t.Fatal("no outcome delivered")
		return InferOutcome{}
	}
}

// TestAdmissionShedsAtLimit: with the intake held, submissions beyond
// QueueLimit are shed immediately with ErrOverloaded; the admitted ones
// complete once the queue is released.
func TestAdmissionShedsAtLimit(t *testing.T) {
	srv, rec := servingServer(t, store.New(), func(o *InferenceServerOptions) {
		o.QueueLimit = 3
	})
	srv.adm.setHold(true)
	chs := make([]<-chan InferOutcome, 0, 5)
	for i := 0; i < 5; i++ {
		chs = append(chs, srv.Submit(context.Background(), sigRequest(i)))
	}
	if got := srv.adm.inSystem(); got != 3 {
		t.Errorf("in-system = %d, want exactly QueueLimit", got)
	}
	for i := 3; i < 5; i++ {
		out := mustOutcome(t, chs[i])
		if !errors.Is(out.Err, ErrOverloaded) {
			t.Errorf("submission %d: err = %v, want ErrOverloaded", i, out.Err)
		}
		if errors.Is(out.Err, ErrRateLimited) {
			t.Errorf("submission %d misreported as rate-limited", i)
		}
	}
	if got := rec.Snapshot().Shed; got != 2 {
		t.Errorf("shed counter = %d, want 2", got)
	}
	srv.adm.setHold(false)
	for i := 0; i < 3; i++ {
		if out := mustOutcome(t, chs[i]); out.Err != nil {
			t.Errorf("admitted submission %d failed: %v", i, out.Err)
		}
	}
}

// TestCriticalPreemptsBackground: a critical submission arriving at a
// full queue evicts the most recent background job instead of being
// shed.
func TestCriticalPreemptsBackground(t *testing.T) {
	srv, rec := servingServer(t, store.New(), func(o *InferenceServerOptions) {
		o.QueueLimit = 2
	})
	srv.adm.setHold(true)
	bg := make([]<-chan InferOutcome, 2)
	for i := range bg {
		req := sigRequest(i)
		req.Priority = PriorityBackground
		bg[i] = srv.Submit(context.Background(), req)
	}
	crit := srv.Submit(context.Background(), sigRequest(2))

	out := mustOutcome(t, bg[1])
	if !errors.Is(out.Err, ErrOverloaded) {
		t.Errorf("preempted job err = %v, want ErrOverloaded", out.Err)
	}
	if got := rec.Snapshot().Preempted; got != 1 {
		t.Errorf("preempted counter = %d, want 1", got)
	}

	// A second background submission is shed outright: critical work
	// holds both slots' worth of capacity.
	req := sigRequest(3)
	req.Priority = PriorityBackground
	if out := mustOutcome(t, srv.Submit(context.Background(), req)); !errors.Is(out.Err, ErrOverloaded) {
		t.Errorf("background overflow err = %v, want ErrOverloaded", out.Err)
	}

	srv.adm.setHold(false)
	if out := mustOutcome(t, bg[0]); out.Err != nil {
		t.Errorf("surviving background job failed: %v", out.Err)
	}
	if out := mustOutcome(t, crit); out.Err != nil {
		t.Errorf("critical job failed: %v", out.Err)
	}
}

// TestRateLimitPerClient: the deterministic token bucket rejects a
// client that bursts past its allowance, without touching other
// clients.
func TestRateLimitPerClient(t *testing.T) {
	srv, rec := servingServer(t, store.New(), func(o *InferenceServerOptions) {
		o.QueueLimit = 10
		o.RateLimit = 0.25
		o.RateBurst = 2
	})
	srv.adm.setHold(true)
	chs := make([]<-chan InferOutcome, 0, 4)
	for i := 0; i < 4; i++ {
		chs = append(chs, srv.Submit(context.Background(), sigRequest(i)))
	}
	// Burst 2 with refill 0.25/tick: submissions 3 and 4 find a dry
	// bucket.
	for i := 2; i < 4; i++ {
		out := mustOutcome(t, chs[i])
		if !errors.Is(out.Err, ErrRateLimited) || !errors.Is(out.Err, ErrOverloaded) {
			t.Errorf("submission %d: err = %v, want ErrRateLimited (wrapping ErrOverloaded)", i, out.Err)
		}
	}
	if got := rec.Snapshot().RateLimited; got != 2 {
		t.Errorf("rate-limited counter = %d, want 2", got)
	}
	// A different client starts with a full bucket.
	other := sigRequest(9)
	other.Client = "other-client"
	otherCh := srv.Submit(context.Background(), other)
	srv.adm.setHold(false)
	for _, ch := range []<-chan InferOutcome{chs[0], chs[1], otherCh} {
		if out := mustOutcome(t, ch); out.Err != nil {
			t.Errorf("admitted submission failed: %v", out.Err)
		}
	}
}

// TestRateLimitTenantInstruments: rate-limit rejections surface as
// per-tenant labeled counters and as errors on the standing
// serving/tenant-rejections objective, attributed to the bursting
// client only.
func TestRateLimitTenantInstruments(t *testing.T) {
	ev := slo.NewEvaluator()
	srv, rec := servingServer(t, store.New(), func(o *InferenceServerOptions) {
		o.QueueLimit = 10
		o.RateLimit = 0.25
		o.RateBurst = 2
		o.SLO = ev
	})
	srv.adm.setHold(true)
	chs := make([]<-chan InferOutcome, 0, 5)
	for i := 0; i < 4; i++ {
		chs = append(chs, srv.Submit(context.Background(), sigRequest(i)))
	}
	other := sigRequest(9)
	other.Client = "other-client"
	chs = append(chs, srv.Submit(context.Background(), other))
	srv.adm.setHold(false)
	for _, ch := range chs {
		mustOutcome(t, ch)
	}

	got := map[string]int64{}
	for _, c := range rec.Registry().Snapshot().Counters {
		if strings.HasPrefix(c.Name, "serving.rate-limited.tenant.") {
			got[strings.TrimPrefix(c.Name, "serving.rate-limited.tenant.")] = c.Value
		}
	}
	if got["test-client"] != 2 || got["other-client"] != 0 {
		t.Errorf("per-tenant rate-limited counters = %v, want test-client=2 and no other-client", got)
	}

	obj, ok := ev.Snapshot().Objective("serving/tenant-rejections")
	if !ok {
		t.Fatal("serving/tenant-rejections objective not registered")
	}
	if obj.Errors != 2 || obj.Events != 5 {
		t.Errorf("tenant-rejections objective = %d errors / %d events, want 2/5", obj.Errors, obj.Events)
	}
}

// TestDrainCompletesInflight: a graceful drain finishes accepted work,
// flushes the write-behind buffer, and then rejects new submissions
// with the typed error.
func TestDrainCompletesInflight(t *testing.T) {
	testutil.CheckGoroutineLeak(t, 2)
	st := store.New()
	srv, _ := servingServer(t, st, nil)
	a := srv.Submit(context.Background(), sigRequest(0))
	b := srv.Submit(context.Background(), sigRequest(1))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("graceful drain: %v", err)
	}
	if out := mustOutcome(t, a); out.Err != nil {
		t.Errorf("in-flight request failed during drain: %v", out.Err)
	}
	if out := mustOutcome(t, b); out.Err != nil {
		t.Errorf("queued request failed during drain: %v", out.Err)
	}
	if got := srv.writes.Pending(); got != 0 {
		t.Errorf("%d store writes still pending after drain", got)
	}
	if st.Len() != 2 {
		t.Errorf("store has %d entries after drain, want 2", st.Len())
	}
	if out := mustOutcome(t, srv.Submit(context.Background(), sigRequest(2))); !errors.Is(out.Err, ErrServerClosed) {
		t.Errorf("submit after drain err = %v, want ErrServerClosed", out.Err)
	}
}

// TestDrainDeadlineEvicts: when the drain deadline expires, in-flight
// work is cancelled and queued work evicted — every caller still gets
// a typed outcome.
func TestDrainDeadlineEvicts(t *testing.T) {
	testutil.CheckGoroutineLeak(t, 2)
	srv, _ := servingServer(t, store.New(), func(o *InferenceServerOptions) {
		o.Trials = 2_000_000 // hold the single worker
	})
	inflight := srv.Submit(context.Background(), sigRequest(0))
	queued := srv.Submit(context.Background(), sigRequest(1))
	time.Sleep(50 * time.Millisecond) // let the worker start tuning

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired drain returned %v, want deadline error", err)
	}
	if out := mustOutcome(t, inflight); out.Err == nil {
		t.Error("cancelled in-flight request reported success")
	}
	if out := mustOutcome(t, queued); !errors.Is(out.Err, ErrServerClosed) {
		t.Errorf("evicted queued request err = %v, want ErrServerClosed", out.Err)
	}
}

// TestDrainExpiredContext: a Drain whose context expired before the
// call must still run the deadline-eviction path — every queued caller
// receives a typed outcome rather than hanging — and Close stays
// idempotent afterwards.
func TestDrainExpiredContext(t *testing.T) {
	testutil.CheckGoroutineLeak(t, 2)
	srv, _ := servingServer(t, store.New(), nil)
	srv.adm.setHold(true) // keep both submissions queued
	a := srv.Submit(context.Background(), sigRequest(0))
	b := srv.Submit(context.Background(), sigRequest(1))

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before the drain even starts
	if err := srv.Drain(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired drain returned %v, want context.Canceled", err)
	}
	for i, ch := range []<-chan InferOutcome{a, b} {
		if out := mustOutcome(t, ch); !errors.Is(out.Err, ErrServerClosed) {
			t.Errorf("queued request %d err = %v, want ErrServerClosed", i, out.Err)
		}
	}
	if out := mustOutcome(t, srv.Submit(context.Background(), sigRequest(2))); !errors.Is(out.Err, ErrServerClosed) {
		t.Errorf("submit after expired drain err = %v, want ErrServerClosed", out.Err)
	}
	srv.Close()
	srv.Close() // idempotent after a drain, including repeated calls
}

// TestHedgeOnBrownout: with a browned-out primary, the server issues a
// deterministic hedge to the twin device and the request still
// succeeds.
func TestHedgeOnBrownout(t *testing.T) {
	run := func(disable bool) (InferOutcome, counters.ResilienceSnapshot) {
		inj, err := fault.NewInjector(fault.Config{DeviceBrownout: 1, BrownoutFactor: 8}, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		srv, rec := servingServer(t, store.New(), func(o *InferenceServerOptions) {
			o.Pool = []device.Device{device.I7(), i7Twin()}
			o.Fault = inj
			o.HedgeFactor = 1.1
			o.DisableHedging = disable
		})
		out := mustOutcome(t, srv.Submit(context.Background(), sigRequest(0)))
		return out, rec.Snapshot()
	}

	out, snap := run(false)
	if out.Err != nil {
		t.Fatalf("browned-out request failed: %v", out.Err)
	}
	if !out.Hedged || snap.Hedges != 1 {
		t.Errorf("hedged = %v, hedges = %d; want a hedge on a >1.1x brown-out", out.Hedged, snap.Hedges)
	}
	out2, snap2 := run(false)
	if out2.Latency != out.Latency || snap2.Hedges != snap.Hedges || snap2.HedgeWins != snap.HedgeWins {
		t.Errorf("same-seed hedging diverged: %v/%+v vs %v/%+v", out.Latency, snap, out2.Latency, snap2)
	}

	plain, psnap := run(true)
	if plain.Err != nil {
		t.Fatalf("unhedged request failed: %v", plain.Err)
	}
	if plain.Hedged || psnap.Hedges != 0 {
		t.Errorf("DisableHedging still hedged: %v / %d", plain.Hedged, psnap.Hedges)
	}
	if out.Latency > plain.Latency {
		t.Errorf("hedged latency %v exceeds unhedged %v", out.Latency, plain.Latency)
	}
}

// TestNoHealthyDeviceTyped: with the only device's breaker open, Submit
// fails fast with an error classified like the old single-device
// breaker rejection.
func TestNoHealthyDeviceTyped(t *testing.T) {
	inj, err := fault.NewInjector(fault.Config{DeviceFlap: 1}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := servingServer(t, store.New(), func(o *InferenceServerOptions) {
		o.Fault = inj
		o.MaxAttempts = 1
		o.BreakerThreshold = 1
		o.BreakerCooldown = 2
	})
	if out := mustOutcome(t, srv.Submit(context.Background(), sigRequest(0))); out.Err == nil {
		t.Fatal("permanently flapping device served a request")
	}
	out := mustOutcome(t, srv.Submit(context.Background(), sigRequest(1)))
	if !errors.Is(out.Err, ErrNoHealthyDevice) || !errors.Is(out.Err, ErrCircuitOpen) {
		t.Errorf("err = %v, want ErrNoHealthyDevice wrapping ErrCircuitOpen", out.Err)
	}
	if !transientInferError(out.Err) {
		t.Error("pool exhaustion not classified transient")
	}
}

// TestPoolQuarantineAndRecovery drives the health state machine
// directly: repeated failures quarantine a device, the periodic probe
// reaches it, and sustained clean results walk it back through
// probation to healthy.
func TestPoolQuarantineAndRecovery(t *testing.T) {
	rec := counters.NewResilience()
	pool := newDevicePool([]device.Device{device.I7(), i7Twin()}, 3, 2, rec)
	sick := pool.devs[0]
	boom := errors.New("boom")

	// Three failures: score 1 -> 0.7 -> 0.49 -> 0.343, under the 0.35
	// quarantine threshold (and the breaker trips at its threshold 3).
	for i := 0; i < 3; i++ {
		pool.observe(route{pd: sick}, boom, 0, 0, 0)
	}
	if st, score := pool.stateOf("i7"); st != deviceQuarantined {
		t.Fatalf("after 3 failures: state = %d (score %.3f), want quarantined", st, score)
	}
	if got := rec.Snapshot().Quarantines; got != 1 {
		t.Errorf("quarantine counter = %d, want 1", got)
	}

	// Routing avoids the quarantined device...
	for i := 1; i <= 3; i++ {
		rt, err := pool.pick(0)
		if err != nil {
			t.Fatal(err)
		}
		if rt.pd.name != "i7-b" {
			t.Fatalf("pick %d routed to quarantined device", i)
		}
		pool.observe(rt, nil, 0, 0, 0)
	}
	// ...until the periodic probe; the breaker (open, cooldown 2) eats
	// the first probe attempts, then half-opens and admits one.
	var probe route
	for i := 0; i < 3*probeEvery && probe.pd == nil; i++ {
		rt, err := pool.pick(0)
		if err != nil {
			t.Fatal(err)
		}
		if rt.qProbe {
			probe = rt
		} else {
			pool.observe(rt, nil, 0, 0, 0)
		}
	}
	if probe.pd == nil || probe.pd.name != "i7" {
		t.Fatal("quarantined device never probed")
	}
	if rec.Snapshot().Probes == 0 {
		t.Error("probe counter not incremented")
	}

	// A clean probe moves it to probation; clean traffic then restores
	// full health at the 0.75 threshold.
	pool.observe(probe, nil, 0, 0, 0)
	if st, _ := pool.stateOf("i7"); st != deviceProbation {
		t.Fatalf("after clean probe: state = %d, want probation", st)
	}
	for i := 0; i < 10; i++ {
		pool.observe(route{pd: sick}, nil, 0, 0, 0)
	}
	if st, score := pool.stateOf("i7"); st != deviceHealthy || score < recoverAbove {
		t.Errorf("after sustained successes: state = %d score = %.3f, want healthy", st, score)
	}
}

// TestPoolSlowSuccessesQuarantine: a device that keeps succeeding far
// slower than the performance model expects (a brown-out) is
// quarantined even though its breaker never trips.
func TestPoolSlowSuccessesQuarantine(t *testing.T) {
	rec := counters.NewResilience()
	pool := newDevicePool([]device.Device{device.I7(), i7Twin()}, 3, 2, rec)
	slow := pool.devs[0]
	// Ten-fold slowdown: each observation scores 0.1.
	for i := 0; i < 8; i++ {
		pool.observe(route{pd: slow}, nil, 10*time.Second, time.Second, 0)
	}
	if st, score := pool.stateOf("i7"); st != deviceQuarantined {
		t.Errorf("state = %d (score %.3f), want quarantined on chronic slowness", st, score)
	}
	if pool.breakerOf("i7").snapshotState() != breakerClosed {
		t.Error("breaker tripped on successes")
	}
}
