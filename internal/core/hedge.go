package core

import (
	"context"
	"time"

	"edgetune/internal/autoscale"
	"edgetune/internal/fault"
	"edgetune/internal/obs"
	"edgetune/internal/perfmodel"
	"edgetune/internal/store"
)

// serveResult is one device's attempt-group at a request: the tuned
// entry (on success), the total simulated cost charged across attempts,
// and the terminal error. The cost's Duration doubles as the device's
// serving latency on simulated time. baseline is the fault-free
// (pre-brownout) duration of the last completed search — the perfmodel
// expectation the hedge deadline and health scoring compare against;
// zero when no attempt got as far as the search.
type serveResult struct {
	entry    store.Entry
	cost     perfmodel.Cost
	baseline time.Duration
	err      error
}

// hedgeOutcome is the merged result of a (possibly hedged) request:
// which device's result won, the combined charged cost, and the
// effective finish time under the simulated-concurrency model.
type hedgeOutcome struct {
	res      serveResult
	winner   *poolDevice
	cost     perfmodel.Cost
	latency  time.Duration
	hedged   bool
	hedgeWon bool
}

// hedgeable reports whether a primary failure is worth re-issuing
// elsewhere: injected device faults are, caller cancellations and
// deadline expiries are not.
func hedgeable(err error) bool {
	return fault.IsFault(err)
}

// runHedged serves req on the routed primary and, when the primary
// straggles past its deterministic deadline (or fails transiently),
// speculatively re-issues it to the next-best healthy device, taking
// the first result and cancelling the loser.
//
// The deadline is derived from the performance model — the primary's
// fault-free tuning duration times HedgeFactor — never from wall-clock
// randomness, so identically-seeded runs hedge identically. (The
// fault-free duration falls out of the attempt itself: brown-outs
// inflate the charged cost after the search runs, so the pre-inflation
// duration is exactly what a healthy device would have taken.)
// Simulated concurrency replaces real parallelism: the hedge "starts"
// at the deadline (or at the primary's failure time, if earlier), the
// winner is whichever result finishes first on that clock, and the
// loser is charged only the cost it accrued before the winner's
// finish — the cancellation refund.
func (s *InferenceServer) runHedged(ctx context.Context, req InferRequest, primary route, sp *obs.Span, base time.Duration) hedgeOutcome {
	pd := primary.pd
	r1 := s.serveOn(ctx, req, pd, sp, base)
	expected := r1.baseline
	deadline := time.Duration(float64(expected) * s.opts.HedgeFactor)
	s.pool.observe(primary, r1.err, r1.cost.Duration, expected, base+r1.cost.Duration)

	out := hedgeOutcome{res: r1, winner: pd, cost: r1.cost, latency: r1.cost.Duration}
	straggled := r1.err == nil && deadline > 0 && r1.cost.Duration > deadline
	failed := r1.err != nil && hedgeable(r1.err)
	if s.opts.DisableHedging || len(s.pool.devs) < 2 || (!straggled && !failed) {
		return out
	}
	if s.degradeMode() >= autoscale.ModeNoHedging {
		// The degradation ladder has switched hedging off: worst-case
		// device load per request matters more than tail latency now.
		return out
	}
	second, err := s.pool.next(pd, base)
	if err != nil {
		return out // nowhere to hedge; keep the primary result
	}

	s.opts.Recorder.AddHedge()

	// The hedge launches at the straggler deadline, or at the primary's
	// failure time when that is what triggered it.
	start := deadline
	if failed && (deadline == 0 || r1.cost.Duration < deadline) {
		start = r1.cost.Duration
	}
	var hsp *obs.Span
	if sp != nil {
		reason := "straggler"
		if failed {
			reason = "primary-failed"
		}
		hsp = sp.Child("hedge", base+start,
			obs.Str("device", second.pd.name),
			obs.Str("reason", reason))
	}

	r2 := s.serveOn(ctx, req, second.pd, hsp, base+start)
	s.pool.observe(second, r2.err, r2.cost.Duration, r2.baseline, base+start+r2.cost.Duration)

	d1 := r1.cost.Duration
	d2 := start + r2.cost.Duration

	out.hedged = true
	switch {
	case r2.err == nil && (r1.err != nil || d2 < d1):
		// Secondary wins; the primary is cancelled at the finish line
		// and charged only its overlap.
		s.opts.Recorder.AddHedgeWin()
		out.hedgeWon = true
		out.res = r2
		out.winner = second.pd
		out.latency = d2
		out.cost = r2.cost.Add(scaleCost(r1.cost, overlap(d2, d1)))
	case r1.err == nil:
		// Primary finished first (or the hedge failed); the hedge is
		// cancelled at the primary's finish and charged its overlap.
		out.latency = d1
		out.cost = r1.cost.Add(scaleCost(r2.cost, overlap(d1-start, r2.cost.Duration)))
	default:
		// Both failed: the full cost of both attempts is charged and
		// the primary's error stands.
		out.latency = maxDuration(d1, d2)
		out.cost = r1.cost.Add(r2.cost)
	}
	if hsp != nil {
		hsp.Set(obs.Bool("won", out.hedgeWon))
		hsp.End(base + d2)
	}
	return out
}

// overlap is the fraction of a loser's duration that elapsed before it
// was cancelled, clamped to [0, 1].
func overlap(ran, full time.Duration) float64 {
	if full <= 0 || ran >= full {
		return 1
	}
	if ran <= 0 {
		return 0
	}
	return float64(ran) / float64(full)
}

func scaleCost(c perfmodel.Cost, f float64) perfmodel.Cost {
	return perfmodel.Cost{
		Duration: time.Duration(float64(c.Duration) * f),
		EnergyJ:  c.EnergyJ * f,
	}
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
