package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"edgetune/internal/device"
	"edgetune/internal/perfmodel"
	"edgetune/internal/search"
	"edgetune/internal/store"
	"edgetune/internal/workload"
)

func TestMetricValidate(t *testing.T) {
	if err := MetricRuntime.Validate(); err != nil {
		t.Error(err)
	}
	if err := MetricEnergy.Validate(); err != nil {
		t.Error(err)
	}
	if err := Metric("latency").Validate(); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestObjectiveScores(t *testing.T) {
	train := perfmodel.Cost{Duration: 100 * time.Second, EnergyJ: 5000}
	inf := perfmodel.InferResult{Throughput: 50, EnergyPerSampleJ: 0.2}

	rt := Objective{Metric: MetricRuntime}
	// 100 s × (1/50 s) / 0.8 = 2.5
	if got := rt.ModelScore(train, inf, 0.8); got != 2.5 {
		t.Errorf("runtime ModelScore = %v, want 2.5", got)
	}
	en := Objective{Metric: MetricEnergy}
	// 5000 × 0.2 / 0.8 = 1250
	if got := en.ModelScore(train, inf, 0.8); got != 1250 {
		t.Errorf("energy ModelScore = %v, want 1250", got)
	}
	// Zero accuracy must not divide by zero.
	if got := rt.ModelScore(train, inf, 0); got <= 0 {
		t.Errorf("zero-accuracy score = %v, want large positive", got)
	}
	if got := rt.TrainOnlyScore(train, 0.5); got != 200 {
		t.Errorf("TrainOnlyScore = %v, want 200", got)
	}
	if got := rt.InferScore(inf); got != 0.02 {
		t.Errorf("runtime InferScore = %v, want 0.02", got)
	}
	if got := en.InferScore(inf); got != 0.2 {
		t.Errorf("energy InferScore = %v, want 0.2", got)
	}
}

// LowerAccuracyScoresWorse: for a fixed cost, the objective must prefer
// higher accuracy.
func TestObjectivePrefersAccuracy(t *testing.T) {
	train := perfmodel.Cost{Duration: time.Minute, EnergyJ: 1000}
	inf := perfmodel.InferResult{Throughput: 10, EnergyPerSampleJ: 1}
	o := Objective{Metric: MetricRuntime}
	if o.ModelScore(train, inf, 0.9) >= o.ModelScore(train, inf, 0.5) {
		t.Error("higher accuracy did not lower the score")
	}
}

func infServer(t *testing.T, st *store.Store, trials int) *InferenceServer {
	t.Helper()
	w := workload.MustNew("IC", 1)
	dev := device.I7()
	space, err := w.InferenceSpace(dev)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewInferenceServer(InferenceServerOptions{
		Device: dev,
		Space:  space,
		Metric: MetricRuntime,
		Trials: trials,
		Store:  st,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func icRequest() InferRequest {
	return InferRequest{Signature: "IC/layers=18", FLOPsPerSample: 5.6e8, Params: 11e6}
}

func TestInferenceServerTunes(t *testing.T) {
	st := store.New()
	srv := infServer(t, st, 16)
	out := <-srv.Submit(context.Background(), icRequest())
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if out.Cached {
		t.Error("first request reported cached")
	}
	e := out.Entry
	if e.Throughput <= 0 || e.EnergyPerSampleJ <= 0 {
		t.Errorf("implausible entry: %+v", e)
	}
	if e.Config[workload.ParamInferBatch] < 1 {
		t.Error("recommendation missing inference batch")
	}
	if e.TrialsRun != 16 {
		t.Errorf("TrialsRun = %d, want 16", e.TrialsRun)
	}
	if out.TuningCost.Duration <= 0 {
		t.Error("uncached tuning must cost simulated time")
	}
	// Results reach the store through the write-behind buffer; flush
	// before asserting on the underlying store.
	if err := srv.FlushWrites(); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Errorf("store has %d entries, want 1", st.Len())
	}
}

func TestInferenceServerCacheHit(t *testing.T) {
	st := store.New()
	srv := infServer(t, st, 8)
	ctx := context.Background()
	first := <-srv.Submit(ctx, icRequest())
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	second := <-srv.Submit(ctx, icRequest())
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	if !second.Cached {
		t.Error("second request not served from the store")
	}
	if second.TuningCost.Duration != 0 {
		t.Error("cache hit charged tuning cost")
	}
	if second.Entry.Objective != first.Entry.Objective {
		t.Error("cache returned a different result")
	}
}

func TestInferenceServerCoalescesConcurrentDuplicates(t *testing.T) {
	st := store.New()
	srv := infServer(t, st, 12)
	ctx := context.Background()
	const n = 16
	outs := make([]<-chan InferOutcome, n)
	for i := 0; i < n; i++ {
		outs[i] = srv.Submit(ctx, icRequest())
	}
	uncached := 0
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, ch := range outs {
		wg.Add(1)
		go func(c <-chan InferOutcome) {
			defer wg.Done()
			o := <-c
			if o.Err != nil {
				t.Error(o.Err)
				return
			}
			mu.Lock()
			if !o.Cached {
				uncached++
			}
			mu.Unlock()
		}(ch)
	}
	wg.Wait()
	if uncached != 1 {
		t.Errorf("%d uncached tuning runs for identical requests, want exactly 1", uncached)
	}
}

func TestInferenceServerRejectsEmptySignature(t *testing.T) {
	srv := infServer(t, store.New(), 4)
	out := <-srv.Submit(context.Background(), InferRequest{FLOPsPerSample: 1e8, Params: 1e6})
	if out.Err == nil {
		t.Error("empty signature accepted")
	}
}

func TestInferenceServerDeterministicAcrossRuns(t *testing.T) {
	run := func() store.Entry {
		st := store.New()
		srv := infServer(t, st, 16)
		out := <-srv.Submit(context.Background(), icRequest())
		if out.Err != nil {
			t.Fatal(out.Err)
		}
		return out.Entry
	}
	a, b := run(), run()
	if a.Objective != b.Objective || a.Throughput != b.Throughput {
		t.Errorf("same-seed runs differ: %+v vs %+v", a, b)
	}
}

func TestInferenceServerOptionValidation(t *testing.T) {
	w := workload.MustNew("IC", 1)
	space, _ := w.InferenceSpace(device.I7())
	if _, err := NewInferenceServer(InferenceServerOptions{Space: nil, Store: store.New()}); err == nil {
		t.Error("nil space accepted")
	}
	if _, err := NewInferenceServer(InferenceServerOptions{Space: space, Store: nil}); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := NewInferenceServer(InferenceServerOptions{Space: space, Store: store.New(), Metric: "x"}); err == nil {
		t.Error("bad metric accepted")
	}
	if _, err := NewInferenceServer(InferenceServerOptions{Space: space, Store: store.New(), Algo: "nope"}); err != nil {
		// Algo is validated lazily at tune time; construction succeeds.
		t.Errorf("construction failed unexpectedly: %v", err)
	}
}

func smallOptions(id string) Options {
	return Options{
		Workload:       workload.MustNew(id, 1),
		SystemParams:   true,
		InferenceAware: true,
		InitialConfigs: 4,
		Rungs:          4,
		MaxBrackets:    2,
		InferTrials:    8,
		Seed:           7,
	}
}

func TestTuneEndToEnd(t *testing.T) {
	res, err := Tune(context.Background(), smallOptions("IC"))
	if err != nil {
		t.Fatal(err)
	}
	if res.TrialsRun == 0 {
		t.Fatal("no trials ran")
	}
	if res.BestConfig == nil {
		t.Fatal("no best config")
	}
	if res.BestAccuracy <= 0.1 {
		t.Errorf("best accuracy %v at chance level", res.BestAccuracy)
	}
	if res.TuningDuration <= 0 || res.TuningEnergyKJ <= 0 {
		t.Error("tuning cost not accounted")
	}
	// The EdgeTune output must include inference recommendations.
	rec := res.Recommendation
	if rec.Signature == "" || rec.Config[workload.ParamInferBatch] < 1 {
		t.Errorf("missing inference recommendation: %+v", rec)
	}
	if rec.Device != device.I7().Profile.Name {
		t.Errorf("recommendation device = %q, want default i7", rec.Device)
	}
	// Containment (§3.3): inference tuning fits within training trials.
	if res.ContainmentViolations > 0 {
		t.Errorf("%d containment violations: inference tuning exceeded its training trial", res.ContainmentViolations)
	}
	if len(res.Trials) != res.TrialsRun {
		t.Error("trial records inconsistent with TrialsRun")
	}
}

func TestTuneDeterministic(t *testing.T) {
	a, err := Tune(context.Background(), smallOptions("IC"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tune(context.Background(), smallOptions("IC"))
	if err != nil {
		t.Fatal(err)
	}
	if a.BestScore != b.BestScore || a.TuningDuration != b.TuningDuration {
		t.Errorf("same-seed tuning runs differ: %v/%v vs %v/%v",
			a.BestScore, a.TuningDuration, b.BestScore, b.TuningDuration)
	}
}

func TestTuneCacheReuse(t *testing.T) {
	res, err := Tune(context.Background(), smallOptions("IC"))
	if err != nil {
		t.Fatal(err)
	}
	// IC has only 3 architectures (18/34/50 layers); with >= 8 trials
	// the historical store must get hits.
	if res.CacheHits == 0 {
		t.Errorf("no cache hits in %d trials over 3 architectures", res.TrialsRun)
	}
}

func TestTuneValidation(t *testing.T) {
	if _, err := Tune(context.Background(), Options{}); err == nil {
		t.Error("missing workload accepted")
	}
	bad := smallOptions("IC")
	bad.Eta = 1
	if _, err := Tune(context.Background(), bad); err == nil {
		t.Error("eta=1 accepted")
	}
	bad = smallOptions("IC")
	bad.Metric = "latency"
	if _, err := Tune(context.Background(), bad); err == nil {
		t.Error("bad metric accepted")
	}
	bad = smallOptions("IC")
	bad.TargetAccuracy = 2
	if _, err := Tune(context.Background(), bad); err == nil {
		t.Error("bad target accepted")
	}
}

func TestTuneHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Tune(ctx, smallOptions("IC")); err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestTuneEnergyMetric(t *testing.T) {
	opts := smallOptions("IC")
	opts.Metric = MetricEnergy
	res, err := Tune(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metric != MetricEnergy {
		t.Error("metric not propagated")
	}
	if res.Recommendation.EnergyPerSampleJ <= 0 {
		t.Error("energy recommendation missing")
	}
}

func TestTuneInferenceUnaware(t *testing.T) {
	opts := smallOptions("IC")
	opts.InferenceAware = false
	res, err := Tune(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recommendation.Signature != "" {
		t.Error("inference-unaware run produced a recommendation")
	}
	if res.InferTuningDuration != 0 {
		t.Error("inference tuning charged without the server")
	}
}

func TestTuneHierarchical(t *testing.T) {
	opts := smallOptions("IC")
	res, err := TuneHierarchical(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.BestConfig[workload.ParamGPUs]; !ok {
		t.Error("hierarchical stage 2 did not set the GPU count")
	}
	if res.TrialsRun <= 8 {
		t.Errorf("TrialsRun = %d, want stage-1 trials plus the 8-GPU sweep", res.TrialsRun)
	}
}

// TestOnefoldBeatsHierarchical encodes §4.1's claim: the onefold
// approach finds configurations at lower total tuning cost than tuning
// hyper then system parameters separately.
func TestOnefoldBeatsHierarchical(t *testing.T) {
	onefold, err := Tune(context.Background(), smallOptions("IC"))
	if err != nil {
		t.Fatal(err)
	}
	hier, err := TuneHierarchical(context.Background(), smallOptions("IC"))
	if err != nil {
		t.Fatal(err)
	}
	if onefold.TuningDuration >= hier.TuningDuration {
		t.Errorf("onefold %v not cheaper than hierarchical %v",
			onefold.TuningDuration, hier.TuningDuration)
	}
}

func TestTuneAllWorkloads(t *testing.T) {
	for _, id := range workload.IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			opts := smallOptions(id)
			opts.InitialConfigs = 3
			opts.Rungs = 3
			opts.MaxBrackets = 1
			res, err := Tune(context.Background(), opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Workload != id {
				t.Errorf("workload = %q", res.Workload)
			}
			if res.Recommendation.Signature == "" {
				t.Error("no recommendation")
			}
		})
	}
}

func TestTuneGridInferenceAlgo(t *testing.T) {
	// §3.1: the inference server may use grid search when its space is
	// small while the model server runs BOHB.
	opts := smallOptions("IC")
	opts.InferAlgo = search.AlgoGrid
	res, err := Tune(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recommendation.Signature == "" {
		t.Error("grid inference tuning produced no recommendation")
	}
}
