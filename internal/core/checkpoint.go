package core

import (
	"encoding/json"
	"fmt"

	"edgetune/internal/counters"
	"edgetune/internal/search"
	"edgetune/internal/store"
)

// checkpointVersion guards the serialized layout; a mismatch discards
// the checkpoint rather than resuming from incompatible state.
// Version 2 added the sampler stream position, which convergence
// depends on — version-1 checkpoints are not resumed.
const checkpointVersion = 2

// cpMember is one surviving population member at a checkpoint.
type cpMember struct {
	Config search.Config `json:"config"`
	Score  float64       `json:"score"`
}

// tuneCheckpoint captures everything needed to resume a Tune call
// after the last completed rung: the surviving population, the
// accumulated result, the incumbent, and the resilience counters. It
// is serialized into the historical store (and through it to disk when
// the store is persisted), so a killed job resumes without re-running
// finished trials.
type tuneCheckpoint struct {
	Version int    `json:"version"`
	Key     string `json:"key"`
	// Bracket/NextRung locate the next unit of work. A bracket
	// boundary is encoded as (bracket+1, 0) with a nil population.
	Bracket  int        `json:"bracket"`
	NextRung int        `json:"nextRung"`
	Pop      []cpMember `json:"population,omitempty"`

	Trials         []TrialRecord `json:"trials"`
	TrialsRun      int           `json:"trialsRun"`
	TuningNanos    int64         `json:"tuningNanos"`
	TuningEnergyKJ float64       `json:"tuningEnergyKJ"`
	MaxAccuracy    float64       `json:"maxAccuracy"`
	ReachedTarget  bool          `json:"reachedTarget"`

	HasBest      bool          `json:"hasBest"`
	BestScore    float64       `json:"bestScore"`
	BestConfig   search.Config `json:"bestConfig,omitempty"`
	BestAccuracy float64       `json:"bestAccuracy"`
	BestMeets    bool          `json:"bestMeets"`

	Resilience counters.ResilienceSnapshot `json:"resilience"`

	// Sampler is the proposal stream's position (RNG state or sequence
	// cursor). Without it a resumed run re-seeds the sampler from
	// scratch and the next bracket's population diverges from the
	// uninterrupted run's — breaking crash/restart convergence.
	Sampler *search.SamplerState `json:"sampler,omitempty"`
}

// checkpointKey identifies a job's checkpoint slot: resuming is only
// valid when the job shape that produced the checkpoint matches.
func checkpointKey(o Options) string {
	return fmt.Sprintf("tune/%s/%s/%s/%s/%s/eta%d/c%d/r%d/b%d/seed%d/sys%t/inf%t/acc%t",
		o.Workload.ID, o.Device.Profile.Name, o.Metric, o.BudgetKind, o.ModelAlgo,
		o.Eta, o.InitialConfigs, o.Rungs, o.MaxBrackets, o.Seed,
		o.SystemParams, o.InferenceAware, o.AccuracyOnly)
}

// saveCheckpoint serializes the in-progress state into the store and,
// when a path is configured, flushes the store to disk so the
// checkpoint survives a process kill.
func saveCheckpoint(st *store.Store, path string, cp tuneCheckpoint) error {
	cp.Version = checkpointVersion
	data, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("core: marshal checkpoint: %w", err)
	}
	if err := st.SaveCheckpoint(cp.Key, data); err != nil {
		return err
	}
	if path != "" {
		if err := st.Save(path); err != nil {
			return fmt.Errorf("core: flush checkpoint: %w", err)
		}
	}
	return nil
}

// loadCheckpoint returns the stored checkpoint for key, if one exists
// and is compatible.
func loadCheckpoint(st *store.Store, key string) (tuneCheckpoint, bool) {
	var cp tuneCheckpoint
	data, ok := st.LoadCheckpoint(key)
	if !ok {
		return cp, false
	}
	if err := json.Unmarshal(data, &cp); err != nil {
		return tuneCheckpoint{}, false
	}
	if cp.Version != checkpointVersion || cp.Key != key {
		return tuneCheckpoint{}, false
	}
	return cp, true
}
