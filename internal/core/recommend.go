package core

import (
	"context"
	"fmt"
	"sort"

	"edgetune/internal/device"
	"edgetune/internal/search"
	"edgetune/internal/store"
	"edgetune/internal/workload"
)

// RecommendForDevices tunes the inference configuration of one trained
// architecture for several edge devices — the §1 scenario where "the
// tuned model might be deployed across different edge devices and
// having these configurations suggested can assist users to take the
// most out of their tuned models". Results are cached in (and reused
// from) the shared store, and the per-device tuning runs are pipelined
// through one inference server per device.
func RecommendForDevices(ctx context.Context, w *workload.Workload, cfg search.Config, devices []device.Device, opts InferenceServerOptions) ([]store.Entry, error) {
	if w == nil {
		return nil, fmt.Errorf("core: nil workload")
	}
	if len(devices) == 0 {
		return nil, fmt.Errorf("core: no devices to recommend for")
	}
	flops, params, err := w.PaperCost(cfg)
	if err != nil {
		return nil, err
	}
	if opts.Store == nil {
		opts.Store = store.New()
	}
	if opts.Metric == "" {
		opts.Metric = MetricRuntime
	}

	type reply struct {
		idx int
		out InferOutcome
	}
	replies := make(chan reply, len(devices))
	servers := make([]*InferenceServer, 0, len(devices))
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	for i, dev := range devices {
		devOpts := opts
		devOpts.Device = dev
		space, err := w.InferenceSpace(dev)
		if err != nil {
			return nil, err
		}
		devOpts.Space = space
		srv, err := NewInferenceServer(devOpts)
		if err != nil {
			return nil, err
		}
		servers = append(servers, srv)

		ch := srv.Submit(ctx, InferRequest{
			Signature:      w.Signature(cfg),
			FLOPsPerSample: flops,
			Params:         params,
		})
		go func(idx int, c <-chan InferOutcome) {
			replies <- reply{idx: idx, out: <-c}
		}(i, ch)
	}

	entries := make([]store.Entry, len(devices))
	for range devices {
		select {
		case r := <-replies:
			if r.out.Err != nil {
				return nil, fmt.Errorf("core: device %s: %w", devices[r.idx].Profile.Name, r.out.Err)
			}
			entries[r.idx] = r.out.Entry
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Device < entries[j].Device })
	return entries, nil
}
