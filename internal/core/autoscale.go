package core

import (
	"fmt"
	"sync"
	"time"

	"edgetune/internal/autoscale"
	"edgetune/internal/device"
	"edgetune/internal/fault"
	"edgetune/internal/obs"
	"edgetune/internal/obs/flight"
)

// scaler binds the autoscale controller to the inference server: it is
// ticked once per submission, in submission order, with signals
// stamped deterministically at the request's simulated time, and
// applies the controller's decisions to the device pool, the admission
// queue, and the hedging gate. The flash-crowd fault class feeds it
// phantom load; the mass-device-fail class collapses the pool under it.
type scaler struct {
	mu   sync.Mutex
	ctl  *autoscale.Controller
	base device.Device // replica template: the pool's first device

	// crowd is the phantom flash-crowd load added to the in-system
	// signal; it decays by decayStep per tick and is bounded by
	// crowdCap.
	crowd, crowdCap, decayStep int

	massFailed bool // MassDeviceFail fires at most once per run
	replicaSeq int  // names autoscaled replicas <base>-as<N>
	lastMode   autoscale.Mode
	stalls     int64

	// Registry instruments (nil when metrics are off).
	gReplicas *obs.Gauge
	gMode     *obs.Gauge
	cUps      *obs.Counter
	cDowns    *obs.Counter
	cDegrade  *obs.Counter
	cRecover  *obs.Counter
	cStalls   *obs.Counter
	cCrowd    *obs.Counter
	cShed     *obs.Counter
	cEvicted  *obs.Counter
}

func newScaler(cfg autoscale.Config, opts *InferenceServerOptions) (*scaler, error) {
	ctl, err := autoscale.New(cfg)
	if err != nil {
		return nil, err
	}
	limit := opts.QueueLimit
	sc := &scaler{
		ctl:       ctl,
		base:      opts.Pool[0],
		crowdCap:  3 * limit,
		decayStep: maxInt(1, limit/4),
	}
	if reg := opts.Recorder.Registry(); reg != nil {
		sc.gReplicas = reg.Gauge("autoscale.replicas")
		sc.gMode = reg.Gauge("autoscale.mode")
		sc.cUps = reg.Counter("autoscale.scale-ups")
		sc.cDowns = reg.Counter("autoscale.scale-downs")
		sc.cDegrade = reg.Counter("autoscale.degrade-steps")
		sc.cRecover = reg.Counter("autoscale.recover-steps")
		sc.cStalls = reg.Counter("autoscale.stalls")
		sc.cCrowd = reg.Counter("autoscale.flash-crowds")
		sc.cShed = reg.Counter("autoscale.shed.background")
		sc.cEvicted = reg.Counter("autoscale.evicted.background")
	}
	return sc, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// degradeMode reports the degradation ladder's current rung (always
// ModeNormal without an autoscaler). Reads go through the controller's
// own lock.
func (s *InferenceServer) degradeMode() autoscale.Mode {
	if s.scale == nil {
		return autoscale.ModeNormal
	}
	return s.scale.ctl.Mode()
}

// AutoscaleReport snapshots the autoscaler's run totals, or nil when
// autoscaling is disabled. Safe to call after Close.
func (s *InferenceServer) AutoscaleReport() *autoscale.Report {
	if s.scale == nil {
		return nil
	}
	rep := s.scale.ctl.Report()
	return &rep
}

// AutoscaleDecisions returns the decision stream so far (nil when
// autoscaling is disabled).
func (s *InferenceServer) AutoscaleDecisions() []autoscale.Decision {
	if s.scale == nil {
		return nil
	}
	return s.scale.ctl.Decisions()
}

// AutoscaleStalls reports how many scale-ups the ScaleStall fault class
// swallowed (warm-up charged, replica never joined).
func (s *InferenceServer) AutoscaleStalls() int64 {
	if s.scale == nil {
		return 0
	}
	s.scale.mu.Lock()
	defer s.scale.mu.Unlock()
	return s.scale.stalls
}

// autoscaleTick runs the control loop for one submission: fire
// pool-level faults, stamp deterministic signals at the request's
// simulated time, record the capacity SLO event, and apply whatever
// the controller decides. Submit calls it once per submission, after
// taking the sequence number; for an ordered submission stream the
// tick order — and with it every decision — is deterministic.
func (s *InferenceServer) autoscaleTick(req InferRequest, seq int) {
	sc := s.scale
	if sc == nil {
		return
	}
	at := req.SubmitTime
	sc.mu.Lock()

	// Mass device failure: fires at most once per run, quarantining the
	// whole active pool in one blow. Recovery comes from health probes
	// on the quarantined devices plus autoscaled replacement replicas.
	if !sc.massFailed && s.opts.Fault.Should(fault.MassDeviceFail, fmt.Sprintf("pool#%d", seq), 0) {
		sc.massFailed = true
		hit := s.pool.massFail()
		if t := s.opts.Trace; t != nil {
			sp := t.Root(obs.TrackAutoscale, "mass-device-fail", uint64(seq), at,
				obs.Int("devices", int64(hit)))
			sp.End(at)
		}
		s.opts.Flight.Record(at, flight.KindHealth, "pool", "mass-fail", int64(hit), 0)
		s.opts.Flight.Trigger(flight.TriggerMassFail, at, "pool")
	}

	// Flash crowd: a phantom arrival surge inflates the in-system
	// signal; it decays linearly at the end of every tick.
	if s.opts.Fault.Should(fault.FlashCrowd, fmt.Sprintf("crowd#%d", seq), 0) {
		sc.crowd += s.opts.QueueLimit
		if sc.crowd > sc.crowdCap {
			sc.crowd = sc.crowdCap
		}
		sc.cCrowd.Inc()
	}

	active, healthy := s.pool.counts(at)
	inSystem := s.adm.inSystem() + sc.crowd
	sig := autoscale.Signals{
		At:          at,
		InSystem:    inSystem,
		QueuedAhead: s.adm.queuedLen() + sc.crowd,
		QueueLimit:  s.opts.QueueLimit,
		Replicas:    active,
		Healthy:     healthy,
		Good:        healthy > 0 && inSystem < s.opts.QueueLimit,
	}
	s.sloCapacity.Record(at, sig.Good)

	var evicted []*inferJob
	if d, ok := sc.ctl.Evaluate(sig); ok {
		evicted = s.applyScaleDecision(d, at)
		active, _ = s.pool.counts(at)
	}

	sc.crowd -= sc.decayStep
	if sc.crowd < 0 {
		sc.crowd = 0
	}
	sc.gReplicas.Set(float64(active))
	sc.gMode.Set(float64(sc.ctl.Mode()))
	sc.mu.Unlock()

	// Deliver evictions outside the scaler lock: deliver takes s.mu.
	for _, j := range evicted {
		s.opts.Recorder.AddPreempted()
		sc.cEvicted.Inc()
		s.pool.release(j.rt)
		s.deliver(j.call, InferOutcome{Err: fmt.Errorf("core: background evicted by degradation ladder: %w", ErrOverloaded)})
	}
}

// applyScaleDecision turns one controller decision into pool and
// admission effects, returning any background jobs the critical-only
// rung evicted (the caller delivers their outcomes). Callers hold
// sc.mu.
func (s *InferenceServer) applyScaleDecision(d autoscale.Decision, at time.Duration) []*inferJob {
	sc := s.scale
	var evicted []*inferJob
	switch {
	case d.Delta > 0:
		sc.cUps.Inc()
		if s.opts.Fault.Should(fault.ScaleStall, fmt.Sprintf("scaleup#%d", d.Tick), 0) {
			// The scale-up never materialises: the warm-up cost is
			// already charged, but no replica joins. The controller sees
			// the unchanged replica count next tick and tries again.
			sc.stalls++
			sc.cStalls.Inc()
		} else {
			sc.replicaSeq++
			replica := sc.base
			replica.Profile.Name = fmt.Sprintf("%s-as%d", sc.base.Profile.Name, sc.replicaSeq)
			s.pool.addReplica(replica, at+d.WarmupTime)
		}
	case d.Delta < 0:
		if _, ok := s.pool.retireNewest(); ok {
			sc.cDowns.Inc()
		}
	default:
		// Pure ladder transition.
		if d.Mode > sc.lastMode {
			sc.cDegrade.Inc()
			s.opts.Flight.Record(at, flight.KindLadder, "degrade", d.Mode.String(), int64(sc.lastMode), int64(d.Mode))
			if sc.lastMode == autoscale.ModeNormal {
				// Ladder engagement — the run left normal service — is
				// an incident trigger; deeper steps only extend the
				// timeline already being dossiered.
				s.opts.Flight.Trigger(flight.TriggerLadder, at, d.Mode.String())
			}
			if d.Mode >= autoscale.ModeCriticalOnly {
				evicted = s.adm.evictBackground()
			}
		} else if d.Mode < sc.lastMode {
			sc.cRecover.Inc()
			s.opts.Flight.Record(at, flight.KindLadder, "recover", d.Mode.String(), int64(sc.lastMode), int64(d.Mode))
		}
	}
	sc.lastMode = d.Mode

	if t := s.opts.Trace; t != nil {
		sp := t.Root(obs.TrackAutoscale, "scale-event", uint64(d.Tick), at,
			obs.Int("delta", int64(d.Delta)),
			obs.Int("replicas", int64(d.Replicas)),
			obs.Str("mode", d.Mode.String()),
			obs.Str("reason", d.Reason))
		sp.End(at + d.WarmupTime)
	}
	s.opts.Flight.Record(at, flight.KindAutoscale, d.Reason, d.Mode.String(), int64(d.Delta), int64(d.Replicas))
	return evicted
}
