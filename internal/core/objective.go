// Package core implements EdgeTune itself (§3-§4 of the paper): the
// Model Tuning Server and the Inference Tuning Server, jointly exploring
// model, training, and system parameters in the onefold approach of
// Algorithm 1, connected by asynchronous pipelined requests and a
// historical result store.
package core

import (
	"fmt"

	"edgetune/internal/perfmodel"
)

// Metric selects between the paper's two objective variants (§4.4).
type Metric string

// Objective metrics.
const (
	// MetricRuntime minimises (training_time × inference_time)/accuracy.
	MetricRuntime Metric = "runtime"
	// MetricEnergy minimises (training_energy × inference_energy)/accuracy.
	MetricEnergy Metric = "energy"
)

// Validate reports whether the metric is known.
func (m Metric) Validate() error {
	switch m {
	case MetricRuntime, MetricEnergy:
		return nil
	default:
		return fmt.Errorf("core: unknown metric %q (want %q or %q)", m, MetricRuntime, MetricEnergy)
	}
}

// Objective evaluates the paper's §4.4 objective functions.
type Objective struct {
	Metric Metric
	// TargetAccuracy applies a soft constraint: trials below the target
	// are penalised quadratically in their shortfall. The paper states
	// workloads are "tuned to reach at least 80% model accuracy" (§2.3)
	// — the ratio objective is meant to discriminate among
	// target-reaching configurations, not to trade accuracy away for
	// training speed. Zero disables the penalty.
	TargetAccuracy float64
}

// minAccuracy floors the accuracy denominator so broken trials produce
// large-but-finite scores instead of dividing by zero.
const minAccuracy = 1e-3

// effectiveAccuracy applies the soft target constraint.
func (o Objective) effectiveAccuracy(accuracy float64) float64 {
	if accuracy < minAccuracy {
		accuracy = minAccuracy
	}
	if o.TargetAccuracy > 0 && accuracy < o.TargetAccuracy {
		shortfall := accuracy / o.TargetAccuracy
		return accuracy * shortfall * shortfall
	}
	return accuracy
}

// ModelScore is the Model Tuning Server objective: the ratio of the
// performance product (training × inference) to model accuracy, to be
// minimised. The inference term uses per-sample latency (1/throughput)
// or per-sample energy depending on the metric.
func (o Objective) ModelScore(train perfmodel.Cost, inf perfmodel.InferResult, accuracy float64) float64 {
	accuracy = o.effectiveAccuracy(accuracy)
	switch o.Metric {
	case MetricEnergy:
		return train.EnergyJ * inf.EnergyPerSampleJ / accuracy
	default:
		infSec := 0.0
		if inf.Throughput > 0 {
			infSec = 1 / inf.Throughput
		}
		return train.Duration.Seconds() * infSec / accuracy
	}
}

// TrainOnlyScore is the inference-unaware variant used by the Tune
// baseline: training performance over accuracy, no inference term.
func (o Objective) TrainOnlyScore(train perfmodel.Cost, accuracy float64) float64 {
	accuracy = o.effectiveAccuracy(accuracy)
	switch o.Metric {
	case MetricEnergy:
		return train.EnergyJ / accuracy
	default:
		return train.Duration.Seconds() / accuracy
	}
}

// InferScore is the Inference Tuning Server objective (§4.4): inference
// performance alone — per-sample latency or per-sample energy.
func (o Objective) InferScore(r perfmodel.InferResult) float64 {
	switch o.Metric {
	case MetricEnergy:
		return r.EnergyPerSampleJ
	default:
		if r.Throughput <= 0 {
			return 0
		}
		return 1 / r.Throughput
	}
}
