package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"edgetune/internal/counters"
	"edgetune/internal/device"
	"edgetune/internal/fault"
	"edgetune/internal/perfmodel"
	"edgetune/internal/search"
	"edgetune/internal/store"
	"edgetune/internal/workload"
)

// InferRequest asks the Inference Tuning Server to find the optimal
// inference configuration for one architecture on one device.
type InferRequest struct {
	// Signature identifies the architecture (workload.Signature).
	Signature string
	// FLOPsPerSample and Params describe the paper-scale model.
	FLOPsPerSample float64
	Params         float64
}

// InferOutcome is the server's reply.
type InferOutcome struct {
	Entry store.Entry
	// Cached reports whether the result came from the historical store.
	Cached bool
	// TuningCost is the simulated cost of the inference trials run (zero
	// when cached). Failed attempts still charge their cost, so
	// resilience is inference-aware too.
	TuningCost perfmodel.Cost
	// Err carries a per-request failure.
	Err error
}

// InferenceServerOptions configures the server.
type InferenceServerOptions struct {
	// Device is the edge target being emulated.
	Device device.Device
	// Space is the inference parameter space (batch, cores, frequency).
	Space *search.Space
	// Algo names the search strategy; the default is BOHB, and a grid
	// can be chosen when the range of inference parameters is small
	// (§3.1's example pairing).
	Algo string
	// Metric is the inference objective (runtime or energy).
	Metric Metric
	// Trials is the number of inference configurations evaluated per
	// uncached request.
	Trials int
	// Workers sets the pipelining width (Figure 6): how many requests
	// are tuned concurrently.
	Workers int
	// Store is the shared historical database; required.
	Store *store.Store
	// Seed drives deterministic, order-independent tuning: each
	// request's sampler is seeded from the signature.
	Seed uint64
	// Fault optionally injects device-flap, store-write, and
	// dropped-reply faults (nil = none).
	Fault *fault.Injector
	// Recorder accumulates resilience counters (nil = not recorded).
	Recorder *counters.Resilience
	// MaxAttempts bounds the per-request tuning attempts when injected
	// faults make the device flap or the store write fail (default 3).
	MaxAttempts int
	// BreakerThreshold is the number of consecutive request failures
	// that opens the per-device circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is the number of fast-failed requests an open
	// breaker rejects before half-opening a probe (default 2; doubles
	// after each failed probe).
	BreakerCooldown int
	// RequestTimeout bounds one request's serving wall time
	// (default 30s).
	RequestTimeout time.Duration
}

func (o *InferenceServerOptions) normalise() error {
	if o.Space == nil {
		return errors.New("core: inference server needs a space")
	}
	if o.Store == nil {
		return errors.New("core: inference server needs a store")
	}
	if o.Metric == "" {
		o.Metric = MetricRuntime
	}
	if err := o.Metric.Validate(); err != nil {
		return err
	}
	if o.Algo == "" {
		o.Algo = search.AlgoBOHB
	}
	if o.Trials <= 0 {
		o.Trials = 24
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	return nil
}

// InferenceServer is the asynchronous inference tuning component
// (§3.4). Requests are pipelined through a worker pool; completed
// results land in the historical store and duplicate in-flight requests
// are coalesced. The serving path is resilient: injected faults are
// retried up to MaxAttempts per request, and a per-device circuit
// breaker fast-fails callers while the device is misbehaving so the
// Model Tuning Server can degrade to historical or estimated results
// instead of stalling.
type InferenceServer struct {
	opts InferenceServerOptions

	mu      sync.Mutex
	pending map[string][]chan InferOutcome // waiters per in-flight signature
	seq     int                            // request sequence, for per-request fault sites

	br *breaker // per-device breaker (one device per server)

	reqCh chan inferJob
	wg    sync.WaitGroup
	stop  chan struct{}
	once  sync.Once
}

type inferJob struct {
	// ctx is the submitting caller's context; the worker honours it
	// while the request is queued and between inference trials.
	ctx   context.Context
	req   InferRequest
	reply chan InferOutcome
}

// NewInferenceServer starts the server's worker pool. Callers must
// Close it.
func NewInferenceServer(opts InferenceServerOptions) (*InferenceServer, error) {
	if err := opts.normalise(); err != nil {
		return nil, err
	}
	s := &InferenceServer{
		opts:    opts,
		pending: make(map[string][]chan InferOutcome),
		br:      newBreaker(opts.BreakerThreshold, opts.BreakerCooldown, opts.Recorder),
		reqCh:   make(chan inferJob),
		stop:    make(chan struct{}),
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Close stops the workers and waits for them to exit.
func (s *InferenceServer) Close() {
	s.once.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// Submit asynchronously requests tuning for req and returns a channel
// that will receive exactly one outcome. Duplicate submissions of the
// same in-flight signature share a single tuning run. Caller
// cancellation is honoured while the request is queued and while it is
// being tuned, and an open circuit breaker fails the request fast.
func (s *InferenceServer) Submit(ctx context.Context, req InferRequest) <-chan InferOutcome {
	out := make(chan InferOutcome, 1)
	if req.Signature == "" {
		out <- InferOutcome{Err: errors.New("core: request with empty signature")}
		return out
	}

	// Fast path: historical store (§3.4 table look-up). Cache hits
	// bypass the breaker — they need no device. The reply itself can
	// still be dropped in flight: the site is per-request, so a
	// resubmission rolls a fresh decision.
	if e, err := s.opts.Store.Get(req.Signature, s.opts.Device.Profile.Name); err == nil {
		s.mu.Lock()
		seq := s.seq
		s.seq++
		s.mu.Unlock()
		if ferr := s.opts.Fault.Fail(fault.DroppedReply, fmt.Sprintf("%s#%d", req.Signature, seq), 0); ferr != nil {
			out <- InferOutcome{Err: ferr}
			return out
		}
		out <- InferOutcome{Entry: e, Cached: true}
		return out
	}

	// Fail fast while the device's breaker is rejecting traffic; the
	// caller falls back to degraded data instead of queueing work that
	// is known to fail.
	if !s.br.allow() {
		out <- InferOutcome{Err: ErrCircuitOpen}
		return out
	}

	// Coalesce with an in-flight request for the same signature: later
	// submitters wait for the single tuning run already under way.
	s.mu.Lock()
	if waiters, inflight := s.pending[req.Signature]; inflight {
		s.pending[req.Signature] = append(waiters, out)
		s.mu.Unlock()
		return out
	}
	s.pending[req.Signature] = nil // mark in-flight with no waiters yet
	s.mu.Unlock()

	reply := make(chan InferOutcome, 1)
	go func() {
		res := <-reply
		s.mu.Lock()
		waiters := s.pending[req.Signature]
		delete(s.pending, req.Signature)
		s.mu.Unlock()
		out <- res
		// Coalesced waiters share the result without re-charging the
		// tuning cost.
		shared := res
		shared.Cached = true
		shared.TuningCost = perfmodel.Cost{}
		for _, w := range waiters {
			w <- shared
		}
	}()

	select {
	case s.reqCh <- inferJob{ctx: ctx, req: req, reply: reply}:
	case <-s.stop:
		reply <- InferOutcome{Err: errors.New("core: inference server shut down")}
	case <-ctx.Done():
		reply <- InferOutcome{Err: ctx.Err()}
	}
	return out
}

// worker drains the request channel, serving one request at a time and
// keeping the breaker's view of the device up to date.
func (s *InferenceServer) worker() {
	defer s.wg.Done()
	for {
		select {
		case job := <-s.reqCh:
			out := s.serve(job.ctx, job.req)
			switch {
			case out.Err == nil:
				s.br.success()
			case errors.Is(out.Err, context.Canceled):
				// Caller walked away; says nothing about the device.
			default:
				s.br.failure()
			}
			job.reply <- out
		case <-s.stop:
			return
		}
	}
}

// serve runs one request end to end: tune, persist, reply — each step
// subject to injected faults and retried up to MaxAttempts, with every
// attempt's simulated cost charged to the request.
func (s *InferenceServer) serve(ctx context.Context, req InferRequest) InferOutcome {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithTimeout(ctx, s.opts.RequestTimeout)
	defer cancel()

	var total perfmodel.Cost
	var lastErr error
	for attempt := 0; attempt < s.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			s.opts.Recorder.AddRetry()
		}
		entry, cost, err := s.tune(ctx, req, attempt)
		total = total.Add(cost)
		if err != nil {
			lastErr = err
			if fault.IsFault(err) {
				continue // transient by construction: retry
			}
			break // organic error or cancellation: not retryable here
		}
		if err := s.putEntry(req, entry, attempt); err != nil {
			lastErr = err
			if fault.IsFault(err) {
				continue
			}
			break
		}
		// The work is done and stored; the reply itself can still be
		// lost in flight. A retrying caller then recovers cheaply via
		// the store fast path.
		if ferr := s.opts.Fault.Fail(fault.DroppedReply, req.Signature, attempt); ferr != nil {
			return InferOutcome{Err: ferr, TuningCost: total}
		}
		return InferOutcome{Entry: entry, TuningCost: total}
	}
	return InferOutcome{Err: lastErr, TuningCost: total}
}

// putEntry persists a tuning result, subject to injected store-write
// failures.
func (s *InferenceServer) putEntry(req InferRequest, entry store.Entry, attempt int) error {
	if ferr := s.opts.Fault.Fail(fault.StoreWrite, req.Signature, attempt); ferr != nil {
		return ferr
	}
	return s.opts.Store.Put(entry)
}

// tune runs the inference parameter search for one architecture: the
// §3.4 process of exploring batch size and system parameters on the
// emulated device with the configured algorithm and objective. The
// sampler seed depends only on the signature, so a retried attempt
// reproduces the same search — attempts differ only in which faults
// fire.
func (s *InferenceServer) tune(ctx context.Context, req InferRequest, attempt int) (store.Entry, perfmodel.Cost, error) {
	var cost perfmodel.Cost
	// Injected device flap: the emulated board dropped off the network
	// for this attempt.
	if ferr := s.opts.Fault.Fail(fault.DeviceFlap, req.Signature, attempt); ferr != nil {
		return store.Entry{}, cost, ferr
	}
	sampler, err := search.NewSampler(s.opts.Algo, s.opts.Space, s.opts.Seed^hashSignature(req.Signature))
	if err != nil {
		return store.Entry{}, cost, err
	}
	obj := Objective{Metric: s.opts.Metric}

	var (
		best      store.Entry
		bestScore = -1.0
	)
	for i := 0; i < s.opts.Trials; i++ {
		// Honour cancellation and the per-request deadline between
		// trials, not only at request boundaries.
		if err := ctx.Err(); err != nil {
			return store.Entry{}, cost, err
		}
		cfg := sampler.Sample()
		spec := perfmodel.InferSpec{
			FLOPsPerSample: req.FLOPsPerSample,
			Params:         req.Params,
			BatchSize:      int(cfg[workload.ParamInferBatch]),
			Cores:          int(cfg[workload.ParamCores]),
			FreqGHz:        cfg[workload.ParamFreq],
		}
		r, err := s.opts.Device.Estimate(spec)
		if err != nil {
			return store.Entry{}, cost, fmt.Errorf("core: inference trial: %w", err)
		}
		score := obj.InferScore(r)
		sampler.Observe(search.Observation{Config: cfg, Score: score, Budget: 1})

		// Charge the emulated trial: one batch evaluation.
		cost = cost.Add(perfmodel.Cost{
			Duration: r.BatchLatency,
			EnergyJ:  r.PowerW * r.BatchLatency.Seconds(),
		})

		if bestScore < 0 || score < bestScore {
			bestScore = score
			best = store.Entry{
				Signature:        req.Signature,
				Device:           s.opts.Device.Profile.Name,
				Config:           cfg.Clone(),
				Throughput:       r.Throughput,
				EnergyPerSampleJ: r.EnergyPerSampleJ,
				LatencySeconds:   r.BatchLatency.Seconds(),
				Objective:        score,
			}
		}
	}
	best.TrialsRun = s.opts.Trials
	return best, cost, nil
}

// hashSignature derives a per-architecture sampler seed (FNV-1a).
func hashSignature(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// transientInferError reports whether an inference outcome error is
// worth a cheap resubmit or a degraded fallback (injected faults,
// breaker rejections, missed deadlines) rather than a hard abort.
func transientInferError(err error) bool {
	return fault.IsFault(err) ||
		errors.Is(err, ErrCircuitOpen) ||
		errors.Is(err, context.DeadlineExceeded)
}

// awaitOutcome blocks for an outcome with a deadline, used by the model
// server to enforce the containment claim (§3.3: the inference result
// must arrive before the training trial ends).
func awaitOutcome(ctx context.Context, ch <-chan InferOutcome, limit time.Duration) (InferOutcome, error) {
	timer := time.NewTimer(limit)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.Err != nil {
			return res, res.Err
		}
		return res, nil
	case <-timer.C:
		return InferOutcome{}, fmt.Errorf("core: inference result missed the %v deadline: %w", limit, context.DeadlineExceeded)
	case <-ctx.Done():
		return InferOutcome{}, ctx.Err()
	}
}
