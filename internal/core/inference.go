package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"edgetune/internal/autoscale"
	"edgetune/internal/counters"
	"edgetune/internal/device"
	"edgetune/internal/fault"
	"edgetune/internal/obs"
	"edgetune/internal/obs/flight"
	"edgetune/internal/obs/prof"
	"edgetune/internal/obs/slo"
	"edgetune/internal/perfmodel"
	"edgetune/internal/search"
	"edgetune/internal/store"
	"edgetune/internal/workload"
)

// InferRequest asks the Inference Tuning Server to find the optimal
// inference configuration for one architecture on one device.
type InferRequest struct {
	// Signature identifies the architecture (workload.Signature).
	Signature string
	// FLOPsPerSample and Params describe the paper-scale model.
	FLOPsPerSample float64
	Params         float64
	// Client keys the admission rate limiter; it defaults to the
	// signature, so per-trial traffic is naturally per-client.
	Client string
	// Priority orders the request in the intake queue; the zero value
	// is critical (see Priority).
	Priority Priority
	// SubmitTime places the request on the simulated timeline for
	// tracing; the tuner stamps it with the sheltering trial's start.
	// It has no effect on scheduling.
	SubmitTime time.Duration
}

// InferOutcome is the server's reply.
type InferOutcome struct {
	Entry store.Entry
	// Cached reports whether the result came from the historical store.
	Cached bool
	// TuningCost is the simulated cost of the inference trials run (zero
	// when cached). Failed attempts still charge their cost, so
	// resilience is inference-aware too.
	TuningCost perfmodel.Cost
	// Device names the pool device that served the winning result.
	Device string
	// Latency is the request's effective serving time on the simulated
	// clock — with a winning hedge, the hedged finish time, strictly
	// below what the straggling primary alone would have taken.
	Latency time.Duration
	// Hedged reports that a speculative second attempt was issued.
	Hedged bool
	// Err carries a per-request failure.
	Err error
}

// InferenceServerOptions configures the server.
type InferenceServerOptions struct {
	// Device is the edge target being emulated (the preferred pool
	// device when Pool is unset).
	Device device.Device
	// Pool lists the devices the server routes across; it defaults to
	// [Device]. With two or more devices, straggling requests hedge to
	// the next-best healthy one.
	Pool []device.Device
	// Space is the inference parameter space (batch, cores, frequency).
	Space *search.Space
	// Algo names the search strategy; the default is BOHB, and a grid
	// can be chosen when the range of inference parameters is small
	// (§3.1's example pairing).
	Algo string
	// Metric is the inference objective (runtime or energy).
	Metric Metric
	// Trials is the number of inference configurations evaluated per
	// uncached request.
	Trials int
	// Workers sets the pipelining width (Figure 6): how many requests
	// are tuned concurrently.
	Workers int
	// Store is the shared historical database; required.
	Store *store.Store
	// Seed drives deterministic, order-independent tuning: each
	// request's sampler is seeded from the signature.
	Seed uint64
	// Fault optionally injects device-flap, brown-out, store-write,
	// dropped-reply, and overload-burst faults (nil = none).
	Fault *fault.Injector
	// Recorder accumulates resilience counters (nil = not recorded).
	Recorder *counters.Resilience
	// MaxAttempts bounds the per-request tuning attempts when injected
	// faults make the device flap or the store write fail (default 3).
	MaxAttempts int
	// BreakerThreshold is the number of consecutive request failures
	// that opens a device's circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is the number of fast-failed requests an open
	// breaker rejects before half-opening a probe (default 2; doubles
	// after each failed probe).
	BreakerCooldown int
	// RequestTimeout bounds one request's serving wall time
	// (default 30s).
	RequestTimeout time.Duration
	// QueueLimit bounds queued plus in-flight requests; submissions
	// beyond it are shed with ErrOverloaded (default 64).
	QueueLimit int
	// RateLimit enables the per-client token bucket when positive: each
	// client earns RateLimit tokens per submission tick, spends one per
	// request, and holds at most RateBurst (0 = no rate limiting).
	RateLimit float64
	// RateBurst is the token bucket capacity (default 8).
	RateBurst int
	// HedgeFactor multiplies the perfmodel-derived expected tuning
	// duration into the straggler deadline (default 2).
	HedgeFactor float64
	// DisableHedging turns speculative re-issues off even with a
	// multi-device pool.
	DisableHedging bool
	// Trace receives deterministic serving spans (nil = tracing
	// disabled; the hooks are single-pointer-check no-ops).
	Trace *obs.Tracer
	// SLO receives per-request service-level events (nil = no SLO
	// accounting). The server registers a serve-latency objective and an
	// admission-rejection objective on it.
	SLO *slo.Evaluator
	// SLOServeLatency is the latency objective's threshold on the
	// simulated clock: a served request is "good" when its effective
	// serving time is at or below it (default 60s).
	SLOServeLatency time.Duration
	// Autoscale enables the SLO-driven device-pool autoscaler and its
	// graceful-degradation ladder (nil = static pool). Zero fields in
	// the config select the documented defaults.
	Autoscale *autoscale.Config
	// Flight receives the compact always-on event stream (admission
	// outcomes, autoscale decisions, breaker/health transitions) for the
	// incident flight recorder (nil = not recorded; every hook is a
	// single-pointer-check no-op).
	Flight *flight.Recorder

	// SyncWrites persists completed results into the store inline on
	// the worker's put path instead of from the write-behind flusher
	// goroutine. Buffering, read-through promotion, and failed-flush
	// retry are unchanged — only the scheduling differs: no background
	// goroutine issues store appends, so a fault-injected filesystem
	// under the store sees the same operation order on every same-seed
	// run. The chaos fuzzer runs with this set; production serving
	// keeps the asynchronous flusher.
	SyncWrites bool

	// Profile applies pprof labels (tenant, priority, ProfLabels) to
	// each request's serve path. Workers run on their own goroutines,
	// so labels set by the submitting caller do not reach them; the
	// worker re-applies them from the job's own fields.
	Profile bool
	// ProfLabels is extra label pairs applied with the built-ins
	// (cluster shard identity, typically). Ignored unless Profile.
	ProfLabels []string
}

func (o *InferenceServerOptions) normalise() error {
	if o.Space == nil {
		return errors.New("core: inference server needs a space")
	}
	if o.Store == nil {
		return errors.New("core: inference server needs a store")
	}
	if o.Metric == "" {
		o.Metric = MetricRuntime
	}
	if err := o.Metric.Validate(); err != nil {
		return err
	}
	if o.Algo == "" {
		o.Algo = search.AlgoBOHB
	}
	if o.Trials <= 0 {
		o.Trials = 24
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if len(o.Pool) == 0 {
		o.Pool = []device.Device{o.Device}
	}
	if o.QueueLimit <= 0 {
		o.QueueLimit = 64
	}
	if o.RateLimit < 0 {
		return errors.New("core: negative rate limit")
	}
	if o.RateBurst <= 0 {
		o.RateBurst = 8
	}
	if o.HedgeFactor <= 0 {
		o.HedgeFactor = 2
	}
	if o.SLOServeLatency <= 0 {
		o.SLOServeLatency = 60 * time.Second
	}
	return nil
}

// InferenceServer is the asynchronous inference tuning component
// (§3.4), hardened for sustained overload and device degradation.
// Requests pass an admission gate (bounded in-system queue, per-client
// token bucket, priority preemption) before a worker pool tunes them on
// a health-managed device pool: per-device circuit breakers plus EWMA
// health scores with quarantine/probation, and speculative hedging to
// the next-best device when the primary straggles past its
// perfmodel-derived deadline. Completed results land in the historical
// store through a write-behind buffer; duplicate in-flight requests are
// coalesced. Close drains gracefully: in-flight work completes, new
// submissions fail with ErrServerClosed, and pending store writes are
// flushed.
type InferenceServer struct {
	opts InferenceServerOptions
	m    servingMetrics
	// reg is the recorder's registry (nil = metrics off); kept for the
	// per-tenant rejection counters, whose names are data-dependent.
	reg *obs.Registry

	mu        sync.Mutex
	pending   map[string]*call // in-flight coalescing per signature
	seq       int              // submission sequence, for fault sites
	inflightC map[*inferJob]context.CancelFunc

	adm    *admission
	pool   *devicePool
	writes *store.WriteBehind
	scale  *scaler // nil when autoscaling is disabled

	// SLO objectives (nil = no accounting; Record no-ops).
	sloLatency       *slo.Objective
	sloRejects       *slo.Objective
	sloTenantRejects *slo.Objective
	sloCapacity      *slo.Objective

	wg sync.WaitGroup

	shutMu   sync.Mutex
	shutting bool
	closedCh chan struct{}
	closeErr error
}

// servingMetrics caches the server's registry instruments; all fields
// are nil (no-op) when no recorder registry is configured.
type servingMetrics struct {
	requests  *obs.Counter
	cacheHits *obs.Counter
	coalesced *obs.Counter
	latencyMS *obs.Histogram
	queue     *obs.Gauge
	// queueEnqueue samples the queued depth (excluding in-flight work)
	// right after each admit; admitWait samples how many requests sat
	// ahead of each admitted one. Both are queue positions taken under
	// the admission lock, so same-seed runs record identical values.
	queueEnqueue *obs.Histogram
	admitWait    *obs.Histogram
}

// call fans one tuning run's result out to the leader and any
// coalesced waiters. Delivery is idempotent so the cancellation watcher
// and the worker can race safely.
type call struct {
	sig       string
	outs      []chan InferOutcome
	done      chan struct{}
	delivered bool

	// sp is the leader's request span (nil when tracing is off); start
	// is its submit time, so deliver can end it at start+latency.
	sp    *obs.Span
	start time.Duration
}

type inferJob struct {
	// ctx is the submitting caller's context; honoured while the
	// request is queued and between inference trials.
	ctx  context.Context
	req  InferRequest
	call *call
	rt   route

	// queuedAhead and depthAtEnqueue are queue positions stamped by
	// admission.push under its lock (see the servingMetrics comment).
	queuedAhead    int
	depthAtEnqueue int
}

// NewInferenceServer starts the server's worker pool. Callers must
// Close it.
func NewInferenceServer(opts InferenceServerOptions) (*InferenceServer, error) {
	if err := opts.normalise(); err != nil {
		return nil, err
	}
	var writes *store.WriteBehind
	if opts.SyncWrites {
		writes = store.NewSyncWriteBehind(opts.Store)
	} else {
		writes = store.NewWriteBehind(opts.Store)
	}
	s := &InferenceServer{
		opts:      opts,
		pending:   make(map[string]*call),
		inflightC: make(map[*inferJob]context.CancelFunc),
		adm:       newAdmission(opts.QueueLimit, opts.RateLimit, opts.RateBurst),
		pool:      newDevicePool(opts.Pool, opts.BreakerThreshold, opts.BreakerCooldown, opts.Recorder),
		writes:    writes,
		closedCh:  make(chan struct{}),
	}
	s.pool.fr = opts.Flight
	if opts.Autoscale != nil {
		sc, err := newScaler(*opts.Autoscale, &s.opts)
		if err != nil {
			return nil, err
		}
		s.scale = sc
	}
	if reg := opts.Recorder.Registry(); reg != nil {
		s.reg = reg
		s.m = servingMetrics{
			requests:     reg.Counter("serving.requests"),
			cacheHits:    reg.Counter("serving.cache-hits"),
			coalesced:    reg.Counter("serving.coalesced"),
			latencyMS:    reg.Histogram("serving.latency.ms", obs.LatencyBucketsMS),
			queue:        reg.Gauge("serving.queue.depth"),
			queueEnqueue: reg.Histogram("serving.queue.depth.enqueue", obs.QueueDepthBuckets),
			admitWait:    reg.Histogram("serving.admission.wait.requests", obs.QueueDepthBuckets),
		}
		s.writes.Instrument(reg)
	}
	if opts.SLO != nil {
		s.sloLatency = opts.SLO.Register(slo.Spec{
			Name:        "serving/latency",
			Description: fmt.Sprintf("99%% of served requests finish within %v on the simulated clock", opts.SLOServeLatency),
			Target:      0.99,
		})
		s.sloRejects = opts.SLO.Register(slo.Spec{
			Name:        "serving/rejections",
			Description: "95% of submissions admitted (not shed, rate-limited, or preempted)",
			Target:      0.95,
		})
		s.sloTenantRejects = opts.SLO.Register(slo.Spec{
			Name:        "serving/tenant-rejections",
			Description: "99% of submissions clear the per-client token bucket (not rate-limited)",
			Target:      0.99,
		})
		if s.scale != nil {
			s.sloCapacity = opts.SLO.Register(slo.Spec{
				Name:        "serving/capacity",
				Description: "submissions find a routable device pool with in-system headroom",
				Target:      s.scale.ctl.Config().Target,
			})
		}
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Close shuts the server down immediately: new submissions are
// rejected, in-flight requests are cancelled, queued ones are evicted
// with ErrServerClosed, and pending store writes are flushed. It is
// idempotent and safe to call concurrently. For a graceful stop that
// completes in-flight work, use Drain.
func (s *InferenceServer) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // pre-expired deadline: straight to the hard path
	s.shutdown(ctx)
}

// Drain stops the server gracefully: new submissions fail with
// ErrServerClosed while queued and in-flight requests run to
// completion, then pending store writes are flushed. If ctx expires
// first, the remaining work is cancelled and evicted (their callers
// still receive typed outcomes). Drain returns nil when everything
// completed within the deadline.
func (s *InferenceServer) Drain(ctx context.Context) error {
	return s.shutdown(ctx)
}

func (s *InferenceServer) shutdown(ctx context.Context) error {
	s.shutMu.Lock()
	if s.shutting {
		s.shutMu.Unlock()
		<-s.closedCh
		return s.closeErr
	}
	s.shutting = true
	s.shutMu.Unlock()

	s.adm.reject()
	var err error
	select {
	case <-s.adm.emptiedCh():
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelInflight()
		for _, j := range s.adm.evictAll() {
			s.pool.release(j.rt)
			s.deliver(j.call, InferOutcome{Err: fmt.Errorf("core: request evicted at shutdown: %w", ErrServerClosed)})
		}
		<-s.adm.emptiedCh() // cancelled in-flight work exits promptly
	}
	s.adm.close()
	s.wg.Wait()
	if werr := s.writes.Close(); werr != nil && err == nil {
		err = werr
	}
	s.closeErr = err
	close(s.closedCh)
	return err
}

// cancelInflight cancels every request currently being served.
func (s *InferenceServer) cancelInflight() {
	s.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(s.inflightC))
	for _, c := range s.inflightC {
		cancels = append(cancels, c)
	}
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// FlushWrites synchronously drains the write-behind buffer into the
// store, used before checkpoint saves so persisted snapshots include
// every completed result.
func (s *InferenceServer) FlushWrites() error { return s.writes.Flush() }

// PendingWrites reports how many accepted results still sit in the
// write-behind buffer; it is zero after a successful Drain or Flush.
func (s *InferenceServer) PendingWrites() int { return s.writes.Pending() }

// LookupStored reads an entry for any pool device (preferred first)
// through the write-behind buffer, so callers building degraded
// fallbacks see results that have not reached the store yet. The walk
// covers the live pool — autoscaled replicas and retired devices
// included — so entries tuned on a since-retired replica still satisfy
// later duplicates.
func (s *InferenceServer) LookupStored(sig string) (store.Entry, error) {
	var lastErr error
	for _, name := range s.pool.names() {
		e, err := s.writes.Get(sig, name)
		if err == nil {
			return e, nil
		}
		lastErr = err
	}
	return store.Entry{}, lastErr
}

func (s *InferenceServer) isShutting() bool {
	s.shutMu.Lock()
	defer s.shutMu.Unlock()
	return s.shutting
}

// Submit asynchronously requests tuning for req and returns a channel
// that will receive exactly one outcome. Duplicate submissions of the
// same in-flight signature share a single tuning run. Caller
// cancellation is honoured while the request is queued and while it is
// being tuned. Overload is shed with typed errors: ErrOverloaded when
// the bounded queue is full (background requests may additionally be
// preempted by critical ones), ErrRateLimited when the client's token
// bucket is empty, ErrServerClosed after Close/Drain, and a
// ErrCircuitOpen-wrapping error when no pool device is healthy.
func (s *InferenceServer) Submit(ctx context.Context, req InferRequest) <-chan InferOutcome {
	out := make(chan InferOutcome, 1)
	if req.Signature == "" {
		out <- InferOutcome{Err: errors.New("core: request with empty signature")}
		return out
	}
	if req.Client == "" {
		req.Client = req.Signature
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if s.isShutting() {
		out <- InferOutcome{Err: ErrServerClosed}
		return out
	}

	s.mu.Lock()
	seq := s.seq
	s.seq++
	s.mu.Unlock()

	// Tick the autoscaler before anything can short-circuit the
	// submission: every submission is one control-loop tick and one
	// capacity SLO event, cache hits included, so the tick stream is
	// exactly the submission sequence.
	s.autoscaleTick(req, seq)

	// The request's root span is keyed on the submission sequence,
	// which is deterministic for a deterministic submission order (the
	// tuner submits one request per trial and awaits each).
	var reqSp *obs.Span
	if t := s.opts.Trace; t != nil {
		reqSp = t.Root(obs.TrackServing, "request", uint64(seq), req.SubmitTime,
			obs.Str("sig", req.Signature),
			obs.Str("client", req.Client),
			obs.Int("priority", int64(req.Priority)))
	}
	s.m.requests.Add(1)

	// Fast path: historical store (§3.4 table look-up), read through
	// the write-behind buffer and accepting any pool device's entry
	// (a hedged win tuned on the secondary still satisfies later
	// duplicates). Cache hits bypass admission and the pool — they
	// need no device. The reply itself can still be dropped in
	// flight: the site is per-request, so a resubmission rolls a
	// fresh decision.
	if e, err := s.LookupStored(req.Signature); err == nil {
		if ferr := s.opts.Fault.Fail(fault.DroppedReply, fmt.Sprintf("%s#%d", req.Signature, seq), 0); ferr != nil {
			if reqSp != nil {
				reqSp.Set(obs.Str("outcome", "dropped-reply"))
			}
			reqSp.End(req.SubmitTime)
			s.recordSLO(req.SubmitTime, InferOutcome{Err: ferr})
			out <- InferOutcome{Err: ferr}
			return out
		}
		s.m.cacheHits.Add(1)
		if reqSp != nil {
			reqSp.Set(obs.Str("outcome", "cached"), obs.Str("device", e.Device))
		}
		reqSp.End(req.SubmitTime)
		s.recordSLO(req.SubmitTime, InferOutcome{})
		out <- InferOutcome{Entry: e, Cached: true, Device: e.Device}
		return out
	}

	// Coalesce with an in-flight request for the same signature: later
	// submitters wait for the single tuning run already under way.
	s.mu.Lock()
	if c, inflight := s.pending[req.Signature]; inflight && !c.delivered {
		c.outs = append(c.outs, out)
		s.mu.Unlock()
		s.m.coalesced.Add(1)
		if reqSp != nil {
			reqSp.Set(obs.Str("outcome", "coalesced"))
		}
		reqSp.End(req.SubmitTime)
		return out
	}
	c := &call{sig: req.Signature, outs: []chan InferOutcome{out}, done: make(chan struct{}), sp: reqSp, start: req.SubmitTime}
	s.pending[req.Signature] = c
	s.mu.Unlock()

	// Degradation ladder: once it has stepped past normal, background
	// traffic is shed at the gate so critical work keeps the queue.
	// Cache hits above stay free — degraded service still answers what
	// it already knows.
	if req.Priority == PriorityBackground {
		if mode := s.degradeMode(); mode >= autoscale.ModeShedBackground {
			s.opts.Recorder.AddShed()
			s.scale.cShed.Inc()
			s.admissionSpan(c, "shed-degraded", "", -1)
			s.deliver(c, InferOutcome{Err: fmt.Errorf("core: background shed by degradation ladder (%s): %w", mode, ErrOverloaded)})
			return out
		}
	}

	// Injected overload burst: a synthetic traffic spike sheds this
	// submission at the gate.
	if ferr := s.opts.Fault.Fail(fault.OverloadBurst, fmt.Sprintf("admit/%s#%d", req.Client, seq), 0); ferr != nil {
		s.opts.Recorder.AddShed()
		s.admissionSpan(c, "shed-burst", "", -1)
		s.deliver(c, InferOutcome{Err: fmt.Errorf("%w: %w", ErrOverloaded, ferr)})
		return out
	}

	// Route before queuing so workers never see an unrouted job. Fail
	// fast when the pool has nothing healthy to offer; the caller
	// falls back to degraded data instead of queueing doomed work.
	rt, rerr := s.pool.pick(req.SubmitTime)
	if rerr != nil {
		s.admissionSpan(c, "no-healthy-device", "", -1)
		s.deliver(c, InferOutcome{Err: rerr})
		return out
	}

	job := &inferJob{ctx: ctx, req: req, call: c, rt: rt}
	evicted, perr := s.adm.push(job)
	if perr != nil {
		s.pool.release(rt)
		switch {
		case errors.Is(perr, ErrRateLimited):
			s.opts.Recorder.AddRateLimited()
			// Per-tenant rejection counter: the label rides in the
			// name, the registry convention for data-keyed series.
			if s.reg != nil {
				s.reg.Counter("serving.rate-limited.tenant." + req.Client).Inc()
			}
		case errors.Is(perr, ErrOverloaded):
			s.opts.Recorder.AddShed()
		}
		s.admissionSpan(c, outcomeLabel(perr), "", -1)
		s.deliver(c, InferOutcome{Err: perr})
		return out
	}
	s.m.queue.Set(float64(s.adm.inSystem()))
	s.m.queueEnqueue.Observe(float64(job.depthAtEnqueue))
	s.m.admitWait.Observe(float64(job.queuedAhead))
	s.admissionSpan(c, "admitted", rt.pd.name, job.queuedAhead)
	if evicted != nil {
		s.opts.Recorder.AddPreempted()
		s.opts.Flight.Record(req.SubmitTime, flight.KindAdmission, "preempted", evicted.call.sig, 0, 0)
		s.pool.release(evicted.rt)
		s.deliver(evicted.call, InferOutcome{Err: fmt.Errorf("core: preempted by critical request: %w", ErrOverloaded)})
	}

	// Honour caller cancellation while the job is still queued: a
	// worker is not needed to deliver the outcome.
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				if s.adm.remove(job) {
					s.pool.release(job.rt)
					s.deliver(job.call, InferOutcome{Err: ctx.Err()})
				}
			case <-c.done:
			}
		}()
	}
	return out
}

// deliver fans res out to the call's leader and waiters exactly once.
// Waiters share the result as a cache hit without re-charging the
// tuning cost.
func (s *InferenceServer) deliver(c *call, res InferOutcome) {
	s.mu.Lock()
	if c.delivered {
		s.mu.Unlock()
		return
	}
	c.delivered = true
	if s.pending[c.sig] == c {
		delete(s.pending, c.sig)
	}
	outs := c.outs
	s.mu.Unlock()
	if c.sp != nil {
		attrs := []obs.Attr{obs.Str("outcome", outcomeLabel(res.Err))}
		if res.Device != "" {
			attrs = append(attrs, obs.Str("device", res.Device))
		}
		if res.Hedged {
			attrs = append(attrs, obs.Bool("hedged", true))
		}
		c.sp.Set(attrs...)
		c.sp.End(c.start + res.Latency)
	}
	s.recordSLO(c.start+res.Latency, res)
	close(c.done)
	for i, ch := range outs {
		r := res
		if i > 0 {
			r.Cached = true
			r.TuningCost = perfmodel.Cost{}
		}
		ch <- r
	}
}

// recordSLO counts one request outcome against the server's objectives
// at simulated time at: the rejection objective sees every outcome, the
// latency objective only requests that actually produced a result.
func (s *InferenceServer) recordSLO(at time.Duration, res InferOutcome) {
	s.sloRejects.Record(at, !errors.Is(res.Err, ErrOverloaded))
	s.sloTenantRejects.Record(at, !errors.Is(res.Err, ErrRateLimited))
	if res.Err == nil {
		s.sloLatency.Record(at, res.Latency <= s.opts.SLOServeLatency)
	}
}

// worker drains the admission queue, serving one request at a time.
func (s *InferenceServer) worker() {
	defer s.wg.Done()
	for {
		job, ok := s.adm.take()
		if !ok {
			return
		}
		s.m.queue.Set(float64(s.adm.inSystem()))
		if job.ctx.Err() != nil {
			// Cancelled between queue and worker; the watcher may have
			// lost the race to remove it.
			s.pool.release(job.rt)
			s.adm.done()
			s.deliver(job.call, InferOutcome{Err: job.ctx.Err()})
			continue
		}
		jctx, cancel := context.WithCancel(job.ctx)
		s.mu.Lock()
		s.inflightC[job] = cancel
		s.mu.Unlock()

		var out InferOutcome
		if s.opts.Profile {
			// Labels do not cross the Submit→worker goroutine hop;
			// re-apply the serving taxonomy from the job itself. The
			// store write inside serve happens on this goroutine, so it
			// inherits the same labels.
			prof.Do(jctx, func(ctx context.Context) {
				out = s.serve(ctx, job)
			}, append([]string{
				prof.KeyTenant, tenantLabel(job.req.Client),
				prof.KeyPriority, priorityLabel(job.req.Priority),
			}, s.opts.ProfLabels...)...)
		} else {
			out = s.serve(jctx, job)
		}

		s.mu.Lock()
		delete(s.inflightC, job)
		s.mu.Unlock()
		cancel()
		if s.adm.isRejecting() {
			s.opts.Recorder.AddDrained()
		}
		// Retire the in-system slot before delivering the outcome: a
		// caller that awaits each request then observes a fully-drained
		// queue at its next submission, keeping the autoscaler's
		// in-system signal deterministic for sequential drivers.
		s.adm.done()
		s.deliver(job.call, out)
		s.m.queue.Set(float64(s.adm.inSystem()))
	}
}

// serve runs one request end to end: tune on the routed device (hedging
// to the next-best one when it straggles), persist through the
// write-behind buffer, reply — each step subject to injected faults and
// retried up to MaxAttempts, with every attempt's simulated cost
// charged to the request.
func (s *InferenceServer) serve(ctx context.Context, job *inferJob) InferOutcome {
	ctx, cancel := context.WithTimeout(ctx, s.opts.RequestTimeout)
	defer cancel()
	req := job.req

	var sp *obs.Span
	if job.call.sp != nil {
		sp = job.call.sp.Child("serve", job.call.start, obs.Str("device", job.rt.pd.name))
	}

	h := s.runHedged(ctx, req, job.rt, sp, job.call.start)
	s.m.latencyMS.Observe(float64(h.latency) / float64(time.Millisecond))
	if sp != nil {
		sp.Set(obs.Str("winner", h.winner.name), obs.Bool("hedged", h.hedged))
	}
	end := job.call.start + h.latency
	out := InferOutcome{
		TuningCost: h.cost,
		Device:     h.winner.name,
		Latency:    h.latency,
		Hedged:     h.hedged,
	}
	if h.res.err != nil {
		out.Err = h.res.err
		sp.End(end)
		return out
	}

	// Persist the winning entry; only the write is retried — the tuned
	// result is already in hand.
	var werr error
	for attempt := 0; attempt < s.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			s.opts.Recorder.AddRetry()
		}
		if werr = s.putEntry(req, h.res.entry, attempt); werr == nil {
			break
		}
		if !fault.IsFault(werr) {
			break
		}
	}
	if sp != nil {
		wsp := sp.Child("store-write", end, obs.Bool("ok", werr == nil))
		wsp.End(end)
	}
	sp.End(end)
	if werr != nil {
		out.Err = werr
		return out
	}

	// The work is done and stored; the reply itself can still be lost
	// in flight. A retrying caller then recovers cheaply via the store
	// fast path.
	if ferr := s.opts.Fault.Fail(fault.DroppedReply, req.Signature, 0); ferr != nil {
		out.Err = ferr
		return out
	}
	out.Entry = h.res.entry
	return out
}

// serveOn runs the tuning attempts for one request on one device,
// charging every attempt's cost. Each attempt becomes a "device-attempt"
// child of sp (nil = tracing off), stamped with the device's health and
// breaker state at dispatch and placed at start plus the cost charged so
// far on the simulated clock.
func (s *InferenceServer) serveOn(ctx context.Context, req InferRequest, pd *poolDevice, sp *obs.Span, start time.Duration) serveResult {
	var total perfmodel.Cost
	var base time.Duration
	var lastErr error
	for attempt := 0; attempt < s.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			s.opts.Recorder.AddRetry()
		}
		var asp *obs.Span
		if sp != nil {
			hState, score := s.pool.stateOf(pd.name)
			asp = sp.Child("device-attempt", start+total.Duration,
				obs.Str("device", pd.name),
				obs.Int("attempt", int64(attempt)),
				obs.Str("health", hState.String()),
				obs.Float("score", score),
				obs.Str("breaker", pd.br.snapshotState().String()))
		}
		entry, cost, raw, err := s.tuneOn(ctx, req, pd, attempt)
		total = total.Add(cost)
		if raw > 0 {
			base = raw
		}
		if asp != nil {
			asp.Set(obs.Str("outcome", outcomeLabel(err)), obs.Float("energyJ", cost.EnergyJ))
			asp.End(start + total.Duration)
		}
		if err == nil {
			return serveResult{entry: entry, cost: total, baseline: base}
		}
		lastErr = err
		if !fault.IsFault(err) {
			break // organic error or cancellation: not retryable here
		}
	}
	return serveResult{cost: total, baseline: base, err: lastErr}
}

// putEntry persists a tuning result through the write-behind buffer,
// subject to injected store-write failures.
func (s *InferenceServer) putEntry(req InferRequest, entry store.Entry, attempt int) error {
	if ferr := s.opts.Fault.Fail(fault.StoreWrite, req.Signature, attempt); ferr != nil {
		return ferr
	}
	return s.writes.Put(entry)
}

// tuneOn wraps one tuning attempt on one device with its fault model:
// a device flap fails the attempt outright, a brown-out inflates the
// attempt's simulated cost (the device is thermally throttled, not
// dead) while leaving the tuned entry's steady-state metrics intact.
// The third return is the raw pre-brownout duration — the fault-free
// perfmodel expectation the hedge deadline derives from.
func (s *InferenceServer) tuneOn(ctx context.Context, req InferRequest, pd *poolDevice, attempt int) (store.Entry, perfmodel.Cost, time.Duration, error) {
	site := pd.name + "/" + req.Signature
	if ferr := s.opts.Fault.Fail(fault.DeviceFlap, site, attempt); ferr != nil {
		return store.Entry{}, perfmodel.Cost{}, 0, ferr
	}
	factor := 1.0
	if s.opts.Fault.Should(fault.DeviceBrownout, site, attempt) {
		factor = s.opts.Fault.BrownoutFactor(site, attempt)
	}
	entry, cost, err := s.tuneCore(ctx, req, pd)
	raw := cost.Duration
	if factor > 1 {
		cost = scaleCost(cost, factor)
	}
	return entry, cost, raw, err
}

// tuneCore runs the inference parameter search for one architecture:
// the §3.4 process of exploring batch size and system parameters on the
// emulated device with the configured algorithm and objective. The
// sampler seed depends only on the signature, so a retried attempt
// reproduces the same search — attempts differ only in which faults
// fire. It is fault-free by construction, which also makes it the
// hedge deadline's baseline (see baseline).
func (s *InferenceServer) tuneCore(ctx context.Context, req InferRequest, pd *poolDevice) (store.Entry, perfmodel.Cost, error) {
	var cost perfmodel.Cost
	sampler, err := search.NewSampler(s.opts.Algo, s.opts.Space, s.opts.Seed^hashSignature(req.Signature))
	if err != nil {
		return store.Entry{}, cost, err
	}
	obj := Objective{Metric: s.opts.Metric}

	var (
		best      store.Entry
		bestScore = -1.0
	)
	for i := 0; i < s.opts.Trials; i++ {
		// Honour cancellation and the per-request deadline between
		// trials, not only at request boundaries.
		if err := ctx.Err(); err != nil {
			return store.Entry{}, cost, err
		}
		cfg := sampler.Sample()
		spec := perfmodel.InferSpec{
			FLOPsPerSample: req.FLOPsPerSample,
			Params:         req.Params,
			BatchSize:      int(cfg[workload.ParamInferBatch]),
			Cores:          int(cfg[workload.ParamCores]),
			FreqGHz:        cfg[workload.ParamFreq],
		}
		r, err := pd.dev.Estimate(spec)
		if err != nil {
			return store.Entry{}, cost, fmt.Errorf("core: inference trial: %w", err)
		}
		score := obj.InferScore(r)
		sampler.Observe(search.Observation{Config: cfg, Score: score, Budget: 1})

		// Charge the emulated trial: one batch evaluation.
		cost = cost.Add(perfmodel.Cost{
			Duration: r.BatchLatency,
			EnergyJ:  r.PowerW * r.BatchLatency.Seconds(),
		})

		if bestScore < 0 || score < bestScore {
			bestScore = score
			best = store.Entry{
				Signature:        req.Signature,
				Device:           pd.name,
				Config:           cfg.Clone(),
				Throughput:       r.Throughput,
				EnergyPerSampleJ: r.EnergyPerSampleJ,
				LatencySeconds:   r.BatchLatency.Seconds(),
				Objective:        score,
			}
		}
	}
	best.TrialsRun = s.opts.Trials
	return best, cost, nil
}

// hashSignature derives a per-architecture sampler seed (FNV-1a).
func hashSignature(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// admissionSpan records the admission verdict for a request as a
// zero-duration child span of its request span (admission is
// instantaneous on the simulated clock). queuedAhead is the request's
// queue position at enqueue; negative means it never reached the queue.
func (s *InferenceServer) admissionSpan(c *call, verdict, dev string, queuedAhead int) {
	// Rejections feed the flight recorder even with tracing off: the
	// ring is the always-on record, the trace the opt-in one.
	if verdict != "admitted" {
		s.opts.Flight.Record(c.start, flight.KindAdmission, verdict, c.sig, int64(queuedAhead), 0)
	}
	if c.sp == nil {
		return
	}
	attrs := []obs.Attr{obs.Str("verdict", verdict)}
	if dev != "" {
		attrs = append(attrs, obs.Str("device", dev))
	}
	if queuedAhead >= 0 {
		attrs = append(attrs, obs.Int("queuedAhead", int64(queuedAhead)))
	}
	sp := c.sp.Child("admission", c.start, attrs...)
	sp.End(c.start)
}

// outcomeLabel classifies a serving error for span attributes. The
// checks are ordered because the typed errors wrap one another
// (rate-limited and preemption wrap overloaded, no-healthy-device wraps
// circuit-open).
func outcomeLabel(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrRateLimited):
		return "rate-limited"
	case errors.Is(err, ErrServerClosed):
		return "server-closed"
	case errors.Is(err, ErrOverloaded):
		return "shed"
	case errors.Is(err, ErrNoHealthyDevice):
		return "no-healthy-device"
	case errors.Is(err, ErrCircuitOpen):
		return "circuit-open"
	case fault.IsFault(err):
		return "fault:" + string(fault.ClassOf(err))
	case errors.Is(err, context.Canceled):
		return "cancelled"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	default:
		return "error"
	}
}

// transientInferError reports whether an inference outcome error is
// worth a cheap resubmit or a degraded fallback (injected faults,
// breaker rejections, shed or rate-limited submissions, a closed
// server, missed deadlines) rather than a hard abort.
func transientInferError(err error) bool {
	return fault.IsFault(err) ||
		errors.Is(err, ErrCircuitOpen) ||
		errors.Is(err, ErrOverloaded) ||
		errors.Is(err, ErrServerClosed) ||
		errors.Is(err, context.DeadlineExceeded)
}

// awaitOutcome blocks for an outcome with a deadline, used by the model
// server to enforce the containment claim (§3.3: the inference result
// must arrive before the training trial ends). The timer is stopped and
// drained on every exit path so heavy retry traffic does not accumulate
// pending timer channels.
func awaitOutcome(ctx context.Context, ch <-chan InferOutcome, limit time.Duration) (InferOutcome, error) {
	timer := time.NewTimer(limit)
	defer func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}()
	select {
	case res := <-ch:
		if res.Err != nil {
			return res, res.Err
		}
		return res, nil
	case <-timer.C:
		return InferOutcome{}, fmt.Errorf("core: inference result missed the %v deadline: %w", limit, context.DeadlineExceeded)
	case <-ctx.Done():
		return InferOutcome{}, ctx.Err()
	}
}
