package core

import (
	"context"
	"time"

	"edgetune/internal/obs"
	"edgetune/internal/obs/prof"
	"edgetune/internal/search"
	"edgetune/internal/sim"
	"edgetune/internal/store"
	"edgetune/internal/tensor"
	"edgetune/internal/workload"

	"edgetune/internal/nn"
)

// tenantLabel maps a tenant/client name to its pprof label value; the
// empty tenant profiles as "default" so every sample stays sliceable.
func tenantLabel(tenant string) string {
	if tenant == "" {
		return "default"
	}
	return tenant
}

// priorityLabel renders a serving priority for pprof labels.
func priorityLabel(p Priority) string {
	if p == PriorityBackground {
		return "background"
	}
	return "critical"
}

// collectProfile measures the job's hot-loop stages with allocation
// probes, publishes them as gauges on reg, and returns them for
// Result.Profile. Every probe runs on self-contained throwaway state (a
// private store, server, tracer, and a fixed tiny model), so measuring
// never perturbs the job's own metrics, SLO events, or traces.
func collectProfile(opts Options, reg *obs.Registry) []prof.Probe {
	const runs = 8
	var probes []prof.Probe
	add := func(p prof.Probe) {
		p.Publish(reg)
		probes = append(probes, p)
	}

	// Training-side mini-batch step: a fixed 18-layer IC model at batch
	// 8, independent of the job's workload so the stage is comparable
	// across jobs.
	rng := sim.NewRNG(opts.Seed + 1)
	if w, err := workload.New("IC", opts.Seed+1); err == nil {
		if net, err := w.BuildModel(search.Config{workload.ParamLayers: 18}, rng); err == nil {
			x := tensor.Randn(8, 24, 1, rng)
			labels := make([]int, 8)
			for i := range labels {
				labels[i] = rng.Intn(10)
			}
			if opt, err := nn.NewSGD(0.01, 0.9, 0); err == nil {
				add(prof.Measure("nn.minibatch-step", runs, func() {
					net.ZeroGrad()
					logits := net.Forward(x, true)
					if _, grad, err := nn.SoftmaxCrossEntropy(logits, labels); err == nil {
						net.Backward(grad)
					}
					opt.Step(net.Params())
				}))
			}
		}
	}

	// Perfmodel evaluation on the job's own device profile.
	spec := opts.Device.DefaultSpec(5.6e8, 11e6)
	add(prof.Measure("perfmodel.infer-cost", runs, func() {
		opts.Device.Estimate(spec)
	}))

	// Trace emission: root + child + attrs, the per-trial span shape.
	tracer := obs.NewTracer()
	var seq uint64
	add(prof.Measure("trace.emit", runs, func() {
		seq++
		root := tracer.Root(0, "prof-probe", seq, 0)
		sp := root.Child("stage", 0, obs.Int("i", int64(seq)))
		sp.End(time.Duration(seq))
		root.End(time.Duration(seq))
	}))

	// In-memory store write, the body of every recommendation persist.
	st := store.New()
	entry := store.Entry{Signature: "prof-probe", Device: opts.Device.Profile.Name,
		Config: search.Config{"batch": 16}, Throughput: 1}
	add(prof.Measure("store.put", runs, func() {
		st.Put(entry)
	}))

	// Admission + serve on the cache-hit path: a private server whose
	// store is pre-warmed, so Submit resolves synchronously without
	// touching a device. Covers intake, admission, and delivery.
	if opts.Workload != nil {
		if space, err := opts.Workload.InferenceSpace(opts.Device); err == nil {
			probeStore := store.New()
			probeStore.Put(store.Entry{Signature: "prof-probe",
				Device: opts.Device.Profile.Name, Config: search.Config{"batch": 16}})
			srv, err := NewInferenceServer(InferenceServerOptions{
				Device: opts.Device,
				Space:  space,
				Store:  probeStore,
				Seed:   opts.Seed,
			})
			if err == nil {
				ctx := context.Background()
				add(prof.Measure("serve.cache-hit", runs, func() {
					<-srv.Submit(ctx, InferRequest{
						Signature:      "prof-probe",
						FLOPsPerSample: 5.6e8,
						Params:         11e6,
					})
				}))
				srv.Close()
			}
		}
	}
	return probes
}
