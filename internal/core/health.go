package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"edgetune/internal/counters"
	"edgetune/internal/device"
	"edgetune/internal/obs"
	"edgetune/internal/obs/flight"
)

// ErrNoHealthyDevice is returned when every device in the pool is
// quarantined or breaker-rejected. It wraps ErrCircuitOpen so callers
// written against the single-device server (which surfaced the breaker
// directly) keep classifying it as transient.
var ErrNoHealthyDevice = fmt.Errorf("core: no healthy device in pool: %w", ErrCircuitOpen)

// deviceHealthState is the quarantine state machine layered on top of
// the per-device circuit breaker. The breaker reacts to consecutive
// hard failures; the health score additionally notices *degradation* —
// successes that keep arriving slower than the performance model
// predicts (a browning-out board) — and steers load away before the
// device ever hard-fails.
type deviceHealthState int

const (
	// deviceHealthy devices receive weighted routing by score.
	deviceHealthy deviceHealthState = iota
	// deviceProbation devices (recently recovered) carry half weight
	// until their score proves out.
	deviceProbation
	// deviceQuarantined devices receive no routed traffic, only the
	// periodic recovery probe.
	deviceQuarantined
)

// String names the health state for span attributes and reports.
func (s deviceHealthState) String() string {
	switch s {
	case deviceProbation:
		return "probation"
	case deviceQuarantined:
		return "quarantined"
	default:
		return "healthy"
	}
}

const (
	// healthAlpha is the EWMA weight of the newest observation.
	healthAlpha = 0.3
	// quarantineBelow is the score under which a device is quarantined.
	quarantineBelow = 0.35
	// recoverAbove is the score at which probation ends.
	recoverAbove = 0.75
	// probationWeight discounts a probation device's routing weight.
	probationWeight = 0.5
	// probeEvery routes every Nth submission to a quarantined device
	// (if any) as a recovery probe.
	probeEvery = 4
)

// poolDevice is one routed device with its breaker and health state.
type poolDevice struct {
	dev  device.Device
	name string
	br   *breaker

	score   float64
	state   deviceHealthState
	probing bool // a recovery probe is in flight

	// readyAt is the simulated time at which the device becomes
	// routable: autoscaled replicas warm up first. Zero for the
	// configured pool, which is ready from the start.
	readyAt time.Duration
	// retired devices (autoscale scale-down) receive no new traffic but
	// stay in the slice so in-flight observations and the stored-entry
	// fast path still resolve them.
	retired bool

	// Per-device registry instruments (nil when metrics are disabled).
	mRequests *obs.Counter
	mFailures *obs.Counter
	mLatency  *obs.Histogram
	mHealth   *obs.Gauge
}

// route captures one routing decision: the chosen device plus the
// bookkeeping the server must undo if the request never runs (breaker
// half-open probes and quarantine probes admit exactly one in-flight
// request each).
type route struct {
	pd      *poolDevice
	brProbe bool
	qProbe  bool
}

// devicePool routes requests across the configured devices: weighted
// by health score, probation at half weight, quarantined devices
// excluded except for the periodic recovery probe, and each candidate
// still gated by its own circuit breaker.
type devicePool struct {
	mu   sync.Mutex
	devs []*poolDevice
	rec  *counters.Resilience
	seq  int64

	// Breaker parameters, kept so autoscaled replicas get breakers
	// configured like the seed pool's.
	threshold, cooldown int

	// fr receives breaker and health-state transitions as flight events
	// (nil = not recorded). Unlike the resilience counters, the flight
	// stream carries the simulated timestamps, so transitions land on
	// the incident timeline.
	fr *flight.Recorder
}

func newDevicePool(devs []device.Device, threshold, cooldown int, rec *counters.Resilience) *devicePool {
	p := &devicePool{rec: rec, threshold: threshold, cooldown: cooldown}
	for _, d := range devs {
		p.devs = append(p.devs, p.newPoolDevice(d, 0))
	}
	return p
}

// newPoolDevice builds a routed device entry with its breaker and
// registry instruments; callers hold p.mu (or are still single-owner
// in newDevicePool).
func (p *devicePool) newPoolDevice(d device.Device, readyAt time.Duration) *poolDevice {
	pd := &poolDevice{
		dev:     d,
		name:    d.Profile.Name,
		br:      newBreaker(p.threshold, p.cooldown, p.rec),
		score:   1,
		readyAt: readyAt,
	}
	if reg := p.rec.Registry(); reg != nil {
		prefix := "serving.device." + pd.name
		pd.mRequests = reg.Counter(prefix + ".requests")
		pd.mFailures = reg.Counter(prefix + ".failures")
		pd.mLatency = reg.Histogram(prefix+".latency.ms", obs.LatencyBucketsMS)
		pd.mHealth = reg.Gauge(prefix + ".health")
		pd.mHealth.Set(pd.score)
	}
	return pd
}

// addReplica joins a cloned device to the pool; it becomes routable at
// readyAt (warm-up on the simulated clock).
func (p *devicePool) addReplica(d device.Device, readyAt time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.devs = append(p.devs, p.newPoolDevice(d, readyAt))
}

// retireNewest removes the most recently added, still-active device
// from routing (autoscale scale-down), never touching the pool's first
// device. It reports the retired device's name, or false when nothing
// is retirable.
func (p *devicePool) retireNewest() (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := len(p.devs) - 1; i > 0; i-- {
		if d := p.devs[i]; !d.retired {
			d.retired = true
			return d.name, true
		}
	}
	return "", false
}

// massFail quarantines every active device at once (the MassDeviceFail
// fault class): score to zero, no routed traffic until recovery probes
// succeed. Returns the number of devices hit.
func (p *devicePool) massFail() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, d := range p.devs {
		if d.retired || d.state == deviceQuarantined {
			continue
		}
		d.state = deviceQuarantined
		d.score = 0
		if d.mHealth != nil {
			d.mHealth.Set(0)
		}
		p.rec.AddQuarantine()
		n++
	}
	return n
}

// counts reports, at simulated time at: active devices (non-retired,
// including ones still warming up) and healthy devices (active, past
// warm-up, not quarantined).
func (p *devicePool) counts(at time.Duration) (active, healthy int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, d := range p.devs {
		if d.retired {
			continue
		}
		active++
		if d.state != deviceQuarantined && d.readyAt <= at {
			healthy++
		}
	}
	return active, healthy
}

// names lists every pool device name (active and retired) in join
// order, for the stored-entry fast path.
func (p *devicePool) names() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.devs))
	for i, d := range p.devs {
		out[i] = d.name
	}
	return out
}

// pick returns the next device for a fresh submission at simulated
// time at, or ErrNoHealthyDevice. Deterministic: no randomness, the
// best-weighted admissible device wins, ties broken by pool order.
func (p *devicePool) pick(at time.Duration) (route, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq++
	if p.seq%probeEvery == 0 {
		for _, d := range p.devs {
			if d.state == deviceQuarantined && !d.probing && !d.retired {
				if ok, brProbe := p.allowLocked(d, at); ok {
					d.probing = true
					p.rec.AddProbe()
					return route{pd: d, brProbe: brProbe, qProbe: true}, nil
				}
			}
		}
	}
	return p.bestLocked(nil, at)
}

// next returns the best device other than exclude, for hedged
// re-issues.
func (p *devicePool) next(exclude *poolDevice, at time.Duration) (route, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bestLocked(exclude, at)
}

// bestLocked walks the routable devices (non-quarantined, non-retired,
// past warm-up at simulated time at) in weight order and returns the
// first whose breaker admits traffic; callers hold p.mu.
func (p *devicePool) bestLocked(exclude *poolDevice, at time.Duration) (route, error) {
	order := make([]*poolDevice, 0, len(p.devs))
	for _, d := range p.devs {
		if d == exclude || d.state == deviceQuarantined || d.retired || d.readyAt > at {
			continue
		}
		order = append(order, d)
	}
	// Insertion sort by descending weight keeps ties in pool order.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && weight(order[j]) > weight(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, d := range order {
		if ok, brProbe := p.allowLocked(d, at); ok {
			return route{pd: d, brProbe: brProbe}, nil
		}
	}
	return route{}, ErrNoHealthyDevice
}

// allowLocked consults a device's breaker and records the open →
// half-open edge (the only transition allowProbe can make) on the
// flight timeline; callers hold p.mu.
func (p *devicePool) allowLocked(d *poolDevice, at time.Duration) (ok, brProbe bool) {
	wasOpen := p.fr != nil && d.br.snapshotState() == breakerOpen
	ok, brProbe = d.br.allowProbe()
	if wasOpen && ok && brProbe {
		p.fr.Record(at, flight.KindBreaker, d.name, "half-open", int64(breakerOpen), int64(breakerHalfOpen))
	}
	return ok, brProbe
}

func weight(d *poolDevice) float64 {
	w := d.score
	if d.state == deviceProbation {
		w *= probationWeight
	}
	return w
}

// release undoes a routing decision whose request never ran (evicted,
// cancelled while queued), so probe slots are not leaked.
func (p *devicePool) release(r route) {
	if r.pd == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if r.qProbe {
		r.pd.probing = false
	}
	if r.brProbe {
		r.pd.br.releaseProbe()
	}
}

// observe feeds one served request back into the device's breaker and
// health score at simulated time at. err==nil with latency beyond the
// expected (perfmodel) duration scores as partial success — the signal
// that catches brown-outs the breaker cannot see. Caller cancellations
// are neutral.
func (p *devicePool) observe(r route, err error, latency, expected, at time.Duration) {
	pd := r.pd
	if pd == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	wasProbe := r.qProbe
	pd.probing = false
	if err != nil && errors.Is(err, context.Canceled) {
		// The caller walked away; says nothing about the device.
		if r.brProbe {
			pd.br.releaseProbe()
		}
		return
	}
	pd.mRequests.Add(1)
	pd.mLatency.Observe(float64(latency) / float64(time.Millisecond))
	brBefore := breakerClosed
	if p.fr != nil {
		brBefore = pd.br.snapshotState()
	}
	signal := 0.0
	if err == nil {
		pd.br.success()
		signal = 1
		if expected > 0 && latency > expected {
			signal = float64(expected) / float64(latency)
		}
	} else {
		pd.br.failure()
		pd.mFailures.Add(1)
	}
	if p.fr != nil {
		if brAfter := pd.br.snapshotState(); brAfter != brBefore {
			p.fr.Record(at, flight.KindBreaker, pd.name, brAfter.String(), int64(brBefore), int64(brAfter))
		}
	}
	hBefore := pd.state
	pd.score = (1-healthAlpha)*pd.score + healthAlpha*signal
	pd.mHealth.Set(pd.score)

	defer func() {
		if p.fr != nil && pd.state != hBefore {
			p.fr.Record(at, flight.KindHealth, pd.name, pd.state.String(), int64(hBefore), int64(pd.state))
		}
	}()

	switch pd.state {
	case deviceQuarantined:
		if err == nil && wasProbe {
			pd.state = deviceProbation
			if pd.score < quarantineBelow {
				// A clean probe earns a fresh start at the threshold.
				pd.score = quarantineBelow
			}
		}
	case deviceProbation:
		if pd.score >= recoverAbove {
			pd.state = deviceHealthy
		} else if pd.score < quarantineBelow {
			pd.state = deviceQuarantined
			p.rec.AddQuarantine()
		}
	default: // healthy
		if pd.score < quarantineBelow {
			pd.state = deviceQuarantined
			p.rec.AddQuarantine()
		}
	}
}

// stateOf reports a device's health state and score (for tests).
func (p *devicePool) stateOf(name string) (deviceHealthState, float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, d := range p.devs {
		if d.name == name {
			return d.state, d.score
		}
	}
	return deviceHealthy, 0
}

// breakerOf returns a device's breaker (for tests).
func (p *devicePool) breakerOf(name string) *breaker {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, d := range p.devs {
		if d.name == name {
			return d.br
		}
	}
	return nil
}
