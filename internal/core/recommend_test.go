package core

import (
	"context"
	"testing"

	"edgetune/internal/device"
	"edgetune/internal/search"
	"edgetune/internal/store"
	"edgetune/internal/workload"
)

func TestRecommendForDevices(t *testing.T) {
	w := workload.MustNew("IC", 1)
	cfg := search.Config{workload.ParamLayers: 18}
	st := store.New()
	entries, err := RecommendForDevices(context.Background(), w, cfg, device.All(), InferenceServerOptions{
		Trials: 12,
		Store:  st,
		Seed:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(entries))
	}
	// Sorted by device name and all plausible.
	for i, e := range entries {
		if i > 0 && entries[i-1].Device >= e.Device {
			t.Error("entries not sorted by device")
		}
		if e.Throughput <= 0 || e.Config[workload.ParamInferBatch] < 1 {
			t.Errorf("implausible entry for %s: %+v", e.Device, e)
		}
	}
	// The i7 must out-run the Pi at their respective optima.
	byDev := make(map[string]store.Entry, 3)
	for _, e := range entries {
		byDev[e.Device] = e
	}
	if byDev[device.NameI7].Throughput <= byDev[device.NameRPi3].Throughput {
		t.Error("i7 recommendation not faster than the Pi's")
	}
	if st.Len() != 3 {
		t.Errorf("store has %d entries, want 3", st.Len())
	}
}

func TestRecommendForDevicesReusesStore(t *testing.T) {
	w := workload.MustNew("IC", 1)
	cfg := search.Config{workload.ParamLayers: 34}
	st := store.New()
	opts := InferenceServerOptions{Trials: 8, Store: st, Seed: 5}
	if _, err := RecommendForDevices(context.Background(), w, cfg, device.All(), opts); err != nil {
		t.Fatal(err)
	}
	hits0, _ := st.Stats()
	if _, err := RecommendForDevices(context.Background(), w, cfg, device.All(), opts); err != nil {
		t.Fatal(err)
	}
	hits1, _ := st.Stats()
	if hits1-hits0 != 3 {
		t.Errorf("second call made %d cache hits, want 3", hits1-hits0)
	}
}

func TestRecommendForDevicesValidation(t *testing.T) {
	ctx := context.Background()
	w := workload.MustNew("IC", 1)
	good := search.Config{workload.ParamLayers: 18}
	if _, err := RecommendForDevices(ctx, nil, good, device.All(), InferenceServerOptions{}); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := RecommendForDevices(ctx, w, good, nil, InferenceServerOptions{}); err == nil {
		t.Error("empty device list accepted")
	}
	if _, err := RecommendForDevices(ctx, w, search.Config{}, device.All(), InferenceServerOptions{}); err == nil {
		t.Error("config without model param accepted")
	}
}
