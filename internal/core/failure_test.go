package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"edgetune/internal/device"
	"edgetune/internal/perfmodel"
	"edgetune/internal/store"
	"edgetune/internal/workload"
)

// TestObjectiveSoftTargetPenalty: below the target, the shortfall is
// penalised quadratically; at or above it, the raw ratio applies.
func TestObjectiveSoftTargetPenalty(t *testing.T) {
	train := perfmodel.Cost{Duration: 100 * time.Second, EnergyJ: 1000}
	inf := perfmodel.InferResult{Throughput: 10, EnergyPerSampleJ: 1}
	obj := Objective{Metric: MetricRuntime, TargetAccuracy: 0.8}
	noTarget := Objective{Metric: MetricRuntime}

	// Above target: identical to the unconstrained objective.
	if got, want := obj.ModelScore(train, inf, 0.9), noTarget.ModelScore(train, inf, 0.9); got != want {
		t.Errorf("above target: %v != %v", got, want)
	}
	// Below target: strictly worse than the unconstrained score.
	if got, want := obj.ModelScore(train, inf, 0.4), noTarget.ModelScore(train, inf, 0.4); got <= want {
		t.Errorf("below target: %v not penalised vs %v", got, want)
	}
	// The penalty must be strong enough that a 2x faster config cannot
	// buy its way past a halved accuracy (the pathology that would let
	// fast-but-inaccurate configurations win).
	fast := perfmodel.Cost{Duration: 50 * time.Second, EnergyJ: 500}
	if obj.ModelScore(fast, inf, 0.4) <= obj.ModelScore(train, inf, 0.85) {
		t.Error("2x-faster half-accuracy config outscored a target-reaching one")
	}
	// Monotone: more accuracy never scores worse.
	prev := obj.ModelScore(train, inf, 0.1)
	for acc := 0.15; acc <= 1.0; acc += 0.05 {
		s := obj.ModelScore(train, inf, acc)
		if s > prev {
			t.Fatalf("score not monotone in accuracy at %v", acc)
		}
		prev = s
	}
}

func TestInferenceServerSubmitAfterClose(t *testing.T) {
	st := store.New()
	srv := infServer(t, st, 4)
	srv.Close()
	out := <-srv.Submit(context.Background(), icRequest())
	if !errors.Is(out.Err, ErrServerClosed) {
		t.Errorf("submit after Close: err = %v, want ErrServerClosed", out.Err)
	}
}

func TestInferenceServerCloseIdempotent(t *testing.T) {
	srv := infServer(t, store.New(), 4)
	srv.Close()
	srv.Close() // must not panic or deadlock
}

func TestInferenceServerSubmitCancelledContext(t *testing.T) {
	srv := infServer(t, store.New(), 4)
	// Saturate the single pending path first so the context branch is
	// reachable; with workers available the request may still be
	// accepted, so only assert no deadlock and a reply.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	select {
	case <-srv.Submit(ctx, icRequest()):
	case <-time.After(5 * time.Second):
		t.Fatal("submit with cancelled context deadlocked")
	}
}

func TestAwaitOutcomeDeadline(t *testing.T) {
	ch := make(chan InferOutcome) // never delivers
	_, err := awaitOutcome(context.Background(), ch, 30*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Errorf("missed deadline error = %v", err)
	}
}

func TestAwaitOutcomePropagatesErrors(t *testing.T) {
	ch := make(chan InferOutcome, 1)
	ch <- InferOutcome{Err: context.DeadlineExceeded}
	if _, err := awaitOutcome(context.Background(), ch, time.Second); err == nil {
		t.Error("outcome error not propagated")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := awaitOutcome(ctx, make(chan InferOutcome), time.Second); err == nil {
		t.Error("context cancellation not propagated")
	}
}

// slowInfServer builds a single-worker server whose uncached requests
// take long enough to hold the worker while later submissions queue.
func slowInfServer(t *testing.T, trials int) *InferenceServer {
	t.Helper()
	w := workload.MustNew("IC", 1)
	dev := device.I7()
	space, err := w.InferenceSpace(dev)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewInferenceServer(InferenceServerOptions{
		Device:  dev,
		Space:   space,
		Metric:  MetricRuntime,
		Trials:  trials,
		Workers: 1,
		Store:   store.New(),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// TestInferenceServerSubmitHonoursContextWhileQueued: with the only
// worker busy, a queued request whose context is cancelled must fail
// promptly instead of waiting for the worker to free up.
func TestInferenceServerSubmitHonoursContextWhileQueued(t *testing.T) {
	srv := slowInfServer(t, 2_000_000)
	busyCtx, busyCancel := context.WithCancel(context.Background())
	busy := srv.Submit(busyCtx, icRequest())

	// Submit enqueues without blocking; with the only worker busy the
	// job waits in the admission queue, where the caller's deadline
	// must still be honoured.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	queued := srv.Submit(ctx, InferRequest{
		Signature: "IC/layers=34", FLOPsPerSample: 1.2e9, Params: 21e6,
	})
	select {
	case out := <-queued:
		if out.Err == nil {
			t.Error("cancelled queued request succeeded")
		} else if !errors.Is(out.Err, context.DeadlineExceeded) {
			t.Errorf("queued request error = %v, want its context's deadline", out.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled queued request never replied")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("cancelled request waited %v for the busy worker", waited)
	}
	busyCancel()
	<-busy // drain so Close does not race the in-flight request
}

// TestInferenceServerCancelMidTune: cancelling the caller's context
// while its request is being tuned aborts between inference trials, and
// a caller cancellation must not trip the device's breaker.
func TestInferenceServerCancelMidTune(t *testing.T) {
	srv := slowInfServer(t, 2_000_000)
	ctx, cancel := context.WithCancel(context.Background())
	ch := srv.Submit(ctx, icRequest())
	time.Sleep(20 * time.Millisecond) // let the worker start tuning
	cancel()
	select {
	case out := <-ch:
		if out.Err == nil {
			t.Error("cancelled mid-tune request succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not abort the tuning loop")
	}
	br := srv.pool.breakerOf(srv.opts.Pool[0].Profile.Name)
	if st := br.snapshotState(); st != breakerClosed {
		t.Errorf("caller cancellation moved the breaker to state %d", st)
	}
}

// TestTunePropagatesTrialErrors: a training platform that cannot host
// the sampled system configurations must surface an error, not hang or
// silently skip trials.
func TestTunePropagatesTrialErrors(t *testing.T) {
	gpu := perfmodel.TitanRTX()
	gpu.MaxGPUs = 2 // space samples up to 8 GPUs -> some trials invalid
	opts := smallOptions("IC")
	opts.GPU = gpu
	opts.InitialConfigs = 8
	if _, err := Tune(context.Background(), opts); err == nil {
		t.Error("invalid system configurations did not error")
	}
}

func TestTuneWithPreloadedStoreSkipsInferenceTuning(t *testing.T) {
	// Pre-seed the store with every IC architecture: tuning must then
	// never pay inference-tuning time.
	st := store.New()
	w := workload.MustNew("IC", 1)
	for _, layers := range []float64{18, 34, 50} {
		err := st.Put(store.Entry{
			Signature:        w.Signature(map[string]float64{workload.ParamLayers: layers}),
			Device:           device.I7().Profile.Name,
			Config:           map[string]float64{workload.ParamInferBatch: 8, workload.ParamCores: 2, workload.ParamFreq: 2},
			Throughput:       40,
			EnergyPerSampleJ: 0.2,
			LatencySeconds:   0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	opts := smallOptions("IC")
	opts.Store = st
	res, err := Tune(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.InferTuningDuration != 0 {
		t.Errorf("preloaded store still paid %v of inference tuning", res.InferTuningDuration)
	}
	if res.CacheMisses != 0 {
		t.Errorf("%d cache misses with a fully preloaded store", res.CacheMisses)
	}
}

func TestTuneRecordsMaxAccuracy(t *testing.T) {
	res, err := Tune(context.Background(), smallOptions("IC"))
	if err != nil {
		t.Fatal(err)
	}
	var maxSeen float64
	for _, tr := range res.Trials {
		if tr.Accuracy > maxSeen {
			maxSeen = tr.Accuracy
		}
	}
	if res.MaxAccuracy != maxSeen {
		t.Errorf("MaxAccuracy = %v, trials max = %v", res.MaxAccuracy, maxSeen)
	}
	if res.BestAccuracy > res.MaxAccuracy {
		t.Error("BestAccuracy above MaxAccuracy")
	}
}

// TestTuneStopAtTargetStopsEarlier: with the same settings, stopping at
// the target must never run more trials than the full schedule.
func TestTuneStopAtTargetStopsEarlier(t *testing.T) {
	full, err := Tune(context.Background(), smallOptions("IC"))
	if err != nil {
		t.Fatal(err)
	}
	stopOpts := smallOptions("IC")
	stopOpts.StopAtTarget = true
	stopped, err := Tune(context.Background(), stopOpts)
	if err != nil {
		t.Fatal(err)
	}
	if stopped.TrialsRun > full.TrialsRun {
		t.Errorf("StopAtTarget ran %d trials vs %d for the full schedule",
			stopped.TrialsRun, full.TrialsRun)
	}
	if stopped.ReachedTarget && stopped.TrialsRun == full.TrialsRun && full.ReachedTarget {
		// Both reached in the final bracket: equality is acceptable.
		t.Log("target reached only in the final bracket")
	}
}
