package core

import (
	"context"
	"errors"
	"testing"

	"edgetune/internal/obs/slo"
	"edgetune/internal/store"
)

// TestQueueInstrumentCounts: with the intake held, each admitted
// request records its exact queue position — the admission-wait
// histogram sees positions 0..n−1 and the enqueue-depth histogram the
// depths 1..n.
func TestQueueInstrumentCounts(t *testing.T) {
	srv, rec := servingServer(t, store.New(), func(o *InferenceServerOptions) {
		o.QueueLimit = 8
	})
	srv.adm.setHold(true)
	chs := make([]<-chan InferOutcome, 0, 4)
	for i := 0; i < 4; i++ {
		chs = append(chs, srv.Submit(context.Background(), sigRequest(i)))
	}
	if got := srv.adm.queuedLen(); got != 4 {
		t.Fatalf("queued = %d, want 4", got)
	}
	srv.adm.setHold(false)
	for i, ch := range chs {
		if out := mustOutcome(t, ch); out.Err != nil {
			t.Fatalf("request %d failed: %v", i, out.Err)
		}
	}

	snap := rec.Registry().Snapshot()
	wait, ok := snap.Histogram("serving.admission.wait.requests")
	if !ok || wait.Count != 4 {
		t.Fatalf("admission-wait histogram = %+v (ok=%v), want 4 samples", wait, ok)
	}
	// Positions 0,1,2,3 ahead of the four held submissions.
	if wait.Min != 0 || wait.Max != 3 || wait.Sum != 6 {
		t.Errorf("admission-wait min/max/sum = %g/%g/%g, want 0/3/6", wait.Min, wait.Max, wait.Sum)
	}
	depth, ok := snap.Histogram("serving.queue.depth.enqueue")
	if !ok || depth.Count != 4 {
		t.Fatalf("enqueue-depth histogram = %+v (ok=%v), want 4 samples", depth, ok)
	}
	// Depths 1,2,3,4 right after each insert.
	if depth.Min != 1 || depth.Max != 4 || depth.Sum != 10 {
		t.Errorf("enqueue-depth min/max/sum = %g/%g/%g, want 1/4/10", depth.Min, depth.Max, depth.Sum)
	}
}

// TestServingSLOObjectives: the server registers latency and rejection
// objectives and records every outcome; shedding three of four
// submissions burns the rejection budget past the alert threshold.
func TestServingSLOObjectives(t *testing.T) {
	ev := slo.NewEvaluator()
	srv, _ := servingServer(t, store.New(), func(o *InferenceServerOptions) {
		o.QueueLimit = 1
		o.SLO = ev
	})
	srv.adm.setHold(true)
	chs := make([]<-chan InferOutcome, 0, 4)
	for i := 0; i < 4; i++ {
		chs = append(chs, srv.Submit(context.Background(), sigRequest(i)))
	}
	shed := 0
	for i := 1; i < 4; i++ {
		if out := mustOutcome(t, chs[i]); errors.Is(out.Err, ErrOverloaded) {
			shed++
		}
	}
	if shed != 3 {
		t.Fatalf("shed = %d, want 3", shed)
	}
	srv.adm.setHold(false)
	if out := mustOutcome(t, chs[0]); out.Err != nil {
		t.Fatalf("admitted request failed: %v", out.Err)
	}

	snap := ev.Snapshot()
	rej, ok := snap.Objective("serving/rejections")
	if !ok || rej.Events != 4 || rej.Errors != 3 {
		t.Fatalf("rejections objective = %+v (ok=%v), want 4 events / 3 errors", rej, ok)
	}
	// Error rate 0.75 over a 0.05 budget: burn 15 in every (clamped)
	// window — past the 14.4 page threshold.
	if !rej.Alerting {
		t.Errorf("rejection burn must alert: %+v", rej)
	}
	lat, ok := snap.Objective("serving/latency")
	if !ok || lat.Events != 1 || lat.Errors != 0 {
		t.Errorf("latency objective = %+v (ok=%v), want 1 good event", lat, ok)
	}
	if !snap.Alerting() {
		t.Error("snapshot must report the rejection alert")
	}
}
