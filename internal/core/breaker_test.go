package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"edgetune/internal/counters"
	"edgetune/internal/fault"
)

// step is one scripted interaction with a breaker: an admission check
// or an outcome report, with the state expected afterwards.
type step struct {
	op        string // "allow-ok", "allow-denied", "success", "failure"
	wantState breakerState
}

// TestBreakerTransitions scripts the breaker state machine end to end:
// threshold trips, cooldown counting, the half-open probe, and the
// doubling backoff on failed probes.
func TestBreakerTransitions(t *testing.T) {
	cases := []struct {
		name  string
		steps []step
	}{
		{
			name: "threshold-opens",
			steps: []step{
				{"failure", breakerClosed},
				{"failure", breakerClosed},
				{"failure", breakerOpen}, // third consecutive failure trips
			},
		},
		{
			name: "success-resets-consecutive-count",
			steps: []step{
				{"failure", breakerClosed},
				{"failure", breakerClosed},
				{"success", breakerClosed},
				{"failure", breakerClosed},
				{"failure", breakerClosed}, // streak restarted, still closed
			},
		},
		{
			name: "cooldown-then-half-open-probe-closes",
			steps: []step{
				{"failure", breakerClosed},
				{"failure", breakerClosed},
				{"failure", breakerOpen},
				{"allow-denied", breakerOpen},     // cooldown reject 1 of 2
				{"allow-ok", breakerHalfOpen},     // reject 2 exhausts cooldown: probe admitted
				{"allow-denied", breakerHalfOpen}, // only one probe in flight
				{"success", breakerClosed},        // probe succeeded
				{"allow-ok", breakerClosed},
			},
		},
		{
			name: "failed-probe-doubles-cooldown",
			steps: []step{
				{"failure", breakerClosed},
				{"failure", breakerClosed},
				{"failure", breakerOpen},
				{"allow-denied", breakerOpen},
				{"allow-ok", breakerHalfOpen},
				{"failure", breakerOpen}, // failed probe: cooldown now 4
				{"allow-denied", breakerOpen},
				{"allow-denied", breakerOpen},
				{"allow-denied", breakerOpen},
				{"allow-ok", breakerHalfOpen}, // 4th rejection half-opens
				{"success", breakerClosed},    // recovery resets the cooldown
				{"failure", breakerClosed},
				{"failure", breakerClosed},
				{"failure", breakerOpen},
				{"allow-denied", breakerOpen},
				{"allow-ok", breakerHalfOpen}, // back to the base cooldown of 2
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := newBreaker(3, 2, counters.NewResilience())
			for i, s := range tc.steps {
				switch s.op {
				case "allow-ok":
					if !b.allow() {
						t.Fatalf("step %d: allow() = false, want true", i)
					}
				case "allow-denied":
					if b.allow() {
						t.Fatalf("step %d: allow() = true, want false", i)
					}
				case "success":
					b.success()
				case "failure":
					b.failure()
				}
				if got := b.snapshotState(); got != s.wantState {
					t.Fatalf("step %d (%s): state = %d, want %d", i, s.op, got, s.wantState)
				}
			}
		})
	}
}

// TestBreakerReleaseProbe: a probe slot freed without a verdict (the
// probing request was evicted before running) admits the next probe.
func TestBreakerReleaseProbe(t *testing.T) {
	b := newBreaker(1, 1, counters.NewResilience())
	b.failure() // threshold 1: open immediately
	if ok, _ := b.allowProbe(); !ok {
		t.Fatal("cooldown 1: first rejection should half-open and admit a probe")
	}
	if ok, _ := b.allowProbe(); ok {
		t.Fatal("second concurrent probe admitted")
	}
	b.releaseProbe()
	ok, probe := b.allowProbe()
	if !ok || !probe {
		t.Errorf("after releaseProbe: allowProbe = (%v, %v), want (true, true)", ok, probe)
	}
}

// TestTransientInferError classifies the errors the tuner may retry or
// degrade on versus those it must surface.
func TestTransientInferError(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"injected fault", &fault.Error{Class: fault.DeviceFlap, Site: "x"}, true},
		{"wrapped fault", fmt.Errorf("serve: %w", &fault.Error{Class: fault.StoreWrite, Site: "y"}), true},
		{"circuit open", ErrCircuitOpen, true},
		{"no healthy device", ErrNoHealthyDevice, true},
		{"overloaded", ErrOverloaded, true},
		{"rate limited", ErrRateLimited, true},
		{"preempted", fmt.Errorf("core: preempted by critical request: %w", ErrOverloaded), true},
		{"server closed", ErrServerClosed, true},
		{"deadline", context.DeadlineExceeded, true},
		{"cancelled", context.Canceled, false},
		{"organic", errors.New("invalid configuration"), false},
	}
	for _, tc := range cases {
		if got := transientInferError(tc.err); got != tc.want {
			t.Errorf("%s: transientInferError = %v, want %v", tc.name, got, tc.want)
		}
	}
}
