package core

import (
	"errors"
	"fmt"
	"sync"
)

// ErrOverloaded is returned by the inference server when admission
// control sheds a submission: the bounded intake queue is full (and the
// request could not preempt anything), or an injected overload burst
// fired. Callers should back off or fall back to degraded data.
var ErrOverloaded = errors.New("core: inference server overloaded")

// ErrRateLimited is returned when a client exceeds its token-bucket
// allowance. It wraps ErrOverloaded so existing shed handling applies.
var ErrRateLimited = fmt.Errorf("client rate limit exceeded: %w", ErrOverloaded)

// ErrServerClosed is returned by Submit after Close (or once a drain
// has begun): the server no longer accepts work.
var ErrServerClosed = errors.New("core: inference server closed")

// Priority orders requests in the intake queue. The zero value is
// critical so existing callers (the model tuning server, whose trials
// block on the reply) keep the stronger class by default.
type Priority int

const (
	// PriorityCritical requests (recommendation path, pipelined trial
	// requests) are served first and may preempt queued background work.
	PriorityCritical Priority = iota
	// PriorityBackground marks cache-warming or prefetch traffic that
	// overload may shed or preempt freely.
	PriorityBackground
)

// admission is the server's intake gate: a bounded in-system request
// count (queued + in flight), two priority FIFOs, and a deterministic
// token-bucket rate limiter per client.
//
// The bound covers queued plus in-flight requests rather than queue
// length alone, so the number of admitted requests in a saturation
// burst does not depend on how quickly workers drain the queue — the
// property that keeps shed counters identical across same-seed runs.
//
// The token bucket is likewise deterministic: "time" is the global
// submission tick, not the wall clock. Each client's bucket refills by
// rate tokens per submission observed since its last use, capped at
// burst. A fixed submission sequence therefore always produces the
// same rate-limit verdicts.
type admission struct {
	mu   sync.Mutex
	cond *sync.Cond

	limit    int
	high     []*inferJob // critical
	low      []*inferJob // background
	inflight int

	rejecting bool // drain started: no new work
	closed    bool // workers may exit
	emptied   bool
	emptyCh   chan struct{}

	rate   float64
	burst  float64
	tick   int64
	tokens map[string]float64
	last   map[string]int64

	// hold makes take() wait even with work queued; the chaos tests use
	// it to freeze the queue while a deterministic burst is submitted.
	hold bool
}

func newAdmission(limit int, rate float64, burst int) *admission {
	a := &admission{
		limit:   limit,
		rate:    rate,
		burst:   float64(burst),
		emptyCh: make(chan struct{}),
		tokens:  make(map[string]float64),
		last:    make(map[string]int64),
	}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// push admits a job, returning the background job it evicted to make
// room (if any) or the typed rejection error.
func (a *admission) push(j *inferJob) (evicted *inferJob, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.rejecting {
		return nil, ErrServerClosed
	}
	a.tick++
	if a.rate > 0 {
		c := j.req.Client
		t, seen := a.tokens[c]
		if !seen {
			t = a.burst // a new client starts with a full bucket
		} else {
			t += float64(a.tick-a.last[c]) * a.rate
			if t > a.burst {
				t = a.burst
			}
		}
		a.last[c] = a.tick
		if t < 1 {
			a.tokens[c] = t
			return nil, ErrRateLimited
		}
		a.tokens[c] = t - 1
	}
	if len(a.high)+len(a.low)+a.inflight >= a.limit {
		// A critical request may reclaim the slot of the most recently
		// queued background one; everything else is shed.
		if j.req.Priority == PriorityCritical && len(a.low) > 0 {
			evicted = a.low[len(a.low)-1]
			a.low = a.low[:len(a.low)-1]
		} else {
			return nil, ErrOverloaded
		}
	}
	// Queue-position accounting for the wait/depth instruments, taken
	// under the lock so it is exact. Positions count queued jobs only —
	// in-flight work is excluded, because how fast workers retire it is
	// a scheduling artefact the same-seed contract must not observe.
	if j.req.Priority == PriorityCritical {
		j.queuedAhead = len(a.high)
		a.high = append(a.high, j)
	} else {
		j.queuedAhead = len(a.high) + len(a.low)
		a.low = append(a.low, j)
	}
	j.depthAtEnqueue = len(a.high) + len(a.low)
	a.cond.Signal()
	return evicted, nil
}

// queuedLen reports the queued (not in-flight) job count.
func (a *admission) queuedLen() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.high) + len(a.low)
}

// take blocks for the next job (critical first), returning false when
// the queue is closed and empty.
func (a *admission) take() (*inferJob, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		if !a.hold {
			if len(a.high) > 0 {
				j := a.high[0]
				a.high = a.high[1:]
				a.inflight++
				return j, true
			}
			if len(a.low) > 0 {
				j := a.low[0]
				a.low = a.low[1:]
				a.inflight++
				return j, true
			}
		}
		if a.closed {
			return nil, false
		}
		a.cond.Wait()
	}
}

// done retires one in-flight job.
func (a *admission) done() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inflight--
	a.maybeEmpty()
}

// remove withdraws a still-queued job (caller cancellation), reporting
// whether it was found — false means a worker already took it.
func (a *admission) remove(j *inferJob) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, q := range a.high {
		if q == j {
			a.high = append(a.high[:i], a.high[i+1:]...)
			a.maybeEmpty()
			return true
		}
	}
	for i, q := range a.low {
		if q == j {
			a.low = append(a.low[:i], a.low[i+1:]...)
			a.maybeEmpty()
			return true
		}
	}
	return false
}

// reject starts the drain: new pushes fail with ErrServerClosed while
// queued and in-flight work keeps running.
func (a *admission) reject() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rejecting = true
	a.maybeEmpty()
}

func (a *admission) isRejecting() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rejecting
}

// evictAll empties the queues (deadline-expired drain), returning the
// evicted jobs so the server can deliver their typed errors.
func (a *admission) evictAll() []*inferJob {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*inferJob, 0, len(a.high)+len(a.low))
	out = append(out, a.high...)
	out = append(out, a.low...)
	a.high, a.low = nil, nil
	a.maybeEmpty()
	return out
}

// evictBackground empties the background queue (the degradation
// ladder's critical-only rung), returning the evicted jobs so the
// server can deliver their typed errors.
func (a *admission) evictBackground() []*inferJob {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := a.low
	a.low = nil
	a.maybeEmpty()
	return out
}

// emptied is closed once the server is rejecting and no work remains.
func (a *admission) emptiedCh() <-chan struct{} { return a.emptyCh }

// close releases the workers. Call after the drain completes.
func (a *admission) close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.closed = true
	a.cond.Broadcast()
}

// setHold freezes (true) or releases (false) the worker side of the
// queue; test-only.
func (a *admission) setHold(h bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.hold = h
	a.cond.Broadcast()
}

// inSystem reports queued plus in-flight jobs (for tests).
func (a *admission) inSystem() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.high) + len(a.low) + a.inflight
}

// maybeEmpty closes emptyCh once a rejecting queue fully drains;
// callers hold a.mu.
func (a *admission) maybeEmpty() {
	if a.rejecting && !a.emptied && a.inflight == 0 && len(a.high)+len(a.low) == 0 {
		a.emptied = true
		close(a.emptyCh)
	}
}
