package core

import (
	"context"
	"fmt"
	"math"

	"edgetune/internal/budget"
	"edgetune/internal/search"
	"edgetune/internal/trial"
	"edgetune/internal/workload"
)

// TuneHierarchical implements the two-tier alternative of §4.1 /
// Figure 9: stage one tunes the hyperparameters with the system
// parameters fixed at their defaults; stage two sweeps the system
// parameters only for the stage-one winner. It is the comparison point
// for EdgeTune's onefold approach — it cannot exploit the coupling
// between hyper and system parameters, and its stage-two sweep re-runs
// full-budget trials serially.
func TuneHierarchical(ctx context.Context, opts Options) (Result, error) {
	// Stage 1: hyperparameters only.
	stage1 := opts
	stage1.SystemParams = false
	res, err := Tune(ctx, stage1)
	if err != nil {
		return res, fmt.Errorf("core: hierarchical stage 1: %w", err)
	}

	// Stage 2: sweep the training system parameter (GPU count) for the
	// winning hyperparameters at full budget.
	if err := opts.normalise(); err != nil {
		return res, err
	}
	runner, err := trial.NewRunner(opts.Workload, opts.GPU, opts.Seed+1)
	if err != nil {
		return res, err
	}
	strat, err := budget.New(opts.BudgetKind)
	if err != nil {
		return res, err
	}
	// Full budget: iterate the strategy to saturation.
	it := 1
	for !strat.Saturated(it) && it < 64 {
		it++
	}
	alloc := strat.At(it)

	obj := Objective{Metric: opts.Metric, TargetAccuracy: opts.TargetAccuracy}
	bestScore := math.Inf(1)
	var bestCfg search.Config
	for gpus := 1; gpus <= opts.GPU.MaxGPUs; gpus++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		cfg := res.BestConfig.Clone()
		cfg[workload.ParamGPUs] = float64(gpus)
		tr, err := runner.Run(ctx, trial.Request{Config: cfg, Alloc: alloc})
		if err != nil {
			return res, fmt.Errorf("core: hierarchical stage 2 (gpus=%d): %w", gpus, err)
		}
		res.TrialsRun++
		res.TuningDuration += tr.Cost.Duration
		res.TuningEnergyKJ += tr.Cost.EnergyJ / 1000
		score := obj.TrainOnlyScore(tr.Cost, tr.Accuracy)
		if score < bestScore {
			bestScore = score
			bestCfg = cfg
			res.BestAccuracy = tr.Accuracy
		}
	}
	if bestCfg != nil {
		res.BestConfig = bestCfg
	}
	return res, nil
}
