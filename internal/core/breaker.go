package core

import (
	"errors"
	"sync"

	"edgetune/internal/counters"
)

// ErrCircuitOpen is returned by the inference server when the target
// device's circuit breaker is rejecting requests.
var ErrCircuitOpen = errors.New("core: inference circuit breaker open")

// breakerState enumerates the classic three breaker states.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String names the state for span attributes and reports.
func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-device circuit breaker. The tuning servers run on
// simulated time, so the open-state cooldown is measured in rejected
// requests rather than wall clock: after `threshold` consecutive
// failures the breaker opens and fast-fails the next `cooldown`
// requests, then half-opens to admit a single probe. A successful
// probe closes the breaker and resets the cooldown; a failed probe
// re-opens it with the cooldown doubled (capped) — the backoff
// schedule. This keeps the breaker fully deterministic for a fixed
// request sequence, which the replay tests rely on.
type breaker struct {
	mu           sync.Mutex
	threshold    int
	baseCooldown int
	maxCooldown  int
	rec          *counters.Resilience

	state       breakerState
	consecFails int
	cooldown    int // current open-state length, in rejected requests
	rejectsLeft int
	probing     bool
}

// newBreaker creates a closed breaker. threshold and cooldown must be
// positive (normalised by the caller).
func newBreaker(threshold, cooldown int, rec *counters.Resilience) *breaker {
	return &breaker{
		threshold:    threshold,
		baseCooldown: cooldown,
		maxCooldown:  cooldown * 16,
		cooldown:     cooldown,
		rec:          rec,
	}
}

// allow reports whether a request may proceed. In the open state it
// consumes one rejection slot per call; exhausting the slots moves the
// breaker to half-open, which admits exactly one in-flight probe.
func (b *breaker) allow() bool {
	ok, _ := b.allowProbe()
	return ok
}

// allowProbe is allow plus whether the admitted request holds the
// half-open probe slot — which the caller must release (releaseProbe)
// if the request is evicted or cancelled before it ever runs.
func (b *breaker) allowProbe() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		b.rejectsLeft--
		if b.rejectsLeft > 0 {
			return false, false
		}
		b.state = breakerHalfOpen
		b.rec.AddBreakerHalfOpen()
		b.probing = true
		return true, true
	default: // half-open
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// releaseProbe frees the half-open probe slot without judging the
// device, used when the probing request never ran.
func (b *breaker) releaseProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// success records a served request that completed without failure.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.state = breakerClosed
		b.cooldown = b.baseCooldown
		b.rec.AddBreakerClose()
	}
	b.probing = false
	b.consecFails = 0
}

// failure records a served request that failed; caller-cancellations
// must not be reported here.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		// Failed probe: re-open with the cooldown doubled.
		b.cooldown *= 2
		if b.cooldown > b.maxCooldown {
			b.cooldown = b.maxCooldown
		}
		b.open()
	case breakerClosed:
		b.consecFails++
		if b.consecFails >= b.threshold {
			b.open()
		}
	}
	b.probing = false
}

// open transitions to the open state (callers hold the lock).
func (b *breaker) open() {
	b.state = breakerOpen
	b.rejectsLeft = b.cooldown
	b.consecFails = 0
	b.rec.AddBreakerOpen()
}

// snapshotState reports the current state (for tests and span
// attributes).
func (b *breaker) snapshotState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
