package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"edgetune/internal/budget"
	"edgetune/internal/device"
	"edgetune/internal/perfmodel"
	"edgetune/internal/search"
	"edgetune/internal/store"
	"edgetune/internal/trial"
	"edgetune/internal/workload"
)

// Options configures a tuning job (the EdgeTune inputs of §3.1: the
// workload, the parameter sets and ranges, the tuning and inference
// objectives, and the choice of tuning algorithms).
type Options struct {
	// Workload is the model/dataset pair to tune. Required.
	Workload *workload.Workload
	// Device is the edge inference target. Defaults to the i7 node.
	Device device.Device
	// GPU is the training platform. Defaults to the Titan RTX profile.
	GPU perfmodel.GPUProfile
	// BudgetKind selects the trial budget strategy: "epochs",
	// "dataset", or "multi" (default — the paper's contribution).
	BudgetKind string
	// ModelAlgo and InferAlgo select the search strategies of the two
	// servers; both default to BOHB, and they may differ (§3.1).
	ModelAlgo string
	InferAlgo string
	// Metric is the objective variant: runtime (default) or energy.
	Metric Metric
	// Eta is the successive-halving reduction factor (default 2).
	Eta int
	// InitialConfigs is the per-bracket population (default 8).
	InitialConfigs int
	// Rungs is the number of halving rounds per bracket (default 8).
	Rungs int
	// MaxBrackets bounds repeated brackets when the target accuracy is
	// not reached (default 3).
	MaxBrackets int
	// TargetAccuracy is the accuracy goal recorded in the result; zero
	// selects the workload's default target (§2.3's 80% for IC).
	TargetAccuracy float64
	// StopAtTarget ends tuning early once the target accuracy is
	// reached. The paper's evaluation runs brackets to completion
	// (Figure 12 shows ~50 trials), so this defaults to off.
	StopAtTarget bool
	// SystemParams includes the training system parameters (GPU count)
	// in the joint space — EdgeTune's onefold mode. Inference-unaware
	// baselines switch it off.
	SystemParams bool
	// InferenceAware couples the Inference Tuning Server into the
	// objective and produces inference recommendations.
	InferenceAware bool
	// AccuracyOnly scores trials purely by accuracy (the Tune baseline's
	// objective), ignoring cost ratios.
	AccuracyOnly bool
	// FixedGPUs pins every trial to this GPU count when SystemParams is
	// off — the fixed system configuration a baseline user would pick
	// (§2.3.4). Zero means one GPU.
	FixedGPUs int
	// InferTrials is the number of configurations the inference server
	// evaluates per architecture (default 24).
	InferTrials int
	// InferWorkers is the inference server's pipelining width.
	InferWorkers int
	// Store is the shared historical database; one is created if nil.
	Store *store.Store
	// Seed drives all randomised components.
	Seed uint64
}

func (o *Options) normalise() error {
	if o.Workload == nil {
		return errors.New("core: options need a workload")
	}
	if o.Device.Profile.Name == "" {
		o.Device = device.I7()
	}
	if o.GPU.FlopsPerSec == 0 {
		o.GPU = perfmodel.TitanRTX()
	}
	if o.BudgetKind == "" {
		o.BudgetKind = budget.KindMulti
	}
	if o.Metric == "" {
		o.Metric = MetricRuntime
	}
	if err := o.Metric.Validate(); err != nil {
		return err
	}
	if o.Eta == 0 {
		o.Eta = 2
	}
	if o.Eta < 2 {
		return fmt.Errorf("core: eta %d must be >= 2", o.Eta)
	}
	if o.InitialConfigs == 0 {
		o.InitialConfigs = 8
	}
	if o.InitialConfigs < 1 {
		return fmt.Errorf("core: initial configs %d must be >= 1", o.InitialConfigs)
	}
	if o.Rungs == 0 {
		o.Rungs = 8
	}
	if o.Rungs < 1 {
		return fmt.Errorf("core: rungs %d must be >= 1", o.Rungs)
	}
	if o.MaxBrackets == 0 {
		o.MaxBrackets = 3
	}
	if o.MaxBrackets < 1 {
		return fmt.Errorf("core: max brackets %d must be >= 1", o.MaxBrackets)
	}
	if o.TargetAccuracy == 0 {
		o.TargetAccuracy = o.Workload.TargetAccuracy()
	}
	if o.TargetAccuracy < 0 || o.TargetAccuracy > 1 {
		return fmt.Errorf("core: target accuracy %v out of [0,1]", o.TargetAccuracy)
	}
	if o.InferTrials == 0 {
		o.InferTrials = 24
	}
	if o.InferWorkers == 0 {
		o.InferWorkers = 2
	}
	if o.Store == nil {
		o.Store = store.New()
	}
	return nil
}

// TrialRecord documents one completed training trial.
type TrialRecord struct {
	Bracket  int
	Rung     int
	Config   search.Config
	Alloc    budget.Allocation
	Accuracy float64
	// TrainCost is the simulated training cost of the trial.
	TrainCost perfmodel.Cost
	// Score is the minimised objective value.
	Score float64
	// InferCached reports whether the inference term came from the
	// historical store.
	InferCached bool

	// InferTuning is the pipelined inference-tuning cost charged while
	// this trial trained (zero on cache hits and for inference-unaware
	// runs).
	InferTuning perfmodel.Cost
}

// Result is the EdgeTune output (§3.1): the optimal trained
// configuration plus the inference recommendations, with full tuning
// cost accounting.
type Result struct {
	Workload string
	Device   string
	Metric   Metric

	// BestConfig is the winning joint configuration.
	BestConfig search.Config
	// BestAccuracy is the winning trial's model accuracy.
	BestAccuracy float64
	// MaxAccuracy is the highest accuracy any trial reached.
	MaxAccuracy float64
	// BestScore is the winning (minimised) objective value.
	BestScore float64
	// Recommendation is the optimal inference configuration for the
	// winning architecture (empty if not inference-aware).
	Recommendation store.Entry

	// TuningDuration is the simulated wall time of the tuning job: the
	// sum of training-trial durations. Inference tuning is pipelined
	// inside training trials (§3.3) and adds no duration.
	TuningDuration time.Duration
	// TuningEnergyKJ sums training energy plus the inference server's
	// (small) emulation energy.
	TuningEnergyKJ float64
	// InferTuningDuration is the total pipelined inference-tuning time,
	// reported for the containment analysis.
	InferTuningDuration time.Duration
	// ContainmentViolations counts trials whose inference tuning took
	// longer than the training trial sheltering it.
	ContainmentViolations int

	TrialsRun   int
	CacheHits   int
	CacheMisses int
	Trials      []TrialRecord
	// ReachedTarget reports whether the target accuracy was met.
	ReachedTarget bool
}

// Tune runs the EdgeTune onefold tuning loop (Algorithm 1): brackets of
// successive halving over the joint space, with asynchronous inference
// tuning folded into each trial's objective.
func Tune(ctx context.Context, opts Options) (Result, error) {
	var res Result
	if err := opts.normalise(); err != nil {
		return res, err
	}
	w := opts.Workload
	res.Workload = w.ID
	res.Device = opts.Device.Profile.Name
	res.Metric = opts.Metric

	space, err := w.TrainSpace(opts.SystemParams)
	if err != nil {
		return res, err
	}
	sampler, err := search.NewSampler(opts.ModelAlgo, space, opts.Seed)
	if err != nil {
		return res, err
	}
	strat, err := budget.New(opts.BudgetKind)
	if err != nil {
		return res, err
	}
	runner, err := trial.NewRunner(w, opts.GPU, opts.Seed)
	if err != nil {
		return res, err
	}

	var infSrv *InferenceServer
	if opts.InferenceAware {
		infSpace, err := w.InferenceSpace(opts.Device)
		if err != nil {
			return res, err
		}
		infSrv, err = NewInferenceServer(InferenceServerOptions{
			Device:  opts.Device,
			Space:   infSpace,
			Algo:    opts.InferAlgo,
			Metric:  opts.Metric,
			Trials:  opts.InferTrials,
			Workers: opts.InferWorkers,
			Store:   opts.Store,
			Seed:    opts.Seed,
		})
		if err != nil {
			return res, err
		}
		defer infSrv.Close()
	}

	// Saturated allocation: scores use each configuration's projected
	// full-budget training cost so that trials from different rungs are
	// comparable (a cheap low-fidelity trial must not win on cost it
	// never paid; its penalty is its lower accuracy).
	satIt := 1
	for !strat.Saturated(satIt) && satIt < 64 {
		satIt++
	}
	satAlloc := strat.At(satIt)

	obj := Objective{Metric: opts.Metric, TargetAccuracy: opts.TargetAccuracy}
	// Winner selection is lexicographic: a trial that meets the target
	// accuracy always beats one that does not (the user asked for that
	// accuracy, §2.3); among equals the minimised objective decides.
	best := struct {
		score float64
		cfg   search.Config
		acc   float64
		meets bool
	}{score: math.Inf(1)}
	better := func(score, acc float64) bool {
		meets := acc >= opts.TargetAccuracy
		if meets != best.meets {
			return meets
		}
		return score < best.score
	}

	type member struct {
		cfg   search.Config
		score float64
	}

	for bracket := 0; bracket < opts.MaxBrackets; bracket++ {
		if opts.StopAtTarget && res.ReachedTarget {
			break
		}
		population := make([]member, 0, opts.InitialConfigs)
		for i := 0; i < opts.InitialConfigs; i++ {
			population = append(population, member{cfg: sampler.Sample()})
		}
		for rung := 0; rung < opts.Rungs && len(population) > 0; rung++ {
			alloc := strat.At(rung + 1)
			if rung == opts.Rungs-1 {
				// The final rung always confirms survivors at the
				// strategy's saturated budget, so every bracket ends
				// with fully-trained evaluations.
				alloc = satAlloc
			}
			for i := range population {
				if err := ctx.Err(); err != nil {
					return res, err
				}
				rec, err := runTrial(ctx, runner, infSrv, obj, opts, population[i].cfg, alloc, satAlloc)
				if err != nil {
					return res, err
				}
				rec.Bracket = bracket
				rec.Rung = rung
				population[i].score = rec.Score

				res.Trials = append(res.Trials, rec)
				res.TrialsRun++
				res.TuningDuration += rec.TrainCost.Duration
				// Inference tuning is pipelined: it adds energy but no
				// wall time (§3.3).
				res.TuningEnergyKJ += (rec.TrainCost.EnergyJ + rec.InferTuning.EnergyJ) / 1000

				sampler.Observe(search.Observation{
					Config: population[i].cfg,
					Score:  rec.Score,
					Budget: alloc.Cost(),
				})
				if better(rec.Score, rec.Accuracy) {
					best.score = rec.Score
					best.cfg = population[i].cfg.Clone()
					best.acc = rec.Accuracy
					best.meets = rec.Accuracy >= opts.TargetAccuracy
				}
				if rec.Accuracy > res.MaxAccuracy {
					res.MaxAccuracy = rec.Accuracy
				}
				if rec.Accuracy >= opts.TargetAccuracy {
					res.ReachedTarget = true
				}
			}
			sort.Slice(population, func(a, b int) bool { return population[a].score < population[b].score })
			keep := len(population) / opts.Eta
			if keep < 1 {
				keep = 1
			}
			population = population[:keep]
		}
		// StopAtTarget ends tuning at bracket granularity: the bracket
		// that first reaches the target accuracy completes its halving
		// schedule (confirming the winner at higher fidelity) and no
		// further bracket starts.
	}

	if math.IsInf(best.score, 1) {
		return res, errors.New("core: no successful trials")
	}
	res.BestConfig = best.cfg
	res.BestAccuracy = best.acc
	res.BestScore = best.score

	// Final inference recommendation for the winning architecture.
	if opts.InferenceAware {
		flops, params, err := w.PaperCost(best.cfg)
		if err != nil {
			return res, err
		}
		out := <-infSrv.Submit(ctx, InferRequest{
			Signature:      w.Signature(best.cfg),
			FLOPsPerSample: flops,
			Params:         params,
		})
		if out.Err != nil {
			return res, out.Err
		}
		res.Recommendation = out.Entry
	}

	hits, misses := opts.Store.Stats()
	res.CacheHits = hits
	res.CacheMisses = misses
	res.InferTuningDuration, res.ContainmentViolations = containment(res.Trials)
	return res, nil
}

// runTrial executes one trial with the pipelined inference request of
// Algorithm 1: the request is fired before training starts, and the
// result is awaited before the trial's objective is computed.
func runTrial(ctx context.Context, runner *trial.Runner, infSrv *InferenceServer, obj Objective, opts Options, cfg search.Config, alloc, satAlloc budget.Allocation) (TrialRecord, error) {
	rec := TrialRecord{Config: cfg.Clone(), Alloc: alloc}
	w := opts.Workload
	if _, ok := rec.Config[workload.ParamGPUs]; !ok {
		// Inference-unaware baselines fix the system configuration.
		gpus := opts.FixedGPUs
		if gpus < 1 {
			gpus = 1
		}
		rec.Config[workload.ParamGPUs] = float64(gpus)
	}

	flops, params, err := w.PaperCost(cfg)
	if err != nil {
		return rec, err
	}
	var infCh <-chan InferOutcome
	if infSrv != nil {
		infCh = infSrv.Submit(ctx, InferRequest{
			Signature:      w.Signature(cfg),
			FLOPsPerSample: flops,
			Params:         params,
		})
	}

	trialRes, err := runner.Run(ctx, trial.Request{Config: rec.Config, Alloc: alloc})
	if err != nil {
		return rec, err
	}
	rec.Accuracy = trialRes.Accuracy
	rec.TrainCost = trialRes.Cost

	// Projected cost of training this configuration at the saturated
	// budget, used for cross-rung comparable scoring.
	fullCost, err := perfmodel.TrainingCost(perfmodel.TrainSpec{
		FLOPsPerSample: flops,
		Params:         params,
		Samples:        w.Split.Train.PaperSamples() * satAlloc.DataFraction,
		Epochs:         satAlloc.Epochs,
		BatchSize:      int(rec.Config[workload.ParamTrainBatch]),
		GPUs:           int(rec.Config[workload.ParamGPUs]),
	}, opts.GPU)
	if err != nil {
		return rec, err
	}

	var inf perfmodel.InferResult
	if infSrv != nil {
		out, err := awaitOutcome(ctx, infCh, 30*time.Second)
		if err != nil {
			return rec, err
		}
		rec.InferCached = out.Cached
		rec.InferTuning = out.TuningCost
		inf = perfmodel.InferResult{
			Throughput:       out.Entry.Throughput,
			EnergyPerSampleJ: out.Entry.EnergyPerSampleJ,
		}
	}

	switch {
	case opts.AccuracyOnly:
		rec.Score = 1 - trialRes.Accuracy
	case infSrv != nil:
		rec.Score = obj.ModelScore(fullCost, inf, trialRes.Accuracy)
	default:
		rec.Score = obj.TrainOnlyScore(fullCost, trialRes.Accuracy)
	}
	return rec, nil
}

// containment sums the pipelined inference-tuning durations and counts
// trials where that duration exceeded the sheltering training trial.
func containment(trials []TrialRecord) (time.Duration, int) {
	var total time.Duration
	violations := 0
	for _, t := range trials {
		total += t.InferTuning.Duration
		if t.InferTuning.Duration > t.TrainCost.Duration {
			violations++
		}
	}
	return total, violations
}
