package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"edgetune/internal/autoscale"
	"edgetune/internal/budget"
	"edgetune/internal/counters"
	"edgetune/internal/device"
	"edgetune/internal/fault"
	"edgetune/internal/obs"
	"edgetune/internal/obs/flight"
	"edgetune/internal/obs/prof"
	"edgetune/internal/obs/slo"
	"edgetune/internal/perfmodel"
	"edgetune/internal/search"
	"edgetune/internal/store"
	"edgetune/internal/trial"
	"edgetune/internal/workload"
)

// Options configures a tuning job (the EdgeTune inputs of §3.1: the
// workload, the parameter sets and ranges, the tuning and inference
// objectives, and the choice of tuning algorithms).
type Options struct {
	// Workload is the model/dataset pair to tune. Required.
	Workload *workload.Workload
	// Device is the edge inference target. Defaults to the i7 node.
	Device device.Device
	// GPU is the training platform. Defaults to the Titan RTX profile.
	GPU perfmodel.GPUProfile
	// BudgetKind selects the trial budget strategy: "epochs",
	// "dataset", or "multi" (default — the paper's contribution).
	BudgetKind string
	// ModelAlgo and InferAlgo select the search strategies of the two
	// servers; both default to BOHB, and they may differ (§3.1).
	ModelAlgo string
	InferAlgo string
	// Metric is the objective variant: runtime (default) or energy.
	Metric Metric
	// Eta is the successive-halving reduction factor (default 2).
	Eta int
	// InitialConfigs is the per-bracket population (default 8).
	InitialConfigs int
	// Rungs is the number of halving rounds per bracket (default 8).
	Rungs int
	// MaxBrackets bounds repeated brackets when the target accuracy is
	// not reached (default 3).
	MaxBrackets int
	// TargetAccuracy is the accuracy goal recorded in the result; zero
	// selects the workload's default target (§2.3's 80% for IC).
	TargetAccuracy float64
	// StopAtTarget ends tuning early once the target accuracy is
	// reached. The paper's evaluation runs brackets to completion
	// (Figure 12 shows ~50 trials), so this defaults to off.
	StopAtTarget bool
	// SystemParams includes the training system parameters (GPU count)
	// in the joint space — EdgeTune's onefold mode. Inference-unaware
	// baselines switch it off.
	SystemParams bool
	// InferenceAware couples the Inference Tuning Server into the
	// objective and produces inference recommendations.
	InferenceAware bool
	// AccuracyOnly scores trials purely by accuracy (the Tune baseline's
	// objective), ignoring cost ratios.
	AccuracyOnly bool
	// FixedGPUs pins every trial to this GPU count when SystemParams is
	// off — the fixed system configuration a baseline user would pick
	// (§2.3.4). Zero means one GPU.
	FixedGPUs int
	// InferTrials is the number of configurations the inference server
	// evaluates per architecture (default 24).
	InferTrials int
	// InferWorkers is the inference server's pipelining width.
	InferWorkers int
	// Store is the shared historical database; one is created if nil.
	Store *store.Store
	// Seed drives all randomised components.
	Seed uint64

	// Fault configures deterministic fault injection across the trial
	// and inference paths; the zero value injects nothing.
	Fault fault.Config
	// MaxAttempts caps the attempts per training trial under injected
	// faults (default 3); it also bounds the inference server's
	// per-request retries.
	MaxAttempts int
	// RetryBaseDelay is the simulated backoff base between trial
	// attempts (default 5s); attempt n waits base·2ⁿ·(1+jitter), and
	// the wait is charged to the tuning budget like any other cost.
	RetryBaseDelay time.Duration
	// BreakerThreshold and BreakerCooldown configure the inference
	// server's per-device circuit breaker (defaults 3 and 2).
	BreakerThreshold int
	BreakerCooldown  int
	// SyncStoreWrites makes the inference server persist results
	// synchronously on its put path instead of through the write-behind
	// flusher goroutine — same semantics, deterministic store-operation
	// order for fault injection (see InferenceServerOptions.SyncWrites).
	SyncStoreWrites bool
	// Checkpoint serializes completed rungs into the Store so a
	// killed/cancelled job can resume without re-running them.
	Checkpoint bool
	// CheckpointPath additionally flushes the Store to this file after
	// each rung, making checkpoints durable across process kills.
	CheckpointPath string

	// Trace receives deterministic spans for the whole pipeline —
	// tune → bracket → rung → trial → attempt on the tuner track, and
	// the serving spans of the inference server it shelters. Nil
	// disables tracing at single-pointer-check cost.
	Trace *obs.Tracer
	// Metrics is the registry the job's counters and histograms are
	// registered on; nil gets a private registry. Either way the final
	// snapshot lands in Result.Metrics.
	Metrics *obs.Registry
	// SLO receives the job's service-level events: the inference
	// server's serve-latency and rejection objectives plus the tuner's
	// trial-overrun objective. Nil disables SLO accounting; otherwise
	// the final evaluation lands in Result.SLO.
	SLO *slo.Evaluator
	// Flight is the always-on flight recorder: both pipelines feed it
	// a compact event stream (admissions, autoscale and ladder steps,
	// breaker/health transitions, WAL and SLO edges), anomaly triggers
	// snapshot it into incident dossiers, and the dossiers land in
	// Result.Incidents. Nil disables recording at single-pointer-check
	// cost. In a cluster the recorder is per shard and outlives
	// individual Tune calls, so dossiers aggregate across failover.
	Flight *flight.Recorder

	// Tenant names the client this job runs on behalf of. When set it
	// stamps every inference submission's Client field, so per-client
	// admission, quota counters, and the tenant-rejections SLO all see
	// the same identity the cluster dispatcher admitted.
	Tenant string

	// Profile turns on the profiling plane: pprof labels (tenant,
	// bracket, rung, fault class, serving priority, plus ProfLabels)
	// follow both pipelines so CPU/heap profiles captured from the
	// debug endpoints are attributable per dimension, and per-stage
	// allocation probes land in Result.Profile and the metrics
	// registry. Off by default: measured alloc values are scheduler-
	// adjacent, so digest-gated deterministic runs keep this off.
	Profile bool
	// ProfLabels is extra label pairs (alternating key, value) applied
	// alongside the built-in taxonomy — the cluster dispatcher uses it
	// to stamp the owning shard. Ignored unless Profile is set.
	ProfLabels []string

	// Autoscale enables the inference server's SLO-driven device-pool
	// autoscaler and graceful-degradation ladder (nil = static pool).
	// The controller's report lands in Result.Autoscale, and the
	// replicas' warm-up time and energy are charged to the job's
	// budget totals.
	Autoscale *autoscale.Config

	// AfterRung, when non-nil, runs after each completed (and
	// checkpointed) rung; a non-nil return aborts the job. Chaos hook:
	// the rung checkpoint is already durable when it fires, so a kill
	// here simulates a node death at the exact point failover can
	// resume from.
	AfterRung func(bracket, rung int) error
}

func (o *Options) normalise() error {
	if o.Workload == nil {
		return errors.New("core: options need a workload")
	}
	if o.Device.Profile.Name == "" {
		o.Device = device.I7()
	}
	if o.GPU.FlopsPerSec == 0 {
		o.GPU = perfmodel.TitanRTX()
	}
	if o.BudgetKind == "" {
		o.BudgetKind = budget.KindMulti
	}
	if o.Metric == "" {
		o.Metric = MetricRuntime
	}
	if err := o.Metric.Validate(); err != nil {
		return err
	}
	if o.Eta == 0 {
		o.Eta = 2
	}
	if o.Eta < 2 {
		return fmt.Errorf("core: eta %d must be >= 2", o.Eta)
	}
	if o.InitialConfigs == 0 {
		o.InitialConfigs = 8
	}
	if o.InitialConfigs < 1 {
		return fmt.Errorf("core: initial configs %d must be >= 1", o.InitialConfigs)
	}
	if o.Rungs == 0 {
		o.Rungs = 8
	}
	if o.Rungs < 1 {
		return fmt.Errorf("core: rungs %d must be >= 1", o.Rungs)
	}
	if o.MaxBrackets == 0 {
		o.MaxBrackets = 3
	}
	if o.MaxBrackets < 1 {
		return fmt.Errorf("core: max brackets %d must be >= 1", o.MaxBrackets)
	}
	if o.TargetAccuracy == 0 {
		o.TargetAccuracy = o.Workload.TargetAccuracy()
	}
	if o.TargetAccuracy < 0 || o.TargetAccuracy > 1 {
		return fmt.Errorf("core: target accuracy %v out of [0,1]", o.TargetAccuracy)
	}
	if o.InferTrials == 0 {
		o.InferTrials = 24
	}
	if o.InferWorkers == 0 {
		o.InferWorkers = 2
	}
	if o.Store == nil {
		o.Store = store.New()
	}
	if err := o.Fault.Validate(); err != nil {
		return err
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 3
	}
	if o.MaxAttempts < 1 {
		return fmt.Errorf("core: max attempts %d must be >= 1", o.MaxAttempts)
	}
	if o.RetryBaseDelay == 0 {
		o.RetryBaseDelay = 5 * time.Second
	}
	if o.RetryBaseDelay < 0 {
		return fmt.Errorf("core: negative retry base delay %v", o.RetryBaseDelay)
	}
	return nil
}

// Trial outcomes: how the record's scores were obtained.
const (
	// OutcomeOK is a fully measured trial.
	OutcomeOK = "ok"
	// OutcomeDegraded means the inference term came from a fallback
	// (historical store or performance-model estimate) because live
	// inference tuning was unavailable.
	OutcomeDegraded = "degraded"
	// OutcomeFailed means every attempt failed; the trial was dropped
	// from the bracket without killing the job.
	OutcomeFailed = "failed"
)

// failedTrialScore ranks failed trials behind every real score while
// staying JSON-serialisable (checkpoints round-trip through encoding/
// json, which rejects infinities).
const failedTrialScore = math.MaxFloat64

// TrialRecord documents one completed training trial.
type TrialRecord struct {
	Bracket  int
	Rung     int
	Config   search.Config
	Alloc    budget.Allocation
	Accuracy float64
	// TrainCost is the simulated training cost of the trial.
	TrainCost perfmodel.Cost
	// Score is the minimised objective value.
	Score float64
	// InferCached reports whether the inference term came from the
	// historical store.
	InferCached bool

	// InferTuning is the pipelined inference-tuning cost charged while
	// this trial trained (zero on cache hits and for inference-unaware
	// runs).
	InferTuning perfmodel.Cost

	// Outcome is OutcomeOK, OutcomeDegraded, or OutcomeFailed.
	Outcome string
	// Attempts is how many runs this trial took (1 = no retries).
	Attempts int
	// RetryCost is the simulated cost of failed attempts plus backoff
	// waits, charged to the tuning budget on top of TrainCost.
	RetryCost perfmodel.Cost
}

// Result is the EdgeTune output (§3.1): the optimal trained
// configuration plus the inference recommendations, with full tuning
// cost accounting.
type Result struct {
	Workload string
	Device   string
	Metric   Metric

	// BestConfig is the winning joint configuration.
	BestConfig search.Config
	// BestAccuracy is the winning trial's model accuracy.
	BestAccuracy float64
	// MaxAccuracy is the highest accuracy any trial reached.
	MaxAccuracy float64
	// BestScore is the winning (minimised) objective value.
	BestScore float64
	// Recommendation is the optimal inference configuration for the
	// winning architecture (empty if not inference-aware).
	Recommendation store.Entry
	// RecommendationDegraded reports that the final recommendation came
	// from a fallback (historical store or estimate) because live
	// inference tuning was unavailable.
	RecommendationDegraded bool

	// TuningDuration is the simulated wall time of the tuning job: the
	// sum of training-trial durations, including failed attempts and
	// retry backoff waits. Inference tuning is pipelined inside
	// training trials (§3.3) and adds no duration.
	TuningDuration time.Duration
	// TuningEnergyKJ sums training energy plus the inference server's
	// (small) emulation energy.
	TuningEnergyKJ float64
	// InferTuningDuration is the total pipelined inference-tuning time,
	// reported for the containment analysis.
	InferTuningDuration time.Duration
	// ContainmentViolations counts trials whose inference tuning took
	// longer than the training trial sheltering it.
	ContainmentViolations int

	TrialsRun   int
	CacheHits   int
	CacheMisses int
	Trials      []TrialRecord
	// ReachedTarget reports whether the target accuracy was met.
	ReachedTarget bool

	// Resilience aggregates the fault-tolerance counters: injected
	// faults by class, retries, breaker transitions, degraded
	// outcomes, and rungs skipped by checkpoint resume.
	Resilience counters.ResilienceSnapshot

	// Metrics is the job's unified metrics snapshot — the same registry
	// cells behind Resilience plus the tuner and serving instruments
	// (trial histograms, per-device breakdowns, store writes). Sorted,
	// so same-seed runs serialise byte-identically.
	Metrics obs.Snapshot

	// SLO is the job's service-level evaluation at its simulated end
	// (zero value when Options.SLO is nil).
	SLO slo.Snapshot

	// Autoscale is the device-pool autoscaler's run report (nil when
	// Options.Autoscale is nil).
	Autoscale *autoscale.Report

	// Profile is the per-stage allocation probes measured for this job
	// (nil unless Options.Profile). The same values ride Metrics as
	// "prof.allocs-per-op.<stage>" / "prof.bytes-per-op.<stage>"
	// gauges.
	Profile []prof.Probe

	// Incidents is the flight recorder's dossiers — one per fired
	// trigger so far, built after the run quiesced (nil when
	// Options.Flight is nil or nothing tripped). With a per-shard
	// recorder the dossiers cover the shard's whole recorded history,
	// which is what lets them survive a mid-job failover rerun.
	Incidents []flight.Dossier
}

// Tune runs the EdgeTune onefold tuning loop (Algorithm 1): brackets of
// successive halving over the joint space, with asynchronous inference
// tuning folded into each trial's objective. Under fault injection the
// loop retries failed trials with exponential backoff (charged to the
// budget), degrades to historical or estimated inference data when the
// inference server is unavailable, and — with Checkpoint set —
// serializes completed rungs so a killed job resumes where it stopped.
func Tune(ctx context.Context, opts Options) (res Result, retErr error) {
	if err := opts.normalise(); err != nil {
		return res, err
	}
	w := opts.Workload
	res.Workload = w.ID
	res.Device = opts.Device.Profile.Name
	res.Metric = opts.Metric

	// Hit/miss counters persist across restarts with a durable store,
	// so the result reports this run's delta, not lifetime totals.
	startHits, startMisses := opts.Store.Stats()

	recd := counters.NewResilienceOn(opts.Metrics)
	reg := recd.Registry()
	defer func() {
		res.Resilience = recd.Snapshot()
		res.Metrics = reg.Snapshot()
		// Defer LIFO: the server's Close ran first, so every serving SLO
		// event is already recorded.
		res.SLO = opts.SLO.Snapshot()
		if opts.Flight != nil {
			// Dossiers are built here, after the pipeline quiesced, so
			// their event timelines and embedded snapshots are the
			// deterministic final ones.
			res.Incidents = opts.Flight.Dossiers(flight.Sources{
				Metrics: res.Metrics,
				SLO:     res.SLO,
				Trace:   opts.Trace,
			})
		}
	}()
	if opts.Profile {
		// Probes run before the loop so even an aborted job reports
		// them; they publish to reg, and the deferred snapshot above
		// folds the gauges into Result.Metrics.
		res.Profile = collectProfile(opts, reg)
	}
	sloOverrun := opts.SLO.Register(slo.Spec{
		Name:        "tuning/trial-overrun",
		Description: "90% of trials complete without retry cost or failure",
		Target:      0.90,
	})
	mTrials := reg.Counter("tune.trials")
	mTrialDur := reg.Histogram("tune.trial.duration.s", obs.SecondsBuckets)
	mTrialEnergy := reg.Histogram("tune.trial.energy.kj", obs.EnergyBucketsKJ)

	var tuneSp *obs.Span
	if opts.Trace != nil {
		tuneSp = opts.Trace.Root(obs.TrackTuner, "tune", opts.Seed, 0,
			obs.Str("workload", w.ID),
			obs.Str("device", res.Device),
			obs.Str("metric", string(opts.Metric)),
			obs.Str("budget", opts.BudgetKind))
	}
	defer func() {
		if tuneSp != nil {
			tuneSp.Set(obs.Int("trials", int64(res.TrialsRun)))
			tuneSp.End(res.TuningDuration)
		}
	}()

	inj, err := fault.NewInjector(opts.Fault, opts.Seed, recd)
	if err != nil {
		return res, err
	}

	space, err := w.TrainSpace(opts.SystemParams)
	if err != nil {
		return res, err
	}
	sampler, err := search.NewSampler(opts.ModelAlgo, space, opts.Seed)
	if err != nil {
		return res, err
	}
	strat, err := budget.New(opts.BudgetKind)
	if err != nil {
		return res, err
	}
	runner, err := trial.NewRunner(w, opts.GPU, opts.Seed)
	if err != nil {
		return res, err
	}
	runner.SetFaultInjector(inj)

	var infSrv *InferenceServer
	if opts.InferenceAware {
		infSpace, err := w.InferenceSpace(opts.Device)
		if err != nil {
			return res, err
		}
		infSrv, err = NewInferenceServer(InferenceServerOptions{
			Device:           opts.Device,
			Space:            infSpace,
			Algo:             opts.InferAlgo,
			Metric:           opts.Metric,
			Trials:           opts.InferTrials,
			Workers:          opts.InferWorkers,
			Store:            opts.Store,
			Seed:             opts.Seed,
			Fault:            inj,
			Recorder:         recd,
			MaxAttempts:      opts.MaxAttempts,
			BreakerThreshold: opts.BreakerThreshold,
			BreakerCooldown:  opts.BreakerCooldown,
			SyncWrites:       opts.SyncStoreWrites,
			Trace:            opts.Trace,
			SLO:              opts.SLO,
			Flight:           opts.Flight,
			Autoscale:        opts.Autoscale,
			Profile:          opts.Profile,
			ProfLabels:       opts.ProfLabels,
		})
		if err != nil {
			return res, err
		}
		defer infSrv.Close()
		// Defer LIFO: snapshot the autoscaler before Close tears the
		// server down, and charge the replicas' warm-up time and energy
		// to the job's budget totals.
		defer func() {
			if rep := infSrv.AutoscaleReport(); rep != nil {
				res.Autoscale = rep
				res.TuningDuration += rep.WarmupTime
				res.TuningEnergyKJ += rep.WarmupEnergyJ / 1000
			}
		}()
	}

	// Saturated allocation: scores use each configuration's projected
	// full-budget training cost so that trials from different rungs are
	// comparable (a cheap low-fidelity trial must not win on cost it
	// never paid; its penalty is its lower accuracy).
	satIt := 1
	for !strat.Saturated(satIt) && satIt < 64 {
		satIt++
	}
	satAlloc := strat.At(satIt)

	obj := Objective{Metric: opts.Metric, TargetAccuracy: opts.TargetAccuracy}
	// Winner selection is lexicographic: a trial that meets the target
	// accuracy always beats one that does not (the user asked for that
	// accuracy, §2.3); among equals the minimised objective decides.
	best := struct {
		score float64
		cfg   search.Config
		acc   float64
		meets bool
	}{score: math.Inf(1)}
	better := func(score, acc float64) bool {
		meets := acc >= opts.TargetAccuracy
		if meets != best.meets {
			return meets
		}
		return score < best.score
	}

	type member struct {
		cfg   search.Config
		score float64
	}

	// Checkpoint resume: restore the accumulated state and skip the
	// rungs a previous run already completed.
	cpKey := checkpointKey(opts)
	startBracket, startRung := 0, 0
	var resumedPop []member
	if opts.Checkpoint {
		if cp, ok := loadCheckpoint(opts.Store, cpKey); ok {
			startBracket, startRung = cp.Bracket, cp.NextRung
			for _, m := range cp.Pop {
				resumedPop = append(resumedPop, member{cfg: m.Config, score: m.Score})
			}
			res.Trials = cp.Trials
			res.TrialsRun = cp.TrialsRun
			res.TuningDuration = time.Duration(cp.TuningNanos)
			res.TuningEnergyKJ = cp.TuningEnergyKJ
			res.MaxAccuracy = cp.MaxAccuracy
			res.ReachedTarget = cp.ReachedTarget
			if cp.HasBest {
				best.score = cp.BestScore
				best.cfg = cp.BestConfig
				best.acc = cp.BestAccuracy
				best.meets = cp.BestMeets
			}
			// Rebuild the sampler's model from the completed trials so
			// the resumed search continues informed.
			for _, tr := range cp.Trials {
				if tr.Outcome == OutcomeFailed {
					continue
				}
				sampler.Observe(search.Observation{
					Config: tr.Config,
					Score:  tr.Score,
					Budget: tr.Alloc.Cost(),
				})
			}
			recd.Restore(cp.Resilience)
			recd.AddResumedRungs(int64(cp.Bracket*opts.Rungs + cp.NextRung))
			// Restore the proposal stream AFTER replaying observations:
			// the resumed sampler must draw exactly what the
			// uninterrupted run would have drawn next.
			if cp.Sampler != nil {
				if rs, ok := sampler.(search.Resumable); ok {
					rs.RestoreSamplerState(*cp.Sampler)
				}
			}
		}
	}

	for bracket := startBracket; bracket < opts.MaxBrackets; bracket++ {
		if opts.StopAtTarget && res.ReachedTarget {
			break
		}
		var brSp *obs.Span
		if tuneSp != nil {
			brSp = tuneSp.Child("bracket", res.TuningDuration, obs.Int("bracket", int64(bracket)))
		}
		var population []member
		rung0 := 0
		if bracket == startBracket && resumedPop != nil {
			population = resumedPop
			rung0 = startRung
		} else {
			population = make([]member, 0, opts.InitialConfigs)
			for i := 0; i < opts.InitialConfigs; i++ {
				population = append(population, member{cfg: sampler.Sample()})
			}
		}
		for rung := rung0; rung < opts.Rungs && len(population) > 0; rung++ {
			alloc := strat.At(rung + 1)
			if rung == opts.Rungs-1 {
				// The final rung always confirms survivors at the
				// strategy's saturated budget, so every bracket ends
				// with fully-trained evaluations.
				alloc = satAlloc
			}
			var rgSp *obs.Span
			if brSp != nil {
				rgSp = brSp.Child("rung", res.TuningDuration,
					obs.Int("rung", int64(rung)),
					obs.Int("population", int64(len(population))),
					obs.Int("epochs", int64(alloc.Epochs)),
					obs.Float("fraction", alloc.DataFraction))
			}
			for i := range population {
				if err := ctx.Err(); err != nil {
					return res, err
				}
				var rec TrialRecord
				var err error
				if opts.Profile {
					// The trial (and its synchronous mini-batch loop)
					// runs on this goroutine, so the labels cover every
					// training-side sample; inference work hops to the
					// server's workers, which re-apply their own.
					prof.Do(ctx, func(ctx context.Context) {
						rec, err = runResilientTrial(ctx, runner, infSrv, obj, opts, recd, inj, population[i].cfg, alloc, satAlloc, rgSp, res.TuningDuration)
					}, append([]string{
						prof.KeyTenant, tenantLabel(opts.Tenant),
						prof.KeyBracket, fmt.Sprint(bracket),
						prof.KeyRung, fmt.Sprint(rung),
					}, opts.ProfLabels...)...)
				} else {
					rec, err = runResilientTrial(ctx, runner, infSrv, obj, opts, recd, inj, population[i].cfg, alloc, satAlloc, rgSp, res.TuningDuration)
				}
				if err != nil {
					return res, err
				}
				rec.Bracket = bracket
				rec.Rung = rung
				population[i].score = rec.Score

				res.Trials = append(res.Trials, rec)
				res.TrialsRun++
				res.TuningDuration += rec.TrainCost.Duration + rec.RetryCost.Duration
				sloOverrun.Record(res.TuningDuration, rec.RetryCost.Duration == 0 && rec.Outcome != OutcomeFailed)
				// Inference tuning is pipelined: it adds energy but no
				// wall time (§3.3). Failed attempts and backoff waits
				// are charged like any other cost.
				res.TuningEnergyKJ += (rec.TrainCost.EnergyJ + rec.InferTuning.EnergyJ + rec.RetryCost.EnergyJ) / 1000

				mTrials.Inc()
				reg.Counter("tune.outcome." + rec.Outcome).Inc()
				mTrialDur.Observe((rec.TrainCost.Duration + rec.RetryCost.Duration).Seconds())
				mTrialEnergy.Observe((rec.TrainCost.EnergyJ + rec.InferTuning.EnergyJ + rec.RetryCost.EnergyJ) / 1000)

				if rec.Outcome == OutcomeFailed {
					// The trial is out of the bracket; nothing to learn
					// from a score that measures the injector, not the
					// configuration.
					continue
				}
				sampler.Observe(search.Observation{
					Config: population[i].cfg,
					Score:  rec.Score,
					Budget: alloc.Cost(),
				})
				if better(rec.Score, rec.Accuracy) {
					best.score = rec.Score
					best.cfg = population[i].cfg.Clone()
					best.acc = rec.Accuracy
					best.meets = rec.Accuracy >= opts.TargetAccuracy
				}
				if rec.Accuracy > res.MaxAccuracy {
					res.MaxAccuracy = rec.Accuracy
				}
				if rec.Accuracy >= opts.TargetAccuracy {
					res.ReachedTarget = true
				}
			}
			sort.Slice(population, func(a, b int) bool { return population[a].score < population[b].score })
			keep := len(population) / opts.Eta
			if keep < 1 {
				keep = 1
			}
			population = population[:keep]
			if rgSp != nil {
				rgSp.Set(obs.Int("survivors", int64(keep)))
				rgSp.End(res.TuningDuration)
			}
			if opts.Flight != nil {
				// Rung boundaries are the deterministic poll points for
				// SLO alert edges: every worker has drained the rung's
				// trials, so the snapshot (and any rising edge it
				// reveals) lands at the same simulated time every run.
				opts.Flight.ObserveSLO(res.TuningDuration, opts.SLO.Snapshot())
			}

			if opts.Checkpoint {
				cp := tuneCheckpoint{
					Key:            cpKey,
					Bracket:        bracket,
					NextRung:       rung + 1,
					Trials:         res.Trials,
					TrialsRun:      res.TrialsRun,
					TuningNanos:    int64(res.TuningDuration),
					TuningEnergyKJ: res.TuningEnergyKJ,
					MaxAccuracy:    res.MaxAccuracy,
					ReachedTarget:  res.ReachedTarget,
					Resilience:     recd.Snapshot(),
				}
				if rung+1 >= opts.Rungs {
					// Bracket boundary: the next unit of work is a
					// fresh population.
					cp.Bracket = bracket + 1
					cp.NextRung = 0
				} else {
					for _, m := range population {
						cp.Pop = append(cp.Pop, cpMember{Config: m.cfg, Score: m.score})
					}
				}
				if !math.IsInf(best.score, 1) {
					cp.HasBest = true
					cp.BestScore = best.score
					cp.BestConfig = best.cfg
					cp.BestAccuracy = best.acc
					cp.BestMeets = best.meets
				}
				if rs, ok := sampler.(search.Resumable); ok {
					state := rs.SamplerState()
					cp.Sampler = &state
				}
				if infSrv != nil {
					// The checkpoint must capture every completed
					// inference result, not leave some in the server's
					// write-behind buffer.
					if err := infSrv.FlushWrites(); err != nil {
						return res, err
					}
				}
				if err := saveCheckpoint(opts.Store, opts.CheckpointPath, cp); err != nil {
					return res, err
				}
			}
			if opts.AfterRung != nil {
				if err := opts.AfterRung(bracket, rung); err != nil {
					return res, err
				}
			}
		}
		brSp.End(res.TuningDuration)
		// StopAtTarget ends tuning at bracket granularity: the bracket
		// that first reaches the target accuracy completes its halving
		// schedule (confirming the winner at higher fidelity) and no
		// further bracket starts.
	}

	if math.IsInf(best.score, 1) {
		return res, errors.New("core: no successful trials")
	}
	res.BestConfig = best.cfg
	res.BestAccuracy = best.acc
	res.BestScore = best.score

	// Final inference recommendation for the winning architecture.
	if opts.InferenceAware {
		flops, params, err := w.PaperCost(best.cfg)
		if err != nil {
			return res, err
		}
		sig := w.Signature(best.cfg)
		out := <-infSrv.Submit(ctx, InferRequest{
			Signature:      sig,
			FLOPsPerSample: flops,
			Params:         params,
			SubmitTime:     res.TuningDuration,
			Client:         opts.Tenant,
		})
		switch {
		case out.Err == nil:
			res.Recommendation = out.Entry
		case ctx.Err() != nil:
			return res, ctx.Err()
		case transientInferError(out.Err):
			entry, derr := fallbackEntry(infSrv, opts, sig, flops, params)
			if derr != nil {
				return res, fmt.Errorf("core: recommendation unavailable: %w (fallback: %v)", out.Err, derr)
			}
			recd.AddDegraded()
			res.Recommendation = entry
			res.RecommendationDegraded = true
		default:
			return res, out.Err
		}
	}

	if infSrv != nil {
		// Zero dropped writes on the happy path: everything the server
		// completed reaches the store before it is saved or measured.
		if err := infSrv.FlushWrites(); err != nil {
			return res, err
		}
	}

	// The final checkpoint (Bracket == MaxBrackets) is kept as a durable
	// completion marker, not cleared: a rerun of the same job restores
	// it, skips the whole schedule, and re-executes nothing — the
	// job-level analogue of the store's never-re-tune-twice contract.
	// Clearing it here would open a crash window in which a process
	// killed between the clear and its exit leaves no resume state and
	// repeats the entire run; a deterministic crash loop (same kill
	// point every restart) then never terminates.
	if opts.Checkpoint && opts.CheckpointPath != "" {
		if err := opts.Store.Save(opts.CheckpointPath); err != nil {
			return res, err
		}
	}

	hits, misses := opts.Store.Stats()
	res.CacheHits = hits - startHits
	res.CacheMisses = misses - startMisses
	res.InferTuningDuration, res.ContainmentViolations = containment(res.Trials)
	return res, nil
}

// runResilientTrial wraps runTrial with the retry policy: injected
// failures are retried with exponential backoff and deterministic
// jitter up to MaxAttempts, every failed attempt and backoff wait is
// charged to the record's RetryCost, and an exhausted trial is marked
// OutcomeFailed rather than killing the whole job. The trial and each
// attempt become spans under parent, placed at start on the simulated
// timeline; failed attempts and backoff waits push the next attempt
// later, exactly as they are charged.
func runResilientTrial(ctx context.Context, runner *trial.Runner, infSrv *InferenceServer, obj Objective, opts Options, recd *counters.Resilience, inj *fault.Injector, cfg search.Config, alloc, satAlloc budget.Allocation, parent *obs.Span, start time.Duration) (TrialRecord, error) {
	var wasted perfmodel.Cost
	site := fmt.Sprintf("%s|e%d|f%g", cfg.Key(), alloc.Epochs, alloc.DataFraction)
	var trSp *obs.Span
	if parent != nil {
		trSp = parent.Child("trial", start,
			obs.Str("config", cfg.Key()),
			obs.Int("epochs", int64(alloc.Epochs)),
			obs.Float("fraction", alloc.DataFraction))
	}
	var lastClass fault.Class
	for attempt := 0; ; attempt++ {
		attStart := start + wasted.Duration
		var attSp *obs.Span
		if trSp != nil {
			attSp = trSp.Child("attempt", attStart, obs.Int("attempt", int64(attempt)))
		}
		var rec TrialRecord
		var err error
		if opts.Profile && lastClass != "" {
			// Retry attempts carry the class of the fault that killed
			// the previous one, so a profile shows what the injector's
			// turbulence actually costs, per class.
			prof.Do(ctx, func(ctx context.Context) {
				rec, err = runTrial(ctx, runner, infSrv, obj, opts, recd, cfg, alloc, satAlloc, attempt, attSp, attStart)
			}, prof.KeyFaultClass, string(lastClass))
		} else {
			rec, err = runTrial(ctx, runner, infSrv, obj, opts, recd, cfg, alloc, satAlloc, attempt, attSp, attStart)
		}
		if err == nil {
			rec.Attempts = attempt + 1
			rec.RetryCost = wasted
			if rec.Outcome == "" {
				rec.Outcome = OutcomeOK
			}
			if attSp != nil {
				attSp.Set(obs.Str("outcome", "ok"), obs.Float("energyJ", rec.TrainCost.EnergyJ))
				attSp.End(attStart + rec.TrainCost.Duration)
			}
			if trSp != nil {
				trSp.Set(obs.Str("outcome", rec.Outcome),
					obs.Float("accuracy", rec.Accuracy),
					obs.Bool("cached", rec.InferCached),
					obs.Float("energyJ", rec.TrainCost.EnergyJ+rec.InferTuning.EnergyJ+rec.RetryCost.EnergyJ))
				trSp.End(start + rec.RetryCost.Duration + rec.TrainCost.Duration)
			}
			return rec, nil
		}
		if attSp != nil {
			label := "error"
			if fault.IsFault(err) {
				label = "fault:" + string(fault.ClassOf(err))
			}
			attSp.Set(obs.Str("outcome", label), obs.Float("energyJ", rec.TrainCost.EnergyJ))
			attSp.End(attStart + rec.TrainCost.Duration)
		}
		if cerr := ctx.Err(); cerr != nil {
			// The job was cancelled; a checkpointed run resumes later.
			trSp.End(attStart + rec.TrainCost.Duration)
			return rec, cerr
		}
		if !fault.IsFault(err) {
			// Organic errors (invalid configurations, broken platforms)
			// are bugs to surface, not turbulence to ride out.
			trSp.End(attStart + rec.TrainCost.Duration)
			return rec, err
		}
		lastClass = fault.ClassOf(err)
		// Charge what the failed attempt consumed before dying. The
		// inference tuning it sheltered is pipelined, so only its
		// energy counts (as for successful trials).
		wasted.Duration += rec.TrainCost.Duration
		wasted.EnergyJ += rec.TrainCost.EnergyJ + rec.InferTuning.EnergyJ
		if attempt+1 >= opts.MaxAttempts {
			if trSp != nil {
				trSp.Set(obs.Str("outcome", OutcomeFailed), obs.Float("energyJ", wasted.EnergyJ))
				trSp.End(start + wasted.Duration)
			}
			return TrialRecord{
				Config:    cfg.Clone(),
				Alloc:     alloc,
				Outcome:   OutcomeFailed,
				Attempts:  attempt + 1,
				RetryCost: wasted,
				Score:     failedTrialScore,
			}, nil
		}
		recd.AddRetry()
		// Exponential backoff with deterministic jitter, on simulated
		// time: the cluster isn't hammered and the budget pays for the
		// wait.
		backoff := opts.RetryBaseDelay << uint(attempt)
		jitter := inj.Uniform("backoff/"+site, attempt)
		wasted.Duration += backoff + time.Duration(jitter*float64(opts.RetryBaseDelay))
	}
}

// runTrial executes one trial with the pipelined inference request of
// Algorithm 1: the request is fired before training starts, and the
// result is awaited before the trial's objective is computed. When the
// inference path is unavailable (breaker open, retries exhausted,
// reply dropped), the trial degrades to the historical store or a
// performance-model estimate instead of failing — the outcome is
// marked OutcomeDegraded so reports distinguish measured from
// estimated scores.
func runTrial(ctx context.Context, runner *trial.Runner, infSrv *InferenceServer, obj Objective, opts Options, recd *counters.Resilience, cfg search.Config, alloc, satAlloc budget.Allocation, attempt int, sp *obs.Span, start time.Duration) (TrialRecord, error) {
	rec := TrialRecord{Config: cfg.Clone(), Alloc: alloc}
	w := opts.Workload
	if _, ok := rec.Config[workload.ParamGPUs]; !ok {
		// Inference-unaware baselines fix the system configuration.
		gpus := opts.FixedGPUs
		if gpus < 1 {
			gpus = 1
		}
		rec.Config[workload.ParamGPUs] = float64(gpus)
	}

	flops, params, err := w.PaperCost(cfg)
	if err != nil {
		return rec, err
	}
	sig := w.Signature(cfg)
	var infCh <-chan InferOutcome
	if infSrv != nil {
		infCh = infSrv.Submit(ctx, InferRequest{
			Signature:      sig,
			FLOPsPerSample: flops,
			Params:         params,
			SubmitTime:     start,
			Client:         opts.Tenant,
		})
	}

	trialRes, err := runner.Run(ctx, trial.Request{Config: rec.Config, Alloc: alloc, Attempt: attempt, Span: sp, Start: start})
	if err != nil {
		// Surface the partial cost so the retry loop can charge it, and
		// drain the pipelined inference request: its tuning energy is
		// part of the wasted attempt, and leaving it in flight would
		// let a retry race against its completion.
		rec.TrainCost = trialRes.Cost
		if infCh != nil {
			if out, aerr := awaitOutcome(ctx, infCh, 30*time.Second); aerr == nil || out.TuningCost.Duration > 0 {
				rec.InferTuning = out.TuningCost
			}
		}
		return rec, err
	}
	rec.Accuracy = trialRes.Accuracy
	rec.TrainCost = trialRes.Cost

	// Projected cost of training this configuration at the saturated
	// budget, used for cross-rung comparable scoring.
	fullCost, err := perfmodel.TrainingCost(perfmodel.TrainSpec{
		FLOPsPerSample: flops,
		Params:         params,
		Samples:        w.Split.Train.PaperSamples() * satAlloc.DataFraction,
		Epochs:         satAlloc.Epochs,
		BatchSize:      int(rec.Config[workload.ParamTrainBatch]),
		GPUs:           int(rec.Config[workload.ParamGPUs]),
	}, opts.GPU)
	if err != nil {
		return rec, err
	}

	var inf perfmodel.InferResult
	if infSrv != nil {
		out, err := awaitOutcome(ctx, infCh, 30*time.Second)
		switch {
		case err == nil:
			rec.InferCached = out.Cached
			rec.InferTuning = out.TuningCost
			inf = perfmodel.InferResult{
				Throughput:       out.Entry.Throughput,
				EnergyPerSampleJ: out.Entry.EnergyPerSampleJ,
			}
		case ctx.Err() != nil:
			return rec, ctx.Err()
		case transientInferError(err):
			rec.InferTuning = out.TuningCost
			// One cheap resubmit first: a dropped reply whose result
			// reached the store resolves instantly from the fast path.
			recd.AddRetry()
			retry := <-infSrv.Submit(ctx, InferRequest{
				Signature:      sig,
				FLOPsPerSample: flops,
				Params:         params,
				SubmitTime:     start,
				Client:         opts.Tenant,
			})
			if retry.Err == nil {
				rec.InferCached = retry.Cached
				rec.InferTuning = rec.InferTuning.Add(retry.TuningCost)
				inf = perfmodel.InferResult{
					Throughput:       retry.Entry.Throughput,
					EnergyPerSampleJ: retry.Entry.EnergyPerSampleJ,
				}
				break
			}
			// Graceful degradation: historical entry, else estimate.
			entry, derr := fallbackEntry(infSrv, opts, sig, flops, params)
			if derr != nil {
				return rec, fmt.Errorf("core: inference unavailable: %w (fallback: %v)", err, derr)
			}
			recd.AddDegraded()
			rec.Outcome = OutcomeDegraded
			inf = perfmodel.InferResult{
				Throughput:       entry.Throughput,
				EnergyPerSampleJ: entry.EnergyPerSampleJ,
			}
		default:
			return rec, err
		}
	}

	switch {
	case opts.AccuracyOnly:
		rec.Score = 1 - trialRes.Accuracy
	case infSrv != nil:
		rec.Score = obj.ModelScore(fullCost, inf, trialRes.Accuracy)
	default:
		rec.Score = obj.TrainOnlyScore(fullCost, trialRes.Accuracy)
	}
	return rec, nil
}

// fallbackEntry produces degraded inference data for an architecture
// when live tuning is unavailable: the historical store entry if one
// exists (read through the server's write-behind buffer, so freshly
// tuned but unflushed results still count), otherwise the performance
// model's estimate of the device's untuned default configuration.
func fallbackEntry(infSrv *InferenceServer, opts Options, sig string, flops, params float64) (store.Entry, error) {
	if infSrv != nil {
		if e, err := infSrv.LookupStored(sig); err == nil {
			return e, nil
		}
	} else if e, err := opts.Store.Get(sig, opts.Device.Profile.Name); err == nil {
		return e, nil
	}
	spec := opts.Device.DefaultSpec(flops, params)
	r, err := opts.Device.Estimate(spec)
	if err != nil {
		return store.Entry{}, err
	}
	return store.Entry{
		Signature: sig,
		Device:    opts.Device.Profile.Name,
		Config: search.Config{
			workload.ParamInferBatch: float64(spec.BatchSize),
			workload.ParamCores:      float64(spec.Cores),
			workload.ParamFreq:       spec.FreqGHz,
		},
		Throughput:       r.Throughput,
		EnergyPerSampleJ: r.EnergyPerSampleJ,
		LatencySeconds:   r.BatchLatency.Seconds(),
	}, nil
}

// containment sums the pipelined inference-tuning durations and counts
// trials where that duration exceeded the sheltering training trial.
func containment(trials []TrialRecord) (time.Duration, int) {
	var total time.Duration
	violations := 0
	for _, t := range trials {
		total += t.InferTuning.Duration
		if t.InferTuning.Duration > t.TrainCost.Duration {
			violations++
		}
	}
	return total, violations
}
