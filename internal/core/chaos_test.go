package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"edgetune/internal/fault"
	"edgetune/internal/store"
)

// chaosOptions is smallOptions with one fault class dialled up.
func chaosOptions(cfg fault.Config) Options {
	opts := smallOptions("IC")
	opts.Fault = cfg
	return opts
}

// TestTuneUnderEachFaultClass drives the full tuning loop with each
// fault class at a substantial rate: the job must still return a
// recommendation, record the injected faults, and be deterministic
// across identical runs.
func TestTuneUnderEachFaultClass(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	cases := []struct {
		name  string
		class fault.Class
		cfg   fault.Config
	}{
		{"trial-crash", fault.TrialCrash, fault.Config{TrialCrash: 0.15}},
		{"trial-nan", fault.TrialNaN, fault.Config{TrialNaN: 0.15}},
		{"straggler", fault.Straggler, fault.Config{Straggler: 0.25, StragglerFactor: 3}},
		{"device-flap", fault.DeviceFlap, fault.Config{DeviceFlap: 0.2}},
		{"store-write", fault.StoreWrite, fault.Config{StoreWrite: 0.2}},
		{"dropped-reply", fault.DroppedReply, fault.Config{DroppedReply: 0.2}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			a, err := Tune(context.Background(), chaosOptions(tc.cfg))
			if err != nil {
				t.Fatal(err)
			}
			if a.Recommendation.Signature == "" {
				t.Error("no recommendation under faults")
			}
			if a.BestConfig == nil {
				t.Error("no best config under faults")
			}
			if got := a.Resilience.FaultCount(string(tc.class)); got == 0 {
				t.Errorf("no %s faults recorded in %d trials", tc.class, a.TrialsRun)
			}
			b, err := Tune(context.Background(), chaosOptions(tc.cfg))
			if err != nil {
				t.Fatal(err)
			}
			if a.BestScore != b.BestScore || a.TuningDuration != b.TuningDuration {
				t.Errorf("same-seed chaos runs differ: %v/%v vs %v/%v",
					a.BestScore, a.TuningDuration, b.BestScore, b.TuningDuration)
			}
			if !reflect.DeepEqual(a.Resilience, b.Resilience) {
				t.Errorf("resilience counters differ across identical runs:\n%+v\n%+v",
					a.Resilience, b.Resilience)
			}
		})
	}
}

// TestTuneUnderCombinedFaults turns every class on at once.
func TestTuneUnderCombinedFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	cfg := fault.Config{
		TrialCrash:   0.1,
		TrialNaN:     0.1,
		Straggler:    0.1,
		DeviceFlap:   0.1,
		StoreWrite:   0.1,
		DroppedReply: 0.1,
	}
	res, err := Tune(context.Background(), chaosOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if res.Recommendation.Signature == "" {
		t.Error("no recommendation under combined faults")
	}
	if res.Resilience.TotalFaults == 0 {
		t.Error("no faults recorded with every class enabled")
	}
	// Retry cost must be charged to the budget: a clean run of the same
	// job is never more expensive.
	clean, err := Tune(context.Background(), smallOptions("IC"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilience.Retries > 0 && res.TuningDuration <= clean.TuningDuration {
		t.Errorf("faulty run (%d retries) not costlier: %v vs clean %v",
			res.Resilience.Retries, res.TuningDuration, clean.TuningDuration)
	}
}

// TestTuneDegradesWhenDeviceIsDown: with the device flapping on every
// request, the breaker must open and the tuner must fall back to
// estimated inference data — degraded, but a recommendation all the
// same.
func TestTuneDegradesWhenDeviceIsDown(t *testing.T) {
	res, err := Tune(context.Background(), chaosOptions(fault.Config{DeviceFlap: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilience.BreakerOpens == 0 {
		t.Error("breaker never opened with the device permanently down")
	}
	if res.Resilience.Degraded == 0 {
		t.Error("no degraded outcomes with live inference impossible")
	}
	if !res.RecommendationDegraded {
		t.Error("final recommendation not marked degraded")
	}
	if res.Recommendation.Throughput <= 0 {
		t.Errorf("degraded recommendation implausible: %+v", res.Recommendation)
	}
	degraded := 0
	for _, tr := range res.Trials {
		if tr.Outcome == OutcomeDegraded {
			degraded++
		}
	}
	if degraded == 0 {
		t.Error("no trial records marked degraded")
	}
}

// TestTuneFailedTrialsAreDropped: with crashes certain, every trial
// exhausts its attempts; the bracket completes with failed records and
// the job reports that nothing succeeded instead of crashing.
func TestTuneAllTrialsFail(t *testing.T) {
	opts := chaosOptions(fault.Config{TrialCrash: 1})
	opts.MaxBrackets = 1
	_, err := Tune(context.Background(), opts)
	if err == nil || err.Error() != "core: no successful trials" {
		t.Errorf("err = %v, want no-successful-trials", err)
	}
}

// TestTuneFailedTrialAccounting: at a moderate crash rate, failed and
// retried trials appear in the records with their attempts and retry
// cost, and failed trials never win.
func TestTuneFailedTrialAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	opts := chaosOptions(fault.Config{TrialCrash: 0.4})
	opts.MaxAttempts = 2
	res, err := Tune(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	sawRetry, sawFailed := false, false
	for _, tr := range res.Trials {
		if tr.Attempts > 1 {
			sawRetry = true
			if tr.RetryCost.Duration <= 0 {
				t.Errorf("retried trial charged no retry cost: %+v", tr)
			}
		}
		if tr.Outcome == OutcomeFailed {
			sawFailed = true
			if tr.Score != failedTrialScore {
				t.Errorf("failed trial score = %v", tr.Score)
			}
			if tr.Config.Key() == res.BestConfig.Key() && res.BestScore == failedTrialScore {
				t.Error("failed trial selected as best")
			}
		}
	}
	if !sawRetry {
		t.Error("no retried trials at 40% crash rate")
	}
	if !sawFailed {
		t.Skip("no exhausted trials this seed; retry accounting still covered")
	}
}

// errKilled simulates a process kill at a rung boundary.
var errKilled = errors.New("chaos: killed")

// TestTuneCheckpointResume kills the job after an early rung and
// resumes it from the store checkpoint: the resumed run must re-execute
// zero completed rungs and finish the full schedule.
func TestTuneCheckpointResume(t *testing.T) {
	st := store.New()
	makeOpts := func() Options {
		opts := smallOptions("IC")
		opts.Store = st
		opts.Checkpoint = true
		return opts
	}

	// Reference: the same job uninterrupted, on a fresh store.
	full, err := Tune(context.Background(), func() Options {
		o := smallOptions("IC")
		o.Checkpoint = true
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: kill after bracket 0, rung 1.
	partialOpts := makeOpts()
	partialOpts.afterRung = func(bracket, rung int) error {
		if bracket == 0 && rung == 1 {
			return errKilled
		}
		return nil
	}
	partial, err := Tune(context.Background(), partialOpts)
	if !errors.Is(err, errKilled) {
		t.Fatalf("kill hook not honoured: %v", err)
	}
	if partial.TrialsRun == 0 || partial.TrialsRun >= full.TrialsRun {
		t.Fatalf("partial run executed %d trials, full schedule is %d", partial.TrialsRun, full.TrialsRun)
	}
	if len(st.CheckpointKeys()) != 1 {
		t.Fatalf("checkpoint keys = %v", st.CheckpointKeys())
	}

	// Phase 2: resume with identical options against the same store.
	resumed, err := Tune(context.Background(), makeOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Zero re-execution: the restored trials plus the freshly executed
	// ones exactly fill the schedule.
	if resumed.TrialsRun != full.TrialsRun {
		t.Errorf("resumed run finished with %d trials, schedule is %d (re-ran completed rungs?)",
			resumed.TrialsRun, full.TrialsRun)
	}
	newTrials := resumed.TrialsRun - partial.TrialsRun
	if newTrials <= 0 || newTrials >= full.TrialsRun {
		t.Errorf("resume executed %d new trials, want a strict remainder of %d", newTrials, full.TrialsRun)
	}
	if resumed.Resilience.ResumedRungs != 2 {
		t.Errorf("ResumedRungs = %d, want 2", resumed.Resilience.ResumedRungs)
	}
	// Each (bracket, rung) slot holds exactly the halving schedule's
	// population — a re-executed rung would double its records.
	wantPerRung := map[[2]int]int{}
	for _, tr := range full.Trials {
		wantPerRung[[2]int{tr.Bracket, tr.Rung}]++
	}
	gotPerRung := map[[2]int]int{}
	for _, tr := range resumed.Trials {
		gotPerRung[[2]int{tr.Bracket, tr.Rung}]++
	}
	if !reflect.DeepEqual(wantPerRung, gotPerRung) {
		t.Errorf("per-rung trial counts differ:\nfull:    %v\nresumed: %v", wantPerRung, gotPerRung)
	}
	if resumed.Recommendation.Signature == "" {
		t.Error("resumed run produced no recommendation")
	}
	// A successful run retires its checkpoint.
	if keys := st.CheckpointKeys(); len(keys) != 0 {
		t.Errorf("checkpoint not cleared after success: %v", keys)
	}
}

// TestTuneCheckpointResumeAtBracketBoundary kills exactly at the end of
// bracket 0; the resume must start bracket 1 with a fresh population.
func TestTuneCheckpointResumeAtBracketBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	st := store.New()
	opts := smallOptions("IC")
	opts.Store = st
	opts.Checkpoint = true
	opts.afterRung = func(bracket, rung int) error {
		if bracket == 0 && rung == opts.Rungs-1 {
			return errKilled
		}
		return nil
	}
	partial, err := Tune(context.Background(), opts)
	if !errors.Is(err, errKilled) {
		t.Fatalf("kill hook not honoured: %v", err)
	}
	opts.afterRung = nil
	resumed, err := Tune(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resilience.ResumedRungs != int64(opts.Rungs) {
		t.Errorf("ResumedRungs = %d, want %d", resumed.Resilience.ResumedRungs, opts.Rungs)
	}
	if resumed.TrialsRun != 2*partial.TrialsRun {
		t.Errorf("resumed %d trials, want %d (one full extra bracket)", resumed.TrialsRun, 2*partial.TrialsRun)
	}
	for _, tr := range resumed.Trials[partial.TrialsRun:] {
		if tr.Bracket != 1 {
			t.Fatalf("resume re-entered bracket %d", tr.Bracket)
		}
	}
}

// TestTuneCheckpointSurvivesKill persists checkpoints through the store
// file, as a killed process would leave behind, and resumes from a
// freshly loaded store.
func TestTuneCheckpointSurvivesKill(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	path := t.TempDir() + "/store.json"
	opts := smallOptions("IC")
	opts.Store = store.New()
	opts.Checkpoint = true
	opts.CheckpointPath = path
	opts.afterRung = func(bracket, rung int) error {
		if bracket == 0 && rung == 0 {
			return errKilled
		}
		return nil
	}
	partial, err := Tune(context.Background(), opts)
	if !errors.Is(err, errKilled) {
		t.Fatalf("kill hook not honoured: %v", err)
	}

	// "New process": reload everything from disk.
	loaded, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	opts2 := smallOptions("IC")
	opts2.Store = loaded
	opts2.Checkpoint = true
	opts2.CheckpointPath = path
	resumed, err := Tune(context.Background(), opts2)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resilience.ResumedRungs != 1 {
		t.Errorf("ResumedRungs = %d, want 1", resumed.Resilience.ResumedRungs)
	}
	if resumed.TrialsRun <= partial.TrialsRun {
		t.Error("resume from disk did not continue the schedule")
	}
	if keys := loaded.CheckpointKeys(); len(keys) != 0 {
		t.Errorf("checkpoint not cleared: %v", keys)
	}
}

// TestTuneCheckpointIgnoredForDifferentJob: a checkpoint must only be
// resumed by the job shape that wrote it.
func TestTuneCheckpointIgnoredForDifferentJob(t *testing.T) {
	st := store.New()
	opts := smallOptions("IC")
	opts.Store = st
	opts.Checkpoint = true
	opts.afterRung = func(bracket, rung int) error { return errKilled }
	if _, err := Tune(context.Background(), opts); !errors.Is(err, errKilled) {
		t.Fatal(err)
	}
	other := smallOptions("IC")
	other.Store = st
	other.Checkpoint = true
	other.Seed = 99 // different job shape -> different checkpoint key
	res, err := Tune(context.Background(), other)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilience.ResumedRungs != 0 {
		t.Errorf("foreign checkpoint resumed %d rungs", res.Resilience.ResumedRungs)
	}
}

// TestTuneChaosWithCheckpointDeterministic: checkpointing plus faults
// plus a kill/resume still yields deterministic resilience accounting
// for the resumed portion.
func TestTuneChaosResumeCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	st := store.New()
	opts := chaosOptions(fault.Config{TrialCrash: 0.1, DroppedReply: 0.1})
	opts.Store = st
	opts.Checkpoint = true
	opts.afterRung = func(bracket, rung int) error {
		if bracket == 1 && rung == 0 {
			return errKilled
		}
		return nil
	}
	if _, err := Tune(context.Background(), opts); !errors.Is(err, errKilled) {
		t.Fatal(err)
	}
	opts.afterRung = nil
	resumed, err := Tune(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Recommendation.Signature == "" {
		t.Error("no recommendation after chaotic resume")
	}
	if resumed.Resilience.ResumedRungs == 0 {
		t.Error("resume did not skip completed rungs")
	}
}
