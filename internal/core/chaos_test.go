package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"edgetune/internal/counters"
	"edgetune/internal/device"
	"edgetune/internal/fault"
	"edgetune/internal/store"
	"edgetune/internal/testutil"
)

// chaosOptions is smallOptions with one fault class dialled up.
func chaosOptions(cfg fault.Config) Options {
	opts := smallOptions("IC")
	opts.Fault = cfg
	return opts
}

// TestTuneUnderEachFaultClass drives the full tuning loop with each
// fault class at a substantial rate: the job must still return a
// recommendation, record the injected faults, and be deterministic
// across identical runs.
func TestTuneUnderEachFaultClass(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	cases := []struct {
		name  string
		class fault.Class
		cfg   fault.Config
	}{
		{"trial-crash", fault.TrialCrash, fault.Config{TrialCrash: 0.15}},
		{"trial-nan", fault.TrialNaN, fault.Config{TrialNaN: 0.15}},
		{"straggler", fault.Straggler, fault.Config{Straggler: 0.25, StragglerFactor: 3}},
		// The small job tunes few unique architectures, so per-request
		// classes need a high rate to fire reliably.
		{"device-flap", fault.DeviceFlap, fault.Config{DeviceFlap: 0.5}},
		{"store-write", fault.StoreWrite, fault.Config{StoreWrite: 0.2}},
		{"dropped-reply", fault.DroppedReply, fault.Config{DroppedReply: 0.2}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			a, err := Tune(context.Background(), chaosOptions(tc.cfg))
			if err != nil {
				t.Fatal(err)
			}
			if a.Recommendation.Signature == "" {
				t.Error("no recommendation under faults")
			}
			if a.BestConfig == nil {
				t.Error("no best config under faults")
			}
			if got := a.Resilience.FaultCount(string(tc.class)); got == 0 {
				t.Errorf("no %s faults recorded in %d trials", tc.class, a.TrialsRun)
			}
			b, err := Tune(context.Background(), chaosOptions(tc.cfg))
			if err != nil {
				t.Fatal(err)
			}
			if a.BestScore != b.BestScore || a.TuningDuration != b.TuningDuration {
				t.Errorf("same-seed chaos runs differ: %v/%v vs %v/%v",
					a.BestScore, a.TuningDuration, b.BestScore, b.TuningDuration)
			}
			if !reflect.DeepEqual(a.Resilience, b.Resilience) {
				t.Errorf("resilience counters differ across identical runs:\n%+v\n%+v",
					a.Resilience, b.Resilience)
			}
		})
	}
}

// TestTuneUnderCombinedFaults turns every class on at once.
func TestTuneUnderCombinedFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	cfg := fault.Config{
		TrialCrash:   0.1,
		TrialNaN:     0.1,
		Straggler:    0.1,
		DeviceFlap:   0.1,
		StoreWrite:   0.1,
		DroppedReply: 0.1,
	}
	res, err := Tune(context.Background(), chaosOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if res.Recommendation.Signature == "" {
		t.Error("no recommendation under combined faults")
	}
	if res.Resilience.TotalFaults == 0 {
		t.Error("no faults recorded with every class enabled")
	}
	// Retry cost must be charged to the budget: a clean run of the same
	// job is never more expensive.
	clean, err := Tune(context.Background(), smallOptions("IC"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilience.Retries > 0 && res.TuningDuration <= clean.TuningDuration {
		t.Errorf("faulty run (%d retries) not costlier: %v vs clean %v",
			res.Resilience.Retries, res.TuningDuration, clean.TuningDuration)
	}
}

// TestTuneDegradesWhenDeviceIsDown: with the device flapping on every
// request, the breaker must open and the tuner must fall back to
// estimated inference data — degraded, but a recommendation all the
// same.
func TestTuneDegradesWhenDeviceIsDown(t *testing.T) {
	res, err := Tune(context.Background(), chaosOptions(fault.Config{DeviceFlap: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilience.BreakerOpens == 0 {
		t.Error("breaker never opened with the device permanently down")
	}
	if res.Resilience.Degraded == 0 {
		t.Error("no degraded outcomes with live inference impossible")
	}
	if !res.RecommendationDegraded {
		t.Error("final recommendation not marked degraded")
	}
	if res.Recommendation.Throughput <= 0 {
		t.Errorf("degraded recommendation implausible: %+v", res.Recommendation)
	}
	degraded := 0
	for _, tr := range res.Trials {
		if tr.Outcome == OutcomeDegraded {
			degraded++
		}
	}
	if degraded == 0 {
		t.Error("no trial records marked degraded")
	}
}

// TestTuneFailedTrialsAreDropped: with crashes certain, every trial
// exhausts its attempts; the bracket completes with failed records and
// the job reports that nothing succeeded instead of crashing.
func TestTuneAllTrialsFail(t *testing.T) {
	opts := chaosOptions(fault.Config{TrialCrash: 1})
	opts.MaxBrackets = 1
	_, err := Tune(context.Background(), opts)
	if err == nil || err.Error() != "core: no successful trials" {
		t.Errorf("err = %v, want no-successful-trials", err)
	}
}

// TestTuneFailedTrialAccounting: at a moderate crash rate, failed and
// retried trials appear in the records with their attempts and retry
// cost, and failed trials never win.
func TestTuneFailedTrialAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	opts := chaosOptions(fault.Config{TrialCrash: 0.4})
	opts.MaxAttempts = 2
	res, err := Tune(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	sawRetry, sawFailed := false, false
	for _, tr := range res.Trials {
		if tr.Attempts > 1 {
			sawRetry = true
			if tr.RetryCost.Duration <= 0 {
				t.Errorf("retried trial charged no retry cost: %+v", tr)
			}
		}
		if tr.Outcome == OutcomeFailed {
			sawFailed = true
			if tr.Score != failedTrialScore {
				t.Errorf("failed trial score = %v", tr.Score)
			}
			if tr.Config.Key() == res.BestConfig.Key() && res.BestScore == failedTrialScore {
				t.Error("failed trial selected as best")
			}
		}
	}
	if !sawRetry {
		t.Error("no retried trials at 40% crash rate")
	}
	if !sawFailed {
		t.Skip("no exhausted trials this seed; retry accounting still covered")
	}
}

// errKilled simulates a process kill at a rung boundary.
var errKilled = errors.New("chaos: killed")

// TestTuneCheckpointResume kills the job after an early rung and
// resumes it from the store checkpoint: the resumed run must re-execute
// zero completed rungs and finish the full schedule.
func TestTuneCheckpointResume(t *testing.T) {
	st := store.New()
	makeOpts := func() Options {
		opts := smallOptions("IC")
		opts.Store = st
		opts.Checkpoint = true
		return opts
	}

	// Reference: the same job uninterrupted, on a fresh store.
	full, err := Tune(context.Background(), func() Options {
		o := smallOptions("IC")
		o.Checkpoint = true
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: kill after bracket 0, rung 1.
	partialOpts := makeOpts()
	partialOpts.AfterRung = func(bracket, rung int) error {
		if bracket == 0 && rung == 1 {
			return errKilled
		}
		return nil
	}
	partial, err := Tune(context.Background(), partialOpts)
	if !errors.Is(err, errKilled) {
		t.Fatalf("kill hook not honoured: %v", err)
	}
	if partial.TrialsRun == 0 || partial.TrialsRun >= full.TrialsRun {
		t.Fatalf("partial run executed %d trials, full schedule is %d", partial.TrialsRun, full.TrialsRun)
	}
	if len(st.CheckpointKeys()) != 1 {
		t.Fatalf("checkpoint keys = %v", st.CheckpointKeys())
	}

	// Phase 2: resume with identical options against the same store.
	resumed, err := Tune(context.Background(), makeOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Zero re-execution: the restored trials plus the freshly executed
	// ones exactly fill the schedule.
	if resumed.TrialsRun != full.TrialsRun {
		t.Errorf("resumed run finished with %d trials, schedule is %d (re-ran completed rungs?)",
			resumed.TrialsRun, full.TrialsRun)
	}
	newTrials := resumed.TrialsRun - partial.TrialsRun
	if newTrials <= 0 || newTrials >= full.TrialsRun {
		t.Errorf("resume executed %d new trials, want a strict remainder of %d", newTrials, full.TrialsRun)
	}
	if resumed.Resilience.ResumedRungs != 2 {
		t.Errorf("ResumedRungs = %d, want 2", resumed.Resilience.ResumedRungs)
	}
	// Each (bracket, rung) slot holds exactly the halving schedule's
	// population — a re-executed rung would double its records.
	wantPerRung := map[[2]int]int{}
	for _, tr := range full.Trials {
		wantPerRung[[2]int{tr.Bracket, tr.Rung}]++
	}
	gotPerRung := map[[2]int]int{}
	for _, tr := range resumed.Trials {
		gotPerRung[[2]int{tr.Bracket, tr.Rung}]++
	}
	if !reflect.DeepEqual(wantPerRung, gotPerRung) {
		t.Errorf("per-rung trial counts differ:\nfull:    %v\nresumed: %v", wantPerRung, gotPerRung)
	}
	if resumed.Recommendation.Signature == "" {
		t.Error("resumed run produced no recommendation")
	}
	// A successful run keeps its final checkpoint as a durable
	// completion marker (so a crash-looping restart converges instead
	// of re-running the schedule); rerunning the identical job must
	// restore it and re-execute nothing.
	if keys := st.CheckpointKeys(); len(keys) != 1 {
		t.Errorf("completion checkpoint not retained: %v", keys)
	}
	rerun, err := Tune(context.Background(), makeOpts())
	if err != nil {
		t.Fatal(err)
	}
	// The restored resilience snapshot is cumulative, so the rerun
	// reports at least the full schedule (plus the earlier resume's 2).
	if rerun.Resilience.ResumedRungs < int64(2*smallOptions("IC").Rungs) {
		t.Errorf("rerun resumed %d rungs, want at least the full schedule", rerun.Resilience.ResumedRungs)
	}
	if rerun.TrialsRun != full.TrialsRun {
		t.Errorf("rerun reports %d trials, want the restored %d", rerun.TrialsRun, full.TrialsRun)
	}
	if !reflect.DeepEqual(rerun.BestConfig, resumed.BestConfig) {
		t.Errorf("rerun best config %v != %v", rerun.BestConfig, resumed.BestConfig)
	}
}

// TestTuneCheckpointResumeAtBracketBoundary kills exactly at the end of
// bracket 0; the resume must start bracket 1 with a fresh population.
func TestTuneCheckpointResumeAtBracketBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	st := store.New()
	opts := smallOptions("IC")
	opts.Store = st
	opts.Checkpoint = true
	opts.AfterRung = func(bracket, rung int) error {
		if bracket == 0 && rung == opts.Rungs-1 {
			return errKilled
		}
		return nil
	}
	partial, err := Tune(context.Background(), opts)
	if !errors.Is(err, errKilled) {
		t.Fatalf("kill hook not honoured: %v", err)
	}
	opts.AfterRung = nil
	resumed, err := Tune(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resilience.ResumedRungs != int64(opts.Rungs) {
		t.Errorf("ResumedRungs = %d, want %d", resumed.Resilience.ResumedRungs, opts.Rungs)
	}
	if resumed.TrialsRun != 2*partial.TrialsRun {
		t.Errorf("resumed %d trials, want %d (one full extra bracket)", resumed.TrialsRun, 2*partial.TrialsRun)
	}
	for _, tr := range resumed.Trials[partial.TrialsRun:] {
		if tr.Bracket != 1 {
			t.Fatalf("resume re-entered bracket %d", tr.Bracket)
		}
	}
}

// TestTuneCheckpointSurvivesKill persists checkpoints through the store
// file, as a killed process would leave behind, and resumes from a
// freshly loaded store.
func TestTuneCheckpointSurvivesKill(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	path := t.TempDir() + "/store.json"
	opts := smallOptions("IC")
	opts.Store = store.New()
	opts.Checkpoint = true
	opts.CheckpointPath = path
	opts.AfterRung = func(bracket, rung int) error {
		if bracket == 0 && rung == 0 {
			return errKilled
		}
		return nil
	}
	partial, err := Tune(context.Background(), opts)
	if !errors.Is(err, errKilled) {
		t.Fatalf("kill hook not honoured: %v", err)
	}

	// "New process": reload everything from disk.
	loaded, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	opts2 := smallOptions("IC")
	opts2.Store = loaded
	opts2.Checkpoint = true
	opts2.CheckpointPath = path
	resumed, err := Tune(context.Background(), opts2)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resilience.ResumedRungs != 1 {
		t.Errorf("ResumedRungs = %d, want 1", resumed.Resilience.ResumedRungs)
	}
	if resumed.TrialsRun <= partial.TrialsRun {
		t.Error("resume from disk did not continue the schedule")
	}
	if keys := loaded.CheckpointKeys(); len(keys) != 1 {
		t.Errorf("completion checkpoint not retained: %v", keys)
	}
}

// TestTuneCheckpointIgnoredForDifferentJob: a checkpoint must only be
// resumed by the job shape that wrote it.
func TestTuneCheckpointIgnoredForDifferentJob(t *testing.T) {
	st := store.New()
	opts := smallOptions("IC")
	opts.Store = st
	opts.Checkpoint = true
	opts.AfterRung = func(bracket, rung int) error { return errKilled }
	if _, err := Tune(context.Background(), opts); !errors.Is(err, errKilled) {
		t.Fatal(err)
	}
	other := smallOptions("IC")
	other.Store = st
	other.Checkpoint = true
	other.Seed = 99 // different job shape -> different checkpoint key
	res, err := Tune(context.Background(), other)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilience.ResumedRungs != 0 {
		t.Errorf("foreign checkpoint resumed %d rungs", res.Resilience.ResumedRungs)
	}
}

// TestTuneChaosWithCheckpointDeterministic: checkpointing plus faults
// plus a kill/resume still yields deterministic resilience accounting
// for the resumed portion.
func TestTuneChaosResumeCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	st := store.New()
	opts := chaosOptions(fault.Config{TrialCrash: 0.1, DroppedReply: 0.1})
	opts.Store = st
	opts.Checkpoint = true
	opts.AfterRung = func(bracket, rung int) error {
		if bracket == 1 && rung == 0 {
			return errKilled
		}
		return nil
	}
	if _, err := Tune(context.Background(), opts); !errors.Is(err, errKilled) {
		t.Fatal(err)
	}
	opts.AfterRung = nil
	resumed, err := Tune(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Recommendation.Signature == "" {
		t.Error("no recommendation after chaotic resume")
	}
	if resumed.Resilience.ResumedRungs == 0 {
		t.Error("resume did not skip completed rungs")
	}
}

// overloadDigest captures everything observable about one overload
// scenario run, for the same-seed determinism comparison.
type overloadDigest struct {
	Outcomes   []string
	Phase1Shed int64
	Resilience counters.ResilienceSnapshot
	Pending    int
	Stored     int
}

// runOverloadScenario drives the serving acceptance scenario: a twin-I7
// pool with brown-outs and injected overload bursts, a saturation burst
// past the admission limit, then a graceful drain.
func runOverloadScenario(t *testing.T) overloadDigest {
	t.Helper()
	inj, err := fault.NewInjector(fault.Config{
		DeviceBrownout: 0.3,
		BrownoutFactor: 10,
		OverloadBurst:  0.1,
	}, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	srv, rec := servingServer(t, st, func(o *InferenceServerOptions) {
		o.Pool = []device.Device{device.I7(), i7Twin()}
		o.Workers = 2
		o.QueueLimit = 8
		o.HedgeFactor = 1.5
		o.Seed = 42
		o.Fault = inj
	})

	// Phase 1 — saturation: freeze the workers and burst 32 unique
	// submissions at the gate. Exactly QueueLimit are admitted no
	// matter how fast workers would have drained, because the bound
	// covers queued + in-flight.
	srv.adm.setHold(true)
	chs := make([]<-chan InferOutcome, 0, 36)
	for i := 0; i < 32; i++ {
		chs = append(chs, srv.Submit(context.Background(), sigRequest(i)))
	}
	if got := srv.adm.inSystem(); got != 8 {
		t.Errorf("saturated in-system = %d, want exactly QueueLimit 8", got)
	}
	srv.adm.setHold(false)

	// Phase 2 — drain under load: freeze again, queue a few more, then
	// drain gracefully while they are still queued.
	outs := make([]InferOutcome, 0, 36)
	for i := 0; i < 32; i++ {
		outs = append(outs, mustOutcome(t, chs[i])) // settle phase 1 before freezing again
	}
	phase1Shed := rec.Snapshot().Shed
	srv.adm.setHold(true)
	for i := 32; i < 36; i++ {
		chs = append(chs, srv.Submit(context.Background(), sigRequest(i)))
	}
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()
	for !srv.adm.isRejecting() {
		time.Sleep(time.Millisecond)
	}
	srv.adm.setHold(false)
	select {
	case err := <-drained:
		if err != nil {
			t.Errorf("graceful drain under load: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain never completed")
	}
	if out := mustOutcome(t, srv.Submit(context.Background(), sigRequest(99))); !errors.Is(out.Err, ErrServerClosed) {
		t.Errorf("submit after drain err = %v, want ErrServerClosed", out.Err)
	}

	for i := 32; i < 36; i++ {
		outs = append(outs, mustOutcome(t, chs[i]))
	}

	// Digest every outcome plus the final counters and store state.
	d := overloadDigest{Phase1Shed: phase1Shed, Resilience: rec.Snapshot(), Pending: srv.writes.Pending()}
	for i, out := range outs {
		switch {
		case out.Err == nil:
			d.Outcomes = append(d.Outcomes, fmt.Sprintf("ok@%s hedged=%v lat=%d", out.Device, out.Hedged, out.Latency))
			// Zero dropped writes: every success must be in the store
			// after the drain.
			if _, err := st.Get(sigRequest(i).Signature, out.Device); err != nil {
				t.Errorf("successful outcome %d missing from store: %v", i, err)
			}
			d.Stored++
		case errors.Is(out.Err, ErrServerClosed):
			d.Outcomes = append(d.Outcomes, "closed")
		case errors.Is(out.Err, ErrOverloaded):
			d.Outcomes = append(d.Outcomes, "shed")
		default:
			d.Outcomes = append(d.Outcomes, "err:"+out.Err.Error())
		}
	}
	return d
}

// TestInferenceServerOverloadBrownoutChaos is the serving acceptance
// test: sustained overload with a browning-out pool must shed
// deterministically, hedge stragglers, lose no completed store write,
// leak no goroutines, and replay identically under the same seed.
func TestInferenceServerOverloadBrownoutChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	// No goroutine leak: workers, flushers, and watchers must all be
	// gone once both scenario runs have drained their servers.
	testutil.CheckGoroutineLeak(t, 2)
	a := runOverloadScenario(t)

	if a.Phase1Shed != 24 {
		t.Errorf("phase-1 shed = %d, want 24 (32 submissions - 8 queue slots)", a.Phase1Shed)
	}
	if a.Resilience.Hedges == 0 {
		t.Error("no hedges under 30%% brown-outs")
	}
	if a.Resilience.Drained == 0 {
		t.Error("no requests recorded as completed during drain")
	}
	if a.Pending != 0 {
		t.Errorf("%d writes still pending after drain", a.Pending)
	}
	if a.Stored == 0 {
		t.Error("no successful outcomes stored")
	}

	b := runOverloadScenario(t)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed overload scenarios diverged:\n%+v\n%+v", a, b)
	}
}

// TestHedgingImprovesTailLatency: under injected brown-out stragglers,
// hedged serving must strictly beat the no-hedge baseline at the tail
// (p99), and never be worse on any individual request.
func TestHedgingImprovesTailLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	const n = 60
	run := func(disable bool) []time.Duration {
		inj, err := fault.NewInjector(fault.Config{DeviceBrownout: 0.3, BrownoutFactor: 12}, 9, nil)
		if err != nil {
			t.Fatal(err)
		}
		srv, _ := servingServer(t, store.New(), func(o *InferenceServerOptions) {
			o.Pool = []device.Device{device.I7(), i7Twin()}
			o.HedgeFactor = 1.5
			o.Seed = 9
			o.Fault = inj
			o.DisableHedging = disable
		})
		lats := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			out := mustOutcome(t, srv.Submit(context.Background(), sigRequest(i)))
			if out.Err != nil {
				t.Fatalf("request %d failed: %v", i, out.Err)
			}
			lats = append(lats, out.Latency)
		}
		return lats
	}

	// The runs are compared distributionally, not pointwise: health
	// scoring reacts to the hedge observations too, so later requests
	// may route (and roll brown-outs) differently between the two runs.
	hedged := run(false)
	plain := run(true)
	h, p := append([]time.Duration(nil), hedged...), append([]time.Duration(nil), plain...)
	sort.Slice(h, func(i, j int) bool { return h[i] < h[j] })
	sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
	idx := n * 99 / 100
	if h[idx] >= p[idx] {
		t.Errorf("hedged p99 %v not strictly below baseline p99 %v", h[idx], p[idx])
	}
}
