// Package testutil holds helpers shared across the test suites. It is
// imported only from _test files.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// CheckGoroutineLeak snapshots the goroutine count and registers a
// cleanup that fails the test if, 5 seconds of retrying later, more
// than slack extra goroutines remain. Register it BEFORE creating the
// servers or buffers under test: cleanups run LIFO, so the check then
// executes after the deferred Close/Drain calls have finished.
//
// The retry loop absorbs the benign lag between a Close returning and
// its worker goroutines actually exiting; slack absorbs runtime-owned
// goroutines (timers, test runners) that come and go independently.
func CheckGoroutineLeak(t *testing.T, slack int) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			n := runtime.NumGoroutine()
			if n <= before+slack {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("goroutine leak: %d before, %d after (slack %d)", before, n, slack)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}
