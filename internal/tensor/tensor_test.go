package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"edgetune/internal/sim"
)

func TestNewPanicsOnBadShape(t *testing.T) {
	tests := []struct{ r, c int }{{0, 1}, {1, 0}, {-1, 3}}
	for _, tt := range tests {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", tt.r, tt.c)
				}
			}()
			New(tt.r, tt.c)
		}()
	}
}

func TestFromSlice(t *testing.T) {
	m, err := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v, want 6", m.At(1, 2))
	}
	if _, err := FromSlice(2, 3, []float64{1}); err == nil {
		t.Error("mismatched length did not error")
	}
	if _, err := FromSlice(0, 3, nil); err == nil {
		t.Error("zero rows did not error")
	}
}

func TestMatMulKnown(t *testing.T) {
	a, _ := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b, _ := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want, _ := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !Equal(got, want, 1e-12) {
		t.Errorf("MatMul = %v, want %v", got.Data, want.Data)
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// TestTransposedMatMulsAgree checks MatMulAT and MatMulBT against explicit
// transposition through MatMul.
func TestTransposedMatMulsAgree(t *testing.T) {
	rng := sim.NewRNG(1)
	a := Randn(4, 5, 1, rng)
	b := Randn(4, 3, 1, rng)
	// aᵀ @ b via explicit transpose.
	at := New(5, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	if !Equal(MatMulAT(a, b), MatMul(at, b), 1e-9) {
		t.Error("MatMulAT disagrees with explicit transpose")
	}

	c := Randn(6, 5, 1, rng)
	ct := New(5, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 5; j++ {
			ct.Set(j, i, c.At(i, j))
		}
	}
	d := Randn(2, 5, 1, rng)
	if !Equal(MatMulBT(d, c), MatMul(d, ct), 1e-9) {
		t.Error("MatMulBT disagrees with explicit transpose")
	}
}

// Property: (A @ B) distributes over scalar multiplication.
func TestMatMulScalarProperty(t *testing.T) {
	rng := sim.NewRNG(5)
	f := func(seed uint16) bool {
		r := sim.NewRNG(uint64(seed))
		a := Randn(3, 4, 1, r)
		b := Randn(4, 2, 1, r)
		s := 1 + rng.Float64()
		left := MatMul(a, b)
		left.Scale(s)
		a2 := a.Clone()
		a2.Scale(s)
		right := MatMul(a2, b)
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAddRowVec(t *testing.T) {
	m, _ := FromSlice(2, 2, []float64{1, 2, 3, 4})
	m.AddRowVec([]float64{10, 20})
	want, _ := FromSlice(2, 2, []float64{11, 22, 13, 24})
	if !Equal(m, want, 0) {
		t.Errorf("AddRowVec = %v", m.Data)
	}
}

func TestAddAndScaleAndHadamard(t *testing.T) {
	a, _ := FromSlice(1, 3, []float64{1, 2, 3})
	b, _ := FromSlice(1, 3, []float64{4, 5, 6})
	a.Add(b)
	want, _ := FromSlice(1, 3, []float64{5, 7, 9})
	if !Equal(a, want, 0) {
		t.Errorf("Add = %v", a.Data)
	}
	a.Scale(2)
	want2, _ := FromSlice(1, 3, []float64{10, 14, 18})
	if !Equal(a, want2, 0) {
		t.Errorf("Scale = %v", a.Data)
	}
	a.Hadamard(b)
	want3, _ := FromSlice(1, 3, []float64{40, 70, 108})
	if !Equal(a, want3, 0) {
		t.Errorf("Hadamard = %v", a.Data)
	}
}

func TestColSums(t *testing.T) {
	m, _ := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := m.ColSums()
	want := []float64{5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ColSums[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestArgmaxRows(t *testing.T) {
	m, _ := FromSlice(3, 3, []float64{0, 1, 0, 9, 2, 3, -5, -4, -6})
	got := m.ArgmaxRows()
	want := []int{1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ArgmaxRows[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := sim.NewRNG(3)
	m := Randn(10, 7, 5, rng)
	m.SoftmaxRows()
	for i := 0; i < m.Rows; i++ {
		var sum float64
		for _, v := range m.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %v out of [0,1]", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d softmax sum = %v, want 1", i, sum)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	m, _ := FromSlice(1, 3, []float64{1000, 1001, 1002})
	m.SoftmaxRows()
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax of large logits produced %v", v)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a, _ := FromSlice(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m, _ := FromSlice(1, 2, []float64{3, 4})
	if got := m.FrobeniusNorm(); got != 5 {
		t.Errorf("FrobeniusNorm = %v, want 5", got)
	}
}

func TestRandnStd(t *testing.T) {
	rng := sim.NewRNG(99)
	m := Randn(100, 100, 0.5, rng)
	var sumSq float64
	for _, v := range m.Data {
		sumSq += v * v
	}
	std := math.Sqrt(sumSq / float64(len(m.Data)))
	if math.Abs(std-0.5) > 0.02 {
		t.Errorf("Randn std = %v, want ~0.5", std)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := sim.NewRNG(1)
	x := Randn(64, 64, 1, rng)
	y := Randn(64, 64, 1, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}
