// Package tensor implements the dense linear algebra needed by the
// neural-network training substrate: row-major float64 matrices with the
// handful of operations mini-batch SGD requires (matmul, transposed
// matmuls, element-wise maps, row/column reductions).
//
// The package is deliberately minimal — it replaces the role PyTorch's
// tensor library plays in the original EdgeTune prototype, scaled to the
// model sizes this reproduction trains.
package tensor

import (
	"fmt"
	"math"

	"edgetune/internal/sim"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero matrix of the given shape. It panics on non-positive
// dimensions, which always indicate a programming error in the caller.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (length rows*cols) without copying.
func FromSlice(rows, cols int, data []float64) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("tensor: invalid shape %dx%d", rows, cols)
	}
	if len(data) != rows*cols {
		return nil, fmt.Errorf("tensor: data length %d does not match shape %dx%d", len(data), rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}, nil
}

// Randn fills a new matrix with normal(0, std) values drawn from rng.
func Randn(rows, cols int, std float64, rng *sim.RNG) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the element at (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns a view of row r (shared storage).
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// MatMul computes a @ b into a new matrix. Shapes must agree.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulAT computes aᵀ @ b (a transposed).
func MatMulAT(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: matmulAT shape mismatch %dx%d / %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulBT computes a @ bᵀ (b transposed).
func MatMulBT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulBT shape mismatch %dx%d / %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// AddRowVec adds vector v (length Cols) to every row of m in place.
func (m *Matrix) AddRowVec(v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVec length %d != cols %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// Add accumulates other into m in place. Shapes must match.
func (m *Matrix) Add(other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("tensor: Add shape mismatch")
	}
	for i, v := range other.Data {
		m.Data[i] += v
	}
}

// Scale multiplies every element by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Apply maps f over every element in place.
func (m *Matrix) Apply(f func(float64) float64) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// Hadamard multiplies element-wise by other in place.
func (m *Matrix) Hadamard(other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("tensor: Hadamard shape mismatch")
	}
	for i, v := range other.Data {
		m.Data[i] *= v
	}
}

// ColSums returns the per-column sums (length Cols).
func (m *Matrix) ColSums() []float64 {
	sums := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			sums[j] += v
		}
	}
	return sums
}

// ArgmaxRows returns the index of the maximum element of each row.
func (m *Matrix) ArgmaxRows() []int {
	out := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		best, bestIdx := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, bestIdx = v, j
			}
		}
		out[i] = bestIdx
	}
	return out
}

// SoftmaxRows applies a numerically stable softmax to each row in place.
func (m *Matrix) SoftmaxRows() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxv)
			row[j] = e
			sum += e
		}
		for j := range row {
			row[j] /= sum
		}
	}
}

// FrobeniusNorm returns sqrt(sum of squared elements).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Equal reports whether two matrices have the same shape and elements
// within tolerance eps.
func Equal(a, b *Matrix, eps float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > eps {
			return false
		}
	}
	return true
}
