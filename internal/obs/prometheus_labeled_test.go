package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestWritePrometheusEmptyHistogramEmitsSumCount(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("serve.latency-ms", []float64{1, 10}) // registered, never observed
	var b strings.Builder
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"serve_latency_ms_sum 0\n",
		"serve_latency_ms_count 0\n",
		`serve_latency_ms_bucket{le="1"} 0`,
		`serve_latency_ms_bucket{le="+Inf"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// le values must be plain quoted strings, not re-quoted by %q.
	if strings.Contains(out, `le="\"`) {
		t.Errorf("le label value double-escaped:\n%s", out)
	}
}

func TestWritePrometheusEmptyHistogramOverHTTP(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("tune.rung-ms", []float64{5})
	d, err := StartDebugServer("localhost:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp, err := http.Get("http://" + d.Addr() + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	if !strings.Contains(out, "tune_rung_ms_sum 0\n") || !strings.Contains(out, "tune_rung_ms_count 0\n") {
		t.Errorf("/metrics/prom gapped an empty histogram:\n%s", out)
	}
}

func TestWritePrometheusLabeled(t *testing.T) {
	mk := func(jobs int64, depth float64, obsv []float64) Snapshot {
		r := NewRegistry()
		r.Counter("cluster.jobs").Add(jobs)
		r.Gauge("queue.depth").Set(depth)
		h := r.Histogram("put.latency-ms", []float64{1, 10})
		for _, v := range obsv {
			h.Observe(v)
		}
		return r.Snapshot()
	}
	var b strings.Builder
	err := WritePrometheusLabeled(&b, "shard", []LabeledSnapshot{
		{Value: "", Snapshot: mk(3, 1, nil)}, // cluster-wide: unlabeled
		{Value: "shard0", Snapshot: mk(10, 2, []float64{0.5})},
		{Value: `we"ird`, Snapshot: mk(20, 4, nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"cluster_jobs 3\n",
		`cluster_jobs{shard="shard0"} 10`,
		`cluster_jobs{shard="we\"ird"} 20`,
		`queue_depth{shard="shard0"} 2`,
		`put_latency_ms_bucket{shard="shard0",le="1"} 1`,
		`put_latency_ms_bucket{le="+Inf"} 0`, // unlabeled part's bucket
		`put_latency_ms_sum{shard="shard0"} 0.5`,
		"put_latency_ms_sum 0\n", // empty histogram still gets the pair
		`put_latency_ms_count{shard="we\"ird"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labeled exposition missing %q:\n%s", want, out)
		}
	}
	// One HELP/TYPE header per metric name even with three parts.
	if n := strings.Count(out, "# TYPE cluster_jobs counter"); n != 1 {
		t.Errorf("TYPE header for cluster_jobs appears %d times, want 1:\n%s", n, out)
	}
	if n := strings.Count(out, "# TYPE put_latency_ms histogram"); n != 1 {
		t.Errorf("TYPE header for put_latency_ms appears %d times, want 1:\n%s", n, out)
	}
	// Headers must precede all samples of their metric (format rule).
	if strings.Index(out, "# TYPE cluster_jobs") > strings.Index(out, `cluster_jobs{shard="shard0"}`) {
		t.Errorf("TYPE header after sample:\n%s", out)
	}
}

func TestDebugServerHandlerOverride(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("native.counter").Add(1)
	d, err := StartDebugServerOpts("localhost:0", DebugOptions{
		Registry: reg,
		Handlers: map[string]http.Handler{
			"/metrics/prom": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				io.WriteString(w, "override wins\n")
			}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + d.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return string(body)
	}
	if out := get("/metrics/prom"); out != "override wins\n" {
		t.Errorf("/metrics/prom not overridden: %q", out)
	}
	if out := get("/metrics"); !strings.Contains(out, "native.counter") {
		t.Errorf("non-overridden /metrics lost the built-in handler: %q", out)
	}
}
