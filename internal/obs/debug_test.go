package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serving.requests").Add(7)
	reg.Histogram("serving.latency.ms", LatencyBucketsMS).Observe(12)

	srv, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "counter serving.requests 7") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "histogram serving.latency.ms count=1") {
		t.Fatalf("/metrics missing histogram:\n%s", body)
	}

	code, body = get("/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not a snapshot: %v", err)
	}
	if snap.Counter("serving.requests") != 7 {
		t.Fatalf("/metrics.json counter = %d, want 7", snap.Counter("serving.requests"))
	}

	code, body = get("/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars status %d body %.60s", code, body)
	}

	code, _ = get("/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
}

// TestDebugServerNewEndpoints covers /healthz, /debug/goroutines,
// /metrics/prom, and caller-mounted extra handlers.
func TestDebugServerNewEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serving.requests").Add(3)
	h := reg.Histogram("serving.latency.ms", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	srv, err := StartDebugServerOpts("127.0.0.1:0", DebugOptions{
		Registry: reg,
		Handlers: map[string]http.Handler{
			"/extra": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				io.WriteString(w, "extra-ok")
			}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	var health struct {
		Status     string `json:"status"`
		Goroutines int    `json:"goroutines"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if health.Status != "ok" || health.Goroutines < 1 {
		t.Fatalf("/healthz = %+v", health)
	}

	code, body = get("/debug/goroutines")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/goroutines status %d body %.80s", code, body)
	}

	code, body = get("/metrics/prom")
	if code != http.StatusOK {
		t.Fatalf("/metrics/prom status %d", code)
	}
	if !strings.Contains(body, "# TYPE serving_requests counter") ||
		!strings.Contains(body, "serving_requests 3") {
		t.Fatalf("/metrics/prom missing sanitised counter:\n%s", body)
	}
	// Buckets must be cumulative: 1 at le=10, 2 at le=100, 3 at +Inf.
	for _, want := range []string{
		`serving_latency_ms_bucket{le="10"} 1`,
		`serving_latency_ms_bucket{le="100"} 2`,
		`serving_latency_ms_bucket{le="+Inf"} 3`,
		"serving_latency_ms_count 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics/prom missing %q:\n%s", want, body)
		}
	}

	code, body = get("/extra")
	if code != http.StatusOK || body != "extra-ok" {
		t.Fatalf("/extra status %d body %q", code, body)
	}
}

// TestPrometheusEscaping: hostile instrument names cannot corrupt the
// exposition (sanitised names, escaped HELP) and the plaintext format
// quotes names that would break its line orientation.
func TestPrometheusEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("weird name\nwith \"newline\"").Add(1)
	snap := reg.Snapshot()

	var prom strings.Builder
	if err := snap.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	if !strings.Contains(out, "weird_name_with__newline_ 1") {
		t.Errorf("prometheus name not sanitised:\n%s", out)
	}
	if !strings.Contains(out, `# HELP weird_name_with__newline_ weird name\nwith "newline"`) {
		t.Errorf("HELP newline not escaped:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.ContainsAny(line, "\r") || line == "" {
			t.Errorf("corrupt exposition line %q", line)
		}
	}

	var text strings.Builder
	if err := snap.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), `counter "weird name\nwith \"newline\"" 1`) {
		t.Errorf("plaintext name not quoted:\n%s", text.String())
	}
	if got := strings.Count(text.String(), "\n"); got != 1 {
		t.Errorf("plaintext emitted %d lines for one counter", got)
	}
}

func TestDebugServerNilSafety(t *testing.T) {
	var srv *DebugServer
	if srv.Addr() != "" {
		t.Fatal("nil server must report empty address")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}

// TestPrometheusStoreRecoveryNames: the durability layer's counter
// names (dots and dashes) sanitise to legal Prometheus metric names
// and keep the original spelling in HELP.
func TestPrometheusStoreRecoveryNames(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("store.recovery.replayed").Add(7)
	reg.Counter("store.recovery.quarantined").Add(2)
	reg.Counter("store.recovery.truncated-bytes").Add(13)
	reg.Counter("store.wal.append-errors").Add(1)
	reg.Counter("store.writebehind.flush-errors").Add(3)

	var prom strings.Builder
	if err := reg.Snapshot().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	for _, want := range []string{
		"store_recovery_replayed 7",
		"store_recovery_quarantined 2",
		"store_recovery_truncated_bytes 13",
		"store_wal_append_errors 1",
		"store_writebehind_flush_errors 3",
		"# HELP store_recovery_truncated_bytes store.recovery.truncated-bytes",
		"# TYPE store_wal_append_errors counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics/prom missing %q:\n%s", want, out)
		}
	}
}
