package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serving.requests").Add(7)
	reg.Histogram("serving.latency.ms", LatencyBucketsMS).Observe(12)

	srv, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "counter serving.requests 7") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "histogram serving.latency.ms count=1") {
		t.Fatalf("/metrics missing histogram:\n%s", body)
	}

	code, body = get("/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not a snapshot: %v", err)
	}
	if snap.Counter("serving.requests") != 7 {
		t.Fatalf("/metrics.json counter = %d, want 7", snap.Counter("serving.requests"))
	}

	code, body = get("/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars status %d body %.60s", code, body)
	}

	code, _ = get("/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
}

func TestDebugServerNilSafety(t *testing.T) {
	var srv *DebugServer
	if srv.Addr() != "" {
		t.Fatal("nil server must report empty address")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}
