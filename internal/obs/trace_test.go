package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildTrace emits a small two-track trace; called twice it must
// produce identical exports.
func buildTrace() *Tracer {
	tr := NewTracer()
	root := tr.Root(TrackTuner, "tune", 7, 0, Str("workload", "IC"))
	br := root.Child("bracket", 0, Int("bracket", 0))
	trial := br.Child("trial", 10*time.Millisecond, Str("config", "b32"))
	trial.Set(Float("accuracy", 0.91), Bool("degraded", false))
	trial.End(40 * time.Millisecond)
	br.End(50 * time.Millisecond)
	req := tr.Root(TrackServing, "request", 3, 20*time.Millisecond, Str("sig", "IC|b32"))
	req.Child("device-attempt", 20*time.Millisecond, Str("device", "i7")).End(30 * time.Millisecond)
	req.End(30 * time.Millisecond)
	root.End(60 * time.Millisecond)
	return tr
}

func TestTraceExportDeterministic(t *testing.T) {
	var a, b, ca, cb bytes.Buffer
	if err := buildTrace().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildTrace().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("JSONL exports differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	if err := buildTrace().WriteChrome(&ca); err != nil {
		t.Fatal(err)
	}
	if err := buildTrace().WriteChrome(&cb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
		t.Fatalf("Chrome exports differ:\n%s\nvs\n%s", ca.String(), cb.String())
	}
}

func TestTraceParentChildIDs(t *testing.T) {
	tr := buildTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	ids := map[uint64]bool{}
	var recs []spanRecord
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec spanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if rec.ID == 0 {
			t.Fatalf("span %q has zero ID", rec.Name)
		}
		if ids[rec.ID] {
			t.Fatalf("duplicate span ID %d", rec.ID)
		}
		ids[rec.ID] = true
		recs = append(recs, rec)
	}
	if len(recs) != 5 {
		t.Fatalf("expected 5 spans, got %d", len(recs))
	}
	for _, rec := range recs {
		if rec.Parent != 0 && !ids[rec.Parent] {
			t.Errorf("span %q parent %d not exported", rec.Name, rec.Parent)
		}
	}
	// Exported order is (start, ID): starts must be non-decreasing.
	for i := 1; i < len(recs); i++ {
		if recs[i].Start < recs[i-1].Start {
			t.Fatalf("spans out of order at %d: %d after %d", i, recs[i].Start, recs[i-1].Start)
		}
	}
}

func TestTraceChromeLoadable(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTrace().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export not valid JSON: %v", err)
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if meta != 2 || complete != 5 {
		t.Fatalf("expected 2 metadata + 5 complete events, got %d + %d", meta, complete)
	}
}

func TestNilTracerAndSpanNoOp(t *testing.T) {
	var tr *Tracer
	root := tr.Root(TrackTuner, "tune", 1, 0)
	if root != nil {
		t.Fatal("nil tracer must return nil root")
	}
	child := root.Child("trial", 0, Str("k", "v"))
	child.Set(Int("n", 1))
	child.End(time.Second)
	if got := child.ID(); got != 0 {
		t.Fatalf("nil span ID = %d, want 0", got)
	}
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must report empty")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil tracer JSONL: err=%v len=%d", err, buf.Len())
	}
	if err := tr.WriteChrome(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil tracer Chrome: err=%v len=%d", err, buf.Len())
	}
	if err := tr.SaveJSONL("/nonexistent/never-created"); err != nil {
		t.Fatalf("nil tracer SaveJSONL: %v", err)
	}
}

func TestSpanEndIdempotentAndSetAfterEnd(t *testing.T) {
	tr := NewTracer()
	sp := tr.Root(TrackTuner, "x", 1, 0)
	sp.End(time.Second)
	sp.Set(Str("late", "ignored"))
	sp.End(2 * time.Second)
	if tr.Len() != 1 {
		t.Fatalf("double End recorded %d spans, want 1", tr.Len())
	}
	var buf bytes.Buffer
	tr.WriteJSONL(&buf)
	if strings.Contains(buf.String(), "late") {
		t.Fatal("Set after End must be dropped")
	}
	if !strings.Contains(buf.String(), `"durNs":1000000000`) {
		t.Fatalf("first End must win: %s", buf.String())
	}
}

func TestSpanNegativeDurationClamped(t *testing.T) {
	tr := NewTracer()
	tr.Root(TrackTuner, "x", 1, time.Second).End(0)
	var buf bytes.Buffer
	tr.WriteJSONL(&buf)
	if !strings.Contains(buf.String(), `"durNs":0`) {
		t.Fatalf("negative duration not clamped: %s", buf.String())
	}
}

func TestTracerConcurrentRoots(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := tr.Root(TrackServing, "request", uint64(i), time.Duration(i)*time.Millisecond)
			sp.Child("attempt", sp.start).End(sp.start)
			sp.End(time.Duration(i+1) * time.Millisecond)
		}(i)
	}
	wg.Wait()
	if tr.Len() != 64 {
		t.Fatalf("got %d spans, want 64", tr.Len())
	}
	var a, b bytes.Buffer
	tr.WriteJSONL(&a)
	tr.WriteJSONL(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repeated exports of one tracer differ")
	}
}

func TestSaveFiles(t *testing.T) {
	dir := t.TempDir()
	tr := buildTrace()
	jp, cp := dir+"/t.jsonl", dir+"/t.chrome.json"
	if err := tr.SaveJSONL(jp); err != nil {
		t.Fatal(err)
	}
	if err := tr.SaveChrome(cp); err != nil {
		t.Fatal(err)
	}
	var mem bytes.Buffer
	tr.WriteJSONL(&mem)
	data := mustRead(t, jp)
	if !bytes.Equal(data, mem.Bytes()) {
		t.Fatal("SaveJSONL differs from WriteJSONL")
	}
}
