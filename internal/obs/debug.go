package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	rpprof "runtime/pprof"
	"time"
)

// DebugServer exposes runtime introspection over HTTP:
//
//	/metrics          — plaintext registry snapshot
//	/metrics.json     — JSON registry snapshot
//	/metrics/prom     — Prometheus text exposition format
//	/healthz          — liveness probe (JSON)
//	/debug/goroutines — full goroutine dump
//	/debug/vars       — expvar (memstats, cmdline)
//	/debug/pprof/     — net/http/pprof profiles
//
// plus any extra handlers the caller mounts via DebugOptions.
type DebugServer struct {
	srv *http.Server
	lis net.Listener
}

// DebugOptions configures StartDebugServerOpts.
type DebugOptions struct {
	// Registry backs the /metrics endpoints (nil serves empty
	// snapshots).
	Registry *Registry
	// Handlers mounts extra endpoints by path (e.g. "/slo"); they must
	// not collide with the built-in paths.
	Handlers map[string]http.Handler
}

// StartDebugServer listens on addr (e.g. "localhost:6060"; ":0" picks a
// free port) and serves introspection endpoints rendered from reg until
// Close. It never blocks the pipeline: failures to serve are dropped.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	return StartDebugServerOpts(addr, DebugOptions{Registry: reg})
}

// StartDebugServerOpts is StartDebugServer with extra endpoints.
func StartDebugServerOpts(addr string, opts DebugOptions) (*DebugServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	reg := opts.Registry
	mux := http.NewServeMux()
	// A caller-supplied handler on a built-in path replaces the default
	// (registering both would panic the mux); callers use this to serve
	// e.g. a merged multi-registry /metrics/prom.
	handleFunc := func(path string, h http.HandlerFunc) {
		if _, override := opts.Handlers[path]; !override {
			mux.HandleFunc(path, h)
		}
	}
	handleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.Snapshot().WriteText(w)
	})
	handleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
	handleFunc("/metrics/prom", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Snapshot().WritePrometheus(w)
	})
	handleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":     "ok",
			"goroutines": runtime.NumGoroutine(),
		})
	})
	handleFunc("/debug/goroutines", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rpprof.Lookup("goroutine").WriteTo(w, 1)
	})
	if _, override := opts.Handlers["/debug/vars"]; !override {
		mux.Handle("/debug/vars", expvar.Handler())
	}
	handleFunc("/debug/pprof/", pprof.Index)
	handleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	handleFunc("/debug/pprof/profile", pprof.Profile)
	handleFunc("/debug/pprof/symbol", pprof.Symbol)
	handleFunc("/debug/pprof/trace", pprof.Trace)
	for path, h := range opts.Handlers {
		mux.Handle(path, h)
	}

	d := &DebugServer{srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}, lis: lis}
	go d.srv.Serve(lis)
	return d, nil
}

// Addr reports the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.lis.Addr().String()
}

// Close shuts the server down.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}
