package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer exposes runtime introspection over HTTP:
//
//	/metrics      — plaintext registry snapshot
//	/metrics.json — JSON registry snapshot
//	/debug/vars   — expvar (memstats, cmdline)
//	/debug/pprof/ — net/http/pprof profiles
type DebugServer struct {
	srv *http.Server
	lis net.Listener
}

// StartDebugServer listens on addr (e.g. "localhost:6060"; ":0" picks a
// free port) and serves introspection endpoints rendered from reg until
// Close. It never blocks the pipeline: failures to serve are dropped.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.Snapshot().WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	d := &DebugServer{srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}, lis: lis}
	go d.srv.Serve(lis)
	return d, nil
}

// Addr reports the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.lis.Addr().String()
}

// Close shuts the server down.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}
