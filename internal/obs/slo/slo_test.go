package slo

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var e *Evaluator
	o := e.Register(Spec{Name: "x", Target: 0.99})
	if o != nil {
		t.Fatal("nil evaluator must return a nil objective")
	}
	o.Record(time.Second, true) // must not panic
	snap := e.Snapshot()
	if len(snap.Objectives) != 0 || snap.Horizon != 0 {
		t.Fatalf("nil evaluator snapshot = %+v, want zero", snap)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	e := NewEvaluator()
	a := e.Register(Spec{Name: "avail", Target: 0.99})
	b := e.Register(Spec{Name: "avail", Target: 0.5})
	if a != b {
		t.Fatal("re-registering a name must return the existing objective")
	}
	a.Record(time.Minute, true)
	snap := e.Snapshot()
	rep, ok := snap.Objective("avail")
	if !ok || rep.Target != 0.99 || rep.Events != 1 {
		t.Fatalf("objective report = %+v (ok=%v)", rep, ok)
	}
}

func TestSpecDefaults(t *testing.T) {
	e := NewEvaluator()
	e.Register(Spec{Name: "d", Target: 2.0}) // out of range → default
	rep, _ := e.Snapshot().Objective("d")
	if rep.Target != 0.99 {
		t.Errorf("target = %g, want default 0.99", rep.Target)
	}
	if rep.BurnThreshold != DefaultBurnThreshold {
		t.Errorf("burn threshold = %g, want default", rep.BurnThreshold)
	}
	if len(rep.Windows) != len(DefaultWindows) {
		t.Errorf("windows = %d, want %d defaults", len(rep.Windows), len(DefaultWindows))
	}
}

// TestBurnRateAlert: an objective burning its budget far beyond the
// threshold in both windows alerts; a compliant one does not.
func TestBurnRateAlert(t *testing.T) {
	e := NewEvaluator()
	hot := e.Register(Spec{Name: "hot", Target: 0.99,
		Windows: []time.Duration{5 * time.Minute, 30 * time.Minute}, BurnThreshold: 14.4})
	cool := e.Register(Spec{Name: "cool", Target: 0.99,
		Windows: []time.Duration{5 * time.Minute, 30 * time.Minute}, BurnThreshold: 14.4})

	// One event per simulated minute over an hour; "hot" fails half of
	// them (error rate 0.5 → burn 50), "cool" fails none.
	for i := 0; i < 60; i++ {
		at := time.Duration(i) * time.Minute
		hot.Record(at, i%2 == 0)
		cool.Record(at, true)
	}
	snap := e.Snapshot()
	if snap.Horizon != 59*time.Minute {
		t.Errorf("horizon = %v, want 59m", snap.Horizon)
	}
	h, _ := snap.Objective("hot")
	if !h.Alerting {
		t.Errorf("hot objective not alerting: %+v", h)
	}
	if h.ErrorBudgetUsed < 10 {
		t.Errorf("hot budget used = %g, want ~50", h.ErrorBudgetUsed)
	}
	c, _ := snap.Objective("cool")
	if c.Alerting || c.Errors != 0 || c.GoodFraction != 1 {
		t.Errorf("cool objective misreported: %+v", c)
	}
	if !snap.Alerting() {
		t.Error("snapshot must report an alert")
	}
}

// TestMultiWindowRequiresBothWindows: errors confined to the distant
// past burn the long window but not the short one — no alert (the
// condition is over, the page would be noise).
func TestMultiWindowRequiresBothWindows(t *testing.T) {
	e := NewEvaluator()
	o := e.Register(Spec{Name: "past", Target: 0.9,
		Windows: []time.Duration{5 * time.Minute, time.Hour}, BurnThreshold: 2})
	// Errors in the first 10 minutes, then 50 minutes of good events.
	for i := 0; i < 60; i++ {
		o.Record(time.Duration(i)*time.Minute, i >= 10)
	}
	rep, _ := e.Snapshot().Objective("past")
	if rep.Alerting {
		t.Fatalf("stale burn must not alert: %+v", rep)
	}
	if len(rep.Windows) != 2 {
		t.Fatalf("windows = %d, want 2", len(rep.Windows))
	}
	if rep.Windows[0].Errors != 0 {
		t.Errorf("short window errors = %d, want 0", rep.Windows[0].Errors)
	}
	if rep.Windows[1].Errors != 10 {
		t.Errorf("long window errors = %d, want 10", rep.Windows[1].Errors)
	}
}

// TestWindowClampedToHorizon: a run shorter than the window evaluates
// over the whole run instead of an empty (never-alerting) window.
func TestWindowClampedToHorizon(t *testing.T) {
	e := NewEvaluator()
	o := e.Register(Spec{Name: "short", Target: 0.99,
		Windows: []time.Duration{time.Hour}, BurnThreshold: 2})
	o.Record(time.Minute, false)
	o.Record(2*time.Minute, false)
	rep, _ := e.Snapshot().Objective("short")
	if rep.Windows[0].Window != 2*time.Minute {
		t.Errorf("window = %v, want clamped to 2m", rep.Windows[0].Window)
	}
	if !rep.Alerting {
		t.Errorf("fully-burning short run must alert: %+v", rep)
	}
}

// TestAlertClearsWhenFastWindowAgesOut: an alert is a statement about
// the present, so once enough good events move the horizon past the
// error burst, the fast window contains no errors and the alert must
// clear — even while the slow window is still burning over the burst.
func TestAlertClearsWhenFastWindowAgesOut(t *testing.T) {
	e := NewEvaluator()
	o := e.Register(Spec{Name: "burst", Target: 0.9,
		Windows: []time.Duration{5 * time.Minute, 30 * time.Minute}, BurnThreshold: 2})

	// A ten-minute all-error burst: every window burns, the alert fires.
	for i := 0; i < 10; i++ {
		o.Record(time.Duration(i)*time.Minute, false)
	}
	rep, _ := e.Snapshot().Objective("burst")
	if !rep.Alerting {
		t.Fatalf("mid-burst objective must alert: %+v", rep)
	}

	// Ten minutes of good events: the horizon advances to 19m, so the
	// fast window [14m, 19m] has aged out every error event.
	for i := 10; i < 20; i++ {
		o.Record(time.Duration(i)*time.Minute, true)
	}
	rep, _ = e.Snapshot().Objective("burst")
	if rep.Alerting {
		t.Fatalf("alert must clear once the fast window ages out the burst: %+v", rep)
	}
	if rep.Windows[0].Errors != 0 {
		t.Errorf("fast window errors = %d, want 0 (aged out)", rep.Windows[0].Errors)
	}
	if rep.Windows[1].Errors != 10 {
		t.Errorf("slow window errors = %d, want the full burst of 10", rep.Windows[1].Errors)
	}
	if rep.Windows[1].BurnRate < 2 {
		t.Errorf("slow window burn = %g, want still past threshold — the clear must come from the fast window alone", rep.Windows[1].BurnRate)
	}
}

func TestNoEventsObjective(t *testing.T) {
	e := NewEvaluator()
	e.Register(Spec{Name: "idle", Target: 0.99})
	rep, ok := e.Snapshot().Objective("idle")
	if !ok {
		t.Fatal("idle objective missing from snapshot")
	}
	if rep.Alerting || rep.GoodFraction != 1 || rep.ErrorBudgetUsed != 0 {
		t.Errorf("idle objective = %+v, want compliant", rep)
	}
}

// TestSnapshotDeterministic: the snapshot depends only on the event
// multiset, not the recording order, and marshals byte-identically.
func TestSnapshotDeterministic(t *testing.T) {
	build := func(reverse bool) []byte {
		e := NewEvaluator()
		o := e.Register(Spec{Name: "det", Target: 0.95})
		n := 100
		for i := 0; i < n; i++ {
			j := i
			if reverse {
				j = n - 1 - i
			}
			o.Record(time.Duration(j)*time.Second, j%7 != 0)
		}
		data, err := json.Marshal(e.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := build(false), build(true)
	if !bytes.Equal(a, b) {
		t.Errorf("order-dependent snapshots:\n%s\n%s", a, b)
	}
}

func TestHandler(t *testing.T) {
	e := NewEvaluator()
	e.Register(Spec{Name: "h", Target: 0.99}).Record(time.Minute, false)

	srv := httptest.NewServer(Handler(e))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Objective("h"); !ok {
		t.Fatalf("handler snapshot missing objective: %+v", snap)
	}

	resp, err = http.Get(srv.URL + "?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(body, []byte("objective h ")) {
		t.Fatalf("text format missing objective line:\n%s", body)
	}
}

func TestWriteTextStable(t *testing.T) {
	e := NewEvaluator()
	e.Register(Spec{Name: "b", Target: 0.9}).Record(time.Minute, true)
	e.Register(Spec{Name: "a", Target: 0.9}).Record(time.Minute, false)
	var x, y bytes.Buffer
	if err := e.Snapshot().WriteText(&x); err != nil {
		t.Fatal(err)
	}
	if err := e.Snapshot().WriteText(&y); err != nil {
		t.Fatal(err)
	}
	if x.String() != y.String() {
		t.Errorf("unstable text output:\n%s\n---\n%s", x.String(), y.String())
	}
	if x.Len() == 0 || bytes.Index(x.Bytes(), []byte("objective a")) > bytes.Index(x.Bytes(), []byte("objective b")) {
		t.Errorf("objectives not sorted by name:\n%s", x.String())
	}
}
