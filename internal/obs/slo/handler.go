package slo

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Handler serves the evaluator's current snapshot: JSON by default,
// plaintext with ?format=text. A nil evaluator serves empty snapshots.
func Handler(e *Evaluator) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := e.Snapshot()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			snap.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
}

// WriteText renders the snapshot as stable plaintext, one objective per
// line plus one line per alert window.
func (s Snapshot) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "slo horizon=%s objectives=%d alerting=%v\n",
		s.Horizon, len(s.Objectives), s.Alerting()); err != nil {
		return err
	}
	for _, o := range s.Objectives {
		status := "ok"
		if o.Alerting {
			status = "ALERT"
		}
		if _, err := fmt.Fprintf(w, "objective %s target=%g events=%d errors=%d good=%.4f budget-used=%.3f %s\n",
			o.Name, o.Target, o.Events, o.Errors, o.GoodFraction, o.ErrorBudgetUsed, status); err != nil {
			return err
		}
		for _, wb := range o.Windows {
			if _, err := fmt.Fprintf(w, "  window %-8s events=%d errors=%d burn=%.2f (threshold %g)\n",
				wb.Window, wb.Events, wb.Errors, wb.BurnRate, o.BurnThreshold); err != nil {
				return err
			}
		}
	}
	return nil
}
