// Package slo evaluates declarative service-level objectives over the
// simulated clock, stdlib-only and deterministic under the same-seed
// contract.
//
// An Objective counts good/bad events, each stamped with a simulated
// timestamp by the instrumentation site (never a wall-clock read). A
// Snapshot evaluates every objective at the horizon — the latest event
// time seen by any objective — computing the overall compliance plus a
// burn rate per alert window: the fraction of the error budget
// (1 − target) consumed by the window's error rate. An alert fires when
// the burn rate meets the threshold in every window simultaneously (the
// multi-window rule: the long window proves the burn is sustained, the
// short one that it is still happening).
//
// Determinism: events are aggregated by (timestamp, good) only, so
// concurrent recorders in any interleaving yield the same snapshot as
// long as the event multiset is the same — which the pipeline's seeded
// determinism guarantees. Snapshots sort objectives by name.
//
// Every method is nil-safe: a nil *Evaluator or nil *Objective no-ops,
// so disabled SLO accounting costs callers one pointer check.
package slo

import (
	"sort"
	"sync"
	"time"
)

// Default alert windows and burn threshold. The fast/slow pair follows
// the SRE multi-window rule scaled to the emulator's job lengths
// (simulated tuning runs span minutes to hours): a sustained burn must
// show over the last half hour and still be burning over the last five
// minutes. 14.4 is the classic page threshold — at that rate a 30-day
// error budget is gone in two days.
var (
	DefaultWindows = []time.Duration{5 * time.Minute, 30 * time.Minute}

	DefaultBurnThreshold = 14.4
)

// Spec declares one objective.
type Spec struct {
	// Name identifies the objective; registering the same name twice
	// returns the existing objective.
	Name string
	// Description is a human-readable statement of the objective.
	Description string
	// Target is the required good-event fraction in (0, 1), e.g. 0.99
	// for "99% of requests must be good". The error budget is 1 − Target.
	Target float64
	// Windows are the burn-rate alert windows, ascending; empty selects
	// DefaultWindows.
	Windows []time.Duration
	// BurnThreshold is the burn rate at which every window must burn for
	// the alert to fire; zero selects DefaultBurnThreshold.
	BurnThreshold float64
}

// event is one recorded observation on the simulated clock.
type event struct {
	t    time.Duration
	good bool
}

// Objective accumulates events for one Spec. Safe for concurrent use.
type Objective struct {
	spec Spec

	mu     sync.Mutex
	events []event
}

// Record counts one event at simulated time t. A nil objective no-ops.
func (o *Objective) Record(t time.Duration, good bool) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.events = append(o.events, event{t: t, good: good})
	o.mu.Unlock()
}

// Evaluator holds a set of objectives. A nil *Evaluator is a valid
// disabled evaluator: Register returns nil objectives whose Record
// no-ops, and Snapshot yields the zero value.
type Evaluator struct {
	mu   sync.Mutex
	objs map[string]*Objective
}

// NewEvaluator returns an empty evaluator.
func NewEvaluator() *Evaluator {
	return &Evaluator{objs: map[string]*Objective{}}
}

// Register adds an objective (idempotent by name: a second registration
// returns the first objective and ignores the new spec).
func (e *Evaluator) Register(spec Spec) *Objective {
	if e == nil {
		return nil
	}
	if spec.Target <= 0 || spec.Target >= 1 {
		spec.Target = 0.99
	}
	if len(spec.Windows) == 0 {
		spec.Windows = DefaultWindows
	}
	if spec.BurnThreshold <= 0 {
		spec.BurnThreshold = DefaultBurnThreshold
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if o, ok := e.objs[spec.Name]; ok {
		return o
	}
	o := &Objective{spec: spec}
	e.objs[spec.Name] = o
	return o
}

// WindowBurn is one alert window's burn evaluation.
type WindowBurn struct {
	// Window is the window length; it is clamped to the horizon when the
	// run is shorter than the window.
	Window time.Duration `json:"windowNs"`
	// Events and Errors count the window's observations.
	Events int64 `json:"events"`
	Errors int64 `json:"errors"`
	// ErrorRate is Errors/Events (0 for an empty window).
	ErrorRate float64 `json:"errorRate"`
	// BurnRate is ErrorRate divided by the error budget: 1 means the
	// budget is being spent exactly as fast as the target allows.
	BurnRate float64 `json:"burnRate"`
}

// ObjectiveReport is one objective's evaluation.
type ObjectiveReport struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Target      float64 `json:"target"`
	// Events and Errors cover the whole run.
	Events int64 `json:"events"`
	Errors int64 `json:"errors"`
	// GoodFraction is the overall compliance (1 when no events).
	GoodFraction float64 `json:"goodFraction"`
	// ErrorBudgetUsed is the overall burn: the run's error rate over the
	// error budget; above 1 the objective is out of budget.
	ErrorBudgetUsed float64 `json:"errorBudgetUsed"`
	// BurnThreshold and Windows document the alert rule evaluated.
	BurnThreshold float64      `json:"burnThreshold"`
	Windows       []WindowBurn `json:"windows"`
	// Alerting reports a burn rate at or above the threshold in every
	// window simultaneously.
	Alerting bool `json:"alerting"`
}

// Snapshot is a point-in-time evaluation of every objective, sorted by
// name so serialisations are byte-stable across same-seed runs.
type Snapshot struct {
	// Horizon is the latest event time across all objectives: the
	// simulated instant the windows end at.
	Horizon    time.Duration     `json:"horizonNs"`
	Objectives []ObjectiveReport `json:"objectives,omitempty"`
}

// Objective returns the named objective report and whether it exists.
func (s Snapshot) Objective(name string) (ObjectiveReport, bool) {
	for _, o := range s.Objectives {
		if o.Name == name {
			return o, true
		}
	}
	return ObjectiveReport{}, false
}

// Alerting reports whether any objective's alert fires.
func (s Snapshot) Alerting() bool {
	for _, o := range s.Objectives {
		if o.Alerting {
			return true
		}
	}
	return false
}

// Snapshot evaluates every objective at the current horizon.
func (e *Evaluator) Snapshot() Snapshot {
	if e == nil {
		return Snapshot{}
	}
	e.mu.Lock()
	objs := make([]*Objective, 0, len(e.objs))
	for _, o := range e.objs {
		objs = append(objs, o)
	}
	e.mu.Unlock()

	// The horizon is global so every objective's windows end at the same
	// simulated instant.
	var snap Snapshot
	copies := make([][]event, len(objs))
	for i, o := range objs {
		o.mu.Lock()
		copies[i] = append([]event(nil), o.events...)
		o.mu.Unlock()
		for _, ev := range copies[i] {
			if ev.t > snap.Horizon {
				snap.Horizon = ev.t
			}
		}
	}
	for i, o := range objs {
		snap.Objectives = append(snap.Objectives, evaluate(o.spec, copies[i], snap.Horizon))
	}
	sort.Slice(snap.Objectives, func(i, j int) bool {
		return snap.Objectives[i].Name < snap.Objectives[j].Name
	})
	return snap
}

// evaluate computes one objective's report from its event multiset.
func evaluate(spec Spec, events []event, horizon time.Duration) ObjectiveReport {
	rep := ObjectiveReport{
		Name:          spec.Name,
		Description:   spec.Description,
		Target:        spec.Target,
		BurnThreshold: spec.BurnThreshold,
		GoodFraction:  1,
	}
	budget := 1 - spec.Target
	for _, ev := range events {
		rep.Events++
		if !ev.good {
			rep.Errors++
		}
	}
	if rep.Events > 0 {
		errRate := float64(rep.Errors) / float64(rep.Events)
		rep.GoodFraction = 1 - errRate
		rep.ErrorBudgetUsed = errRate / budget
	}

	rep.Alerting = rep.Events > 0
	for _, w := range spec.Windows {
		if w > horizon {
			w = horizon
		}
		wb := WindowBurn{Window: w}
		from := horizon - w
		for _, ev := range events {
			if ev.t < from {
				continue
			}
			wb.Events++
			if !ev.good {
				wb.Errors++
			}
		}
		if wb.Events > 0 {
			wb.ErrorRate = float64(wb.Errors) / float64(wb.Events)
			wb.BurnRate = wb.ErrorRate / budget
		}
		if wb.BurnRate < spec.BurnThreshold {
			rep.Alerting = false
		}
		rep.Windows = append(rep.Windows, wb)
	}
	if len(spec.Windows) == 0 {
		rep.Alerting = false
	}
	return rep
}
