package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus exposition support. The registry's native names use dots
// and dashes ("serving.queue.depth", "serving.cache-hits"), which are
// invalid in the Prometheus text format; WritePrometheus sanitises them
// and escapes label values per the exposition-format rules, so a
// crafted or future instrument name can never corrupt the scrape.

// promName sanitises a metric name to [a-zA-Z0-9_:], mapping every
// other rune to '_' and prefixing '_' when the name starts with a
// digit.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			if r >= '0' && r <= '9' { // leading digit
				b.WriteByte('_')
			}
			r = '_'
		}
		b.WriteRune(r)
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promEscape escapes a label value: backslash, double-quote, and
// newline, per the exposition format.
func promEscape(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promHelp escapes a HELP line: backslash and newline only (quotes are
// legal there).
func promHelp(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format: counters and gauges verbatim, histograms with
// cumulative le buckets plus _sum and _count. Output is stable: the
// snapshot is already sorted by name.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, c := range s.Counters {
		n := promName(c.Name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			n, promHelp(c.Name), n, n, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n",
			n, promHelp(g.Name), n, n, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		n := promName(h.Name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n",
			n, promHelp(h.Name), n); err != nil {
			return err
		}
		// The registry stores per-bucket counts; the exposition format
		// wants cumulative counts up to each upper bound.
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
				n, promEscape(b.LE), cum); err != nil {
				return err
			}
		}
		// _sum/_count are written even when the histogram has recorded
		// nothing: scrapers treat a missing pair as a gapped series.
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", n, h.Sum, n, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// LabeledSnapshot pairs a snapshot with a label value, for rendering
// several registries (e.g. one per cluster shard) into one merged
// exposition. An empty Value renders the snapshot unlabeled.
type LabeledSnapshot struct {
	Value    string
	Snapshot Snapshot
}

// WritePrometheusLabeled renders parts as one merged Prometheus
// exposition, attaching `labelName="<part.Value>"` to every sample from
// a part with a non-empty Value. Samples sharing a metric name across
// parts are grouped under a single HELP/TYPE header, as the exposition
// format requires; within a name, parts render in the order given.
func WritePrometheusLabeled(w io.Writer, labelName string, parts []LabeledSnapshot) error {
	lbl := func(v string) string {
		if v == "" {
			return ""
		}
		return fmt.Sprintf("{%s=\"%s\"}", promName(labelName), promEscape(v))
	}
	type sample struct {
		part int
		kind int // 0 counter, 1 gauge, 2 histogram
		idx  int
	}
	byName := map[string][]sample{}
	var order []string
	add := func(name string, s sample) {
		if _, seen := byName[name]; !seen {
			order = append(order, name)
		}
		byName[name] = append(byName[name], s)
	}
	for pi, p := range parts {
		for i, c := range p.Snapshot.Counters {
			add(c.Name, sample{pi, 0, i})
		}
		for i, g := range p.Snapshot.Gauges {
			add(g.Name, sample{pi, 1, i})
		}
		for i, h := range p.Snapshot.Histograms {
			add(h.Name, sample{pi, 2, i})
		}
	}
	sort.Strings(order)
	for _, name := range order {
		n := promName(name)
		typ := [...]string{"counter", "gauge", "histogram"}[byName[name][0].kind]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			n, promHelp(name), n, typ); err != nil {
			return err
		}
		for _, s := range byName[name] {
			p := parts[s.part]
			switch s.kind {
			case 0:
				c := p.Snapshot.Counters[s.idx]
				if _, err := fmt.Fprintf(w, "%s%s %d\n", n, lbl(p.Value), c.Value); err != nil {
					return err
				}
			case 1:
				g := p.Snapshot.Gauges[s.idx]
				if _, err := fmt.Fprintf(w, "%s%s %g\n", n, lbl(p.Value), g.Value); err != nil {
					return err
				}
			case 2:
				h := p.Snapshot.Histograms[s.idx]
				var cum int64
				for _, b := range h.Buckets {
					cum += b.Count
					// The shard label shares the brace block with le.
					extra := ""
					if p.Value != "" {
						extra = fmt.Sprintf("%s=\"%s\",", promName(labelName), promEscape(p.Value))
					}
					if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"%s\"} %d\n",
						n, extra, promEscape(b.LE), cum); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n",
					n, lbl(p.Value), h.Sum, n, lbl(p.Value), h.Count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
