package obs

import (
	"fmt"
	"io"
	"strings"
)

// Prometheus exposition support. The registry's native names use dots
// and dashes ("serving.queue.depth", "serving.cache-hits"), which are
// invalid in the Prometheus text format; WritePrometheus sanitises them
// and escapes label values per the exposition-format rules, so a
// crafted or future instrument name can never corrupt the scrape.

// promName sanitises a metric name to [a-zA-Z0-9_:], mapping every
// other rune to '_' and prefixing '_' when the name starts with a
// digit.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			if r >= '0' && r <= '9' { // leading digit
				b.WriteByte('_')
			}
			r = '_'
		}
		b.WriteRune(r)
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promEscape escapes a label value: backslash, double-quote, and
// newline, per the exposition format.
func promEscape(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promHelp escapes a HELP line: backslash and newline only (quotes are
// legal there).
func promHelp(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format: counters and gauges verbatim, histograms with
// cumulative le buckets plus _sum and _count. Output is stable: the
// snapshot is already sorted by name.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, c := range s.Counters {
		n := promName(c.Name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			n, promHelp(c.Name), n, n, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n",
			n, promHelp(g.Name), n, n, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		n := promName(h.Name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n",
			n, promHelp(h.Name), n); err != nil {
			return err
		}
		// The registry stores per-bucket counts; the exposition format
		// wants cumulative counts up to each upper bound.
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
				n, promEscape(b.LE), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", n, h.Sum, n, h.Count); err != nil {
			return err
		}
	}
	return nil
}
