// Package flight is the pipelines' always-on flight recorder: a
// preallocated fixed-slot ring buffer that continuously captures a
// compact event stream — span completions, SLO objective state
// transitions, autoscale decisions and ladder steps, admission
// rejections and preemptions, breaker and health transitions, WAL
// append/recovery/shipping events, shard failover — stamped on the
// simulated clock with FNV-derived IDs. Recording is allocation-free
// in steady state: each event is a value copied into its slot, so the
// recorder can ride inside every run at fixed memory cost.
//
// A trigger framework snapshots the ring into incident dossiers:
// self-contained JSON artefacts holding the trigger, the event window
// timeline, metrics and SLO snapshots, a critical-path/queue
// mini-report computed over just the window, and a digest. Dossiers
// are built after the run quiesces and their events are sorted by
// (time, ID), so same-seed runs emit byte-identical dossiers even
// though goroutine arrival order varies — the same discipline the
// tracer uses for its JSONL export.
//
// A nil *Recorder no-ops on every method, so instrumentation sites
// need no guards when the flight recorder is disabled.
package flight

import (
	"sort"
	"sync"
	"time"

	"edgetune/internal/obs/slo"
)

// Event kinds. Call sites pass these constants (and pre-existing
// strings such as device names) so Record never allocates.
const (
	// KindSpan is a completed trace span: Subject the span name, A the
	// track, B the span duration in nanoseconds.
	KindSpan = "span"
	// KindSLO is an objective alert edge: Subject the objective name,
	// Detail "alert" (rising) or "clear" (falling).
	KindSLO = "slo"
	// KindAutoscale is one controller decision applied to the pool:
	// Subject the resulting mode, Detail the controller's reason, A the
	// replica delta, B the replica count after the decision.
	KindAutoscale = "autoscale"
	// KindLadder is a degradation-ladder transition: Subject the new
	// mode, Detail "degrade" or "recover".
	KindLadder = "ladder"
	// KindAdmission is a rejected or preempted submission: Subject the
	// rejection class ("shed-burst", "shed-degraded", "rate-limited",
	// "overloaded", "preempted", "no-healthy-device"), Detail the
	// client when known.
	KindAdmission = "admission"
	// KindBreaker is a circuit-breaker state change: Subject the
	// device, Detail the new state.
	KindBreaker = "breaker"
	// KindHealth is a health-manager state change: Subject the device
	// (or "pool" for a mass failure), Detail the new state, A the
	// device count for pool-wide events.
	KindHealth = "health"
	// KindWAL is a durable-store journal event: Subject "append" (A the
	// append sequence, B the frame bytes) or "recover" (A records
	// replayed, B records quarantined).
	KindWAL = "wal"
	// KindShip is a WAL frame shipped toward a follower: Subject the
	// disposition ("shipped", "dropped", "lagged", "flushed"), A the
	// shipped sequence.
	KindShip = "ship"
	// KindFailover is a shard promoting its follower: Subject the
	// shard name.
	KindFailover = "failover"
	// KindTrigger marks a trigger firing inside the stream itself, so
	// the timeline shows what tripped relative to its surroundings.
	KindTrigger = "trigger"
)

// Trigger kinds: the anomalies that snapshot the ring into a dossier.
const (
	// TriggerSLOAlert fires on an objective's alert rising edge.
	TriggerSLOAlert = "slo-alert"
	// TriggerLadder fires when the degradation ladder engages (any
	// step away from normal service).
	TriggerLadder = "ladder-engaged"
	// TriggerFailover fires when a shard fails over to its follower.
	TriggerFailover = "shard-failover"
	// TriggerSalvage fires when crash recovery had to quarantine
	// records or truncate a torn WAL tail.
	TriggerSalvage = "crash-salvage"
	// TriggerMassFail fires when the injected mass-device-failure
	// quarantines the pool.
	TriggerMassFail = "mass-device-fail"
	// TriggerManual is the operator-requested dossier.
	TriggerManual = "manual"
)

// Event is one flight-recorder entry. Events are values: Record copies
// them into preallocated slots, never allocating in steady state. The
// ID is derived from the event's own fields (FNV-1a), not from arrival
// order, so sorting by (Time, ID) yields the same byte stream for
// same-seed runs regardless of goroutine interleaving.
type Event struct {
	ID      uint64        `json:"id"`
	Time    time.Duration `json:"tNs"`
	Kind    string        `json:"kind"`
	Subject string        `json:"subject,omitempty"`
	Detail  string        `json:"detail,omitempty"`
	A       int64         `json:"a,omitempty"`
	B       int64         `json:"b,omitempty"`
}

// Trigger is one recorded anomaly, in firing order. Seq disambiguates
// repeated firings of the same kind.
type Trigger struct {
	ID     uint64        `json:"id"`
	Kind   string        `json:"kind"`
	At     time.Duration `json:"atNs"`
	Detail string        `json:"detail,omitempty"`
	Seq    int           `json:"seq"`
}

const (
	// DefaultSlots sizes the ring when the caller passes 0: generous
	// enough that the chaos-scale runs never wrap (wrap order depends
	// on goroutine arrival, so a non-wrapping ring is also the
	// byte-determinism guarantee).
	DefaultSlots = 1 << 16
	// maxTriggers bounds the dossier count per run; later firings are
	// counted but produce no dossier.
	maxTriggers = 32
)

// Recorder is the fixed-slot ring. All methods are safe for concurrent
// use and no-op on a nil receiver.
type Recorder struct {
	mu       sync.Mutex
	slots    []Event
	total    uint64 // events ever recorded; slots[total%len] is next
	triggers []Trigger
	lost     int // triggers beyond maxTriggers
	alerting map[string]bool
}

// New returns a recorder with the given slot count (0 or negative gets
// DefaultSlots). Every slot is allocated up front; Record never grows
// the buffer.
func New(slots int) *Recorder {
	if slots <= 0 {
		slots = DefaultSlots
	}
	return &Recorder{
		slots:    make([]Event, slots),
		triggers: make([]Trigger, 0, maxTriggers),
		alerting: make(map[string]bool, 8),
	}
}

// Record appends one event to the ring, overwriting the oldest entry
// when full. It is the steady-state hot path: no allocations, one
// mutex round trip, one slot copy.
func (r *Recorder) Record(at time.Duration, kind, subject, detail string, a, b int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.recordLocked(at, kind, subject, detail, a, b)
	r.mu.Unlock()
}

func (r *Recorder) recordLocked(at time.Duration, kind, subject, detail string, a, b int64) {
	slot := &r.slots[r.total%uint64(len(r.slots))]
	slot.Time = at
	slot.Kind = kind
	slot.Subject = subject
	slot.Detail = detail
	slot.A = a
	slot.B = b
	slot.ID = eventID(at, kind, subject, detail, a, b)
	r.total++
}

// Trigger fires one anomaly: it records a KindTrigger event in the
// stream and remembers the trigger so Dossiers can snapshot its
// window. Firings beyond maxTriggers are counted as lost.
func (r *Recorder) Trigger(kind string, at time.Duration, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.triggerLocked(kind, at, detail)
	r.mu.Unlock()
}

func (r *Recorder) triggerLocked(kind string, at time.Duration, detail string) {
	r.recordLocked(at, KindTrigger, kind, detail, 0, 0)
	if len(r.triggers) >= maxTriggers {
		r.lost++
		return
	}
	seq := len(r.triggers)
	r.triggers = append(r.triggers, Trigger{
		ID:     eventID(at, KindTrigger, kind, detail, int64(seq), 0),
		Kind:   kind,
		At:     at,
		Detail: detail,
		Seq:    seq,
	})
}

// ManualTrigger fires the operator trigger, stamped at the latest
// recorded event time (the recorder's notion of "now" on the simulated
// clock).
func (r *Recorder) ManualTrigger(detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	var at time.Duration
	n := r.retainedLocked()
	for i := 0; i < n; i++ {
		if t := r.slotAt(i).Time; t > at {
			at = t
		}
	}
	r.triggerLocked(TriggerManual, at, detail)
	r.mu.Unlock()
}

// ObserveSLO feeds an evaluator snapshot through the per-objective
// alert edge detector: a rising edge records a KindSLO "alert" event
// and fires TriggerSLOAlert; a falling edge records "clear". Callers
// poll at deterministic points (rung boundaries), so the edges land at
// deterministic simulated times.
func (r *Recorder) ObserveSLO(at time.Duration, snap slo.Snapshot) {
	if r == nil {
		return
	}
	r.mu.Lock()
	for _, o := range snap.Objectives {
		was := r.alerting[o.Name]
		if o.Alerting == was {
			continue
		}
		r.alerting[o.Name] = o.Alerting
		if o.Alerting {
			r.recordLocked(at, KindSLO, o.Name, "alert", o.Events, o.Errors)
			r.triggerLocked(TriggerSLOAlert, at, o.Name)
		} else {
			r.recordLocked(at, KindSLO, o.Name, "clear", o.Events, o.Errors)
		}
	}
	r.mu.Unlock()
}

// retainedLocked is how many slots currently hold events.
func (r *Recorder) retainedLocked() int {
	if r.total < uint64(len(r.slots)) {
		return int(r.total)
	}
	return len(r.slots)
}

// slotAt indexes the retained events in arrival order (0 = oldest);
// callers hold r.mu.
func (r *Recorder) slotAt(i int) *Event {
	if r.total <= uint64(len(r.slots)) {
		return &r.slots[i]
	}
	return &r.slots[(r.total+uint64(i))%uint64(len(r.slots))]
}

// Events copies the retained ring, sorted by (Time, ID) so the view is
// independent of goroutine arrival order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	n := r.retainedLocked()
	out := make([]Event, n)
	for i := 0; i < n; i++ {
		out[i] = *r.slotAt(i)
	}
	r.mu.Unlock()
	sortEvents(out)
	return out
}

// Triggers copies the fired triggers in firing order.
func (r *Recorder) Triggers() []Trigger {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Trigger(nil), r.triggers...)
}

// Stats reports the ring geometry: slot count, events ever recorded,
// and events overwritten by wrap.
func (r *Recorder) Stats() (slots int, recorded, dropped uint64) {
	if r == nil {
		return 0, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	slots = len(r.slots)
	recorded = r.total
	if r.total > uint64(len(r.slots)) {
		dropped = r.total - uint64(len(r.slots))
	}
	return slots, recorded, dropped
}

// sortEvents orders by (Time, ID, Kind, Subject, Detail, A, B) — a
// total order over event values, so identical multisets serialise
// byte-identically whatever order they were recorded in.
func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		if a.Detail != b.Detail {
			return a.Detail < b.Detail
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
}

// FNV-1a, mirroring the tracer's structural ID derivation so flight
// event IDs are pure functions of the event fields.
const (
	fnvOffset = 1469598103934665603
	fnvPrime  = 1099511628211
)

func mixStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	h ^= 0xff // field separator
	h *= fnvPrime
	return h
}

func mixU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func eventID(at time.Duration, kind, subject, detail string, a, b int64) uint64 {
	h := uint64(fnvOffset)
	h = mixStr(h, kind)
	h = mixStr(h, subject)
	h = mixStr(h, detail)
	h = mixU64(h, uint64(at))
	h = mixU64(h, uint64(a))
	h = mixU64(h, uint64(b))
	if h == 0 {
		h = 1
	}
	return h
}
