package flight

import (
	"encoding/json"
	"net/http"
)

// handlerEvents caps the timeline a single /flight response carries.
const handlerEvents = 256

// flightView is the /flight endpoint's JSON shape.
type flightView struct {
	Slots    int       `json:"slots"`
	Recorded uint64    `json:"recorded"`
	Dropped  uint64    `json:"dropped,omitempty"`
	Triggers []Trigger `json:"triggers,omitempty"`
	// Events is the newest slice of the (time, ID)-sorted ring.
	Events []Event `json:"events,omitempty"`
}

// Handler serves the recorder's live state as JSON: ring geometry,
// fired triggers, and the newest events in deterministic order. A POST
// with ?trigger=manual fires the manual trigger (detail from the
// "detail" query parameter) before rendering, so an operator can cut a
// dossier at the next report collection without touching the run.
func Handler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method == http.MethodPost && req.URL.Query().Get("trigger") == "manual" {
			r.ManualTrigger(req.URL.Query().Get("detail"))
		}
		slots, recorded, dropped := r.Stats()
		view := flightView{
			Slots:    slots,
			Recorded: recorded,
			Dropped:  dropped,
			Triggers: r.Triggers(),
			Events:   r.Events(),
		}
		if len(view.Events) > handlerEvents {
			view.Events = view.Events[len(view.Events)-handlerEvents:]
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(view)
	})
}
