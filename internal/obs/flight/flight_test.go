package flight

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"edgetune/internal/obs"
	"edgetune/internal/obs/slo"
)

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	r.Record(0, KindSpan, "x", "", 0, 0)
	r.Trigger(TriggerManual, 0, "")
	r.ManualTrigger("")
	r.ObserveSLO(0, slo.Snapshot{})
	if evs := r.Events(); evs != nil {
		t.Fatalf("nil recorder events = %v", evs)
	}
	if ds := r.Dossiers(Sources{}); ds != nil {
		t.Fatalf("nil recorder dossiers = %v", ds)
	}
	if s, rec, d := r.Stats(); s != 0 || rec != 0 || d != 0 {
		t.Fatalf("nil recorder stats = %d %d %d", s, rec, d)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Record(time.Duration(i), KindSpan, "s", "", int64(i), 0)
	}
	slots, recorded, dropped := r.Stats()
	if slots != 4 || recorded != 10 || dropped != 6 {
		t.Fatalf("stats = %d %d %d, want 4 10 6", slots, recorded, dropped)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.A != want {
			t.Fatalf("event %d has A=%d, want %d (oldest evicted first)", i, ev.A, want)
		}
	}
}

func TestEventsSortedIndependentOfArrival(t *testing.T) {
	a, b := New(16), New(16)
	a.Record(1, KindSpan, "x", "", 0, 0)
	a.Record(2, KindWAL, "append", "", 1, 8)
	b.Record(2, KindWAL, "append", "", 1, 8)
	b.Record(1, KindSpan, "x", "", 0, 0)
	ja, _ := json.Marshal(a.Events())
	jb, _ := json.Marshal(b.Events())
	if !bytes.Equal(ja, jb) {
		t.Fatalf("arrival order leaked into the event view:\n%s\n%s", ja, jb)
	}
}

func TestSLOEdgeDetection(t *testing.T) {
	r := New(64)
	alert := slo.Snapshot{Objectives: []slo.ObjectiveReport{{Name: "o", Alerting: true}}}
	clear := slo.Snapshot{Objectives: []slo.ObjectiveReport{{Name: "o", Alerting: false}}}

	r.ObserveSLO(10, clear) // no edge: starts clear
	r.ObserveSLO(20, alert) // rising edge
	r.ObserveSLO(30, alert) // steady: no new edge
	r.ObserveSLO(40, clear) // falling edge
	r.ObserveSLO(50, alert) // second rising edge

	tgs := r.Triggers()
	if len(tgs) != 2 {
		t.Fatalf("got %d triggers, want 2 rising edges: %+v", len(tgs), tgs)
	}
	if tgs[0].Kind != TriggerSLOAlert || tgs[0].At != 20 || tgs[1].At != 50 {
		t.Fatalf("unexpected triggers: %+v", tgs)
	}
	var clears int
	for _, ev := range r.Events() {
		if ev.Kind == KindSLO && ev.Detail == "clear" {
			clears++
		}
	}
	if clears != 1 {
		t.Fatalf("got %d clear events, want 1", clears)
	}
}

func TestDossierDeterministicAndVerifiable(t *testing.T) {
	build := func() []Dossier {
		r := New(128)
		reg := obs.NewRegistry()
		reg.Counter("x").Add(3)
		tr := obs.NewTracer()
		sp := tr.Root(obs.TrackServing, "request", 1, 5*time.Millisecond)
		sp.End(9 * time.Millisecond)
		r.Record(5*time.Millisecond, KindSpan, "request", "", int64(obs.TrackServing), int64(4*time.Millisecond))
		r.Record(6*time.Millisecond, KindAdmission, "shed-burst", "tenant-a", 0, 0)
		r.Trigger(TriggerMassFail, 7*time.Millisecond, "pool")
		return r.Dossiers(Sources{Metrics: reg.Snapshot(), Trace: tr})
	}
	da, db := build(), build()
	ja, _ := json.Marshal(da)
	jb, _ := json.Marshal(db)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same-seed dossiers differ:\n%s\n%s", ja, jb)
	}
	if len(da) != 1 {
		t.Fatalf("got %d dossiers, want 1", len(da))
	}
	d := da[0]
	if want, got, ok := d.Verify(); !ok {
		t.Fatalf("fresh dossier fails verification: want %s got %s", want, got)
	}
	if len(d.Events) != 3 { // span + admission + the trigger marker
		t.Fatalf("window holds %d events, want 3: %+v", len(d.Events), d.Events)
	}
	if d.Analysis == nil || d.Analysis.Spans != 1 {
		t.Fatalf("window analysis missing or wrong: %+v", d.Analysis)
	}
	d.Events[0].A++ // tamper
	if _, _, ok := d.Verify(); ok {
		t.Fatal("tampered dossier still verifies")
	}
}

func TestDossierWindowFilters(t *testing.T) {
	r := New(128)
	r.Record(1*time.Minute, KindWAL, "append", "", 1, 8)
	r.Record(30*time.Minute, KindWAL, "append", "", 2, 8)
	r.Trigger(TriggerManual, 30*time.Minute, "")
	ds := r.Dossiers(Sources{})
	if len(ds) != 1 {
		t.Fatalf("got %d dossiers", len(ds))
	}
	for _, ev := range ds[0].Events {
		if ev.Time < ds[0].Window.From || ev.Time > ds[0].Window.To {
			t.Fatalf("event %+v outside window %+v", ev, ds[0].Window)
		}
	}
	if len(ds[0].Events) != 2 { // the 30m append + trigger marker; 1m append aged out
		t.Fatalf("window holds %d events, want 2: %+v", len(ds[0].Events), ds[0].Events)
	}
}

func TestWriteReadDossiers(t *testing.T) {
	dir := t.TempDir()
	r := New(32)
	r.Record(1, KindFailover, "shard0", "", 0, 0)
	r.Trigger(TriggerFailover, 1, "shard0")
	ds := r.Dossiers(Sources{})
	paths, err := WriteDossiers(dir, "shard0", ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || filepath.Base(paths[0]) != "shard0-incident-000-shard-failover.json" {
		t.Fatalf("unexpected paths %v", paths)
	}
	got, err := ReadDossier(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := got.Verify(); !ok {
		t.Fatal("round-tripped dossier fails digest verification")
	}
	if got.Trigger.Kind != TriggerFailover {
		t.Fatalf("trigger = %+v", got.Trigger)
	}
	// Byte-identical on re-write: the artefact is deterministic.
	raw, _ := os.ReadFile(paths[0])
	if _, err := WriteDossiers(dir, "shard0", ds); err != nil {
		t.Fatal(err)
	}
	raw2, _ := os.ReadFile(paths[0])
	if !bytes.Equal(raw, raw2) {
		t.Fatal("re-written dossier differs")
	}
}

func TestHandlerServesStateAndManualTrigger(t *testing.T) {
	r := New(32)
	r.Record(2, KindSpan, "x", "", 0, 0)
	h := Handler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/flight", nil))
	var view struct {
		Slots    int       `json:"slots"`
		Recorded uint64    `json:"recorded"`
		Triggers []Trigger `json:"triggers"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.Slots != 32 || view.Recorded != 1 || len(view.Triggers) != 0 {
		t.Fatalf("view = %+v", view)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/flight?trigger=manual&detail=ops", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if len(view.Triggers) != 1 || view.Triggers[0].Kind != TriggerManual || view.Triggers[0].Detail != "ops" {
		t.Fatalf("manual trigger missing: %+v", view.Triggers)
	}
	if view.Triggers[0].At != 2 {
		t.Fatalf("manual trigger stamped at %v, want the latest event time 2", view.Triggers[0].At)
	}
}

func TestRecordZeroAllocs(t *testing.T) {
	r := New(1024)
	var i int64
	allocs := testing.AllocsPerRun(512, func() {
		i++
		r.Record(time.Duration(i), KindWAL, "append", "", i, 64)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f allocs/op, want 0", allocs)
	}
}
