package flight

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"edgetune/internal/obs"
	"edgetune/internal/obs/analyze"
	"edgetune/internal/obs/slo"
)

// DossierSchema versions the dossier JSON layout.
const DossierSchema = 1

// Default window bounds around a trigger. The lookback matches the SLO
// evaluator's fast alert window, so an alert dossier carries the error
// events that tripped it; the lookahead captures the immediate
// aftermath (failover catch-up, recovery probes).
const (
	DefaultWindowBefore = 5 * time.Minute
	DefaultWindowAfter  = time.Second
)

// Window is a dossier's simulated-time span.
type Window struct {
	From time.Duration `json:"fromNs"`
	To   time.Duration `json:"toNs"`
}

// Dossier is one self-contained incident artefact. Every slice inside
// is deterministically ordered, so same-seed runs marshal dossiers
// byte-identically.
type Dossier struct {
	Schema  int     `json:"schema"`
	Trigger Trigger `json:"trigger"`
	Window  Window  `json:"window"`
	// Events is the ring's retained events inside the window, sorted
	// by (time, ID).
	Events []Event `json:"events"`
	// Truncated reports that the ring had already overwritten events
	// older than the window start, so the timeline's left edge is the
	// ring's, not the window's.
	Truncated bool `json:"truncated,omitempty"`
	// Dropped is the ring's lifetime overwrite count at build time.
	Dropped uint64 `json:"dropped,omitempty"`
	// Metrics and SLO are the run's registry and objective snapshots.
	Metrics obs.Snapshot `json:"metrics"`
	SLO     slo.Snapshot `json:"slo"`
	// Analysis is the critical-path + queue-decomposition mini-report
	// computed over just the window's trace spans (nil without a
	// tracer).
	Analysis *analyze.Report `json:"analysis,omitempty"`
	// Digest is the FNV-1a digest of the dossier serialised with this
	// field empty; Verify recomputes it.
	Digest string `json:"digest"`
}

// Sources supplies the run-level context a dossier embeds. Dossiers
// are built after the run quiesces, so the snapshots are the final,
// deterministic ones.
type Sources struct {
	Metrics obs.Snapshot
	SLO     slo.Snapshot
	// Trace, when non-nil, feeds the per-window analysis mini-report.
	Trace *obs.Tracer
	// Before/After override the window bounds (0 gets the defaults).
	Before, After time.Duration
}

// Dossiers builds one dossier per fired trigger from the current ring.
// It does not consume the triggers: calling it twice on a quiesced
// recorder yields byte-identical artefacts.
func (r *Recorder) Dossiers(src Sources) []Dossier {
	if r == nil {
		return nil
	}
	before, after := src.Before, src.After
	if before <= 0 {
		before = DefaultWindowBefore
	}
	if after <= 0 {
		after = DefaultWindowAfter
	}
	events := r.Events()
	triggers := r.Triggers()
	_, _, dropped := r.Stats()
	if len(triggers) == 0 {
		return nil
	}

	// Parse the trace once; each dossier filters its own window.
	var spans *analyze.Trace
	if src.Trace != nil {
		var buf bytes.Buffer
		if err := src.Trace.WriteJSONL(&buf); err == nil {
			if tr, err := analyze.ParseJSONL(&buf); err == nil {
				spans = tr
			}
		}
	}

	var oldest time.Duration
	if len(events) > 0 {
		oldest = events[0].Time
	}
	out := make([]Dossier, 0, len(triggers))
	for _, tg := range triggers {
		w := Window{From: tg.At - before, To: tg.At + after}
		if w.From < 0 {
			w.From = 0
		}
		d := Dossier{
			Schema:  DossierSchema,
			Trigger: tg,
			Window:  w,
			Events:  filterEvents(events, w),
			Dropped: dropped,
			Metrics: src.Metrics,
			SLO:     src.SLO,
		}
		if dropped > 0 && oldest > w.From {
			d.Truncated = true
		}
		if spans != nil {
			d.Analysis = analyze.Analyze(windowTrace(spans, w))
		}
		d.Digest = d.computeDigest()
		out = append(out, d)
	}
	return out
}

// filterEvents keeps the (already sorted) events inside the window.
func filterEvents(evs []Event, w Window) []Event {
	out := make([]Event, 0, len(evs))
	for _, ev := range evs {
		if ev.Time >= w.From && ev.Time <= w.To {
			out = append(out, ev)
		}
	}
	return out
}

// windowTrace restricts a parsed trace to spans overlapping the
// window, so the mini-report explains the incident's neighbourhood
// rather than the whole run.
func windowTrace(tr *analyze.Trace, w Window) *analyze.Trace {
	out := &analyze.Trace{Malformed: tr.Malformed, Errors: tr.Errors}
	for _, sp := range tr.Spans {
		if sp.Start <= w.To && sp.End() >= w.From {
			out.Spans = append(out.Spans, sp)
		}
	}
	return out
}

// computeDigest hashes the dossier serialised with an empty digest.
func (d Dossier) computeDigest() string {
	d.Digest = ""
	raw, err := json.Marshal(d)
	if err != nil {
		return "fnv1a:error"
	}
	h := uint64(fnvOffset)
	for _, c := range raw {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return fmt.Sprintf("fnv1a:%016x", h)
}

// Verify recomputes the digest; a false return means the artefact was
// edited (or corrupted) after it was written.
func (d Dossier) Verify() (want, got string, ok bool) {
	want = d.Digest
	got = d.computeDigest()
	return want, got, want == got
}

// Filename is the deterministic artefact name for a dossier: its
// trigger sequence and kind (plus an optional source prefix, e.g. the
// owning shard).
func Filename(prefix string, d Dossier) string {
	if prefix != "" {
		prefix += "-"
	}
	return fmt.Sprintf("%sincident-%03d-%s.json", prefix, d.Trigger.Seq, d.Trigger.Kind)
}

// WriteDossiers writes each dossier into dir (created if needed) under
// its deterministic Filename and returns the written paths.
func WriteDossiers(dir, prefix string, ds []Dossier) ([]string, error) {
	if len(ds) == 0 {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(ds))
	for _, d := range ds {
		raw, err := json.MarshalIndent(d, "", "  ")
		if err != nil {
			return paths, err
		}
		raw = append(raw, '\n')
		path := filepath.Join(dir, Filename(prefix, d))
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// ReadDossier loads one artefact from disk.
func ReadDossier(path string) (Dossier, error) {
	var d Dossier
	raw, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(raw, &d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}
