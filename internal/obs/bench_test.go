package obs

import (
	"testing"
	"time"
)

// instrumentedSubmit mirrors the instrumentation sequence on the
// inference Submit hot path: one tracer nil check guarding span
// construction, plus the nil-safe counter hooks. With tr == nil and
// nil instruments this must compile down to a handful of pointer
// checks — the acceptance bar is ≤ 5 ns/op of overhead.
func instrumentedSubmit(tr *Tracer, requests *Counter, lat *Histogram, seq uint64) *Span {
	var sp *Span
	if tr != nil {
		sp = tr.Root(TrackServing, "request", seq, time.Duration(seq), Str("sig", "bench"))
	}
	requests.Add(1)
	lat.Observe(float64(seq))
	return sp
}

// baselineSubmit is the same shape with no instrumentation at all; the
// disabled-tracing overhead is BenchmarkTracingDisabled minus this.
//
//go:noinline
func baselineSubmit(seq uint64) uint64 { return seq + 1 }

func BenchmarkNoInstrumentation(b *testing.B) {
	var acc uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc = baselineSubmit(uint64(i))
	}
	_ = acc
}

func BenchmarkTracingDisabled(b *testing.B) {
	var tr *Tracer
	var reg *Registry
	requests := reg.Counter("serving.requests")
	lat := reg.Histogram("serving.latency.ms", LatencyBucketsMS)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := instrumentedSubmit(tr, requests, lat, uint64(i))
		if sp != nil {
			sp.Set(Bool("cached", false))
		}
		sp.End(time.Duration(i))
	}
}

func BenchmarkTracingEnabled(b *testing.B) {
	tr := NewTracer()
	reg := NewRegistry()
	requests := reg.Counter("serving.requests")
	lat := reg.Histogram("serving.latency.ms", LatencyBucketsMS)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := instrumentedSubmit(tr, requests, lat, uint64(i))
		sp.Set(Bool("cached", false))
		sp.End(time.Duration(i))
	}
}

func BenchmarkRegistrySnapshot(b *testing.B) {
	reg := NewRegistry()
	for i := 0; i < 20; i++ {
		reg.Counter(string(rune('a'+i)) + ".count").Add(int64(i))
	}
	h := reg.Histogram("lat", LatencyBucketsMS)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i % 300))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = reg.Snapshot()
	}
}
