// Package analyze turns the deterministic JSONL span traces of the obs
// tracer into machine-checkable answers: where did the time go
// (critical paths), how much of a request was queueing vs service,
// which devices and rungs consumed the time and energy, and whether
// hedging earned its cost. It is stdlib-only, and every report is
// deterministic — same trace bytes, same report bytes — so two
// same-seed runs analyse byte-identically and traces can be diffed as
// regression gates.
//
// Ingestion is robust by design: a malformed or truncated line is
// counted and sampled into the report instead of aborting the analysis
// (a trace cut short by a crash is exactly when the analysis matters).
package analyze

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// Span is one parsed trace span.
type Span struct {
	ID     uint64
	Parent uint64
	Name   string
	Track  int
	Start  time.Duration
	Dur    time.Duration
	Attrs  map[string]any
}

// End is the span's finish time on the simulated clock.
func (s Span) End() time.Duration { return s.Start + s.Dur }

// attrStr reads a string attribute ("" when absent or mistyped).
func (s Span) attrStr(key string) string {
	v, _ := s.Attrs[key].(string)
	return v
}

// attrFloat reads a numeric attribute (0 when absent or mistyped).
// JSON numbers decode as float64, so integer attributes land here too.
func (s Span) attrFloat(key string) float64 {
	v, _ := s.Attrs[key].(float64)
	return v
}

// attrBool reads a boolean attribute (false when absent or mistyped).
func (s Span) attrBool(key string) bool {
	v, _ := s.Attrs[key].(bool)
	return v
}

// Trace is a parsed span file plus its ingestion blemishes.
type Trace struct {
	Spans []Span
	// Malformed counts lines that failed to parse; Errors samples the
	// first few parse failures for the report.
	Malformed int
	Errors    []string
}

// maxParseErrors caps the sampled parse failures.
const maxParseErrors = 5

// jsonSpan mirrors the tracer's JSONL export shape.
type jsonSpan struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent"`
	Name   string `json:"name"`
	Track  int    `json:"track"`
	Start  int64  `json:"startNs"`
	Dur    int64  `json:"durNs"`
	Attrs  []struct {
		K string `json:"k"`
		V any    `json:"v"`
	} `json:"attrs"`
}

// ParseJSONL reads one span per line. Unparseable lines (corruption,
// truncation) are counted and sampled, never fatal; the returned error
// covers only the reader itself.
func ParseJSONL(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var js jsonSpan
		if err := json.Unmarshal([]byte(raw), &js); err != nil || js.Name == "" {
			tr.Malformed++
			if len(tr.Errors) < maxParseErrors {
				msg := fmt.Sprintf("line %d: not a span", line)
				if err != nil {
					msg = fmt.Sprintf("line %d: %v", line, err)
				}
				tr.Errors = append(tr.Errors, msg)
			}
			continue
		}
		sp := Span{
			ID:     js.ID,
			Parent: js.Parent,
			Name:   js.Name,
			Track:  js.Track,
			Start:  time.Duration(js.Start),
			Dur:    time.Duration(js.Dur),
		}
		if len(js.Attrs) > 0 {
			sp.Attrs = make(map[string]any, len(js.Attrs))
			for _, a := range js.Attrs {
				sp.Attrs[a.K] = a.V
			}
		}
		tr.Spans = append(tr.Spans, sp)
	}
	return tr, sc.Err()
}

// ParseFile reads a JSONL trace from path.
func ParseFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseJSONL(f)
}

// ClassStat aggregates one span class (all spans sharing a name).
type ClassStat struct {
	Name  string        `json:"name"`
	Count int           `json:"count"`
	Total time.Duration `json:"totalNs"`
	Min   time.Duration `json:"minNs"`
	Max   time.Duration `json:"maxNs"`
}

// Mean is the class's mean span duration.
func (c ClassStat) Mean() time.Duration {
	if c.Count == 0 {
		return 0
	}
	return c.Total / time.Duration(c.Count)
}

// PathStat aggregates one critical path: the chain of dominant child
// spans under one root class.
type PathStat struct {
	Root  string        `json:"root"`
	Path  string        `json:"path"`
	Count int           `json:"count"`
	Total time.Duration `json:"totalNs"`
	// Share is Total over the summed duration of all paths under the
	// same root class.
	Share float64 `json:"share"`
}

// QueueStats decomposes served requests into admission-queue wait and
// service time, plus the queue-position samples the admission gate
// stamps on its spans.
type QueueStats struct {
	// Served counts requests with a serve phase (uncached admissions).
	Served int `json:"served"`
	// Wait sums serve.start − request.start: time between submission and
	// a worker picking the request up, on the simulated clock.
	Wait time.Duration `json:"waitNs"`
	// Service sums the serve spans' durations.
	Service time.Duration `json:"serviceNs"`
	// WaitShare is Wait / (Wait + Service).
	WaitShare float64 `json:"waitShare"`
	// QueuedAheadTotal and QueuedAheadMax aggregate the "queuedAhead"
	// admission-span attribute: how many requests sat ahead in the queue
	// at enqueue.
	QueuedAheadTotal int64 `json:"queuedAheadTotal"`
	QueuedAheadMax   int64 `json:"queuedAheadMax"`
}

// DeviceStat is one pool device's serving breakdown.
type DeviceStat struct {
	Device   string        `json:"device"`
	Attempts int           `json:"attempts"`
	Failures int           `json:"failures"`
	Busy     time.Duration `json:"busyNs"`
	EnergyJ  float64       `json:"energyJ"`
}

// RungStat is one successive-halving rung's breakdown.
type RungStat struct {
	Bracket int           `json:"bracket"`
	Rung    int           `json:"rung"`
	Trials  int           `json:"trials"`
	Total   time.Duration `json:"totalNs"`
	EnergyJ float64       `json:"energyJ"`
}

// HedgeStats reports hedging effectiveness: how often the speculative
// second attempt fired, how often it won, what it cost, and what the
// wins saved against the straggling primary.
type HedgeStats struct {
	Hedges int `json:"hedges"`
	Wins   int `json:"wins"`
	// WinRate is Wins/Hedges.
	WinRate float64 `json:"winRate"`
	// Busy and EnergyJ are the total simulated time and energy spent on
	// hedge attempts — the insurance premium.
	Busy    time.Duration `json:"busyNs"`
	EnergyJ float64       `json:"energyJ"`
	// Saved sums, over winning hedges, the primary's full duration minus
	// the hedged finish: the latency the insurance paid out.
	Saved time.Duration `json:"savedNs"`
}

// OutcomeCount is one request-outcome tally.
type OutcomeCount struct {
	Outcome string `json:"outcome"`
	Count   int    `json:"count"`
}

// RequestStats summarises the serving track's request spans.
type RequestStats struct {
	Total    int            `json:"total"`
	Outcomes []OutcomeCount `json:"outcomes,omitempty"`
	// P50/P95/P99 are exact (nearest-rank) quantiles of successful
	// request latencies on the simulated clock.
	P50 time.Duration `json:"p50Ns"`
	P95 time.Duration `json:"p95Ns"`
	P99 time.Duration `json:"p99Ns"`
}

// Report is a full trace analysis. All slices are deterministically
// sorted, so same trace bytes yield same report bytes.
type Report struct {
	Spans     int      `json:"spans"`
	Malformed int      `json:"malformed"`
	Errors    []string `json:"errors,omitempty"`
	// Horizon is the latest span end time.
	Horizon       time.Duration `json:"horizonNs"`
	Classes       []ClassStat   `json:"classes,omitempty"`
	CriticalPaths []PathStat    `json:"criticalPaths,omitempty"`
	Queue         QueueStats    `json:"queue"`
	Devices       []DeviceStat  `json:"devices,omitempty"`
	Rungs         []RungStat    `json:"rungs,omitempty"`
	Hedging       HedgeStats    `json:"hedging"`
	Requests      RequestStats  `json:"requests"`
}

// index is the analyser's working view of a trace.
type index struct {
	byID     map[uint64]int
	children map[uint64][]int
	spans    []Span
}

func buildIndex(spans []Span) *index {
	ix := &index{
		byID:     make(map[uint64]int, len(spans)),
		children: make(map[uint64][]int),
		spans:    spans,
	}
	for i, sp := range spans {
		ix.byID[sp.ID] = i
		if sp.Parent != 0 {
			ix.children[sp.Parent] = append(ix.children[sp.Parent], i)
		}
	}
	for _, kids := range ix.children {
		sort.Slice(kids, func(a, b int) bool {
			sa, sb := ix.spans[kids[a]], ix.spans[kids[b]]
			if sa.Start != sb.Start {
				return sa.Start < sb.Start
			}
			return sa.ID < sb.ID
		})
	}
	return ix
}

// criticalPath walks from root to leaf, at each level descending into
// the child with the largest duration (ties resolved by smallest ID, so
// the walk is deterministic), and returns the chain of span names.
func (ix *index) criticalPath(root int) string {
	names := []string{ix.spans[root].Name}
	cur := root
	for depth := 0; depth < 32; depth++ {
		kids := ix.children[ix.spans[cur].ID]
		if len(kids) == 0 {
			break
		}
		best := -1
		for _, k := range kids {
			if best < 0 ||
				ix.spans[k].Dur > ix.spans[best].Dur ||
				(ix.spans[k].Dur == ix.spans[best].Dur && ix.spans[k].ID < ix.spans[best].ID) {
				best = k
			}
		}
		names = append(names, ix.spans[best].Name)
		cur = best
	}
	return strings.Join(names, " > ")
}

// Analyze computes the full report for a parsed trace.
func Analyze(tr *Trace) *Report {
	rep := &Report{
		Spans:     len(tr.Spans),
		Malformed: tr.Malformed,
		Errors:    append([]string(nil), tr.Errors...),
	}
	ix := buildIndex(tr.Spans)

	classes := map[string]*ClassStat{}
	paths := map[string]*PathStat{}
	pathRootTotals := map[string]time.Duration{}
	devices := map[string]*DeviceStat{}
	rungs := map[[2]int]*RungStat{}
	outcomes := map[string]int{}
	var okLatencies []time.Duration

	for i, sp := range tr.Spans {
		if end := sp.End(); end > rep.Horizon {
			rep.Horizon = end
		}
		cs, ok := classes[sp.Name]
		if !ok {
			cs = &ClassStat{Name: sp.Name, Min: sp.Dur, Max: sp.Dur}
			classes[sp.Name] = cs
		}
		cs.Count++
		cs.Total += sp.Dur
		if sp.Dur < cs.Min {
			cs.Min = sp.Dur
		}
		if sp.Dur > cs.Max {
			cs.Max = sp.Dur
		}

		// Critical paths for the pipeline's units of work: whole-job and
		// request roots, plus each training trial.
		if sp.Parent == 0 || sp.Name == "trial" {
			path := ix.criticalPath(i)
			ps, ok := paths[sp.Name+"\x00"+path]
			if !ok {
				ps = &PathStat{Root: sp.Name, Path: path}
				paths[sp.Name+"\x00"+path] = ps
			}
			ps.Count++
			ps.Total += sp.Dur
			pathRootTotals[sp.Name] += sp.Dur
		}

		switch sp.Name {
		case "request":
			rep.Requests.Total++
			oc := sp.attrStr("outcome")
			if oc == "" {
				oc = "unknown"
			}
			outcomes[oc]++
			if oc == "ok" {
				okLatencies = append(okLatencies, sp.Dur)
			}
			// Wait vs service: the gap between submission and the serve
			// phase is queue wait; the serve span is service.
			for _, k := range ix.children[sp.ID] {
				child := ix.spans[k]
				if child.Name != "serve" {
					continue
				}
				rep.Queue.Served++
				if w := child.Start - sp.Start; w > 0 {
					rep.Queue.Wait += w
				}
				rep.Queue.Service += child.Dur
				break
			}
		case "admission":
			if ahead, ok := sp.Attrs["queuedAhead"].(float64); ok {
				n := int64(ahead)
				rep.Queue.QueuedAheadTotal += n
				if n > rep.Queue.QueuedAheadMax {
					rep.Queue.QueuedAheadMax = n
				}
			}
		case "device-attempt":
			name := sp.attrStr("device")
			if name == "" {
				name = "unknown"
			}
			ds, ok := devices[name]
			if !ok {
				ds = &DeviceStat{Device: name}
				devices[name] = ds
			}
			ds.Attempts++
			ds.Busy += sp.Dur
			ds.EnergyJ += sp.attrFloat("energyJ")
			if out := sp.attrStr("outcome"); out != "" && out != "ok" {
				ds.Failures++
			}
		case "rung":
			bracket := -1
			if p, ok := ix.byID[sp.Parent]; ok && ix.spans[p].Name == "bracket" {
				bracket = int(ix.spans[p].attrFloat("bracket"))
			}
			key := [2]int{bracket, int(sp.attrFloat("rung"))}
			rs, ok := rungs[key]
			if !ok {
				rs = &RungStat{Bracket: key[0], Rung: key[1]}
				rungs[key] = rs
			}
			rs.Total += sp.Dur
			for _, k := range ix.children[sp.ID] {
				child := ix.spans[k]
				if child.Name != "trial" {
					continue
				}
				rs.Trials++
				rs.EnergyJ += child.attrFloat("energyJ")
			}
		case "hedge":
			rep.Hedging.Hedges++
			rep.Hedging.Busy += sp.Dur
			for _, k := range ix.children[sp.ID] {
				rep.Hedging.EnergyJ += ix.spans[k].attrFloat("energyJ")
			}
			if !sp.attrBool("won") {
				break
			}
			rep.Hedging.Wins++
			// The win's payout: the primary's full duration (its direct
			// device-attempts under the enclosing serve span) minus the
			// hedged finish, both relative to the serve start.
			if p, ok := ix.byID[sp.Parent]; ok && ix.spans[p].Name == "serve" {
				serve := ix.spans[p]
				var primary time.Duration
				for _, k := range ix.children[serve.ID] {
					if ix.spans[k].Name == "device-attempt" {
						primary += ix.spans[k].Dur
					}
				}
				if saved := primary - (sp.End() - serve.Start); saved > 0 {
					rep.Hedging.Saved += saved
				}
			}
		}
	}

	if rep.Hedging.Hedges > 0 {
		rep.Hedging.WinRate = float64(rep.Hedging.Wins) / float64(rep.Hedging.Hedges)
	}
	if t := rep.Queue.Wait + rep.Queue.Service; t > 0 {
		rep.Queue.WaitShare = float64(rep.Queue.Wait) / float64(t)
	}

	for _, cs := range classes {
		rep.Classes = append(rep.Classes, *cs)
	}
	sort.Slice(rep.Classes, func(i, j int) bool { return rep.Classes[i].Name < rep.Classes[j].Name })

	for _, ps := range paths {
		if t := pathRootTotals[ps.Root]; t > 0 {
			ps.Share = float64(ps.Total) / float64(t)
		}
		rep.CriticalPaths = append(rep.CriticalPaths, *ps)
	}
	sort.Slice(rep.CriticalPaths, func(i, j int) bool {
		a, b := rep.CriticalPaths[i], rep.CriticalPaths[j]
		if a.Root != b.Root {
			return a.Root < b.Root
		}
		if a.Total != b.Total {
			return a.Total > b.Total
		}
		return a.Path < b.Path
	})

	for _, ds := range devices {
		rep.Devices = append(rep.Devices, *ds)
	}
	sort.Slice(rep.Devices, func(i, j int) bool { return rep.Devices[i].Device < rep.Devices[j].Device })

	for _, rs := range rungs {
		rep.Rungs = append(rep.Rungs, *rs)
	}
	sort.Slice(rep.Rungs, func(i, j int) bool {
		a, b := rep.Rungs[i], rep.Rungs[j]
		if a.Bracket != b.Bracket {
			return a.Bracket < b.Bracket
		}
		return a.Rung < b.Rung
	})

	for oc, n := range outcomes {
		rep.Requests.Outcomes = append(rep.Requests.Outcomes, OutcomeCount{Outcome: oc, Count: n})
	}
	sort.Slice(rep.Requests.Outcomes, func(i, j int) bool {
		return rep.Requests.Outcomes[i].Outcome < rep.Requests.Outcomes[j].Outcome
	})
	sort.Slice(okLatencies, func(i, j int) bool { return okLatencies[i] < okLatencies[j] })
	rep.Requests.P50 = nearestRank(okLatencies, 0.50)
	rep.Requests.P95 = nearestRank(okLatencies, 0.95)
	rep.Requests.P99 = nearestRank(okLatencies, 0.99)
	return rep
}

// nearestRank is the exact q-quantile of a sorted sample.
func nearestRank(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// WriteText renders the report as stable plaintext.
func (r *Report) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "trace: %d spans, horizon %s", r.Spans, r.Horizon)
	if r.Malformed > 0 {
		fmt.Fprintf(bw, " (%d malformed lines skipped)", r.Malformed)
	}
	fmt.Fprintln(bw)
	for _, e := range r.Errors {
		fmt.Fprintf(bw, "  parse error: %s\n", e)
	}

	fmt.Fprintln(bw, "\nspan classes:")
	for _, c := range r.Classes {
		fmt.Fprintf(bw, "  %-16s count=%-5d total=%-14s mean=%-12s min=%-12s max=%s\n",
			c.Name, c.Count, c.Total, c.Mean(), c.Min, c.Max)
	}

	fmt.Fprintln(bw, "\ncritical paths (dominant chain per unit of work):")
	for _, p := range r.CriticalPaths {
		fmt.Fprintf(bw, "  %5.1f%%  %-9s ×%-4d %-12s %s\n",
			p.Share*100, p.Root, p.Count, p.Total, p.Path)
	}

	fmt.Fprintf(bw, "\nqueue wait vs service (served requests: %d):\n", r.Queue.Served)
	fmt.Fprintf(bw, "  wait=%s service=%s wait-share=%.1f%%\n",
		r.Queue.Wait, r.Queue.Service, r.Queue.WaitShare*100)
	fmt.Fprintf(bw, "  queued-ahead total=%d max=%d\n",
		r.Queue.QueuedAheadTotal, r.Queue.QueuedAheadMax)

	if len(r.Devices) > 0 {
		fmt.Fprintln(bw, "\nper-device breakdown:")
		for _, d := range r.Devices {
			fmt.Fprintf(bw, "  %-10s attempts=%-4d failures=%-3d busy=%-14s energy=%.1fJ\n",
				d.Device, d.Attempts, d.Failures, d.Busy, d.EnergyJ)
		}
	}

	if len(r.Rungs) > 0 {
		fmt.Fprintln(bw, "\nper-rung breakdown:")
		for _, g := range r.Rungs {
			fmt.Fprintf(bw, "  bracket %d rung %d: trials=%-4d time=%-14s energy=%.1fJ\n",
				g.Bracket, g.Rung, g.Trials, g.Total, g.EnergyJ)
		}
	}

	fmt.Fprintln(bw, "\nhedging:")
	fmt.Fprintf(bw, "  hedges=%d wins=%d win-rate=%.1f%% cost=%s/%.1fJ saved=%s\n",
		r.Hedging.Hedges, r.Hedging.Wins, r.Hedging.WinRate*100,
		r.Hedging.Busy, r.Hedging.EnergyJ, r.Hedging.Saved)

	fmt.Fprintf(bw, "\nrequests (%d):\n", r.Requests.Total)
	for _, oc := range r.Requests.Outcomes {
		fmt.Fprintf(bw, "  %-18s %d\n", oc.Outcome, oc.Count)
	}
	fmt.Fprintf(bw, "  latency p50=%s p95=%s p99=%s\n",
		r.Requests.P50, r.Requests.P95, r.Requests.P99)
	return bw.Flush()
}
