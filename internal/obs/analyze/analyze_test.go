package analyze

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// syntheticTrace is a hand-built JSONL trace exercising every report
// section: a request with queue wait, a serve with a winning hedge, a
// bracket/rung/trial tree with energy attributes, and an admission span
// with a queue position.
const syntheticTrace = `{"id":1,"parent":0,"name":"request","track":2,"startNs":0,"durNs":1000,"attrs":[{"k":"outcome","v":"ok"}]}
{"id":2,"parent":1,"name":"admission","track":2,"startNs":0,"durNs":0,"attrs":[{"k":"verdict","v":"admitted"},{"k":"queuedAhead","v":3}]}
{"id":3,"parent":1,"name":"serve","track":2,"startNs":200,"durNs":800}
{"id":4,"parent":3,"name":"device-attempt","track":2,"startNs":200,"durNs":800,"attrs":[{"k":"device","v":"jetson"},{"k":"outcome","v":"timeout"},{"k":"energyJ","v":5.5}]}
{"id":5,"parent":3,"name":"hedge","track":2,"startNs":600,"durNs":300,"attrs":[{"k":"won","v":true}]}
{"id":6,"parent":5,"name":"device-attempt","track":2,"startNs":600,"durNs":300,"attrs":[{"k":"device","v":"pi4"},{"k":"outcome","v":"ok"},{"k":"energyJ","v":2.5}]}
{"id":7,"parent":0,"name":"request","track":2,"startNs":0,"durNs":50,"attrs":[{"k":"outcome","v":"overloaded"}]}
{"id":8,"parent":0,"name":"tune","track":1,"startNs":0,"durNs":5000}
{"id":9,"parent":8,"name":"bracket","track":1,"startNs":0,"durNs":5000,"attrs":[{"k":"bracket","v":0}]}
{"id":10,"parent":9,"name":"rung","track":1,"startNs":0,"durNs":5000,"attrs":[{"k":"rung","v":0}]}
{"id":11,"parent":10,"name":"trial","track":1,"startNs":0,"durNs":3000,"attrs":[{"k":"energyJ","v":10}]}
{"id":12,"parent":10,"name":"trial","track":1,"startNs":3000,"durNs":2000,"attrs":[{"k":"energyJ","v":4}]}
{"id":13,"parent":11,"name":"attempt","track":1,"startNs":0,"durNs":3000}
`

func parseString(t *testing.T, s string) *Trace {
	t.Helper()
	tr, err := ParseJSONL(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestParseJSONLMalformedLines(t *testing.T) {
	input := syntheticTrace +
		"{not json at all\n" +
		"\n" + // blank lines are skipped, not malformed
		`{"id":99,"parent":0,"startNs":1,"durNs":1}` + "\n" + // no name
		`{"id":14,"parent":0,"name":"request","track":2,"startNs":9000,"durNs":1` // truncated
	tr := parseString(t, input)
	if tr.Malformed != 3 {
		t.Errorf("malformed = %d, want 3 (errors: %v)", tr.Malformed, tr.Errors)
	}
	if len(tr.Errors) == 0 || len(tr.Errors) > maxParseErrors {
		t.Errorf("error samples = %v", tr.Errors)
	}
	if len(tr.Spans) != 13 {
		t.Errorf("spans = %d, want 13 good ones", len(tr.Spans))
	}
	// The analysis must survive a blemished trace and surface the count.
	rep := Analyze(tr)
	if rep.Malformed != 3 || rep.Spans != 13 {
		t.Errorf("report spans=%d malformed=%d", rep.Spans, rep.Malformed)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3 malformed lines skipped") {
		t.Errorf("text report must surface malformed count:\n%s", buf.String())
	}
}

func TestAnalyzeSynthetic(t *testing.T) {
	rep := Analyze(parseString(t, syntheticTrace))

	if rep.Horizon != 5000*time.Nanosecond {
		t.Errorf("horizon = %v, want 5000ns", rep.Horizon)
	}

	// Queue decomposition: one served request, wait 200ns, service 800ns.
	if rep.Queue.Served != 1 || rep.Queue.Wait != 200 || rep.Queue.Service != 800 {
		t.Errorf("queue = %+v", rep.Queue)
	}
	if rep.Queue.WaitShare != 0.2 {
		t.Errorf("wait share = %g, want 0.2", rep.Queue.WaitShare)
	}
	if rep.Queue.QueuedAheadTotal != 3 || rep.Queue.QueuedAheadMax != 3 {
		t.Errorf("queued-ahead = %+v", rep.Queue)
	}

	// Devices: jetson 1 attempt 1 failure 5.5J, pi4 1 attempt ok 2.5J.
	if len(rep.Devices) != 2 {
		t.Fatalf("devices = %+v", rep.Devices)
	}
	if d := rep.Devices[0]; d.Device != "jetson" || d.Failures != 1 || d.EnergyJ != 5.5 {
		t.Errorf("jetson = %+v", d)
	}
	if d := rep.Devices[1]; d.Device != "pi4" || d.Failures != 0 || d.EnergyJ != 2.5 {
		t.Errorf("pi4 = %+v", d)
	}

	// Rungs: bracket 0 rung 0, 2 trials, 5000ns, 14J.
	if len(rep.Rungs) != 1 {
		t.Fatalf("rungs = %+v", rep.Rungs)
	}
	if g := rep.Rungs[0]; g.Bracket != 0 || g.Rung != 0 || g.Trials != 2 || g.Total != 5000 || g.EnergyJ != 14 {
		t.Errorf("rung = %+v", g)
	}

	// Hedging: one hedge, won. Primary device-attempt under serve runs
	// 800ns; the hedged finish is at 900ns, i.e. 700ns after serve start,
	// so the win saved 100ns. Energy = the hedge's own attempt.
	h := rep.Hedging
	if h.Hedges != 1 || h.Wins != 1 || h.WinRate != 1 {
		t.Errorf("hedging = %+v", h)
	}
	if h.Saved != 100 {
		t.Errorf("hedge saved = %v, want 100ns", h.Saved)
	}
	if h.EnergyJ != 2.5 {
		t.Errorf("hedge energy = %g, want 2.5", h.EnergyJ)
	}

	// Requests: 2 total, outcomes sorted, p-quantiles over the one ok.
	if rep.Requests.Total != 2 || len(rep.Requests.Outcomes) != 2 {
		t.Fatalf("requests = %+v", rep.Requests)
	}
	if rep.Requests.Outcomes[0].Outcome != "ok" || rep.Requests.Outcomes[1].Outcome != "overloaded" {
		t.Errorf("outcomes = %+v", rep.Requests.Outcomes)
	}
	if rep.Requests.P50 != 1000 || rep.Requests.P99 != 1000 {
		t.Errorf("latency quantiles = %+v", rep.Requests)
	}

	// Critical paths: the tune root's dominant chain descends through the
	// larger trial.
	var tunePath string
	for _, p := range rep.CriticalPaths {
		if p.Root == "tune" {
			tunePath = p.Path
		}
	}
	want := "tune > bracket > rung > trial > attempt"
	if tunePath != want {
		t.Errorf("tune critical path = %q, want %q", tunePath, want)
	}
}

// TestAnalyzeDeterministic: same trace bytes must yield byte-identical
// text and re-analysis.
func TestAnalyzeDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		if err := Analyze(parseString(t, syntheticTrace)).WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("non-deterministic analysis:\n%s\n---\n%s", a, b)
	}
}

func TestDiffReports(t *testing.T) {
	a := Analyze(parseString(t, syntheticTrace))
	// Same trace: nothing moves, nothing flagged.
	same := DiffReports(a, Analyze(parseString(t, syntheticTrace)), 0.10)
	if same.Flagged != 0 {
		t.Errorf("self-diff flagged %d classes: %+v", same.Flagged, same.Classes)
	}

	// Inflate the serve span 2× and drop the tuner track: serve must flag
	// as a regression and the tuner classes as one-sided.
	mutated := strings.ReplaceAll(syntheticTrace,
		`"name":"serve","track":2,"startNs":200,"durNs":800`,
		`"name":"serve","track":2,"startNs":200,"durNs":1600`)
	var kept []string
	for _, line := range strings.Split(mutated, "\n") {
		if strings.Contains(line, `"track":1`) {
			continue
		}
		kept = append(kept, line)
	}
	b := Analyze(parseString(t, strings.Join(kept, "\n")))
	d := DiffReports(a, b, 0.10)
	if d.Flagged == 0 {
		t.Fatalf("mutated diff flagged nothing: %+v", d.Classes)
	}
	byName := map[string]ClassDelta{}
	for _, c := range d.Classes {
		byName[c.Name] = c
	}
	if c := byName["serve"]; !c.Flagged || c.Rel != 1.0 {
		t.Errorf("serve delta = %+v, want flagged +100%%", c)
	}
	if c := byName["trial"]; !c.Flagged || c.CountB != 0 {
		t.Errorf("trial delta = %+v, want flagged one-sided", c)
	}

	var buf bytes.Buffer
	if err := d.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "! serve") {
		t.Errorf("text diff must mark flagged classes:\n%s", buf.String())
	}
}
