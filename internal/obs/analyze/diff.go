package analyze

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// ClassDelta compares one span class between two traces.
type ClassDelta struct {
	Name string `json:"name"`
	// CountA/CountB and TotalA/TotalB are the class's span count and
	// summed duration in each trace.
	CountA int           `json:"countA"`
	CountB int           `json:"countB"`
	TotalA time.Duration `json:"totalANs"`
	TotalB time.Duration `json:"totalBNs"`
	// Rel is the relative total-duration change (B−A)/A; ±Inf is encoded
	// as ±1e9 to stay JSON-marshalable.
	Rel float64 `json:"rel"`
	// Flagged marks a class whose |Rel| meets the diff threshold, or
	// that exists in only one trace.
	Flagged bool `json:"flagged"`
}

// Diff is a span-class comparison of two traces.
type Diff struct {
	Threshold float64      `json:"threshold"`
	Classes   []ClassDelta `json:"classes,omitempty"`
	Flagged   int          `json:"flagged"`
}

// relInfEncoding stands in for an infinite relative change (class
// absent from one side) so the report stays JSON-marshalable.
const relInfEncoding = 1e9

// DiffReports compares two analyses span-class by span-class, flagging
// any class whose total duration moved by at least threshold
// (relative, e.g. 0.10 for 10%) or that appears in only one trace.
func DiffReports(a, b *Report, threshold float64) *Diff {
	if threshold <= 0 {
		threshold = 0.10
	}
	d := &Diff{Threshold: threshold}
	byName := map[string]*ClassDelta{}
	for _, c := range a.Classes {
		byName[c.Name] = &ClassDelta{Name: c.Name, CountA: c.Count, TotalA: c.Total}
	}
	for _, c := range b.Classes {
		cd, ok := byName[c.Name]
		if !ok {
			cd = &ClassDelta{Name: c.Name}
			byName[c.Name] = cd
		}
		cd.CountB = c.Count
		cd.TotalB = c.Total
	}
	for _, cd := range byName {
		switch {
		case cd.TotalA == 0 && cd.TotalB == 0:
			cd.Rel = 0
		case cd.TotalA == 0:
			cd.Rel = relInfEncoding
		default:
			cd.Rel = float64(cd.TotalB-cd.TotalA) / float64(cd.TotalA)
		}
		if math.Abs(cd.Rel) >= threshold || cd.CountA == 0 || cd.CountB == 0 {
			cd.Flagged = true
			d.Flagged++
		}
		d.Classes = append(d.Classes, *cd)
	}
	sort.Slice(d.Classes, func(i, j int) bool { return d.Classes[i].Name < d.Classes[j].Name })
	return d
}

// WriteText renders the diff as stable plaintext.
func (d *Diff) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "trace diff: %d classes, %d flagged (threshold %.1f%%)\n",
		len(d.Classes), d.Flagged, d.Threshold*100)
	for _, c := range d.Classes {
		mark := "  "
		if c.Flagged {
			mark = "! "
		}
		rel := fmt.Sprintf("%+.1f%%", c.Rel*100)
		if c.Rel >= relInfEncoding {
			rel = "+inf"
		} else if c.Rel <= -relInfEncoding {
			rel = "-inf"
		}
		fmt.Fprintf(bw, "%s%-16s count %d -> %-5d total %s -> %-14s %s\n",
			mark, c.Name, c.CountA, c.CountB, c.TotalA, c.TotalB, rel)
	}
	return bw.Flush()
}
