package prof

import (
	"bytes"
	"compress/gzip"
	"context"
	"runtime/pprof"
	"testing"
	"time"

	"edgetune/internal/obs"
)

func TestDoAppliesLabels(t *testing.T) {
	var tenant, rung string
	var ok bool
	Do(context.Background(), func(ctx context.Context) {
		tenant, ok = pprof.Label(ctx, KeyTenant)
		rung, _ = pprof.Label(ctx, KeyRung)
	}, KeyTenant, "acme", KeyRung, "3")
	if !ok || tenant != "acme" || rung != "3" {
		t.Fatalf("labels not applied: tenant=%q rung=%q ok=%v", tenant, rung, ok)
	}
}

func TestDoMergesOverOuterLabels(t *testing.T) {
	Do(context.Background(), func(outer context.Context) {
		Do(outer, func(ctx context.Context) {
			if v, _ := pprof.Label(ctx, KeyShard); v != "shard1" {
				t.Errorf("outer label lost: shard=%q", v)
			}
			if v, _ := pprof.Label(ctx, KeyRung); v != "2" {
				t.Errorf("inner label missing: rung=%q", v)
			}
		}, KeyRung, "2")
	}, KeyShard, "shard1")
}

func TestDoWithoutLabelsIsDirectCall(t *testing.T) {
	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, 7)
	called := false
	Do(ctx, func(got context.Context) {
		called = true
		if got != ctx {
			t.Error("context replaced on the no-label path")
		}
	})
	if !called {
		t.Fatal("fn not called")
	}
}

func TestMeasureCountsAllocations(t *testing.T) {
	var sink []byte
	p := Measure("alloc-one", 100, func() {
		sink = make([]byte, 1024)
	})
	_ = sink
	if p.AllocsPerOp < 1 || p.AllocsPerOp > 3 {
		t.Errorf("AllocsPerOp = %v, want ~1", p.AllocsPerOp)
	}
	if p.BytesPerOp < 1024 {
		t.Errorf("BytesPerOp = %v, want >= 1024", p.BytesPerOp)
	}
	if p.Stage != "alloc-one" || p.Runs != 100 {
		t.Errorf("probe identity wrong: %+v", p)
	}
}

func TestMeasureZeroAllocLoop(t *testing.T) {
	var acc int
	p := Measure("no-alloc", 1000, func() { acc++ })
	_ = acc
	// The loop body allocates nothing; tolerate a stray runtime alloc.
	if p.AllocsPerOp > 0.1 {
		t.Errorf("AllocsPerOp = %v for a non-allocating op", p.AllocsPerOp)
	}
}

func TestProbePublish(t *testing.T) {
	reg := obs.NewRegistry()
	Probe{Stage: "nn.minibatch-step", Runs: 8, AllocsPerOp: 12, BytesPerOp: 4096}.Publish(reg)
	snap := reg.Snapshot()
	var gotAllocs, gotBytes float64
	for _, g := range snap.Gauges {
		switch g.Name {
		case "prof.allocs-per-op.nn.minibatch-step":
			gotAllocs = g.Value
		case "prof.bytes-per-op.nn.minibatch-step":
			gotBytes = g.Value
		}
	}
	if gotAllocs != 12 || gotBytes != 4096 {
		t.Fatalf("published gauges = %v allocs, %v bytes; want 12, 4096", gotAllocs, gotBytes)
	}
}

// appendString encodes one Profile.string_table entry (field 6,
// length-delimited).
func appendString(b []byte, s string) []byte {
	b = append(b, 6<<3|2, byte(len(s)))
	return append(b, s...)
}

func TestProfileStringsHandCraftedMessage(t *testing.T) {
	var raw []byte
	raw = append(raw, 9<<3|0, 42)                      // varint field: skipped
	raw = appendString(raw, "")                        // string_table[0] is always ""
	raw = appendString(raw, "tenant")                  //
	raw = append(raw, 13<<3|1, 1, 2, 3, 4, 5, 6, 7, 8) // fixed64: skipped
	raw = appendString(raw, "shard0")                  //
	raw = append(raw, 2<<3|2, 3, 0xaa, 0xbb, 0xcc)     // nested sample msg: skipped
	raw = append(raw, 14<<3|5, 1, 2, 3, 4)             // fixed32: skipped

	for _, compress := range []bool{false, true} {
		data := raw
		if compress {
			var buf bytes.Buffer
			zw := gzip.NewWriter(&buf)
			zw.Write(raw)
			zw.Close()
			data = buf.Bytes()
		}
		got, err := ProfileStrings(data)
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		want := []string{"", "tenant", "shard0"}
		if len(got) != len(want) {
			t.Fatalf("compress=%v: table = %q, want %q", compress, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("compress=%v: table[%d] = %q, want %q", compress, i, got[i], want[i])
			}
		}
		if m := MissingStrings(got, []string{"tenant", "shard0"}); len(m) != 0 {
			t.Fatalf("compress=%v: unexpectedly missing %q", compress, m)
		}
		if m := MissingStrings(got, []string{"rung"}); len(m) != 1 || m[0] != "rung" {
			t.Fatalf("compress=%v: MissingStrings = %q, want [rung]", compress, m)
		}
	}
}

func TestProfileStringsTruncated(t *testing.T) {
	for _, data := range [][]byte{
		{6<<3 | 2, 10, 'a'}, // length runs past the buffer
		{9<<3 | 0},          // tag with no varint payload
		{13<<3 | 1, 1, 2},   // fixed64 cut short
	} {
		if _, err := ProfileStrings(data); err == nil {
			t.Errorf("ProfileStrings(%v) accepted a truncated message", data)
		}
	}
}

// TestCPUProfileCarriesLabels is the end-to-end check behind the CI
// gate: CPU samples taken while Do's labels are active must land the
// label keys and values in the profile's string table.
func TestCPUProfileCarriesLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling burn loop")
	}
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("CPU profiling unavailable: %v", err)
	}
	deadline := time.Now().Add(500 * time.Millisecond)
	Do(context.Background(), func(context.Context) {
		acc := 1.0
		for time.Now().Before(deadline) {
			for i := 0; i < 1000; i++ {
				acc = acc*1.0000001 + float64(i)
			}
		}
		_ = acc
	}, KeyTenant, "prof-test-tenant", KeyRung, "7")
	pprof.StopCPUProfile()

	table, err := ProfileStrings(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if m := MissingStrings(table, []string{KeyTenant, "prof-test-tenant", KeyRung}); len(m) != 0 {
		t.Fatalf("captured profile missing label strings %q (table has %d strings)", m, len(table))
	}
}
