package prof

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// ProfileStrings extracts the string table of a pprof profile
// (gzip-compressed protobuf, the format runtime/pprof writes). Label
// keys and values live in that table, so checking a captured profile
// for the taxonomy's keys needs no full profile parser: a minimal
// top-level walk over the Profile message collecting field 6
// (string_table) is enough, and it stays stdlib-only.
func ProfileStrings(data []byte) ([]string, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: profile gunzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("prof: profile gunzip: %w", err)
		}
		data = raw
	}
	var table []string
	for len(data) > 0 {
		key, n := uvarint(data)
		if n <= 0 {
			return nil, errors.New("prof: truncated protobuf tag")
		}
		data = data[n:]
		field, wire := key>>3, key&7
		switch wire {
		case 0: // varint
			_, n := uvarint(data)
			if n <= 0 {
				return nil, errors.New("prof: truncated varint field")
			}
			data = data[n:]
		case 1: // 64-bit
			if len(data) < 8 {
				return nil, errors.New("prof: truncated fixed64 field")
			}
			data = data[8:]
		case 2: // length-delimited
			ln, n := uvarint(data)
			if n <= 0 || uint64(len(data)-n) < ln {
				return nil, errors.New("prof: truncated length-delimited field")
			}
			if field == 6 { // Profile.string_table
				table = append(table, string(data[n:n+int(ln)]))
			}
			data = data[n+int(ln):]
		case 5: // 32-bit
			if len(data) < 4 {
				return nil, errors.New("prof: truncated fixed32 field")
			}
			data = data[4:]
		default:
			return nil, fmt.Errorf("prof: unsupported protobuf wire type %d", wire)
		}
	}
	return table, nil
}

// MissingStrings reports which of want are absent from the table.
func MissingStrings(table []string, want []string) []string {
	have := make(map[string]bool, len(table))
	for _, s := range table {
		have[s] = true
	}
	var missing []string
	for _, w := range want {
		if !have[w] {
			missing = append(missing, w)
		}
	}
	return missing
}

// uvarint decodes an unsigned varint, returning the value and byte
// count (0 when the buffer is truncated). A local copy instead of
// encoding/binary.Uvarint to keep the overflow semantics strict: more
// than 10 bytes is corruption, not a value.
func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}
