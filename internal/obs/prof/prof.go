// Package prof is the profiling plane: it attributes CPU/heap profile
// samples to pipeline dimensions via runtime/pprof labels, and measures
// per-stage allocation cost with deterministic alloc probes surfaced as
// registry gauges.
//
// Label propagation rides the existing -debug-addr pprof endpoints: a
// profile captured from /debug/pprof/profile during a labelled run can
// be sliced per tenant, shard, bracket/rung, fault class, or serving
// priority. Labels follow the context on the calling goroutine only, so
// pipeline stages that hop goroutines (the inference server's workers)
// re-apply them from the job's own fields.
package prof

import (
	"context"
	"runtime/pprof"
)

// Label keys of the pipeline taxonomy. Tune-side stages carry tenant,
// bracket, and rung (plus shard when dispatched by a cluster); serving
// stages carry tenant and priority; retry attempts after an injected
// fault carry the fault class that killed the previous attempt.
const (
	KeyTenant     = "tenant"
	KeyShard      = "shard"
	KeyBracket    = "bracket"
	KeyRung       = "rung"
	KeyFaultClass = "fault_class"
	KeyPriority   = "priority"
	KeyStage      = "stage"
)

// Do runs fn with the given pprof labels (alternating key, value)
// applied to the current goroutine for fn's duration, merged over any
// labels already on ctx. With no labels it degrades to a direct call —
// callers gate label propagation with their own Profile option, so the
// disabled path costs one branch and no allocation.
func Do(ctx context.Context, fn func(context.Context), kvs ...string) {
	if len(kvs) == 0 {
		fn(ctx)
		return
	}
	pprof.Do(ctx, pprof.Labels(kvs...), fn)
}

// Labels returns the label set for kvs, for callers that need to hold
// one (tests, mostly). It panics on an odd count, like pprof.Labels.
func Labels(kvs ...string) pprof.LabelSet { return pprof.Labels(kvs...) }
