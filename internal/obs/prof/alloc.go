package prof

import (
	"runtime"

	"edgetune/internal/obs"
)

// Probe is one stage's allocation measurement: the average heap
// allocations and bytes per operation over Runs runs of the stage.
type Probe struct {
	// Stage names the hot loop measured ("nn.minibatch-step",
	// "serve.cache-hit", ...). It keys the published gauges.
	Stage string `json:"stage"`
	// Runs is how many operations the averages cover.
	Runs int `json:"runs"`
	// AllocsPerOp and BytesPerOp are the per-operation averages.
	AllocsPerOp float64 `json:"allocsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
}

// Measure runs fn runs times and reports the average allocations and
// bytes per run, testing.AllocsPerRun style: one untimed warm-up run
// (lazy initialisation is setup, not steady state), GOMAXPROCS pinned
// to 1 so no other goroutine's allocations pollute the window, and
// runtime.MemStats deltas around the measured loop.
//
// Determinism caveats: allocation counts are a property of the code
// path, not the scheduler, so for a single-goroutine fn the probe is
// stable run to run — but a fn that hands work to other goroutines, or
// one racing a concurrent GC's mallocs, can wobble by a few allocs.
// Probe values therefore feed gauges and the alloc-regression gate
// (which carries an absolute slack), never byte-compared digests.
func Measure(stage string, runs int, fn func()) Probe {
	if runs < 1 {
		runs = 1
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	fn() // warm-up: lazy paths allocate once and never again

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return Probe{
		Stage:       stage,
		Runs:        runs,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(runs),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(runs),
	}
}

// Publish surfaces the probe as registry gauges —
// "prof.allocs-per-op.<stage>" and "prof.bytes-per-op.<stage>" — so
// the values ride every snapshot surface the registry already has:
// Report.Metrics, /metrics, /metrics.json, and /metrics/prom.
func (p Probe) Publish(reg *obs.Registry) {
	reg.Gauge("prof.allocs-per-op." + p.Stage).Set(p.AllocsPerOp)
	reg.Gauge("prof.bytes-per-op." + p.Stage).Set(p.BytesPerOp)
}
