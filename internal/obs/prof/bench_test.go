package prof

import (
	"context"
	"testing"
)

// busyWork stands in for a pipeline stage body: enough arithmetic that
// the label plumbing around it is measurable as relative overhead.
func busyWork(n int) float64 {
	acc := 1.0
	for i := 0; i < n; i++ {
		acc = acc*1.0000001 + float64(i)
	}
	return acc
}

var benchSink float64

// BenchmarkProfDisabled is the no-op path: Do with no labels, the shape
// every call site takes when Options.Profile is off.
func BenchmarkProfDisabled(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		Do(ctx, func(context.Context) {
			benchSink = busyWork(100)
		})
	}
}

// BenchmarkProfEnabled applies the full tune-side label set per call,
// the worst case a single trial pays per rung.
func BenchmarkProfEnabled(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		Do(ctx, func(context.Context) {
			benchSink = busyWork(100)
		}, KeyTenant, "acme", KeyShard, "shard0", KeyBracket, "1", KeyRung, "2")
	}
}
