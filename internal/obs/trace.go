// Package obs is the observability substrate of the tuning and serving
// pipeline: a seeded-deterministic span tracer and a unified metrics
// registry, both stdlib-only.
//
// Determinism contract: spans carry simulated-clock timestamps supplied
// explicitly by the instrumentation sites (never wall-clock reads), and
// span IDs are derived structurally — a root span's ID hashes its name
// and a caller-supplied deterministic index (the tuner's seed, the
// server's submission sequence), a child's ID hashes its parent's ID,
// its name, and its per-parent creation index. Exports sort spans by
// (start, ID), so two same-seed runs emit byte-identical trace files
// even though concurrent goroutines append to the buffer in arbitrary
// order. The one requirement on callers is that the children of any
// single span are created from one goroutine at a time (the pipeline
// guarantees this: tuner-side spans belong to the tuning loop, each
// request's serving spans to the worker that owns the request).
//
// Every hook is nil-safe: methods on a nil *Tracer or nil *Span are
// no-ops, so disabled tracing costs a single pointer check on the hot
// path (see BenchmarkTracingDisabled).
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracks group spans into Perfetto threads: the tuning loop and the
// inference serving path render as separate swim lanes.
const (
	TrackTuner     = 1
	TrackServing   = 2
	TrackStore     = 3
	TrackCluster   = 4
	TrackAutoscale = 5
)

// trackNames label the tracks in the Chrome trace metadata.
var trackNames = map[int]string{
	TrackTuner:     "model-tuning",
	TrackServing:   "inference-serving",
	TrackStore:     "historical-store",
	TrackCluster:   "cluster",
	TrackAutoscale: "autoscale",
}

// SpanID identifies a span; 0 means "no parent".
type SpanID uint64

// Attr is one typed span attribute. Values are restricted to string,
// int64, float64, and bool by the constructors so serialisation is
// total and deterministic.
type Attr struct {
	Key   string
	Value any
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// DurAttr builds a duration attribute, recorded as integer nanoseconds.
func DurAttr(k string, v time.Duration) Attr { return Attr{Key: k, Value: int64(v)} }

// maxSpans bounds the in-memory buffer; a runaway instrumentation site
// drops spans (counted) instead of exhausting memory.
const maxSpans = 4 << 20

// spanRecord is one finished span as buffered and exported.
type spanRecord struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	Track  int    `json:"track"`
	Start  int64  `json:"startNs"`
	Dur    int64  `json:"durNs"`
	Attrs  []Attr `json:"attrs,omitempty"`
}

// MarshalJSON renders an Attr as a compact {"k":...,"v":...} object.
func (a Attr) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		K string `json:"k"`
		V any    `json:"v"`
	}{a.Key, a.Value})
}

// UnmarshalJSON accepts the same {"k","v"} shape (tests round-trip).
func (a *Attr) UnmarshalJSON(data []byte) error {
	var raw struct {
		K string `json:"k"`
		V any    `json:"v"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	a.Key, a.Value = raw.K, raw.V
	return nil
}

// Tracer collects finished spans. A nil *Tracer is a valid disabled
// tracer: all methods no-op. Safe for concurrent use.
type Tracer struct {
	mu       sync.Mutex
	spans    []spanRecord
	dropped  int64
	observer func(name string, track int, start, dur time.Duration)
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Span is an in-progress span. A nil *Span no-ops, so instrumentation
// chains (root disabled → children disabled) need no guards.
type Span struct {
	tr     *Tracer
	id     SpanID
	parent SpanID
	name   string
	track  int
	start  time.Duration

	children atomic.Uint64

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// Root starts a top-level span. index must be deterministic across
// same-seed runs (a seed, a submission sequence number): together with
// name it becomes the span's ID, which child IDs chain from.
func (t *Tracer) Root(track int, name string, index uint64, start time.Duration, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	id := mixU64(mixStr(fnvOffset, name), index)
	return &Span{tr: t, id: nonzero(id), track: track, start: start, name: name, attrs: attrs}
}

// Child starts a span under sp. The child inherits the parent's track;
// its ID derives from (parent ID, name, per-parent creation index), so
// it is deterministic as long as sp's children are created from a
// single goroutine at a time.
func (sp *Span) Child(name string, start time.Duration, attrs ...Attr) *Span {
	if sp == nil {
		return nil
	}
	idx := sp.children.Add(1) - 1
	id := mixU64(mixStr(uint64(sp.id), name), idx)
	return &Span{tr: sp.tr, id: nonzero(id), parent: sp.id, track: sp.track, start: start, name: name, attrs: attrs}
}

// ID reports the span's deterministic identifier (0 for a nil span).
func (sp *Span) ID() SpanID {
	if sp == nil {
		return 0
	}
	return sp.id
}

// Set appends attributes to the span. The nil fast path inlines so a
// disabled span costs one pointer check (hot callers additionally guard
// attribute construction behind the same check).
func (sp *Span) Set(attrs ...Attr) {
	if sp == nil {
		return
	}
	sp.set(attrs)
}

func (sp *Span) set(attrs []Attr) {
	sp.mu.Lock()
	if !sp.ended {
		sp.attrs = append(sp.attrs, attrs...)
	}
	sp.mu.Unlock()
}

// End finishes the span at the given simulated time and hands it to the
// tracer. End is idempotent; an end before the start is clamped to a
// zero duration.
func (sp *Span) End(end time.Duration) {
	if sp == nil {
		return
	}
	sp.end(end)
}

func (sp *Span) end(end time.Duration) {
	sp.mu.Lock()
	if sp.ended {
		sp.mu.Unlock()
		return
	}
	sp.ended = true
	attrs := sp.attrs
	sp.mu.Unlock()

	dur := end - sp.start
	if dur < 0 {
		dur = 0
	}
	sp.tr.emit(spanRecord{
		ID:     uint64(sp.id),
		Parent: uint64(sp.parent),
		Name:   sp.name,
		Track:  sp.track,
		Start:  int64(sp.start),
		Dur:    int64(dur),
		Attrs:  attrs,
	})
}

func (t *Tracer) emit(rec spanRecord) {
	t.mu.Lock()
	obsv := t.observer
	if len(t.spans) >= maxSpans {
		t.dropped++
	} else {
		t.spans = append(t.spans, rec)
	}
	t.mu.Unlock()
	if obsv != nil {
		obsv(rec.Name, rec.Track, time.Duration(rec.Start), time.Duration(rec.Dur))
	}
}

// SetSpanObserver registers a callback invoked for every finished
// span (the flight recorder's span-completion feed). The observer runs
// outside the tracer's lock and must be cheap and lock-ordering safe;
// nil clears it. One observer per tracer: a shared tracer (cluster)
// cannot demultiplex spans per shard, so only single-job wiring
// attaches one.
func (t *Tracer) SetSpanObserver(fn func(name string, track int, start, dur time.Duration)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.observer = fn
	t.mu.Unlock()
}

// Len reports the number of finished spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped reports spans discarded by the buffer cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// sorted copies the buffer in deterministic (start, ID) order.
func (t *Tracer) sorted() []spanRecord {
	t.mu.Lock()
	out := make([]spanRecord, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// WriteJSONL exports the trace as one JSON span per line, in
// deterministic order. A nil tracer writes nothing.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, rec := range t.sorted() {
		data, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("obs: marshal span %d: %w", rec.ID, err)
		}
		bw.Write(data)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteChrome exports the trace in the Chrome trace-event format
// (complete "X" events plus thread-name metadata), loadable in Perfetto
// or chrome://tracing. Timestamps are microseconds of simulated time.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		return nil
	}
	type chromeEvent struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat,omitempty"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur,omitempty"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args,omitempty"`
	}
	recs := t.sorted()
	tracks := map[int]bool{}
	events := make([]chromeEvent, 0, len(recs)+2)
	for _, rec := range recs {
		tracks[rec.Track] = true
		args := make(map[string]any, len(rec.Attrs)+2)
		args["id"] = rec.ID
		if rec.Parent != 0 {
			args["parent"] = rec.Parent
		}
		for _, a := range rec.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name: rec.Name,
			Cat:  "edgetune",
			Ph:   "X",
			TS:   float64(rec.Start) / 1e3,
			Dur:  float64(rec.Dur) / 1e3,
			PID:  1,
			TID:  rec.Track,
			Args: args,
		})
	}
	// Thread-name metadata, in deterministic track order.
	ids := make([]int, 0, len(tracks))
	for id := range tracks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	meta := make([]chromeEvent, 0, len(ids))
	for _, id := range ids {
		name := trackNames[id]
		if name == "" {
			name = fmt.Sprintf("track-%d", id)
		}
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: id,
			Args: map[string]any{"name": name},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{append(meta, events...)})
}

// SaveJSONL writes the JSONL export to path.
func (t *Tracer) SaveJSONL(path string) error { return t.save(path, t.WriteJSONL) }

// SaveChrome writes the Chrome trace-event export to path.
func (t *Tracer) SaveChrome(path string) error { return t.save(path, t.WriteChrome) }

func (t *Tracer) save(path string, write func(io.Writer) error) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// FNV-1a helpers for structural span IDs.
const fnvOffset uint64 = 1469598103934665603

func mixStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func mixU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

func nonzero(h uint64) SpanID {
	if h == 0 {
		return 1
	}
	return SpanID(h)
}
