package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"strings"
	"sync"
	"testing"
)

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRegistryBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("a.count")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if reg.Counter("a.count") != c {
		t.Fatal("same name must return same counter")
	}
	g := reg.Gauge("a.gauge")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %g, want 2", got)
	}
	h := reg.Histogram("a.hist", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 2, 3, 50, 200} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("histogram count = %d, want 5", got)
	}
	if reg.Histogram("a.hist", nil) != h {
		t.Fatal("same name must return same histogram")
	}
}

func TestNilRegistryNoOp(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("x").Set(1)
	reg.Histogram("x", []float64{1}).Observe(1)
	if v := reg.Counter("x").Value(); v != 0 {
		t.Fatalf("nil counter = %d", v)
	}
	if v := reg.Gauge("x").Value(); v != 0 {
		t.Fatalf("nil gauge = %g", v)
	}
	if v := reg.Histogram("x", nil).Quantile(0.5); v != 0 {
		t.Fatalf("nil histogram quantile = %g", v)
	}
	snap := reg.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if names := reg.CounterNames(); names != nil {
		t.Fatalf("nil registry names = %v", names)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for v := 1.0; v <= 100; v++ {
		h.Observe(v)
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.50, 50, 1.5},
		{0.95, 95, 1.5},
		{0.99, 99, 1.5},
		{0, 1, 0.01},
		{1, 100, 0.01},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%g) = %g, want %g ± %g", tc.q, got, tc.want, tc.tol)
		}
	}
}

func TestHistogramNonFiniteObservations(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{1, 10})
	h.Observe(5)
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(math.NaN())
	snap := reg.Snapshot()
	st, ok := snap.Histogram("h")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if st.Count != 4 {
		t.Fatalf("count = %d, want 4", st.Count)
	}
	if st.Sum != 5 || st.Min != 5 || st.Max != 5 {
		t.Fatalf("finite stats = sum %g min %g max %g, want all 5", st.Sum, st.Min, st.Max)
	}
	// The whole snapshot must survive JSON (no bare Inf/NaN values).
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-serialisable: %v", err)
	}
}

func TestSnapshotDeterministicOrderAndJSON(t *testing.T) {
	build := func() Snapshot {
		reg := NewRegistry()
		// Insertion order differs from name order on purpose.
		reg.Counter("z.last").Add(9)
		reg.Counter("a.first").Add(1)
		reg.Gauge("m.mid").Set(0.5)
		reg.Histogram("k.hist", []float64{1, 2}).Observe(1.5)
		reg.Histogram("b.hist", []float64{1, 2}).Observe(0.5)
		return reg.Snapshot()
	}
	a, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", a, b)
	}
	snap := build()
	if snap.Counters[0].Name != "a.first" || snap.Counters[1].Name != "z.last" {
		t.Fatalf("counters not sorted: %+v", snap.Counters)
	}
	if snap.Histograms[0].Name != "b.hist" {
		t.Fatalf("histograms not sorted: %+v", snap.Histograms)
	}
	if got := snap.Counter("z.last"); got != 9 {
		t.Fatalf("Counter lookup = %d, want 9", got)
	}
	if got := snap.Counter("missing"); got != 0 {
		t.Fatalf("missing counter = %d, want 0", got)
	}
}

func TestSnapshotWriteText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serving.shed").Add(2)
	reg.Gauge("queue.depth").Set(3)
	reg.Histogram("lat.ms", []float64{10, 100}).Observe(42)
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"counter serving.shed 2\n",
		"gauge queue.depth 3\n",
		"histogram lat.ms count=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text render missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				reg.Counter("c").Inc()
				reg.Gauge("g").Add(1)
				reg.Histogram("h", []float64{50, 500}).Observe(float64(j))
			}
		}(i)
	}
	wg.Wait()
	if got := reg.Counter("c").Value(); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
	if got := reg.Gauge("g").Value(); got != 1600 {
		t.Fatalf("gauge = %g, want 1600", got)
	}
	if got := reg.Histogram("h", nil).Count(); got != 1600 {
		t.Fatalf("histogram count = %d, want 1600", got)
	}
}

func TestCounterSetForRestore(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("restore.me")
	c.Add(5)
	c.Set(42)
	if got := c.Value(); got != 42 {
		t.Fatalf("after Set: %d, want 42", got)
	}
}
