package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Default bucket layouts. Latencies in the emulator range from
// sub-millisecond batches to minute-scale tuning runs; energies from
// fractions of a joule per sample to megajoule tuning budgets.
var (
	LatencyBucketsMS = []float64{
		0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
		1000, 2500, 5000, 10000, 30000, 60000, 120000, 300000,
	}
	SecondsBuckets  = []float64{0.1, 0.5, 1, 5, 10, 30, 60, 120, 300, 600, 1200, 1800, 3600, 7200}
	EnergyBucketsKJ = []float64{0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000}
	// QueueDepthBuckets covers small integer queue positions and depths
	// (the admission queue is bounded at tens of requests).
	QueueDepthBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64}
)

// Counter is a monotonically named int64. Nil counters no-op, so a
// disabled registry costs callers one pointer check.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Set overwrites the counter (used by checkpoint restore).
func (c *Counter) Set(n int64) {
	if c == nil {
		return
	}
	c.v.Store(n)
}

// Value reads the counter (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a named instantaneous float64.
type Gauge struct{ bits atomic.Uint64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets. Non-finite
// observations are counted (in the overflow or underflow bucket) but
// excluded from sum/min/max so snapshots stay JSON-serialisable.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; implicit +Inf overflow
	counts []int64   // len(bounds)+1
	count  int64
	finite int64
	sum    float64
	min    float64
	max    float64
}

// Observe records one sample. The nil fast path is kept in a thin
// wrapper so it inlines: a disabled histogram costs one pointer check.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.observe(v)
}

func (h *Histogram) observe(v float64) {
	h.mu.Lock()
	h.count++
	idx := sort.SearchFloat64s(h.bounds, v)
	if math.IsNaN(v) {
		idx = len(h.bounds) // NaN lands in the overflow bucket
	}
	h.counts[idx]++
	if !math.IsInf(v, 0) && !math.IsNaN(v) {
		if h.finite == 0 || v < h.min {
			h.min = v
		}
		if h.finite == 0 || v > h.max {
			h.max = v
		}
		h.finite++
		h.sum += v
	}
	h.mu.Unlock()
}

// Count reports the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// inside the bucket holding the target rank, clamped to the observed
// min/max. Returns 0 when the histogram is empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.count)
	cum := int64(0)
	for i, c := range h.counts {
		if float64(cum+c) < target {
			cum += c
			continue
		}
		lo, hi := h.bucketEdges(i)
		if c == 0 || hi <= lo {
			return clamp(lo, h.min, h.max)
		}
		frac := (target - float64(cum)) / float64(c)
		return clamp(lo+(hi-lo)*frac, h.min, h.max)
	}
	return h.max
}

// bucketEdges resolves finite interpolation edges for bucket i, using
// the observed min/max for the open-ended first and overflow buckets.
func (h *Histogram) bucketEdges(i int) (lo, hi float64) {
	if i == 0 {
		lo = h.min
	} else {
		lo = h.bounds[i-1]
	}
	if i < len(h.bounds) {
		hi = h.bounds[i]
	} else {
		hi = h.max
	}
	return lo, hi
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Registry holds named counters, gauges, and histograms. A nil
// *Registry is a valid disabled registry: lookups return nil
// instruments whose methods no-op. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket upper bounds on first use. Later calls with the
// same name reuse the existing instrument and ignore buckets.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		bounds := make([]float64, len(buckets))
		copy(bounds, buckets)
		sort.Float64s(bounds)
		h = &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// CounterNames lists registered counter names in sorted order.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// CounterStat is one counter in a snapshot.
type CounterStat struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeStat is one gauge in a snapshot.
type GaugeStat struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// BucketStat is one histogram bucket: the count of observations at or
// below the upper bound. The bound is formatted as a string so the
// implicit "+Inf" overflow bucket survives JSON encoding.
type BucketStat struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// HistogramStat is one histogram in a snapshot, with pre-computed
// quantiles. Min/Max/Sum cover finite observations only.
type HistogramStat struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	P50     float64      `json:"p50"`
	P95     float64      `json:"p95"`
	P99     float64      `json:"p99"`
	Buckets []BucketStat `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every instrument, sorted by name
// within each kind so serialisations are byte-stable.
type Snapshot struct {
	Counters   []CounterStat   `json:"counters,omitempty"`
	Gauges     []GaugeStat     `json:"gauges,omitempty"`
	Histograms []HistogramStat `json:"histograms,omitempty"`
}

// Snapshot captures the registry. A nil registry yields a zero value.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()

	var snap Snapshot
	for name, c := range counters {
		snap.Counters = append(snap.Counters, CounterStat{Name: name, Value: c.Value()})
	}
	for name, g := range gauges {
		snap.Gauges = append(snap.Gauges, GaugeStat{Name: name, Value: g.Value()})
	}
	for name, h := range hists {
		snap.Histograms = append(snap.Histograms, h.stat(name))
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}

func (h *Histogram) stat(name string) HistogramStat {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HistogramStat{Name: name, Count: h.count}
	if h.finite > 0 {
		st.Sum, st.Min, st.Max = h.sum, h.min, h.max
	}
	if h.count > 0 {
		st.P50 = h.quantileLocked(0.50)
		st.P95 = h.quantileLocked(0.95)
		st.P99 = h.quantileLocked(0.99)
	}
	st.Buckets = make([]BucketStat, len(h.counts))
	for i, c := range h.counts {
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
		}
		st.Buckets[i] = BucketStat{LE: le, Count: c}
	}
	return st
}

// Counter returns the value of the named counter in the snapshot, or 0.
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Histogram returns the named histogram stat and whether it exists.
func (s Snapshot) Histogram(name string) (HistogramStat, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramStat{}, false
}

// textName renders an instrument name for the plaintext format,
// quoting it only when it would corrupt the line-oriented output
// (whitespace, quotes, control characters). Ordinary names pass
// through verbatim, so the format is unchanged for every instrument
// the pipeline registers today.
func textName(name string) string {
	for _, r := range name {
		if r == ' ' || r == '"' || r < 0x20 || r == 0x7f {
			return strconv.Quote(name)
		}
	}
	return name
}

// WriteText renders the snapshot as stable plaintext, one instrument
// per line (histograms add quantile summaries). This is the /metrics
// endpoint format.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", textName(c.Name), c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "gauge %s %g\n", textName(g.Name), g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "histogram %s count=%d sum=%g min=%g max=%g p50=%g p95=%g p99=%g\n",
			textName(h.Name), h.Count, h.Sum, h.Min, h.Max, h.P50, h.P95, h.P99); err != nil {
			return err
		}
	}
	return nil
}
