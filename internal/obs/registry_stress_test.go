package obs_test

// Concurrent-writer stress for the registry, run under -race -count=2
// by the ci.sh profile-plane gate. It hammers shared counters, gauges,
// and histograms from many goroutines while alloc probes publish their
// gauges, then checks the snapshot arithmetic and that no goroutine
// outlives the test.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"edgetune/internal/obs"
	"edgetune/internal/obs/prof"
	"edgetune/internal/testutil"
)

func TestRegistryConcurrentWriters(t *testing.T) {
	testutil.CheckGoroutineLeak(t, 2)
	reg := obs.NewRegistry()

	const writers = 8
	const opsPer = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				// Shared and per-writer names: exercises both the
				// atomic hot path and first-touch map insertion.
				reg.Counter("stress.shared").Add(1)
				reg.Counter(fmt.Sprintf("stress.writer.%d", w)).Add(1)
				reg.Gauge("stress.depth").Set(float64(i))
				reg.Gauge("stress.depth").Add(1)
				reg.Histogram("stress.latency-ms", []float64{1, 10, 100}).Observe(float64(i % 50))
				if i%100 == 0 {
					prof.Probe{
						Stage:       fmt.Sprintf("stage-%d", w),
						Runs:        1,
						AllocsPerOp: float64(i),
						BytesPerOp:  float64(i * 64),
					}.Publish(reg)
					reg.Snapshot() // concurrent reader in the mix
				}
			}
		}(w)
	}
	wg.Wait()

	snap := reg.Snapshot()
	if got := snap.Counter("stress.shared"); got != writers*opsPer {
		t.Errorf("stress.shared = %d, want %d", got, writers*opsPer)
	}
	for w := 0; w < writers; w++ {
		if got := snap.Counter(fmt.Sprintf("stress.writer.%d", w)); got != opsPer {
			t.Errorf("stress.writer.%d = %d, want %d", w, got, opsPer)
		}
	}
	h, ok := snap.Histogram("stress.latency-ms")
	if !ok || h.Count != writers*opsPer {
		t.Fatalf("histogram count = %+v (ok=%v), want %d observations", h, ok, writers*opsPer)
	}
	var allocGauges int
	for _, g := range snap.Gauges {
		if strings.HasPrefix(g.Name, "prof.allocs-per-op.") {
			allocGauges++
		}
	}
	if allocGauges != writers {
		t.Errorf("alloc gauges published = %d, want %d", allocGauges, writers)
	}
}
