// Package autoscale implements a deterministic, sim-clock autoscaler
// for the inference server's simulated device pool, plus a
// graceful-degradation ladder for the moments when adding capacity is
// not enough (or not possible).
//
// The controller is a pure state machine: it is evaluated exactly once
// per request submission (the "tick"), and every input it sees —
// in-system depth, admission wait, replica counts, capacity good/bad
// events — is stamped deterministically at submission time on the
// simulated clock. Two same-seed runs therefore produce byte-identical
// decision streams, which the controller folds into an FNV-1a digest
// so tests and CI can compare whole runs with a single value.
//
// Scaling up is never free: each added replica charges a warm-up cost
// (time and energy) to the run's budget, mirroring the warm-up-aware
// scaling argument in "On the Sustainability of AI Inferences in the
// Edge". Scaling down is hysteresis-bounded so a single calm tick
// cannot flap capacity away.
package autoscale

import (
	"fmt"
	"sync"
	"time"
)

// Mode is a rung on the graceful-degradation ladder. Modes are
// cumulative: each deeper rung keeps every restriction of the rungs
// above it.
type Mode int

const (
	// ModeNormal serves all traffic with hedging enabled.
	ModeNormal Mode = iota
	// ModeShedBackground rejects background-priority requests at
	// admission so critical traffic keeps the queue.
	ModeShedBackground
	// ModeNoHedging additionally disables hedged requests, halving
	// worst-case device load per request.
	ModeNoHedging
	// ModeCriticalOnly additionally evicts already-queued background
	// work; only critical requests are served.
	ModeCriticalOnly
)

// String returns the stable, kebab-case name used in traces, reasons
// and reports.
func (m Mode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeShedBackground:
		return "shed-background"
	case ModeNoHedging:
		return "no-hedging"
	case ModeCriticalOnly:
		return "critical-only"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config bounds and tunes the controller. The zero value of any field
// selects the documented default; negative values are rejected by
// Validate.
type Config struct {
	// Min and Max bound the replica count. Defaults: 1 and 4.
	Min int `json:"min,omitempty"`
	Max int `json:"max,omitempty"`
	// ScaleUpAt and ScaleDownAt are saturation thresholds on
	// in-system depth over queue limit. Defaults: 0.75 and 0.25.
	ScaleUpAt   float64 `json:"scaleUpAt,omitempty"`
	ScaleDownAt float64 `json:"scaleDownAt,omitempty"`
	// BurnHot and BurnCalm are burn-rate thresholds on the
	// serving/capacity objective (error rate over error budget).
	// Defaults: 14.4 (the standing page-worthy burn threshold) and 1
	// (burning no faster than budget).
	BurnHot  float64 `json:"burnHot,omitempty"`
	BurnCalm float64 `json:"burnCalm,omitempty"`
	// Target is the capacity objective's success target used to turn
	// the windowed bad-event rate into a burn rate. Default: 0.95.
	Target float64 `json:"target,omitempty"`
	// Window is the number of recent submissions the controller's
	// internal burn-rate window covers. Default: 32.
	Window int `json:"window,omitempty"`
	// HysteresisTicks is the number of consecutive calm ticks required
	// before each scale-down or ladder-release step. Default: 8.
	HysteresisTicks int `json:"hysteresisTicks,omitempty"`
	// LadderAfterTicks is the number of consecutive hot ticks after
	// which the degradation ladder steps one rung deeper. Default: 4.
	LadderAfterTicks int `json:"ladderAfterTicks,omitempty"`
	// WarmupTime and WarmupEnergyJ are charged per added replica: the
	// replica is not routable until WarmupTime of simulated time has
	// passed, and WarmupEnergyJ joules are billed to the run.
	// Defaults: 30s and 150 J.
	WarmupTime    time.Duration `json:"warmupTime,omitempty"`
	WarmupEnergyJ float64       `json:"warmupEnergyJ,omitempty"`
}

func defaults() Config {
	return Config{
		Min:              1,
		Max:              4,
		ScaleUpAt:        0.75,
		ScaleDownAt:      0.25,
		BurnHot:          14.4,
		BurnCalm:         1,
		Target:           0.95,
		Window:           32,
		HysteresisTicks:  8,
		LadderAfterTicks: 4,
		WarmupTime:       30 * time.Second,
		WarmupEnergyJ:    150,
	}
}

// Normalised returns the config with zero fields replaced by defaults,
// or an error if any explicit value is out of range.
func (c Config) Normalised() (Config, error) {
	d := defaults()
	if c.Min == 0 {
		c.Min = d.Min
	}
	if c.Max == 0 {
		c.Max = d.Max
	}
	if c.ScaleUpAt == 0 {
		c.ScaleUpAt = d.ScaleUpAt
	}
	if c.ScaleDownAt == 0 {
		c.ScaleDownAt = d.ScaleDownAt
	}
	if c.BurnHot == 0 {
		c.BurnHot = d.BurnHot
	}
	if c.BurnCalm == 0 {
		c.BurnCalm = d.BurnCalm
	}
	if c.Target == 0 {
		c.Target = d.Target
	}
	if c.Window == 0 {
		c.Window = d.Window
	}
	if c.HysteresisTicks == 0 {
		c.HysteresisTicks = d.HysteresisTicks
	}
	if c.LadderAfterTicks == 0 {
		c.LadderAfterTicks = d.LadderAfterTicks
	}
	if c.WarmupTime == 0 {
		c.WarmupTime = d.WarmupTime
	}
	if c.WarmupEnergyJ == 0 {
		c.WarmupEnergyJ = d.WarmupEnergyJ
	}
	return c, c.validate()
}

func (c Config) validate() error {
	switch {
	case c.Min < 1:
		return fmt.Errorf("autoscale: min replicas %d < 1", c.Min)
	case c.Max < c.Min:
		return fmt.Errorf("autoscale: max replicas %d < min %d", c.Max, c.Min)
	case c.ScaleUpAt <= 0 || c.ScaleUpAt > 1:
		return fmt.Errorf("autoscale: scale-up threshold %v outside (0,1]", c.ScaleUpAt)
	case c.ScaleDownAt < 0 || c.ScaleDownAt >= c.ScaleUpAt:
		return fmt.Errorf("autoscale: scale-down threshold %v outside [0,%v)", c.ScaleDownAt, c.ScaleUpAt)
	case c.BurnHot <= 0:
		return fmt.Errorf("autoscale: hot burn threshold %v <= 0", c.BurnHot)
	case c.BurnCalm < 0 || c.BurnCalm > c.BurnHot:
		return fmt.Errorf("autoscale: calm burn threshold %v outside [0,%v]", c.BurnCalm, c.BurnHot)
	case c.Target <= 0 || c.Target >= 1:
		return fmt.Errorf("autoscale: capacity target %v outside (0,1)", c.Target)
	case c.Window < 1:
		return fmt.Errorf("autoscale: burn window %d < 1 tick", c.Window)
	case c.HysteresisTicks < 1:
		return fmt.Errorf("autoscale: hysteresis %d < 1 tick", c.HysteresisTicks)
	case c.LadderAfterTicks < 1:
		return fmt.Errorf("autoscale: ladder threshold %d < 1 tick", c.LadderAfterTicks)
	case c.WarmupTime < 0:
		return fmt.Errorf("autoscale: negative warm-up time %v", c.WarmupTime)
	case c.WarmupEnergyJ < 0:
		return fmt.Errorf("autoscale: negative warm-up energy %v J", c.WarmupEnergyJ)
	}
	return nil
}

// Signals is the controller's deterministic view of the server at one
// submission tick. All fields are stamped at submission time on the
// simulated clock.
type Signals struct {
	// At is the submission's simulated timestamp.
	At time.Duration
	// InSystem is the admission-bounded load: queued plus in-flight
	// requests, plus any phantom flash-crowd load.
	InSystem int
	// QueuedAhead is the admission-wait proxy: how much queued work a
	// new arrival would wait behind.
	QueuedAhead int
	// QueueLimit is the admission bound InSystem is measured against.
	QueueLimit int
	// Replicas is the number of active (non-retired) pool devices,
	// including ones still warming up.
	Replicas int
	// Healthy is the number of routable devices: active, past
	// warm-up, and not quarantined.
	Healthy int
	// Good reports whether this submission found capacity headroom
	// (the capacity SLO event for this tick).
	Good bool
}

// Decision is one emitted control action. Delta is +1 for a scale-up,
// -1 for a scale-down and 0 for a pure ladder transition.
type Decision struct {
	Tick     int64         `json:"tick"`
	At       time.Duration `json:"at"`
	Delta    int           `json:"delta"`
	Replicas int           `json:"replicas"` // target replica count after the decision
	Mode     Mode          `json:"mode"`
	Reason   string        `json:"reason"`
	// WarmupTime and WarmupEnergyJ are the costs charged by this
	// decision (zero unless Delta > 0).
	WarmupTime    time.Duration `json:"warmupTime,omitempty"`
	WarmupEnergyJ float64       `json:"warmupEnergyJ,omitempty"`
}

// Report is a summary snapshot of a controller's run.
type Report struct {
	Ticks         int64
	Decisions     int
	ScaleUps      int
	ScaleDowns    int
	DegradeSteps  int
	RecoverSteps  int
	DeepestMode   Mode
	FinalMode     Mode
	FinalReplicas int
	WarmupTime    time.Duration
	WarmupEnergyJ float64
	Digest        uint64
	// ModePath is the destination rung of every ladder transition in
	// order — the evidence the chaos fuzzer's monotonicity invariant
	// checks: engage and recover both move exactly one rung at a time,
	// starting from ModeNormal. Empty when the ladder never moved.
	ModePath []Mode
}

// Controller is the autoscaling state machine. All methods are safe
// for concurrent use; determinism is the caller's contract (evaluate
// in submission order).
type Controller struct {
	mu  sync.Mutex
	cfg Config

	tick   int64
	window []bool // ring buffer of capacity good/bad events
	wpos   int
	wfill  int
	bad    int // bad events currently in the window

	mode Mode
	hot  int // consecutive hot ticks
	calm int // consecutive calm ticks

	lastReplicas int
	decisions    []Decision
	digest       uint64

	scaleUps, scaleDowns int
	degrades, recovers   int
	deepest              Mode
	modePath             []Mode
	warmTime             time.Duration
	warmEnergy           float64
}

// New builds a controller from cfg (zero fields defaulted) or returns
// a validation error.
func New(cfg Config) (*Controller, error) {
	n, err := cfg.Normalised()
	if err != nil {
		return nil, err
	}
	return &Controller{
		cfg:          n,
		window:       make([]bool, n.Window),
		digest:       fnvOffset,
		lastReplicas: n.Min,
	}, nil
}

// Config returns the normalised configuration the controller runs with.
func (c *Controller) Config() Config {
	if c == nil {
		return Config{}
	}
	return c.cfg
}

// Evaluate advances the controller by one submission tick and returns
// the decision it emitted, if any. It must be called in submission
// order: the tick sequence is part of the determinism contract.
func (c *Controller) Evaluate(sig Signals) (Decision, bool) {
	if c == nil {
		return Decision{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	c.tick++
	c.lastReplicas = sig.Replicas
	c.observe(sig.Good)

	burn := c.burnLocked()
	limit := sig.QueueLimit
	if limit < 1 {
		limit = 1
	}
	sat := float64(sig.InSystem) / float64(limit)

	reason := ""
	switch {
	case sig.Healthy == 0 || 2*sig.Healthy < sig.Replicas:
		reason = "capacity-loss"
	case sat >= c.cfg.ScaleUpAt:
		reason = "saturation"
	case 2*sig.QueuedAhead >= limit:
		reason = "admission-wait"
	case burn >= c.cfg.BurnHot:
		reason = "burn"
	}
	hot := reason != ""
	calm := !hot &&
		sat <= c.cfg.ScaleDownAt &&
		burn <= c.cfg.BurnCalm &&
		2*sig.Healthy >= sig.Replicas

	switch {
	case hot:
		c.calm = 0
		c.hot++
		if sig.Replicas < c.cfg.Max {
			d := c.emit(Decision{
				At:            sig.At,
				Delta:         1,
				Replicas:      sig.Replicas + 1,
				Mode:          c.mode,
				Reason:        "scale-up:" + reason,
				WarmupTime:    c.cfg.WarmupTime,
				WarmupEnergyJ: c.cfg.WarmupEnergyJ,
			})
			return d, true
		}
		if c.hot >= c.cfg.LadderAfterTicks && c.mode < ModeCriticalOnly {
			c.mode++
			c.hot = 0
			d := c.emit(Decision{
				At:       sig.At,
				Replicas: sig.Replicas,
				Mode:     c.mode,
				Reason:   "degrade:" + c.mode.String(),
			})
			return d, true
		}
	case calm:
		c.hot = 0
		c.calm++
		if c.calm >= c.cfg.HysteresisTicks {
			if c.mode > ModeNormal {
				c.mode--
				c.calm = 0
				d := c.emit(Decision{
					At:       sig.At,
					Replicas: sig.Replicas,
					Mode:     c.mode,
					Reason:   "recover:" + c.mode.String(),
				})
				return d, true
			}
			if sig.Replicas > c.cfg.Min {
				c.calm = 0
				d := c.emit(Decision{
					At:       sig.At,
					Delta:    -1,
					Replicas: sig.Replicas - 1,
					Mode:     c.mode,
					Reason:   "scale-down:idle",
				})
				return d, true
			}
		}
	default:
		// Neither hot nor calm: the system is in between. Reset both
		// streaks so flapping load cannot accumulate a stale streak.
		c.hot, c.calm = 0, 0
	}
	return Decision{}, false
}

// observe records one capacity good/bad event in the burn window.
func (c *Controller) observe(good bool) {
	old := c.window[c.wpos]
	if c.wfill == len(c.window) && !old {
		c.bad--
	}
	c.window[c.wpos] = good
	if !good {
		c.bad++
	}
	c.wpos = (c.wpos + 1) % len(c.window)
	if c.wfill < len(c.window) {
		c.wfill++
	}
}

// burnLocked is the windowed bad-event rate divided by the capacity
// objective's error budget — the same burn-rate definition the SLO
// subsystem uses, computed over submission ticks instead of wall
// windows so it is identical across same-seed runs.
func (c *Controller) burnLocked() float64 {
	if c.wfill == 0 {
		return 0
	}
	errRate := float64(c.bad) / float64(c.wfill)
	return errRate / (1 - c.cfg.Target)
}

func (c *Controller) emit(d Decision) Decision {
	d.Tick = c.tick
	c.decisions = append(c.decisions, d)
	c.mix(d)
	switch {
	case d.Delta > 0:
		c.scaleUps++
		c.warmTime += d.WarmupTime
		c.warmEnergy += d.WarmupEnergyJ
	case d.Delta < 0:
		c.scaleDowns++
	}
	if len(d.Reason) > 8 && d.Reason[:8] == "degrade:" {
		c.degrades++
		c.modePath = append(c.modePath, d.Mode)
	}
	if len(d.Reason) > 8 && d.Reason[:8] == "recover:" {
		c.recovers++
		c.modePath = append(c.modePath, d.Mode)
	}
	if d.Mode > c.deepest {
		c.deepest = d.Mode
	}
	return d
}

// Mode returns the current degradation-ladder rung.
func (c *Controller) Mode() Mode {
	if c == nil {
		return ModeNormal
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mode
}

// Decisions returns a copy of every decision emitted so far, in order.
func (c *Controller) Decisions() []Decision {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Decision, len(c.decisions))
	copy(out, c.decisions)
	return out
}

// Digest returns the FNV-1a fold of the decision stream so far. Two
// same-seed runs must agree on it.
func (c *Controller) Digest() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.digest
}

// Report snapshots run totals.
func (c *Controller) Report() Report {
	if c == nil {
		return Report{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Report{
		Ticks:         c.tick,
		Decisions:     len(c.decisions),
		ScaleUps:      c.scaleUps,
		ScaleDowns:    c.scaleDowns,
		DegradeSteps:  c.degrades,
		RecoverSteps:  c.recovers,
		DeepestMode:   c.deepest,
		FinalMode:     c.mode,
		FinalReplicas: c.lastReplicas,
		WarmupTime:    c.warmTime,
		WarmupEnergyJ: c.warmEnergy,
		Digest:        c.digest,
		ModePath:      append([]Mode(nil), c.modePath...),
	}
}

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func (c *Controller) mix(d Decision) {
	c.mixUint(uint64(d.Tick))
	c.mixUint(uint64(d.At))
	c.mixUint(uint64(int64(d.Delta)))
	c.mixUint(uint64(int64(d.Replicas)))
	c.mixUint(uint64(int64(d.Mode)))
	for i := 0; i < len(d.Reason); i++ {
		c.digest = (c.digest ^ uint64(d.Reason[i])) * fnvPrime
	}
}

func (c *Controller) mixUint(v uint64) {
	for i := 0; i < 8; i++ {
		c.digest = (c.digest ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
}
