package autoscale

import (
	"reflect"
	"testing"
	"time"
)

// testConfig keeps the control loop small enough that unit tests can
// walk it tick by tick.
func testConfig() Config {
	return Config{
		Min:              1,
		Max:              3,
		Window:           4,
		HysteresisTicks:  2,
		LadderAfterTicks: 2,
		WarmupTime:       10 * time.Second,
		WarmupEnergyJ:    50,
	}
}

func hotSignals(at time.Duration, replicas int) Signals {
	return Signals{At: at, InSystem: 8, QueueLimit: 8, Replicas: replicas, Healthy: replicas, Good: false}
}

func calmSignals(at time.Duration, replicas int) Signals {
	return Signals{At: at, InSystem: 0, QueueLimit: 8, Replicas: replicas, Healthy: replicas, Good: true}
}

func TestConfigDefaults(t *testing.T) {
	n, err := Config{}.Normalised()
	if err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	want := defaults()
	if !reflect.DeepEqual(n, want) {
		t.Fatalf("zero config normalised to %+v, want %+v", n, want)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Min: -1},
		{Min: 3, Max: 2},
		{ScaleUpAt: 1.5},
		{ScaleUpAt: -0.1},
		{ScaleDownAt: 0.9}, // >= default ScaleUpAt
		{BurnHot: -2},
		{BurnCalm: 100}, // > default BurnHot
		{Target: 1.5},
		{Window: -1},
		{HysteresisTicks: -1},
		{LadderAfterTicks: -2},
		{WarmupTime: -time.Second},
		{WarmupEnergyJ: -1},
	}
	for i, c := range cases {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: config %+v accepted, want error", i, c)
		}
	}
}

func TestScaleUpThenLadder(t *testing.T) {
	ctl, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	replicas := 1
	var modes []Mode
	var deltas []int
	for i := 0; i < 10; i++ {
		d, ok := ctl.Evaluate(hotSignals(time.Duration(i)*time.Minute, replicas))
		if !ok {
			continue
		}
		deltas = append(deltas, d.Delta)
		modes = append(modes, d.Mode)
		replicas += d.Delta
	}
	// Ticks 1,2 scale up to Max=3; then every LadderAfterTicks=2 hot
	// ticks the ladder steps a rung deeper until critical-only.
	wantDeltas := []int{1, 1, 0, 0, 0}
	wantModes := []Mode{ModeNormal, ModeNormal, ModeShedBackground, ModeNoHedging, ModeCriticalOnly}
	if !reflect.DeepEqual(deltas, wantDeltas) {
		t.Errorf("deltas = %v, want %v", deltas, wantDeltas)
	}
	if !reflect.DeepEqual(modes, wantModes) {
		t.Errorf("modes = %v, want %v", modes, wantModes)
	}
	if got := ctl.Mode(); got != ModeCriticalOnly {
		t.Errorf("final mode = %v, want critical-only", got)
	}
	rep := ctl.Report()
	if rep.ScaleUps != 2 || rep.DegradeSteps != 3 || rep.DeepestMode != ModeCriticalOnly {
		t.Errorf("report = %+v, want 2 scale-ups, 3 degrade steps, deepest critical-only", rep)
	}
	if rep.WarmupTime != 20*time.Second || rep.WarmupEnergyJ != 100 {
		t.Errorf("warm-up charges = %v / %v J, want 20s / 100 J", rep.WarmupTime, rep.WarmupEnergyJ)
	}
}

func TestLadderReleasesAndScalesDownWithHysteresis(t *testing.T) {
	ctl, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	replicas := 1
	at := time.Duration(0)
	tick := func(s Signals) (Decision, bool) {
		at += time.Minute
		s.At = at
		return ctl.Evaluate(s)
	}
	// Drive to max replicas + critical-only.
	for i := 0; i < 8; i++ {
		if d, ok := tick(hotSignals(0, replicas)); ok {
			replicas += d.Delta
		}
	}
	if ctl.Mode() != ModeCriticalOnly || replicas != 3 {
		t.Fatalf("setup: mode %v replicas %d, want critical-only/3", ctl.Mode(), replicas)
	}
	// Calm ticks: the window (4) still holds bad events, so the first
	// calm ticks are merely "not hot" until burn decays; then each
	// HysteresisTicks=2 calm streak releases one rung, then scales down.
	var trail []string
	for i := 0; i < 24; i++ {
		if d, ok := tick(calmSignals(0, replicas)); ok {
			replicas += d.Delta
			trail = append(trail, d.Reason)
		}
	}
	want := []string{
		"recover:no-hedging",
		"recover:shed-background",
		"recover:normal",
		"scale-down:idle",
		"scale-down:idle",
	}
	if !reflect.DeepEqual(trail, want) {
		t.Fatalf("release trail = %v, want %v", trail, want)
	}
	if replicas != 1 || ctl.Mode() != ModeNormal {
		t.Errorf("final state %d replicas mode %v, want 1/normal", replicas, ctl.Mode())
	}
	rep := ctl.Report()
	if rep.RecoverSteps != 3 || rep.ScaleDowns != 2 || rep.FinalMode != ModeNormal {
		t.Errorf("report = %+v, want 3 recover steps, 2 scale-downs, final normal", rep)
	}
}

func TestHysteresisResetOnHotTick(t *testing.T) {
	cfg := testConfig()
	cfg.HysteresisTicks = 3
	ctl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Reach 2 replicas so a scale-down is possible.
	ctl.Evaluate(hotSignals(0, 1))
	// Flush the window with good events, interleaving a hot tick right
	// before the hysteresis threshold: no scale-down may fire.
	for i := 0; i < 20; i++ {
		sig := calmSignals(time.Duration(i)*time.Minute, 2)
		if i%3 == 2 { // every third tick goes hot: streak never reaches 3
			sig = hotSignals(sig.At, 2)
			sig.Replicas, sig.Healthy = 2, 2
		}
		if d, ok := ctl.Evaluate(sig); ok && d.Delta < 0 {
			t.Fatalf("scale-down fired at tick %d despite broken calm streak", i)
		}
	}
}

func TestCapacityLossIsHot(t *testing.T) {
	ctl, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Quiet queue but zero healthy devices: must scale up immediately.
	d, ok := ctl.Evaluate(Signals{At: time.Minute, InSystem: 0, QueueLimit: 8, Replicas: 1, Healthy: 0})
	if !ok || d.Delta != 1 || d.Reason != "scale-up:capacity-loss" {
		t.Fatalf("decision = %+v ok=%v, want capacity-loss scale-up", d, ok)
	}
}

func TestAdmissionWaitIsHot(t *testing.T) {
	ctl, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	d, ok := ctl.Evaluate(Signals{At: time.Minute, InSystem: 2, QueuedAhead: 4, QueueLimit: 8, Replicas: 1, Healthy: 1, Good: true})
	if !ok || d.Reason != "scale-up:admission-wait" {
		t.Fatalf("decision = %+v ok=%v, want admission-wait scale-up", d, ok)
	}
}

func TestBoundsRespected(t *testing.T) {
	ctl, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// At Max, hot ticks ladder instead of scaling.
	for i := 0; i < 30; i++ {
		if d, ok := ctl.Evaluate(hotSignals(time.Duration(i)*time.Minute, 3)); ok && d.Delta > 0 {
			t.Fatalf("scaled past Max at tick %d: %+v", i, d)
		}
	}
	// At Min, calm ticks never scale down.
	ctl2, _ := New(testConfig())
	for i := 0; i < 30; i++ {
		if d, ok := ctl2.Evaluate(calmSignals(time.Duration(i)*time.Minute, 1)); ok && d.Delta < 0 {
			t.Fatalf("scaled below Min at tick %d: %+v", i, d)
		}
	}
}

func TestSameInputsSameDigest(t *testing.T) {
	run := func() (uint64, []Decision) {
		ctl, err := New(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		replicas := 1
		for i := 0; i < 40; i++ {
			sig := calmSignals(time.Duration(i)*time.Minute, replicas)
			if i%7 < 3 {
				sig = hotSignals(sig.At, replicas)
			}
			if d, ok := ctl.Evaluate(sig); ok {
				replicas += d.Delta
			}
		}
		return ctl.Digest(), ctl.Decisions()
	}
	d1, dec1 := run()
	d2, dec2 := run()
	if d1 != d2 {
		t.Fatalf("digests diverged: %016x != %016x", d1, d2)
	}
	if !reflect.DeepEqual(dec1, dec2) {
		t.Fatalf("decision streams diverged:\n%v\n%v", dec1, dec2)
	}
	if len(dec1) == 0 {
		t.Fatal("mixed drive emitted no decisions")
	}
}

func TestNilControllerIsSafe(t *testing.T) {
	var ctl *Controller
	if _, ok := ctl.Evaluate(hotSignals(0, 1)); ok {
		t.Fatal("nil controller emitted a decision")
	}
	if ctl.Mode() != ModeNormal || ctl.Digest() != 0 || ctl.Decisions() != nil {
		t.Fatal("nil controller accessors not zero-valued")
	}
	if got := ctl.Report(); !reflect.DeepEqual(got, Report{}) {
		t.Fatalf("nil controller report = %+v", got)
	}
}

func TestModeString(t *testing.T) {
	want := map[Mode]string{
		ModeNormal:         "normal",
		ModeShedBackground: "shed-background",
		ModeNoHedging:      "no-hedging",
		ModeCriticalOnly:   "critical-only",
		Mode(9):            "mode(9)",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), m.String(), s)
		}
	}
}

// BenchmarkAutoscaleDecision measures one controller tick on the hot
// path (no decision emitted most ticks).
func BenchmarkAutoscaleDecision(b *testing.B) {
	ctl, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	sig := Signals{At: time.Minute, InSystem: 3, QueueLimit: 8, Replicas: 2, Healthy: 2, Good: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig.At += time.Millisecond
		ctl.Evaluate(sig)
	}
}
