// Package baselines implements the systems the paper compares EdgeTune
// against:
//
//   - Tune (§5.1): Ray Tune configured with the same BOHB search — pure
//     hyperparameter tuning with an epoch budget, accuracy-only
//     objective, fixed system parameters, and no inference awareness.
//   - HyperPower (§5.5, Stamoulis et al.): power-constrained Bayesian
//     optimisation with early termination of power-violating trials,
//     tuning-phase power in the objective, and no inference objective.
//
// Both reuse EdgeTune's substrates (trial runner, search, budgets) so
// comparisons isolate the system design rather than implementation
// differences.
package baselines

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"edgetune/internal/budget"
	"edgetune/internal/core"
	"edgetune/internal/device"
	"edgetune/internal/perfmodel"
	"edgetune/internal/search"
	"edgetune/internal/store"
	"edgetune/internal/trial"
	"edgetune/internal/workload"
)

// RunTune executes the Tune baseline: EdgeTune's loop with the
// inference server disabled, system parameters fixed, the classic
// epoch-based budget, and the accuracy-only objective. The returned
// result carries a post-hoc inference evaluation at the device's
// default configuration (single-sample, all cores, max frequency) —
// what a user deploying Tune's output without further work would get.
func RunTune(ctx context.Context, opts core.Options) (core.Result, error) {
	opts.SystemParams = false
	opts.InferenceAware = false
	opts.AccuracyOnly = true
	opts.BudgetKind = budget.KindEpochs
	// Tune fixes the same system parameters for every trial (§2.3.4);
	// a user on the paper's multi-GPU testbed would reach for half the
	// node, which the motivation figures show is rarely optimal.
	if opts.FixedGPUs == 0 {
		opts.FixedGPUs = 4
	}
	res, err := core.Tune(ctx, opts)
	if err != nil {
		return res, fmt.Errorf("baselines: tune: %w", err)
	}
	rec, err := DefaultInference(opts.Workload, res.BestConfig, opts.Device)
	if err != nil {
		return res, err
	}
	res.Recommendation = rec
	return res, nil
}

// DefaultInference evaluates a configuration's inference performance at
// the device's default system configuration, tagging the entry as the
// untuned deployment.
func DefaultInference(w *workload.Workload, cfg search.Config, dev device.Device) (store.Entry, error) {
	if w == nil {
		return store.Entry{}, errors.New("baselines: nil workload")
	}
	if dev.Profile.Name == "" {
		dev = device.I7()
	}
	flops, params, err := w.PaperCost(cfg)
	if err != nil {
		return store.Entry{}, err
	}
	spec := dev.DefaultSpec(flops, params)
	r, err := dev.Estimate(spec)
	if err != nil {
		return store.Entry{}, err
	}
	return store.Entry{
		Signature: w.Signature(cfg) + "/default",
		Device:    dev.Profile.Name,
		Config: search.Config{
			workload.ParamInferBatch: float64(spec.BatchSize),
			workload.ParamCores:      float64(spec.Cores),
			workload.ParamFreq:       spec.FreqGHz,
		},
		Throughput:       r.Throughput,
		EnergyPerSampleJ: r.EnergyPerSampleJ,
		LatencySeconds:   r.BatchLatency.Seconds(),
	}, nil
}

// EvaluateInference scores a model configuration at an explicit
// inference configuration — used by the Figure 17 comparison, which
// deploys HyperPower's winner with EdgeTune's recommended inference
// parameters ("to make the inference comparison fair, we use the same
// parameters outputted by our approach in both cases").
func EvaluateInference(w *workload.Workload, modelCfg search.Config, infCfg search.Config, dev device.Device) (perfmodel.InferResult, error) {
	flops, params, err := w.PaperCost(modelCfg)
	if err != nil {
		return perfmodel.InferResult{}, err
	}
	return dev.Estimate(perfmodel.InferSpec{
		FLOPsPerSample: flops,
		Params:         params,
		BatchSize:      int(infCfg[workload.ParamInferBatch]),
		Cores:          int(infCfg[workload.ParamCores]),
		FreqGHz:        infCfg[workload.ParamFreq],
	})
}

// HyperPowerOptions configures the HyperPower baseline.
type HyperPowerOptions struct {
	// Workload is the model/dataset pair. Required.
	Workload *workload.Workload
	// GPU is the training platform (defaults to Titan RTX).
	GPU perfmodel.GPUProfile
	// PowerCapW is the training power constraint; trials predicted to
	// exceed it are terminated before full evaluation. Zero selects
	// 220 W (a single-GPU-class cap).
	PowerCapW float64
	// Configs is the number of configurations explored (default 8).
	Configs int
	// Rungs is the number of early-termination rounds (default 3 — more
	// aggressive than EdgeTune, matching HyperPower's cheaper tuning).
	Rungs int
	// Eta is the halving factor (default 3, aggressive termination).
	Eta int
	// Seed drives determinism.
	Seed uint64
}

func (o *HyperPowerOptions) normalise() error {
	if o.Workload == nil {
		return errors.New("baselines: hyperpower needs a workload")
	}
	if o.GPU.FlopsPerSec == 0 {
		o.GPU = perfmodel.TitanRTX()
	}
	if o.PowerCapW == 0 {
		o.PowerCapW = 220
	}
	if o.PowerCapW < 0 {
		return fmt.Errorf("baselines: power cap %v must be positive", o.PowerCapW)
	}
	if o.Configs == 0 {
		o.Configs = 8
	}
	if o.Rungs == 0 {
		o.Rungs = 3
	}
	if o.Eta == 0 {
		o.Eta = 3
	}
	if o.Eta < 2 {
		return fmt.Errorf("baselines: eta %d must be >= 2", o.Eta)
	}
	return nil
}

// HyperPowerResult reports the baseline's outcome.
type HyperPowerResult struct {
	// BestConfig is the winning hyperparameter configuration.
	BestConfig search.Config
	// BestAccuracy is its accuracy at the final budget.
	BestAccuracy float64
	// TuningCost accounts the tuning phase (duration and energy).
	TuningCost perfmodel.Cost
	// TrialsRun counts completed trials; Terminated counts trials
	// killed by the power predictor.
	TrialsRun  int
	Terminated int
}

// RunHyperPower executes the HyperPower baseline: TPE-driven search over
// hyperparameters with a power cap. Before each trial, the analytic
// power predictor (standing in for HyperPower's learned power model)
// screens the configuration; violating trials are terminated at a small
// screening cost.
func RunHyperPower(ctx context.Context, opts HyperPowerOptions) (HyperPowerResult, error) {
	var res HyperPowerResult
	if err := opts.normalise(); err != nil {
		return res, err
	}
	w := opts.Workload
	space, err := w.TrainSpace(false)
	if err != nil {
		return res, err
	}
	sampler := search.NewTPESampler(space, opts.Seed, search.TPEOptions{})
	runner, err := trial.NewRunner(w, opts.GPU, opts.Seed)
	if err != nil {
		return res, err
	}
	// HyperPower's hallmark is aggressive early termination at objective
	// evaluation: screening runs are cut off after a fraction of the
	// first epoch, and only survivors earn real training. This schedule
	// is what makes its tuning phase cheaper than EdgeTune's (Figure 17).
	schedule := []budget.Allocation{
		{Epochs: 1, DataFraction: 0.2},
		{Epochs: 1, DataFraction: 1},
		{Epochs: 3, DataFraction: 1},
	}

	type member struct {
		cfg   search.Config
		score float64
	}
	population := make([]member, 0, opts.Configs)
	for i := 0; i < opts.Configs; i++ {
		population = append(population, member{cfg: sampler.Sample()})
	}
	bestScore := math.Inf(1)

	if opts.Rungs > len(schedule) {
		opts.Rungs = len(schedule)
	}
	for rung := 0; rung < opts.Rungs && len(population) > 0; rung++ {
		alloc := schedule[rung]
		for i := range population {
			if err := ctx.Err(); err != nil {
				return res, err
			}
			cfg := population[i].cfg
			power, err := predictTrainingPower(w, cfg, alloc, opts.GPU)
			if err != nil {
				return res, err
			}
			if power > opts.PowerCapW {
				// Early termination: charge only the screening overhead
				// (one screening step of GPU idle draw).
				population[i].score = math.Inf(1)
				res.Terminated++
				res.TuningCost = res.TuningCost.Add(perfmodel.Cost{
					Duration: 0,
					EnergyJ:  opts.GPU.IdlePowerW, // ~1 s of host idle
				})
				continue
			}
			tr, err := runner.Run(ctx, trial.Request{Config: cfg, Alloc: alloc})
			if err != nil {
				return res, err
			}
			res.TrialsRun++
			res.TuningCost = res.TuningCost.Add(tr.Cost)
			score := 1 - tr.Accuracy
			population[i].score = score
			sampler.Observe(search.Observation{Config: cfg, Score: score, Budget: alloc.Cost()})
			if score < bestScore {
				bestScore = score
				res.BestConfig = cfg.Clone()
				res.BestAccuracy = tr.Accuracy
			}
		}
		sort.Slice(population, func(a, b int) bool { return population[a].score < population[b].score })
		keep := len(population) / opts.Eta
		if keep < 1 {
			keep = 1
		}
		population = population[:keep]
	}
	if res.BestConfig == nil {
		return res, errors.New("baselines: hyperpower terminated every trial; raise the power cap")
	}
	return res, nil
}

// predictTrainingPower estimates a configuration's training power draw
// from the analytic model (HyperPower's power predictor analogue).
func predictTrainingPower(w *workload.Workload, cfg search.Config, alloc budget.Allocation, gpu perfmodel.GPUProfile) (float64, error) {
	flops, params, err := w.PaperCost(cfg)
	if err != nil {
		return 0, err
	}
	samples := float64(w.Split.Train.Len()) * w.Split.Train.Meta.Scale * alloc.DataFraction
	cost, err := perfmodel.TrainingCost(perfmodel.TrainSpec{
		FLOPsPerSample: flops,
		Params:         params,
		Samples:        samples,
		Epochs:         alloc.Epochs,
		BatchSize:      int(cfg[workload.ParamTrainBatch]),
		GPUs:           1,
	}, gpu)
	if err != nil {
		return 0, err
	}
	sec := cost.Duration.Seconds()
	if sec <= 0 {
		return 0, nil
	}
	return cost.EnergyJ / sec, nil
}
