package baselines

import (
	"context"
	"testing"

	"edgetune/internal/core"
	"edgetune/internal/device"
	"edgetune/internal/search"
	"edgetune/internal/workload"
)

func tuneOptions(id string) core.Options {
	return core.Options{
		Workload:       workload.MustNew(id, 1),
		InitialConfigs: 4,
		Rungs:          4,
		MaxBrackets:    1,
		Seed:           7,
	}
}

func TestRunTune(t *testing.T) {
	res, err := RunTune(context.Background(), tuneOptions("IC"))
	if err != nil {
		t.Fatal(err)
	}
	if res.TrialsRun == 0 {
		t.Fatal("no trials ran")
	}
	// The Tune baseline is inference-unaware: its recommendation is the
	// post-hoc default deployment (single-sample inference).
	if got := res.Recommendation.Config[workload.ParamInferBatch]; got != 1 {
		t.Errorf("default inference batch = %v, want 1", got)
	}
	if res.Recommendation.Throughput <= 0 {
		t.Error("no post-hoc inference evaluation")
	}
	if res.InferTuningDuration != 0 {
		t.Error("Tune baseline charged inference tuning")
	}
	// Tune never tunes system parameters.
	if _, ok := res.BestConfig[workload.ParamGPUs]; ok {
		t.Error("Tune baseline tuned GPUs")
	}
}

func TestDefaultInferenceValidation(t *testing.T) {
	if _, err := DefaultInference(nil, search.Config{}, device.I7()); err == nil {
		t.Error("nil workload accepted")
	}
	w := workload.MustNew("IC", 1)
	if _, err := DefaultInference(w, search.Config{}, device.I7()); err == nil {
		t.Error("config without model param accepted")
	}
	// Zero device defaults to i7.
	e, err := DefaultInference(w, search.Config{workload.ParamLayers: 18}, device.Device{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Device != device.I7().Profile.Name {
		t.Errorf("device = %q, want default i7", e.Device)
	}
}

func TestEvaluateInference(t *testing.T) {
	w := workload.MustNew("IC", 1)
	modelCfg := search.Config{workload.ParamLayers: 34}
	infCfg := search.Config{
		workload.ParamInferBatch: 8,
		workload.ParamCores:      2,
		workload.ParamFreq:       2.0,
	}
	r, err := EvaluateInference(w, modelCfg, infCfg, device.I7())
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput <= 0 {
		t.Error("non-positive throughput")
	}
	// Invalid inference config must error.
	bad := infCfg.Clone()
	bad[workload.ParamCores] = 99
	if _, err := EvaluateInference(w, modelCfg, bad, device.I7()); err == nil {
		t.Error("invalid inference config accepted")
	}
}

func TestRunHyperPower(t *testing.T) {
	res, err := RunHyperPower(context.Background(), HyperPowerOptions{
		Workload: workload.MustNew("IC", 1),
		Configs:  6,
		Rungs:    3,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestConfig == nil {
		t.Fatal("no winner")
	}
	if res.BestAccuracy <= 0.1 {
		t.Errorf("accuracy %v at chance", res.BestAccuracy)
	}
	if res.TuningCost.Duration <= 0 {
		t.Error("no tuning cost accounted")
	}
	if res.TrialsRun == 0 {
		t.Error("no trials ran")
	}
}

func TestHyperPowerPowerCapTerminates(t *testing.T) {
	// An absurdly low cap must terminate everything and error.
	_, err := RunHyperPower(context.Background(), HyperPowerOptions{
		Workload:  workload.MustNew("IC", 1),
		PowerCapW: 1,
		Configs:   4,
		Seed:      1,
	})
	if err == nil {
		t.Error("1 W cap did not terminate all trials")
	}

	// A moderate cap terminates some but not all.
	res, err := RunHyperPower(context.Background(), HyperPowerOptions{
		Workload:  workload.MustNew("IC", 1),
		PowerCapW: 168,
		Configs:   8,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminated == 0 {
		t.Log("note: no trials terminated at 168 W (acceptable but unexpected)")
	}
}

func TestHyperPowerValidation(t *testing.T) {
	if _, err := RunHyperPower(context.Background(), HyperPowerOptions{}); err == nil {
		t.Error("missing workload accepted")
	}
	if _, err := RunHyperPower(context.Background(), HyperPowerOptions{
		Workload:  workload.MustNew("IC", 1),
		PowerCapW: -5,
	}); err == nil {
		t.Error("negative cap accepted")
	}
	if _, err := RunHyperPower(context.Background(), HyperPowerOptions{
		Workload: workload.MustNew("IC", 1),
		Eta:      1,
	}); err == nil {
		t.Error("eta=1 accepted")
	}
}

func TestHyperPowerDeterministic(t *testing.T) {
	opts := HyperPowerOptions{Workload: workload.MustNew("IC", 1), Configs: 4, Seed: 3}
	a, err := RunHyperPower(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workload = workload.MustNew("IC", 1)
	b, err := RunHyperPower(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestAccuracy != b.BestAccuracy || a.TuningCost != b.TuningCost {
		t.Error("same-seed runs differ")
	}
}

// TestHyperPowerCheaperButWorseInference encodes the Figure 17 shape:
// HyperPower tunes cheaper than EdgeTune, but EdgeTune's winner gives
// better inference performance when both are deployed with EdgeTune's
// recommended inference parameters.
func TestHyperPowerCheaperButWorseInference(t *testing.T) {
	ctx := context.Background()
	// Both systems at their default scale: EdgeTune's three brackets of
	// 8 configurations (~50 trials, Figure 12) against HyperPower's 12
	// configurations with aggressive termination.
	et, err := core.Tune(ctx, core.Options{
		Workload:       workload.MustNew("IC", 1),
		SystemParams:   true,
		InferenceAware: true,
		InferTrials:    12,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	hp, err := RunHyperPower(ctx, HyperPowerOptions{
		Workload: workload.MustNew("IC", 1),
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hp.TuningCost.Duration >= et.TuningDuration {
		t.Errorf("HyperPower tuning %v not cheaper than EdgeTune %v",
			hp.TuningCost.Duration, et.TuningDuration)
	}
	dev := device.I7()
	w := workload.MustNew("IC", 1)
	etInf, err := EvaluateInference(w, et.BestConfig, et.Recommendation.Config, dev)
	if err != nil {
		t.Fatal(err)
	}
	hpInf, err := EvaluateInference(w, hp.BestConfig, et.Recommendation.Config, dev)
	if err != nil {
		t.Fatal(err)
	}
	if etInf.Throughput < hpInf.Throughput {
		t.Errorf("EdgeTune inference throughput %v below HyperPower %v",
			etInf.Throughput, hpInf.Throughput)
	}
}
