package store

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"edgetune/internal/obs"
	"edgetune/internal/testutil"
)

func wbEntry(sig, dev string) Entry {
	return Entry{Signature: sig, Device: dev, Throughput: 100, Objective: 1}
}

func TestWriteBehindPutEventuallyFlushes(t *testing.T) {
	st := New()
	wb := NewWriteBehind(st)
	defer wb.Close()
	if err := wb.Put(wbEntry("sig-a", "i7")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for st.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background flusher never persisted the entry")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWriteBehindValidation(t *testing.T) {
	wb := NewWriteBehind(New())
	defer wb.Close()
	if err := wb.Put(Entry{Device: "i7"}); err == nil {
		t.Error("empty signature accepted")
	}
	if err := wb.Put(Entry{Signature: "s"}); err == nil {
		t.Error("empty device accepted")
	}
}

func TestWriteBehindGetPromotesPending(t *testing.T) {
	st := New()
	wb := NewWriteBehind(st)
	defer wb.Close()
	// Hold no locks and don't wait for the flusher: Get must see the
	// pending entry immediately and record a store hit for it.
	if err := wb.Put(wbEntry("sig-b", "i7")); err != nil {
		t.Fatal(err)
	}
	e, err := wb.Get("sig-b", "i7")
	if err != nil {
		t.Fatalf("pending entry invisible to Get: %v", err)
	}
	if e.Signature != "sig-b" {
		t.Errorf("got entry %+v", e)
	}
	hits, misses := st.Stats()
	if hits != 1 || misses != 0 {
		t.Errorf("hits/misses = %d/%d, want 1/0", hits, misses)
	}
	if _, err := wb.Get("absent", "i7"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing entry error = %v", err)
	}
}

func TestWriteBehindFlushDrains(t *testing.T) {
	st := New()
	wb := NewWriteBehind(st)
	defer wb.Close()
	for i := 0; i < 10; i++ {
		if err := wb.Put(wbEntry(fmt.Sprintf("sig-%d", i), "i7")); err != nil {
			t.Fatal(err)
		}
	}
	if err := wb.Flush(); err != nil {
		t.Fatal(err)
	}
	if wb.Pending() != 0 {
		t.Errorf("pending after flush = %d", wb.Pending())
	}
	if st.Len() != 10 {
		t.Errorf("store has %d entries, want 10", st.Len())
	}
}

func TestWriteBehindPutReplacesPendingDuplicate(t *testing.T) {
	st := New()
	wb := NewWriteBehind(st)
	defer wb.Close()
	a := wbEntry("sig", "i7")
	a.Objective = 5
	b := wbEntry("sig", "i7")
	b.Objective = 2
	if err := wb.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := wb.Put(b); err != nil {
		t.Fatal(err)
	}
	if err := wb.Flush(); err != nil {
		t.Fatal(err)
	}
	e, err := st.Get("sig", "i7")
	if err != nil {
		t.Fatal(err)
	}
	if e.Objective != 2 {
		t.Errorf("objective = %v, want the later write (2)", e.Objective)
	}
	if st.Len() != 1 {
		t.Errorf("store has %d entries, want 1", st.Len())
	}
}

func TestWriteBehindCloseIdempotentAndFinal(t *testing.T) {
	st := New()
	wb := NewWriteBehind(st)
	if err := wb.Put(wbEntry("sig-z", "armv7")); err != nil {
		t.Fatal(err)
	}
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wb.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := st.Get("sig-z", "armv7"); err != nil {
		t.Errorf("entry lost on close: %v", err)
	}
	if err := wb.Put(wbEntry("late", "i7")); !errors.Is(err, ErrBufferClosed) {
		t.Errorf("put after close = %v, want ErrBufferClosed", err)
	}
}

func TestWriteBehindConcurrent(t *testing.T) {
	testutil.CheckGoroutineLeak(t, 2)
	st := New()
	wb := NewWriteBehind(st)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sig := fmt.Sprintf("g%d-s%d", g, i)
				if err := wb.Put(wbEntry(sig, "i7")); err != nil {
					t.Error(err)
					return
				}
				if _, err := wb.Get(sig, "i7"); err != nil {
					t.Errorf("get %s: %v", sig, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 400 {
		t.Errorf("store has %d entries, want 400", st.Len())
	}
}

// TestSyncWriteBehindFlushesInline pins the synchronous mode's
// contract: a Put is persisted before it returns, on the caller's
// goroutine, with no flusher goroutine ever started — the scheduling
// guarantee the chaos fuzzer's deterministic fault numbering needs.
func TestSyncWriteBehindFlushesInline(t *testing.T) {
	testutil.CheckGoroutineLeak(t, 2)
	st := New()
	wb := NewSyncWriteBehind(st)
	if err := wb.Put(wbEntry("sig-a", "i7")); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("store has %d entries immediately after Put, want 1", st.Len())
	}
	if wb.Pending() != 0 {
		t.Errorf("Pending = %d after inline flush, want 0", wb.Pending())
	}
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wb.Put(wbEntry("late", "i7")); !errors.Is(err, ErrBufferClosed) {
		t.Errorf("put after close = %v, want ErrBufferClosed", err)
	}
}

// TestSyncWriteBehindRetainsFailedFlush checks the sync mode matches
// the background flusher's failure semantics exactly: a failed inline
// flush is counted and re-queued, Put still returns nil, and the error
// surfaces through LastFlushErr and the final Close.
func TestSyncWriteBehindRetainsFailedFlush(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(DurableOptions{SnapshotPath: filepath.Join(dir, "store.json")})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil { // every store write now fails
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	wb := NewSyncWriteBehind(d.Store())
	wb.Instrument(reg)
	if err := wb.Put(wbEntry("sig-a", "i7")); err != nil {
		t.Fatalf("Put must not surface the flush failure, got %v", err)
	}
	if wb.Pending() != 1 {
		t.Errorf("Pending = %d, want the failed entry re-queued", wb.Pending())
	}
	if !errors.Is(wb.LastFlushErr(), ErrDurableClosed) {
		t.Errorf("LastFlushErr = %v, want ErrDurableClosed", wb.LastFlushErr())
	}
	if got := reg.Counter("store.writebehind.flush-errors").Value(); got == 0 {
		t.Error("inline flush failure not counted")
	}
	if err := wb.Close(); !errors.Is(err, ErrDurableClosed) {
		t.Errorf("Close error = %v, want ErrDurableClosed", err)
	}
}

// TestWriteBehindFlushErrorSurfaced drives the buffer against a store
// whose writes fail (a closed durable store) and asserts the failure
// is counted, the entries are re-queued rather than dropped, and the
// error reaches the caller instead of vanishing in the background
// flusher.
func TestWriteBehindFlushErrorSurfaced(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(DurableOptions{SnapshotPath: filepath.Join(dir, "store.json")})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	wb := NewWriteBehind(d.Store())
	wb.Instrument(reg)
	if err := wb.Put(wbEntry("sig-a", "i7")); err != nil {
		t.Fatal(err)
	}
	if err := wb.Flush(); err != nil {
		t.Fatalf("flush to healthy store: %v", err)
	}
	if err := d.Close(); err != nil { // now every store write fails
		t.Fatal(err)
	}
	if err := wb.Put(wbEntry("sig-b", "i7")); err != nil {
		t.Fatal(err)
	}
	if err := wb.Put(wbEntry("sig-c", "i7")); err != nil {
		t.Fatal(err)
	}
	if err := wb.Flush(); !errors.Is(err, ErrDurableClosed) {
		t.Fatalf("Flush error = %v, want ErrDurableClosed", err)
	}
	if got := reg.Counter("store.writebehind.flush-errors").Value(); got == 0 {
		t.Error("flush failure not counted")
	}
	if wb.LastFlushErr() == nil {
		t.Error("LastFlushErr lost the failure")
	}
	// Nothing dropped: both entries are back in the buffer, in order.
	if wb.Pending() != 2 {
		t.Errorf("Pending = %d, want 2 re-queued entries", wb.Pending())
	}
	// The drain path (Close) surfaces the error instead of swallowing
	// it — what the server's Drain(ctx) relies on.
	if err := wb.Close(); !errors.Is(err, ErrDurableClosed) {
		t.Errorf("Close error = %v, want ErrDurableClosed", err)
	}
}

// TestWriteBehindRequeuePreservesOrderAndNewerWrites checks the
// re-queue merge: failed entries go back to the front, but an entry
// the caller overwrote while the flush was failing keeps its newer
// value.
func TestWriteBehindRequeuePreservesOrderAndNewerWrites(t *testing.T) {
	st := New()
	wb := NewWriteBehind(st)
	old := wbEntry("sig-a", "i7")
	old.Throughput = 1
	fresh := wbEntry("sig-a", "i7")
	fresh.Throughput = 2
	// Simulate the race: the flush drained {old}, failed, and a newer
	// Put landed before the re-queue.
	if err := wb.Put(fresh); err != nil {
		t.Fatal(err)
	}
	wb.requeue([]Entry{old}, errors.New("boom"))
	if wb.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", wb.Pending())
	}
	if err := wb.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("sig-a", "i7")
	if err != nil {
		t.Fatal(err)
	}
	if got.Throughput != 2 {
		t.Errorf("Throughput = %v; re-queue resurrected the stale write", got.Throughput)
	}
	if wb.LastFlushErr() != nil {
		t.Error("clean Flush did not clear LastFlushErr")
	}
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}
}
