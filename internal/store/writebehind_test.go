package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"edgetune/internal/testutil"
)

func wbEntry(sig, dev string) Entry {
	return Entry{Signature: sig, Device: dev, Throughput: 100, Objective: 1}
}

func TestWriteBehindPutEventuallyFlushes(t *testing.T) {
	st := New()
	wb := NewWriteBehind(st)
	defer wb.Close()
	if err := wb.Put(wbEntry("sig-a", "i7")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for st.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background flusher never persisted the entry")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWriteBehindValidation(t *testing.T) {
	wb := NewWriteBehind(New())
	defer wb.Close()
	if err := wb.Put(Entry{Device: "i7"}); err == nil {
		t.Error("empty signature accepted")
	}
	if err := wb.Put(Entry{Signature: "s"}); err == nil {
		t.Error("empty device accepted")
	}
}

func TestWriteBehindGetPromotesPending(t *testing.T) {
	st := New()
	wb := NewWriteBehind(st)
	defer wb.Close()
	// Hold no locks and don't wait for the flusher: Get must see the
	// pending entry immediately and record a store hit for it.
	if err := wb.Put(wbEntry("sig-b", "i7")); err != nil {
		t.Fatal(err)
	}
	e, err := wb.Get("sig-b", "i7")
	if err != nil {
		t.Fatalf("pending entry invisible to Get: %v", err)
	}
	if e.Signature != "sig-b" {
		t.Errorf("got entry %+v", e)
	}
	hits, misses := st.Stats()
	if hits != 1 || misses != 0 {
		t.Errorf("hits/misses = %d/%d, want 1/0", hits, misses)
	}
	if _, err := wb.Get("absent", "i7"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing entry error = %v", err)
	}
}

func TestWriteBehindFlushDrains(t *testing.T) {
	st := New()
	wb := NewWriteBehind(st)
	defer wb.Close()
	for i := 0; i < 10; i++ {
		if err := wb.Put(wbEntry(fmt.Sprintf("sig-%d", i), "i7")); err != nil {
			t.Fatal(err)
		}
	}
	if err := wb.Flush(); err != nil {
		t.Fatal(err)
	}
	if wb.Pending() != 0 {
		t.Errorf("pending after flush = %d", wb.Pending())
	}
	if st.Len() != 10 {
		t.Errorf("store has %d entries, want 10", st.Len())
	}
}

func TestWriteBehindPutReplacesPendingDuplicate(t *testing.T) {
	st := New()
	wb := NewWriteBehind(st)
	defer wb.Close()
	a := wbEntry("sig", "i7")
	a.Objective = 5
	b := wbEntry("sig", "i7")
	b.Objective = 2
	if err := wb.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := wb.Put(b); err != nil {
		t.Fatal(err)
	}
	if err := wb.Flush(); err != nil {
		t.Fatal(err)
	}
	e, err := st.Get("sig", "i7")
	if err != nil {
		t.Fatal(err)
	}
	if e.Objective != 2 {
		t.Errorf("objective = %v, want the later write (2)", e.Objective)
	}
	if st.Len() != 1 {
		t.Errorf("store has %d entries, want 1", st.Len())
	}
}

func TestWriteBehindCloseIdempotentAndFinal(t *testing.T) {
	st := New()
	wb := NewWriteBehind(st)
	if err := wb.Put(wbEntry("sig-z", "armv7")); err != nil {
		t.Fatal(err)
	}
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wb.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := st.Get("sig-z", "armv7"); err != nil {
		t.Errorf("entry lost on close: %v", err)
	}
	if err := wb.Put(wbEntry("late", "i7")); !errors.Is(err, ErrBufferClosed) {
		t.Errorf("put after close = %v, want ErrBufferClosed", err)
	}
}

func TestWriteBehindConcurrent(t *testing.T) {
	testutil.CheckGoroutineLeak(t, 2)
	st := New()
	wb := NewWriteBehind(st)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sig := fmt.Sprintf("g%d-s%d", g, i)
				if err := wb.Put(wbEntry(sig, "i7")); err != nil {
					t.Error(err)
					return
				}
				if _, err := wb.Get(sig, "i7"); err != nil {
					t.Errorf("get %s: %v", sig, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 400 {
		t.Errorf("store has %d entries, want 400", st.Len())
	}
}
