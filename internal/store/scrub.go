package store

import (
	"errors"
	"fmt"
	"io/fs"
)

// ScrubReport is the result of a read-only integrity check over a
// durable store's on-disk files — what recovery would find, without
// performing it.
type ScrubReport struct {
	SnapshotPath string `json:"snapshotPath"`
	WALPath      string `json:"walPath"`

	// SnapshotPresent/SnapshotValid describe the current snapshot
	// generation; SnapshotError is its parse error when invalid.
	SnapshotPresent bool   `json:"snapshotPresent"`
	SnapshotValid   bool   `json:"snapshotValid"`
	SnapshotError   string `json:"snapshotError,omitempty"`
	// PrevPresent/PrevValid describe the previous generation kept by
	// compaction (the recovery fallback).
	PrevPresent bool `json:"prevPresent"`
	PrevValid   bool `json:"prevValid"`

	WALPresent bool `json:"walPresent"`
	// WALRecords counts checksum-valid records; WALQuarantined counts
	// frames a recovery would quarantine; WALTornBytes is the torn tail
	// a recovery would truncate.
	WALRecords     int   `json:"walRecords"`
	WALQuarantined int   `json:"walQuarantined"`
	WALTornBytes   int64 `json:"walTornBytes"`

	// Entries/Checkpoints are the logical state a recovery would
	// reconstruct (newest valid snapshot + WAL replay).
	Entries     int `json:"entries"`
	Checkpoints int `json:"checkpoints"`

	// Clean reports a store with no corruption anywhere: every present
	// file parses, no quarantined frames, no torn tail.
	Clean bool `json:"clean"`
}

// Scrub verifies the on-disk files of a durable store without
// modifying them (or the need for the store to be closed — it reads a
// point-in-time view). It returns an error only for real I/O failures;
// corruption is reported in the ScrubReport, never as an error.
func Scrub(fsys FS, snapPath, walPath string) (ScrubReport, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	if walPath == "" {
		walPath = snapPath + ".wal"
	}
	rep := ScrubReport{SnapshotPath: snapPath, WALPath: walPath}

	st := New()
	applied := false
	apply := func(file storeFile) {
		for _, e := range file.Entries {
			st.Put(e)
		}
		for k, v := range file.Checkpoints {
			st.SaveCheckpoint(k, v)
		}
		applied = true
	}

	data, err := fsys.ReadFile(snapPath)
	switch {
	case err == nil:
		rep.SnapshotPresent = true
		if file, perr := parseStoreFile(data); perr == nil {
			rep.SnapshotValid = true
			apply(file)
		} else {
			rep.SnapshotError = perr.Error()
		}
	case !errors.Is(err, fs.ErrNotExist):
		return rep, fmt.Errorf("store: scrub read %s: %w", snapPath, err)
	}

	data, err = fsys.ReadFile(snapPath + ".prev")
	switch {
	case err == nil:
		rep.PrevPresent = true
		if file, perr := parseStoreFile(data); perr == nil {
			rep.PrevValid = true
			if !applied {
				apply(file)
			}
		}
	case !errors.Is(err, fs.ErrNotExist):
		return rep, fmt.Errorf("store: scrub read %s.prev: %w", snapPath, err)
	}

	data, err = fsys.ReadFile(walPath)
	switch {
	case err == nil:
		rep.WALPresent = true
		sc := scanWAL(data)
		rep.WALRecords = len(sc.Records)
		rep.WALQuarantined = len(sc.Quarantined)
		rep.WALTornBytes = sc.TruncatedBytes
		for _, rec := range sc.Records {
			switch rec.Op {
			case walOpPut:
				st.Put(*rec.Entry)
			case walOpCheckpoint:
				st.SaveCheckpoint(rec.Key, rec.Data)
			case walOpClear:
				st.ClearCheckpoint(rec.Key)
			}
		}
	case !errors.Is(err, fs.ErrNotExist):
		return rep, fmt.Errorf("store: scrub read %s: %w", walPath, err)
	}

	rep.Entries = st.Len()
	rep.Checkpoints = len(st.CheckpointKeys())
	rep.Clean = (!rep.SnapshotPresent || rep.SnapshotValid) &&
		(!rep.PrevPresent || rep.PrevValid) &&
		rep.WALQuarantined == 0 && rep.WALTornBytes == 0
	return rep, nil
}
