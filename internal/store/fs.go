package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// FS abstracts the handful of filesystem operations the durability
// layer performs, so tests can inject disk faults — torn writes, bit
// flips, ENOSPC, crashed devices — without touching real-filesystem
// semantics. The production implementation is OSFS; the faulty one
// lives in internal/fault.
type FS interface {
	// ReadFile reads the whole file (os.ReadFile semantics: a missing
	// file returns an error wrapping fs.ErrNotExist).
	ReadFile(path string) ([]byte, error)
	// Create opens path for writing, truncating any existing content.
	Create(path string) (File, error)
	// OpenAppend opens path for appending, creating it if missing.
	OpenAppend(path string) (File, error)
	// Rename atomically replaces newPath with oldPath.
	Rename(oldPath, newPath string) error
	// Remove deletes path (missing files are not an error).
	Remove(path string) error
	// Truncate cuts path down to size bytes.
	Truncate(path string, size int64) error
	// SyncDir fsyncs the directory containing path, making a preceding
	// rename or create durable against power loss.
	SyncDir(path string) error
	// Size reports the current length of path in bytes.
	Size(path string) (int64, error)
}

// File is an open writable file: the durability layer only ever
// appends or rewrites whole files, never seeks.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage.
	Sync() error
	Close() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// ReadFile implements FS.
func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// Create implements FS.
func (OSFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

// OpenAppend implements FS.
func (OSFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// Rename implements FS.
func (OSFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

// Remove implements FS.
func (OSFS) Remove(path string) error {
	err := os.Remove(path)
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// Truncate implements FS.
func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// SyncDir implements FS. Directory fsync failures on filesystems that
// do not support them (some network mounts) are ignored: the rename
// itself already happened, only its power-loss durability is weaker.
func (OSFS) SyncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errIsUnsupportedSync(err) {
		return err
	}
	return nil
}

// Size implements FS.
func (OSFS) Size(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// errIsUnsupportedSync reports fsync errors that mean "this directory
// cannot be synced here" (EINVAL from filesystems without directory
// fsync), not "the data is lost".
func errIsUnsupportedSync(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)
}

// atomicWriteFile writes data to path so that a crash at any point
// leaves either the old content or the new, never a torn mix: write to
// a temp sibling, fsync it, rename over the target, fsync the parent
// directory so the rename itself survives power loss.
func atomicWriteFile(fsys FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: create %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("store: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("store: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("store: close %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("store: rename %s: %w", path, err)
	}
	if err := fsys.SyncDir(path); err != nil {
		return fmt.Errorf("store: fsync dir of %s: %w", path, err)
	}
	return nil
}
