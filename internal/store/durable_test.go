package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edgetune/internal/obs"
	"edgetune/internal/obs/slo"
)

// openDurable opens a durable store rooted in dir with test-friendly
// defaults, failing the test on error.
func openDurable(t *testing.T, dir string, opts DurableOptions) *Durable {
	t.Helper()
	if opts.SnapshotPath == "" {
		opts.SnapshotPath = filepath.Join(dir, "store.json")
	}
	d, err := OpenDurable(opts)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	return d
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, DurableOptions{})
	st := d.Store()
	if err := st.Put(entry("IC/layers=18", "i7")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(entry("IC/layers=50", "rpi3b+")); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveCheckpoint("job-1", []byte(`{"rung":3}`)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d2 := openDurable(t, dir, DurableOptions{})
	defer d2.Close()
	rr := d2.Recovery()
	if rr.SnapshotSource != "snapshot" {
		t.Errorf("SnapshotSource = %q, want snapshot", rr.SnapshotSource)
	}
	if rr.RecordsReplayed != 0 || rr.RecordsQuarantined != 0 || rr.TruncatedBytes != 0 {
		t.Errorf("clean reopen salvage = %+v, want all zero", rr)
	}
	if rr.Entries != 2 || rr.Checkpoints != 1 {
		t.Errorf("recovered %d entries, %d checkpoints; want 2, 1", rr.Entries, rr.Checkpoints)
	}
	got, err := d2.Store().Get("IC/layers=18", "i7")
	if err != nil {
		t.Fatal(err)
	}
	if got.Throughput != 42 {
		t.Errorf("Throughput = %v, want 42", got.Throughput)
	}
	cp, ok := d2.Store().LoadCheckpoint("job-1")
	if !ok {
		t.Fatal("checkpoint lost")
	}
	var blob struct {
		Rung int `json:"rung"`
	}
	// Snapshot marshalling may re-indent the opaque blob; only its JSON
	// content is contractual.
	if err := json.Unmarshal(cp, &blob); err != nil || blob.Rung != 3 {
		t.Errorf("checkpoint = %q (err %v), want rung 3", cp, err)
	}
}

func TestDurableWALReplayAfterCrash(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, DurableOptions{})
	st := d.Store()
	for _, e := range []Entry{entry("a", "d1"), entry("b", "d2"), entry("c", "d3")} {
		if err := st.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.SaveCheckpoint("job", []byte(`{"rung":1}`)); err != nil {
		t.Fatal(err)
	}
	st.ClearCheckpoint("job")
	// No Close: the process "crashed". Everything acknowledged must
	// come back from the WAL alone.
	d2 := openDurable(t, dir, DurableOptions{})
	defer d2.Close()
	rr := d2.Recovery()
	if rr.SnapshotSource != "none" {
		t.Errorf("SnapshotSource = %q, want none", rr.SnapshotSource)
	}
	if rr.RecordsReplayed != 5 {
		t.Errorf("RecordsReplayed = %d, want 5 (3 puts, 1 checkpoint, 1 clear)", rr.RecordsReplayed)
	}
	if rr.Entries != 3 || rr.Checkpoints != 0 {
		t.Errorf("recovered %d entries, %d checkpoints; want 3, 0", rr.Entries, rr.Checkpoints)
	}
}

func TestDurableTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, DurableOptions{})
	if err := d.Store().Put(entry("a", "d")); err != nil {
		t.Fatal(err)
	}
	if err := d.Store().Put(entry("b", "d")); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "store.json.wal")
	good, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// A torn append: a frame header promising more bytes than landed.
	frame, err := encodeWALRecord(walRecord{Op: walOpPut, Entry: &Entry{Signature: "torn", Device: "d"}})
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte(nil), good...), frame[:len(frame)-5]...)
	if err := os.WriteFile(walPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := openDurable(t, dir, DurableOptions{})
	rr := d2.Recovery()
	if rr.RecordsReplayed != 2 || rr.Entries != 2 {
		t.Errorf("replayed %d records into %d entries, want 2/2", rr.RecordsReplayed, rr.Entries)
	}
	if want := int64(len(frame) - 5); rr.TruncatedBytes != want {
		t.Errorf("TruncatedBytes = %d, want %d", rr.TruncatedBytes, want)
	}
	if fi, err := os.Stat(walPath); err != nil || fi.Size() != int64(len(good)) {
		t.Errorf("wal size after repair = %v (err %v), want %d", fi.Size(), err, len(good))
	}
	// The repaired log keeps accepting appends that survive another
	// reopen.
	if err := d2.Store().Put(entry("after-repair", "d")); err != nil {
		t.Fatal(err)
	}
	if err := d2.wal.Close(); err != nil { // crash again, no compaction
		t.Fatal(err)
	}
	d3 := openDurable(t, dir, DurableOptions{})
	defer d3.Close()
	if d3.Store().Len() != 3 {
		t.Errorf("entries after second recovery = %d, want 3", d3.Store().Len())
	}
}

func TestDurableBitFlipQuarantined(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, DurableOptions{})
	for _, e := range []Entry{entry("a", "d"), entry("b", "d"), entry("c", "d")} {
		if err := d.Store().Put(e); err != nil {
			t.Fatal(err)
		}
	}
	walPath := filepath.Join(dir, "store.json.wal")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the second record: framing stays intact,
	// the checksum does not.
	first := walHeaderSize + int(binary.LittleEndian.Uint32(data[0:4]))
	data[first+walHeaderSize+3] ^= 0x01
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	d2 := openDurable(t, dir, DurableOptions{Metrics: reg})
	defer d2.Close()
	rr := d2.Recovery()
	if rr.RecordsReplayed != 2 || rr.RecordsQuarantined != 1 {
		t.Errorf("replayed/quarantined = %d/%d, want 2/1", rr.RecordsReplayed, rr.RecordsQuarantined)
	}
	if rr.TruncatedBytes != 0 {
		t.Errorf("TruncatedBytes = %d, want 0 (framing was intact)", rr.TruncatedBytes)
	}
	if d2.Store().Len() != 2 {
		t.Errorf("entries = %d, want 2", d2.Store().Len())
	}
	// The corrupt frame is preserved for inspection, never deleted.
	q, err := os.ReadFile(walPath + ".quarantine")
	if err != nil || len(q) == 0 {
		t.Errorf("quarantine file: %v (len %d)", err, len(q))
	}
	if got := reg.Counter("store.recovery.quarantined").Value(); got != 1 {
		t.Errorf("store.recovery.quarantined = %d, want 1", got)
	}
	if got := reg.Counter("store.recovery.replayed").Value(); got != 2 {
		t.Errorf("store.recovery.replayed = %d, want 2", got)
	}
}

func TestDurableSnapshotFallbackToPrev(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "store.json")
	d := openDurable(t, dir, DurableOptions{})
	if err := d.Store().Put(entry("gen1", "d")); err != nil {
		t.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := d.Store().Put(entry("gen2", "d")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil { // rotates gen1 snapshot to .prev
		t.Fatal(err)
	}
	if _, err := os.Stat(snap + ".prev"); err != nil {
		t.Fatalf("no .prev generation after second compaction: %v", err)
	}
	// Bit-rot the current snapshot.
	if err := os.WriteFile(snap, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := openDurable(t, dir, DurableOptions{})
	defer d2.Close()
	rr := d2.Recovery()
	if rr.SnapshotSource != "previous" {
		t.Errorf("SnapshotSource = %q, want previous", rr.SnapshotSource)
	}
	if !rr.SnapshotQuarantined {
		t.Error("corrupt snapshot not marked quarantined")
	}
	if _, err := os.Stat(snap + ".quarantine"); err != nil {
		t.Errorf("corrupt snapshot not preserved: %v", err)
	}
	// The previous generation only has gen1; gen2 lived in the WAL that
	// the second compaction reset — degraded, but never an error.
	if _, err := d2.Store().Get("gen1", "d"); err != nil {
		t.Errorf("gen1 lost: %v", err)
	}
}

func TestDurableCompactionRotatesGenerations(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "store.json")
	d := openDurable(t, dir, DurableOptions{SnapshotEvery: 3})
	st := d.Store()
	for _, sig := range []string{"a", "b", "c", "e", "f"} {
		if err := st.Put(entry(sig, "d")); err != nil {
			t.Fatal(err)
		}
	}
	// Save triggers compaction (5 records >= 3 since last snapshot).
	if err := st.Save("ignored; durable stores use their snapshot path"); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(snap + ".wal"); err != nil || fi.Size() != 0 {
		t.Errorf("wal after compaction: size %v, err %v; want empty", fi.Size(), err)
	}
	for _, sig := range []string{"g", "h", "i"} {
		if err := st.Put(entry(sig, "d")); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Save(""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(snap + ".prev")
	if err != nil {
		t.Fatalf("previous generation missing: %v", err)
	}
	prev, err := parseStoreFile(data)
	if err != nil {
		t.Fatalf("previous generation corrupt: %v", err)
	}
	if len(prev.Entries) != 5 {
		t.Errorf("previous generation has %d entries, want 5", len(prev.Entries))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := openDurable(t, dir, DurableOptions{})
	defer d2.Close()
	if d2.Store().Len() != 8 {
		t.Errorf("entries after reopen = %d, want 8", d2.Store().Len())
	}
}

func TestDurableStatsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, DurableOptions{})
	st := d.Store()
	if err := st.Put(entry("a", "d")); err != nil {
		t.Fatal(err)
	}
	st.Get("a", "d")
	st.Get("a", "d")
	st.Get("missing", "d")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := openDurable(t, dir, DurableOptions{})
	defer d2.Close()
	hits, misses := d2.Store().Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats after restart = %d/%d, want 2/1", hits, misses)
	}
}

func TestDurableObservability(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	ev := slo.NewEvaluator()
	tr := obs.NewTracer()
	d := openDurable(t, dir, DurableOptions{Metrics: reg, SLO: ev, Trace: tr})
	if err := d.Store().Put(entry("a", "d")); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("store.wal.appends").Value(); got != 1 {
		t.Errorf("store.wal.appends = %d, want 1", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("store.snapshot.compactions").Value(); got != 1 {
		t.Errorf("store.snapshot.compactions = %d, want 1", got)
	}
	snap := ev.Snapshot()
	found := false
	for _, o := range snap.Objectives {
		if o.Name == "store/durability" {
			found = true
			if o.Events != 1 || o.Errors != 0 {
				t.Errorf("durability SLO = %d events, %d errors; want 1, 0", o.Events, o.Errors)
			}
		}
	}
	if !found {
		t.Error("store/durability objective not registered")
	}
	if tr.Len() == 0 {
		t.Fatal("no recovery span recorded")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "store/recover") {
		t.Error("trace has no store/recover span")
	}
}

func TestDurableClosedRejectsMutations(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, DurableOptions{})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := d.Store().Put(entry("late", "d")); err != ErrDurableClosed {
		t.Errorf("Put after Close = %v, want ErrDurableClosed", err)
	}
}

func TestScrubReports(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "store.json")
	d := openDurable(t, dir, DurableOptions{})
	if err := d.Store().Put(entry("a", "d")); err != nil {
		t.Fatal(err)
	}
	if err := d.Store().Put(entry("b", "d")); err != nil {
		t.Fatal(err)
	}
	rep, err := Scrub(nil, snap, "")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean || rep.WALRecords != 2 || rep.Entries != 2 {
		t.Errorf("clean scrub = %+v", rep)
	}
	// Scrub is read-only: the WAL must be untouched afterwards.
	before, _ := os.ReadFile(snap + ".wal")
	data := append(append([]byte(nil), before...), 0xde, 0xad, 0xbe)
	if err := os.WriteFile(snap+".wal", data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = Scrub(nil, snap, "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean {
		t.Error("scrub of torn wal reported clean")
	}
	if rep.WALTornBytes != 3 {
		t.Errorf("WALTornBytes = %d, want 3", rep.WALTornBytes)
	}
	if after, _ := os.ReadFile(snap + ".wal"); len(after) != len(data) {
		t.Error("Scrub modified the wal")
	}
	d.wal.Close()

	// A corrupt snapshot flags too.
	if err := os.WriteFile(snap, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = Scrub(nil, snap, "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean || rep.SnapshotValid || rep.SnapshotError == "" {
		t.Errorf("corrupt-snapshot scrub = %+v", rep)
	}
}

func TestScanWALEmptyAndGarbage(t *testing.T) {
	if sc := scanWAL(nil); len(sc.Records) != 0 || sc.ValidEnd != 0 {
		t.Errorf("empty scan = %+v", sc)
	}
	// Pure garbage: everything is a torn tail, nothing replays, nothing
	// errors.
	sc := scanWAL([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5, 6, 7, 8})
	if len(sc.Records) != 0 || sc.TruncatedBytes != 12 {
		t.Errorf("garbage scan = %+v", sc)
	}
}

func TestDurableRejectsMissingPath(t *testing.T) {
	if _, err := OpenDurable(DurableOptions{}); err == nil {
		t.Error("OpenDurable without a snapshot path accepted")
	}
}

func TestParseStoreFileLegacyArray(t *testing.T) {
	data, err := json.Marshal([]Entry{entry("a", "d")})
	if err != nil {
		t.Fatal(err)
	}
	file, err := parseStoreFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(file.Entries) != 1 || file.Entries[0].Signature != "a" {
		t.Errorf("legacy parse = %+v", file)
	}
}
