package store

import (
	"errors"
	"fmt"
	"sync"

	"edgetune/internal/obs"
)

// ErrBufferClosed is returned by WriteBehind.Put after Close.
var ErrBufferClosed = errors.New("store: write-behind buffer closed")

// WriteBehind decouples the inference server's request path from the
// historical database: Put buffers the entry and returns immediately, a
// background flusher drains the buffer into the underlying Store, and
// Get reads through the buffer so a pending entry is never invisible to
// the cache fast path. Flush (and Close) force the buffer empty, which
// is what the server's drain mode relies on for its zero-dropped-writes
// guarantee.
//
// Reads promote a pending entry into the store before delegating to
// Store.Get, so cache hit/miss statistics do not depend on flusher
// timing — the determinism contract of the chaos suite.
type WriteBehind struct {
	st *Store
	// syncMode flushes inline on the Put path instead of waking the
	// background flusher (which is never started); see NewSyncWriteBehind.
	syncMode bool

	mu      sync.Mutex
	pending map[string]Entry
	order   []string // insertion order, for deterministic flushes
	closed  bool
	lastErr error // most recent flush failure; cleared by a clean Flush

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	// Registry instruments (nil = metrics off). Only Put-driven values
	// are exported: flush-cycle counts depend on flusher scheduling and
	// would break the byte-stable snapshot contract.
	mWrites    *obs.Counter
	mPending   *obs.Gauge
	mFlushErrs *obs.Counter
}

// NewWriteBehind wraps st with a write-behind buffer and starts its
// background flusher.
func NewWriteBehind(st *Store) *WriteBehind {
	w := &WriteBehind{
		st:      st,
		pending: make(map[string]Entry),
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go w.flusher()
	return w
}

// NewSyncWriteBehind wraps st with a buffer that flushes inline on the
// Put path: no background flusher goroutine ever runs, so the
// underlying store — and any fault-injected filesystem beneath it —
// observes the same operation order on every same-seed run. Buffering,
// read-through promotion, and failed-flush retry semantics are
// identical to the asynchronous form; only the scheduling of the
// flushes changes. The chaos fuzzer's determinism invariant depends on
// this mode.
func NewSyncWriteBehind(st *Store) *WriteBehind {
	w := &WriteBehind{
		st:       st,
		syncMode: true,
		pending:  make(map[string]Entry),
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	close(w.done) // no flusher for Close to wait on
	return w
}

// Instrument registers the buffer's metrics on reg: "store.writes"
// counts accepted Puts and "store.writebehind.pending" gauges the
// buffer depth. Both are driven from the synchronous Put/Get/Flush
// paths — never from flusher wake-ups — so a drained buffer reports the
// same values on every same-seed run.
func (w *WriteBehind) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	w.mu.Lock()
	w.mWrites = reg.Counter("store.writes")
	w.mPending = reg.Gauge("store.writebehind.pending")
	w.mFlushErrs = reg.Counter("store.writebehind.flush-errors")
	w.mu.Unlock()
}

// Put buffers an entry for asynchronous persistence. Validation happens
// here, synchronously, so the flusher can never fail on bad input.
func (w *WriteBehind) Put(e Entry) error {
	if e.Signature == "" {
		return fmt.Errorf("store: entry with empty signature")
	}
	if e.Device == "" {
		return fmt.Errorf("store: entry with empty device")
	}
	e.Config = e.Config.Clone()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrBufferClosed
	}
	key := e.key()
	if _, dup := w.pending[key]; !dup {
		w.order = append(w.order, key)
	}
	w.pending[key] = e
	w.mWrites.Add(1)
	w.mPending.Set(float64(len(w.pending)))
	w.mu.Unlock()
	if w.syncMode {
		// Inline flush, on the caller's goroutine. The error handling
		// matches the background flusher exactly: a failure is counted,
		// re-queued, and surfaced via LastFlushErr — not returned — so
		// the two modes differ only in scheduling, never in outcome.
		w.Flush()
		return nil
	}
	select {
	case w.wake <- struct{}{}:
	default:
	}
	return nil
}

// Get reads through the buffer: a pending entry is promoted into the
// store first so hit/miss accounting matches a flushed store exactly.
func (w *WriteBehind) Get(signature, dev string) (Entry, error) {
	key := signature + "@" + dev
	w.mu.Lock()
	if e, ok := w.pending[key]; ok {
		if err := w.st.Put(e); err != nil {
			w.mu.Unlock()
			return Entry{}, err
		}
		delete(w.pending, key)
		for i, k := range w.order {
			if k == key {
				w.order = append(w.order[:i], w.order[i+1:]...)
				break
			}
		}
		w.mPending.Set(float64(len(w.pending)))
	}
	w.mu.Unlock()
	return w.st.Get(signature, dev)
}

// Pending reports how many buffered entries await persistence.
func (w *WriteBehind) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.pending)
}

// Flush synchronously drains every buffered entry into the store, in
// insertion order. A failed Put does not lose data: the failing entry
// and everything after it are re-queued (unless a newer Put for the
// same key raced in), the failure is counted, and the error returned —
// so a later Flush, or the one Close runs, retries them.
func (w *WriteBehind) Flush() error {
	w.mu.Lock()
	keys := w.order
	entries := make([]Entry, 0, len(keys))
	for _, k := range keys {
		entries = append(entries, w.pending[k])
	}
	w.order = nil
	w.pending = make(map[string]Entry)
	w.mPending.Set(0)
	w.mu.Unlock()
	for i, e := range entries {
		if err := w.st.Put(e); err != nil {
			w.requeue(entries[i:], err)
			return err
		}
	}
	w.mu.Lock()
	w.lastErr = nil
	w.mu.Unlock()
	return nil
}

// LastFlushErr reports the most recent flush failure, or nil after a
// flush that drained cleanly — how callers observe background-flusher
// failures between explicit flushes.
func (w *WriteBehind) LastFlushErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastErr
}

// requeue puts entries a failed flush could not persist back at the
// front of the buffer, preserving their relative order. Entries the
// caller overwrote while the flush ran keep the newer value.
func (w *WriteBehind) requeue(entries []Entry, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.mFlushErrs.Inc()
	w.lastErr = err
	if w.pending == nil {
		w.pending = make(map[string]Entry)
	}
	order := make([]string, 0, len(entries)+len(w.order))
	for _, e := range entries {
		k := e.key()
		if _, newer := w.pending[k]; newer {
			continue
		}
		w.pending[k] = e
		order = append(order, k)
	}
	w.order = append(order, w.order...)
	w.mPending.Set(float64(len(w.pending)))
}

// Close stops the flusher and drains whatever is still buffered. It is
// idempotent and safe to call concurrently.
func (w *WriteBehind) Close() error {
	w.mu.Lock()
	already := w.closed
	w.closed = true
	w.mu.Unlock()
	if !already {
		close(w.stop)
	}
	<-w.done
	return w.Flush()
}

// flusher drains the buffer whenever a Put wakes it.
func (w *WriteBehind) flusher() {
	defer close(w.done)
	for {
		select {
		case <-w.wake:
			// A failed flush is counted, re-queued, and retried by the
			// next wake-up or the final Close-time flush, whose error
			// reaches the caller (the server's Drain).
			w.Flush()
		case <-w.stop:
			return
		}
	}
}
