package store

import (
	"fmt"
	"path/filepath"
	"testing"
)

// BenchmarkDurablePut times one acked write through the durable path —
// in-memory put, JSON record encode, CRC-framed WAL append, fsync —
// reporting allocs/op. The profiling plane's "store.wal-append" probe
// measures the same loop from the experiment harness; this in-package
// benchmark localises a regression to the store itself.
func BenchmarkDurablePut(b *testing.B) {
	dur, err := OpenDurable(DurableOptions{
		SnapshotPath: filepath.Join(b.TempDir(), "store.json"),
		// Keep compaction out of the timed loop: this benchmark is the
		// append path, and a compact every 256 puts would dominate it.
		SnapshotEvery: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer dur.Close()
	st := dur.Store()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := Entry{
			Signature:  fmt.Sprintf("bench-%d", i),
			Device:     "i7",
			Throughput: 100,
			Objective:  1,
			TrialsRun:  1,
		}
		if err := st.Put(e); err != nil {
			b.Fatal(err)
		}
	}
}
