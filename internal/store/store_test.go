package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"edgetune/internal/search"
)

func entry(sig, dev string) Entry {
	return Entry{
		Signature:        sig,
		Device:           dev,
		Config:           search.Config{"infer_batch": 8, "cores": 2},
		Throughput:       42,
		EnergyPerSampleJ: 0.5,
		LatencySeconds:   0.19,
		Objective:        0.0119,
		TrialsRun:        12,
	}
}

func TestPutGet(t *testing.T) {
	s := New()
	if err := s.Put(entry("IC/layers=18", "i7")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("IC/layers=18", "i7")
	if err != nil {
		t.Fatal(err)
	}
	if got.Throughput != 42 {
		t.Errorf("Throughput = %v, want 42", got.Throughput)
	}
	if _, err := s.Get("IC/layers=50", "i7"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing entry error = %v, want ErrNotFound", err)
	}
	if _, err := s.Get("IC/layers=18", "rpi3b+"); !errors.Is(err, ErrNotFound) {
		t.Error("same signature on another device must miss")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Store
	if err := s.Put(entry("a", "d")); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Error("zero-value store broken")
	}
}

func TestPutValidation(t *testing.T) {
	s := New()
	if err := s.Put(Entry{Device: "i7"}); err == nil {
		t.Error("empty signature accepted")
	}
	if err := s.Put(Entry{Signature: "x"}); err == nil {
		t.Error("empty device accepted")
	}
}

func TestHitMissStats(t *testing.T) {
	s := New()
	_ = s.Put(entry("a", "d"))
	_, _ = s.Get("a", "d")
	_, _ = s.Get("a", "d")
	_, _ = s.Get("b", "d")
	hits, misses := s.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d/%d, want 2/1", hits, misses)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New()
	_ = s.Put(entry("a", "d"))
	got, _ := s.Get("a", "d")
	got.Config["infer_batch"] = 999
	again, _ := s.Get("a", "d")
	if again.Config["infer_batch"] != 8 {
		t.Error("Get leaks shared config storage")
	}
}

func TestPutCopiesConfig(t *testing.T) {
	s := New()
	e := entry("a", "d")
	_ = s.Put(e)
	e.Config["infer_batch"] = 999
	got, _ := s.Get("a", "d")
	if got.Config["infer_batch"] != 8 {
		t.Error("Put stored caller's map by reference")
	}
}

func TestEntriesSorted(t *testing.T) {
	s := New()
	_ = s.Put(entry("z", "d"))
	_ = s.Put(entry("a", "d"))
	_ = s.Put(entry("a", "c"))
	es := s.Entries()
	if len(es) != 3 {
		t.Fatalf("Len = %d, want 3", len(es))
	}
	if es[0].Device != "c" || es[1].Signature != "a" || es[2].Signature != "z" {
		t.Errorf("entries not sorted: %v", es)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")
	s := New()
	_ = s.Put(entry("IC/layers=18", "i7"))
	_ = s.Put(entry("OD/dropout=0.3", "rpi3b+"))
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d entries, want 2", loaded.Len())
	}
	got, err := loaded.Get("IC/layers=18", "i7")
	if err != nil {
		t.Fatal(err)
	}
	if got.Config["cores"] != 2 || got.Objective != 0.0119 {
		t.Errorf("round-trip mangled entry: %+v", got)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("corrupt file accepted")
	}
	// Structurally valid JSON with an invalid entry.
	invalid := filepath.Join(t.TempDir(), "invalid.json")
	if err := os.WriteFile(invalid, []byte(`[{"signature":""}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(invalid); err == nil {
		t.Error("invalid entry accepted")
	}
}

func TestMerge(t *testing.T) {
	a := New()
	_ = a.Put(entry("x", "i7"))
	stale := entry("y", "i7")
	stale.Throughput = 1
	_ = a.Put(stale)

	b := New()
	fresh := entry("y", "i7")
	fresh.Throughput = 99
	_ = b.Put(fresh)
	_ = b.Put(entry("z", "rpi3b+"))

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 3 {
		t.Errorf("merged Len = %d, want 3", a.Len())
	}
	got, err := a.Get("y", "i7")
	if err != nil {
		t.Fatal(err)
	}
	if got.Throughput != 99 {
		t.Errorf("merge did not overwrite duplicate: %v", got.Throughput)
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge accepted")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	s := New()
	if err := s.SaveCheckpoint("", []byte(`{}`)); err == nil {
		t.Error("empty key accepted")
	}
	if err := s.SaveCheckpoint("job", []byte(`{broken`)); err == nil {
		t.Error("invalid JSON accepted")
	}
	if _, ok := s.LoadCheckpoint("job"); ok {
		t.Error("missing checkpoint found")
	}
	if err := s.SaveCheckpoint("job", []byte(`{"rung":2}`)); err != nil {
		t.Fatal(err)
	}
	got, ok := s.LoadCheckpoint("job")
	if !ok || string(got) != `{"rung":2}` {
		t.Fatalf("round trip = %q, %v", got, ok)
	}
	// Persist across Save/Load together with entries.
	_ = s.Put(entry("a", "d"))
	path := filepath.Join(t.TempDir(), "store.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1 {
		t.Errorf("entries lost: %d", loaded.Len())
	}
	got, ok = loaded.LoadCheckpoint("job")
	var cp struct {
		Rung int `json:"rung"`
	}
	if !ok {
		t.Fatal("checkpoint lost across save/load")
	}
	if err := json.Unmarshal(got, &cp); err != nil || cp.Rung != 2 {
		t.Errorf("checkpoint mangled across save/load: %q (%v)", got, err)
	}
	if keys := loaded.CheckpointKeys(); len(keys) != 1 || keys[0] != "job" {
		t.Errorf("CheckpointKeys = %v", keys)
	}
	loaded.ClearCheckpoint("job")
	if _, ok := loaded.LoadCheckpoint("job"); ok {
		t.Error("cleared checkpoint still present")
	}
}

func TestLoadLegacyArrayFormat(t *testing.T) {
	// Stores written before the checkpoint extension were bare entry
	// arrays; they must keep loading.
	path := filepath.Join(t.TempDir(), "legacy.json")
	legacy := `[{"signature":"IC/layers=18","device":"i7","config":{"infer_batch":8},"throughput":42}]`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("legacy load got %d entries", s.Len())
	}
	got, err := s.Get("IC/layers=18", "i7")
	if err != nil || got.Throughput != 42 {
		t.Errorf("legacy entry mangled: %+v, %v", got, err)
	}
}

// TestConcurrentPutSameKey: concurrent writers to one key must settle
// on one writer's complete entry — overwrite semantics, never a torn
// mix of two entries. Run with -race.
func TestConcurrentPutSameKey(t *testing.T) {
	s := New()
	const writers = 8
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e := entry("hot", "d")
				// Writer n stamps every field with its id so torn
				// writes are detectable.
				e.Throughput = float64(n)
				e.TrialsRun = n
				e.Config = search.Config{"infer_batch": float64(n)}
				_ = s.Put(e)
			}
		}(g)
	}
	wg.Wait()
	got, err := s.Get("hot", "d")
	if err != nil {
		t.Fatal(err)
	}
	if got.Throughput != float64(got.TrialsRun) || got.Config["infer_batch"] != got.Throughput {
		t.Errorf("torn write: %+v", got)
	}
}

// TestConcurrentMergeAndPut: Merge racing with Put (and with reads)
// must leave the union of all writes, with every entry intact. Run
// with -race.
func TestConcurrentMergeAndPut(t *testing.T) {
	src := New()
	for _, sig := range []string{"m1", "m2", "m3", "m4"} {
		_ = src.Put(entry(sig, "d"))
	}
	dst := New()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := dst.Merge(src); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = dst.Put(entry("p", "d"))
				_, _ = dst.Get("m1", "d")
				_ = dst.Entries()
			}
		}(g)
	}
	wg.Wait()
	if dst.Len() != 5 {
		t.Errorf("Len = %d, want 4 merged + 1 put", dst.Len())
	}
	for _, sig := range []string{"m1", "m2", "m3", "m4", "p"} {
		got, err := dst.Get(sig, "d")
		if err != nil {
			t.Errorf("%s lost: %v", sig, err)
			continue
		}
		if got.Throughput != 42 || got.Config["infer_batch"] != 8 {
			t.Errorf("%s mangled: %+v", sig, got)
		}
	}
}

// TestMergeSelf: merging a store into itself must not deadlock (Merge
// snapshots via Entries before taking the write path).
func TestMergeSelf(t *testing.T) {
	s := New()
	_ = s.Put(entry("a", "d"))
	done := make(chan error, 1)
	go func() { done <- s.Merge(s) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("self-merge deadlocked")
	}
	if s.Len() != 1 {
		t.Errorf("self-merge changed Len to %d", s.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sig := string(rune('a' + (n+i)%4))
				_ = s.Put(entry(sig, "d"))
				_, _ = s.Get(sig, "d")
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
}

// TestLegacyFileMigration round-trips a pre-WAL store file — the
// {entries, checkpoints} document without a stats block — through
// Load → Save → Load, asserting entries, checkpoints, and the hit/miss
// counters accumulated in between all survive the migration to the
// current format.
func TestLegacyFileMigration(t *testing.T) {
	dir := t.TempDir()
	legacyPath := filepath.Join(dir, "legacy.json")
	legacy := `{
  "entries": [
    {"signature": "IC/layers=18", "device": "i7",
     "config": {"infer_batch": 8, "cores": 2},
     "throughput": 42, "energyPerSampleJoules": 0.5,
     "latencySeconds": 0.19, "objective": 0.0119, "trialsRun": 12},
    {"signature": "OD/dropout=0.3", "device": "rpi3b+",
     "config": {"infer_batch": 4, "cores": 4},
     "throughput": 7, "energyPerSampleJoules": 1.1,
     "latencySeconds": 0.6, "objective": 0.08, "trialsRun": 9}
  ],
  "checkpoints": {"job-a": {"rung": 2}}
}`
	if err := os.WriteFile(legacyPath, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(legacyPath)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("legacy load: %d entries, want 2", s.Len())
	}
	if hits, misses := s.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("legacy load stats = %d/%d, want 0/0", hits, misses)
	}
	// Accumulate statistics, then migrate by saving in the new format.
	s.Get("IC/layers=18", "i7")
	s.Get("IC/layers=18", "i7")
	s.Get("nope", "i7")
	migrated := filepath.Join(dir, "migrated.json")
	if err := s.Save(migrated); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(migrated)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Errorf("migrated load: %d entries, want 2", s2.Len())
	}
	got, err := s2.Get("OD/dropout=0.3", "rpi3b+")
	if err != nil {
		t.Fatal(err)
	}
	if got.Config["cores"] != 4 || got.Objective != 0.08 {
		t.Errorf("migration mangled entry: %+v", got)
	}
	cp, ok := s2.LoadCheckpoint("job-a")
	if !ok {
		t.Fatal("checkpoint lost in migration")
	}
	var blob struct {
		Rung int `json:"rung"`
	}
	if err := json.Unmarshal(cp, &blob); err != nil || blob.Rung != 2 {
		t.Errorf("checkpoint after migration = %q (err %v), want rung 2", cp, err)
	}
	// The migrated-file stats must include the pre-save counters (plus
	// the one Get above).
	hits, misses := s2.Stats()
	if hits != 3 || misses != 1 {
		t.Errorf("stats after migration = %d/%d, want 3/1", hits, misses)
	}
	// And the migrated file opens as a durable store too.
	d, err := OpenDurable(DurableOptions{SnapshotPath: migrated})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Store().Len() != 2 {
		t.Errorf("durable open of migrated file: %d entries, want 2", d.Store().Len())
	}
}
