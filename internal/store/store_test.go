package store

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"edgetune/internal/search"
)

func entry(sig, dev string) Entry {
	return Entry{
		Signature:        sig,
		Device:           dev,
		Config:           search.Config{"infer_batch": 8, "cores": 2},
		Throughput:       42,
		EnergyPerSampleJ: 0.5,
		LatencySeconds:   0.19,
		Objective:        0.0119,
		TrialsRun:        12,
	}
}

func TestPutGet(t *testing.T) {
	s := New()
	if err := s.Put(entry("IC/layers=18", "i7")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("IC/layers=18", "i7")
	if err != nil {
		t.Fatal(err)
	}
	if got.Throughput != 42 {
		t.Errorf("Throughput = %v, want 42", got.Throughput)
	}
	if _, err := s.Get("IC/layers=50", "i7"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing entry error = %v, want ErrNotFound", err)
	}
	if _, err := s.Get("IC/layers=18", "rpi3b+"); !errors.Is(err, ErrNotFound) {
		t.Error("same signature on another device must miss")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Store
	if err := s.Put(entry("a", "d")); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Error("zero-value store broken")
	}
}

func TestPutValidation(t *testing.T) {
	s := New()
	if err := s.Put(Entry{Device: "i7"}); err == nil {
		t.Error("empty signature accepted")
	}
	if err := s.Put(Entry{Signature: "x"}); err == nil {
		t.Error("empty device accepted")
	}
}

func TestHitMissStats(t *testing.T) {
	s := New()
	_ = s.Put(entry("a", "d"))
	_, _ = s.Get("a", "d")
	_, _ = s.Get("a", "d")
	_, _ = s.Get("b", "d")
	hits, misses := s.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d/%d, want 2/1", hits, misses)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New()
	_ = s.Put(entry("a", "d"))
	got, _ := s.Get("a", "d")
	got.Config["infer_batch"] = 999
	again, _ := s.Get("a", "d")
	if again.Config["infer_batch"] != 8 {
		t.Error("Get leaks shared config storage")
	}
}

func TestPutCopiesConfig(t *testing.T) {
	s := New()
	e := entry("a", "d")
	_ = s.Put(e)
	e.Config["infer_batch"] = 999
	got, _ := s.Get("a", "d")
	if got.Config["infer_batch"] != 8 {
		t.Error("Put stored caller's map by reference")
	}
}

func TestEntriesSorted(t *testing.T) {
	s := New()
	_ = s.Put(entry("z", "d"))
	_ = s.Put(entry("a", "d"))
	_ = s.Put(entry("a", "c"))
	es := s.Entries()
	if len(es) != 3 {
		t.Fatalf("Len = %d, want 3", len(es))
	}
	if es[0].Device != "c" || es[1].Signature != "a" || es[2].Signature != "z" {
		t.Errorf("entries not sorted: %v", es)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")
	s := New()
	_ = s.Put(entry("IC/layers=18", "i7"))
	_ = s.Put(entry("OD/dropout=0.3", "rpi3b+"))
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d entries, want 2", loaded.Len())
	}
	got, err := loaded.Get("IC/layers=18", "i7")
	if err != nil {
		t.Fatal(err)
	}
	if got.Config["cores"] != 2 || got.Objective != 0.0119 {
		t.Errorf("round-trip mangled entry: %+v", got)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("corrupt file accepted")
	}
	// Structurally valid JSON with an invalid entry.
	invalid := filepath.Join(t.TempDir(), "invalid.json")
	if err := os.WriteFile(invalid, []byte(`[{"signature":""}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(invalid); err == nil {
		t.Error("invalid entry accepted")
	}
}

func TestMerge(t *testing.T) {
	a := New()
	_ = a.Put(entry("x", "i7"))
	stale := entry("y", "i7")
	stale.Throughput = 1
	_ = a.Put(stale)

	b := New()
	fresh := entry("y", "i7")
	fresh.Throughput = 99
	_ = b.Put(fresh)
	_ = b.Put(entry("z", "rpi3b+"))

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 3 {
		t.Errorf("merged Len = %d, want 3", a.Len())
	}
	got, err := a.Get("y", "i7")
	if err != nil {
		t.Fatal(err)
	}
	if got.Throughput != 99 {
		t.Errorf("merge did not overwrite duplicate: %v", got.Throughput)
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sig := string(rune('a' + (n+i)%4))
				_ = s.Put(entry(sig, "d"))
				_, _ = s.Get(sig, "d")
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
}
