package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"time"

	"edgetune/internal/obs"
	"edgetune/internal/obs/flight"
	"edgetune/internal/obs/slo"
)

// Durable is the crash-consistent persistence layer of the historical
// store (§3.4): every mutation is appended to a CRC-checksummed
// write-ahead log and fsynced before it is acknowledged, and the log is
// periodically compacted into the JSON snapshot the legacy Save/Load
// path already uses (write temp, fsync, rename, fsync dir). Opening a
// durable store recovers by replaying the WAL over the newest valid
// snapshot: a torn tail is truncated, corrupt records are quarantined
// (never fatally rejected), and the salvage is reported through
// RecoveryReport, the "store.recovery.*" counters, and a recovery span.
//
// Attach semantics: the Durable owns its inner *Store — obtain it with
// Store() and use it exactly like a plain store. Put, SaveCheckpoint,
// and ClearCheckpoint are logged write-ahead under the store's mutex,
// so WAL order always matches apply order; Save becomes "sync the WAL,
// compact if due".
type Durable struct {
	st *Store

	fsys     FS
	snapPath string
	walPath  string
	every    int

	wal          File
	walSize      int64
	sinceCompact int
	appendSeq    int64
	killAfter    int
	shipper      Shipper
	fr           *flight.Recorder

	failed   error // sticky: the WAL could not be repaired in place
	closed   bool
	closeErr error

	recovery RecoveryReport

	mAppends     *obs.Counter
	mAppendErrs  *obs.Counter
	mWALBytes    *obs.Counter
	mCompactions *obs.Counter

	sloDurability *slo.Objective
}

// ErrDurableClosed is returned by mutations after Close.
var ErrDurableClosed = errors.New("store: durable store closed")

// Shipper receives a copy of every durably acknowledged WAL frame,
// in append order, while the store's mutex is held — the hook the
// cluster layer uses to replicate a shard's log to its follower. The
// frame is the raw on-disk encoding (length prefix, CRC, payload), so
// appending it verbatim to another WAL file yields a valid log. Ship
// must not call back into the store.
type Shipper interface {
	Ship(seq int64, frame []byte)
}

// KillExitCode is the exit status of the chaos kill switch
// (DurableOptions.KillAfterAppends): a deliberate, recognisable
// process death right after a durably acknowledged append.
const KillExitCode = 3

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// SnapshotPath is the JSON snapshot file — the same format (and the
	// same file) the legacy Save/Load path uses, so existing stores
	// migrate in place. Required.
	SnapshotPath string
	// WALPath is the write-ahead log (default SnapshotPath + ".wal").
	WALPath string
	// SnapshotEvery compacts the WAL into a fresh snapshot once this
	// many records accumulate (default 256; negative disables
	// auto-compaction, Close still compacts).
	SnapshotEvery int
	// FS is the filesystem (default OSFS{}); tests inject fault.FS.
	FS FS
	// Metrics receives the wal/snapshot/recovery counters (nil = off).
	Metrics *obs.Registry
	// SLO receives the "store/durability" objective (nil = off).
	SLO *slo.Evaluator
	// Trace receives a "store/recover" span describing the salvage
	// (nil = off).
	Trace *obs.Tracer
	// KillAfterAppends, when positive, terminates the whole process
	// with KillExitCode immediately after the Nth durably acknowledged
	// WAL append — the process-level crash chaos hook. The acknowledged
	// record is on disk; the in-memory ack never reaches the caller,
	// exactly like a power cut between fsync and reply.
	KillAfterAppends int
	// Shipper, when non-nil, receives every durably acknowledged WAL
	// frame for replication (nil = no replication).
	Shipper Shipper
	// Flight receives WAL append/recovery events on the flight
	// recorder's timeline, stamped on the same operation-indexed clock
	// as the durability SLO (nil = not recorded).
	Flight *flight.Recorder
}

// RecoveryReport describes what OpenDurable salvaged.
type RecoveryReport struct {
	// SnapshotSource is which snapshot generation seeded the state:
	// "snapshot", "previous" (the pre-compaction generation), or "none".
	SnapshotSource string `json:"snapshotSource"`
	// SnapshotQuarantined reports a corrupt snapshot moved aside to
	// <snapshot>.quarantine instead of being deleted.
	SnapshotQuarantined bool `json:"snapshotQuarantined,omitempty"`
	// RecordsReplayed counts WAL records applied over the snapshot.
	RecordsReplayed int `json:"recordsReplayed"`
	// RecordsQuarantined counts WAL records (and snapshot entries)
	// whose checksum or content was corrupt; their raw bytes are
	// preserved in <wal>.quarantine.
	RecordsQuarantined int `json:"recordsQuarantined"`
	// TruncatedBytes counts torn-tail bytes cut off the WAL.
	TruncatedBytes int64 `json:"truncatedBytes"`
	// Entries and Checkpoints are the recovered logical state.
	Entries     int `json:"entries"`
	Checkpoints int `json:"checkpoints"`
}

// OpenDurable opens (or creates) a durable store rooted at
// opts.SnapshotPath, running crash recovery first. It never fails on
// corruption — only on real I/O errors from the filesystem itself.
func OpenDurable(opts DurableOptions) (*Durable, error) {
	if opts.SnapshotPath == "" {
		return nil, errors.New("store: durable store needs a snapshot path")
	}
	if opts.WALPath == "" {
		opts.WALPath = opts.SnapshotPath + ".wal"
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = 256
	}
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	d := &Durable{
		st:        New(),
		fsys:      opts.FS,
		snapPath:  opts.SnapshotPath,
		walPath:   opts.WALPath,
		every:     opts.SnapshotEvery,
		killAfter: opts.KillAfterAppends,
		shipper:   opts.Shipper,
		fr:        opts.Flight,

		mAppends:     opts.Metrics.Counter("store.wal.appends"),
		mAppendErrs:  opts.Metrics.Counter("store.wal.append-errors"),
		mWALBytes:    opts.Metrics.Counter("store.wal.bytes"),
		mCompactions: opts.Metrics.Counter("store.snapshot.compactions"),
	}
	if opts.SLO != nil {
		d.sloDurability = opts.SLO.Register(slo.Spec{
			Name:        "store/durability",
			Description: "99.9% of historical-store mutations are durably acknowledged (WAL append + fsync)",
			Target:      0.999,
		})
	}

	if err := d.recover(); err != nil {
		return nil, err
	}

	wal, err := d.fsys.OpenAppend(d.walPath)
	if err != nil {
		return nil, fmt.Errorf("store: open wal %s: %w", d.walPath, err)
	}
	d.wal = wal
	d.st.dur = d

	if reg := opts.Metrics; reg != nil {
		reg.Counter("store.recovery.replayed").Add(int64(d.recovery.RecordsReplayed))
		reg.Counter("store.recovery.quarantined").Add(int64(d.recovery.RecordsQuarantined))
		reg.Counter("store.recovery.truncated-bytes").Add(d.recovery.TruncatedBytes)
	}
	// Recovery lands at time zero on the flight timeline: it happens
	// before the run's first simulated instant. A salvage — anything
	// quarantined or a torn tail cut off — is an incident in its own
	// right, dossiered even when the run then proceeds cleanly.
	d.fr.Record(0, flight.KindWAL, "recover", d.recovery.SnapshotSource,
		int64(d.recovery.RecordsReplayed), int64(d.recovery.RecordsQuarantined))
	if d.recovery.RecordsQuarantined > 0 || d.recovery.TruncatedBytes > 0 {
		d.fr.Trigger(flight.TriggerSalvage, 0, d.recovery.SnapshotSource)
	}
	if opts.Trace != nil {
		sp := opts.Trace.Root(obs.TrackStore, "store/recover", 0, 0,
			obs.Str("snapshot", d.recovery.SnapshotSource),
			obs.Int("replayed", int64(d.recovery.RecordsReplayed)),
			obs.Int("quarantined", int64(d.recovery.RecordsQuarantined)),
			obs.Int("truncatedBytes", d.recovery.TruncatedBytes),
			obs.Int("entries", int64(d.recovery.Entries)),
			obs.Int("checkpoints", int64(d.recovery.Checkpoints)))
		sp.End(0)
	}
	return d, nil
}

// Store returns the attached store; use it exactly like a plain one.
func (d *Durable) Store() *Store { return d.st }

// Recovery reports what opening this store salvaged.
func (d *Durable) Recovery() RecoveryReport { return d.recovery }

// recover seeds the in-memory store from the newest valid snapshot and
// replays the WAL over it, repairing the log files in place.
func (d *Durable) recover() error {
	rr := &d.recovery
	rr.SnapshotSource = "none"

	// Newest valid snapshot: the current generation, then the previous
	// one kept by compaction. A corrupt generation is moved aside to
	// .quarantine — recovery degrades, it never destroys evidence.
	loaded := false
	for _, cand := range []struct{ path, source string }{
		{d.snapPath, "snapshot"},
		{d.snapPath + ".prev", "previous"},
	} {
		data, err := d.fsys.ReadFile(cand.path)
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			return fmt.Errorf("store: read snapshot %s: %w", cand.path, err)
		}
		file, perr := parseStoreFile(data)
		if perr != nil {
			if qerr := d.fsys.Rename(cand.path, cand.path+".quarantine"); qerr == nil {
				d.fsys.SyncDir(cand.path)
			}
			rr.SnapshotQuarantined = true
			continue
		}
		rr.SnapshotSource = cand.source
		d.applyStoreFile(file)
		loaded = true
		break
	}
	_ = loaded
	// A leftover temp file from an interrupted atomic write is dead
	// weight either way: the rename never happened.
	d.fsys.Remove(d.snapPath + ".tmp")

	data, err := d.fsys.ReadFile(d.walPath)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: read wal %s: %w", d.walPath, err)
	}
	sc := scanWAL(data)
	for _, rec := range sc.Records {
		d.applyRecord(rec)
	}
	rr.RecordsReplayed += len(sc.Records)
	rr.RecordsQuarantined += len(sc.Quarantined)
	rr.TruncatedBytes += sc.TruncatedBytes
	if len(sc.Quarantined) > 0 {
		d.writeQuarantine(sc.Quarantined)
	}
	if sc.TruncatedBytes > 0 {
		if err := d.fsys.Truncate(d.walPath, sc.ValidEnd); err != nil {
			return fmt.Errorf("store: truncate torn wal tail: %w", err)
		}
	}
	d.walSize = sc.ValidEnd
	d.sinceCompact = len(sc.Records)
	rr.Entries = len(d.st.entries)
	rr.Checkpoints = len(d.st.checkpoints)
	return nil
}

// applyStoreFile loads a parsed snapshot, skipping (and counting)
// invalid entries instead of rejecting the whole snapshot.
func (d *Durable) applyStoreFile(file storeFile) {
	for _, e := range file.Entries {
		if err := d.st.Put(e); err != nil {
			d.recovery.RecordsQuarantined++
		}
	}
	for k, v := range file.Checkpoints {
		if err := d.st.SaveCheckpoint(k, v); err != nil {
			d.recovery.RecordsQuarantined++
		}
	}
	if file.Stats != nil {
		d.st.mu.Lock()
		d.st.hits, d.st.misses = file.Stats.Hits, file.Stats.Misses
		d.st.mu.Unlock()
	}
}

// applyRecord replays one WAL record. Records are validated at scan
// time, so apply errors (which cannot happen today) only count.
func (d *Durable) applyRecord(rec walRecord) {
	var err error
	switch rec.Op {
	case walOpPut:
		err = d.st.Put(*rec.Entry)
	case walOpCheckpoint:
		err = d.st.SaveCheckpoint(rec.Key, rec.Data)
	case walOpClear:
		d.st.ClearCheckpoint(rec.Key)
	}
	if err != nil {
		d.recovery.RecordsQuarantined++
	}
}

// writeQuarantine preserves corrupt raw frames next to the WAL. Best
// effort: quarantine failure must never fail recovery.
func (d *Durable) writeQuarantine(frames [][]byte) {
	f, err := d.fsys.OpenAppend(d.walPath + ".quarantine")
	if err != nil {
		return
	}
	for _, frame := range frames {
		if _, err := f.Write(frame); err != nil {
			break
		}
	}
	f.Sync()
	f.Close()
}

// appendLocked logs one mutation write-ahead. Called with the store's
// mutex held, before the in-memory apply; an error means the mutation
// is rejected and memory stays unchanged. A failed partial append is
// repaired by truncating the log back to its last good length, so one
// disk fault does not poison every later record.
func (d *Durable) appendLocked(rec walRecord) error {
	if d.failed != nil {
		return d.failed
	}
	if d.closed {
		return ErrDurableClosed
	}
	frame, err := encodeWALRecord(rec)
	if err != nil {
		return err
	}
	n, werr := d.wal.Write(frame)
	if werr == nil && n < len(frame) {
		werr = io.ErrShortWrite
	}
	if werr == nil {
		werr = d.wal.Sync()
	}
	d.appendSeq++
	// The durability SLO runs on an operation-indexed clock — append
	// sequence as milliseconds — deterministic and monotonic without
	// threading the tuner's simulated clock into the storage layer.
	at := time.Duration(d.appendSeq) * time.Millisecond
	if werr != nil {
		d.mAppendErrs.Inc()
		d.sloDurability.Record(at, false)
		d.fr.Record(at, flight.KindWAL, "append-error", "", d.appendSeq, int64(n))
		if n > 0 {
			if terr := d.fsys.Truncate(d.walPath, d.walSize); terr != nil {
				d.failed = fmt.Errorf("store: wal unrepairable after failed append: %w", terr)
			}
		}
		return fmt.Errorf("store: wal append: %w", werr)
	}
	d.walSize += int64(len(frame))
	d.sinceCompact++
	d.mAppends.Inc()
	d.mWALBytes.Add(int64(len(frame)))
	d.sloDurability.Record(at, true)
	d.fr.Record(at, flight.KindWAL, "append", "", d.appendSeq, int64(len(frame)))
	if d.shipper != nil {
		d.shipper.Ship(d.appendSeq, frame)
	}
	if d.killAfter > 0 && d.appendSeq >= int64(d.killAfter) {
		os.Exit(KillExitCode) // chaos: power loss right after the ack'd fsync
	}
	return nil
}

// persistLocked is the durable implementation of Store.Save: the WAL
// already holds every acknowledged mutation, so "save" means compact
// when enough log has accumulated, otherwise just re-assert the sync.
func (d *Durable) persistLocked() error {
	if d.failed != nil {
		return d.failed
	}
	if d.closed {
		return ErrDurableClosed
	}
	if d.every > 0 && d.sinceCompact >= d.every {
		return d.compactLocked()
	}
	return d.wal.Sync()
}

// compactLocked folds the current state into a fresh snapshot and
// resets the WAL. The previous snapshot generation is kept as .prev so
// recovery always has a fallback; the crash windows are all safe:
// before the rename the old snapshot + full WAL recover, between
// rename and truncate the new snapshot + an idempotent replay recover.
func (d *Durable) compactLocked() error {
	file := d.st.snapshotFileLocked()
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return fmt.Errorf("store: marshal snapshot: %w", err)
	}
	if size, serr := d.fsys.Size(d.snapPath); serr == nil && size > 0 {
		if err := d.fsys.Rename(d.snapPath, d.snapPath+".prev"); err != nil {
			return fmt.Errorf("store: rotate snapshot: %w", err)
		}
		if err := d.fsys.SyncDir(d.snapPath); err != nil {
			return fmt.Errorf("store: fsync dir: %w", err)
		}
	}
	if err := atomicWriteFile(d.fsys, d.snapPath, data); err != nil {
		return err
	}
	if err := d.fsys.Truncate(d.walPath, 0); err != nil {
		return fmt.Errorf("store: reset wal: %w", err)
	}
	d.walSize = 0
	d.sinceCompact = 0
	d.mCompactions.Inc()
	return nil
}

// Compact folds the WAL into a fresh snapshot now.
func (d *Durable) Compact() error {
	d.st.mu.Lock()
	defer d.st.mu.Unlock()
	if d.failed != nil {
		return d.failed
	}
	if d.closed {
		return ErrDurableClosed
	}
	return d.compactLocked()
}

// Close compacts one last time and closes the log. Idempotent. Even
// when compaction fails (the disk died), every acknowledged mutation
// is still in the WAL, so the next OpenDurable loses nothing.
func (d *Durable) Close() error {
	d.st.mu.Lock()
	defer d.st.mu.Unlock()
	if d.closed {
		return d.closeErr
	}
	var err error
	if d.failed == nil {
		err = d.compactLocked()
	} else {
		err = d.failed
	}
	if cerr := d.wal.Close(); err == nil {
		err = cerr
	}
	d.closed = true
	d.closeErr = err
	return err
}

// Abandon closes the WAL handle without the final compaction — the
// disk image stays exactly as the last acknowledged append left it,
// as if the process died there. Idempotent; used by the cluster layer
// to depose a killed primary whose directory must remain untouched
// evidence (recoverable, never mutated after the kill).
func (d *Durable) Abandon() error {
	d.st.mu.Lock()
	defer d.st.mu.Unlock()
	if d.closed {
		return d.closeErr
	}
	err := d.wal.Close()
	d.closed = true
	d.closeErr = err
	return err
}
