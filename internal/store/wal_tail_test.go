package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Torn-tail edge shapes at the frame boundary: recovery must treat
// each as a torn append — salvage every prior record, truncate the
// tail, and terminate. A zero length prefix in particular must never
// be read as an empty record (the scan would loop on it forever).

// TestDurableZeroLengthTornTailFrame crashes the log with an 8-byte
// header whose length prefix is zero. Everything from that header on
// is a torn tail — including a well-formed frame behind it, because a
// zero length gives the scan no way to resynchronise.
func TestDurableZeroLengthTornTailFrame(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, DurableOptions{})
	if err := d.Store().Put(entry("a", "d")); err != nil {
		t.Fatal(err)
	}
	if err := d.Store().Put(entry("b", "d")); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "store.json.wal")
	good, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Zero-length header, then a frame that would otherwise be valid.
	zero := make([]byte, walHeaderSize)
	stranded, err := encodeWALRecord(walRecord{Op: walOpPut, Entry: &Entry{Signature: "stranded", Device: "d"}})
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append(append([]byte(nil), good...), zero...), stranded...)
	if err := os.WriteFile(walPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := openDurable(t, dir, DurableOptions{})
	rr := d2.Recovery()
	if rr.RecordsReplayed != 2 || rr.Entries != 2 {
		t.Errorf("replayed %d records into %d entries, want 2/2", rr.RecordsReplayed, rr.Entries)
	}
	if rr.RecordsQuarantined != 0 {
		t.Errorf("RecordsQuarantined = %d, want 0 (a zero-length header is torn, not corrupt)", rr.RecordsQuarantined)
	}
	if want := int64(len(zero) + len(stranded)); rr.TruncatedBytes != want {
		t.Errorf("TruncatedBytes = %d, want %d", rr.TruncatedBytes, want)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	// After repair and compaction the store scrubs clean.
	rep, err := Scrub(nil, filepath.Join(dir, "store.json"), "")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Errorf("store not clean after zero-length tail repair: %+v", rep)
	}
}

// TestDurableTruncatedCRCOnlyFrame crashes the log mid-header: the
// tail holds the length prefix but only part (or none) of the CRC —
// fewer than the 8 header bytes a frame needs. Every such tail length
// must salvage cleanly.
func TestDurableTruncatedCRCOnlyFrame(t *testing.T) {
	for tail := 1; tail < walHeaderSize; tail++ {
		t.Run(fmt.Sprintf("tail-%d-bytes", tail), func(t *testing.T) {
			dir := t.TempDir()
			d := openDurable(t, dir, DurableOptions{})
			if err := d.Store().Put(entry("a", "d")); err != nil {
				t.Fatal(err)
			}
			if err := d.Store().Put(entry("b", "d")); err != nil {
				t.Fatal(err)
			}
			walPath := filepath.Join(dir, "store.json.wal")
			good, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			// A plausible length prefix whose CRC (and payload) never made
			// it to disk.
			header := make([]byte, walHeaderSize)
			binary.LittleEndian.PutUint32(header[0:4], 64)
			binary.LittleEndian.PutUint32(header[4:8], 0xdeadbeef)
			torn := append(append([]byte(nil), good...), header[:tail]...)
			if err := os.WriteFile(walPath, torn, 0o644); err != nil {
				t.Fatal(err)
			}

			d2 := openDurable(t, dir, DurableOptions{})
			rr := d2.Recovery()
			if rr.RecordsReplayed != 2 || rr.Entries != 2 {
				t.Errorf("replayed %d records into %d entries, want 2/2", rr.RecordsReplayed, rr.Entries)
			}
			if rr.TruncatedBytes != int64(tail) {
				t.Errorf("TruncatedBytes = %d, want %d", rr.TruncatedBytes, tail)
			}
			if fi, err := os.Stat(walPath); err != nil || fi.Size() != int64(len(good)) {
				t.Errorf("wal size after repair = %v (err %v), want %d", fi, err, len(good))
			}
			// The repaired log keeps accepting acknowledged appends.
			if err := d2.Store().Put(entry("after", "d")); err != nil {
				t.Fatal(err)
			}
			if err := d2.Close(); err != nil {
				t.Fatal(err)
			}
			d3 := openDurable(t, dir, DurableOptions{})
			defer d3.Close()
			if d3.Store().Len() != 3 {
				t.Errorf("entries after repair = %d, want 3", d3.Store().Len())
			}
		})
	}
}
