// Package store is the persistent database of §3.4: inference-tuning
// results keyed by architecture signature, so that a model structure
// already tuned for inference is never re-tuned ("avoids retuning
// architectures and parameters twice, with the cost of a small storage
// overhead"). The store is an in-memory map with optional JSON
// persistence.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"edgetune/internal/search"
)

// Entry is one cached inference-tuning outcome.
type Entry struct {
	// Signature identifies the architecture (workload + model
	// hyperparameter), per workload.Signature.
	Signature string `json:"signature"`
	// Device is the edge device the result was tuned for.
	Device string `json:"device"`
	// Config is the optimal inference configuration found.
	Config search.Config `json:"config"`
	// Throughput is samples/second at the optimal configuration.
	Throughput float64 `json:"throughput"`
	// EnergyPerSampleJ is joules per sample at the optimum.
	EnergyPerSampleJ float64 `json:"energyPerSampleJoules"`
	// LatencySeconds is the per-batch latency at the optimum.
	LatencySeconds float64 `json:"latencySeconds"`
	// Objective is the minimised inference objective value.
	Objective float64 `json:"objective"`
	// TrialsRun records how many inference trials produced this entry.
	TrialsRun int `json:"trialsRun"`
}

// key combines signature and device: the same architecture tuned for a
// different device is a different entry.
func (e Entry) key() string { return e.Signature + "@" + e.Device }

// ErrNotFound is returned by Get for missing entries.
var ErrNotFound = errors.New("store: entry not found")

// Store is a thread-safe historical result cache. The zero value is
// ready to use.
type Store struct {
	mu      sync.Mutex
	entries map[string]Entry
	hits    int
	misses  int
	// checkpoints holds opaque job-progress blobs keyed by job, so a
	// crashed tuning run can resume from its last completed rung using
	// the same persistence as the historical database.
	checkpoints map[string]json.RawMessage
	// dur, when set by OpenDurable, journals every mutation write-ahead
	// (under mu, before the in-memory apply) and takes over Save.
	dur *Durable
}

// New returns an empty store.
func New() *Store { return &Store{} }

// Put inserts or replaces an entry.
func (s *Store) Put(e Entry) error {
	if e.Signature == "" {
		return fmt.Errorf("store: entry with empty signature")
	}
	if e.Device == "" {
		return fmt.Errorf("store: entry with empty device")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e.Config = e.Config.Clone()
	if s.dur != nil {
		if err := s.dur.appendLocked(walRecord{Op: walOpPut, Entry: &e}); err != nil {
			return err
		}
	}
	if s.entries == nil {
		s.entries = make(map[string]Entry)
	}
	s.entries[e.key()] = e
	return nil
}

// Get looks up the cached result for an architecture on a device,
// recording the hit/miss statistics the overhead evaluation reports.
func (s *Store) Get(signature, dev string) (Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[signature+"@"+dev]
	if !ok {
		s.misses++
		return Entry{}, fmt.Errorf("%w: %s@%s", ErrNotFound, signature, dev)
	}
	s.hits++
	e.Config = e.Config.Clone()
	return e, nil
}

// Len reports the number of cached entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats reports cache hits and misses since creation (or load).
func (s *Store) Stats() (hits, misses int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// Entries returns all entries sorted by key (deterministic order).
func (s *Store) Entries() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		e.Config = e.Config.Clone()
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// Merge copies every entry of other into s, overwriting duplicates.
// It supports combining the historical databases of tuning servers that
// ran independently (e.g. per-device recommendation jobs).
func (s *Store) Merge(other *Store) error {
	if other == nil {
		return errors.New("store: merge with nil store")
	}
	for _, e := range other.Entries() {
		if err := s.Put(e); err != nil {
			return err
		}
	}
	return nil
}

// SaveCheckpoint stores an opaque progress blob under key, replacing
// any previous one.
func (s *Store) SaveCheckpoint(key string, data []byte) error {
	if key == "" {
		return errors.New("store: checkpoint with empty key")
	}
	if !json.Valid(data) {
		return fmt.Errorf("store: checkpoint %q is not valid JSON", key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur != nil {
		rec := walRecord{Op: walOpCheckpoint, Key: key, Data: append(json.RawMessage(nil), data...)}
		if err := s.dur.appendLocked(rec); err != nil {
			return err
		}
	}
	if s.checkpoints == nil {
		s.checkpoints = make(map[string]json.RawMessage)
	}
	s.checkpoints[key] = append(json.RawMessage(nil), data...)
	return nil
}

// LoadCheckpoint returns the blob stored under key, if any.
func (s *Store) LoadCheckpoint(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.checkpoints[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// ClearCheckpoint removes the blob stored under key (a no-op when
// absent), called when the checkpointed job completes.
func (s *Store) ClearCheckpoint(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur != nil {
		// Best effort: a failed log append here only means the clear may
		// be replayed as a no-op delete after a crash; the in-memory
		// clear (and the next compaction) still happens.
		s.dur.appendLocked(walRecord{Op: walOpClear, Key: key})
	}
	delete(s.checkpoints, key)
}

// CheckpointKeys lists stored checkpoint keys in sorted order.
func (s *Store) CheckpointKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.checkpoints))
	for k := range s.checkpoints {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// storeFile is the on-disk representation: entries plus in-flight job
// checkpoints and cache statistics. Load also accepts the legacy
// format, a bare entry array.
type storeFile struct {
	Entries     []Entry                    `json:"entries"`
	Checkpoints map[string]json.RawMessage `json:"checkpoints,omitempty"`
	Stats       *storeStats                `json:"stats,omitempty"`
}

// storeStats persists the cache hit/miss counters across restarts.
type storeStats struct {
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
}

// snapshotFileLocked builds the on-disk document from the current
// state. Callers must hold s.mu.
func (s *Store) snapshotFileLocked() storeFile {
	file := storeFile{Entries: make([]Entry, 0, len(s.entries))}
	for _, e := range s.entries {
		e.Config = e.Config.Clone()
		file.Entries = append(file.Entries, e)
	}
	sort.Slice(file.Entries, func(i, j int) bool { return file.Entries[i].key() < file.Entries[j].key() })
	if len(s.checkpoints) > 0 {
		file.Checkpoints = make(map[string]json.RawMessage, len(s.checkpoints))
		for k, v := range s.checkpoints {
			file.Checkpoints[k] = append(json.RawMessage(nil), v...)
		}
	}
	if s.hits != 0 || s.misses != 0 {
		file.Stats = &storeStats{Hits: s.hits, Misses: s.misses}
	}
	return file
}

// Save writes the store as JSON to path: write a temp sibling, fsync
// it, rename over the target, fsync the parent directory — power-loss
// safe even without the WAL. On a durable store (OpenDurable) the WAL
// already holds every acknowledged mutation, so Save becomes "sync and
// compact if due" and path is ignored in favour of the snapshot path.
func (s *Store) Save(path string) error {
	s.mu.Lock()
	if s.dur != nil {
		defer s.mu.Unlock()
		return s.dur.persistLocked()
	}
	file := s.snapshotFileLocked()
	s.mu.Unlock()
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return fmt.Errorf("store: marshal: %w", err)
	}
	return atomicWriteFile(OSFS{}, path, data)
}

// parseStoreFile decodes an on-disk store document, accepting both the
// current {entries, checkpoints, stats} format and the legacy
// bare-array format.
func parseStoreFile(data []byte) (storeFile, error) {
	var file storeFile
	if err := json.Unmarshal(data, &file); err != nil {
		// Legacy format: a bare entry array.
		if legacyErr := json.Unmarshal(data, &file.Entries); legacyErr != nil {
			return storeFile{}, err
		}
	}
	return file, nil
}

// Load reads a JSON store from path, accepting both the current
// {entries, checkpoints} document and the legacy bare-array format.
func Load(path string) (*Store, error) {
	data, err := OSFS{}.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: read %s: %w", path, err)
	}
	file, err := parseStoreFile(data)
	if err != nil {
		return nil, fmt.Errorf("store: parse %s: %w", path, err)
	}
	s := New()
	for _, e := range file.Entries {
		if err := s.Put(e); err != nil {
			return nil, fmt.Errorf("store: invalid entry in %s: %w", path, err)
		}
	}
	for k, v := range file.Checkpoints {
		if err := s.SaveCheckpoint(k, v); err != nil {
			return nil, fmt.Errorf("store: invalid checkpoint in %s: %w", path, err)
		}
	}
	if file.Stats != nil {
		s.mu.Lock()
		s.hits, s.misses = file.Stats.Hits, file.Stats.Misses
		s.mu.Unlock()
	}
	return s, nil
}
