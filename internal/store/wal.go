package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// The write-ahead log is a flat sequence of length-prefixed,
// CRC-checksummed records:
//
//	offset 0: uint32 little-endian payload length
//	offset 4: uint32 little-endian CRC-32 (IEEE) of the payload
//	offset 8: payload — one JSON walRecord
//
// Appends are fsynced before the mutation is acknowledged, so every
// record a caller saw succeed is on disk. Recovery scans the log
// front-to-back: a record whose checksum fails (bit flip on flash) is
// quarantined and skipped, a record whose framing runs past the end of
// the file (torn write at power loss) ends the scan and the tail is
// truncated. Recovery therefore never rejects a log — it salvages the
// longest sane prefix and reports what it could not keep.

// walOp names one mutation kind.
type walOp string

const (
	walOpPut        walOp = "put"
	walOpCheckpoint walOp = "checkpoint"
	walOpClear      walOp = "clear-checkpoint"
)

// walRecord is one logged mutation.
type walRecord struct {
	Op    walOp           `json:"op"`
	Entry *Entry          `json:"entry,omitempty"`
	Key   string          `json:"key,omitempty"`
	Data  json.RawMessage `json:"data,omitempty"`
}

const (
	walHeaderSize = 8
	// maxWALRecord bounds a single record; a length prefix beyond it is
	// framing corruption, not a real record.
	maxWALRecord = 16 << 20
)

// encodeWALRecord frames rec for appending.
func encodeWALRecord(rec walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: marshal wal record: %w", err)
	}
	frame := make([]byte, walHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[walHeaderSize:], payload)
	return frame, nil
}

// walScan is the salvage report of one log scan.
type walScan struct {
	// Records are the decoded, checksum-valid records in log order.
	Records []walRecord
	// Quarantined holds the raw frames of records whose checksum or
	// JSON was bad; they are preserved (never silently deleted) so an
	// operator can inspect them.
	Quarantined [][]byte
	// ValidEnd is the byte offset of the end of the last record the
	// scan accepted (including quarantined ones — their framing was
	// intact); everything past it is a torn tail.
	ValidEnd int64
	// TruncatedBytes counts the torn-tail bytes past ValidEnd.
	TruncatedBytes int64
}

// scanWAL walks the log, salvaging the longest well-framed prefix.
func scanWAL(data []byte) walScan {
	var sc walScan
	off := 0
	for off+walHeaderSize <= len(data) {
		length := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length == 0 || length > maxWALRecord || off+walHeaderSize+length > len(data) {
			// Implausible or overrunning frame: a torn append (or a bit
			// flip in the length prefix, indistinguishable from one).
			break
		}
		payload := data[off+walHeaderSize : off+walHeaderSize+length]
		next := off + walHeaderSize + length
		if crc32.ChecksumIEEE(payload) != sum {
			sc.Quarantined = append(sc.Quarantined, append([]byte(nil), data[off:next]...))
			off = next
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil || !validWALRecord(rec) {
			// Checksum matched but the content is not a record we can
			// apply (version skew, hand-edited log): quarantine, not
			// fatal.
			sc.Quarantined = append(sc.Quarantined, append([]byte(nil), data[off:next]...))
			off = next
			continue
		}
		sc.Records = append(sc.Records, rec)
		off = next
	}
	sc.ValidEnd = int64(off)
	sc.TruncatedBytes = int64(len(data)) - sc.ValidEnd
	return sc
}

// validWALRecord rejects decoded records that cannot be applied.
func validWALRecord(rec walRecord) bool {
	switch rec.Op {
	case walOpPut:
		return rec.Entry != nil && rec.Entry.Signature != "" && rec.Entry.Device != ""
	case walOpCheckpoint:
		return rec.Key != "" && json.Valid(rec.Data)
	case walOpClear:
		return rec.Key != ""
	default:
		return false
	}
}
