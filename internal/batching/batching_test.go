package batching

import (
	"errors"
	"math"
	"testing"

	"edgetune/internal/device"
	"edgetune/internal/perfmodel"
)

// affineLat is a synthetic latency model: fixed setup plus per-sample
// cost — batching amortises the setup.
func affineLat(setup, perSample float64) LatencyFn {
	return func(batch int) (float64, float64, error) {
		sec := setup + perSample*float64(batch)
		return sec, sec * 5, nil // 5 W device
	}
}

func deviceLat(t *testing.T) LatencyFn {
	t.Helper()
	dev := device.I7()
	return func(batch int) (float64, float64, error) {
		r, err := dev.Estimate(perfmodel.InferSpec{
			FLOPsPerSample: 5.6e8,
			Params:         11e6,
			BatchSize:      batch,
			Cores:          4,
			FreqGHz:        3.5,
		})
		if err != nil {
			return 0, 0, err
		}
		return r.BatchLatency.Seconds(), r.EnergyPerSampleJ * float64(batch), nil
	}
}

func TestServerValidate(t *testing.T) {
	lat := affineLat(0.01, 0.001)
	if _, err := (Server{SamplesPerQuery: 0, PeriodSec: 1}).Evaluate(lat, 1); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := (Server{SamplesPerQuery: 10, PeriodSec: 0}).Evaluate(lat, 1); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := (Server{SamplesPerQuery: 10, PeriodSec: 1}).Evaluate(lat, 0); err == nil {
		t.Error("zero split accepted")
	}
}

func TestServerEvaluateArithmetic(t *testing.T) {
	// setup 10 ms, 1 ms/sample, N=10.
	s := Server{SamplesPerQuery: 10, PeriodSec: 1}
	lat := affineLat(0.01, 0.001)

	// Split 1: 10 calls of 1 => 10*(0.011) = 0.11 s.
	r, err := s.Evaluate(lat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.ResponseSec-0.11) > 1e-9 {
		t.Errorf("split 1 response = %v, want 0.11", r.ResponseSec)
	}
	// Split 10: 1 call => 0.02 s.
	r, err = s.Evaluate(lat, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.ResponseSec-0.02) > 1e-9 {
		t.Errorf("split 10 response = %v, want 0.02", r.ResponseSec)
	}
	// Split 4: calls of 4,4,2 => 3 setups + 10 ms samples = 0.04.
	r, err = s.Evaluate(lat, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.ResponseSec-0.04) > 1e-9 {
		t.Errorf("split 4 response = %v, want 0.04", r.ResponseSec)
	}
	// Oversized split clamps to N.
	r, err = s.Evaluate(lat, 99)
	if err != nil {
		t.Fatal(err)
	}
	if r.Split != 10 {
		t.Errorf("oversized split = %d, want clamp to 10", r.Split)
	}
}

func TestServerOptimalPrefersStable(t *testing.T) {
	// With an affine model the largest batch is fastest; Optimal must
	// find it.
	s := Server{SamplesPerQuery: 16, PeriodSec: 1}
	best, err := s.Optimal(affineLat(0.01, 0.001))
	if err != nil {
		t.Fatal(err)
	}
	if best.Split != 16 {
		t.Errorf("optimal split = %d, want 16 (setup-amortising)", best.Split)
	}
	if !best.Stable {
		t.Error("optimal should be stable at this load")
	}
}

func TestServerOptimalOnRealDevice(t *testing.T) {
	// On the device model, past-the-knee batches decay, so the optimum
	// is interior: neither 1 nor N.
	s := Server{SamplesPerQuery: 100, PeriodSec: 30}
	best, err := s.Optimal(deviceLat(t))
	if err != nil {
		t.Fatal(err)
	}
	if best.Split <= 1 || best.Split >= 100 {
		t.Errorf("device-model optimal split = %d, want interior sweet spot", best.Split)
	}
}

func TestServerUnstableFlagged(t *testing.T) {
	s := Server{SamplesPerQuery: 100, PeriodSec: 0.001}
	best, err := s.Optimal(affineLat(0.01, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if best.Stable {
		t.Error("impossible load reported stable")
	}
}

func TestServerLatencyErrorPropagates(t *testing.T) {
	s := Server{SamplesPerQuery: 4, PeriodSec: 1}
	wantErr := errors.New("boom")
	_, err := s.Evaluate(func(int) (float64, float64, error) { return 0, 0, wantErr }, 2)
	if !errors.Is(err, wantErr) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestMultiStreamValidate(t *testing.T) {
	lat := affineLat(0.01, 0.001)
	if _, err := (MultiStream{LambdaPerSec: 0, Samples: 10}).Simulate(lat, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := (MultiStream{LambdaPerSec: 1, Samples: 0}).Simulate(lat, 1); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := (MultiStream{LambdaPerSec: 1, Samples: 10}).Simulate(lat, 0); err == nil {
		t.Error("zero cap accepted")
	}
	if _, err := (MultiStream{LambdaPerSec: 1, Samples: 10}).OptimalBatch(lat, 0); err == nil {
		t.Error("zero max cap accepted")
	}
}

func TestMultiStreamDeterministic(t *testing.T) {
	m := MultiStream{LambdaPerSec: 50, Samples: 500, Seed: 7}
	lat := affineLat(0.01, 0.001)
	a, err := m.Simulate(lat, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Simulate(lat, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed simulations differ: %+v vs %+v", a, b)
	}
}

func TestMultiStreamResponseAtLeastService(t *testing.T) {
	m := MultiStream{LambdaPerSec: 10, Samples: 300, Seed: 1}
	lat := affineLat(0.02, 0.001)
	r, err := m.Simulate(lat, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Mean response can never be below the minimum service time (one
	// batch of 1).
	if r.MeanResponseSec < 0.021 {
		t.Errorf("mean response %v below minimum service time", r.MeanResponseSec)
	}
	if r.P95ResponseSec < r.MeanResponseSec {
		t.Error("p95 below mean")
	}
	if r.MeanBatch < 1 || r.MeanBatch > 8 {
		t.Errorf("mean batch %v out of [1, cap]", r.MeanBatch)
	}
}

// TestMultiStreamAggregationHelpsUnderLoad is the paper's §3.4 claim: at
// arrival rates where per-sample dispatch cannot keep up, aggregating
// samples improves the overall mean response time.
func TestMultiStreamAggregationHelpsUnderLoad(t *testing.T) {
	// Service at batch 1 takes 11 ms; arrivals every 10 ms: unstable
	// without batching.
	m := MultiStream{LambdaPerSec: 100, Samples: 2000, Seed: 3}
	lat := affineLat(0.01, 0.001)
	single, err := m.Simulate(lat, 1)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := m.Simulate(lat, 16)
	if err != nil {
		t.Fatal(err)
	}
	if batched.MeanResponseSec >= single.MeanResponseSec {
		t.Errorf("aggregation did not help: %v vs %v", batched.MeanResponseSec, single.MeanResponseSec)
	}
	best, err := m.OptimalBatch(lat, 32)
	if err != nil {
		t.Fatal(err)
	}
	if best.BatchCap <= 1 {
		t.Errorf("optimal cap = %d, want > 1 under overload", best.BatchCap)
	}
}

// TestMultiStreamLightLoadSmallBatches: when arrivals are sparse, the
// simulator should dispatch mostly singletons regardless of the cap.
func TestMultiStreamLightLoadSmallBatches(t *testing.T) {
	m := MultiStream{LambdaPerSec: 1, Samples: 200, Seed: 5}
	r, err := m.Simulate(affineLat(0.001, 0.001), 32)
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanBatch > 1.2 {
		t.Errorf("light load mean batch = %v, want ~1", r.MeanBatch)
	}
}

func TestMultiStreamOnRealDevice(t *testing.T) {
	m := MultiStream{LambdaPerSec: 40, Samples: 1000, Seed: 11}
	best, err := m.OptimalBatch(deviceLat(t), 32)
	if err != nil {
		t.Fatal(err)
	}
	if best.BatchCap < 1 || best.BatchCap > 32 {
		t.Fatalf("cap out of range: %d", best.BatchCap)
	}
	if best.EnergyPerSampleJ <= 0 {
		t.Error("non-positive energy")
	}
}
