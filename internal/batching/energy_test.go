package batching

import (
	"testing"
)

func TestOptimalEnergyPrefersBatching(t *testing.T) {
	// With affine latency and constant power, batching amortises setup
	// energy too, so the largest split minimises J/query.
	s := Server{SamplesPerQuery: 16, PeriodSec: 10}
	best, err := s.OptimalEnergy(affineLat(0.01, 0.001))
	if err != nil {
		t.Fatal(err)
	}
	if best.Split != 16 {
		t.Errorf("energy-optimal split = %d, want 16", best.Split)
	}
	if !best.Stable {
		t.Error("comfortable load reported unstable")
	}
}

func TestOptimalEnergyOnDeviceInterior(t *testing.T) {
	// On the device model the memory knee makes huge batches expensive,
	// so the energy optimum is interior.
	s := Server{SamplesPerQuery: 100, PeriodSec: 60}
	best, err := s.OptimalEnergy(deviceLat(t))
	if err != nil {
		t.Fatal(err)
	}
	if best.Split <= 1 || best.Split >= 100 {
		t.Errorf("energy-optimal split = %d, want interior", best.Split)
	}
}

func TestOptimalEnergyValidation(t *testing.T) {
	if _, err := (Server{}).OptimalEnergy(affineLat(0.01, 0.001)); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestOptimalUnderSLO(t *testing.T) {
	m := MultiStream{LambdaPerSec: 100, Samples: 2000, Seed: 3}
	lat := affineLat(0.01, 0.001)

	// Generous SLO: should pick an energy-efficient aggregation.
	r, ok, err := m.OptimalUnderSLO(lat, 32, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("generous SLO not satisfiable")
	}
	if r.P95ResponseSec > 1.0 {
		t.Errorf("returned cap violates the SLO: p95 %v", r.P95ResponseSec)
	}

	// Impossible SLO: fall back to the fastest cap, flagged.
	r2, ok2, err := m.OptimalUnderSLO(lat, 32, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if ok2 {
		t.Error("impossible SLO reported satisfied")
	}
	if r2.P95ResponseSec <= 0 {
		t.Error("fallback result missing")
	}
}

func TestOptimalUnderSLOValidation(t *testing.T) {
	m := MultiStream{LambdaPerSec: 10, Samples: 100, Seed: 1}
	lat := affineLat(0.01, 0.001)
	if _, _, err := m.OptimalUnderSLO(lat, 0, 1); err == nil {
		t.Error("zero cap accepted")
	}
	if _, _, err := m.OptimalUnderSLO(lat, 8, 0); err == nil {
		t.Error("zero SLO accepted")
	}
	bad := MultiStream{LambdaPerSec: 0, Samples: 100}
	if _, _, err := bad.OptimalUnderSLO(lat, 8, 1); err == nil {
		t.Error("invalid scenario accepted")
	}
}
