package batching

import (
	"fmt"
	"math"
)

// OptimalEnergy sweeps splits and returns the stable split with the
// lowest energy per query — the choice a battery-powered deployment
// makes when "energy savings are more important than inference
// performance" (§2.3.4). If no split is stable, the lowest-energy
// unstable one is returned, flagged.
func (s Server) OptimalEnergy(lat LatencyFn) (ServerResult, error) {
	if err := s.validate(); err != nil {
		return ServerResult{}, err
	}
	best := ServerResult{EnergyPerQueryJ: math.Inf(1)}
	bestStable := ServerResult{EnergyPerQueryJ: math.Inf(1)}
	for split := 1; split <= s.SamplesPerQuery; split++ {
		r, err := s.Evaluate(lat, split)
		if err != nil {
			return ServerResult{}, err
		}
		if r.EnergyPerQueryJ < best.EnergyPerQueryJ {
			best = r
		}
		if r.Stable && r.EnergyPerQueryJ < bestStable.EnergyPerQueryJ {
			bestStable = r
		}
	}
	if !math.IsInf(bestStable.EnergyPerQueryJ, 1) {
		return bestStable, nil
	}
	return best, nil
}

// OptimalUnderSLO returns the aggregation cap minimising energy per
// sample among caps whose p95 response time meets the service-level
// objective; it falls back to the cap with the lowest p95 when none
// does, with ok=false.
func (m MultiStream) OptimalUnderSLO(lat LatencyFn, maxCap int, p95SLOSec float64) (StreamResult, bool, error) {
	if maxCap < 1 {
		return StreamResult{}, false, fmt.Errorf("batching: max cap %d must be >= 1", maxCap)
	}
	if p95SLOSec <= 0 {
		return StreamResult{}, false, fmt.Errorf("batching: SLO %v must be positive", p95SLOSec)
	}
	var (
		bestOK    = StreamResult{EnergyPerSampleJ: math.Inf(1)}
		bestP95   = StreamResult{P95ResponseSec: math.Inf(1)}
		foundOK   bool
		lastError error
	)
	for cap := 1; cap <= maxCap; cap++ {
		r, err := m.Simulate(lat, cap)
		if err != nil {
			lastError = err
			break
		}
		if r.P95ResponseSec <= p95SLOSec && r.EnergyPerSampleJ < bestOK.EnergyPerSampleJ {
			bestOK = r
			foundOK = true
		}
		if r.P95ResponseSec < bestP95.P95ResponseSec {
			bestP95 = r
		}
	}
	if lastError != nil {
		return StreamResult{}, false, lastError
	}
	if foundOK {
		return bestOK, true, nil
	}
	return bestP95, false, nil
}
