// Package batching implements the multi-sample inference scenarios of
// §3.4 / Figure 8, the cases where the inference batch-size
// hyperparameter must be tuned:
//
//   - Server: every query carries N samples and queries arrive at a fixed
//     frequency; the tuner must decide how to split the N samples into
//     inference batches.
//   - Multi-stream: single-sample queries arrive randomly (Poisson); the
//     tuner must decide how many samples to aggregate per inference call
//     to optimise the overall mean response time.
package batching

import (
	"fmt"
	"math"
	"sort"

	"edgetune/internal/sim"
)

// LatencyFn reports the per-call latency (seconds) and energy (joules)
// of running inference with the given batch size on the target device.
// It is typically backed by the device emulator.
type LatencyFn func(batch int) (seconds, energyJ float64, err error)

// --- Server scenario ---------------------------------------------------------

// Server is the fixed-frequency, N-samples-per-query scenario.
type Server struct {
	// SamplesPerQuery is N, the samples carried by each query.
	SamplesPerQuery int
	// PeriodSec is the inter-query arrival period (1/frequency).
	PeriodSec float64
}

// ServerResult evaluates one split choice.
type ServerResult struct {
	// Split is the chosen inference batch size.
	Split int
	// ResponseSec is the time to fully process one query.
	ResponseSec float64
	// EnergyPerQueryJ is the energy to fully process one query.
	EnergyPerQueryJ float64
	// Stable reports whether the system keeps up (response <= period).
	Stable bool
}

func (s Server) validate() error {
	if s.SamplesPerQuery < 1 {
		return fmt.Errorf("batching: samples per query %d must be >= 1", s.SamplesPerQuery)
	}
	if s.PeriodSec <= 0 {
		return fmt.Errorf("batching: period %v must be positive", s.PeriodSec)
	}
	return nil
}

// Evaluate computes the response time of processing one N-sample query
// as ceil(N/split) sequential inference calls of size split (the last
// call may be smaller).
func (s Server) Evaluate(lat LatencyFn, split int) (ServerResult, error) {
	var res ServerResult
	if err := s.validate(); err != nil {
		return res, err
	}
	if split < 1 {
		return res, fmt.Errorf("batching: split %d must be >= 1", split)
	}
	if split > s.SamplesPerQuery {
		split = s.SamplesPerQuery
	}
	remaining := s.SamplesPerQuery
	var totalSec, totalJ float64
	for remaining > 0 {
		b := split
		if remaining < b {
			b = remaining
		}
		sec, joules, err := lat(b)
		if err != nil {
			return res, fmt.Errorf("batching: latency(%d): %w", b, err)
		}
		totalSec += sec
		totalJ += joules
		remaining -= b
	}
	res.Split = split
	res.ResponseSec = totalSec
	res.EnergyPerQueryJ = totalJ
	res.Stable = totalSec <= s.PeriodSec
	return res, nil
}

// Optimal sweeps splits 1..N and returns the stable split with the
// lowest response time; if no split is stable it returns the fastest
// unstable one, flagged Stable=false.
func (s Server) Optimal(lat LatencyFn) (ServerResult, error) {
	if err := s.validate(); err != nil {
		return ServerResult{}, err
	}
	best := ServerResult{ResponseSec: math.Inf(1)}
	bestStable := ServerResult{ResponseSec: math.Inf(1)}
	for split := 1; split <= s.SamplesPerQuery; split++ {
		r, err := s.Evaluate(lat, split)
		if err != nil {
			return ServerResult{}, err
		}
		if r.ResponseSec < best.ResponseSec {
			best = r
		}
		if r.Stable && r.ResponseSec < bestStable.ResponseSec {
			bestStable = r
		}
	}
	if !math.IsInf(bestStable.ResponseSec, 1) {
		return bestStable, nil
	}
	return best, nil
}

// --- Multi-stream scenario ----------------------------------------------------

// MultiStream is the Poisson single-sample arrival scenario.
type MultiStream struct {
	// LambdaPerSec is the arrival rate.
	LambdaPerSec float64
	// Samples is the number of arrivals to simulate.
	Samples int
	// Seed drives the deterministic arrival process.
	Seed uint64
}

// StreamResult summarises a multi-stream simulation.
type StreamResult struct {
	// BatchCap is the aggregation limit evaluated.
	BatchCap int
	// MeanResponseSec is the mean per-sample response time (queueing +
	// service).
	MeanResponseSec float64
	// P95ResponseSec is the 95th-percentile response time.
	P95ResponseSec float64
	// MeanBatch is the average dispatched batch size.
	MeanBatch float64
	// EnergyPerSampleJ is the mean energy per sample.
	EnergyPerSampleJ float64
}

func (m MultiStream) validate() error {
	if m.LambdaPerSec <= 0 {
		return fmt.Errorf("batching: arrival rate %v must be positive", m.LambdaPerSec)
	}
	if m.Samples < 1 {
		return fmt.Errorf("batching: samples %d must be >= 1", m.Samples)
	}
	return nil
}

// Simulate runs a discrete-event simulation: samples arrive with
// exponential inter-arrival times; whenever the server is idle it takes
// up to batchCap queued samples and serves them in one inference call.
func (m MultiStream) Simulate(lat LatencyFn, batchCap int) (StreamResult, error) {
	var res StreamResult
	if err := m.validate(); err != nil {
		return res, err
	}
	if batchCap < 1 {
		return res, fmt.Errorf("batching: batch cap %d must be >= 1", batchCap)
	}
	rng := sim.NewRNG(m.Seed)

	// Pre-generate arrival times.
	arrivals := make([]float64, m.Samples)
	t := 0.0
	for i := range arrivals {
		t += rng.ExpFloat64(m.LambdaPerSec)
		arrivals[i] = t
	}

	var (
		responses   = make([]float64, 0, m.Samples)
		totalJ      float64
		totalBatch  int
		dispatches  int
		serverFree  = 0.0 // time the server becomes idle
		next        = 0   // next arrival index not yet served
		clockedTime = 0.0
	)
	for next < m.Samples {
		// The server can start when it is free and at least one sample
		// has arrived.
		start := math.Max(serverFree, arrivals[next])
		clockedTime = start
		// Aggregate every sample that has arrived by the start instant,
		// up to the cap.
		count := 0
		for next+count < m.Samples && count < batchCap && arrivals[next+count] <= clockedTime {
			count++
		}
		if count == 0 {
			count = 1 // serve the sample that triggered the start
		}
		sec, joules, err := lat(count)
		if err != nil {
			return res, fmt.Errorf("batching: latency(%d): %w", count, err)
		}
		done := start + sec
		for i := 0; i < count; i++ {
			responses = append(responses, done-arrivals[next+i])
		}
		totalJ += joules
		totalBatch += count
		dispatches++
		next += count
		serverFree = done
	}

	sort.Float64s(responses)
	var sum float64
	for _, r := range responses {
		sum += r
	}
	res.BatchCap = batchCap
	res.MeanResponseSec = sum / float64(len(responses))
	res.P95ResponseSec = responses[int(0.95*float64(len(responses)-1))]
	res.MeanBatch = float64(totalBatch) / float64(dispatches)
	res.EnergyPerSampleJ = totalJ / float64(m.Samples)
	return res, nil
}

// OptimalBatch sweeps aggregation caps 1..maxCap and returns the cap
// minimising mean response time.
func (m MultiStream) OptimalBatch(lat LatencyFn, maxCap int) (StreamResult, error) {
	if maxCap < 1 {
		return StreamResult{}, fmt.Errorf("batching: max cap %d must be >= 1", maxCap)
	}
	best := StreamResult{MeanResponseSec: math.Inf(1)}
	for cap := 1; cap <= maxCap; cap++ {
		r, err := m.Simulate(lat, cap)
		if err != nil {
			return StreamResult{}, err
		}
		if r.MeanResponseSec < best.MeanResponseSec {
			best = r
		}
	}
	return best, nil
}
