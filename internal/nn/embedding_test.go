package nn

import (
	"math"
	"testing"

	"edgetune/internal/sim"
	"edgetune/internal/tensor"
)

func TestNewEmbeddingValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := NewEmbedding(0, 4, rng); err == nil {
		t.Error("zero vocab accepted")
	}
	if _, err := NewEmbedding(4, 0, rng); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := NewSimpleRNN(0, 4, rng); err == nil {
		t.Error("rnn zero vocab accepted")
	}
	if _, err := NewSimpleRNN(4, 0, rng); err == nil {
		t.Error("rnn zero hidden accepted")
	}
}

func TestEmbeddingForwardMeanPools(t *testing.T) {
	rng := sim.NewRNG(2)
	e, err := NewEmbedding(5, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	// One sample with tokens 1 and 3.
	x, _ := tensor.FromSlice(1, 2, []float64{1, 3})
	out := e.Forward(x, false)
	for j := 0; j < 3; j++ {
		want := (e.table.W.At(1, j) + e.table.W.At(3, j)) / 2
		if math.Abs(out.At(0, j)-want) > 1e-12 {
			t.Errorf("dim %d = %v, want %v", j, out.At(0, j), want)
		}
	}
}

func TestEmbeddingIgnoresOutOfVocab(t *testing.T) {
	rng := sim.NewRNG(3)
	e, err := NewEmbedding(5, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := tensor.FromSlice(1, 3, []float64{2, -1, 99})
	out := e.Forward(x, false)
	for j := 0; j < 3; j++ {
		if out.At(0, j) != e.table.W.At(2, j) {
			t.Errorf("padding tokens altered the pooled embedding")
		}
	}
}

func TestEmbeddingGradientCheck(t *testing.T) {
	rng := sim.NewRNG(5)
	e, err := NewEmbedding(6, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	head := NewDense(4, 2, rng)
	net, err := NewNetwork(e, head)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := tensor.FromSlice(3, 4, []float64{0, 1, 2, 3, 1, 1, 4, 5, 2, 0, 5, 3})
	labels := []int{0, 1, 0}

	lossAt := func() float64 {
		logits := net.Forward(x, false)
		loss, _, err := SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}
	net.ZeroGrad()
	logits := net.Forward(x, true)
	_, grad, err := SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	net.Backward(grad)

	const eps = 1e-5
	p := e.table
	for _, i := range []int{0, 5, 13, len(p.W.Data) - 1} {
		orig := p.W.Data[i]
		p.W.Data[i] = orig + eps
		lp := lossAt()
		p.W.Data[i] = orig - eps
		lm := lossAt()
		p.W.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-p.Grad.Data[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("embedding idx %d: numeric %v vs analytic %v", i, numeric, p.Grad.Data[i])
		}
	}
}

func TestSimpleRNNGradientCheck(t *testing.T) {
	rng := sim.NewRNG(7)
	rnn, err := NewSimpleRNN(6, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	head := NewDense(5, 3, rng)
	net, err := NewNetwork(rnn, head)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := tensor.FromSlice(2, 4, []float64{0, 1, 2, 3, 4, 5, 1, 0})
	labels := []int{0, 2}

	lossAt := func() float64 {
		logits := net.Forward(x, false)
		loss, _, err := SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}
	net.ZeroGrad()
	logits := net.Forward(x, true)
	_, grad, err := SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	net.Backward(grad)

	const eps = 1e-5
	for pi, p := range rnn.Params() {
		for _, i := range []int{0, len(p.W.Data) / 2, len(p.W.Data) - 1} {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := lossAt()
			p.W.Data[i] = orig - eps
			lm := lossAt()
			p.W.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-p.Grad.Data[i]) > 1e-4*(1+math.Abs(numeric)) {
				t.Errorf("rnn param %d idx %d: numeric %v vs analytic %v", pi, i, numeric, p.Grad.Data[i])
			}
		}
	}
}

// TestRNNLearnsOrderSensitiveTask: the class depends on token ORDER, so
// only a recurrent model (not a bag of words) can solve it.
func TestRNNLearnsOrderSensitiveTask(t *testing.T) {
	rng := sim.NewRNG(11)
	const (
		vocab = 4
		seq   = 6
		n     = 300
	)
	x := tensor.New(n, seq)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < seq; j++ {
			x.Set(i, j, float64(rng.Intn(vocab)))
		}
		// Label: does token 0 appear before token 1 (first occurrences)?
		first0, first1 := seq, seq
		for j := 0; j < seq; j++ {
			tok := int(x.At(i, j))
			if tok == 0 && first0 == seq {
				first0 = j
			}
			if tok == 1 && first1 == seq {
				first1 = j
			}
		}
		if first0 < first1 {
			labels[i] = 1
		}
	}

	rnn, err := NewSimpleRNN(vocab, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	head := NewDense(16, 2, rng)
	net, err := NewNetwork(rnn, head)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(net, x, labels, TrainConfig{
		Epochs: 60, BatchSize: 32, LR: 0.05, Momentum: 0.9, Shuffle: true,
	}, rng); err != nil {
		t.Fatal(err)
	}
	if acc := net.Accuracy(x, labels); acc < 0.85 {
		t.Errorf("order-sensitive accuracy %.3f, want >= 0.85 (recurrence must carry order)", acc)
	}
}

func TestEmbeddingTrainsBagTask(t *testing.T) {
	rng := sim.NewRNG(13)
	const (
		vocab = 8
		seq   = 5
		n     = 200
	)
	x := tensor.New(n, seq)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		labels[i] = cls
		for j := 0; j < seq; j++ {
			// Class 0 draws from the low half of the vocab, class 1
			// from the high half, with some overlap noise.
			base := cls * vocab / 2
			x.Set(i, j, float64(base+rng.Intn(vocab/2)))
		}
	}
	emb, err := NewEmbedding(vocab, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(emb, NewReLU(), NewDense(8, 2, rng))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(net, x, labels, TrainConfig{
		Epochs: 30, BatchSize: 16, LR: 0.1, Momentum: 0.9, Shuffle: true,
	}, rng); err != nil {
		t.Fatal(err)
	}
	if acc := net.Accuracy(x, labels); acc < 0.95 {
		t.Errorf("embedding accuracy %.3f, want >= 0.95", acc)
	}
}

func TestRNNMetadata(t *testing.T) {
	rng := sim.NewRNG(17)
	rnn, err := NewSimpleRNN(10, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rnn.OutDim(99) != 8 {
		t.Error("OutDim should be the hidden width")
	}
	if rnn.FLOPsPerSample() != 2*8*8 {
		t.Errorf("FLOPs = %v", rnn.FLOPsPerSample())
	}
	if len(rnn.Params()) != 3 {
		t.Error("rnn should expose embed, wh, bias")
	}
	e, err := NewEmbedding(10, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	if e.OutDim(0) != 6 || e.FLOPsPerSample() != 6 {
		t.Error("embedding metadata wrong")
	}
}
