package nn

import (
	"edgetune/internal/sim"
	"edgetune/internal/tensor"
)

// Residual is a two-layer bottleneck block with an identity skip
// connection: y = x + W₂·relu(W₁·x). The image-classification workload
// family stacks these blocks to emulate the paper's ResNet-18/34/50 depth
// hyperparameter: deeper stacks have more parameters and FLOPs and fit
// the synthetic data better, at higher simulated cost.
type Residual struct {
	dim    int
	d1, d2 *Dense
	relu   *ReLU
}

// NewResidual creates a residual block of width dim. The second dense
// layer is initialised near zero (the "zero-gamma" trick) so that deep
// stacks start close to the identity and train stably.
func NewResidual(dim int, rng *sim.RNG) *Residual {
	d2 := NewDense(dim, dim, rng)
	d2.w.W.Scale(0.1)
	return &Residual{
		dim:  dim,
		d1:   NewDense(dim, dim, rng),
		d2:   d2,
		relu: NewReLU(),
	}
}

// Forward computes the residual transform.
func (r *Residual) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	h := r.d1.Forward(x, train)
	h = r.relu.Forward(h, train)
	h = r.d2.Forward(h, train)
	h.Add(x) // identity skip
	return h
}

// Backward propagates through both the transform path and the skip path.
func (r *Residual) Backward(grad *tensor.Matrix) *tensor.Matrix {
	g := r.d2.Backward(grad)
	g = r.relu.Backward(g)
	g = r.d1.Backward(g)
	g.Add(grad) // gradient of the identity skip
	return g
}

// Params returns the parameters of both dense sublayers.
func (r *Residual) Params() []*Param {
	return append(r.d1.Params(), r.d2.Params()...)
}

// FLOPsPerSample sums the two dense sublayers.
func (r *Residual) FLOPsPerSample() float64 {
	return r.d1.FLOPsPerSample() + r.d2.FLOPsPerSample()
}

// OutDim preserves the input width (skip connection requires it).
func (r *Residual) OutDim(int) int { return r.dim }
