package nn

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"edgetune/internal/sim"
	"edgetune/internal/tensor"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	rng := sim.NewRNG(1)
	x, labels := blobs(100, rng)
	net := mlp(t, rng, 2, 8, 2)
	if _, err := Train(net, x, labels, TrainConfig{Epochs: 5, BatchSize: 16, LR: 0.1, Momentum: 0.9}, rng); err != nil {
		t.Fatal(err)
	}
	accBefore := net.Accuracy(x, labels)

	snap := net.Snapshot()

	// A fresh network with the same topology but different weights.
	fresh := mlp(t, sim.NewRNG(99), 2, 8, 2)
	if fresh.Accuracy(x, labels) == accBefore {
		t.Skip("fresh network coincidentally equal; change seed")
	}
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := fresh.Accuracy(x, labels); got != accBefore {
		t.Errorf("restored accuracy %.3f != original %.3f", got, accBefore)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	rng := sim.NewRNG(2)
	net := mlp(t, rng, 2, 2)
	snap := net.Snapshot()
	orig := snap.Params[0].Data[0]
	net.Params()[0].W.Data[0] = orig + 42
	if snap.Params[0].Data[0] != orig {
		t.Error("snapshot shares storage with the network")
	}
}

func TestRestoreValidation(t *testing.T) {
	rng := sim.NewRNG(3)
	net := mlp(t, rng, 2, 4, 2)
	other := mlp(t, rng, 2, 8, 2) // different hidden width

	if err := net.Restore(other.Snapshot()); err == nil {
		t.Error("mismatched shapes accepted")
	}
	small := mlp(t, rng, 2, 2)
	if err := net.Restore(small.Snapshot()); err == nil {
		t.Error("mismatched tensor count accepted")
	}
	bad := net.Snapshot()
	bad.Params[0].Data = bad.Params[0].Data[:1]
	if err := net.Restore(bad); err == nil {
		t.Error("truncated data accepted")
	}
}

func TestSaveLoadJSON(t *testing.T) {
	rng := sim.NewRNG(5)
	net := mlp(t, rng, 3, 5, 2)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := mlp(t, sim.NewRNG(77), 3, 5, 2)
	if err := fresh.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for i, p := range net.Params() {
		q := fresh.Params()[i]
		if !tensor.Equal(p.W, q.W, 0) {
			t.Fatalf("tensor %d differs after save/load", i)
		}
	}
	if err := fresh.Load(strings.NewReader("{broken")); err == nil {
		t.Error("corrupt JSON accepted")
	}
}

func TestLayerNormForward(t *testing.T) {
	ln := NewLayerNorm(4)
	x, _ := tensor.FromSlice(2, 4, []float64{1, 2, 3, 4, -10, 0, 10, 20})
	out := ln.Forward(x, false)
	for i := 0; i < out.Rows; i++ {
		var mean, variance float64
		for _, v := range out.Row(i) {
			mean += v
		}
		mean /= 4
		for _, v := range out.Row(i) {
			d := v - mean
			variance += d * d
		}
		variance /= 4
		if math.Abs(mean) > 1e-9 {
			t.Errorf("row %d mean = %v, want 0 (identity affine)", i, mean)
		}
		if math.Abs(variance-1) > 1e-3 {
			t.Errorf("row %d variance = %v, want ~1", i, variance)
		}
	}
}

func TestLayerNormGradientCheck(t *testing.T) {
	rng := sim.NewRNG(11)
	net, err := NewNetwork(
		NewDense(3, 4, rng),
		NewLayerNorm(4),
		NewReLU(),
		NewDense(4, 2, rng),
	)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(5, 3, 1, rng)
	labels := []int{0, 1, 0, 1, 1}

	lossAt := func() float64 {
		logits := net.Forward(x, false)
		loss, _, err := SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}
	net.ZeroGrad()
	logits := net.Forward(x, true)
	_, grad, err := SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	net.Backward(grad)

	const eps = 1e-5
	for pi, p := range net.Params() {
		for _, i := range []int{0, len(p.W.Data) / 2, len(p.W.Data) - 1} {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := lossAt()
			p.W.Data[i] = orig - eps
			lm := lossAt()
			p.W.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-p.Grad.Data[i]) > 1e-4*(1+math.Abs(numeric)) {
				t.Errorf("param %d idx %d: numeric %v vs analytic %v", pi, i, numeric, p.Grad.Data[i])
			}
		}
	}
}

func TestLayerNormTrains(t *testing.T) {
	rng := sim.NewRNG(13)
	x, labels := blobs(200, rng)
	net, err := NewNetwork(
		NewDense(2, 8, rng),
		NewLayerNorm(8),
		NewReLU(),
		NewDense(8, 2, rng),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(net, x, labels, TrainConfig{Epochs: 10, BatchSize: 16, LR: 0.1, Momentum: 0.9, Shuffle: true}, rng); err != nil {
		t.Fatal(err)
	}
	if acc := net.Accuracy(x, labels); acc < 0.95 {
		t.Errorf("layernorm network accuracy %.3f, want >= 0.95", acc)
	}
}

func TestLayerNormMetadata(t *testing.T) {
	ln := NewLayerNorm(16)
	if got := ln.OutDim(16); got != 16 {
		t.Errorf("OutDim = %d", got)
	}
	if got := ln.FLOPsPerSample(); got != 80 {
		t.Errorf("FLOPs = %v, want 80", got)
	}
	if len(ln.Params()) != 2 {
		t.Error("layernorm should expose gamma and beta")
	}
}
