package nn

import (
	"math"

	"edgetune/internal/tensor"
)

// LayerNorm normalises each sample's activations to zero mean and unit
// variance, then applies a learned affine transform (gain γ, bias β).
// Deep residual stacks train more stably with normalisation; the
// workload families keep it optional so the calibrated learning curves
// stay unchanged, but it is part of the training substrate's public
// surface.
type LayerNorm struct {
	dim   int
	gamma *Param
	beta  *Param

	// cached forward state for backward
	normed *tensor.Matrix
	invStd []float64
}

// NewLayerNorm creates a layer-normalisation layer of width dim.
func NewLayerNorm(dim int) *LayerNorm {
	gamma := tensor.New(1, dim)
	for i := range gamma.Data {
		gamma.Data[i] = 1
	}
	return &LayerNorm{
		dim:   dim,
		gamma: newParam(gamma),
		beta:  newParam(tensor.New(1, dim)),
	}
}

const lnEps = 1e-5

// Forward normalises each row and applies γ·x̂ + β.
func (l *LayerNorm) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	out := tensor.New(x.Rows, x.Cols)
	if train {
		l.normed = tensor.New(x.Rows, x.Cols)
		l.invStd = make([]float64, x.Rows)
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(len(row))
		var variance float64
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= float64(len(row))
		invStd := 1 / math.Sqrt(variance+lnEps)

		outRow := out.Row(i)
		for j, v := range row {
			n := (v - mean) * invStd
			if train {
				l.normed.Set(i, j, n)
			}
			outRow[j] = l.gamma.W.Data[j]*n + l.beta.W.Data[j]
		}
		if train {
			l.invStd[i] = invStd
		}
	}
	return out
}

// Backward propagates through the normalisation (full Jacobian) and
// accumulates γ/β gradients.
func (l *LayerNorm) Backward(grad *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(grad.Rows, grad.Cols)
	n := float64(l.dim)
	for i := 0; i < grad.Rows; i++ {
		gRow := grad.Row(i)
		nRow := l.normed.Row(i)
		// dL/dx̂ = dL/dy · γ, plus γ/β gradient accumulation.
		dxhat := make([]float64, l.dim)
		var sumDxhat, sumDxhatN float64
		for j, g := range gRow {
			l.gamma.Grad.Data[j] += g * nRow[j]
			l.beta.Grad.Data[j] += g
			d := g * l.gamma.W.Data[j]
			dxhat[j] = d
			sumDxhat += d
			sumDxhatN += d * nRow[j]
		}
		outRow := out.Row(i)
		for j := range outRow {
			outRow[j] = l.invStd[i] / n * (n*dxhat[j] - sumDxhat - nRow[j]*sumDxhatN)
		}
	}
	return out
}

// Params returns the gain and bias parameters.
func (l *LayerNorm) Params() []*Param { return []*Param{l.gamma, l.beta} }

// FLOPsPerSample counts the normalisation arithmetic (~5 ops/element).
func (l *LayerNorm) FLOPsPerSample() float64 { return 5 * float64(l.dim) }

// OutDim preserves the input width.
func (l *LayerNorm) OutDim(inDim int) int { return inDim }
