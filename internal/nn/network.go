package nn

import (
	"errors"

	"edgetune/internal/tensor"
)

// Network is a sequential stack of layers with a softmax classification
// head. The zero value is not usable; construct with NewNetwork.
type Network struct {
	layers []Layer
}

// NewNetwork builds a sequential network from layers. At least one layer
// is required.
func NewNetwork(layers ...Layer) (*Network, error) {
	if len(layers) == 0 {
		return nil, errors.New("nn: network needs at least one layer")
	}
	return &Network{layers: layers}, nil
}

// Forward runs the full stack and returns the logits.
func (n *Network) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	h := x
	for _, l := range n.layers {
		h = l.Forward(h, train)
	}
	return h
}

// Backward runs the stack in reverse from the loss gradient.
func (n *Network) Backward(grad *tensor.Matrix) {
	g := grad
	for i := len(n.layers) - 1; i >= 0; i-- {
		g = n.layers[i].Backward(g)
	}
}

// Params returns every trainable parameter in the network.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears all parameter gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// ParamCount returns the total number of scalar parameters, used by the
// performance model for memory accounting.
func (n *Network) ParamCount() int {
	var c int
	for _, p := range n.Params() {
		c += p.Count()
	}
	return c
}

// FLOPsPerSample returns the forward-pass FLOPs of the whole network for
// a single sample. The performance model charges backward passes at 2x.
func (n *Network) FLOPsPerSample() float64 {
	var f float64
	for _, l := range n.layers {
		f += l.FLOPsPerSample()
	}
	return f
}

// Predict returns the class index with the highest logit for each row.
func (n *Network) Predict(x *tensor.Matrix) []int {
	return n.Forward(x, false).ArgmaxRows()
}

// Accuracy evaluates classification accuracy on (x, labels).
func (n *Network) Accuracy(x *tensor.Matrix, labels []int) float64 {
	if x.Rows == 0 || len(labels) != x.Rows {
		return 0
	}
	pred := n.Predict(x)
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// Layers exposes the layer slice for inspection (read-only use).
func (n *Network) Layers() []Layer { return n.layers }
