package nn

import (
	"fmt"

	"edgetune/internal/sim"
	"edgetune/internal/tensor"
)

// Dropout randomly zeroes activations during training (inverted dropout:
// survivors are scaled by 1/(1-rate) so inference needs no rescaling).
// The object-detection workload family tunes this layer's rate, mirroring
// the paper's YOLO dropout hyperparameter.
type Dropout struct {
	rate float64
	rng  *sim.RNG
	mask *tensor.Matrix
}

// NewDropout creates a dropout layer. Rate must be in [0, 1).
func NewDropout(rate float64, rng *sim.RNG) (*Dropout, error) {
	if rate < 0 || rate >= 1 {
		return nil, fmt.Errorf("nn: dropout rate %v out of [0,1)", rate)
	}
	return &Dropout{rate: rate, rng: rng}, nil
}

// Forward applies the mask when training; it is the identity at inference.
func (d *Dropout) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if !train || d.rate == 0 {
		return x
	}
	keep := 1 - d.rate
	d.mask = tensor.New(x.Rows, x.Cols)
	out := x.Clone()
	for i := range out.Data {
		if d.rng.Float64() < keep {
			d.mask.Data[i] = 1 / keep
			out.Data[i] *= 1 / keep
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Backward passes gradients through the same mask.
func (d *Dropout) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if d.mask == nil {
		return grad
	}
	out := grad.Clone()
	out.Hadamard(d.mask)
	return out
}

// Params returns nil: dropout is parameter-free.
func (d *Dropout) Params() []*Param { return nil }

// FLOPsPerSample is negligible for element-wise ops; charged as zero.
func (d *Dropout) FLOPsPerSample() float64 { return 0 }

// OutDim preserves the input width.
func (d *Dropout) OutDim(inDim int) int { return inDim }

// Rate reports the configured dropout rate.
func (d *Dropout) Rate() float64 { return d.rate }
