package nn

import (
	"testing"

	"edgetune/internal/sim"
)

// BenchmarkMiniBatchStep times one full training step — forward,
// softmax cross-entropy, backward, SGD update — on a small MLP,
// reporting allocs/op. This is the same hot loop the profiling plane's
// "nn.minibatch-step" probe measures; a regression here shows up in
// both places.
func BenchmarkMiniBatchStep(b *testing.B) {
	rng := sim.NewRNG(1)
	x, labels := blobs(32, rng)
	var layers []Layer
	for _, dims := range [][2]int{{2, 64}, {64, 64}, {64, 2}} {
		layers = append(layers, NewDense(dims[0], dims[1], rng), NewReLU())
	}
	net, err := NewNetwork(layers[:len(layers)-1]...)
	if err != nil {
		b.Fatal(err)
	}
	opt, err := NewSGD(0.01, 0.9, 0)
	if err != nil {
		b.Fatal(err)
	}
	params := net.Params()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrad()
		logits := net.Forward(x, true)
		_, grad, err := SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			b.Fatal(err)
		}
		net.Backward(grad)
		opt.Step(params)
	}
}
