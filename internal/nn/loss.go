package nn

import (
	"fmt"
	"math"

	"edgetune/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss over a batch
// of logits against integer labels and the gradient of the loss with
// respect to the logits (softmax - onehot, scaled by 1/batch).
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int) (loss float64, grad *tensor.Matrix, err error) {
	if len(labels) != logits.Rows {
		return 0, nil, fmt.Errorf("nn: %d labels for %d logit rows", len(labels), logits.Rows)
	}
	probs := logits.Clone()
	probs.SoftmaxRows()
	grad = probs.Clone()
	invN := 1 / float64(logits.Rows)
	for i, label := range labels {
		if label < 0 || label >= logits.Cols {
			return 0, nil, fmt.Errorf("nn: label %d out of range [0,%d)", label, logits.Cols)
		}
		p := probs.At(i, label)
		// Clamp to avoid log(0) on confidently wrong predictions.
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		grad.Set(i, label, grad.At(i, label)-1)
	}
	grad.Scale(invN)
	return loss * invN, grad, nil
}
