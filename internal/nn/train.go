package nn

import (
	"fmt"

	"edgetune/internal/sim"
	"edgetune/internal/tensor"
)

// TrainConfig bundles the training hyperparameters of mini-batch SGD.
type TrainConfig struct {
	Epochs      int
	BatchSize   int
	LR          float64
	Momentum    float64
	WeightDecay float64
	// Shuffle controls whether samples are re-permuted each epoch.
	Shuffle bool
	// Check, when non-nil, is polled before every mini-batch; a
	// non-nil return aborts training with that error, so long runs
	// respond to cancellation between chunks rather than only at the
	// call boundary.
	Check func() error
}

// TrainStats reports what a training run actually did, so the performance
// model can charge simulated time and energy for it.
type TrainStats struct {
	Epochs      int
	Steps       int     // optimiser steps taken
	SamplesSeen int     // total samples propagated (fw+bw)
	FinalLoss   float64 // mean loss of the last epoch
}

// Train runs mini-batch SGD on (x, labels) for cfg.Epochs epochs and
// returns run statistics. x rows are samples; labels has one class index
// per row.
func Train(net *Network, x *tensor.Matrix, labels []int, cfg TrainConfig, rng *sim.RNG) (TrainStats, error) {
	var stats TrainStats
	if x.Rows != len(labels) {
		return stats, fmt.Errorf("nn: %d samples but %d labels", x.Rows, len(labels))
	}
	if cfg.Epochs <= 0 {
		return stats, fmt.Errorf("nn: epochs %d must be positive", cfg.Epochs)
	}
	if cfg.BatchSize <= 0 {
		return stats, fmt.Errorf("nn: batch size %d must be positive", cfg.BatchSize)
	}
	opt, err := NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	if err != nil {
		return stats, err
	}

	n := x.Rows
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.Shuffle && rng != nil {
			order = rng.Perm(n)
		}
		var epochLoss float64
		var batches int
		for start := 0; start < n; start += cfg.BatchSize {
			if cfg.Check != nil {
				if err := cfg.Check(); err != nil {
					return stats, err
				}
			}
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			bx, by := gatherBatch(x, labels, order[start:end])

			net.ZeroGrad()
			logits := net.Forward(bx, true)
			loss, grad, err := SoftmaxCrossEntropy(logits, by)
			if err != nil {
				return stats, err
			}
			net.Backward(grad)
			opt.Step(net.Params())

			epochLoss += loss
			batches++
			stats.Steps++
			stats.SamplesSeen += end - start
		}
		if batches > 0 {
			stats.FinalLoss = epochLoss / float64(batches)
		}
		stats.Epochs++
	}
	return stats, nil
}

// gatherBatch copies the selected rows into a contiguous batch.
func gatherBatch(x *tensor.Matrix, labels []int, idx []int) (*tensor.Matrix, []int) {
	bx := tensor.New(len(idx), x.Cols)
	by := make([]int, len(idx))
	for i, src := range idx {
		copy(bx.Row(i), x.Row(src))
		by[i] = labels[src]
	}
	return bx, by
}
