package nn

import (
	"math"
	"testing"

	"edgetune/internal/sim"
	"edgetune/internal/tensor"
)

// xorData returns a linearly non-separable 2-class problem.
func xorData() (*tensor.Matrix, []int) {
	x, _ := tensor.FromSlice(4, 2, []float64{0, 0, 0, 1, 1, 0, 1, 1})
	return x, []int{0, 1, 1, 0}
}

// blobs returns two Gaussian clusters per class: an easy problem any
// working training loop must solve.
func blobs(n int, rng *sim.RNG) (*tensor.Matrix, []int) {
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		cx := -2.0
		if cls == 1 {
			cx = 2.0
		}
		x.Set(i, 0, cx+rng.NormFloat64()*0.5)
		x.Set(i, 1, cx+rng.NormFloat64()*0.5)
		labels[i] = cls
	}
	return x, labels
}

func mlp(t *testing.T, rng *sim.RNG, dims ...int) *Network {
	t.Helper()
	var layers []Layer
	for i := 0; i+1 < len(dims); i++ {
		layers = append(layers, NewDense(dims[i], dims[i+1], rng))
		if i+2 < len(dims) {
			layers = append(layers, NewReLU())
		}
	}
	net, err := NewNetwork(layers...)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewNetworkRequiresLayers(t *testing.T) {
	if _, err := NewNetwork(); err == nil {
		t.Error("empty network did not error")
	}
}

func TestTrainLearnsBlobs(t *testing.T) {
	rng := sim.NewRNG(1)
	x, labels := blobs(200, rng)
	net := mlp(t, rng, 2, 8, 2)
	stats, err := Train(net, x, labels, TrainConfig{
		Epochs: 10, BatchSize: 16, LR: 0.1, Momentum: 0.9, Shuffle: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epochs != 10 {
		t.Errorf("Epochs = %d, want 10", stats.Epochs)
	}
	if acc := net.Accuracy(x, labels); acc < 0.95 {
		t.Errorf("accuracy = %v, want >= 0.95", acc)
	}
}

func TestTrainLearnsXOR(t *testing.T) {
	rng := sim.NewRNG(7)
	x, labels := xorData()
	net := mlp(t, rng, 2, 16, 16, 2)
	if _, err := Train(net, x, labels, TrainConfig{
		Epochs: 400, BatchSize: 4, LR: 0.1, Momentum: 0.9,
	}, rng); err != nil {
		t.Fatal(err)
	}
	if acc := net.Accuracy(x, labels); acc != 1 {
		t.Errorf("XOR accuracy = %v, want 1 (non-linear problem)", acc)
	}
}

func TestTrainStatsAccounting(t *testing.T) {
	rng := sim.NewRNG(3)
	x, labels := blobs(50, rng)
	net := mlp(t, rng, 2, 4, 2)
	stats, err := Train(net, x, labels, TrainConfig{Epochs: 2, BatchSize: 20, LR: 0.01}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// 50 samples / batch 20 => 3 steps per epoch (20+20+10).
	if stats.Steps != 6 {
		t.Errorf("Steps = %d, want 6", stats.Steps)
	}
	if stats.SamplesSeen != 100 {
		t.Errorf("SamplesSeen = %d, want 100", stats.SamplesSeen)
	}
}

func TestTrainValidation(t *testing.T) {
	rng := sim.NewRNG(3)
	x, labels := blobs(10, rng)
	net := mlp(t, rng, 2, 2)
	tests := []struct {
		name string
		cfg  TrainConfig
	}{
		{name: "zero epochs", cfg: TrainConfig{Epochs: 0, BatchSize: 4, LR: 0.1}},
		{name: "zero batch", cfg: TrainConfig{Epochs: 1, BatchSize: 0, LR: 0.1}},
		{name: "bad lr", cfg: TrainConfig{Epochs: 1, BatchSize: 4, LR: 0}},
		{name: "bad momentum", cfg: TrainConfig{Epochs: 1, BatchSize: 4, LR: 0.1, Momentum: 1}},
		{name: "bad decay", cfg: TrainConfig{Epochs: 1, BatchSize: 4, LR: 0.1, WeightDecay: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Train(net, x, labels, tt.cfg, rng); err == nil {
				t.Error("invalid config did not error")
			}
		})
	}
	if _, err := Train(net, x, labels[:5], TrainConfig{Epochs: 1, BatchSize: 4, LR: 0.1}, rng); err == nil {
		t.Error("label/sample mismatch did not error")
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits, _ := tensor.FromSlice(2, 3, []float64{10, 0, 0, 0, 10, 0})
	loss, grad, err := SoftmaxCrossEntropy(logits, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.01 {
		t.Errorf("confident correct predictions should have near-zero loss, got %v", loss)
	}
	// Gradient rows must sum to ~0 (softmax minus one-hot).
	for i := 0; i < grad.Rows; i++ {
		var s float64
		for _, v := range grad.Row(i) {
			s += v
		}
		if math.Abs(s) > 1e-9 {
			t.Errorf("grad row %d sums to %v, want 0", i, s)
		}
	}
}

func TestSoftmaxCrossEntropyErrors(t *testing.T) {
	logits, _ := tensor.FromSlice(1, 2, []float64{0, 0})
	if _, _, err := SoftmaxCrossEntropy(logits, []int{0, 1}); err == nil {
		t.Error("label count mismatch did not error")
	}
	if _, _, err := SoftmaxCrossEntropy(logits, []int{5}); err == nil {
		t.Error("out-of-range label did not error")
	}
}

// TestDenseGradientCheck verifies backprop against numerical gradients.
func TestDenseGradientCheck(t *testing.T) {
	rng := sim.NewRNG(11)
	net := mlp(t, rng, 3, 4, 2)
	x := tensor.Randn(5, 3, 1, rng)
	labels := []int{0, 1, 0, 1, 1}

	lossAt := func() float64 {
		logits := net.Forward(x, false)
		loss, _, err := SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}

	net.ZeroGrad()
	logits := net.Forward(x, true)
	_, grad, err := SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	net.Backward(grad)

	const eps = 1e-5
	for pi, p := range net.Params() {
		for _, i := range []int{0, len(p.W.Data) / 2, len(p.W.Data) - 1} {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := lossAt()
			p.W.Data[i] = orig - eps
			lm := lossAt()
			p.W.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := p.Grad.Data[i]
			if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
				t.Errorf("param %d idx %d: numeric grad %v vs analytic %v", pi, i, numeric, analytic)
			}
		}
	}
}

func TestResidualGradientCheck(t *testing.T) {
	rng := sim.NewRNG(13)
	res := NewResidual(4, rng)
	head := NewDense(4, 2, rng)
	net, err := NewNetwork(res, head)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(3, 4, 1, rng)
	labels := []int{0, 1, 0}

	lossAt := func() float64 {
		logits := net.Forward(x, false)
		loss, _, err := SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}

	net.ZeroGrad()
	logits := net.Forward(x, true)
	_, grad, err := SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	net.Backward(grad)

	const eps = 1e-5
	p := net.Params()[0] // first dense weight inside the residual
	for _, i := range []int{0, 7, len(p.W.Data) - 1} {
		orig := p.W.Data[i]
		p.W.Data[i] = orig + eps
		lp := lossAt()
		p.W.Data[i] = orig - eps
		lm := lossAt()
		p.W.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-p.Grad.Data[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("residual idx %d: numeric %v vs analytic %v", i, numeric, p.Grad.Data[i])
		}
	}
}

func TestDropout(t *testing.T) {
	rng := sim.NewRNG(17)
	d, err := NewDropout(0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(10, 100)
	for i := range x.Data {
		x.Data[i] = 1
	}
	// Inference: identity.
	out := d.Forward(x, false)
	if !tensor.Equal(out, x, 0) {
		t.Error("dropout at inference is not the identity")
	}
	// Training: roughly half zeroed, survivors scaled by 2.
	out = d.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range out.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros < 300 || zeros > 700 {
		t.Errorf("dropout zeroed %d/1000, want ~500", zeros)
	}
	if zeros+twos != 1000 {
		t.Errorf("zeros+twos = %d, want 1000", zeros+twos)
	}
}

func TestDropoutRateValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, rate := range []float64{-0.1, 1, 1.5} {
		if _, err := NewDropout(rate, rng); err == nil {
			t.Errorf("rate %v did not error", rate)
		}
	}
}

func TestFLOPsAndParamCount(t *testing.T) {
	rng := sim.NewRNG(19)
	net := mlp(t, rng, 10, 20, 5)
	// Dense(10,20): params 10*20+20=220, flops 2*10*20=400.
	// Dense(20,5): params 20*5+5=105, flops 2*20*5=200.
	if got := net.ParamCount(); got != 325 {
		t.Errorf("ParamCount = %d, want 325", got)
	}
	if got := net.FLOPsPerSample(); got != 600 {
		t.Errorf("FLOPsPerSample = %v, want 600", got)
	}
	res := NewResidual(8, rng)
	if got := res.FLOPsPerSample(); got != 2*2*8*8 {
		t.Errorf("residual FLOPs = %v, want %v", got, 2*2*8*8)
	}
}

func TestTanhBackward(t *testing.T) {
	rng := sim.NewRNG(23)
	tanh := NewTanh()
	x := tensor.Randn(2, 3, 1, rng)
	out := tanh.Forward(x, true)
	for i, v := range out.Data {
		if math.Abs(v-math.Tanh(x.Data[i])) > 1e-12 {
			t.Fatalf("tanh forward mismatch at %d", i)
		}
	}
	grad := tensor.New(2, 3)
	for i := range grad.Data {
		grad.Data[i] = 1
	}
	back := tanh.Backward(grad)
	for i, y := range out.Data {
		want := 1 - y*y
		if math.Abs(back.Data[i]-want) > 1e-12 {
			t.Fatalf("tanh backward mismatch at %d: %v vs %v", i, back.Data[i], want)
		}
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	rng := sim.NewRNG(29)
	d := NewDense(4, 4, rng)
	before := d.Params()[0].W.FrobeniusNorm()
	opt, err := NewSGD(0.1, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// No gradient, only decay: weights must shrink.
	for i := 0; i < 5; i++ {
		opt.Step(d.Params())
	}
	after := d.Params()[0].W.FrobeniusNorm()
	if after >= before {
		t.Errorf("weight decay did not shrink weights: %v -> %v", before, after)
	}
}

func TestAccuracyEdgeCases(t *testing.T) {
	rng := sim.NewRNG(31)
	net := mlp(t, rng, 2, 2)
	x := tensor.New(3, 2)
	if got := net.Accuracy(x, []int{0}); got != 0 {
		t.Errorf("mismatched labels should give 0, got %v", got)
	}
}
