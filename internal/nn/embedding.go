package nn

import (
	"fmt"
	"math"

	"edgetune/internal/sim"
	"edgetune/internal/tensor"
)

// Embedding maps token-ID sequences to the mean of their embedding
// vectors. Inputs are matrices whose rows are samples and whose columns
// hold token IDs as floats (the representation the token datasets use);
// the output is one dense vector per sample. Gradients scatter back to
// the rows of the embedding table that were used.
type Embedding struct {
	vocab, dim int
	table      *Param

	lastTokens *tensor.Matrix
}

// NewEmbedding creates an embedding table of vocab rows and dim columns.
func NewEmbedding(vocab, dim int, rng *sim.RNG) (*Embedding, error) {
	if vocab < 1 || dim < 1 {
		return nil, fmt.Errorf("nn: embedding shape %dx%d invalid", vocab, dim)
	}
	std := 1 / math.Sqrt(float64(dim))
	return &Embedding{
		vocab: vocab,
		dim:   dim,
		table: newParam(tensor.Randn(vocab, dim, std, rng)),
	}, nil
}

// Forward mean-pools the embeddings of each row's tokens. Token IDs
// outside [0, vocab) are ignored (treated as padding).
func (e *Embedding) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if train {
		e.lastTokens = x
	}
	out := tensor.New(x.Rows, e.dim)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		outRow := out.Row(i)
		count := 0
		for _, tok := range row {
			id := int(tok)
			if id < 0 || id >= e.vocab {
				continue
			}
			emb := e.table.W.Row(id)
			for j, v := range emb {
				outRow[j] += v
			}
			count++
		}
		if count > 0 {
			inv := 1 / float64(count)
			for j := range outRow {
				outRow[j] *= inv
			}
		}
	}
	return out
}

// Backward scatters the pooled gradient back to the used table rows.
func (e *Embedding) Backward(grad *tensor.Matrix) *tensor.Matrix {
	for i := 0; i < grad.Rows; i++ {
		tokens := e.lastTokens.Row(i)
		gRow := grad.Row(i)
		count := 0
		for _, tok := range tokens {
			if id := int(tok); id >= 0 && id < e.vocab {
				count++
			}
		}
		if count == 0 {
			continue
		}
		inv := 1 / float64(count)
		for _, tok := range tokens {
			id := int(tok)
			if id < 0 || id >= e.vocab {
				continue
			}
			gradRow := e.table.Grad.Row(id)
			for j, g := range gRow {
				gradRow[j] += g * inv
			}
		}
	}
	// Token IDs are not differentiable; return a zero gradient of the
	// input shape so upstream layers (if any) see a well-formed tensor.
	return tensor.New(e.lastTokens.Rows, e.lastTokens.Cols)
}

// Params returns the embedding table.
func (e *Embedding) Params() []*Param { return []*Param{e.table} }

// FLOPsPerSample counts one add per token-dimension (mean pooling).
func (e *Embedding) FLOPsPerSample() float64 { return float64(e.dim) }

// OutDim is the embedding dimension.
func (e *Embedding) OutDim(int) int { return e.dim }

// SimpleRNN is an Elman recurrent cell unrolled over fixed-length
// token sequences: h_t = tanh(E[x_t]·Wx + h_{t-1}·Wh + b). The final
// hidden state is the layer output. Inputs are token-ID matrices as in
// Embedding; backpropagation runs through time across all steps.
type SimpleRNN struct {
	vocab, hidden int
	embed         *Param // vocab x hidden token embeddings
	wh            *Param // hidden x hidden recurrence
	bias          *Param // 1 x hidden

	lastTokens *tensor.Matrix
	states     []*tensor.Matrix // h_0 .. h_T (post-tanh)
}

// NewSimpleRNN creates a recurrent layer over a vocab with the given
// hidden width.
func NewSimpleRNN(vocab, hidden int, rng *sim.RNG) (*SimpleRNN, error) {
	if vocab < 1 || hidden < 1 {
		return nil, fmt.Errorf("nn: rnn shape %dx%d invalid", vocab, hidden)
	}
	return &SimpleRNN{
		vocab:  vocab,
		hidden: hidden,
		embed:  newParam(tensor.Randn(vocab, hidden, 1/math.Sqrt(float64(hidden)), rng)),
		wh:     newParam(tensor.Randn(hidden, hidden, 0.5/math.Sqrt(float64(hidden)), rng)),
		bias:   newParam(tensor.New(1, hidden)),
	}, nil
}

// Forward unrolls the cell over the sequence columns.
func (r *SimpleRNN) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	n, steps := x.Rows, x.Cols
	h := tensor.New(n, r.hidden)
	if train {
		r.lastTokens = x
		r.states = make([]*tensor.Matrix, 0, steps+1)
		r.states = append(r.states, h.Clone())
	}
	for t := 0; t < steps; t++ {
		next := tensor.MatMul(h, r.wh.W)
		next.AddRowVec(r.bias.W.Data)
		for i := 0; i < n; i++ {
			id := int(x.At(i, t))
			if id < 0 || id >= r.vocab {
				continue
			}
			emb := r.embed.W.Row(id)
			row := next.Row(i)
			for j, v := range emb {
				row[j] += v
			}
		}
		next.Apply(math.Tanh)
		h = next
		if train {
			r.states = append(r.states, h.Clone())
		}
	}
	return h
}

// Backward runs truncated-free BPTT over the whole sequence.
func (r *SimpleRNN) Backward(grad *tensor.Matrix) *tensor.Matrix {
	n := grad.Rows
	steps := r.lastTokens.Cols
	dh := grad.Clone()
	for t := steps - 1; t >= 0; t-- {
		hT := r.states[t+1]
		// Through tanh: dpre = dh * (1 - h²).
		dpre := dh.Clone()
		for i, v := range hT.Data {
			dpre.Data[i] *= 1 - v*v
		}
		// Bias and embedding gradients.
		for j, v := range dpre.ColSums() {
			r.bias.Grad.Data[j] += v
		}
		for i := 0; i < n; i++ {
			id := int(r.lastTokens.At(i, t))
			if id < 0 || id >= r.vocab {
				continue
			}
			eg := r.embed.Grad.Row(id)
			for j, g := range dpre.Row(i) {
				eg[j] += g
			}
		}
		// Recurrence: dWh += h_{t-1}ᵀ dpre; dh_{t-1} = dpre Whᵀ.
		hPrev := r.states[t]
		r.wh.Grad.Add(tensor.MatMulAT(hPrev, dpre))
		dh = tensor.MatMulBT(dpre, r.wh.W)
	}
	return tensor.New(n, steps)
}

// Params returns the embedding table, recurrence matrix, and bias.
func (r *SimpleRNN) Params() []*Param { return []*Param{r.embed, r.wh, r.bias} }

// FLOPsPerSample counts the recurrence matmul per step over a nominal
// sequence; reported per token-step times a typical length is the
// workload layer's job, so this returns the per-step cost.
func (r *SimpleRNN) FLOPsPerSample() float64 {
	return 2 * float64(r.hidden) * float64(r.hidden)
}

// OutDim is the hidden width.
func (r *SimpleRNN) OutDim(int) int { return r.hidden }
