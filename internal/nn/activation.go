package nn

import (
	"math"

	"edgetune/internal/tensor"
)

// ReLU is the rectified linear activation.
type ReLU struct {
	mask *tensor.Matrix // 1 where input > 0
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies max(0, x).
func (r *ReLU) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	out := x.Clone()
	if train {
		r.mask = tensor.New(x.Rows, x.Cols)
	}
	for i, v := range out.Data {
		if v > 0 {
			if train {
				r.mask.Data[i] = 1
			}
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Backward zeroes gradients where the input was non-positive.
func (r *ReLU) Backward(grad *tensor.Matrix) *tensor.Matrix {
	out := grad.Clone()
	out.Hadamard(r.mask)
	return out
}

// Params returns nil: activations are parameter-free.
func (r *ReLU) Params() []*Param { return nil }

// FLOPsPerSample is negligible for element-wise ops; charged as zero.
func (r *ReLU) FLOPsPerSample() float64 { return 0 }

// OutDim preserves the input width.
func (r *ReLU) OutDim(inDim int) int { return inDim }

// Tanh is the hyperbolic tangent activation, used by the recurrent
// workload family.
type Tanh struct {
	lastOut *tensor.Matrix
}

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh element-wise.
func (t *Tanh) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	out := x.Clone()
	out.Apply(math.Tanh)
	if train {
		t.lastOut = out
	}
	return out
}

// Backward multiplies by 1 - tanh².
func (t *Tanh) Backward(grad *tensor.Matrix) *tensor.Matrix {
	out := grad.Clone()
	for i, y := range t.lastOut.Data {
		out.Data[i] *= 1 - y*y
	}
	return out
}

// Params returns nil: activations are parameter-free.
func (t *Tanh) Params() []*Param { return nil }

// FLOPsPerSample is negligible for element-wise ops; charged as zero.
func (t *Tanh) FLOPsPerSample() float64 { return 0 }

// OutDim preserves the input width.
func (t *Tanh) OutDim(inDim int) int { return inDim }
