package nn

import (
	"encoding/json"
	"fmt"
	"io"
)

// Snapshot is a serialisable view of a network's trained parameters.
// The tuning server hands the user a trained model (§3.1's output);
// Snapshot/Restore are how that model leaves and re-enters the process.
// Layer topology is not serialised — the workload rebuilds the same
// architecture from the winning configuration, then restores weights.
type Snapshot struct {
	// Params holds every parameter tensor in network order.
	Params []ParamSnapshot `json:"params"`
}

// ParamSnapshot is one parameter tensor.
type ParamSnapshot struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

// Snapshot captures the network's current parameters.
func (n *Network) Snapshot() Snapshot {
	params := n.Params()
	s := Snapshot{Params: make([]ParamSnapshot, len(params))}
	for i, p := range params {
		data := make([]float64, len(p.W.Data))
		copy(data, p.W.Data)
		s.Params[i] = ParamSnapshot{Rows: p.W.Rows, Cols: p.W.Cols, Data: data}
	}
	return s
}

// Restore loads a snapshot into the network. The network must have the
// same architecture (same parameter shapes in the same order).
func (n *Network) Restore(s Snapshot) error {
	params := n.Params()
	if len(params) != len(s.Params) {
		return fmt.Errorf("nn: snapshot has %d tensors, network has %d", len(s.Params), len(params))
	}
	for i, p := range params {
		ps := s.Params[i]
		if ps.Rows != p.W.Rows || ps.Cols != p.W.Cols {
			return fmt.Errorf("nn: tensor %d shape %dx%d does not match network %dx%d",
				i, ps.Rows, ps.Cols, p.W.Rows, p.W.Cols)
		}
		if len(ps.Data) != ps.Rows*ps.Cols {
			return fmt.Errorf("nn: tensor %d has %d values for shape %dx%d",
				i, len(ps.Data), ps.Rows, ps.Cols)
		}
		copy(p.W.Data, ps.Data)
	}
	return nil
}

// Save writes the network's parameters as JSON.
func (n *Network) Save(w io.Writer) error {
	if err := json.NewEncoder(w).Encode(n.Snapshot()); err != nil {
		return fmt.Errorf("nn: save: %w", err)
	}
	return nil
}

// Load reads parameters written by Save into the network.
func (n *Network) Load(r io.Reader) error {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("nn: load: %w", err)
	}
	return n.Restore(s)
}
