package nn

import (
	"math"

	"edgetune/internal/sim"
	"edgetune/internal/tensor"
)

// Dense is a fully connected layer: y = x W + b.
type Dense struct {
	in, out int
	w, b    *Param

	lastInput *tensor.Matrix // cached for backward
}

// NewDense creates a dense layer with He-normal initialised weights.
func NewDense(in, out int, rng *sim.RNG) *Dense {
	std := math.Sqrt(2 / float64(in))
	return &Dense{
		in:  in,
		out: out,
		w:   newParam(tensor.Randn(in, out, std, rng)),
		b:   newParam(tensor.New(1, out)),
	}
}

// Forward computes x W + b, caching x when training.
func (d *Dense) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if train {
		d.lastInput = x
	}
	y := tensor.MatMul(x, d.w.W)
	y.AddRowVec(d.b.W.Data)
	return y
}

// Backward accumulates dW = xᵀ grad and db = colsum(grad), returning
// grad W ᵀ for the upstream layer.
func (d *Dense) Backward(grad *tensor.Matrix) *tensor.Matrix {
	dw := tensor.MatMulAT(d.lastInput, grad)
	d.w.Grad.Add(dw)
	db := grad.ColSums()
	for i, v := range db {
		d.b.Grad.Data[i] += v
	}
	return tensor.MatMulBT(grad, d.w.W)
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// FLOPsPerSample counts the multiply-adds of one forward pass.
func (d *Dense) FLOPsPerSample() float64 { return 2 * float64(d.in) * float64(d.out) }

// OutDim reports the layer output width.
func (d *Dense) OutDim(int) int { return d.out }

// In reports the layer input width.
func (d *Dense) In() int { return d.in }
