package nn

import (
	"fmt"

	"edgetune/internal/tensor"
)

// SGD is a stochastic gradient descent optimiser with classical momentum
// and optional L2 weight decay — the training method whose
// hyperparameters (§2.3.2) the paper tunes.
type SGD struct {
	lr          float64
	momentum    float64
	weightDecay float64
	velocity    map[*Param]*tensor.Matrix
}

// NewSGD creates an optimiser. lr must be positive; momentum and
// weightDecay must be non-negative, momentum < 1.
func NewSGD(lr, momentum, weightDecay float64) (*SGD, error) {
	if lr <= 0 {
		return nil, fmt.Errorf("nn: learning rate %v must be positive", lr)
	}
	if momentum < 0 || momentum >= 1 {
		return nil, fmt.Errorf("nn: momentum %v out of [0,1)", momentum)
	}
	if weightDecay < 0 {
		return nil, fmt.Errorf("nn: weight decay %v must be non-negative", weightDecay)
	}
	return &SGD{
		lr:          lr,
		momentum:    momentum,
		weightDecay: weightDecay,
		velocity:    make(map[*Param]*tensor.Matrix),
	}, nil
}

// Step applies one update to every parameter from its accumulated
// gradient, then leaves gradients untouched (callers ZeroGrad as needed).
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		v, ok := s.velocity[p]
		if !ok {
			v = tensor.New(p.W.Rows, p.W.Cols)
			s.velocity[p] = v
		}
		for i := range p.W.Data {
			g := p.Grad.Data[i] + s.weightDecay*p.W.Data[i]
			v.Data[i] = s.momentum*v.Data[i] - s.lr*g
			p.W.Data[i] += v.Data[i]
		}
	}
}

// LR reports the configured learning rate.
func (s *SGD) LR() float64 { return s.lr }
