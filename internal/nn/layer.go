// Package nn is a from-scratch mini-batch SGD training library. It plays
// the role PyTorch plays in the original EdgeTune prototype: models are
// sequential stacks of layers trained with softmax cross-entropy, and
// every layer reports its parameter and FLOP counts so the performance
// model can charge simulated runtime and energy for training and
// inference.
package nn

import "edgetune/internal/tensor"

// Param is a trainable parameter tensor with its gradient accumulator.
type Param struct {
	W    *tensor.Matrix
	Grad *tensor.Matrix
}

// newParam wraps a weight matrix with a zeroed gradient of the same shape.
func newParam(w *tensor.Matrix) *Param {
	return &Param{W: w, Grad: tensor.New(w.Rows, w.Cols)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.Grad.Data {
		p.Grad.Data[i] = 0
	}
}

// Count returns the number of scalar parameters.
func (p *Param) Count() int { return len(p.W.Data) }

// Layer is one differentiable stage of a network.
//
// Forward consumes a batch (rows = samples) and returns the activation.
// Backward consumes the gradient of the loss w.r.t. this layer's output
// and returns the gradient w.r.t. its input, accumulating parameter
// gradients along the way. Backward must be called after Forward with
// train=true on the same batch.
type Layer interface {
	Forward(x *tensor.Matrix, train bool) *tensor.Matrix
	Backward(grad *tensor.Matrix) *tensor.Matrix
	Params() []*Param
	// FLOPsPerSample estimates the forward-pass floating point operations
	// for a single input sample; the backward pass is charged at 2x by
	// convention (one pass for activation gradients, one for weights).
	FLOPsPerSample() float64
	// OutDim reports the layer's output width given its input width.
	OutDim(inDim int) int
}
