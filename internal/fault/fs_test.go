package fault

import (
	"errors"
	"fmt"
	"path/filepath"
	"syscall"
	"testing"

	"edgetune/internal/store"
)

func fsEntry(sig string) store.Entry {
	return store.Entry{Signature: sig, Device: "i7", Throughput: 42}
}

// faultyDurable opens a durable store in dir whose filesystem injects
// the given fault config at the given seed.
func faultyDurable(t *testing.T, dir string, cfg Config, seed uint64) (*store.Durable, *FS) {
	t.Helper()
	in, err := NewInjector(cfg, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	ffs := NewFS(nil, in)
	d, err := store.OpenDurable(store.DurableOptions{
		SnapshotPath: filepath.Join(dir, "store.json"),
		FS:           ffs,
	})
	if err != nil {
		t.Fatalf("OpenDurable under faults: %v", err)
	}
	return d, ffs
}

// reopenClean reopens the store with the real filesystem (the faults
// are gone, the damage they did is not) and returns it.
func reopenClean(t *testing.T, dir string) *store.Durable {
	t.Helper()
	d, err := store.OpenDurable(store.DurableOptions{
		SnapshotPath: filepath.Join(dir, "store.json"),
	})
	if err != nil {
		t.Fatalf("clean reopen: %v", err)
	}
	return d
}

func TestFSDiskFull(t *testing.T) {
	dir := t.TempDir()
	d, _ := faultyDurable(t, dir, Config{DiskFull: 1}, 7)
	err := d.Store().Put(fsEntry("a"))
	if err == nil {
		t.Fatal("Put on a full disk succeeded")
	}
	if ClassOf(err) != DiskFull {
		t.Errorf("fault class = %q, want %q", ClassOf(err), DiskFull)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Errorf("disk-full error does not wrap ENOSPC: %v", err)
	}
	// The rejected mutation must not be applied in memory either.
	if d.Store().Len() != 0 {
		t.Error("failed Put left the entry in memory")
	}
}

func TestFSTornWriteNeverLosesAckedRecords(t *testing.T) {
	dir := t.TempDir()
	d, _ := faultyDurable(t, dir, Config{DiskTornWrite: 0.4}, 11)
	acked := make([]string, 0, 20)
	failed := 0
	for i := 0; i < 20; i++ {
		sig := fmt.Sprintf("cfg-%02d", i)
		if err := d.Store().Put(fsEntry(sig)); err != nil {
			if ClassOf(err) != DiskTornWrite {
				t.Fatalf("unexpected error class: %v", err)
			}
			failed++
			continue
		}
		acked = append(acked, sig)
	}
	if failed == 0 {
		t.Fatal("no torn writes fired at p=0.4 over 20 appends; seed drift?")
	}

	d2 := reopenClean(t, dir)
	defer d2.Close()
	rr := d2.Recovery()
	// Torn appends are repaired in place (the partial frame truncated
	// off), so recovery sees a well-formed log holding exactly the
	// acknowledged records.
	if rr.RecordsReplayed != len(acked) {
		t.Errorf("replayed %d records, want %d", rr.RecordsReplayed, len(acked))
	}
	if rr.RecordsQuarantined != 0 || rr.TruncatedBytes != 0 {
		t.Errorf("repaired log still had damage: %+v", rr)
	}
	for _, sig := range acked {
		if _, err := d2.Store().Get(sig, "i7"); err != nil {
			t.Errorf("acknowledged record %s lost: %v", sig, err)
		}
	}
}

func TestFSBitFlipQuarantinedAtRecovery(t *testing.T) {
	dir := t.TempDir()
	d, _ := faultyDurable(t, dir, Config{DiskBitFlip: 0.3}, 3)
	total := 20
	for i := 0; i < total; i++ {
		// Bit flips are silent: every Put reports success.
		if err := d.Store().Put(fsEntry(fmt.Sprintf("cfg-%02d", i))); err != nil {
			t.Fatalf("bit-flipped Put failed loudly: %v", err)
		}
	}

	d2 := reopenClean(t, dir)
	defer d2.Close()
	rr := d2.Recovery()
	if rr.RecordsQuarantined == 0 {
		t.Fatal("no records quarantined at p=0.3 over 20 appends; seed drift?")
	}
	if rr.RecordsReplayed+rr.RecordsQuarantined != total {
		t.Errorf("replayed %d + quarantined %d != %d appends",
			rr.RecordsReplayed, rr.RecordsQuarantined, total)
	}
	if rr.TruncatedBytes != 0 {
		t.Errorf("bit flips tore the framing: %+v", rr)
	}
}

func TestFSCrashMidWrite(t *testing.T) {
	dir := t.TempDir()
	d, ffs := faultyDurable(t, dir, Config{DiskCrash: 0.1}, 5)
	acked := make([]string, 0, 64)
	crashed := false
	for i := 0; i < 64; i++ {
		sig := fmt.Sprintf("cfg-%02d", i)
		err := d.Store().Put(fsEntry(sig))
		if err == nil {
			acked = append(acked, sig)
			continue
		}
		if ClassOf(err) != DiskCrash {
			t.Fatalf("unexpected error class: %v", err)
		}
		crashed = true
		break
	}
	if !crashed {
		t.Fatal("disk never crashed at p=0.1 over 64 appends; seed drift?")
	}
	if !ffs.Dead() {
		t.Error("crashed filesystem not marked dead")
	}
	// Everything after the crash fails fast.
	if err := d.Store().Put(fsEntry("after-death")); err == nil {
		t.Error("write to a dead disk succeeded")
	}

	d2 := reopenClean(t, dir)
	defer d2.Close()
	rr := d2.Recovery()
	// Recovery must bring back at least every acknowledged record. It
	// may legitimately bring back one more: a crash at fsync time can
	// leave the full frame durable even though the ack never happened —
	// same as a real database. A crash mid-write instead leaves a torn
	// tail, which is truncated.
	if rr.RecordsReplayed < len(acked) || rr.RecordsReplayed > len(acked)+1 {
		t.Errorf("replayed %d records, want %d acknowledged (+1 at most)", rr.RecordsReplayed, len(acked))
	}
	for _, sig := range acked {
		if _, err := d2.Store().Get(sig, "i7"); err != nil {
			t.Errorf("acknowledged record %s lost: %v", sig, err)
		}
	}
}

func TestFSSlowFsync(t *testing.T) {
	dir := t.TempDir()
	d, ffs := faultyDurable(t, dir, Config{DiskSlowFsync: 1}, 9)
	if err := d.Store().Put(fsEntry("a")); err != nil {
		t.Fatalf("slow fsync failed the write: %v", err)
	}
	if ffs.SlowFsyncs() == 0 {
		t.Error("no slow fsyncs counted at p=1")
	}
	if err := d.Close(); err != nil {
		t.Errorf("Close under slow fsyncs: %v", err)
	}
}

// TestFSDeterministic asserts the disk-fault stream is a pure function
// of (seed, op sequence): two identical runs fail on exactly the same
// operations.
func TestFSDeterministic(t *testing.T) {
	outcomes := func(seed uint64) []bool {
		dir := t.TempDir()
		d, _ := faultyDurable(t, dir, Config{DiskTornWrite: 0.3, DiskBitFlip: 0.2, DiskFull: 0.1}, seed)
		out := make([]bool, 0, 32)
		for i := 0; i < 32; i++ {
			out = append(out, d.Store().Put(fsEntry(fmt.Sprintf("cfg-%02d", i))) == nil)
		}
		return out
	}
	a, b := outcomes(21), outcomes(21)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverged at op %d", i)
		}
	}
	c := outcomes(22)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault streams (suspicious)")
	}
}
