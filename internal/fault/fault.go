// Package fault is a seeded, deterministic fault-injection layer for
// chaos-testing the tuning servers. Each injection decision is a pure
// function of (seed, class, site, attempt): the tuple is hashed into a
// fresh internal/sim RNG, so decisions are independent of goroutine
// scheduling and a run replays exactly from its seed — the property the
// deterministic-replay tests rely on. The zero probability config (and
// a nil *Injector) injects nothing, so production paths carry the hooks
// at no cost.
package fault

import (
	"errors"
	"fmt"

	"edgetune/internal/counters"
	"edgetune/internal/sim"
)

// Class names one injectable failure mode.
type Class string

// The fault classes observed on real edge fleets (flapping boards,
// diverging SGD runs, stragglers, lossy links) that the chaos suite
// drives through the tuner.
const (
	// TrialCrash kills a training trial partway through (spot
	// preemption, OOM, worker loss). The crashed attempt still charges
	// a deterministic fraction of its training cost.
	TrialCrash Class = "trial-crash"
	// TrialNaN makes a training run diverge after consuming its full
	// budget (bad hyperparameter/seed interaction).
	TrialNaN Class = "trial-nan"
	// Straggler slows a trial down without failing it.
	Straggler Class = "straggler"
	// DeviceFlap makes the emulated edge device unreachable for one
	// inference-tuning attempt.
	DeviceFlap Class = "device-flap"
	// StoreWrite fails a historical-store write.
	StoreWrite Class = "store-write"
	// DroppedReply loses an inference server reply after the work was
	// done (the result is stored but the requester never hears back).
	DroppedReply Class = "dropped-reply"
	// DeviceBrownout slows one device's inference-tuning attempt down
	// without failing it (thermal throttling, shared-bus contention) —
	// the health pool and hedging layers must notice before the breaker
	// ever would.
	DeviceBrownout Class = "device-brownout"
	// OverloadBurst sheds one inference submission at the admission gate
	// (a synthetic traffic spike), exercising the typed ErrOverloaded
	// path deterministically.
	OverloadBurst Class = "overload-burst"
	// DiskTornWrite cuts one filesystem write short (power loss mid
	// append): a prefix of the data lands on disk and the write reports
	// failure.
	DiskTornWrite Class = "disk-torn-write"
	// DiskCrash writes a partial record and then kills the emulated disk
	// for good — every later operation on that filesystem fails, the
	// file-level equivalent of yanking the power cord.
	DiskCrash Class = "disk-crash"
	// DiskBitFlip silently corrupts one byte of a write that then
	// reports success (flash bit rot); only checksum verification at
	// recovery can catch it.
	DiskBitFlip Class = "disk-bit-flip"
	// DiskFull fails a write with ENOSPC, leaving nothing on disk.
	DiskFull Class = "disk-full"
	// DiskSlowFsync makes one fsync slow (counted, not failed) — flash
	// garbage collection stalling the write path.
	DiskSlowFsync Class = "disk-slow-fsync"
	// ShardKill crashes one cluster shard's primary node at a rung
	// boundary mid-job (node panic, OOM-kill); the dispatcher must fail
	// over to the shard's follower and resume from the replicated WAL.
	ShardKill Class = "shard-kill"
	// NetPartition drops one WAL-shipping frame on the primary→follower
	// link (lossy edge uplink): the follower misses that frame and the
	// failover path must cope with the resulting hole.
	NetPartition Class = "net-partition"
	// FollowerLag delays WAL frames in flight to the follower (slow
	// replica): frames queue in order and land late, so a failover first
	// drains the lagged backlog (catch-up replay) before promotion.
	FollowerLag Class = "follower-lag"
	// FlashCrowd injects a phantom traffic surge at one inference
	// submission: the autoscaler's in-system signal is inflated by a
	// burst of simulated arrivals that decays linearly, driving
	// scale-up and (if it persists) the degradation ladder.
	FlashCrowd Class = "flash-crowd"
	// MassDeviceFail quarantines every active device in the serving
	// pool at once (rack power event, fleet-wide bad firmware push).
	// It fires at most once per run; recovery comes from health probes
	// and autoscaled replacement replicas.
	MassDeviceFail Class = "mass-device-fail"
	// ScaleStall makes one autoscale scale-up fail to materialise
	// (cloud capacity shortage, image pull failure): the warm-up cost
	// is still charged but the replica never joins the pool.
	ScaleStall Class = "scale-stall"
)

// Classes lists every fault class in deterministic order.
func Classes() []Class {
	return []Class{DeviceBrownout, DeviceFlap, DiskBitFlip, DiskCrash, DiskFull, DiskSlowFsync, DiskTornWrite, DroppedReply, FlashCrowd, FollowerLag, MassDeviceFail, NetPartition, OverloadBurst, ScaleStall, ShardKill, StoreWrite, Straggler, TrialCrash, TrialNaN}
}

// Config holds per-class injection probabilities in [0, 1].
type Config struct {
	// TrialCrash, TrialNaN, and Straggler fire per training-trial
	// attempt.
	TrialCrash float64 `json:"trialCrash,omitempty"`
	TrialNaN   float64 `json:"trialNaN,omitempty"`
	Straggler  float64 `json:"straggler,omitempty"`
	// StragglerFactor is the maximum slowdown of a straggling trial
	// (default 4; the actual factor is drawn in [1, StragglerFactor]).
	StragglerFactor float64 `json:"stragglerFactor,omitempty"`
	// DeviceFlap and StoreWrite fire per inference-tuning attempt;
	// DroppedReply fires per successfully tuned request.
	DeviceFlap   float64 `json:"deviceFlap,omitempty"`
	StoreWrite   float64 `json:"storeWrite,omitempty"`
	DroppedReply float64 `json:"droppedReply,omitempty"`
	// DeviceBrownout fires per inference-tuning attempt and inflates the
	// simulated serving cost without failing the attempt.
	DeviceBrownout float64 `json:"deviceBrownout,omitempty"`
	// BrownoutFactor is the maximum slowdown of a browned-out attempt
	// (default 6; the actual factor is drawn in [1, BrownoutFactor]).
	BrownoutFactor float64 `json:"brownoutFactor,omitempty"`
	// OverloadBurst fires per inference submission at the admission
	// gate, shedding the request with ErrOverloaded.
	OverloadBurst float64 `json:"overloadBurst,omitempty"`
	// The disk classes fire per filesystem operation of a fault.FS:
	// DiskTornWrite and DiskFull fail individual writes (partial data
	// and ENOSPC respectively), DiskCrash kills the filesystem for the
	// rest of the run, DiskBitFlip silently corrupts one written byte,
	// DiskSlowFsync records a stalled fsync without failing it.
	DiskTornWrite float64 `json:"diskTornWrite,omitempty"`
	DiskCrash     float64 `json:"diskCrash,omitempty"`
	DiskBitFlip   float64 `json:"diskBitFlip,omitempty"`
	DiskFull      float64 `json:"diskFull,omitempty"`
	DiskSlowFsync float64 `json:"diskSlowFsync,omitempty"`
	// The cluster classes fire on the sharded dispatcher: ShardKill per
	// rung boundary of a job on a shard whose follower is still standing,
	// NetPartition and FollowerLag per WAL frame shipped from a shard's
	// primary to its follower.
	ShardKill    float64 `json:"shardKill,omitempty"`
	NetPartition float64 `json:"netPartition,omitempty"`
	FollowerLag  float64 `json:"followerLag,omitempty"`
	// The autoscale classes fire on the serving pool's control loop:
	// FlashCrowd per inference submission (phantom arrival surge),
	// MassDeviceFail once per run on the whole pool, ScaleStall per
	// attempted scale-up.
	FlashCrowd     float64 `json:"flashCrowd,omitempty"`
	MassDeviceFail float64 `json:"massDeviceFail,omitempty"`
	ScaleStall     float64 `json:"scaleStall,omitempty"`

	// Plan, when non-nil, schedules exact fault events on top of the
	// probabilistic classes: a decision whose (class, site, attempt)
	// tuple the plan holds fires at the scheduled intensity even when
	// the class probability is zero. The chaos fuzzer drives its
	// machine-generated schedules through this field. Excluded from
	// JSON so persisted configs stay purely probabilistic.
	Plan *Plan `json:"-"`
	// Observe, when non-nil, is called with every injection decision
	// (fired or not) — the fuzzer's discovery hook. Excluded from JSON
	// for the same reason as Plan.
	Observe Observer `json:"-"`
}

// Enabled reports whether any class has a non-zero probability or a
// plan schedules at least one event.
func (c Config) Enabled() bool {
	for _, class := range Classes() {
		if c.prob(class) > 0 {
			return true
		}
	}
	return c.Plan.Len() > 0
}

// Validate checks all probabilities and the straggler factor.
func (c Config) Validate() error {
	for _, class := range Classes() {
		if p := c.prob(class); p < 0 || p > 1 {
			return fmt.Errorf("fault: %s probability %v out of [0,1]", class, p)
		}
	}
	if c.StragglerFactor < 0 || (c.StragglerFactor > 0 && c.StragglerFactor < 1) {
		return fmt.Errorf("fault: straggler factor %v must be >= 1", c.StragglerFactor)
	}
	if c.BrownoutFactor < 0 || (c.BrownoutFactor > 0 && c.BrownoutFactor < 1) {
		return fmt.Errorf("fault: brownout factor %v must be >= 1", c.BrownoutFactor)
	}
	return nil
}

func (c Config) prob(class Class) float64 {
	switch class {
	case TrialCrash:
		return c.TrialCrash
	case TrialNaN:
		return c.TrialNaN
	case Straggler:
		return c.Straggler
	case DeviceFlap:
		return c.DeviceFlap
	case StoreWrite:
		return c.StoreWrite
	case DroppedReply:
		return c.DroppedReply
	case DeviceBrownout:
		return c.DeviceBrownout
	case OverloadBurst:
		return c.OverloadBurst
	case DiskTornWrite:
		return c.DiskTornWrite
	case DiskCrash:
		return c.DiskCrash
	case DiskBitFlip:
		return c.DiskBitFlip
	case DiskFull:
		return c.DiskFull
	case DiskSlowFsync:
		return c.DiskSlowFsync
	case ShardKill:
		return c.ShardKill
	case NetPartition:
		return c.NetPartition
	case FollowerLag:
		return c.FollowerLag
	case FlashCrowd:
		return c.FlashCrowd
	case MassDeviceFail:
		return c.MassDeviceFail
	case ScaleStall:
		return c.ScaleStall
	default:
		return 0
	}
}

// Error is an injected fault, distinguishable from organic failures so
// the resilience layer retries only what is transient by construction.
type Error struct {
	Class Class
	Site  string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s at %s", e.Class, e.Site)
}

// IsFault reports whether err is (or wraps) an injected fault.
func IsFault(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// ClassOf returns the fault class of an injected fault ("" otherwise).
func ClassOf(err error) Class {
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Class
	}
	return ""
}

// Injector makes the injection decisions. A nil Injector never fires.
type Injector struct {
	cfg  Config
	seed uint64
	rec  *counters.Resilience
}

// NewInjector validates cfg and returns an injector whose decisions
// derive from seed. Fired faults are recorded into rec (which may be
// nil).
func NewInjector(cfg Config, seed uint64, rec *counters.Resilience) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.StragglerFactor == 0 {
		cfg.StragglerFactor = 4
	}
	if cfg.BrownoutFactor == 0 {
		cfg.BrownoutFactor = 6
	}
	return &Injector{cfg: cfg, seed: seed, rec: rec}, nil
}

// rng derives the decision stream for one (class, site, attempt) tuple.
func (in *Injector) rng(class Class, site string, attempt int) *sim.RNG {
	h := in.seed ^ 0x243f6a8885a308d3 // decorrelate from other seed users
	h = fnvMix(h, string(class))
	h = fnvMix(h, site)
	h ^= uint64(attempt) * 0x9e3779b97f4a7c15
	return sim.NewRNG(h)
}

// Should reports whether a fault of class fires at site on the given
// attempt, recording it when it does. A scheduled plan event fires
// independently of the class probability; either way the decision is a
// pure function of (seed, class, site, attempt), and any configured
// observer sees every decision — the plan and observer checks run
// before the zero-probability early-out so discovery passes (all
// probabilities zero) still enumerate every decision point.
func (in *Injector) Should(class Class, site string, attempt int) bool {
	if in == nil {
		return false
	}
	fired := false
	if intensity, ok := in.cfg.Plan.intensity(class, site, attempt); ok {
		fired = intensity >= 1 || in.rng(class, site, attempt).Float64() < intensity
	}
	if !fired {
		if p := in.cfg.prob(class); p > 0 && in.rng(class, site, attempt).Float64() < p {
			fired = true
		}
	}
	if obs := in.cfg.Observe; obs != nil {
		obs(class, site, attempt, fired)
	}
	if !fired {
		return false
	}
	in.rec.RecordFault(string(class))
	return true
}

// Fail returns an injected *Error when the fault fires, nil otherwise.
func (in *Injector) Fail(class Class, site string, attempt int) error {
	if !in.Should(class, site, attempt) {
		return nil
	}
	return &Error{Class: class, Site: site}
}

// Uniform returns a deterministic value in [0, 1) for site/attempt,
// used for crash fractions and backoff jitter so those are replayable
// too. A nil injector returns 0.5.
func (in *Injector) Uniform(site string, attempt int) float64 {
	if in == nil {
		return 0.5
	}
	r := in.rng("uniform", site, attempt)
	r.Uint64() // skip the decision draw so Uniform decorrelates from Should
	return r.Float64()
}

// StragglerFactor returns the slowdown multiplier for a straggling
// trial at site/attempt, in [1, cfg.StragglerFactor].
func (in *Injector) StragglerFactor(site string, attempt int) float64 {
	if in == nil {
		return 1
	}
	max := in.cfg.StragglerFactor
	if max <= 1 {
		return 1
	}
	return 1 + (max-1)*in.Uniform("straggle/"+site, attempt)
}

// BrownoutFactor returns the slowdown multiplier for a browned-out
// device attempt at site/attempt, in [1, cfg.BrownoutFactor].
func (in *Injector) BrownoutFactor(site string, attempt int) float64 {
	if in == nil {
		return 1
	}
	max := in.cfg.BrownoutFactor
	if max <= 1 {
		return 1
	}
	return 1 + (max-1)*in.Uniform("brownout/"+site, attempt)
}

// fnvMix folds s into h with FNV-1a steps.
func fnvMix(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= 0xff
	h *= 1099511628211
	return h
}
