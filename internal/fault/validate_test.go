package fault

import (
	"fmt"
	"testing"
)

// edgetuneProbFlags mirrors cmd/edgetune's 19 probability flags — one
// per fault class — so this one table test covers every flag the CLI
// validates through CheckProbs.
var edgetuneProbFlags = []string{
	"-fault-crash",
	"-fault-nan",
	"-fault-straggler",
	"-fault-flap",
	"-fault-brownout",
	"-fault-overload",
	"-fault-store-write",
	"-fault-drop",
	"-fault-disk-torn",
	"-fault-disk-crash",
	"-fault-disk-flip",
	"-fault-disk-full",
	"-fault-disk-slow-fsync",
	"-fault-shard-kill",
	"-fault-partition",
	"-fault-follower-lag",
	"-fault-flash-crowd",
	"-fault-mass-devicefail",
	"-fault-scale-stall",
}

func TestCheckProbsAllFlags(t *testing.T) {
	if len(edgetuneProbFlags) != len(Classes()) {
		t.Fatalf("flag table has %d entries, class catalog has %d", len(edgetuneProbFlags), len(Classes()))
	}
	// Every flag accepts the full closed interval.
	for _, ok := range []float64{0, 0.5, 1} {
		vals := make([]NamedValue, len(edgetuneProbFlags))
		for i, name := range edgetuneProbFlags {
			vals[i] = NamedValue{Name: name, Value: ok}
		}
		if err := CheckProbs(vals); err != nil {
			t.Fatalf("CheckProbs rejected %v: %v", ok, err)
		}
	}
	// Every flag rejects out-of-bounds values, with the pinned error
	// text naming the offending flag.
	for _, flagName := range edgetuneProbFlags {
		for _, bad := range []float64{-0.01, 1.01, 2} {
			vals := []NamedValue{{Name: flagName, Value: bad}}
			err := CheckProbs(vals)
			if err == nil {
				t.Fatalf("CheckProbs accepted %s=%v", flagName, bad)
			}
			want := fmt.Sprintf("%s: probability %v outside [0,1]", flagName, bad)
			if err.Error() != want {
				t.Fatalf("error text %q, want %q", err.Error(), want)
			}
		}
	}
	// The first offender wins when several values are bad, so the CLI
	// reports deterministically.
	err := CheckProbs([]NamedValue{
		{Name: "-fault-crash", Value: 0.5},
		{Name: "-fault-nan", Value: -1},
		{Name: "-fault-flap", Value: 3},
	})
	if err == nil || err.Error() != "-fault-nan: probability -1 outside [0,1]" {
		t.Fatalf("first-offender error = %v", err)
	}
}

func TestCheckNonNegativeScalars(t *testing.T) {
	scalars := []string{
		"-brownout-factor",
		"-max-attempts",
		"-autoscale-min",
		"-autoscale-max",
		"-tenant-rate",
		"-tenant-burst",
		"-cluster",
		"-cluster-kill-rungs",
		"-store-kill-after",
		"-flight-slots",
	}
	vals := make([]NamedValue, len(scalars))
	for i, name := range scalars {
		vals[i] = NamedValue{Name: name, Value: float64(i)}
	}
	if err := CheckNonNegative(vals); err != nil {
		t.Fatalf("CheckNonNegative rejected non-negative values: %v", err)
	}
	for _, flagName := range scalars {
		err := CheckNonNegative([]NamedValue{{Name: flagName, Value: -2}})
		if err == nil {
			t.Fatalf("CheckNonNegative accepted %s=-2", flagName)
		}
		want := fmt.Sprintf("%s: negative value %v", flagName, -2.0)
		if err.Error() != want {
			t.Fatalf("error text %q, want %q", err.Error(), want)
		}
	}
}

func TestProbValuesCoversCatalog(t *testing.T) {
	cfg := Config{TrialCrash: 0.25, ScaleStall: 1.5}
	vals := cfg.ProbValues("fault-")
	if len(vals) != len(Classes()) {
		t.Fatalf("ProbValues returned %d entries, want %d", len(vals), len(Classes()))
	}
	if err := CheckProbs(vals); err == nil {
		t.Fatal("CheckProbs missed the out-of-range ScaleStall probability")
	}
	seen := make(map[string]float64, len(vals))
	for _, v := range vals {
		seen[v.Name] = v.Value
	}
	if seen["fault-"+string(TrialCrash)] != 0.25 {
		t.Fatalf("TrialCrash value = %v, want 0.25", seen["fault-"+string(TrialCrash)])
	}
}
