package fault

import (
	"encoding/json"
	"sync"
	"testing"
)

// A plan event fires exactly at its tuple — and nowhere else — even
// with every class probability at zero.
func TestPlanFiresExactTuple(t *testing.T) {
	plan, err := NewPlan([]Event{{Class: TrialCrash, Site: "cfgA", Attempt: 1}})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(Config{Plan: plan}, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !inj.Should(TrialCrash, "cfgA", 1) {
		t.Fatal("scheduled tuple did not fire")
	}
	for _, tc := range []struct {
		class   Class
		site    string
		attempt int
	}{
		{TrialCrash, "cfgA", 0},
		{TrialCrash, "cfgB", 1},
		{TrialNaN, "cfgA", 1},
	} {
		if inj.Should(tc.class, tc.site, tc.attempt) {
			t.Fatalf("unscheduled tuple fired: %s@%s#%d", tc.class, tc.site, tc.attempt)
		}
	}
}

// Intensity below 1 gates the event on the tuple's seeded draw, so the
// decision stays deterministic per seed: same seed agrees with itself,
// and a tiny intensity never fires where intensity 1 always does.
func TestPlanIntensityDeterministic(t *testing.T) {
	ev := Event{Class: DeviceFlap, Site: "dev", Attempt: 0, Intensity: 0.5}
	plan, err := NewPlan([]Event{ev})
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed < 20; seed++ {
		a, _ := NewInjector(Config{Plan: plan}, seed, nil)
		b, _ := NewInjector(Config{Plan: plan}, seed, nil)
		if a.Should(DeviceFlap, "dev", 0) != b.Should(DeviceFlap, "dev", 0) {
			t.Fatalf("seed %d: intensity decision not deterministic", seed)
		}
	}
	tiny, _ := NewPlan([]Event{{Class: DeviceFlap, Site: "dev", Attempt: 0, Intensity: 1e-12}})
	fired := 0
	for seed := uint64(1); seed < 50; seed++ {
		inj, _ := NewInjector(Config{Plan: tiny}, seed, nil)
		if inj.Should(DeviceFlap, "dev", 0) {
			fired++
		}
	}
	if fired != 0 {
		t.Fatalf("intensity 1e-12 fired %d/49 times", fired)
	}
}

// The observer sees every decision — including ones the zero
// probability would have early-outed before the fuzzer's discovery
// hook existed — and plan-driven decisions compose with it.
func TestObserverSeesAllDecisions(t *testing.T) {
	var mu sync.Mutex
	type obs struct {
		class Class
		site  string
		att   int
		fired bool
	}
	var seen []obs
	plan, _ := NewPlan([]Event{{Class: StoreWrite, Site: "sig1", Attempt: 0}})
	cfg := Config{
		Plan: plan,
		Observe: func(class Class, site string, attempt int, fired bool) {
			mu.Lock()
			seen = append(seen, obs{class, site, attempt, fired})
			mu.Unlock()
		},
	}
	inj, err := NewInjector(cfg, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !inj.Should(StoreWrite, "sig1", 0) {
		t.Fatal("plan event did not fire")
	}
	if inj.Should(TrialNaN, "cfgZ", 2) {
		t.Fatal("zero-probability unplanned class fired")
	}
	want := []obs{{StoreWrite, "sig1", 0, true}, {TrialNaN, "cfgZ", 2, false}}
	if len(seen) != len(want) {
		t.Fatalf("observer saw %d decisions, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("decision %d = %+v, want %+v", i, seen[i], want[i])
		}
	}
}

// Probabilistic behavior with no plan/observer must be unchanged by
// the restructure: decisions agree with a hand-rolled replica of the
// original draw.
func TestShouldMatchesProbabilisticBaseline(t *testing.T) {
	cfg := Config{TrialCrash: 0.3, DeviceFlap: 0.7}
	inj, err := NewInjector(cfg, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []Class{TrialCrash, DeviceFlap, TrialNaN} {
		for attempt := 0; attempt < 8; attempt++ {
			p := cfg.prob(class)
			want := p > 0 && inj.rng(class, "site", attempt).Float64() < p
			if got := inj.Should(class, "site", attempt); got != want {
				t.Fatalf("%s#%d = %v, want %v", class, attempt, got, want)
			}
		}
	}
}

// Plans and observers never serialize: a Config round-tripped through
// JSON drops both, so persisted configs stay purely probabilistic.
func TestPlanExcludedFromJSON(t *testing.T) {
	plan, _ := NewPlan([]Event{{Class: TrialCrash, Site: "x", Attempt: 0}})
	cfg := Config{TrialCrash: 0.5, Plan: plan, Observe: func(Class, string, int, bool) {}}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Plan != nil || back.Observe != nil {
		t.Fatal("Plan/Observe survived JSON round-trip")
	}
	if back.TrialCrash != 0.5 {
		t.Fatalf("probability lost in round-trip: %v", back.TrialCrash)
	}
}

// NewPlan rejects malformed events and merges duplicates at the
// highest intensity; Events() returns a deterministic order.
func TestNewPlanValidationAndMerge(t *testing.T) {
	for _, bad := range []Event{
		{Class: "no-such-class", Site: "x"},
		{Class: TrialCrash, Site: ""},
		{Class: TrialCrash, Site: "x", Attempt: -1},
		{Class: TrialCrash, Site: "x", Intensity: 1.5},
		{Class: TrialCrash, Site: "x", Intensity: -0.25},
	} {
		if _, err := NewPlan([]Event{bad}); err == nil {
			t.Fatalf("NewPlan accepted invalid event %+v", bad)
		}
	}
	plan, err := NewPlan([]Event{
		{Class: TrialCrash, Site: "x", Attempt: 0, Intensity: 0.4},
		{Class: TrialCrash, Site: "x", Attempt: 0, Intensity: 0.9},
		{Class: DeviceFlap, Site: "a", Attempt: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 2 {
		t.Fatalf("plan.Len() = %d, want 2 (duplicates merged)", plan.Len())
	}
	evs := plan.Events()
	if evs[0].Class != DeviceFlap || evs[1].Class != TrialCrash {
		t.Fatalf("Events() order not deterministic: %+v", evs)
	}
	if evs[1].Intensity != 0.9 {
		t.Fatalf("duplicate merge kept %v, want 0.9", evs[1].Intensity)
	}
}
