package fault

import "fmt"

// NamedValue pairs a flag or field name with its numeric value for
// table-driven validation. cmd/edgetune feeds its 19 probability flags
// through CheckProbs and its scalar knobs through CheckNonNegative;
// the chaos fuzzer validates schedule intensities through the same
// tables, so the two surfaces can never drift on bounds or error text.
type NamedValue struct {
	Name  string
	Value float64
}

// CheckProbs verifies every value is a probability in [0, 1]. The
// error text is the contract the CLI tests pin.
func CheckProbs(vals []NamedValue) error {
	for _, v := range vals {
		if v.Value < 0 || v.Value > 1 {
			return fmt.Errorf("%s: probability %v outside [0,1]", v.Name, v.Value)
		}
	}
	return nil
}

// CheckNonNegative verifies every value is >= 0.
func CheckNonNegative(vals []NamedValue) error {
	for _, v := range vals {
		if v.Value < 0 {
			return fmt.Errorf("%s: negative value %v", v.Name, v.Value)
		}
	}
	return nil
}

// ProbValues names every class probability of a Config with the given
// prefix — the table both Config.Validate-style checks and external
// surfaces can feed to CheckProbs.
func (c Config) ProbValues(prefix string) []NamedValue {
	classes := Classes()
	out := make([]NamedValue, 0, len(classes))
	for _, class := range classes {
		out = append(out, NamedValue{Name: prefix + string(class), Value: c.prob(class)})
	}
	return out
}
