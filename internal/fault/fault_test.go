package fault

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"edgetune/internal/counters"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config invalid: %v", err)
	}
	if err := (Config{TrialCrash: 1.5}).Validate(); err == nil {
		t.Error("probability > 1 accepted")
	}
	if err := (Config{DeviceFlap: -0.1}).Validate(); err == nil {
		t.Error("negative probability accepted")
	}
	if err := (Config{StragglerFactor: 0.5}).Validate(); err == nil {
		t.Error("straggler factor < 1 accepted")
	}
	if err := (Config{BrownoutFactor: 0.5}).Validate(); err == nil {
		t.Error("brownout factor < 1 accepted")
	}
	if err := (Config{OverloadBurst: 2}).Validate(); err == nil {
		t.Error("overload-burst probability > 1 accepted")
	}
	if !(Config{DeviceBrownout: 0.1}).Enabled() {
		t.Error("brownout-only config reports disabled")
	}
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !(Config{StoreWrite: 0.1}).Enabled() {
		t.Error("non-zero config reports disabled")
	}
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	for _, class := range Classes() {
		if in.Should(class, "site", 0) {
			t.Errorf("nil injector fired %s", class)
		}
		if err := in.Fail(class, "site", 0); err != nil {
			t.Errorf("nil injector failed %s: %v", class, err)
		}
	}
	if f := in.StragglerFactor("site", 0); f != 1 {
		t.Errorf("nil straggler factor = %v", f)
	}
	if f := in.BrownoutFactor("site", 0); f != 1 {
		t.Errorf("nil brownout factor = %v", f)
	}
}

func TestDecisionsDeterministicAndOrderIndependent(t *testing.T) {
	cfg := Config{TrialCrash: 0.3, DeviceFlap: 0.3, DroppedReply: 0.3}
	mk := func() *Injector {
		in, err := NewInjector(cfg, 42, nil)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := mk(), mk()
	// Query b in reverse order: per-tuple decisions must not depend on
	// call order (they are stateless hashes, not a shared stream).
	type q struct {
		class   Class
		site    string
		attempt int
	}
	var qs []q
	for i := 0; i < 50; i++ {
		qs = append(qs, q{TrialCrash, fmt.Sprintf("cfg-%d", i), i % 3})
		qs = append(qs, q{DeviceFlap, fmt.Sprintf("sig-%d", i), i % 2})
	}
	want := make([]bool, len(qs))
	for i, x := range qs {
		want[i] = a.Should(x.class, x.site, x.attempt)
	}
	for i := len(qs) - 1; i >= 0; i-- {
		if got := b.Should(qs[i].class, qs[i].site, qs[i].attempt); got != want[i] {
			t.Fatalf("decision %d changed with call order", i)
		}
	}
}

func TestDifferentAttemptsDifferentDecisions(t *testing.T) {
	in, err := NewInjector(Config{TrialCrash: 0.5}, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	// With p=0.5 across 64 attempts, both outcomes must occur: a retry
	// re-rolls rather than deterministically re-failing forever.
	var fired, clean bool
	for attempt := 0; attempt < 64; attempt++ {
		if in.Should(TrialCrash, "cfg", attempt) {
			fired = true
		} else {
			clean = true
		}
	}
	if !fired || !clean {
		t.Errorf("attempt dimension not mixed: fired=%v clean=%v", fired, clean)
	}
}

func TestEmpiricalRate(t *testing.T) {
	in, err := NewInjector(Config{StoreWrite: 0.2}, 123, nil)
	if err != nil {
		t.Fatal(err)
	}
	n, hits := 5000, 0
	for i := 0; i < n; i++ {
		if in.Should(StoreWrite, fmt.Sprintf("s-%d", i), 0) {
			hits++
		}
	}
	rate := float64(hits) / float64(n)
	if math.Abs(rate-0.2) > 0.03 {
		t.Errorf("empirical rate %v far from configured 0.2", rate)
	}
}

func TestRecording(t *testing.T) {
	rec := counters.NewResilience()
	in, err := NewInjector(Config{TrialNaN: 1}, 1, rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !in.Should(TrialNaN, "cfg", i) {
			t.Fatal("p=1 fault did not fire")
		}
	}
	s := rec.Snapshot()
	if s.FaultCount(string(TrialNaN)) != 3 || s.TotalFaults != 3 {
		t.Errorf("snapshot = %+v, want 3 trial-nan faults", s)
	}
}

func TestErrorClassification(t *testing.T) {
	in, err := NewInjector(Config{DeviceFlap: 1}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ferr := in.Fail(DeviceFlap, "sig", 0)
	if ferr == nil {
		t.Fatal("p=1 Fail returned nil")
	}
	if !IsFault(ferr) {
		t.Error("IsFault missed an injected error")
	}
	wrapped := fmt.Errorf("request: %w", ferr)
	if !IsFault(wrapped) || ClassOf(wrapped) != DeviceFlap {
		t.Error("wrapped fault not recognised")
	}
	if IsFault(errors.New("organic")) || ClassOf(errors.New("organic")) != "" {
		t.Error("organic error classified as fault")
	}
}

func TestStragglerFactorRange(t *testing.T) {
	in, err := NewInjector(Config{Straggler: 1, StragglerFactor: 3}, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		f := in.StragglerFactor(fmt.Sprintf("s-%d", i), 0)
		if f < 1 || f > 3 {
			t.Fatalf("factor %v out of [1,3]", f)
		}
	}
	// Deterministic per tuple.
	if in.StragglerFactor("s-1", 0) != in.StragglerFactor("s-1", 0) {
		t.Error("straggler factor not deterministic")
	}
}

func TestBrownoutFactorRange(t *testing.T) {
	in, err := NewInjector(Config{DeviceBrownout: 1, BrownoutFactor: 5}, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		f := in.BrownoutFactor(fmt.Sprintf("d-%d", i), 0)
		if f < 1 || f > 5 {
			t.Fatalf("factor %v out of [1,5]", f)
		}
	}
	if in.BrownoutFactor("d-1", 0) != in.BrownoutFactor("d-1", 0) {
		t.Error("brownout factor not deterministic")
	}
	// Defaulted factor still yields > 1 slowdowns somewhere.
	in2, err := NewInjector(Config{DeviceBrownout: 1}, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	var slowed bool
	for i := 0; i < 20; i++ {
		if in2.BrownoutFactor(fmt.Sprintf("d-%d", i), 0) > 1 {
			slowed = true
		}
	}
	if !slowed {
		t.Error("default brownout factor never slowed an attempt")
	}
}

func TestNewClassesFire(t *testing.T) {
	rec := counters.NewResilience()
	in, err := NewInjector(Config{OverloadBurst: 1, DeviceBrownout: 1}, 5, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Should(OverloadBurst, "admit/c1", 0) {
		t.Error("p=1 overload burst did not fire")
	}
	if ferr := in.Fail(DeviceBrownout, "i7/sig", 0); ClassOf(ferr) != DeviceBrownout {
		t.Errorf("brownout Fail = %v", ferr)
	}
	s := rec.Snapshot()
	if s.FaultCount(string(OverloadBurst)) != 1 || s.FaultCount(string(DeviceBrownout)) != 1 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestConcurrentUse(t *testing.T) {
	rec := counters.NewResilience()
	in, err := NewInjector(Config{TrialCrash: 0.5}, 3, rec)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				in.Should(TrialCrash, fmt.Sprintf("%d-%d", g, i), i%4)
			}
		}(g)
	}
	wg.Wait()
	if rec.Snapshot().TotalFaults == 0 {
		t.Error("no faults recorded under concurrency")
	}
}
