package fault

import (
	"fmt"
	"sort"
)

// Event is one scheduled fault: the decision for exactly this
// (Class, Site, Attempt) tuple fires when the injector consults it,
// regardless of the class's probability. Events are the unit the chaos
// fuzzer generates, shrinks, and commits to its corpus, so they
// marshal to a stable JSON shape.
type Event struct {
	Class   Class  `json:"class"`
	Site    string `json:"site"`
	Attempt int    `json:"attempt"`
	// Intensity gates the event in (0, 1]: the event fires when the
	// tuple's seeded uniform draw lands below it, so a schedule can
	// express "maybe" faults that stay deterministic per seed. Zero
	// means 1 (always fire).
	Intensity float64 `json:"intensity,omitempty"`
}

// Validate checks the event against the class catalog and the shared
// bounds rules every fault knob obeys.
func (e Event) Validate() error {
	if !knownClass(e.Class) {
		return fmt.Errorf("fault: unknown class %q", e.Class)
	}
	if e.Site == "" {
		return fmt.Errorf("fault: event %s needs a site", e.Class)
	}
	if e.Attempt < 0 {
		return CheckNonNegative([]NamedValue{{Name: string(e.Class) + " attempt", Value: float64(e.Attempt)}})
	}
	return CheckProbs([]NamedValue{{Name: string(e.Class) + "@" + e.Site + " intensity", Value: e.Intensity}})
}

// String renders the event in the compact form the fuzzer logs use:
// class@site#attempt[*intensity].
func (e Event) String() string {
	s := fmt.Sprintf("%s@%s#%d", e.Class, e.Site, e.Attempt)
	if e.Intensity > 0 && e.Intensity < 1 {
		s += fmt.Sprintf("*%g", e.Intensity)
	}
	return s
}

func knownClass(c Class) bool {
	for _, k := range Classes() {
		if k == c {
			return true
		}
	}
	return false
}

type planKey struct {
	class   Class
	site    string
	attempt int
}

// Plan is a schedule of exact fault events layered on top of the
// probabilistic config: decisions are pure functions of the tuple, so
// plan-driven injection is as scheduling-independent as the
// probabilistic kind. A nil *Plan schedules nothing.
type Plan struct {
	events map[planKey]float64
}

// NewPlan validates the events and builds the lookup. Duplicate tuples
// keep the highest intensity (a deterministic, order-independent
// merge).
func NewPlan(events []Event) (*Plan, error) {
	p := &Plan{events: make(map[planKey]float64, len(events))}
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return nil, err
		}
		in := e.Intensity
		if in == 0 {
			in = 1
		}
		k := planKey{class: e.Class, site: e.Site, attempt: e.Attempt}
		if prev, ok := p.events[k]; !ok || in > prev {
			p.events[k] = in
		}
	}
	return p, nil
}

// Len reports the number of scheduled tuples.
func (p *Plan) Len() int {
	if p == nil {
		return 0
	}
	return len(p.events)
}

// Events returns the plan's tuples in deterministic order.
func (p *Plan) Events() []Event {
	if p == nil {
		return nil
	}
	out := make([]Event, 0, len(p.events))
	for k, in := range p.events {
		out = append(out, Event{Class: k.class, Site: k.site, Attempt: k.attempt, Intensity: in})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Class != out[b].Class {
			return out[a].Class < out[b].Class
		}
		if out[a].Site != out[b].Site {
			return out[a].Site < out[b].Site
		}
		return out[a].Attempt < out[b].Attempt
	})
	return out
}

// intensity looks one tuple up.
func (p *Plan) intensity(class Class, site string, attempt int) (float64, bool) {
	if p == nil {
		return 0, false
	}
	in, ok := p.events[planKey{class: class, site: site, attempt: attempt}]
	return in, ok
}

// Observer receives every injection decision the injector makes —
// scheduled or probabilistic, fired or not. The chaos fuzzer's
// discovery pass uses it to enumerate the decision-point catalog a
// clean run exposes. Observers run on whatever goroutine consults the
// injector and must be safe for concurrent use.
type Observer func(class Class, site string, attempt int, fired bool)
