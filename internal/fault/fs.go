package fault

import (
	"fmt"
	"path/filepath"
	"sync"
	"syscall"

	"edgetune/internal/store"
)

// FS wraps a store.FS with seeded disk-fault injection, driving the
// durability layer through the failure modes of real edge flash: torn
// writes, partial-write-then-crash, silent bit flips, ENOSPC, and slow
// fsyncs. Decisions come from the same (seed, class, site, attempt)
// hashing as every other fault class — site is the file path, attempt
// is a per-filesystem operation counter — so a run replays exactly
// from its seed.
type FS struct {
	inner store.FS
	in    *Injector

	mu   sync.Mutex
	op   int
	dead bool
	slow int
}

// NewFS wraps inner (nil = the real filesystem) with injection driven
// by in.
func NewFS(inner store.FS, in *Injector) *FS {
	if inner == nil {
		inner = store.OSFS{}
	}
	return &FS{inner: inner, in: in}
}

var _ store.FS = (*FS)(nil)

// Dead reports whether an injected DiskCrash killed this filesystem.
func (f *FS) Dead() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead
}

// SlowFsyncs counts injected slow fsyncs (they succeed, slowly).
func (f *FS) SlowFsyncs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.slow
}

// nextOp returns the next attempt number, or an error when the disk
// already crashed.
func (f *FS) nextOp() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return 0, &Error{Class: DiskCrash, Site: "dead-disk"}
	}
	f.op++
	return f.op, nil
}

func (f *FS) kill() {
	f.mu.Lock()
	f.dead = true
	f.mu.Unlock()
}

// diskErr builds a typed injected fault that also wraps errno, so both
// fault.IsFault and errors.Is(err, syscall.ENOSPC)-style checks work.
func diskErr(class Class, site string, errno error) error {
	return fmt.Errorf("%w: %w", &Error{Class: class, Site: site}, errno)
}

// faultFile wraps an open file; writes and fsyncs are where the disk
// classes fire. path is the file's base name: hashing the site without
// its directory keeps fault decisions identical for the same store
// opened anywhere (temp dirs, per-run scratch space).
type faultFile struct {
	f    store.File
	fs   *FS
	path string
}

// Write injects the write-path classes. A torn write lands a prefix
// and reports failure with the true byte count (so the WAL layer can
// repair); a crash lands a prefix and kills the filesystem; a bit flip
// corrupts one byte and reports success — only recovery's checksums
// can catch it; disk-full writes nothing.
func (w *faultFile) Write(p []byte) (int, error) {
	attempt, err := w.fs.nextOp()
	if err != nil {
		return 0, err
	}
	in := w.fs.in
	if in.Should(DiskCrash, w.path, attempt) {
		n, _ := w.f.Write(p[:len(p)/2])
		w.f.Sync()
		w.fs.kill()
		return n, diskErr(DiskCrash, w.path, syscall.EIO)
	}
	if in.Should(DiskFull, w.path, attempt) {
		return 0, diskErr(DiskFull, w.path, syscall.ENOSPC)
	}
	if in.Should(DiskTornWrite, w.path, attempt) {
		torn := int(in.Uniform("torn/"+w.path, attempt) * float64(len(p)))
		if torn >= len(p) {
			torn = len(p) - 1
		}
		n, _ := w.f.Write(p[:torn])
		w.f.Sync()
		return n, diskErr(DiskTornWrite, w.path, syscall.EIO)
	}
	if in.Should(DiskBitFlip, w.path, attempt) && len(p) > 0 {
		corrupt := append([]byte(nil), p...)
		idx := int(in.Uniform("flip/"+w.path, attempt) * float64(len(corrupt)))
		if idx >= len(corrupt) {
			idx = len(corrupt) - 1
		}
		corrupt[idx] ^= 0x40
		return w.f.Write(corrupt)
	}
	return w.f.Write(p)
}

// Sync injects crash-at-fsync and slow-fsync.
func (w *faultFile) Sync() error {
	attempt, err := w.fs.nextOp()
	if err != nil {
		return err
	}
	in := w.fs.in
	if in.Should(DiskCrash, "fsync/"+w.path, attempt) {
		w.fs.kill()
		return diskErr(DiskCrash, w.path, syscall.EIO)
	}
	if in.Should(DiskSlowFsync, w.path, attempt) {
		w.fs.mu.Lock()
		w.fs.slow++
		w.fs.mu.Unlock()
	}
	return w.f.Sync()
}

// Close always closes the real file (no fd leaks, even on a dead
// disk).
func (w *faultFile) Close() error { return w.f.Close() }

// ReadFile implements store.FS; reads are clean so recovery always
// sees exactly what the faults left on disk.
func (f *FS) ReadFile(path string) ([]byte, error) {
	if f.Dead() {
		return nil, &Error{Class: DiskCrash, Site: path}
	}
	return f.inner.ReadFile(path)
}

// Create implements store.FS.
func (f *FS) Create(path string) (store.File, error) {
	if f.Dead() {
		return nil, &Error{Class: DiskCrash, Site: path}
	}
	file, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, fs: f, path: filepath.Base(path)}, nil
}

// OpenAppend implements store.FS.
func (f *FS) OpenAppend(path string) (store.File, error) {
	if f.Dead() {
		return nil, &Error{Class: DiskCrash, Site: path}
	}
	file, err := f.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, fs: f, path: filepath.Base(path)}, nil
}

// Rename implements store.FS.
func (f *FS) Rename(oldPath, newPath string) error {
	if f.Dead() {
		return &Error{Class: DiskCrash, Site: oldPath}
	}
	return f.inner.Rename(oldPath, newPath)
}

// Remove implements store.FS.
func (f *FS) Remove(path string) error {
	if f.Dead() {
		return &Error{Class: DiskCrash, Site: path}
	}
	return f.inner.Remove(path)
}

// Truncate implements store.FS.
func (f *FS) Truncate(path string, size int64) error {
	if f.Dead() {
		return &Error{Class: DiskCrash, Site: path}
	}
	return f.inner.Truncate(path, size)
}

// SyncDir implements store.FS.
func (f *FS) SyncDir(path string) error {
	if f.Dead() {
		return &Error{Class: DiskCrash, Site: path}
	}
	return f.inner.SyncDir(path)
}

// Size implements store.FS.
func (f *FS) Size(path string) (int64, error) {
	if f.Dead() {
		return 0, &Error{Class: DiskCrash, Site: path}
	}
	return f.inner.Size(path)
}
