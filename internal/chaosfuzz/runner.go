package chaosfuzz

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"edgetune/internal/autoscale"
	"edgetune/internal/cluster"
	"edgetune/internal/core"
	"edgetune/internal/counters"
	"edgetune/internal/device"
	"edgetune/internal/fault"
	"edgetune/internal/obs"
	"edgetune/internal/obs/flight"
	"edgetune/internal/obs/slo"
	"edgetune/internal/store"
	"edgetune/internal/workload"
)

// fuzzTenant is the identity every fuzz job runs under; the cluster's
// quota counters and rejection metrics key on it.
const fuzzTenant = "fuzz"

// Runner executes one schedule as a real tuning job — the same wiring
// the public Tune path and the cluster dispatcher use, built directly
// so the fuzzer controls every knob. The job shape is fixed per
// (mode, seed): a small IC search, autoscaling on, checkpointing on,
// durable store (single mode) or a two-shard cluster (cluster mode).
type Runner struct {
	// Mode is ModeSingle or ModeCluster.
	Mode string
	// Seed drives the job and every fault decision in it.
	Seed uint64
	// PlantDoubleChargeRetry plants a deliberate accounting bug for the
	// fuzzer's own acceptance tests: after the run, the total retry
	// cost is charged to the tuning budget a second time, violating
	// budget conservation on any schedule that causes a retry.
	PlantDoubleChargeRetry bool
}

// replicaScrub is one store replica's post-run integrity evidence.
// Name is scratch-path-free ("primary", "shard0/follower") so every
// downstream artefact stays byte-identical across runs.
type replicaScrub struct {
	Name      string            `json:"name"`
	Report    store.ScrubReport `json:"report"`
	ReopenErr string            `json:"reopenErr,omitempty"`
}

// runOutcome is the complete evidence one schedule execution leaves
// behind for the invariant registry.
type runOutcome struct {
	Schedule   Schedule
	Result     core.Result
	RunErr     error
	FailedOver bool
	// QuotaDenied reports the cluster rejected the submission at the
	// tenant gate; Rejected is the fabric's rejection counter for the
	// fuzz tenant (the two must agree).
	QuotaDenied bool
	Rejected    int64
	// ClusterSLO is the fabric evaluator's snapshot (cluster mode).
	ClusterSLO slo.Snapshot
	// Incidents are the shard dossiers (cluster mode), keyed by shard.
	Incidents map[string][]flight.Dossier
	// Scrubs holds every replica's post-run scrub + reopen evidence.
	Scrubs []replicaScrub
	// Leaked is how many goroutines outlived the run after a settle
	// period (0 on a clean shutdown).
	Leaked int
	// Digest fingerprints the full outcome (result, scrubs, errors) —
	// two runs of the same schedule must agree byte for byte.
	// OutcomeDigest covers only the answer (winning config, accuracy,
	// recommendation) — the convergence the failover design promises.
	Digest        string
	OutcomeDigest string
	// scratch is the run's temp directory; every error string is
	// scrubbed of it before digesting, or two identical runs would
	// "diverge" on their scratch paths alone.
	scratch string
}

// errString renders RunErr with the scratch directory redacted.
func (o *runOutcome) errString() string {
	if o.RunErr == nil {
		return ""
	}
	return redactPath(o.RunErr.Error(), o.scratch)
}

// redactPath replaces every occurrence of dir in s with a stable
// placeholder.
func redactPath(s, dir string) string {
	if dir == "" {
		return s
	}
	return strings.ReplaceAll(s, dir, "<scratch>")
}

// Run executes the schedule once and gathers the evidence. The error
// return is for harness failures (bad schedule, scratch-dir I/O);
// failures *of the system under test* land inside the outcome where
// the invariants judge them.
func (r *Runner) Run(s Schedule) (*runOutcome, error) {
	return r.run(s, nil)
}

func (r *Runner) run(s Schedule, observe fault.Observer) (*runOutcome, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	jobPlan, clusterPlan, err := s.plans()
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "chaosfuzz-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	before := runtime.NumGoroutine()
	var out *runOutcome
	if s.Mode == ModeCluster {
		out, err = r.runCluster(s, dir, jobPlan, clusterPlan, observe)
	} else {
		out, err = r.runSingle(s, dir, jobPlan, observe)
	}
	if err != nil {
		return nil, err
	}
	out.Schedule = s
	out.scratch = dir
	out.Leaked = settleGoroutines(before)
	if r.PlantDoubleChargeRetry && out.RunErr == nil {
		for _, t := range out.Result.Trials {
			out.Result.TuningDuration += t.RetryCost.Duration
		}
	}
	out.finalize()
	return out, nil
}

// jobOptions builds the fixed fuzz job shape: small enough that a
// schedule evaluation takes tens of milliseconds, rich enough that
// every subsystem (retries, inference serving, autoscaling ladder,
// checkpoints, SLOs) has decision points to fault.
func (r *Runner) jobOptions(s Schedule, plan *fault.Plan, observe fault.Observer) (core.Options, error) {
	w, err := workload.New("IC", s.Seed^0x9e3779b9)
	if err != nil {
		return core.Options{}, err
	}
	return core.Options{
		Workload:       w,
		Device:         device.I7(),
		Autoscale:      &autoscale.Config{Min: 1, Max: 2},
		SystemParams:   true,
		InferenceAware: true,
		InitialConfigs: 4,
		Rungs:          3,
		MaxBrackets:    1,
		InferTrials:    6,
		Seed:           s.Seed,
		Fault:          fault.Config{Plan: plan, Observe: observe},
		Checkpoint:     true,
		Tenant:         fuzzTenant,
		// The write-behind flusher's background appends would otherwise
		// interleave nondeterministically with the tuner's own WAL
		// appends, shifting the fault FS's operation numbering run to
		// run — the one scheduling freedom the determinism invariant
		// cannot tolerate.
		SyncStoreWrites: true,
	}, nil
}

func (r *Runner) runSingle(s Schedule, dir string, plan *fault.Plan, observe fault.Observer) (*runOutcome, error) {
	storePath := filepath.Join(dir, "store.json")
	reg := obs.NewRegistry()
	ev := slo.NewEvaluator()
	tracer := obs.NewTracer()
	fr := flight.New(1 << 12)
	tracer.SetSpanObserver(func(name string, track int, start, dur time.Duration) {
		fr.Record(start, flight.KindSpan, name, "", int64(track), int64(dur))
	})

	// The disk classes fire through a fault-wrapped filesystem under the
	// durable store. Its injector shares the job's seed and plan — fault
	// sites are disjoint by class, so one schedule drives both layers.
	fcfg := fault.Config{Plan: plan, Observe: observe}
	finj, err := fault.NewInjector(fcfg, s.Seed, counters.NewResilienceOn(reg))
	if err != nil {
		return nil, err
	}
	out := &runOutcome{}
	dur, err := store.OpenDurable(store.DurableOptions{
		SnapshotPath: storePath,
		FS:           fault.NewFS(store.OSFS{}, finj),
		Metrics:      reg,
		SLO:          ev,
		Trace:        tracer,
		Flight:       fr,
	})
	if err != nil {
		// A schedule can kill the disk during the very first open; that
		// is a system outcome, not a harness failure.
		out.RunErr = fmt.Errorf("open durable store: %w", err)
		out.Scrubs = scrubReplicas(dir, []string{"primary"})
		return out, nil
	}

	opts, err := r.jobOptions(s, plan, observe)
	if err != nil {
		return nil, err
	}
	opts.Store = dur.Store()
	opts.CheckpointPath = storePath
	opts.Trace = tracer
	opts.Metrics = reg
	opts.SLO = ev
	opts.Flight = fr

	out.Result, out.RunErr = core.Tune(context.Background(), opts)
	if cerr := dur.Close(); cerr != nil && out.RunErr == nil {
		out.RunErr = fmt.Errorf("close durable store: %w", cerr)
	}
	out.Scrubs = scrubReplicas(dir, []string{"primary"})
	return out, nil
}

func (r *Runner) runCluster(s Schedule, dir string, jobPlan, clusterPlan *fault.Plan, observe fault.Observer) (*runOutcome, error) {
	reg := obs.NewRegistry()
	ev := slo.NewEvaluator()
	cl, err := cluster.New(cluster.Options{
		Shards:      2,
		Dir:         dir,
		Seed:        s.Seed,
		Fault:       fault.Config{Plan: clusterPlan, Observe: observe},
		TenantRate:  1,
		TenantBurst: 4,
		Metrics:     reg,
		SLO:         ev,
		Flight:      true,
		FlightSlots: 1 << 12,
	})
	if err != nil {
		return nil, err
	}
	opts, err := r.jobOptions(s, jobPlan, observe)
	if err != nil {
		cl.Close()
		return nil, err
	}
	opts.Metrics = obs.NewRegistry() // per-job registry, like the dispatcher's callers

	out := &runOutcome{}
	res, runErr := cl.Submit(context.Background(), cluster.Job{
		Key:    "fuzz/job",
		Tenant: fuzzTenant,
		Opts:   opts,
	})
	out.Result = res.Result
	out.RunErr = runErr
	out.FailedOver = res.FailedOver
	out.QuotaDenied = errors.Is(runErr, cluster.ErrTenantQuota)
	out.Incidents = cl.Incidents()
	if cerr := cl.Close(); cerr != nil && out.RunErr == nil {
		out.RunErr = fmt.Errorf("close cluster: %w", cerr)
	}
	for _, c := range reg.Snapshot().Counters {
		if c.Name == "cluster.tenant.rejected."+fuzzTenant {
			out.Rejected = c.Value
		}
	}
	out.ClusterSLO = ev.Snapshot()
	out.Scrubs = scrubReplicas(dir, []string{
		"shard0/primary", "shard0/follower",
		"shard1/primary", "shard1/follower",
	})
	return out, nil
}

// scrubReplicas verifies each replica's on-disk store: a read-only
// scrub first (point-in-time corruption evidence), then a real
// recovery (reopen + close) proving the salvage path terminates and
// accepts whatever the run left behind. Paths inside the reports are
// rewritten to the replica name so no scratch directory ever leaks
// into digests or artefacts.
func scrubReplicas(dir string, names []string) []replicaScrub {
	var out []replicaScrub
	for _, name := range names {
		base := dir
		if name != "primary" {
			base = filepath.Join(dir, filepath.FromSlash(name))
		}
		snap := filepath.Join(base, "store.json")
		if _, err := os.Stat(snap); err != nil {
			if _, werr := os.Stat(snap + ".wal"); werr != nil {
				continue // replica never materialized (nothing to verify)
			}
		}
		rs := replicaScrub{Name: name}
		rep, err := store.Scrub(store.OSFS{}, snap, "")
		if err != nil {
			rs.ReopenErr = "scrub: " + redactPath(err.Error(), dir)
		}
		rep.SnapshotPath = name + "/store.json"
		rep.WALPath = name + "/store.json.wal"
		rs.Report = rep
		if d, err := store.OpenDurable(store.DurableOptions{SnapshotPath: snap}); err != nil {
			rs.ReopenErr = "reopen: " + redactPath(err.Error(), dir)
		} else {
			d.Abandon()
		}
		out = append(out, rs)
	}
	return out
}

// settleGoroutines waits for the goroutine count to return to the
// pre-run baseline, absorbing the benign lag between a Close returning
// and its workers exiting; whatever remains after the deadline leaked.
func settleGoroutines(before int) int {
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= before {
			return 0
		}
		if time.Now().After(deadline) {
			return n - before
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// finalize computes the outcome's two digests.
func (o *runOutcome) finalize() {
	h := fnv.New64a()
	fmt.Fprintf(h, "mode=%s;seed=%d;failedOver=%v;quotaDenied=%v;rejected=%d;", o.Schedule.Mode, o.Schedule.Seed, o.FailedOver, o.QuotaDenied, o.Rejected)
	if o.RunErr != nil {
		fmt.Fprintf(h, "err=%s;", o.errString())
	}
	writeResult(h, &o.Result)
	for _, sc := range o.Scrubs {
		fmt.Fprintf(h, "scrub=%s/%v/%d/%d/%d/%d/%d/%s;", sc.Name, sc.Report.Clean,
			sc.Report.WALRecords, sc.Report.WALQuarantined, sc.Report.WALTornBytes,
			sc.Report.Entries, sc.Report.Checkpoints, sc.ReopenErr)
	}
	shards := make([]string, 0, len(o.Incidents))
	for name := range o.Incidents {
		shards = append(shards, name)
	}
	sort.Strings(shards)
	for _, name := range shards {
		for _, d := range o.Incidents[name] {
			fmt.Fprintf(h, "incident=%s/%s/%d/%s;", name, d.Trigger.Kind, d.Trigger.Seq, d.Digest)
		}
	}
	o.Digest = fmt.Sprintf("%016x", h.Sum64())
	o.OutcomeDigest = outcomeDigest(&o.Result)
}

// writeResult folds the full result — budget totals, every trial's
// accounting, the metrics and SLO snapshots, the autoscale decision
// stream — into h. Any scheduling nondeterminism anywhere in the
// pipeline shows up as a digest mismatch between twin runs.
func writeResult(h interface{ Write([]byte) (int, error) }, res *core.Result) {
	fmt.Fprintf(h, "dur=%d;energy=%.9g;trials=%d;hits=%d;misses=%d;target=%v;",
		res.TuningDuration, res.TuningEnergyKJ, res.TrialsRun, res.CacheHits, res.CacheMisses, res.ReachedTarget)
	for _, t := range res.Trials {
		fmt.Fprintf(h, "t=%d/%d/%.9g/%d/%d/%d/%s/%d;", t.Bracket, t.Rung, t.Accuracy,
			t.TrainCost.Duration, t.RetryCost.Duration, t.InferTuning.Duration, t.Outcome, t.Attempts)
	}
	for _, c := range res.Metrics.Counters {
		fmt.Fprintf(h, "c=%s/%d;", c.Name, c.Value)
	}
	for _, hg := range res.Metrics.Histograms {
		fmt.Fprintf(h, "h=%s/%d/%.9g;", hg.Name, hg.Count, hg.Sum)
	}
	for _, obj := range res.SLO.Objectives {
		fmt.Fprintf(h, "slo=%s/%d/%d;", obj.Name, obj.Events, obj.Errors)
	}
	if a := res.Autoscale; a != nil {
		fmt.Fprintf(h, "as=%d/%d/%d/%d/%016x;", a.Ticks, a.ScaleUps, a.ScaleDowns, len(a.ModePath), a.Digest)
	}
	for _, d := range res.Incidents {
		fmt.Fprintf(h, "inc=%s/%d/%s;", d.Trigger.Kind, d.Trigger.Seq, d.Digest)
	}
	fmt.Fprintf(h, "outcome=%s;", outcomeDigest(res))
}

// outcomeDigest hashes just the answer: the winning configuration, its
// accuracy, and the inference recommendation — the quantity the
// failover design promises converges with an unfaulted same-seed run.
func outcomeDigest(res *core.Result) string {
	h := fnv.New64a()
	keys := make([]string, 0, len(res.BestConfig))
	for k := range res.BestConfig {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%.9g;", k, res.BestConfig[k])
	}
	fmt.Fprintf(h, "acc=%.9g;", res.BestAccuracy)
	rec := res.Recommendation
	fmt.Fprintf(h, "rec=%s/%s;", rec.Device, rec.Signature)
	cfgKeys := make([]string, 0, len(rec.Config))
	for k := range rec.Config {
		cfgKeys = append(cfgKeys, k)
	}
	sort.Strings(cfgKeys)
	for _, k := range cfgKeys {
		fmt.Fprintf(h, "%s=%.9g;", k, rec.Config[k])
	}
	fmt.Fprintf(h, "thr=%.9g;eps=%.9g;lat=%.9g", rec.Throughput, rec.EnergyPerSampleJ, rec.LatencySeconds)
	return fmt.Sprintf("%016x", h.Sum64())
}
