package chaosfuzz

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"edgetune/internal/fault"
)

func TestScheduleValidate(t *testing.T) {
	ok := fault.Event{Class: fault.TrialCrash, Site: "conf0/b0/r0", Intensity: 1}
	cases := []struct {
		name    string
		s       Schedule
		wantErr string
	}{
		{"valid single", Schedule{Mode: ModeSingle, Events: []fault.Event{ok}}, ""},
		{"valid empty", Schedule{Mode: ModeCluster}, ""},
		{"bad mode", Schedule{Mode: "edge"}, "mode"},
		{"bad intensity", Schedule{Mode: ModeSingle, Events: []fault.Event{
			{Class: fault.TrialCrash, Site: "s", Intensity: 1.5}}}, "outside [0,1]"},
		{"negative attempt", Schedule{Mode: ModeSingle, Events: []fault.Event{
			{Class: fault.TrialCrash, Site: "s", Attempt: -1, Intensity: 1}}}, "negative"},
		{"unknown class", Schedule{Mode: ModeSingle, Events: []fault.Event{
			{Class: fault.Class("gamma-ray"), Site: "s", Intensity: 1}}}, "unknown class"},
		{"cluster class in single mode", Schedule{Mode: ModeSingle, Events: []fault.Event{
			{Class: fault.ShardKill, Site: "shard0/k/b0/r0", Intensity: 1}}}, "single mode"},
		{"disk class in cluster mode", Schedule{Mode: ModeCluster, Events: []fault.Event{
			{Class: fault.DiskTornWrite, Site: "store.json.wal", Intensity: 1}}}, "cluster mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestReproRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repro.json")
	in := Repro{
		Invariant: "budget-conservation",
		Detail:    "reported duration off by one retry",
		Schedule: Schedule{
			Seed: 7, Mode: ModeSingle,
			Events: []fault.Event{{Class: fault.TrialCrash, Site: "conf1/b0/r0", Attempt: 0, Intensity: 1}},
		},
	}
	if err := WriteRepro(path, in); err != nil {
		t.Fatalf("WriteRepro: %v", err)
	}
	out, err := ReadRepro(path)
	if err != nil {
		t.Fatalf("ReadRepro: %v", err)
	}
	in.Schema = ReproSchema
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", out, in)
	}
}

func TestReadReproRejectsBadSchedule(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repro.json")
	bad := Repro{Schedule: Schedule{Seed: 1, Mode: "edge"}}
	if err := WriteRepro(path, bad); err != nil {
		t.Fatalf("WriteRepro: %v", err)
	}
	if _, err := ReadRepro(path); err == nil {
		t.Fatal("ReadRepro accepted an invalid schedule")
	}
}

// TestShrinkMinimizes drives ddmin with a synthetic predicate: the
// failure needs events #3 and #6 together; everything else is noise.
// The shrinker must strip all six noise events and keep exactly the
// failing pair.
func TestShrinkMinimizes(t *testing.T) {
	events := make([]fault.Event, 8)
	for i := range events {
		events[i] = fault.Event{
			Class: fault.TrialCrash, Site: "conf0/b0/r0", Attempt: i, Intensity: 1,
		}
	}
	needs := func(s Schedule, attempt int) bool {
		for _, ev := range s.Events {
			if ev.Attempt == attempt {
				return true
			}
		}
		return false
	}
	calls := 0
	min := Shrink(Schedule{Seed: 9, Mode: ModeSingle, Events: events}, func(s Schedule) bool {
		calls++
		return needs(s, 3) && needs(s, 6)
	})
	if len(min.Events) != 2 || !needs(min, 3) || !needs(min, 6) {
		t.Fatalf("shrunk to %v, want exactly attempts {3, 6}", min.Events)
	}
	if min.Seed != 9 || min.Mode != ModeSingle {
		t.Fatalf("shrinker lost seed/mode: %+v", min)
	}
	if calls == 0 {
		t.Fatal("predicate never consulted")
	}
}

func TestShrinkSingleEvent(t *testing.T) {
	s := Schedule{Seed: 1, Mode: ModeSingle, Events: []fault.Event{
		{Class: fault.TrialNaN, Site: "x", Intensity: 1},
	}}
	min := Shrink(s, func(Schedule) bool { return true })
	if len(min.Events) != 1 {
		t.Fatalf("single-event schedule must survive intact, got %v", min.Events)
	}
}

func TestDiscoverCatalogDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full tuning jobs")
	}
	r := &Runner{Mode: ModeSingle, Seed: 42}
	c1, err := Discover(r)
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	c2, err := Discover(r)
	if err != nil {
		t.Fatalf("Discover (second): %v", err)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("catalog not deterministic across discoveries")
	}
	if len(c1) == 0 {
		t.Fatal("empty catalog")
	}
	var sawRetrySynthesis bool
	for _, p := range c1 {
		if retryClasses[p.Class] && p.Attempt > 0 {
			sawRetrySynthesis = true
		}
	}
	if !sawRetrySynthesis {
		t.Fatal("catalog missing synthesized retry attempts")
	}
}

func TestRunDeterministicDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full tuning jobs")
	}
	r := &Runner{Mode: ModeSingle, Seed: 1234}
	s := Schedule{Seed: 1234, Mode: ModeSingle, Events: []fault.Event{
		{Class: fault.TrialCrash, Site: "conf0/b0/r0", Attempt: 0, Intensity: 1},
	}}
	a, err := r.Run(s)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := r.Run(s)
	if err != nil {
		t.Fatalf("Run (second): %v", err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("same schedule diverged: %s != %s", a.Digest, b.Digest)
	}
	if a.Digest == "" {
		t.Fatal("empty digest")
	}
}

// TestCleanScheduleHoldsAllInvariants is the no-false-positive
// baseline: an unfaulted run must violate nothing.
func TestCleanScheduleHoldsAllInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full tuning jobs")
	}
	for _, mode := range []string{ModeSingle, ModeCluster} {
		t.Run(mode, func(t *testing.T) {
			r := &Runner{Mode: mode, Seed: 99}
			f, err := New(r)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			violations, _, err := f.Evaluate(Schedule{Seed: 99, Mode: mode})
			if err != nil {
				t.Fatalf("Evaluate: %v", err)
			}
			if len(violations) != 0 {
				t.Fatalf("clean %s run violated invariants: %+v", mode, violations)
			}
		})
	}
}

// TestPlantedDoubleChargeFoundAndShrunk is the acceptance scenario: a
// deliberately planted accounting bug (retry budget charged twice)
// must be found by seeded exploration, shrunk to a minimal schedule of
// at most 3 events, and its repro must replay to the same invariant
// failure on a fresh runner.
func TestPlantedDoubleChargeFoundAndShrunk(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full tuning jobs")
	}
	r := &Runner{Mode: ModeSingle, Seed: 7, PlantDoubleChargeRetry: true}
	f, err := New(r)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	findings, err := f.Explore(6)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	var finding *Finding
	for i := range findings {
		if hasInvariant(findings[i].Violations, "budget-conservation") {
			finding = &findings[i]
			break
		}
	}
	if finding == nil {
		t.Fatalf("exploration missed the planted double charge; findings: %+v", findings)
	}
	if n := len(finding.Schedule.Events); n == 0 || n > 3 {
		t.Fatalf("shrunk schedule has %d events, want 1..3: %+v", n, finding.Schedule.Events)
	}
	if finding.Repro.Invariant != "budget-conservation" {
		t.Fatalf("repro pinned to %q, want budget-conservation", finding.Repro.Invariant)
	}
	if _, _, ok := finding.Dossier.Verify(); !ok {
		t.Fatal("finding dossier failed digest verification")
	}
	if finding.Dossier.Trigger.Kind != TriggerInvariant {
		t.Fatalf("dossier trigger %q, want %q", finding.Dossier.Trigger.Kind, TriggerInvariant)
	}

	// The repro must replay to the same failure on a fresh runner.
	fresh := &Runner{Mode: ModeSingle, Seed: 7, PlantDoubleChargeRetry: true}
	ff, err := New(fresh)
	if err != nil {
		t.Fatalf("New (fresh): %v", err)
	}
	violations, _, err := ff.Evaluate(finding.Repro.Schedule)
	if err != nil {
		t.Fatalf("Evaluate (replay): %v", err)
	}
	if !hasInvariant(violations, "budget-conservation") {
		t.Fatalf("repro did not replay the planted failure; got %+v", violations)
	}

	// And replay on an unplanted runner must be clean: the violation is
	// the bug's, not the schedule's.
	sound := &Runner{Mode: ModeSingle, Seed: 7}
	fs, err := New(sound)
	if err != nil {
		t.Fatalf("New (sound): %v", err)
	}
	violations, _, err = fs.Evaluate(finding.Repro.Schedule)
	if err != nil {
		t.Fatalf("Evaluate (sound replay): %v", err)
	}
	if len(violations) != 0 {
		t.Fatalf("schedule violates invariants even without the planted bug: %+v", violations)
	}
}

func TestGenerateDeterministicAndBounded(t *testing.T) {
	f := &Fuzzer{
		Runner: &Runner{Mode: ModeSingle, Seed: 5},
		Catalog: []Point{
			{Class: fault.TrialCrash, Site: "conf0/b0/r0"},
			{Class: fault.TrialNaN, Site: "conf1/b0/r0"},
			{Class: fault.Straggler, Site: "conf2/b0/r0", Attempt: 1},
		},
		MaxEvents: 3,
	}
	for i := 0; i < 20; i++ {
		a, b := f.Generate(i), f.Generate(i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Generate(%d) not deterministic", i)
		}
		if len(a.Events) < 1 || len(a.Events) > 3 {
			t.Fatalf("Generate(%d) produced %d events, want 1..3", i, len(a.Events))
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("Generate(%d) invalid: %v", i, err)
		}
		for _, ev := range a.Events {
			if ev.Intensity != 1 {
				t.Fatalf("Generate(%d) intensity %v, want 1", i, ev.Intensity)
			}
		}
	}
}
