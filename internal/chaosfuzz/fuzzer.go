package chaosfuzz

import (
	"fmt"
	"time"

	"edgetune/internal/fault"
	"edgetune/internal/obs/flight"
	"edgetune/internal/sim"
)

// TriggerInvariant is the flight-recorder trigger kind a finding's
// dossier is cut on.
const TriggerInvariant = "invariant-violation"

// Finding is one confirmed invariant violation: the minimized
// schedule, every violation it reproduces, the replayable repro
// artefact, and a flight-recorder dossier of the violating run.
type Finding struct {
	Schedule   Schedule
	Violations []Violation
	Repro      Repro
	Dossier    flight.Dossier
}

// Fuzzer explores the failure space: it generates seeded schedules
// over the discovered catalog, evaluates the invariant registry after
// each, and shrinks whatever breaks.
type Fuzzer struct {
	Runner *Runner
	// Catalog is the discovered decision-point universe schedules draw
	// from.
	Catalog []Point
	// MaxEvents bounds the events per generated schedule (default 3).
	MaxEvents int

	twin    *runOutcome // cached unfaulted run for convergence checks
	twinErr error
}

// New discovers the catalog for r and returns a fuzzer over it.
func New(r *Runner) (*Fuzzer, error) {
	catalog, err := Discover(r)
	if err != nil {
		return nil, err
	}
	if len(catalog) == 0 {
		return nil, fmt.Errorf("chaosfuzz: discovery found no decision points in %s mode", r.Mode)
	}
	return &Fuzzer{Runner: r, Catalog: catalog, MaxEvents: 3}, nil
}

// Generate builds the i-th schedule of the run: 1..MaxEvents catalog
// points drawn from an RNG seeded by (runner seed, i), at intensity 1
// so every scheduled event fires deterministically. Same seed, same i,
// same schedule — always.
func (f *Fuzzer) Generate(i int) Schedule {
	max := f.MaxEvents
	if max <= 0 {
		max = 3
	}
	rng := sim.NewRNG(f.Runner.Seed ^ 0x6a09e667f3bcc908 ^ uint64(i)*0x9e3779b97f4a7c15)
	n := 1 + rng.Intn(max)
	events := make([]fault.Event, 0, n)
	for len(events) < n {
		p := f.Catalog[rng.Intn(len(f.Catalog))]
		events = append(events, fault.Event{
			Class: p.Class, Site: p.Site, Attempt: p.Attempt, Intensity: 1,
		})
	}
	return Schedule{Seed: f.Runner.Seed, Mode: f.Runner.Mode, Events: events}
}

// unfaultedTwin lazily runs (and caches) the schedule-free twin the
// convergence invariant compares against.
func (f *Fuzzer) unfaultedTwin() (*runOutcome, error) {
	if f.twin == nil && f.twinErr == nil {
		f.twin, f.twinErr = f.Runner.run(Schedule{Seed: f.Runner.Seed, Mode: f.Runner.Mode}, nil)
	}
	return f.twin, f.twinErr
}

// Evaluate runs s twice (determinism is itself an invariant), gathers
// the twin where the schedule promises convergence, and judges the
// full registry.
func (f *Fuzzer) Evaluate(s Schedule) ([]Violation, Evidence, error) {
	var ev Evidence
	first, err := f.Runner.run(s, nil)
	if err != nil {
		return nil, ev, err
	}
	second, err := f.Runner.run(s, nil)
	if err != nil {
		return nil, ev, err
	}
	ev = Evidence{Schedule: s, First: first, Second: second}
	if s.Mode == ModeCluster && s.failoverOnly() {
		twin, err := f.unfaultedTwin()
		if err != nil {
			return nil, ev, err
		}
		ev.Twin = twin
	}
	return EvaluateInvariants(ev), ev, nil
}

// Explore generates and evaluates n schedules, shrinking every
// violation found into a minimal, replayable finding.
func (f *Fuzzer) Explore(n int) ([]Finding, error) {
	var findings []Finding
	for i := 0; i < n; i++ {
		s := f.Generate(i)
		violations, _, err := f.Evaluate(s)
		if err != nil {
			return findings, err
		}
		if len(violations) == 0 {
			continue
		}
		finding, err := f.Minimize(s, violations[0].Invariant)
		if err != nil {
			return findings, err
		}
		findings = append(findings, finding)
	}
	return findings, nil
}

// Minimize shrinks a failing schedule down to the smallest event list
// still violating the named invariant, then packages the finding: the
// repro artefact and a dossier cut from the minimal violating run.
func (f *Fuzzer) Minimize(s Schedule, invariant string) (Finding, error) {
	var shrinkErr error
	min := Shrink(s, func(candidate Schedule) bool {
		if shrinkErr != nil {
			return false
		}
		violations, _, err := f.Evaluate(candidate)
		if err != nil {
			shrinkErr = err
			return false
		}
		return hasInvariant(violations, invariant)
	})
	if shrinkErr != nil {
		return Finding{}, shrinkErr
	}
	violations, ev, err := f.Evaluate(min)
	if err != nil {
		return Finding{}, err
	}
	if !hasInvariant(violations, invariant) {
		// The shrinker only accepts failing candidates, so the minimum
		// must still fail; a flip here means the violation itself is
		// nondeterministic — report it as the original schedule.
		min = s
		violations, ev, err = f.Evaluate(s)
		if err != nil {
			return Finding{}, err
		}
	}
	target := violations[0]
	for _, v := range violations {
		if v.Invariant == invariant {
			target = v
			break
		}
	}
	return Finding{
		Schedule:   min,
		Violations: violations,
		Repro: Repro{
			Schema:    ReproSchema,
			Invariant: target.Invariant,
			Detail:    target.Detail,
			Schedule:  min,
		},
		Dossier: buildDossier(min, ev.First, target),
	}, nil
}

func hasInvariant(violations []Violation, name string) bool {
	for _, v := range violations {
		if v.Invariant == name {
			return true
		}
	}
	return false
}

// buildDossier records the minimal schedule's events on a dedicated
// flight ring, fires the invariant-violation trigger, and cuts a
// dossier carrying the violating run's final metrics and SLO
// snapshots — a self-contained, digest-verified artefact with no
// scratch paths anywhere inside.
func buildDossier(s Schedule, run *runOutcome, v Violation) flight.Dossier {
	rec := flight.New(256)
	for i, ev := range s.Events {
		rec.Record(time.Duration(i+1)*time.Second, "fuzz-event", string(ev.Class), ev.Site,
			int64(ev.Attempt), int64(ev.Intensity*1e6))
	}
	at := time.Duration(len(s.Events)+1) * time.Second
	rec.Trigger(TriggerInvariant, at, v.Invariant+": "+v.Detail)
	ds := rec.Dossiers(flight.Sources{Metrics: run.Result.Metrics, SLO: run.Result.SLO})
	return ds[len(ds)-1]
}
