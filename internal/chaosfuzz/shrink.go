package chaosfuzz

import "edgetune/internal/fault"

// Shrink delta-debugs a failing schedule down to a locally minimal
// one: the classic ddmin loop over the event list, where a candidate
// survives if stillFails reports the same invariant violation. The
// input schedule must fail; the result is 1-minimal — removing any
// single remaining event makes the violation disappear.
func Shrink(s Schedule, stillFails func(Schedule) bool) Schedule {
	events := append([]fault.Event(nil), s.Events...)
	granularity := 2
	for len(events) >= 2 {
		chunk := (len(events) + granularity - 1) / granularity
		reduced := false
		// Try removing each chunk (complement testing): a candidate
		// that still fails becomes the new schedule at base granularity.
		for start := 0; start < len(events); start += chunk {
			end := start + chunk
			if end > len(events) {
				end = len(events)
			}
			candidate := make([]fault.Event, 0, len(events)-(end-start))
			candidate = append(candidate, events[:start]...)
			candidate = append(candidate, events[end:]...)
			if len(candidate) == 0 {
				continue
			}
			if stillFails(Schedule{Seed: s.Seed, Mode: s.Mode, Events: candidate}) {
				events = candidate
				granularity = 2
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		if granularity >= len(events) {
			break // 1-minimal: no single event can be removed
		}
		granularity *= 2
		if granularity > len(events) {
			granularity = len(events)
		}
	}
	return Schedule{Seed: s.Seed, Mode: s.Mode, Events: events}
}
