package chaosfuzz

import (
	"fmt"
	"math"

	"edgetune/internal/autoscale"
	"edgetune/internal/obs/slo"
)

// Violation is one broken invariant: which one, and the evidence. The
// detail never contains scratch paths, so findings serialise
// identically across machines and runs.
type Violation struct {
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

// Evidence is everything the invariant registry judges for one
// schedule: the schedule itself, two independent executions of it, and
// (when the schedule qualifies) an unfaulted same-seed twin.
type Evidence struct {
	Schedule Schedule
	// First and Second are two fresh executions of the schedule — the
	// determinism invariant compares their full digests; every per-run
	// invariant reads First.
	First, Second *runOutcome
	// Twin is the unfaulted same-mode same-seed run, present only for
	// schedules whose classes promise outcome convergence.
	Twin *runOutcome
}

// Invariant is one registered system-wide property.
type Invariant struct {
	Name  string
	Check func(Evidence) []Violation
}

// Registry returns every invariant the fuzzer evaluates after each
// schedule, in deterministic order.
func Registry() []Invariant {
	return []Invariant{
		{Name: "store-verify", Check: checkStoreVerify},
		{Name: "determinism", Check: checkDeterminism},
		{Name: "twin-convergence", Check: checkTwinConvergence},
		{Name: "budget-conservation", Check: checkBudgetConservation},
		{Name: "ladder-monotonicity", Check: checkLadderMonotonicity},
		{Name: "slo-consistency", Check: checkSLOConsistency},
		{Name: "tenant-quota", Check: checkTenantQuota},
		{Name: "goroutine-leak", Check: checkGoroutineLeak},
	}
}

// EvaluateInvariants runs the whole registry over ev.
func EvaluateInvariants(ev Evidence) []Violation {
	var out []Violation
	for _, inv := range Registry() {
		out = append(out, inv.Check(ev)...)
	}
	return out
}

// checkStoreVerify asserts no durably-acked write is ever lost: every
// replica's store must reopen (recovery terminates and salvages), and
// — when the schedule injected no disk faults — must also scrub
// completely clean (no quarantined frames, no torn tail). Under disk
// faults torn tails are salvage-by-design, so only the reopen half
// applies.
func checkStoreVerify(ev Evidence) []Violation {
	var out []Violation
	disk := ev.Schedule.hasDiskEvents()
	for _, sc := range ev.First.Scrubs {
		if sc.ReopenErr != "" {
			out = append(out, Violation{
				Invariant: "store-verify",
				Detail:    fmt.Sprintf("replica %s failed recovery: %s", sc.Name, sc.ReopenErr),
			})
			continue
		}
		if !disk && !sc.Report.Clean {
			out = append(out, Violation{
				Invariant: "store-verify",
				Detail: fmt.Sprintf("replica %s not clean without disk faults: %d quarantined, %d torn bytes, snapshot valid=%v",
					sc.Name, sc.Report.WALQuarantined, sc.Report.WALTornBytes,
					!sc.Report.SnapshotPresent || sc.Report.SnapshotValid),
			})
		}
	}
	return out
}

// checkDeterminism asserts two fresh executions of the same schedule
// agree on the full outcome digest — every fault decision, trial
// record, metric cell, and dossier.
func checkDeterminism(ev Evidence) []Violation {
	if ev.Second == nil || ev.First.Digest == ev.Second.Digest {
		return nil
	}
	return []Violation{{
		Invariant: "determinism",
		Detail:    fmt.Sprintf("same schedule diverged: run1 %s != run2 %s", ev.First.Digest, ev.Second.Digest),
	}}
}

// checkTwinConvergence asserts a failover-only schedule converges to
// the unfaulted twin's answer: shard kills resume from replicated
// checkpoints, partitions and lag only perturb shipping, so the
// winning configuration and recommendation must match.
func checkTwinConvergence(ev Evidence) []Violation {
	if ev.Twin == nil || ev.First.RunErr != nil || ev.Twin.RunErr != nil {
		return nil
	}
	if ev.First.OutcomeDigest == ev.Twin.OutcomeDigest {
		return nil
	}
	return []Violation{{
		Invariant: "twin-convergence",
		Detail: fmt.Sprintf("faulted run answer %s != unfaulted twin %s (failedOver=%v)",
			ev.First.OutcomeDigest, ev.Twin.OutcomeDigest, ev.First.FailedOver),
	}}
}

// checkBudgetConservation recomputes the tuning bill from first
// principles — every trial's training cost plus its retry cost, plus
// the autoscaler's warm-up charges — and requires the reported totals
// to match: retries and warm-ups charged exactly once, nothing lost,
// nothing double-billed. Duration arithmetic is integer so the match
// is exact; energy sums floats in trial order, so it gets an epsilon.
func checkBudgetConservation(ev Evidence) []Violation {
	o := ev.First
	if o.RunErr != nil {
		return nil // an aborted job reports partial totals by design
	}
	res := &o.Result
	var wantDur int64
	var wantKJ float64
	for _, t := range res.Trials {
		wantDur += int64(t.TrainCost.Duration) + int64(t.RetryCost.Duration)
		wantKJ += (t.TrainCost.EnergyJ + t.InferTuning.EnergyJ + t.RetryCost.EnergyJ) / 1000
	}
	if a := res.Autoscale; a != nil {
		wantDur += int64(a.WarmupTime)
		wantKJ += a.WarmupEnergyJ / 1000
	}
	var out []Violation
	if int64(res.TuningDuration) != wantDur {
		out = append(out, Violation{
			Invariant: "budget-conservation",
			Detail: fmt.Sprintf("reported duration %dns != recomputed %dns (delta %dns over %d trials)",
				int64(res.TuningDuration), wantDur, int64(res.TuningDuration)-wantDur, len(res.Trials)),
		})
	}
	if tol := 1e-9 * math.Max(1, math.Abs(wantKJ)); math.Abs(res.TuningEnergyKJ-wantKJ) > tol {
		out = append(out, Violation{
			Invariant: "budget-conservation",
			Detail: fmt.Sprintf("reported energy %.12gkJ != recomputed %.12gkJ",
				res.TuningEnergyKJ, wantKJ),
		})
	}
	return out
}

// checkLadderMonotonicity asserts the degradation ladder never skips a
// rung: every transition in the mode path moves exactly one step from
// its predecessor (starting at normal), the reported step counters
// match the path, and the deepest mode is the path's maximum.
func checkLadderMonotonicity(ev Evidence) []Violation {
	a := ev.First.Result.Autoscale
	if a == nil {
		return nil
	}
	var out []Violation
	prev := autoscale.ModeNormal
	deepest := autoscale.ModeNormal
	degrades, recovers := 0, 0
	for i, m := range a.ModePath {
		switch m {
		case prev + 1:
			degrades++
		case prev - 1:
			recovers++
		default:
			out = append(out, Violation{
				Invariant: "ladder-monotonicity",
				Detail: fmt.Sprintf("transition %d jumped %s -> %s (must move one rung at a time)",
					i, prev, m),
			})
		}
		if m > deepest {
			deepest = m
		}
		prev = m
	}
	if a.DegradeSteps != degrades || a.RecoverSteps != recovers {
		out = append(out, Violation{
			Invariant: "ladder-monotonicity",
			Detail: fmt.Sprintf("step counters (%d degrade, %d recover) disagree with mode path (%d, %d)",
				a.DegradeSteps, a.RecoverSteps, degrades, recovers),
		})
	}
	if len(a.ModePath) > 0 && a.DeepestMode != deepest {
		out = append(out, Violation{
			Invariant: "ladder-monotonicity",
			Detail:    fmt.Sprintf("reported deepest mode %s != path maximum %s", a.DeepestMode, deepest),
		})
	}
	return out
}

// checkSLOConsistency asserts every objective's counters are
// internally consistent: errors never exceed events, the compliance
// fraction matches the counts, and no alert window counts more than
// the whole run.
func checkSLOConsistency(ev Evidence) []Violation {
	var out []Violation
	for _, pair := range []struct {
		scope string
		objs  []slo.ObjectiveReport
	}{
		{"job", ev.First.Result.SLO.Objectives},
		{"cluster", ev.First.ClusterSLO.Objectives},
	} {
		for _, o := range pair.objs {
			if o.Errors < 0 || o.Events < 0 || o.Errors > o.Events {
				out = append(out, Violation{
					Invariant: "slo-consistency",
					Detail:    fmt.Sprintf("%s objective %s: %d errors over %d events", pair.scope, o.Name, o.Errors, o.Events),
				})
				continue
			}
			if o.Events > 0 {
				want := 1 - float64(o.Errors)/float64(o.Events)
				if math.Abs(o.GoodFraction-want) > 1e-9 {
					out = append(out, Violation{
						Invariant: "slo-consistency",
						Detail: fmt.Sprintf("%s objective %s: good fraction %.12g != 1 - %d/%d",
							pair.scope, o.Name, o.GoodFraction, o.Errors, o.Events),
					})
				}
			}
			for _, w := range o.Windows {
				if w.Errors > w.Events || w.Events > o.Events {
					out = append(out, Violation{
						Invariant: "slo-consistency",
						Detail: fmt.Sprintf("%s objective %s: window (%d/%d) exceeds run totals (%d/%d)",
							pair.scope, o.Name, w.Errors, w.Events, o.Errors, o.Events),
					})
				}
			}
		}
	}
	return out
}

// checkTenantQuota asserts the fabric's rejection accounting agrees
// with what the caller observed: a quota denial is counted exactly
// once, and a job that was admitted never shows tenant rejections —
// the quota was not silently exceeded or double-charged.
func checkTenantQuota(ev Evidence) []Violation {
	o := ev.First
	if ev.Schedule.Mode != ModeCluster {
		return nil
	}
	var want int64
	if o.QuotaDenied {
		want = 1
	}
	if o.Rejected != want {
		return []Violation{{
			Invariant: "tenant-quota",
			Detail: fmt.Sprintf("tenant %s: %d rejections recorded, caller observed %d denial(s)",
				fuzzTenant, o.Rejected, want),
		}}
	}
	return nil
}

// checkGoroutineLeak asserts the run shut everything down: after the
// settle period, the goroutine count returned to the pre-run baseline.
func checkGoroutineLeak(ev Evidence) []Violation {
	if ev.First.Leaked == 0 {
		return nil
	}
	return []Violation{{
		Invariant: "goroutine-leak",
		Detail:    fmt.Sprintf("%d goroutine(s) outlived the run", ev.First.Leaked),
	}}
}
