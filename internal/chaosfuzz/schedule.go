// Package chaosfuzz is a seeded explorer over the system's failure
// space, in the style of FoundationDB's simulation testing: instead of
// hand-written chaos scenarios it generates fault *schedules* — typed
// sequences of (class, site, trigger point, intensity) drawn from the
// full fault catalog — runs each through a real single-node or cluster
// tuning job, and evaluates a registry of system-wide invariants after
// every run: no lost durably-acked writes, same-seed digest
// convergence wherever the design promises it, budget conservation,
// tenant quotas, degradation-ladder monotonicity, SLO counter
// consistency, and zero goroutine leaks. When an invariant breaks, a
// delta-debugging shrinker minimizes the schedule and the fuzzer emits
// a replayable repro artefact: the minimal schedule plus seed, and a
// flight-recorder dossier of the violating run.
package chaosfuzz

import (
	"encoding/json"
	"fmt"
	"os"

	"edgetune/internal/fault"
)

// Execution modes a schedule targets.
const (
	// ModeSingle runs the schedule through a single-node tuning job on
	// a crash-consistent durable store (the disk classes live here).
	ModeSingle = "single"
	// ModeCluster runs it through a two-shard cluster with WAL-shipped
	// followers (the cluster classes live here; disk classes do not —
	// cluster replicas journal through the plain filesystem).
	ModeCluster = "cluster"
)

// Schedule is one machine-generated chaos scenario: the seed that
// makes the run (and every fault decision in it) deterministic, the
// execution mode, and the exact fault events to inject.
type Schedule struct {
	Seed   uint64        `json:"seed"`
	Mode   string        `json:"mode"`
	Events []fault.Event `json:"events"`
}

// clusterClasses only have decision points on the sharded dispatcher.
var clusterClasses = map[fault.Class]bool{
	fault.ShardKill:    true,
	fault.NetPartition: true,
	fault.FollowerLag:  true,
}

// diskClasses only have decision points on a fault-wrapped filesystem,
// which only the single-node runner mounts.
var diskClasses = map[fault.Class]bool{
	fault.DiskTornWrite: true,
	fault.DiskCrash:     true,
	fault.DiskBitFlip:   true,
	fault.DiskFull:      true,
	fault.DiskSlowFsync: true,
}

// Validate checks the schedule's mode, every event (through the same
// shared fault.CheckProbs/CheckNonNegative helpers the CLI's flag
// validation uses), and the mode/class routing: cluster classes need a
// cluster, disk classes need the single-node durable store.
func (s Schedule) Validate() error {
	if s.Mode != ModeSingle && s.Mode != ModeCluster {
		return fmt.Errorf("chaosfuzz: mode %q must be %q or %q", s.Mode, ModeSingle, ModeCluster)
	}
	probs := make([]fault.NamedValue, 0, len(s.Events))
	attempts := make([]fault.NamedValue, 0, len(s.Events))
	for i, ev := range s.Events {
		if err := ev.Validate(); err != nil {
			return fmt.Errorf("chaosfuzz: event %d: %w", i, err)
		}
		probs = append(probs, fault.NamedValue{Name: ev.String(), Value: ev.Intensity})
		attempts = append(attempts, fault.NamedValue{Name: ev.String(), Value: float64(ev.Attempt)})
		if s.Mode == ModeSingle && clusterClasses[ev.Class] {
			return fmt.Errorf("chaosfuzz: event %d: %s has no decision point in single mode", i, ev.Class)
		}
		if s.Mode == ModeCluster && diskClasses[ev.Class] {
			return fmt.Errorf("chaosfuzz: event %d: %s has no decision point in cluster mode (replica stores use the plain filesystem)", i, ev.Class)
		}
	}
	// Event.Validate already checked each value; rechecking through the
	// shared table-driven helpers keeps the fuzzer's schedule validation
	// and the CLI's flag validation on one code path.
	if err := fault.CheckProbs(probs); err != nil {
		return fmt.Errorf("chaosfuzz: %w", err)
	}
	if err := fault.CheckNonNegative(attempts); err != nil {
		return fmt.Errorf("chaosfuzz: %w", err)
	}
	return nil
}

// hasDiskEvents reports whether any event targets a disk class —
// schedules that may legitimately leave torn bytes behind for recovery
// to salvage.
func (s Schedule) hasDiskEvents() bool {
	for _, ev := range s.Events {
		if diskClasses[ev.Class] {
			return true
		}
	}
	return false
}

// failoverOnly reports whether every event is a cluster fabric class —
// the schedules for which the design promises same-seed outcome-digest
// convergence with an unfaulted twin (failover resumes from replicated
// checkpoints and converges; partition/lag only perturb shipping).
func (s Schedule) failoverOnly() bool {
	if len(s.Events) == 0 {
		return false
	}
	for _, ev := range s.Events {
		if !clusterClasses[ev.Class] {
			return false
		}
	}
	return true
}

// plans splits the schedule into the two injectors that consult it:
// the job-level plan (trial, device, store, autoscale, and disk
// classes — the single-node runner shares one injector config between
// the tuner and its fault filesystem) and the cluster fabric plan
// (shard kills and replication-link faults).
func (s Schedule) plans() (job, cluster *fault.Plan, err error) {
	var jobEvents, clusterEvents []fault.Event
	for _, ev := range s.Events {
		if clusterClasses[ev.Class] {
			clusterEvents = append(clusterEvents, ev)
		} else {
			jobEvents = append(jobEvents, ev)
		}
	}
	if job, err = fault.NewPlan(jobEvents); err != nil {
		return nil, nil, err
	}
	if cluster, err = fault.NewPlan(clusterEvents); err != nil {
		return nil, nil, err
	}
	return job, cluster, nil
}

// ReproSchema versions the repro artefact layout.
const ReproSchema = 1

// Repro is the replayable artefact the fuzzer emits for a finding: the
// minimal schedule plus the invariant it breaks. Corpus entries use
// the same format with an empty Invariant — schedules the system must
// survive cleanly.
type Repro struct {
	Schema    int      `json:"schema"`
	Invariant string   `json:"invariant,omitempty"`
	Detail    string   `json:"detail,omitempty"`
	Schedule  Schedule `json:"schedule"`
}

// MarshalRepro renders r as deterministic indented JSON with a
// trailing newline, defaulting the schema version.
func MarshalRepro(r Repro) ([]byte, error) {
	if r.Schema == 0 {
		r.Schema = ReproSchema
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteRepro writes r as deterministic indented JSON.
func WriteRepro(path string, r Repro) error {
	data, err := MarshalRepro(r)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadRepro loads and validates a repro artefact.
func ReadRepro(path string) (Repro, error) {
	var r Repro
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("chaosfuzz: parse %s: %w", path, err)
	}
	if r.Schema != ReproSchema {
		return r, fmt.Errorf("chaosfuzz: %s: unsupported repro schema %d (want %d)", path, r.Schema, ReproSchema)
	}
	if err := r.Schedule.Validate(); err != nil {
		return r, fmt.Errorf("chaosfuzz: %s: %w", path, err)
	}
	return r, nil
}
