package chaosfuzz

import (
	"fmt"
	"sort"
	"sync"

	"edgetune/internal/fault"
)

// Point is one discovered injection opportunity: a (class, site,
// attempt) tuple the system actually consulted the injector about
// during a clean run. Schedules are built from catalog points, so the
// fuzzer only ever plants faults where a decision exists.
type Point struct {
	Class   fault.Class `json:"class"`
	Site    string      `json:"site"`
	Attempt int         `json:"attempt"`
}

// retryClasses are classes whose site is re-consulted at a higher
// attempt number after the fault fires (trial retries, inference
// resubmissions, store write retries). A clean run only ever sees
// attempt 0 for these, so Discover synthesizes the retry attempts —
// planting a fault there exercises give-up-after-N paths.
var retryClasses = map[fault.Class]bool{
	fault.TrialCrash:     true,
	fault.TrialNaN:       true,
	fault.Straggler:      true,
	fault.DeviceFlap:     true,
	fault.DeviceBrownout: true,
	fault.StoreWrite:     true,
}

// Discover enumerates the fault catalog for one (mode, seed): it runs
// the schedule-free job once with every probability at zero and an
// observer on the injector, collecting every decision tuple the
// pipeline consulted. The result is sorted, so catalogs — and the
// schedules generated from them — are deterministic.
func Discover(r *Runner) ([]Point, error) {
	var mu sync.Mutex
	seen := make(map[Point]bool)
	observe := func(class fault.Class, site string, attempt int, fired bool) {
		mu.Lock()
		seen[Point{Class: class, Site: site, Attempt: attempt}] = true
		mu.Unlock()
	}
	out, err := r.run(Schedule{Seed: r.Seed, Mode: r.Mode}, observe)
	if err != nil {
		return nil, err
	}
	if out.RunErr != nil {
		return nil, fmt.Errorf("chaosfuzz: clean discovery run failed: %w", out.RunErr)
	}
	for p := range seen {
		if retryClasses[p.Class] && p.Attempt == 0 {
			seen[Point{Class: p.Class, Site: p.Site, Attempt: 1}] = true
			seen[Point{Class: p.Class, Site: p.Site, Attempt: 2}] = true
		}
	}
	points := make([]Point, 0, len(seen))
	for p := range seen {
		points = append(points, p)
	}
	sort.Slice(points, func(i, j int) bool {
		a, b := points[i], points[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Attempt < b.Attempt
	})
	return points, nil
}
