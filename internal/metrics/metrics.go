// Package metrics provides the small statistics toolkit the evaluation
// harness uses: percent error (Figure 15's metric), means, and
// box-and-whisker summaries.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// PercentError computes the paper's PE formula (§5.3):
// |empirical - estimated| / empirical × 100.
func PercentError(empirical, estimated float64) (float64, error) {
	if empirical == 0 {
		return 0, fmt.Errorf("metrics: empirical value is zero")
	}
	return math.Abs(empirical-estimated) / math.Abs(empirical) * 100, nil
}

// Mean returns the arithmetic mean; it is 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Quantile returns the q-th quantile (0 <= q <= 1) by linear
// interpolation over the sorted sample. A NaN observation is rejected:
// NaN has no place in a total order, so its sorted position — and hence
// every quantile — would be unspecified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("metrics: quantile of empty sample")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("metrics: quantile %v out of [0,1]", q)
	}
	for _, x := range xs {
		if math.IsNaN(x) {
			return 0, fmt.Errorf("metrics: quantile of sample containing NaN")
		}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1], nil
	}
	// Exact hit: return the sample directly. Interpolating here would
	// evaluate ±Inf×0 = NaN when the unused neighbour is infinite.
	if frac == 0 {
		return sorted[lo], nil
	}
	v := sorted[lo]*(1-frac) + sorted[lo+1]*frac
	if math.IsNaN(v) {
		// Only reachable by interpolating between -Inf and +Inf.
		return 0, fmt.Errorf("metrics: quantile %v interpolates between -Inf and +Inf", q)
	}
	return v, nil
}

// BoxStats is a box-and-whiskers summary (Figure 15's representation).
type BoxStats struct {
	Min, Q1, Median, Q3, Max float64
}

// Box summarises a sample as box-and-whiskers statistics.
func Box(xs []float64) (BoxStats, error) {
	var b BoxStats
	if len(xs) == 0 {
		return b, fmt.Errorf("metrics: box stats of empty sample")
	}
	var err error
	if b.Min, err = Quantile(xs, 0); err != nil {
		return b, err
	}
	if b.Q1, err = Quantile(xs, 0.25); err != nil {
		return b, err
	}
	if b.Median, err = Quantile(xs, 0.5); err != nil {
		return b, err
	}
	if b.Q3, err = Quantile(xs, 0.75); err != nil {
		return b, err
	}
	b.Max, err = Quantile(xs, 1)
	return b, err
}

// String renders the summary in a compact single line.
func (b BoxStats) String() string {
	return fmt.Sprintf("min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f", b.Min, b.Q1, b.Median, b.Q3, b.Max)
}

// RelDiff returns (a-b)/b × 100, the signed percentage difference used
// by the Figure 14 overhead plots.
func RelDiff(a, b float64) (float64, error) {
	if b == 0 {
		return 0, fmt.Errorf("metrics: relative difference against zero")
	}
	return (a - b) / b * 100, nil
}
