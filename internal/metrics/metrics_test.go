package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPercentError(t *testing.T) {
	tests := []struct {
		name      string
		empirical float64
		estimated float64
		want      float64
		wantErr   bool
	}{
		{name: "exact", empirical: 10, estimated: 10, want: 0},
		{name: "under", empirical: 10, estimated: 8, want: 20},
		{name: "over", empirical: 10, estimated: 12, want: 20},
		{name: "zero empirical", empirical: 0, estimated: 5, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := PercentError(tt.empirical, tt.estimated)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if !tt.wantErr && math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("PE = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPercentErrorNonNegative(t *testing.T) {
	f := func(a, b float64) bool {
		if a == 0 || math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		pe, err := PercentError(a, b)
		return err == nil && pe >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	tests := []struct {
		q    float64
		want float64
	}{
		{q: 0, want: 1},
		{q: 0.5, want: 2.5},
		{q: 1, want: 4},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile sorted the caller's slice")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("out-of-range q accepted")
	}
}

func TestQuantileSingleElement(t *testing.T) {
	got, err := Quantile([]float64{7}, 0.99)
	if err != nil || got != 7 {
		t.Errorf("Quantile single = %v, %v", got, err)
	}
}

func TestBox(t *testing.T) {
	b, err := Box([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if b.Min != 1 || b.Median != 3 || b.Max != 5 {
		t.Errorf("Box = %+v", b)
	}
	if b.Q1 > b.Median || b.Median > b.Q3 {
		t.Error("box quartiles out of order")
	}
	if _, err := Box(nil); err == nil {
		t.Error("empty box accepted")
	}
	if b.String() == "" {
		t.Error("empty String()")
	}
}

func TestBoxOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		b, err := Box(xs)
		if err != nil {
			return false
		}
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelDiff(t *testing.T) {
	got, err := RelDiff(82, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != -18 {
		t.Errorf("RelDiff = %v, want -18", got)
	}
	if _, err := RelDiff(1, 0); err == nil {
		t.Error("zero baseline accepted")
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if _, err := Quantile([]float64{1, math.NaN(), 3}, 0.5); err == nil {
		t.Error("NaN observation accepted")
	}
	if _, err := Quantile([]float64{1, 2}, math.NaN()); err == nil {
		t.Error("NaN quantile accepted")
	}
	// An exact sorted position must return the sample itself even when
	// the unused interpolation neighbour is infinite (Inf×0 is NaN).
	got, err := Quantile([]float64{1, 2, math.Inf(1)}, 0.5)
	if err != nil || got != 2 {
		t.Errorf("median with +Inf neighbour = %v, %v; want 2", got, err)
	}
	got, err = Quantile([]float64{math.Inf(-1), 2, 3}, 0.5)
	if err != nil || got != 2 {
		t.Errorf("median with -Inf neighbour = %v, %v; want 2", got, err)
	}
	// Interpolating strictly between the two infinities is undefined.
	if _, err := Quantile([]float64{math.Inf(-1), math.Inf(1)}, 0.5); err == nil {
		t.Error("interpolation between -Inf and +Inf accepted")
	}
	// Same-sign infinities are a legitimate (if degenerate) sample.
	got, err = Quantile([]float64{math.Inf(1), math.Inf(1)}, 0.5)
	if err != nil || !math.IsInf(got, 1) {
		t.Errorf("quantile of {+Inf,+Inf} = %v, %v; want +Inf", got, err)
	}
}

func TestQuantileNeverNaN(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		q = math.Abs(math.Mod(q, 1))
		if math.IsNaN(q) {
			q = 0.5
		}
		v, err := Quantile(raw, q)
		if err != nil {
			return true // rejected inputs are fine; silent NaN is not
		}
		return !math.IsNaN(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentErrorScaleInvariant(t *testing.T) {
	f := func(empirical, estimated, scale float64) bool {
		if empirical == 0 || scale == 0 ||
			math.IsNaN(empirical) || math.IsNaN(estimated) || math.IsNaN(scale) ||
			math.IsInf(empirical, 0) || math.IsInf(estimated, 0) || math.IsInf(scale, 0) {
			return true
		}
		se, st := scale*empirical, scale*estimated
		if math.IsInf(se, 0) || math.IsInf(st, 0) || se == 0 || (st == 0 && estimated != 0) {
			return true // scaling overflowed or underflowed: outside the property's domain
		}
		a, err1 := PercentError(empirical, estimated)
		b, err2 := PercentError(se, st)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Max(math.Abs(b), 1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
