package metrics

import "testing"

// BenchmarkQuantile tracks the cost of the quantile used throughout
// the experiment harnesses (box stats, percentile rows). It allocates
// one sorted copy per call by design — the alloc report keeps that at
// exactly one, so an accidental second copy can't sneak in.
func BenchmarkQuantile(b *testing.B) {
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = float64((i * 7919) % 1024)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Quantile(xs, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMean pins the zero-allocation summary path.
func BenchmarkMean(b *testing.B) {
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = float64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mean(xs)
	}
}
