package workload

import (
	"strings"
	"testing"

	"edgetune/internal/device"
	"edgetune/internal/nn"
	"edgetune/internal/search"
	"edgetune/internal/sim"
)

func TestNewValidIDs(t *testing.T) {
	for _, id := range IDs() {
		w, err := New(id, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", id, err)
		}
		if w.ID != id {
			t.Errorf("ID = %q, want %q", w.ID, id)
		}
		if w.Split.Train.Len() == 0 || w.Split.Test.Len() == 0 {
			t.Errorf("%s: empty dataset", id)
		}
	}
	if _, err := New("CV", 1); err == nil {
		t.Error("unknown id did not error")
	}
}

func TestTrainSpaceShape(t *testing.T) {
	w := MustNew("IC", 1)
	withSys, err := w.TrainSpace(true)
	if err != nil {
		t.Fatal(err)
	}
	if withSys.Dim() != 3 {
		t.Errorf("onefold space dim = %d, want 3 (model + batch + gpus)", withSys.Dim())
	}
	without, err := w.TrainSpace(false)
	if err != nil {
		t.Fatal(err)
	}
	if without.Dim() != 2 {
		t.Errorf("hyper-only space dim = %d, want 2", without.Dim())
	}
}

func TestInferenceSpacePerDevice(t *testing.T) {
	w := MustNew("IC", 1)
	for _, dev := range device.All() {
		s, err := w.InferenceSpace(dev)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(1)
		for i := 0; i < 50; i++ {
			cfg := s.Sample(rng)
			if cfg[ParamCores] > float64(dev.Profile.MaxCores) {
				t.Fatalf("%s: sampled %v cores above device max", dev.Profile.Name, cfg[ParamCores])
			}
			if cfg[ParamFreq] < dev.Profile.MinFreqGHz || cfg[ParamFreq] > dev.Profile.MaxFreqGHz {
				t.Fatalf("%s: sampled frequency %v outside device range", dev.Profile.Name, cfg[ParamFreq])
			}
		}
	}
}

func TestBuildModelAllFamilies(t *testing.T) {
	tests := []struct {
		id  string
		cfg search.Config
	}{
		{id: "IC", cfg: search.Config{ParamLayers: 18}},
		{id: "IC", cfg: search.Config{ParamLayers: 50}},
		{id: "SR", cfg: search.Config{ParamEmbedDim: 64}},
		{id: "NLP", cfg: search.Config{ParamStride: 4}},
		{id: "OD", cfg: search.Config{ParamDropout: 0.3}},
	}
	rng := sim.NewRNG(1)
	for _, tt := range tests {
		w := MustNew(tt.id, 1)
		net, err := w.BuildModel(tt.cfg, rng)
		if err != nil {
			t.Fatalf("%s: %v", tt.id, err)
		}
		train, _, err := w.Data(tt.cfg)
		if err != nil {
			t.Fatal(err)
		}
		// The network must accept the dataset's feature width.
		out := net.Forward(train.X, false)
		if out.Rows != train.Len() || out.Cols != train.Classes {
			t.Errorf("%s: output shape %dx%d, want %dx%d", tt.id, out.Rows, out.Cols, train.Len(), train.Classes)
		}
	}
}

func TestBuildModelValidation(t *testing.T) {
	w := MustNew("IC", 1)
	rng := sim.NewRNG(1)
	if _, err := w.BuildModel(search.Config{}, rng); err == nil {
		t.Error("missing model param accepted")
	}
	if _, err := w.BuildModel(search.Config{ParamLayers: 19}, rng); err == nil {
		t.Error("invalid layer count accepted")
	}
}

func TestDepthChangesCapacity(t *testing.T) {
	w := MustNew("IC", 1)
	rng := sim.NewRNG(1)
	small, err := w.BuildModel(search.Config{ParamLayers: 18}, rng)
	if err != nil {
		t.Fatal(err)
	}
	large, err := w.BuildModel(search.Config{ParamLayers: 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if large.ParamCount() <= small.ParamCount() {
		t.Errorf("50-layer params %d not above 18-layer %d", large.ParamCount(), small.ParamCount())
	}
}

func TestSignatureReuseSemantics(t *testing.T) {
	w := MustNew("IC", 1)
	a := w.Signature(search.Config{ParamLayers: 34, ParamTrainBatch: 64, ParamGPUs: 1})
	b := w.Signature(search.Config{ParamLayers: 34, ParamTrainBatch: 512, ParamGPUs: 8})
	if a != b {
		t.Error("training batch/gpus must not change the architecture signature")
	}
	c := w.Signature(search.Config{ParamLayers: 50})
	if a == c {
		t.Error("different depth should change the signature")
	}
	if !strings.HasPrefix(a, "IC/") {
		t.Errorf("signature %q should be namespaced by workload", a)
	}
}

func TestNLPStrideRefeaturises(t *testing.T) {
	w := MustNew("NLP", 1)
	t1, _, err := w.Data(search.Config{ParamStride: 1})
	if err != nil {
		t.Fatal(err)
	}
	t8, _, err := w.Data(search.Config{ParamStride: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range t1.X.Data {
		if t1.X.Data[i] != t8.X.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("stride change did not alter features")
	}
	// The original dataset must not be mutated.
	t1again, _, err := w.Data(search.Config{ParamStride: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range t1.X.Data {
		if t1.X.Data[i] != t1again.X.Data[i] {
			t.Fatal("refeaturisation mutated the base dataset")
		}
	}
	if _, _, err := w.Data(search.Config{ParamStride: 99}); err == nil {
		t.Error("out-of-range stride accepted")
	}
}

func TestPaperCost(t *testing.T) {
	tests := []struct {
		id       string
		cfgA     search.Config
		cfgB     search.Config
		wantGrow bool // cost(B) > cost(A)
	}{
		{id: "IC", cfgA: search.Config{ParamLayers: 18}, cfgB: search.Config{ParamLayers: 50}, wantGrow: true},
		{id: "SR", cfgA: search.Config{ParamEmbedDim: 32}, cfgB: search.Config{ParamEmbedDim: 128}, wantGrow: true},
		// Larger stride = fewer RNN steps = cheaper.
		{id: "NLP", cfgA: search.Config{ParamStride: 32}, cfgB: search.Config{ParamStride: 1}, wantGrow: true},
	}
	for _, tt := range tests {
		w := MustNew(tt.id, 1)
		fa, pa, err := w.PaperCost(tt.cfgA)
		if err != nil {
			t.Fatal(err)
		}
		fb, _, err := w.PaperCost(tt.cfgB)
		if err != nil {
			t.Fatal(err)
		}
		if fa <= 0 || pa <= 0 {
			t.Errorf("%s: non-positive paper cost", tt.id)
		}
		if tt.wantGrow && fb <= fa {
			t.Errorf("%s: FLOPs %v -> %v did not grow", tt.id, fa, fb)
		}
	}
	// OD: dropout does not change compute.
	w := MustNew("OD", 1)
	fa, _, _ := w.PaperCost(search.Config{ParamDropout: 0.1})
	fb, _, _ := w.PaperCost(search.Config{ParamDropout: 0.5})
	if fa != fb {
		t.Error("OD dropout changed the compute footprint")
	}
	if _, _, err := w.PaperCost(search.Config{}); err == nil {
		t.Error("missing model param accepted by PaperCost")
	}
}

// TestWorkloadsAreLearnable: every family must beat chance clearly after
// a short training run; otherwise accuracy cannot drive tuning.
func TestWorkloadsAreLearnable(t *testing.T) {
	configs := map[string]search.Config{
		"IC":  {ParamLayers: 34},
		"SR":  {ParamEmbedDim: 64},
		"NLP": {ParamStride: 1},
		"OD":  {ParamDropout: 0.2},
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			w := MustNew(id, 1)
			rng := sim.NewRNG(7)
			net, err := w.BuildModel(configs[id], rng)
			if err != nil {
				t.Fatal(err)
			}
			train, test, err := w.Data(configs[id])
			if err != nil {
				t.Fatal(err)
			}
			if _, err := nn.Train(net, train.X, train.Labels, nn.TrainConfig{
				Epochs: 6, BatchSize: 64, LR: 0.1, Momentum: 0.9, Shuffle: true,
			}, rng); err != nil {
				t.Fatal(err)
			}
			acc := net.Accuracy(test.X, test.Labels)
			chance := 1 / float64(test.Classes)
			if acc < 2.5*chance {
				t.Errorf("accuracy %.3f below 2.5x chance %.3f", acc, 2.5*chance)
			}
		})
	}
}

func TestTargetAccuracyInRange(t *testing.T) {
	for _, id := range IDs() {
		w := MustNew(id, 1)
		if tgt := w.TargetAccuracy(); tgt <= 0 || tgt >= 1 {
			t.Errorf("%s: target accuracy %v out of (0,1)", id, tgt)
		}
	}
}
