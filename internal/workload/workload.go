// Package workload defines the paper's four evaluation workloads
// (Table 1) as tunable model families over the synthetic datasets:
//
//	IC  — ResNet-style residual classifier on the CIFAR10 analogue,
//	      tuning the number of layers {18, 34, 50};
//	SR  — M5-style classifier on the Speech Commands analogue, tuning
//	      the embedded dimension {32, 64, 128};
//	NLP — RNN-style classifier on the AG News analogue, tuning the
//	      stride [1, 32] that subsamples the token sequence;
//	OD  — YOLO-style classifier on the COCO analogue, tuning the
//	      dropout rate [0.1, 0.5].
//
// Each family builds a genuinely trainable network for a hyperparameter
// assignment and reports the *paper-scale* FLOP/parameter footprint of
// the model it emulates, which the performance model uses to charge
// simulated runtime and energy.
package workload

import (
	"fmt"
	"math"

	"edgetune/internal/dataset"
	"edgetune/internal/device"
	"edgetune/internal/nn"
	"edgetune/internal/search"
	"edgetune/internal/sim"
)

// Parameter names shared across workloads.
const (
	// ParamTrainBatch is the training mini-batch size (§5.1: 32-512).
	ParamTrainBatch = "train_batch"
	// ParamGPUs is the training system parameter (§5.1: 1-8 GPUs).
	ParamGPUs = "gpus"
	// ParamInferBatch is the inference batch size (§5.1: 1-100).
	ParamInferBatch = "infer_batch"
	// ParamCores is the inference CPU-core count.
	ParamCores = "cores"
	// ParamFreq is the inference CPU frequency in GHz.
	ParamFreq = "freq_ghz"

	// Model hyperparameter names, one per workload (§5.1).
	ParamLayers   = "layers"
	ParamEmbedDim = "embed_dim"
	ParamStride   = "stride"
	ParamDropout  = "dropout"
)

// Workload couples a model family with its dataset and search spaces.
type Workload struct {
	// ID is the paper identifier: IC, SR, NLP, or OD.
	ID string
	// Task is the application domain.
	Task string
	// ModelFamily names the emulated architecture.
	ModelFamily string
	// Split holds the train/test data.
	Split dataset.Split
	// ModelParam is the single model hyperparameter this family tunes.
	ModelParam search.Param

	seed uint64
}

// IDs lists the workload identifiers in Table 1 order.
func IDs() []string { return []string{"IC", "SR", "NLP", "OD"} }

// New constructs a workload by paper ID with a deterministic seed.
func New(id string, seed uint64) (*Workload, error) {
	switch id {
	case "IC":
		return &Workload{
			ID: "IC", Task: "Image Classification", ModelFamily: "ResNet",
			Split:      dataset.NewImageClassification(seed),
			ModelParam: search.Param{Name: ParamLayers, Kind: search.Choice, Choices: []float64{18, 34, 50}},
			seed:       seed,
		}, nil
	case "SR":
		return &Workload{
			ID: "SR", Task: "Speech Recognition", ModelFamily: "M5",
			Split:      dataset.NewSpeech(seed),
			ModelParam: search.Param{Name: ParamEmbedDim, Kind: search.Choice, Choices: []float64{32, 64, 128}},
			seed:       seed,
		}, nil
	case "NLP":
		return &Workload{
			ID: "NLP", Task: "Natural Language Processing", ModelFamily: "RNN",
			Split:      dataset.NewNews(seed),
			ModelParam: search.Param{Name: ParamStride, Kind: search.Int, Min: 1, Max: 32},
			seed:       seed,
		}, nil
	case "OD":
		return &Workload{
			ID: "OD", Task: "Object Detection", ModelFamily: "YOLO",
			Split:      dataset.NewDetection(seed),
			ModelParam: search.Param{Name: ParamDropout, Kind: search.Float, Min: 0.1, Max: 0.5},
			seed:       seed,
		}, nil
	default:
		return nil, fmt.Errorf("workload: unknown id %q (want IC, SR, NLP, or OD)", id)
	}
}

// MustNew is New for tests and examples with known-good IDs; it panics
// on error.
func MustNew(id string, seed uint64) *Workload {
	w, err := New(id, seed)
	if err != nil {
		panic(err)
	}
	return w
}

// TrainSpace returns the joint space the Model Tuning Server explores:
// the model hyperparameter, the training batch size, and (when
// systemParams is true, EdgeTune's onefold mode) the GPU count.
func (w *Workload) TrainSpace(systemParams bool) (*search.Space, error) {
	params := []search.Param{
		w.ModelParam,
		{Name: ParamTrainBatch, Kind: search.Int, Min: 32, Max: 512, Log: true},
	}
	if systemParams {
		params = append(params, search.Param{Name: ParamGPUs, Kind: search.Int, Min: 1, Max: 8})
	}
	return search.NewSpace(params...)
}

// InferenceSpace returns the space the Inference Tuning Server explores
// on a device: inference batch size, core count, and CPU frequency.
func (w *Workload) InferenceSpace(dev device.Device) (*search.Space, error) {
	return search.NewSpace(
		search.Param{Name: ParamInferBatch, Kind: search.Int, Min: 1, Max: 100, Log: true},
		search.Param{Name: ParamCores, Kind: search.Int, Min: 1, Max: float64(dev.Profile.MaxCores)},
		search.Param{Name: ParamFreq, Kind: search.Float, Min: dev.Profile.MinFreqGHz, Max: dev.Profile.MaxFreqGHz},
	)
}

// Signature returns the architecture identity of a configuration: the
// workload plus its model hyperparameter. Inference-tuning results are
// reusable across configurations with equal signatures (§3.4: training
// batch size and epochs do not affect the inference phase).
func (w *Workload) Signature(cfg search.Config) string {
	return fmt.Sprintf("%s/%s=%g", w.ID, w.ModelParam.Name, cfg[w.ModelParam.Name])
}

// BuildModel constructs a trainable network for the configuration.
func (w *Workload) BuildModel(cfg search.Config, rng *sim.RNG) (*nn.Network, error) {
	if rng == nil {
		rng = sim.NewRNG(w.seed ^ 0xabcdef)
	}
	v, ok := cfg[w.ModelParam.Name]
	if !ok {
		return nil, fmt.Errorf("workload %s: config missing %q", w.ID, w.ModelParam.Name)
	}
	if !w.ModelParam.Contains(v) {
		return nil, fmt.Errorf("workload %s: %s=%v outside domain", w.ID, w.ModelParam.Name, v)
	}
	switch w.ID {
	case "IC":
		return w.buildResNet(int(v), rng)
	case "SR":
		return w.buildM5(int(v), rng)
	case "NLP":
		return w.buildRNN(rng)
	case "OD":
		return w.buildYOLO(v, rng)
	default:
		return nil, fmt.Errorf("workload: unknown id %q", w.ID)
	}
}

// resNetWidth is the hidden width of the residual trunk.
const resNetWidth = 32

func (w *Workload) buildResNet(layers int, rng *sim.RNG) (*nn.Network, error) {
	blocks := layers / 8 // 18 -> 2, 34 -> 4, 50 -> 6 residual blocks
	if blocks < 1 {
		blocks = 1
	}
	ls := []nn.Layer{nn.NewDense(dataset.ImageDim, resNetWidth, rng), nn.NewReLU()}
	for i := 0; i < blocks; i++ {
		ls = append(ls, nn.NewResidual(resNetWidth, rng))
	}
	ls = append(ls, nn.NewDense(resNetWidth, dataset.ImageClasses, rng))
	return nn.NewNetwork(ls...)
}

func (w *Workload) buildM5(embed int, rng *sim.RNG) (*nn.Network, error) {
	return nn.NewNetwork(
		nn.NewDense(dataset.SpeechDim, embed, rng),
		nn.NewReLU(),
		nn.NewDense(embed, embed, rng),
		nn.NewReLU(),
		nn.NewDense(embed, dataset.SpeechClasses, rng),
	)
}

func (w *Workload) buildRNN(rng *sim.RNG) (*nn.Network, error) {
	const hidden = 48
	return nn.NewNetwork(
		nn.NewDense(dataset.NewsVocab, hidden, rng),
		nn.NewTanh(),
		nn.NewDense(hidden, dataset.NewsClasses, rng),
	)
}

func (w *Workload) buildYOLO(dropout float64, rng *sim.RNG) (*nn.Network, error) {
	const hidden = 64
	d1, err := nn.NewDropout(dropout, rng.Split())
	if err != nil {
		return nil, err
	}
	d2, err := nn.NewDropout(dropout, rng.Split())
	if err != nil {
		return nil, err
	}
	return nn.NewNetwork(
		nn.NewDense(dataset.DetectDim, hidden, rng),
		nn.NewReLU(),
		d1,
		nn.NewDense(hidden, hidden, rng),
		nn.NewReLU(),
		d2,
		nn.NewDense(hidden, dataset.DetectClasses, rng),
	)
}

// Data returns the training and test datasets featurised for the
// configuration. Only the NLP workload re-featurises: its stride
// hyperparameter subsamples the token sequences.
func (w *Workload) Data(cfg search.Config) (train, test *dataset.Dataset, err error) {
	if w.ID != "NLP" {
		return w.Split.Train, w.Split.Test, nil
	}
	stride := int(cfg[ParamStride])
	if stride < 1 || stride > 32 {
		return nil, nil, fmt.Errorf("workload NLP: stride %d out of [1, 32]", stride)
	}
	return refeaturise(w.Split.Train, stride), refeaturise(w.Split.Test, stride), nil
}

func refeaturise(d *dataset.Dataset, stride int) *dataset.Dataset {
	out := &dataset.Dataset{
		Meta:    d.Meta,
		Labels:  d.Labels,
		Classes: d.Classes,
		Tokens:  d.Tokens,
		Vocab:   d.Vocab,
	}
	out.X = d.X.Clone()
	for i, seq := range d.Tokens {
		dataset.BagOfTokens(out.X.Row(i), seq, stride)
	}
	return out
}

// PaperCost reports the paper-scale per-sample forward FLOPs and
// parameter count of the emulated architecture for a configuration,
// used by the performance model. Values are calibrated to the published
// footprints of the real models (CIFAR-scale ResNets, M5, a word-level
// RNN, YOLOv3-class detector).
func (w *Workload) PaperCost(cfg search.Config) (flopsPerSample, params float64, err error) {
	v, ok := cfg[w.ModelParam.Name]
	if !ok {
		return 0, 0, fmt.Errorf("workload %s: config missing %q", w.ID, w.ModelParam.Name)
	}
	switch w.ID {
	case "IC":
		// ResNet-18-class: ~0.56 GFLOPs, ~11M params, scaling with depth.
		return v / 18 * 5.6e8, v / 18 * 11e6, nil
	case "SR":
		// M5-class: ~0.2-0.8 GFLOPs over the embedding sweep.
		return v * 6e6, v * 8e3, nil
	case "NLP":
		// RNN unrolled over seqLen/stride steps.
		steps := math.Ceil(dataset.NewsSeqLen / v)
		return steps * 6e6, 2e6, nil
	case "OD":
		// YOLOv3-class: dropout does not change the compute footprint.
		return 8e9, 62e6, nil
	default:
		return 0, 0, fmt.Errorf("workload: unknown id %q", w.ID)
	}
}

// TargetAccuracy is the model-accuracy goal used throughout the paper's
// evaluation (§2.3: "tuned to reach at least 80% model accuracy").
// Synthetic datasets keep the same goal for IC; the harder multi-class
// analogues use family-calibrated targets with the same role.
func (w *Workload) TargetAccuracy() float64 {
	// Targets are calibrated per synthetic analogue so that they are
	// reachable by multi-epoch training but not by any single-epoch
	// (dataset-budget) run — the regime the paper's corpora live in.
	switch w.ID {
	case "IC":
		return 0.80
	case "SR":
		return 0.90
	case "NLP":
		return 0.70
	case "OD":
		return 0.90
	default:
		return 0.80
	}
}
