// Package device models the edge inference devices of the paper's
// testbed (§2.1): an ARMv7 board, a Raspberry Pi 3 Model B+, and an
// Intel i7 mini-PC. Each device wraps a calibrated CPU performance
// profile; the tuning server *estimates* inference cost on these
// profiles (simulation mode, the design the paper settles on), while a
// perturbed "physical twin" stands in for the real device so the
// estimation error study of Figure 15 can be reproduced.
package device

import (
	"fmt"
	"sort"
	"time"

	"edgetune/internal/perfmodel"
	"edgetune/internal/sim"
)

// Device is an edge inference target.
type Device struct {
	Profile perfmodel.CPUProfile
}

// Names of the built-in testbed devices.
const (
	NameARMv7 = "armv7"
	NameRPi3  = "rpi3b+"
	NameI7    = "i7"
)

// ARMv7 returns the paper's ARMv7 rev 4 board: 4 cores, 4 GB RAM.
func ARMv7() Device {
	return Device{Profile: perfmodel.CPUProfile{
		Name:               NameARMv7,
		MaxCores:           4,
		FlopsPerCorePerGHz: 1.1e9,
		MinFreqGHz:         0.6,
		MaxFreqGHz:         2.0,
		MemBytesPerSec:     3.2e9,
		BytesPerFLOP:       0.42,
		BatchSetupSec:      0.012,
		MemBatchKnee:       28,
		MemPressureFactor:  1.0,
		IdlePowerW:         1.4,
		CorePowerW:         1.1,
	}}
}

// RPi3BPlus returns the paper's Raspberry Pi 3 Model B+: 4 cores, 1 GB
// RAM — the most memory-constrained device, with the earliest batching
// knee.
func RPi3BPlus() Device {
	return Device{Profile: perfmodel.CPUProfile{
		Name:               NameRPi3,
		MaxCores:           4,
		FlopsPerCorePerGHz: 0.7e9,
		MinFreqGHz:         0.6,
		MaxFreqGHz:         1.4,
		MemBytesPerSec:     2.2e9,
		BytesPerFLOP:       0.42,
		BatchSetupSec:      0.015,
		MemBatchKnee:       16,
		MemPressureFactor:  1.4,
		IdlePowerW:         1.9,
		CorePowerW:         1.3,
	}}
}

// I7 returns the paper's Intel i7-7567U mini-PC: the fastest device,
// 16 GB RAM, with the latest batching knee.
func I7() Device {
	return Device{Profile: perfmodel.CPUProfile{
		Name:               NameI7,
		MaxCores:           4,
		FlopsPerCorePerGHz: 4e9,
		MinFreqGHz:         1.2,
		MaxFreqGHz:         3.5,
		MemBytesPerSec:     1.2e10,
		BytesPerFLOP:       0.42,
		BatchSetupSec:      0.005,
		MemBatchKnee:       40,
		MemPressureFactor:  0.8,
		IdlePowerW:         2.0,
		CorePowerW:         3.5,
	}}
}

// ByName looks up a built-in device.
func ByName(name string) (Device, error) {
	switch name {
	case NameARMv7:
		return ARMv7(), nil
	case NameRPi3:
		return RPi3BPlus(), nil
	case NameI7:
		return I7(), nil
	default:
		return Device{}, fmt.Errorf("%w: %q", perfmodel.ErrUnknownDevice, name)
	}
}

// All returns the three testbed devices sorted by name.
func All() []Device {
	devs := []Device{ARMv7(), I7(), RPi3BPlus()}
	sort.Slice(devs, func(i, j int) bool { return devs[i].Profile.Name < devs[j].Profile.Name })
	return devs
}

// Estimate evaluates an inference configuration on the device's
// analytic profile — the tuning server's simulation mode.
func (d Device) Estimate(spec perfmodel.InferSpec) (perfmodel.InferResult, error) {
	return perfmodel.InferenceCost(spec, d.Profile)
}

// DefaultSpec returns a single-sample, all-cores, max-frequency
// configuration for a model, the configuration a user deploying without
// tuning would likely pick.
func (d Device) DefaultSpec(flopsPerSample, params float64) perfmodel.InferSpec {
	return perfmodel.InferSpec{
		FLOPsPerSample: flopsPerSample,
		Params:         params,
		BatchSize:      1,
		Cores:          d.Profile.MaxCores,
		FreqGHz:        d.Profile.MaxFreqGHz,
	}
}

// Perturbed derives this device's "physical twin": the same device with
// every model constant deterministically perturbed by up to ±maxSkew,
// standing in for the gap between the simulation profile and physical
// hardware. Figure 15 measures estimates against such a twin.
func (d Device) Perturbed(seed uint64, maxSkew float64) Device {
	rng := sim.NewRNG(seed ^ hashName(d.Profile.Name))
	skew := func(v float64) float64 { return v * (1 + rng.Range(-maxSkew, maxSkew)) }
	p := d.Profile
	p.Name = p.Name + "-physical"
	p.FlopsPerCorePerGHz = skew(p.FlopsPerCorePerGHz)
	p.MemBytesPerSec = skew(p.MemBytesPerSec)
	p.BytesPerFLOP = skew(p.BytesPerFLOP)
	p.BatchSetupSec = skew(p.BatchSetupSec)
	p.MemBatchKnee = skew(p.MemBatchKnee)
	p.MemPressureFactor = skew(p.MemPressureFactor)
	p.IdlePowerW = skew(p.IdlePowerW)
	p.CorePowerW = skew(p.CorePowerW)
	return Device{Profile: p}
}

// Measured wraps a device and adds per-measurement noise, emulating the
// run-to-run variance of collecting metrics on physical hardware.
type Measured struct {
	dev   Device
	rng   *sim.RNG
	noise float64
}

// NewMeasured creates a noisy measurement source over dev. noise is the
// relative standard deviation of each reading (e.g. 0.05 for ±5%).
func NewMeasured(dev Device, seed uint64, noise float64) (*Measured, error) {
	if noise < 0 || noise > 0.5 {
		return nil, fmt.Errorf("device: noise %v out of [0, 0.5]", noise)
	}
	return &Measured{dev: dev, rng: sim.NewRNG(seed), noise: noise}, nil
}

// Measure evaluates spec with multiplicative measurement noise applied
// to throughput and energy.
func (m *Measured) Measure(spec perfmodel.InferSpec) (perfmodel.InferResult, error) {
	r, err := m.dev.Estimate(spec)
	if err != nil {
		return r, err
	}
	jitter := func() float64 {
		f := 1 + m.rng.NormFloat64()*m.noise
		if f < 0.1 {
			f = 0.1
		}
		return f
	}
	r.Throughput *= jitter()
	r.EnergyPerSampleJ *= jitter()
	lat := jitter() * float64(r.BatchLatency)
	r.BatchLatency = time.Duration(lat)
	return r, nil
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
