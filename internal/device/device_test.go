package device

import (
	"errors"
	"math"
	"testing"

	"edgetune/internal/perfmodel"
)

func refSpec(d Device) perfmodel.InferSpec {
	return d.DefaultSpec(5.6e8, 11e6)
}

func TestByName(t *testing.T) {
	for _, name := range []string{NameARMv7, NameRPi3, NameI7} {
		d, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if d.Profile.Name != name {
			t.Errorf("profile name = %q, want %q", d.Profile.Name, name)
		}
	}
	if _, err := ByName("tpu"); !errors.Is(err, perfmodel.ErrUnknownDevice) {
		t.Errorf("unknown device error = %v, want ErrUnknownDevice", err)
	}
}

func TestAllSortedAndComplete(t *testing.T) {
	devs := All()
	if len(devs) != 3 {
		t.Fatalf("All() returned %d devices, want 3", len(devs))
	}
	for i := 1; i < len(devs); i++ {
		if devs[i-1].Profile.Name >= devs[i].Profile.Name {
			t.Error("All() not sorted by name")
		}
	}
}

// TestDeviceSpeedOrdering: the i7 must out-run the ARMv7, which must
// out-run the Pi, on the same model and configuration — the paper's
// testbed hierarchy.
func TestDeviceSpeedOrdering(t *testing.T) {
	tp := func(d Device) float64 {
		spec := refSpec(d)
		spec.BatchSize = 8
		spec.Cores = 4
		// Use each device's own max frequency.
		r, err := d.Estimate(spec)
		if err != nil {
			t.Fatal(err)
		}
		return r.Throughput
	}
	i7, arm, pi := tp(I7()), tp(ARMv7()), tp(RPi3BPlus())
	if !(i7 > arm && arm > pi) {
		t.Errorf("throughput ordering i7 %v > armv7 %v > rpi %v violated", i7, arm, pi)
	}
}

// TestMemoryConstrainedKnee: the Pi's batching sweet spot comes earlier
// than the i7's (1 GB vs 16 GB).
func TestMemoryConstrainedKnee(t *testing.T) {
	best := func(d Device) int {
		bestBatch, bestTp := 0, 0.0
		for batch := 1; batch <= 128; batch *= 2 {
			spec := refSpec(d)
			spec.BatchSize = batch
			r, err := d.Estimate(spec)
			if err != nil {
				t.Fatal(err)
			}
			if r.Throughput > bestTp {
				bestTp, bestBatch = r.Throughput, batch
			}
		}
		return bestBatch
	}
	if pi, i7 := best(RPi3BPlus()), best(I7()); pi >= i7 {
		t.Errorf("optimal batch: rpi %d should be below i7 %d", pi, i7)
	}
}

func TestDefaultSpec(t *testing.T) {
	d := I7()
	spec := refSpec(d)
	if spec.BatchSize != 1 {
		t.Errorf("default batch = %d, want 1 (single-sample inference)", spec.BatchSize)
	}
	if spec.Cores != d.Profile.MaxCores || spec.FreqGHz != d.Profile.MaxFreqGHz {
		t.Error("default spec should use all cores at max frequency")
	}
	if _, err := d.Estimate(spec); err != nil {
		t.Errorf("default spec must be valid: %v", err)
	}
}

func TestPerturbedDeterministicAndBounded(t *testing.T) {
	d := ARMv7()
	a := d.Perturbed(42, 0.15)
	b := d.Perturbed(42, 0.15)
	if a.Profile.FlopsPerCorePerGHz != b.Profile.FlopsPerCorePerGHz {
		t.Error("Perturbed not deterministic for same seed")
	}
	c := d.Perturbed(43, 0.15)
	if a.Profile.FlopsPerCorePerGHz == c.Profile.FlopsPerCorePerGHz {
		t.Error("Perturbed identical across different seeds")
	}
	ratio := a.Profile.FlopsPerCorePerGHz / d.Profile.FlopsPerCorePerGHz
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("perturbation ratio %v outside +/-15%%", ratio)
	}
	if a.Profile.Name == d.Profile.Name {
		t.Error("physical twin should be renamed")
	}
}

// TestEstimationErrorBounded: estimates vs the perturbed twin must stay
// within the paper's reported error band (at most ~20% for typical
// configurations; Figure 15 whiskers).
func TestEstimationErrorBounded(t *testing.T) {
	d := I7()
	twin := d.Perturbed(7, 0.1)
	var worst float64
	for batch := 1; batch <= 32; batch *= 2 {
		for cores := 1; cores <= 4; cores *= 2 {
			spec := refSpec(d)
			spec.BatchSize = batch
			spec.Cores = cores
			est, err := d.Estimate(spec)
			if err != nil {
				t.Fatal(err)
			}
			real, err := twin.Estimate(spec)
			if err != nil {
				t.Fatal(err)
			}
			pe := math.Abs(real.Throughput-est.Throughput) / real.Throughput * 100
			if pe > worst {
				worst = pe
			}
		}
	}
	if worst > 35 {
		t.Errorf("worst-case estimation error %.1f%%, want bounded (~Figure 15)", worst)
	}
}

func TestMeasuredNoise(t *testing.T) {
	d := I7()
	m, err := NewMeasured(d, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	spec := refSpec(d)
	base, err := d.Estimate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var deviated bool
	for i := 0; i < 10; i++ {
		r, err := m.Measure(spec)
		if err != nil {
			t.Fatal(err)
		}
		if r.Throughput <= 0 || r.EnergyPerSampleJ <= 0 {
			t.Fatal("noisy measurement produced non-positive metric")
		}
		if r.Throughput != base.Throughput {
			deviated = true
		}
		rel := math.Abs(r.Throughput-base.Throughput) / base.Throughput
		if rel > 0.3 {
			t.Errorf("measurement deviation %.2f implausibly large for 5%% noise", rel)
		}
	}
	if !deviated {
		t.Error("measurements never deviated: noise not applied")
	}
}

func TestMeasuredValidation(t *testing.T) {
	if _, err := NewMeasured(I7(), 1, -0.1); err == nil {
		t.Error("negative noise accepted")
	}
	if _, err := NewMeasured(I7(), 1, 0.9); err == nil {
		t.Error("excessive noise accepted")
	}
	m, _ := NewMeasured(I7(), 1, 0.05)
	bad := refSpec(I7())
	bad.Cores = 99
	if _, err := m.Measure(bad); err == nil {
		t.Error("invalid spec accepted by Measure")
	}
}
