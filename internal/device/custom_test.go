package device

import (
	"testing"

	"edgetune/internal/perfmodel"
)

func validCustom() perfmodel.CPUProfile {
	return perfmodel.CPUProfile{
		Name:               "jetson-like",
		MaxCores:           6,
		FlopsPerCorePerGHz: 2e9,
		MinFreqGHz:         0.8,
		MaxFreqGHz:         2.2,
		MemBytesPerSec:     6e9,
		IdlePowerW:         3,
		CorePowerW:         2,
	}
}

func TestCustomFillsDefaults(t *testing.T) {
	d, err := Custom(validCustom())
	if err != nil {
		t.Fatal(err)
	}
	p := d.Profile
	if p.BytesPerFLOP <= 0 || p.BatchSetupSec <= 0 || p.MemBatchKnee <= 0 || p.MemPressureFactor <= 0 {
		t.Errorf("defaults not filled: %+v", p)
	}
	// The resulting device must be usable end to end.
	r, err := d.Estimate(d.DefaultSpec(5.6e8, 11e6))
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput <= 0 {
		t.Error("custom device estimate implausible")
	}
}

func TestCustomValidation(t *testing.T) {
	mutate := []func(*perfmodel.CPUProfile){
		func(p *perfmodel.CPUProfile) { p.Name = "" },
		func(p *perfmodel.CPUProfile) { p.Name = NameI7 },
		func(p *perfmodel.CPUProfile) { p.MaxCores = 0 },
		func(p *perfmodel.CPUProfile) { p.FlopsPerCorePerGHz = 0 },
		func(p *perfmodel.CPUProfile) { p.MinFreqGHz = 0 },
		func(p *perfmodel.CPUProfile) { p.MaxFreqGHz = 0.1 },
		func(p *perfmodel.CPUProfile) { p.MemBytesPerSec = 0 },
		func(p *perfmodel.CPUProfile) { p.CorePowerW = 0 },
		func(p *perfmodel.CPUProfile) { p.IdlePowerW = -1 },
	}
	for i, m := range mutate {
		p := validCustom()
		m(&p)
		if _, err := Custom(p); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
}

func TestCustomKeepsExplicitModelFields(t *testing.T) {
	p := validCustom()
	p.BytesPerFLOP = 0.9
	p.MemBatchKnee = 12
	d, err := Custom(p)
	if err != nil {
		t.Fatal(err)
	}
	if d.Profile.BytesPerFLOP != 0.9 || d.Profile.MemBatchKnee != 12 {
		t.Error("explicit model fields overwritten by defaults")
	}
}
