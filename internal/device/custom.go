package device

import (
	"fmt"

	"edgetune/internal/perfmodel"
)

// Custom wraps a user-supplied CPU profile as a Device after
// validation, so deployments can tune for hardware beyond the paper's
// three testbed boards.
func Custom(p perfmodel.CPUProfile) (Device, error) {
	switch {
	case p.Name == "":
		return Device{}, fmt.Errorf("device: custom profile needs a name")
	case p.Name == NameARMv7 || p.Name == NameRPi3 || p.Name == NameI7:
		return Device{}, fmt.Errorf("device: name %q collides with a built-in device", p.Name)
	case p.MaxCores < 1:
		return Device{}, fmt.Errorf("device: %s: cores %d must be >= 1", p.Name, p.MaxCores)
	case p.FlopsPerCorePerGHz <= 0:
		return Device{}, fmt.Errorf("device: %s: compute rate must be positive", p.Name)
	case p.MinFreqGHz <= 0 || p.MaxFreqGHz < p.MinFreqGHz:
		return Device{}, fmt.Errorf("device: %s: invalid frequency range [%v, %v]", p.Name, p.MinFreqGHz, p.MaxFreqGHz)
	case p.MemBytesPerSec <= 0:
		return Device{}, fmt.Errorf("device: %s: memory bandwidth must be positive", p.Name)
	case p.IdlePowerW < 0 || p.CorePowerW <= 0:
		return Device{}, fmt.Errorf("device: %s: invalid power parameters", p.Name)
	}
	// Fill modelling defaults for the fields a datasheet does not give.
	if p.BytesPerFLOP <= 0 {
		p.BytesPerFLOP = 0.42
	}
	if p.BatchSetupSec <= 0 {
		p.BatchSetupSec = 0.008
	}
	if p.MemBatchKnee <= 0 {
		p.MemBatchKnee = 32
	}
	if p.MemPressureFactor <= 0 {
		p.MemPressureFactor = 1.0
	}
	return Device{Profile: p}, nil
}
