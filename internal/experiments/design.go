package experiments

import (
	"context"
	"fmt"
	"math"

	"edgetune/internal/batching"
	"edgetune/internal/budget"
	"edgetune/internal/core"
	"edgetune/internal/device"
	"edgetune/internal/perfmodel"
	"edgetune/internal/search"
	"edgetune/internal/workload"
)

var fig06Memo memo[Table]

// Fig06Pipelining reproduces Figure 6: the asynchronous overlap of the
// model and inference tuning servers. For each training trial of a
// small onefold run it reports the pipelined inference-tuning time and
// verifies containment (§3.3).
func Fig06Pipelining() (Table, error) {
	return fig06Memo.do(func() (Table, error) {
		res, err := core.Tune(context.Background(), core.Options{
			Workload:       workload.MustNew("IC", refWorkloadSeed),
			SystemParams:   true,
			InferenceAware: true,
			InitialConfigs: 3,
			Rungs:          3,
			MaxBrackets:    1,
			InferTrials:    16,
			Seed:           11,
		})
		if err != nil {
			return Table{}, err
		}
		t := Table{
			ID:     "Figure 6",
			Title:  "model/inference server pipelining: per-trial overlap",
			Header: []string{"trial", "rung", "train [m]", "inference tuning [m]", "source"},
		}
		for i, tr := range res.Trials {
			src := "inference server"
			if tr.InferCached {
				src = "historical store"
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(i + 1),
				fmt.Sprint(tr.Rung + 1),
				f2(tr.TrainCost.Duration.Minutes()),
				f2(tr.InferTuning.Duration.Minutes()),
				src,
			})
		}
		t.Notes = append(t.Notes,
			fmt.Sprintf("total pipelined inference tuning %.2f m hidden inside %.2f m of training; containment violations: %d",
				res.InferTuningDuration.Minutes(), res.TuningDuration.Minutes(), res.ContainmentViolations),
			fmt.Sprintf("historical-store hits/misses: %d/%d", res.CacheHits, res.CacheMisses))
		return t, nil
	})
}

var fig08Memo memo[Table]

// Fig08Batching reproduces Figure 8: the two multi-sample inference
// scenarios that require batch-size tuning.
func Fig08Batching() (Table, error) {
	return fig08Memo.do(func() (Table, error) {
		dev := device.I7()
		w := workload.MustNew("IC", refWorkloadSeed)
		flops, params, err := w.PaperCost(search.Config{workload.ParamLayers: 18})
		if err != nil {
			return Table{}, err
		}
		lat := func(batch int) (float64, float64, error) {
			r, err := dev.Estimate(perfmodel.InferSpec{
				FLOPsPerSample: flops,
				Params:         params,
				BatchSize:      batch,
				Cores:          dev.Profile.MaxCores,
				FreqGHz:        dev.Profile.MaxFreqGHz,
			})
			if err != nil {
				return 0, 0, err
			}
			return r.BatchLatency.Seconds(), r.EnergyPerSampleJ * float64(batch), nil
		}

		t := Table{
			ID:     "Figure 8",
			Title:  "multi-sample inference scenarios (i7, ResNet18-class model)",
			Header: []string{"scenario", "tuned parameter", "optimal", "mean response [ms]", "energy [J/sample]"},
		}

		srv := batching.Server{SamplesPerQuery: 64, PeriodSec: 5}
		sBest, err := srv.Optimal(lat)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			"server (64 samples @ fixed frequency)",
			"split batch",
			fmt.Sprint(sBest.Split),
			f1(sBest.ResponseSec * 1000),
			f3(sBest.EnergyPerQueryJ / 64),
		})

		ms := batching.MultiStream{LambdaPerSec: 40, Samples: 2000, Seed: 17}
		mBest, err := ms.OptimalBatch(lat, 32)
		if err != nil {
			return Table{}, err
		}
		single, err := ms.Simulate(lat, 1)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			"multi-stream (Poisson 40/s)",
			"aggregation cap",
			fmt.Sprint(mBest.BatchCap),
			f1(mBest.MeanResponseSec * 1000),
			f3(mBest.EnergyPerSampleJ),
		})
		t.Notes = append(t.Notes,
			fmt.Sprintf("without aggregation the multi-stream mean response is %.1f ms — batching improves it %.1fx",
				single.MeanResponseSec*1000, single.MeanResponseSec/mBest.MeanResponseSec))
		return t, nil
	})
}

var fig09Memo memo[Table]

// Fig09HierVsOnefold reproduces Figure 9's comparison: hierarchical
// two-tier tuning versus EdgeTune's onefold joint tuning.
func Fig09HierVsOnefold() (Table, error) {
	return fig09Memo.do(func() (Table, error) {
		opts := core.Options{
			Workload:       workload.MustNew("IC", refWorkloadSeed),
			SystemParams:   true,
			InferenceAware: true,
			InitialConfigs: 6,
			Rungs:          5,
			MaxBrackets:    1,
			InferTrials:    12,
			Seed:           13,
		}
		onefold, err := core.Tune(context.Background(), opts)
		if err != nil {
			return Table{}, err
		}
		opts.Workload = workload.MustNew("IC", refWorkloadSeed)
		hier, err := core.TuneHierarchical(context.Background(), opts)
		if err != nil {
			return Table{}, err
		}
		t := Table{
			ID:     "Figure 9",
			Title:  "hierarchical vs onefold tuning (IC workload)",
			Header: []string{"approach", "trials", "tuning [m]", "tuning [kJ]", "best accuracy"},
			Rows: [][]string{
				{"onefold (EdgeTune)", fmt.Sprint(onefold.TrialsRun), f1(onefold.TuningDuration.Minutes()), f1(onefold.TuningEnergyKJ), f3(onefold.BestAccuracy)},
				{"hierarchical", fmt.Sprint(hier.TrialsRun), f1(hier.TuningDuration.Minutes()), f1(hier.TuningEnergyKJ), f3(hier.BestAccuracy)},
			},
		}
		t.Notes = append(t.Notes, "onefold tunes hyper and system parameters jointly and avoids the hierarchical stage-2 re-sweep")
		return t, nil
	})
}

var fig10Memo memo[Table]

// Fig10SearchAlgos reproduces Figure 10: nine trials of grid, random,
// and BOHB search on a 2-D objective; BOHB's later trials concentrate
// in the promising region.
func Fig10SearchAlgos() (Table, error) {
	return fig10Memo.do(func() (Table, error) {
		space, err := search.NewSpace(
			search.Param{Name: "x", Kind: search.Float, Min: 0, Max: 1},
			search.Param{Name: "y", Kind: search.Float, Min: 0, Max: 1},
		)
		if err != nil {
			return Table{}, err
		}
		optimum := []float64{0.7, 0.3}
		obj := func(cfg search.Config) float64 {
			u := space.ToUnit(cfg)
			d := 0.0
			for i := range u {
				diff := u[i] - optimum[i]
				d += diff * diff
			}
			return d
		}

		const trials = 9
		run := func(s search.Sampler) (best float64, lastThird float64) {
			best = math.Inf(1)
			var tail float64
			for i := 0; i < trials; i++ {
				cfg := s.Sample()
				v := obj(cfg)
				s.Observe(search.Observation{Config: cfg, Score: v, Budget: 1})
				if v < best {
					best = v
				}
				if i >= trials-3 {
					tail += v
				}
			}
			return best, tail / 3
		}

		grid, err := search.NewGridSampler(space, 3, 100)
		if err != nil {
			return Table{}, err
		}
		rnd := search.NewRandomSampler(space, 23)
		tpe := search.NewTPESampler(space, 23, search.TPEOptions{MinObservations: 4})

		t := Table{
			ID:     "Figure 10",
			Title:  "search-algorithm behaviour over 9 trials on a 2-D objective",
			Header: []string{"algorithm", "best objective", "mean objective (last 3 trials)"},
		}
		for _, s := range []search.Sampler{grid, rnd, tpe} {
			best, tail := run(s)
			t.Rows = append(t.Rows, []string{s.Name(), f3(best), f3(tail)})
		}
		t.Notes = append(t.Notes, "BOHB's final trials concentrate on the promising region; grid and random do not adapt")
		return t, nil
	})
}

var fig11Memo memo[Table]

// Fig11BudgetFlow reproduces Figure 11: the per-iteration trial budgets
// of the epoch, dataset, and multi-budget strategies.
func Fig11BudgetFlow() (Table, error) {
	return fig11Memo.do(func() (Table, error) {
		t := Table{
			ID:     "Figure 11",
			Title:  "trial budget per iteration for the three budget strategies",
			Header: []string{"iteration", "epochs (epochs x frac)", "dataset (epochs x frac)", "multi (epochs x frac)"},
		}
		strategies := make(map[string]budget.Strategy, 3)
		for _, kind := range []string{budget.KindEpochs, budget.KindDataset, budget.KindMulti} {
			s, err := budget.New(kind)
			if err != nil {
				return Table{}, err
			}
			strategies[kind] = s
		}
		format := func(a budget.Allocation) string {
			return fmt.Sprintf("%d x %.0f%%", a.Epochs, a.DataFraction*100)
		}
		for it := 1; it <= 10; it++ {
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(it),
				format(strategies[budget.KindEpochs].At(it)),
				format(strategies[budget.KindDataset].At(it)),
				format(strategies[budget.KindMulti].At(it)),
			})
		}
		t.Notes = append(t.Notes, "multi-budget grows both dimensions simultaneously with independent caps (Algorithm 2)")
		return t, nil
	})
}
