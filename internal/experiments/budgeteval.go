package experiments

import (
	"context"
	"fmt"
	"sync"

	"edgetune/internal/budget"
	"edgetune/internal/core"
	"edgetune/internal/workload"
)

// tuneKey identifies a memoised EdgeTune run.
type tuneKey struct {
	workload string
	budget   string
	metric   core.Metric
}

var (
	tuneMu    sync.Mutex
	tuneCache = make(map[tuneKey]core.Result)
)

// edgeTuneRun executes (and memoises) an EdgeTune run at the
// comparison scale: tuning proceeds until the workload's target
// accuracy is reached (the paper's convergence criterion), bounded by
// three brackets of eight configurations.
func edgeTuneRun(id, budgetKind string, metric core.Metric) (core.Result, error) {
	key := tuneKey{workload: id, budget: budgetKind, metric: metric}
	tuneMu.Lock()
	if res, ok := tuneCache[key]; ok {
		tuneMu.Unlock()
		return res, nil
	}
	tuneMu.Unlock()

	res, err := core.Tune(context.Background(), core.Options{
		Workload:       workload.MustNew(id, refWorkloadSeed),
		BudgetKind:     budgetKind,
		Metric:         metric,
		SystemParams:   true,
		InferenceAware: true,
		StopAtTarget:   true,
		Seed:           21,
	})
	if err != nil {
		return res, fmt.Errorf("experiments: edgetune %s/%s/%s: %w", id, budgetKind, metric, err)
	}
	tuneMu.Lock()
	tuneCache[key] = res
	tuneMu.Unlock()
	return res, nil
}

var (
	convergenceMu    sync.Mutex
	convergenceCache = make(map[string]core.Result)
)

// convergenceRun executes a full-horizon run (~51 trials, no early
// stop) for the Figure 12 convergence study.
func convergenceRun(budgetKind string) (core.Result, error) {
	convergenceMu.Lock()
	if res, ok := convergenceCache[budgetKind]; ok {
		convergenceMu.Unlock()
		return res, nil
	}
	convergenceMu.Unlock()
	res, err := core.Tune(context.Background(), core.Options{
		Workload:       workload.MustNew("IC", refWorkloadSeed),
		BudgetKind:     budgetKind,
		SystemParams:   true,
		InferenceAware: true,
		Seed:           21,
	})
	if err != nil {
		return res, fmt.Errorf("experiments: convergence %s: %w", budgetKind, err)
	}
	convergenceMu.Lock()
	convergenceCache[budgetKind] = res
	convergenceMu.Unlock()
	return res, nil
}

var fig12Memo memo[Table]

// Fig12Convergence reproduces Figure 12: per-trial duration and
// accuracy over ~50 trials for the three budget strategies on the IC
// workload (ResNet18-class on the CIFAR10 analogue).
func Fig12Convergence() (Table, error) {
	return fig12Memo.do(func() (Table, error) {
		t := Table{
			ID:     "Figure 12",
			Title:  "trial duration and accuracy convergence over trials (IC workload, target 80%)",
			Header: []string{"trial", "epochs dur [m]", "epochs acc", "dataset dur [m]", "dataset acc", "multi dur [m]", "multi acc"},
		}
		kinds := []string{budget.KindEpochs, budget.KindDataset, budget.KindMulti}
		results := make(map[string]core.Result, len(kinds))
		for _, k := range kinds {
			res, err := convergenceRun(k)
			if err != nil {
				return Table{}, err
			}
			results[k] = res
		}
		maxTrials := 0
		for _, k := range kinds {
			if n := len(results[k].Trials); n > maxTrials {
				maxTrials = n
			}
		}
		for i := 0; i < maxTrials; i += 5 {
			row := []string{fmt.Sprint(i + 1)}
			for _, k := range kinds {
				trials := results[k].Trials
				if i < len(trials) {
					row = append(row, f1(trials[i].TrainCost.Duration.Minutes()), f3(trials[i].Accuracy))
				} else {
					row = append(row, "-", "-")
				}
			}
			t.Rows = append(t.Rows, row)
		}
		for _, k := range kinds {
			res := results[k]
			best, firstHit := 0.0, -1
			for i, tr := range res.Trials {
				if tr.Accuracy > best {
					best = tr.Accuracy
				}
				if firstHit < 0 && tr.Accuracy >= 0.8 {
					firstHit = i + 1
				}
			}
			hit := "never"
			if firstHit > 0 {
				hit = fmt.Sprintf("trial %d", firstHit)
			}
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: best accuracy %.3f, reached 80%% at %s, mean trial duration %.1f m",
				k, best, hit, res.TuningDuration.Minutes()/float64(res.TrialsRun)))
		}
		return t, nil
	})
}

var fig13Memo memo[Table]

// Fig13BudgetAll reproduces Figure 13: tuning duration, tuning energy,
// inference throughput, and inference energy for the three budget
// strategies across all four workloads.
func Fig13BudgetAll() (Table, error) {
	return fig13Memo.do(func() (Table, error) {
		t := Table{
			ID:     "Figure 13",
			Title:  "budget strategies across workloads: tuning cost and recommended-inference performance",
			Header: []string{"workload", "budget", "tuning [m]", "tuning [kJ]", "inf throughput [samples/s]", "inf energy [J/sample]", "max acc", "converged"},
		}
		for _, id := range workload.IDs() {
			for _, kind := range []string{budget.KindEpochs, budget.KindDataset, budget.KindMulti} {
				res, err := edgeTuneRun(id, kind, core.MetricRuntime)
				if err != nil {
					return Table{}, err
				}
				converged := "no"
				if res.ReachedTarget {
					converged = "yes"
				}
				t.Rows = append(t.Rows, []string{
					id, kind,
					f1(res.TuningDuration.Minutes()),
					f1(res.TuningEnergyKJ),
					f1(res.Recommendation.Throughput),
					f3(res.Recommendation.EnergyPerSampleJ),
					f3(res.MaxAccuracy),
					converged,
				})
			}
		}
		t.Notes = append(t.Notes,
			"among the budgets that reach the target accuracy, multi-budget tunes with the lowest runtime and energy; the dataset budget is cheap per trial but never converges",
			"the recommended inference configurations are near-identical across budgets, as the paper observes for IC")
		return t, nil
	})
}

// Fig13Shape exposes the Figure 13 aggregates the tests assert on.
type Fig13Shape struct {
	// DurationM and EnergyKJ are tuning cost by [workload][budget kind].
	DurationM map[string]map[string]float64
	EnergyKJ  map[string]map[string]float64
}

var fig13ShapeMemo memo[Fig13Shape]

// Fig13Aggregates returns the Figure 13 numbers in structured form.
func Fig13Aggregates() (Fig13Shape, error) {
	return fig13ShapeMemo.do(func() (Fig13Shape, error) {
		s := Fig13Shape{
			DurationM: make(map[string]map[string]float64),
			EnergyKJ:  make(map[string]map[string]float64),
		}
		for _, id := range workload.IDs() {
			s.DurationM[id] = make(map[string]float64)
			s.EnergyKJ[id] = make(map[string]float64)
			for _, kind := range []string{budget.KindEpochs, budget.KindDataset, budget.KindMulti} {
				res, err := edgeTuneRun(id, kind, core.MetricRuntime)
				if err != nil {
					return s, err
				}
				s.DurationM[id][kind] = res.TuningDuration.Minutes()
				s.EnergyKJ[id][kind] = res.TuningEnergyKJ
			}
		}
		return s, nil
	})
}
