package experiments

import (
	"strconv"
	"strings"
	"testing"

	"edgetune/internal/budget"
	"edgetune/internal/core"
	"edgetune/internal/workload"
)

// skipUnderRace exempts the full experiment reproductions from -race
// runs: they multiply dozens of complete tuning jobs by the detector's
// ~10-20x slowdown and blow the package test timeout, while all the
// concurrency they exercise is race-tested directly in internal/core.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("full experiment reproductions are too slow under the race detector")
	}
}

func TestAllExperimentsProduceTables(t *testing.T) {
	skipUnderRace(t)
	for _, exp := range All() {
		tab, err := exp.Run()
		if err != nil {
			t.Fatalf("%v: %v", exp.ID, err)
		}
		if tab.ID != exp.ID {
			t.Errorf("catalog ID %q != table ID %q", exp.ID, tab.ID)
		}
		if tab.ID == "" || tab.Title == "" {
			t.Errorf("table missing identity: %+v", tab)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", tab.ID)
		}
		for i, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Errorf("%s row %d: %d cells for %d columns", tab.ID, i, len(row), len(tab.Header))
			}
		}
		if !strings.Contains(tab.String(), tab.ID) {
			t.Errorf("%s: String() drops the ID", tab.ID)
		}
	}
}

// cell parses a numeric table cell.
func cell(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s[%d][%d] = %q is not numeric", tab.ID, row, col, tab.Rows[row][col])
	}
	return v
}

// TestFig02Shape: training cost grows with depth; inference throughput
// falls and J/img grows.
func TestFig02Shape(t *testing.T) {
	skipUnderRace(t)
	tab, err := Fig02ModelHyper()
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < len(tab.Rows); r++ {
		if cell(t, tab, r, 1) <= cell(t, tab, r-1, 1) {
			t.Error("training runtime not increasing with depth")
		}
		if cell(t, tab, r, 3) >= cell(t, tab, r-1, 3) {
			t.Error("inference throughput not decreasing with depth")
		}
		if cell(t, tab, r, 4) <= cell(t, tab, r-1, 4) {
			t.Error("inference J/img not increasing with depth")
		}
	}
}

// TestFig04Shape: at batch 32, 8 GPUs are ~2.2x slower than 1; at batch
// 1024 they are faster but energy grows.
func TestFig04Shape(t *testing.T) {
	skipUnderRace(t)
	tab, err := Fig04TrainSystem()
	if err != nil {
		t.Fatal(err)
	}
	// Rows: (32,1) (32,4) (32,8) (1024,1) (1024,4) (1024,8).
	small1, small8 := cell(t, tab, 0, 2), cell(t, tab, 2, 2)
	if ratio := small8 / small1; ratio < 1.8 || ratio > 3 {
		t.Errorf("batch-32 8-GPU slowdown = %.2f, want ~2.2", ratio)
	}
	big1, big8 := cell(t, tab, 3, 2), cell(t, tab, 5, 2)
	if big8 >= big1 {
		t.Error("batch-1024 multi-GPU did not speed up")
	}
	if cell(t, tab, 5, 3) <= cell(t, tab, 3, 3) {
		t.Error("batch-1024 8-GPU energy should exceed 1-GPU energy")
	}
}

// TestFig10Shape: BOHB's last trials concentrate near the optimum more
// than random and grid.
func TestFig10Shape(t *testing.T) {
	skipUnderRace(t)
	tab, err := Fig10SearchAlgos()
	if err != nil {
		t.Fatal(err)
	}
	// Rows: grid, random, bohb; column 2 = mean of last 3 trials.
	bohb := cell(t, tab, 2, 2)
	if bohb >= cell(t, tab, 0, 2) || bohb >= cell(t, tab, 1, 2) {
		t.Errorf("BOHB tail objective %.3f not below grid/random", bohb)
	}
}

// TestFig12Shape encodes the paper's Figure 12 narrative: the epoch
// budget converges within few trials at high per-trial cost; the
// dataset budget never reaches the target; multi-budget reaches it with
// far cheaper trials than the epoch budget.
func TestFig12Shape(t *testing.T) {
	skipUnderRace(t)
	if _, err := Fig12Convergence(); err != nil {
		t.Fatal(err)
	}
	epochs, err := convergenceRun(budget.KindEpochs)
	if err != nil {
		t.Fatal(err)
	}
	dataset, err := convergenceRun(budget.KindDataset)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := convergenceRun(budget.KindMulti)
	if err != nil {
		t.Fatal(err)
	}
	if !epochs.ReachedTarget {
		t.Error("epoch budget did not reach the 80% target")
	}
	if dataset.ReachedTarget {
		t.Error("dataset budget reached the target: single-epoch training should cap below it")
	}
	if !multi.ReachedTarget {
		t.Error("multi-budget did not reach the target")
	}
	meanTrial := func(r core.Result) float64 {
		return r.TuningDuration.Minutes() / float64(r.TrialsRun)
	}
	if meanTrial(multi) >= meanTrial(epochs) {
		t.Errorf("multi mean trial %.2f m not cheaper than epochs %.2f m",
			meanTrial(multi), meanTrial(epochs))
	}
	if dataset.MaxAccuracy >= 0.8 {
		t.Errorf("dataset budget max accuracy %.3f should stay below target", dataset.MaxAccuracy)
	}
}

// TestFig13Shape: among converged budgets, multi-budget has the lowest
// tuning duration and energy on every workload.
func TestFig13Shape(t *testing.T) {
	skipUnderRace(t)
	if _, err := Fig13BudgetAll(); err != nil {
		t.Fatal(err)
	}
	agg, err := Fig13Aggregates()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range workload.IDs() {
		multiD := agg.DurationM[id][budget.KindMulti]
		epochsD := agg.DurationM[id][budget.KindEpochs]
		if multiD >= epochsD {
			t.Errorf("%s: multi duration %.1f m not below epochs %.1f m", id, multiD, epochsD)
		}
		multiE := agg.EnergyKJ[id][budget.KindMulti]
		epochsE := agg.EnergyKJ[id][budget.KindEpochs]
		if multiE >= epochsE {
			t.Errorf("%s: multi energy %.1f kJ not below epochs %.1f kJ", id, multiE, epochsE)
		}
		// The paper highlights OD: roughly 50% reduction.
		if id == "OD" && multiD > 0.7*epochsD {
			t.Errorf("OD: multi %.1f m not at least ~30%% below epochs %.1f m", multiD, epochsD)
		}
	}
}

// TestFig14Shape: EdgeTune beats Tune by at least the paper's 18%
// runtime and 50% energy on every workload.
func TestFig14Shape(t *testing.T) {
	skipUnderRace(t)
	if _, err := Fig14VsTune(); err != nil {
		t.Fatal(err)
	}
	for _, id := range workload.IDs() {
		et, err := edgeTuneRun(id, "", core.MetricRuntime)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := tuneBaselineRun(id)
		if err != nil {
			t.Fatal(err)
		}
		if et.TuningDuration.Minutes() > 0.82*tb.TuningDuration.Minutes() {
			t.Errorf("%s: EdgeTune %.1f m not >=18%% below Tune %.1f m",
				id, et.TuningDuration.Minutes(), tb.TuningDuration.Minutes())
		}
		// The paper reports ~53% energy reduction; this reproduction
		// measures 48-83% across workloads, so assert >=45%.
		if et.TuningEnergyKJ > 0.55*tb.TuningEnergyKJ {
			t.Errorf("%s: EdgeTune %.1f kJ not >=45%% below Tune %.1f kJ",
				id, et.TuningEnergyKJ, tb.TuningEnergyKJ)
		}
	}
}

// TestFig15Shape: median estimation error stays well under the paper's
// ~20% bound.
func TestFig15Shape(t *testing.T) {
	skipUnderRace(t)
	tp, en, err := Fig15Medians()
	if err != nil {
		t.Fatal(err)
	}
	if tp > 20 || en > 20 {
		t.Errorf("median estimation errors %.1f%%/%.1f%% exceed the paper's ~20%% bound", tp, en)
	}
}

// TestFig16Shape: §5.4's directional observation, asserted in aggregate
// across workloads (the paper itself reports only modest per-workload
// differences — at most 20% runtime and 29% energy): the runtime
// objective's recommendations have higher throughput, the energy
// objective's use less inference energy per sample.
func TestFig16Shape(t *testing.T) {
	skipUnderRace(t)
	if _, err := Fig16Objectives(); err != nil {
		t.Fatal(err)
	}
	var (
		tpRatioSum, enRatioSum float64
		n                      int
	)
	for _, id := range workload.IDs() {
		rt, err := edgeTuneRun(id, "", core.MetricRuntime)
		if err != nil {
			t.Fatal(err)
		}
		en, err := edgeTuneRun(id, "", core.MetricEnergy)
		if err != nil {
			t.Fatal(err)
		}
		if en.Recommendation.Throughput <= 0 || en.Recommendation.EnergyPerSampleJ <= 0 {
			t.Fatalf("%s: energy run lacks a recommendation", id)
		}
		tpRatioSum += rt.Recommendation.Throughput / en.Recommendation.Throughput
		enRatioSum += en.Recommendation.EnergyPerSampleJ / rt.Recommendation.EnergyPerSampleJ
		n++
	}
	if meanTp := tpRatioSum / float64(n); meanTp < 1 {
		t.Errorf("mean throughput ratio (runtime/energy objective) = %.2f, want >= 1", meanTp)
	}
	if meanEn := enRatioSum / float64(n); meanEn > 1 {
		t.Errorf("mean J/sample ratio (energy/runtime objective) = %.2f, want <= 1", meanEn)
	}
}

// TestFig17Shape: EdgeTune's deployed inference is at least as good as
// HyperPower's on every workload and strictly better somewhere, while
// HyperPower's tuning energy is lower (its aggressive termination).
func TestFig17Shape(t *testing.T) {
	skipUnderRace(t)
	tab, err := Fig17VsHyperPower()
	if err != nil {
		t.Fatal(err)
	}
	strictlyBetter := false
	for r := 0; r < len(tab.Rows); r += 2 {
		id := tab.Rows[r][0]
		etTp, hpTp := cell(t, tab, r, 4), cell(t, tab, r+1, 4)
		if etTp < hpTp {
			t.Errorf("%s: EdgeTune throughput %.1f below HyperPower %.1f", id, etTp, hpTp)
		}
		if etTp > hpTp*1.12 {
			strictlyBetter = true
		}
		etKJ, hpKJ := cell(t, tab, r, 3), cell(t, tab, r+1, 3)
		if hpKJ >= etKJ {
			t.Errorf("%s: HyperPower tuning energy %.1f kJ not below EdgeTune %.1f kJ", id, hpKJ, etKJ)
		}
	}
	if !strictlyBetter {
		t.Error("EdgeTune's inference advantage (>=12% somewhere) not observed")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tab, err := Table1Workloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Table 1 has %d rows, want 4", len(tab.Rows))
	}
	wantTrain := []string{"50000", "85511", "120000", "164000"}
	for i, row := range tab.Rows {
		if row[5] != wantTrain[i] {
			t.Errorf("row %d train files = %s, want %s", i, row[5], wantTrain[i])
		}
	}
}

func TestTable2EdgeTuneRow(t *testing.T) {
	tab, err := Table2Features()
	if err != nil {
		t.Fatal(err)
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "EdgeTune" {
		t.Fatalf("last row is %q, want EdgeTune", last[0])
	}
	for i, v := range last[1:] {
		if v != "y" {
			t.Errorf("EdgeTune column %d = %q, want y for every capability", i+1, v)
		}
	}
}

// TestBenchmarkAutoscaleDecisionShape: steady load is decision-free,
// surge and outage traces balance their ups/downs and ladder steps, and
// the decision digests are stable across regenerations.
func TestBenchmarkAutoscaleDecisionShape(t *testing.T) {
	tab, err := BenchmarkAutoscaleDecision()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("want 4 scenarios, got %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "steady" || tab.Rows[0][2] != "0" {
		t.Errorf("steady scenario emitted decisions: %v", tab.Rows[0])
	}
	for _, row := range tab.Rows[1:3] { // diurnal-surge, capacity-loss
		if row[3] != row[4] {
			t.Errorf("%s: scale-ups %s != scale-downs %s", row[0], row[3], row[4])
		}
		if row[5] != row[6] {
			t.Errorf("%s: degrades %s != recovers %s", row[0], row[5], row[6])
		}
		if row[7] != "critical-only" {
			t.Errorf("%s: never reached critical-only: %v", row[0], row)
		}
	}
	if guard := cell(t, tab, 3, 2); guard > 10 {
		t.Errorf("thrash-guard flapped: %.0f decisions", guard)
	}
	again, err := BenchmarkAutoscaleDecision()
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tab.Rows {
		if row[8] != again.Rows[i][8] {
			t.Errorf("%s digest unstable: %s vs %s", row[0], row[8], again.Rows[i][8])
		}
	}
}
