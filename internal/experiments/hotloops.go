package experiments

// Hot-loop benchmarks: one experiment per loop the ROADMAP's
// zero-alloc work targets — the nn mini-batch step, perfmodel
// evaluation, the admission/serve path, trace emission, WAL append,
// and cluster dispatch. Each runs the loop enough times for benchtab's
// wall-clock to be meaningful, reports deterministic rows, and stamps
// Table.AllocsPerOp/BytesPerOp from a prof.Measure probe so `tracetool
// check-bench` can gate allocation regressions per stage.

import (
	"context"
	"fmt"
	"os"
	"time"

	"edgetune/internal/cluster"
	"edgetune/internal/core"
	"edgetune/internal/device"
	"edgetune/internal/nn"
	"edgetune/internal/obs"
	"edgetune/internal/obs/prof"
	"edgetune/internal/search"
	"edgetune/internal/sim"
	"edgetune/internal/store"
	"edgetune/internal/tensor"
	"edgetune/internal/workload"
)

// probeRuns is the alloc-probe sample count shared by the hot-loop
// experiments: large enough to average out stray runtime allocations,
// small enough to keep benchtab fast.
const probeRuns = 32

var nnMiniBatchMemo memo[Table]

// BenchmarkNNMiniBatch measures one training mini-batch step — zero
// grads, forward, loss, backward, optimiser — on the 18-layer IC
// model at batch 32, the exact loop every simulated trial epoch runs.
func BenchmarkNNMiniBatch() (Table, error) {
	return nnMiniBatchMemo.do(func() (Table, error) {
		t := Table{
			ID:     "BenchmarkNNMiniBatch",
			Title:  "training mini-batch step (18-layer IC model, batch 32)",
			Header: []string{"layers", "batch", "steps", "final-loss"},
		}
		rng := sim.NewRNG(7)
		w, err := workload.New("IC", 7)
		if err != nil {
			return Table{}, err
		}
		net, err := w.BuildModel(search.Config{workload.ParamLayers: 18}, rng)
		if err != nil {
			return Table{}, err
		}
		x := tensor.Randn(32, 24, 1, rng)
		labels := make([]int, 32)
		for i := range labels {
			labels[i] = rng.Intn(10)
		}
		opt, err := nn.NewSGD(0.01, 0.9, 0)
		if err != nil {
			return Table{}, err
		}
		step := func() (float64, error) {
			net.ZeroGrad()
			logits := net.Forward(x, true)
			loss, grad, err := nn.SoftmaxCrossEntropy(logits, labels)
			if err != nil {
				return 0, err
			}
			net.Backward(grad)
			opt.Step(net.Params())
			return loss, nil
		}
		// Deterministic rows first: the loss trajectory is a fixed
		// function of the seed. The alloc probe runs after and its
		// extra steps never feed back into the rows.
		const steps = 24
		var loss float64
		for i := 0; i < steps; i++ {
			if loss, err = step(); err != nil {
				return Table{}, err
			}
		}
		t.Rows = append(t.Rows, []string{"18", "32", fmt.Sprint(steps), f3(loss)})
		p := prof.Measure("nn.minibatch-step", probeRuns, func() { step() })
		t.stampProbe(p.Runs, p.AllocsPerOp, p.BytesPerOp)
		t.Notes = []string{"alloc probe covers zero-grad + forward + loss + backward + SGD step"}
		return t, nil
	})
}

var perfmodelEvalMemo memo[Table]

// BenchmarkPerfmodelEval measures one analytical inference-cost
// evaluation per built-in device — the innermost call of every
// inference trial and every recommendation estimate.
func BenchmarkPerfmodelEval() (Table, error) {
	return perfmodelEvalMemo.do(func() (Table, error) {
		t := Table{
			ID:     "BenchmarkPerfmodelEval",
			Title:  "perfmodel inference-cost evaluation per device",
			Header: []string{"device", "batch", "throughput", "J/sample"},
		}
		devices := []device.Device{device.I7(), device.ARMv7(), device.RPi3BPlus()}
		for _, dev := range devices {
			spec := dev.DefaultSpec(5.6e8, 11e6)
			spec.BatchSize = 16
			r, err := dev.Estimate(spec)
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{
				dev.Profile.Name, "16", f1(r.Throughput), f3(r.EnergyPerSampleJ),
			})
		}
		spec := devices[0].DefaultSpec(5.6e8, 11e6)
		p := prof.Measure("perfmodel.infer-cost", probeRuns, func() {
			devices[0].Estimate(spec)
		})
		t.stampProbe(p.Runs, p.AllocsPerOp, p.BytesPerOp)
		return t, nil
	})
}

var admissionServeMemo memo[Table]

// BenchmarkAdmissionServe measures the inference server's full
// request path — submit, admission, serve, deliver — on the cache-hit
// fast path, where the request resolves without touching a device.
func BenchmarkAdmissionServe() (Table, error) {
	return admissionServeMemo.do(func() (Table, error) {
		t := Table{
			ID:     "BenchmarkAdmissionServe",
			Title:  "inference server admission + serve (cache-hit path)",
			Header: []string{"requests", "cache-hits", "errors"},
		}
		dev := device.I7()
		w, err := workload.New("IC", 3)
		if err != nil {
			return Table{}, err
		}
		space, err := w.InferenceSpace(dev)
		if err != nil {
			return Table{}, err
		}
		st := store.New()
		st.Put(store.Entry{Signature: "hotloop", Device: dev.Profile.Name,
			Config: search.Config{"batch": 16}, Throughput: 100})
		srv, err := core.NewInferenceServer(core.InferenceServerOptions{
			Device: dev, Space: space, Store: st, Seed: 3,
			RateLimit: 0, // unlimited: the probe measures serving, not throttling
		})
		if err != nil {
			return Table{}, err
		}
		defer srv.Close()
		ctx := context.Background()
		req := core.InferRequest{Signature: "hotloop", FLOPsPerSample: 5.6e8, Params: 11e6}
		const requests = 512
		hits, errs := 0, 0
		for i := 0; i < requests; i++ {
			out := <-srv.Submit(ctx, req)
			switch {
			case out.Err != nil:
				errs++
			case out.Cached:
				hits++
			}
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(requests), fmt.Sprint(hits), fmt.Sprint(errs)})
		p := prof.Measure("serve.cache-hit", probeRuns, func() {
			<-srv.Submit(ctx, req)
		})
		t.stampProbe(p.Runs, p.AllocsPerOp, p.BytesPerOp)
		return t, nil
	})
}

var traceEmitMemo memo[Table]

// BenchmarkTraceEmit measures span emission — root, attributed child,
// two ends — the tracer work every trial and every serve request pays
// when tracing is on.
func BenchmarkTraceEmit() (Table, error) {
	return traceEmitMemo.do(func() (Table, error) {
		t := Table{
			ID:     "BenchmarkTraceEmit",
			Title:  "trace emission (root + child span with attrs)",
			Header: []string{"spans", "per-emit"},
		}
		tracer := obs.NewTracer()
		var seq uint64
		emit := func() {
			seq++
			root := tracer.Root(0, "hotloop", seq, 0)
			sp := root.Child("stage", 0, obs.Int("i", int64(seq)))
			sp.End(time.Duration(seq))
			root.End(time.Duration(seq))
		}
		const emits = 100_000
		for i := 0; i < emits; i++ {
			emit()
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(emits * 2), "2"})
		p := prof.Measure("trace.emit", probeRuns, emit)
		t.stampProbe(p.Runs, p.AllocsPerOp, p.BytesPerOp)
		return t, nil
	})
}

var walAppendMemo memo[Table]

// BenchmarkWALAppend measures one durable-store put: encode, checksum,
// append, and fsync-policy bookkeeping on a real WAL file.
func BenchmarkWALAppend() (Table, error) {
	return walAppendMemo.do(func() (Table, error) {
		t := Table{
			ID:     "BenchmarkWALAppend",
			Title:  "durable store WAL append (put + checksummed journal write)",
			Header: []string{"records", "entries"},
		}
		dir, err := os.MkdirTemp("", "edgetune-walbench-*")
		if err != nil {
			return Table{}, err
		}
		defer os.RemoveAll(dir)
		dur, err := store.OpenDurable(store.DurableOptions{
			SnapshotPath: dir + "/store.json",
			// No compaction inside the probe window: a snapshot write
			// mid-measure would bill an entire rewrite to one put.
			SnapshotEvery: 1 << 30,
		})
		if err != nil {
			return Table{}, err
		}
		st := dur.Store()
		seq := 0
		put := func() {
			seq++
			st.Put(store.Entry{
				Signature: fmt.Sprintf("wal-%d", seq),
				Device:    "bench",
				Config:    search.Config{"batch": 16},
			})
		}
		const records = 2048
		for i := 0; i < records; i++ {
			put()
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(records), fmt.Sprint(st.Len())})
		p := prof.Measure("store.wal-append", probeRuns, put)
		t.stampProbe(p.Runs, p.AllocsPerOp, p.BytesPerOp)
		if err := dur.Close(); err != nil {
			return Table{}, err
		}
		return t, nil
	})
}

var clusterDispatchMemo memo[Table]

// BenchmarkClusterDispatch measures consistent-hash job routing — the
// ring lookup every cluster submission starts with — and reports the
// key distribution it produces, which is a pure function of the ring.
func BenchmarkClusterDispatch() (Table, error) {
	return clusterDispatchMemo.do(func() (Table, error) {
		t := Table{
			ID:     "BenchmarkClusterDispatch",
			Title:  "cluster dispatch (consistent-hash ring owner lookup)",
			Header: []string{"shard", "keys-of-100k"},
		}
		ring := cluster.NewRing(64)
		shards := []string{"shard0", "shard1", "shard2", "shard3"}
		for _, s := range shards {
			ring.Add(s)
		}
		counts := map[string]int{}
		const keys = 100_000
		for i := 0; i < keys; i++ {
			counts[ring.Owner(fmt.Sprintf("tenant-%d/job-%d", i%17, i))]++
		}
		for _, s := range shards {
			t.Rows = append(t.Rows, []string{s, fmt.Sprint(counts[s])})
		}
		key := "tenant-3/job-42"
		p := prof.Measure("cluster.dispatch", probeRuns, func() {
			ring.Owner(key)
		})
		t.stampProbe(p.Runs, p.AllocsPerOp, p.BytesPerOp)
		t.Notes = []string{"64 vnodes/shard keeps the 4-shard split within a few percent of uniform"}
		return t, nil
	})
}
