package experiments

import (
	"context"
	"fmt"
	"sync"

	"edgetune/internal/baselines"
	"edgetune/internal/core"
	"edgetune/internal/device"
	"edgetune/internal/metrics"
	"edgetune/internal/perfmodel"
	"edgetune/internal/search"
	"edgetune/internal/workload"
)

var (
	tuneBaselineMu    sync.Mutex
	tuneBaselineCache = make(map[string]core.Result)
)

// tuneBaselineRun executes (and memoises) the Tune baseline at the same
// evaluation scale as edgeTuneRun.
func tuneBaselineRun(id string) (core.Result, error) {
	tuneBaselineMu.Lock()
	if res, ok := tuneBaselineCache[id]; ok {
		tuneBaselineMu.Unlock()
		return res, nil
	}
	tuneBaselineMu.Unlock()
	res, err := baselines.RunTune(context.Background(), core.Options{
		Workload:     workload.MustNew(id, refWorkloadSeed),
		StopAtTarget: true,
		Seed:         21,
	})
	if err != nil {
		return res, fmt.Errorf("experiments: tune baseline %s: %w", id, err)
	}
	tuneBaselineMu.Lock()
	tuneBaselineCache[id] = res
	tuneBaselineMu.Unlock()
	return res, nil
}

var fig14Memo memo[Table]

// Fig14VsTune reproduces Figure 14: EdgeTune's tuning duration and
// energy relative to the Tune baseline (which lacks the inference
// tuning server and the multi-budget).
func Fig14VsTune() (Table, error) {
	return fig14Memo.do(func() (Table, error) {
		t := Table{
			ID:     "Figure 14",
			Title:  "EdgeTune vs Tune: tuning duration and energy (negative % = EdgeTune cheaper)",
			Header: []string{"workload", "EdgeTune [m]", "Tune [m]", "diff %", "EdgeTune [kJ]", "Tune [kJ]", "diff %"},
		}
		for _, id := range workload.IDs() {
			et, err := edgeTuneRun(id, "", core.MetricRuntime)
			if err != nil {
				return Table{}, err
			}
			tb, err := tuneBaselineRun(id)
			if err != nil {
				return Table{}, err
			}
			dDiff, err := metrics.RelDiff(et.TuningDuration.Minutes(), tb.TuningDuration.Minutes())
			if err != nil {
				return Table{}, err
			}
			eDiff, err := metrics.RelDiff(et.TuningEnergyKJ, tb.TuningEnergyKJ)
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{
				id,
				f1(et.TuningDuration.Minutes()), f1(tb.TuningDuration.Minutes()), f1(dDiff),
				f1(et.TuningEnergyKJ), f1(tb.TuningEnergyKJ), f1(eDiff),
			})
		}
		t.Notes = append(t.Notes,
			"the paper reports EdgeTune at least 18% faster and ~50% more energy-efficient than Tune; the multi-budget and cost-aware objective produce the same direction here")
		return t, nil
	})
}

var fig15Memo memo[Table]

// Fig15EstimationError reproduces Figure 15: the percent error of the
// Inference Tuning Server's estimates against measurements collected on
// the perturbed "physical twin" devices, as box-and-whisker statistics.
func Fig15EstimationError() (Table, error) {
	return fig15Memo.do(func() (Table, error) {
		w := workload.MustNew("IC", refWorkloadSeed)
		var tpErr, enErr []float64
		for _, dev := range device.All() {
			twin := dev.Perturbed(77, 0.10)
			measured, err := device.NewMeasured(twin, 78, 0.05)
			if err != nil {
				return Table{}, err
			}
			for _, layers := range []float64{18, 34, 50} {
				flops, params, err := w.PaperCost(search.Config{workload.ParamLayers: layers})
				if err != nil {
					return Table{}, err
				}
				for _, batch := range []int{1, 4, 16, 64} {
					for cores := 1; cores <= dev.Profile.MaxCores; cores *= 2 {
						spec := perfmodel.InferSpec{
							FLOPsPerSample: flops,
							Params:         params,
							BatchSize:      batch,
							Cores:          cores,
							FreqGHz:        dev.Profile.MaxFreqGHz,
						}
						est, err := dev.Estimate(spec)
						if err != nil {
							return Table{}, err
						}
						real, err := measured.Measure(spec)
						if err != nil {
							return Table{}, err
						}
						pe, err := metrics.PercentError(real.Throughput, est.Throughput)
						if err != nil {
							return Table{}, err
						}
						tpErr = append(tpErr, pe)
						pe, err = metrics.PercentError(real.EnergyPerSampleJ, est.EnergyPerSampleJ)
						if err != nil {
							return Table{}, err
						}
						enErr = append(enErr, pe)
					}
				}
			}
		}
		tpBox, err := metrics.Box(tpErr)
		if err != nil {
			return Table{}, err
		}
		enBox, err := metrics.Box(enErr)
		if err != nil {
			return Table{}, err
		}
		t := Table{
			ID:     "Figure 15",
			Title:  "percent error of inference estimates vs edge-device measurements",
			Header: []string{"metric", "min", "q1", "median", "q3", "max"},
			Rows: [][]string{
				{"throughput", f1(tpBox.Min), f1(tpBox.Q1), f1(tpBox.Median), f1(tpBox.Q3), f1(tpBox.Max)},
				{"energy", f1(enBox.Min), f1(enBox.Q1), f1(enBox.Median), f1(enBox.Q3), f1(enBox.Max)},
			},
			Notes: []string{fmt.Sprintf("median error: throughput %.1f%%, energy %.1f%% — the paper reports at most ~20%% for typical configurations", tpBox.Median, enBox.Median)},
		}
		return t, nil
	})
}

// Fig15Medians exposes the Figure 15 medians for tests.
func Fig15Medians() (tp, en float64, err error) {
	t, err := Fig15EstimationError()
	if err != nil {
		return 0, 0, err
	}
	_ = t
	// Recompute from the table rows to avoid caching extra state.
	if len(t.Rows) != 2 {
		return 0, 0, fmt.Errorf("experiments: malformed figure 15 table")
	}
	if _, err := fmt.Sscanf(t.Rows[0][3], "%f", &tp); err != nil {
		return 0, 0, err
	}
	if _, err := fmt.Sscanf(t.Rows[1][3], "%f", &en); err != nil {
		return 0, 0, err
	}
	return tp, en, nil
}

var fig16Memo memo[Table]

// Fig16Objectives reproduces Figure 16: the runtime-based versus
// energy-based objective functions across the four workloads.
func Fig16Objectives() (Table, error) {
	return fig16Memo.do(func() (Table, error) {
		t := Table{
			ID:     "Figure 16",
			Title:  "runtime vs energy objective: tuning cost and recommended-inference performance",
			Header: []string{"workload", "objective", "tuning [m]", "tuning [kJ]", "inf throughput", "inf [J/sample]"},
		}
		for _, id := range workload.IDs() {
			for _, metric := range []core.Metric{core.MetricRuntime, core.MetricEnergy} {
				res, err := edgeTuneRun(id, "", metric)
				if err != nil {
					return Table{}, err
				}
				t.Rows = append(t.Rows, []string{
					id, string(metric),
					f1(res.TuningDuration.Minutes()),
					f1(res.TuningEnergyKJ),
					f1(res.Recommendation.Throughput),
					f3(res.Recommendation.EnergyPerSampleJ),
				})
			}
		}
		t.Notes = append(t.Notes,
			"the energy objective trades a little tuning runtime for lower energy; runtime and energy correlate (§5.4)")
		return t, nil
	})
}

var fig17Memo memo[Table]

// Fig17VsHyperPower reproduces Figure 17: EdgeTune against HyperPower.
// HyperPower's aggressive early termination makes its tuning phase
// cheaper, but EdgeTune's inference-aware winner performs better at
// deployment. Both models are deployed with EdgeTune's recommended
// inference parameters, as the paper does for fairness.
func Fig17VsHyperPower() (Table, error) {
	return fig17Memo.do(func() (Table, error) {
		t := Table{
			ID:     "Figure 17",
			Title:  "EdgeTune vs HyperPower: tuning cost and deployed inference performance",
			Header: []string{"workload", "system", "tuning [m]", "tuning [kJ]", "inf throughput", "inf [J/sample]"},
		}
		dev := device.I7()
		for _, id := range workload.IDs() {
			et, err := edgeTuneRun(id, "", core.MetricRuntime)
			if err != nil {
				return Table{}, err
			}
			w := workload.MustNew(id, refWorkloadSeed)
			hp, err := baselines.RunHyperPower(context.Background(), baselines.HyperPowerOptions{
				Workload: w,
				Seed:     21,
			})
			if err != nil {
				return Table{}, err
			}
			etInf, err := baselines.EvaluateInference(w, et.BestConfig, et.Recommendation.Config, dev)
			if err != nil {
				return Table{}, err
			}
			hpInf, err := baselines.EvaluateInference(w, hp.BestConfig, et.Recommendation.Config, dev)
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{
				id, "EdgeTune",
				f1(et.TuningDuration.Minutes()), f1(et.TuningEnergyKJ),
				f1(etInf.Throughput), f3(etInf.EnergyPerSampleJ),
			})
			t.Rows = append(t.Rows, []string{
				id, "HyperPower",
				f1(hp.TuningCost.Duration.Minutes()), f1(hp.TuningCost.KJ()),
				f1(hpInf.Throughput), f3(hpInf.EnergyPerSampleJ),
			})
		}
		t.Notes = append(t.Notes,
			"HyperPower tunes cheaper (the paper: up to 39%/33% lower duration/energy) but EdgeTune's configurations deliver better inference (≥12% throughput, ~29% less energy in the paper)")
		return t, nil
	})
}
