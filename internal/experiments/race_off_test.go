//go:build !race

package experiments

// raceEnabled mirrors whether the binary was built with -race; the full
// experiment reproductions are skipped under the race detector (see
// skipUnderRace).
const raceEnabled = false
