// Package experiments regenerates every table and figure of the paper's
// evaluation as text tables: the motivation studies (Figures 1-5), the
// design illustrations (Figures 6-11), the budget evaluation (Figures
// 12-13), the baseline comparisons (Figures 14-17), and the catalogue
// tables (Tables 1-2). Each harness is deterministic and memoised so
// benchmark iterations beyond the first are free.
package experiments

import (
	"fmt"
	"strings"
	"sync"
)

// Table is a printable experiment result: the textual equivalent of one
// of the paper's figures.
type Table struct {
	// ID names the experiment ("Figure 2", "Table 1", ...).
	ID string
	// Title describes what the experiment shows.
	Title string
	// Header labels the columns.
	Header []string
	// Rows holds the data, row-major.
	Rows [][]string
	// Notes carries the shape conclusions checked against the paper.
	Notes []string
	// ProbeRuns, when positive, records that a prof.Measure probe ran
	// over the experiment's hot loop, and AllocsPerOp/BytesPerOp hold
	// its measured allocation cost (zero is a real measurement — an
	// allocation-free loop — not an absent probe). cmd/benchtab emits
	// them in -json for tracetool's alloc-regression gate; String()
	// leaves them out, because measured allocation values are not
	// byte-deterministic, unlike the rows.
	ProbeRuns   int
	AllocsPerOp float64
	BytesPerOp  float64
}

// Probe stamps an alloc probe's result onto the table.
func (t *Table) stampProbe(runs int, allocs, bytes float64) {
	t.ProbeRuns, t.AllocsPerOp, t.BytesPerOp = runs, allocs, bytes
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)

	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// memo caches a deterministic experiment so repeated benchmark
// iterations only pay once.
type memo[T any] struct {
	once sync.Once
	val  T
	err  error
}

func (m *memo[T]) do(f func() (T, error)) (T, error) {
	m.once.Do(func() { m.val, m.err = f() })
	return m.val, m.err
}

// f2 formats a float with two decimals; f1 and f3 vary precision.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
