package experiments

// Flight-recorder benchmark: the Record hot path runs on every span,
// admission verdict, breaker transition, and WAL append whenever the
// recorder is on, so "always-on" is only honest if a record costs a
// mutex round-trip and a slot copy — zero heap allocations. The alloc
// probe is gated at exactly 0 by `tracetool check-bench -alloc-tolerance
// 0 -alloc-slack 0`.

import (
	"fmt"
	"time"

	"edgetune/internal/obs/flight"
	"edgetune/internal/obs/prof"
)

var flightRecordMemo memo[Table]

// BenchmarkFlightRecord measures one flight-recorder event record into
// a preallocated ring, including the wrap path where new events
// overwrite the oldest slot.
func BenchmarkFlightRecord() (Table, error) {
	return flightRecordMemo.do(func() (Table, error) {
		t := Table{
			ID:     "BenchmarkFlightRecord",
			Title:  "flight recorder event record (preallocated ring slot)",
			Header: []string{"slots", "recorded", "dropped"},
		}
		const slots = 1024
		fr := flight.New(slots)
		seq := int64(0)
		record := func() {
			seq++
			fr.Record(time.Duration(seq)*time.Millisecond, flight.KindSpan, "hotloop", "serve", seq, 64)
		}
		// Deterministic rows first: fill the ring past capacity so the
		// steady state being measured is the overwrite path, exactly what
		// a long run's recorder spends its life doing.
		const records = 100_000
		for i := 0; i < records; i++ {
			record()
		}
		_, recorded, dropped := fr.Stats()
		t.Rows = append(t.Rows, []string{fmt.Sprint(slots), fmt.Sprint(recorded), fmt.Sprint(dropped)})
		p := prof.Measure("flight.record", probeRuns, record)
		t.stampProbe(p.Runs, p.AllocsPerOp, p.BytesPerOp)
		t.Notes = []string{"alloc probe gated at exactly 0 allocs/op: the ring never heap-allocates per event"}
		return t, nil
	})
}
