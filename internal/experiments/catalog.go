package experiments

import (
	"fmt"

	"edgetune/internal/workload"
)

var table1Memo memo[Table]

// Table1Workloads reproduces Table 1: the workload catalogue, including
// the paper-scale corpus sizes each synthetic analogue represents.
func Table1Workloads() (Table, error) {
	return table1Memo.do(func() (Table, error) {
		t := Table{
			ID:     "Table 1",
			Title:  "workloads used for experiments",
			Header: []string{"type", "id", "model", "dataset", "datasize", "train files", "test files", "synthetic train/test"},
		}
		for _, id := range workload.IDs() {
			w, err := workload.New(id, refWorkloadSeed)
			if err != nil {
				return Table{}, err
			}
			m := w.Split.Train.Meta
			t.Rows = append(t.Rows, []string{
				w.Task,
				w.ID,
				w.ModelFamily,
				m.Corpus,
				humanBytes(m.PaperSizeBytes),
				fmt.Sprint(m.PaperTrainFiles),
				fmt.Sprint(m.PaperTestFiles),
				fmt.Sprintf("%d/%d", w.Split.Train.Len(), w.Split.Test.Len()),
			})
		}
		return t, nil
	})
}

var table2Memo memo[Table]

// Table2Features reproduces Table 2: the feature matrix of related
// systems. Rows are reproduced from the paper; the EdgeTune row is the
// contract this repository implements (and its integration tests
// verify).
func Table2Features() (Table, error) {
	return table2Memo.do(func() (Table, error) {
		t := Table{
			ID:     "Table 2",
			Title:  "state-of-the-art systems related to hyper and system parameter tuning",
			Header: []string{"system", "cpu", "gpu", "hyper", "system", "architecture", "tuning", "training", "inference", "multi-sample inference"},
			Rows: [][]string{
				{"ChamNet", "y", "y", "n", "n", "y", "n", "y", "y", "n"},
				{"DPP-Net", "y", "y", "n", "n", "y", "n", "y", "y", "n"},
				{"FBNet", "y", "y", "n", "n", "y", "n", "y", "y", "n"},
				{"HyperPower", "n", "y", "y", "n", "y", "y", "y", "n", "n"},
				{"MnasNet", "y", "n", "n", "n", "y", "n", "y", "y", "n"},
				{"NeuralPower", "n", "y", "n", "n", "y", "y", "y", "n", "n"},
				{"ProxylessNAS", "y", "y", "n", "n", "y", "n", "y", "y", "n"},
				{"EdgeTune", "y", "y", "y", "y", "y", "y", "y", "y", "y"},
			},
			Notes: []string{"EdgeTune is the only system covering CPUs, GPUs, hyper/system/architecture parameters, all three objectives, and multi-sample inference"},
		}
		return t, nil
	})
}

// humanBytes renders a byte count the way Table 1 does.
func humanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/float64(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/float64(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/float64(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// Experiment pairs an experiment's identity with its harness, so
// callers can filter without executing.
type Experiment struct {
	// ID is the paper label ("Figure 13", "Table 1").
	ID string
	// Run regenerates the experiment (memoised).
	Run func() (Table, error)
}

// All returns every experiment in paper order, for cmd/benchtab.
func All() []Experiment {
	return []Experiment{
		{ID: "Figure 1", Run: Fig01PerfCounters},
		{ID: "Figure 2", Run: Fig02ModelHyper},
		{ID: "Figure 3", Run: Fig03TrainingHyper},
		{ID: "Figure 4", Run: Fig04TrainSystem},
		{ID: "Figure 5", Run: Fig05InferSystem},
		{ID: "Figure 6", Run: Fig06Pipelining},
		{ID: "Figure 8", Run: Fig08Batching},
		{ID: "Figure 9", Run: Fig09HierVsOnefold},
		{ID: "Figure 10", Run: Fig10SearchAlgos},
		{ID: "Figure 11", Run: Fig11BudgetFlow},
		{ID: "Figure 12", Run: Fig12Convergence},
		{ID: "Figure 13", Run: Fig13BudgetAll},
		{ID: "Figure 14", Run: Fig14VsTune},
		{ID: "Figure 15", Run: Fig15EstimationError},
		{ID: "Figure 16", Run: Fig16Objectives},
		{ID: "Figure 17", Run: Fig17VsHyperPower},
		{ID: "Table 1", Run: Table1Workloads},
		{ID: "Table 2", Run: Table2Features},
		{ID: "BenchmarkAutoscaleDecision", Run: BenchmarkAutoscaleDecision},
		{ID: "BenchmarkNNMiniBatch", Run: BenchmarkNNMiniBatch},
		{ID: "BenchmarkPerfmodelEval", Run: BenchmarkPerfmodelEval},
		{ID: "BenchmarkAdmissionServe", Run: BenchmarkAdmissionServe},
		{ID: "BenchmarkTraceEmit", Run: BenchmarkTraceEmit},
		{ID: "BenchmarkWALAppend", Run: BenchmarkWALAppend},
		{ID: "BenchmarkClusterDispatch", Run: BenchmarkClusterDispatch},
		{ID: "BenchmarkFlightRecord", Run: BenchmarkFlightRecord},
	}
}
