package experiments

import (
	"fmt"
	"time"

	"edgetune/internal/autoscale"
	"edgetune/internal/obs/prof"
)

var autoscaleMemo memo[Table]

// autoscaleTicks is the per-scenario trace length. Four scenarios at
// this length put the whole experiment around a million controller
// evaluations — enough wall time for cmd/benchtab's JSON output to
// track the decision loop's cost without slowing CI down.
const autoscaleTicks = 250_000

// BenchmarkAutoscaleDecision measures the autoscaling control loop on
// four synthetic load traces. Every trace is pure arithmetic in the
// tick index, so the decision counts and the FNV-1a decision digest in
// each row are bit-identical on every run; only the wall time recorded
// by benchtab varies with the machine.
func BenchmarkAutoscaleDecision() (Table, error) {
	return autoscaleMemo.do(func() (Table, error) {
		t := Table{
			ID:    "BenchmarkAutoscaleDecision",
			Title: "autoscaling control loop on synthetic load traces",
			Header: []string{
				"scenario", "ticks", "decisions", "up", "down",
				"degrade", "recover", "deepest", "digest",
			},
		}
		scenarios := []struct {
			name string
			// load yields (inSystem, outage) for a tick: the
			// admission-bounded depth seen by the controller and
			// whether the whole pool is unroutable at that tick.
			load func(i int) (int, bool)
		}{
			{"steady", func(i int) (int, bool) {
				return 8 + i%5, false // well under ScaleUpAt: no decisions
			}},
			{"diurnal-surge", func(i int) (int, bool) {
				// Triangular wave with a 5000-tick period: saturation
				// sweeps 0..100% and back, driving scale-up/scale-down
				// cycles through the hysteresis gate.
				p := i % 5000
				if p >= 2500 {
					p = 5000 - p
				}
				return p * 64 / 2500, false
			}},
			{"capacity-loss", func(i int) (int, bool) {
				// Total outage for 200 ticks out of every 20000: the
				// ladder must engage, ride it out, and release.
				return 10, i%20000 < 200
			}},
			{"thrash-guard", func(i int) (int, bool) {
				// Alternate hot and calm every tick: hysteresis must
				// hold the line instead of flapping.
				if i%2 == 0 {
					return 60, false
				}
				return 2, false
			}},
		}
		for _, sc := range scenarios {
			ctl, err := autoscale.New(autoscale.Config{
				Min:        1,
				Max:        4,
				Window:     32,
				WarmupTime: 30 * time.Second,
			})
			if err != nil {
				return Table{}, err
			}
			// The driver owns the simulated pool: one tick per second,
			// scale-ups become routable WarmupTime later, scale-downs
			// retire the youngest replica.
			replicas, readyAt := 1, []time.Duration{0}
			for i := 0; i < autoscaleTicks; i++ {
				at := time.Duration(i) * time.Second
				inSystem, outage := sc.load(i)
				healthy := 0
				if !outage {
					for _, r := range readyAt {
						if r <= at {
							healthy++
						}
					}
				}
				d, ok := ctl.Evaluate(autoscale.Signals{
					At:          at,
					InSystem:    inSystem,
					QueuedAhead: inSystem / 2,
					QueueLimit:  64,
					Replicas:    replicas,
					Healthy:     healthy,
					Good:        !outage && inSystem < 64,
				})
				if !ok {
					continue
				}
				switch {
				case d.Delta > 0:
					replicas++
					readyAt = append(readyAt, at+d.WarmupTime)
				case d.Delta < 0:
					replicas--
					readyAt = readyAt[:len(readyAt)-1]
				}
			}
			rep := ctl.Report()
			t.Rows = append(t.Rows, []string{
				sc.name,
				fmt.Sprint(rep.Ticks),
				fmt.Sprint(rep.Decisions),
				fmt.Sprint(rep.ScaleUps),
				fmt.Sprint(rep.ScaleDowns),
				fmt.Sprint(rep.DegradeSteps),
				fmt.Sprint(rep.RecoverSteps),
				rep.DeepestMode.String(),
				fmt.Sprintf("%016x", rep.Digest),
			})
		}
		t.Notes = []string{
			"steady traffic emits zero decisions; hysteresis holds thrash-guard to single-digit decisions over 250k alternating ticks",
			"every outage and every surge peak walks the ladder to critical-only and releases all rungs on recovery",
		}
		// Alloc probe over the steady-state decision path: a fresh
		// controller fed the no-decision signal, the shape nearly every
		// tick takes.
		probeCtl, err := autoscale.New(autoscale.Config{Min: 1, Max: 4, Window: 32})
		if err != nil {
			return Table{}, err
		}
		tick := 0
		p := prof.Measure("autoscale.evaluate", probeRuns, func() {
			tick++
			probeCtl.Evaluate(autoscale.Signals{
				At:       time.Duration(tick) * time.Second,
				InSystem: 8, QueueLimit: 64, Replicas: 1, Healthy: 1, Good: true,
			})
		})
		t.stampProbe(p.Runs, p.AllocsPerOp, p.BytesPerOp)
		return t, nil
	})
}
