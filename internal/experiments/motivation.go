package experiments

import (
	"fmt"

	"edgetune/internal/counters"
	"edgetune/internal/device"
	"edgetune/internal/perfmodel"
	"edgetune/internal/search"
	"edgetune/internal/workload"
)

// refWorkloadSeed seeds every motivation experiment.
const refWorkloadSeed = 1

// icTrainSpec is the reference training run of the motivation figures:
// the IC workload at paper scale, 10 epochs.
func icTrainSpec(layers float64, batch, gpus int) (perfmodel.TrainSpec, error) {
	w := workload.MustNew("IC", refWorkloadSeed)
	flops, params, err := w.PaperCost(search.Config{workload.ParamLayers: layers})
	if err != nil {
		return perfmodel.TrainSpec{}, err
	}
	return perfmodel.TrainSpec{
		FLOPsPerSample: flops,
		Params:         params,
		Samples:        w.Split.Train.PaperSamples(),
		Epochs:         10,
		BatchSize:      batch,
		GPUs:           gpus,
	}, nil
}

func icInferSpec(layers float64, batch, cores int, freq float64) (perfmodel.InferSpec, error) {
	w := workload.MustNew("IC", refWorkloadSeed)
	flops, params, err := w.PaperCost(search.Config{workload.ParamLayers: layers})
	if err != nil {
		return perfmodel.InferSpec{}, err
	}
	return perfmodel.InferSpec{
		FLOPsPerSample: flops,
		Params:         params,
		BatchSize:      batch,
		Cores:          cores,
		FreqGHz:        freq,
	}, nil
}

var fig01Memo memo[Table]

// Fig01PerfCounters reproduces Figure 1: perf-counter event rates during
// the forward phase of training versus inference, showing CPU-bound
// events consistent and memory-bound events divergent.
func Fig01PerfCounters() (Table, error) {
	return fig01Memo.do(func() (Table, error) {
		col, err := counters.NewCollector(refWorkloadSeed, 0.02)
		if err != nil {
			return Table{}, err
		}
		train, err := col.Collect(counters.TrainingForward, 1)
		if err != nil {
			return Table{}, err
		}
		infer, err := col.Collect(counters.Inference, 1)
		if err != nil {
			return Table{}, err
		}
		t := Table{
			ID:     "Figure 1",
			Title:  "performance counter events, training-forward vs inference (events/s)",
			Header: []string{"event", "class", "train-forward", "inference", "ratio"},
		}
		for i := range train {
			class := "cpu"
			if train[i].Event.Class == counters.MemoryBound {
				class = "memory"
			}
			t.Rows = append(t.Rows, []string{
				train[i].Event.Name,
				class,
				fmt.Sprintf("%.3g", train[i].Rate),
				fmt.Sprintf("%.3g", infer[i].Rate),
				f2(infer[i].Rate / train[i].Rate),
			})
		}
		cpu, mem, err := counters.Divergence(train, infer)
		if err != nil {
			return Table{}, err
		}
		t.Notes = append(t.Notes,
			fmt.Sprintf("mean |log10 ratio|: cpu-bound %.3f, memory-bound %.3f — memory-bound events diverge, motivating a dedicated inference server", cpu, mem))
		return t, nil
	})
}

var fig02Memo memo[Table]

// Fig02ModelHyper reproduces Figure 2: the effect of the number of
// layers on training (runtime, energy) and inference (throughput,
// J/img).
func Fig02ModelHyper() (Table, error) {
	return fig02Memo.do(func() (Table, error) {
		t := Table{
			ID:     "Figure 2",
			Title:  "model hyperparameter (layers) vs training and inference performance",
			Header: []string{"layers", "train runtime [m]", "train energy [kJ]", "inf throughput [imgs/s]", "inf energy [J/img]"},
		}
		gpu := perfmodel.TitanRTX()
		dev := device.I7()
		for _, layers := range []float64{18, 34, 50} {
			ts, err := icTrainSpec(layers, 256, 1)
			if err != nil {
				return Table{}, err
			}
			tc, err := perfmodel.TrainingCost(ts, gpu)
			if err != nil {
				return Table{}, err
			}
			is, err := icInferSpec(layers, 10, dev.Profile.MaxCores, dev.Profile.MaxFreqGHz)
			if err != nil {
				return Table{}, err
			}
			ir, err := dev.Estimate(is)
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.0f", layers),
				f1(tc.Duration.Minutes()),
				f1(tc.KJ()),
				f1(ir.Throughput),
				f3(ir.EnergyPerSampleJ),
			})
		}
		t.Notes = append(t.Notes,
			"throughput is inversely proportional to depth while J/img grows with it (the paper's Figure 2b trade-off)")
		return t, nil
	})
}

var fig03Memo memo[Table]

// Fig03TrainingHyper reproduces Figure 3: training batch size (256, 512,
// 1024) vs training cost, and inference batch size (1, 10, 100) vs
// inference performance.
func Fig03TrainingHyper() (Table, error) {
	return fig03Memo.do(func() (Table, error) {
		t := Table{
			ID:     "Figure 3",
			Title:  "training and inference batch-size sweeps",
			Header: []string{"phase", "batch", "runtime [m] / throughput [imgs/s]", "energy [kJ] / [J/img]"},
		}
		gpu := perfmodel.TitanRTX()
		for _, batch := range []int{256, 512, 1024} {
			ts, err := icTrainSpec(18, batch, 1)
			if err != nil {
				return Table{}, err
			}
			tc, err := perfmodel.TrainingCost(ts, gpu)
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{
				"train", fmt.Sprint(batch), f1(tc.Duration.Minutes()), f1(tc.KJ()),
			})
		}
		dev := device.I7()
		for _, batch := range []int{1, 10, 100} {
			is, err := icInferSpec(18, batch, dev.Profile.MaxCores, dev.Profile.MaxFreqGHz)
			if err != nil {
				return Table{}, err
			}
			ir, err := dev.Estimate(is)
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{
				"infer", fmt.Sprint(batch), f1(ir.Throughput), f3(ir.EnergyPerSampleJ),
			})
		}
		t.Notes = append(t.Notes,
			"batch 1024 is slower and more energy-hungry; 256 vs 512 similar runtime, different energy (Fig 3a)",
			"inference throughput peaks at the interior batch and decays past it (Fig 3b)")
		return t, nil
	})
}

var fig04Memo memo[Table]

// Fig04TrainSystem reproduces Figure 4: GPU count (1, 4, 8) at training
// batch 32 and 1024.
func Fig04TrainSystem() (Table, error) {
	return fig04Memo.do(func() (Table, error) {
		t := Table{
			ID:     "Figure 4",
			Title:  "training system parameters: GPUs x batch size",
			Header: []string{"batch", "gpus", "runtime [m]", "energy [kJ]"},
		}
		gpu := perfmodel.TitanRTX()
		for _, batch := range []int{32, 1024} {
			for _, g := range []int{1, 4, 8} {
				ts, err := icTrainSpec(18, batch, g)
				if err != nil {
					return Table{}, err
				}
				tc, err := perfmodel.TrainingCost(ts, gpu)
				if err != nil {
					return Table{}, err
				}
				t.Rows = append(t.Rows, []string{
					fmt.Sprint(batch), fmt.Sprint(g), f1(tc.Duration.Minutes()), f1(tc.KJ()),
				})
			}
		}
		t.Notes = append(t.Notes,
			"batch 32: more GPUs increase runtime (communication-bound, up to ~+120%) and energy",
			"batch 1024: runtime improves sublinearly while energy still grows")
		return t, nil
	})
}

var fig05Memo memo[Table]

// Fig05InferSystem reproduces Figure 5: CPU cores (1, 2, 4) at inference
// batch 1 and 10.
func Fig05InferSystem() (Table, error) {
	return fig05Memo.do(func() (Table, error) {
		t := Table{
			ID:     "Figure 5",
			Title:  "inference system parameters: CPU cores x batch size",
			Header: []string{"batch", "cores", "throughput [imgs/s]", "energy [J/img]", "power [W]"},
		}
		dev := device.I7()
		for _, batch := range []int{1, 10} {
			for _, cores := range []int{1, 2, 4} {
				is, err := icInferSpec(18, batch, cores, dev.Profile.MaxFreqGHz)
				if err != nil {
					return Table{}, err
				}
				ir, err := dev.Estimate(is)
				if err != nil {
					return Table{}, err
				}
				t.Rows = append(t.Rows, []string{
					fmt.Sprint(batch), fmt.Sprint(cores),
					f1(ir.Throughput), f3(ir.EnergyPerSampleJ), f2(ir.PowerW),
				})
			}
		}
		t.Notes = append(t.Notes,
			"batch 1: cores do not raise throughput but raise energy (Fig 5a)",
			"batch 10: 4 cores beat 2 by only a few percent at ~33% more power (Fig 5b)")
		return t, nil
	})
}
