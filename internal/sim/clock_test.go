package sim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	tests := []struct {
		name string
		adds []time.Duration
		want time.Duration
	}{
		{name: "single", adds: []time.Duration{time.Second}, want: time.Second},
		{name: "accumulates", adds: []time.Duration{time.Second, 2 * time.Second}, want: 3 * time.Second},
		{name: "ignores negative", adds: []time.Duration{time.Minute, -time.Second}, want: time.Minute},
		{name: "ignores zero", adds: []time.Duration{0, time.Millisecond}, want: time.Millisecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := NewClock()
			for _, d := range tt.adds {
				c.Advance(d)
			}
			if got := c.Now(); got != tt.want {
				t.Errorf("Now() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestClockMinutes(t *testing.T) {
	c := NewClock()
	c.Advance(90 * time.Second)
	if got := c.Minutes(); got != 1.5 {
		t.Errorf("Minutes() = %v, want 1.5", got)
	}
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.Advance(time.Hour)
	c.Reset()
	if got := c.Now(); got != 0 {
		t.Errorf("after Reset, Now() = %v, want 0", got)
	}
}

func TestClockSpan(t *testing.T) {
	c := NewClock()
	c.Advance(time.Minute)
	got := c.Span(func() { c.Advance(42 * time.Second) })
	if got != 42*time.Second {
		t.Errorf("Span = %v, want 42s", got)
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := NewClock()
	const (
		goroutines = 8
		perG       = 1000
	)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	want := time.Duration(goroutines*perG) * time.Microsecond
	if got := c.Now(); got != want {
		t.Errorf("concurrent Now() = %v, want %v", got, want)
	}
}

func TestClockAdvanceNeverDecreases(t *testing.T) {
	c := NewClock()
	f := func(steps []int64) bool {
		prev := c.Now()
		for _, s := range steps {
			c.Advance(time.Duration(s))
			now := c.Now()
			if now < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatMinutes(t *testing.T) {
	if got := FormatMinutes(150 * time.Second); got != "2.50m" {
		t.Errorf("FormatMinutes = %q, want 2.50m", got)
	}
}
