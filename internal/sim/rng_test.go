package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: streams diverge: %d vs %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical values", same)
	}
}

func TestFloat64Bounds(t *testing.T) {
	r := NewRNG(7)
	f := func(uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(9)
	for n := 1; n < 50; n++ {
		for i := 0; i < 20; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRangeBounds(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		v := r.Range(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Range(-3,5) = %v out of range", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(41)
	const (
		lambda = 4.0
		n      = 100000
	)
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64(lambda)
		if v < 0 {
			t.Fatal("negative exponential variate")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/lambda) > 0.01 {
		t.Errorf("exponential mean = %v, want ~%v", mean, 1/lambda)
	}
}

func TestExpFloat64PanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ExpFloat64(0) did not panic")
		}
	}()
	NewRNG(1).ExpFloat64(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(23)
	child := parent.Split()
	// Child stream should not equal the parent stream element-wise.
	equal := 0
	for i := 0; i < 32; i++ {
		if parent.Uint64() == child.Uint64() {
			equal++
		}
	}
	if equal > 0 {
		t.Errorf("%d/32 values equal between parent and split child", equal)
	}
}

func TestUniformityChiSquare(t *testing.T) {
	// Coarse 10-bucket chi-square check on Float64.
	r := NewRNG(29)
	const n = 100000
	var buckets [10]int
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	expected := float64(n) / 10
	var chi2 float64
	for _, c := range buckets {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom; 99.9th percentile ~27.9.
	if chi2 > 27.9 {
		t.Errorf("chi-square = %v, distribution looks non-uniform", chi2)
	}
}
