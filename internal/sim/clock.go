// Package sim provides the deterministic simulation substrate used by all
// EdgeTune experiments: a virtual clock that advances only when charged,
// and seeded random-number helpers.
//
// The paper reports tuning runtimes in minutes and energy in kilojoules
// measured on a physical testbed. This reproduction replaces wall-clock
// measurement with a simulated clock so that experiments are deterministic
// and complete in milliseconds while still reporting paper-scale units.
package sim

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Clock is a virtual clock. The zero value is a clock at time zero, ready
// to use. Clock is safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewClock returns a clock starting at time zero.
func NewClock() *Clock { return &Clock{} }

// Advance moves the clock forward by d. Negative durations are ignored so
// that model rounding noise can never run time backwards.
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	if c.now > math.MaxInt64-d {
		c.now = math.MaxInt64 // saturate instead of wrapping
	} else {
		c.now += d
	}
	c.mu.Unlock()
}

// Now reports the current simulated time as an offset from the start.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Minutes reports the current simulated time in minutes, the unit used by
// the paper's tuning-duration figures.
func (c *Clock) Minutes() float64 { return c.Now().Minutes() }

// Reset rewinds the clock to zero.
func (c *Clock) Reset() {
	c.mu.Lock()
	c.now = 0
	c.mu.Unlock()
}

// Span measures the simulated duration of fn: it records the clock before
// and after and returns the difference.
func (c *Clock) Span(fn func()) time.Duration {
	start := c.Now()
	fn()
	return c.Now() - start
}

// FormatMinutes renders a duration as fractional minutes, matching the
// axis labels of the paper's figures.
func FormatMinutes(d time.Duration) string {
	return fmt.Sprintf("%.2fm", d.Minutes())
}
