package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64). It is used everywhere randomness is needed so that every
// experiment is reproducible from a single seed and independent of the
// global math/rand state.
//
// The zero value is a valid generator seeded with 0; prefer NewRNG.
type RNG struct {
	state uint64
	// spare caches the second value of the Box-Muller pair.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64-bit value (SplitMix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// ExpFloat64 returns an exponential variate with rate lambda, used for
// Poisson arrival processes. It panics if lambda <= 0.
func (r *RNG) ExpFloat64(lambda float64) float64 {
	if lambda <= 0 {
		panic("sim: ExpFloat64 called with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / lambda
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent generator from the current one. The child
// stream is decorrelated from the parent by an extra mixing constant.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0x5851f42d4c957f2d)
}

// RNGState is the complete serializable state of an RNG, so a stream
// can be checkpointed and resumed at exactly the same position — a
// killed-and-restarted run must consume the same draws an uninterrupted
// run would.
type RNGState struct {
	State    uint64  `json:"state"`
	Spare    float64 `json:"spare,omitempty"`
	HasSpare bool    `json:"has_spare,omitempty"`
}

// State snapshots the generator.
func (r *RNG) State() RNGState {
	return RNGState{State: r.state, Spare: r.spare, HasSpare: r.hasSpare}
}

// SetState restores a snapshot taken with State.
func (r *RNG) SetState(s RNGState) {
	r.state = s.State
	r.spare = s.Spare
	r.hasSpare = s.HasSpare
}
