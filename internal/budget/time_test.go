package budget

import "testing"

func TestTimeStrategyConversion(t *testing.T) {
	// 100 s per epoch; caps 150 s .. 1000 s.
	s, err := NewTime(150, 1000, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		it         int
		wantEpochs int
	}{
		{it: 1, wantEpochs: 1},  // 150 s -> 1 epoch
		{it: 2, wantEpochs: 3},  // 300 s -> 3 epochs
		{it: 4, wantEpochs: 6},  // 600 s -> 6 epochs
		{it: 7, wantEpochs: 10}, // capped at 1000 s -> 10 epochs
		{it: 99, wantEpochs: 10},
		{it: 0, wantEpochs: 1}, // clamped iteration
	}
	for _, tt := range tests {
		a := s.At(tt.it)
		if a.Epochs != tt.wantEpochs {
			t.Errorf("At(%d).Epochs = %d, want %d", tt.it, a.Epochs, tt.wantEpochs)
		}
		if a.DataFraction != 1 {
			t.Errorf("At(%d).DataFraction = %v, want 1", tt.it, a.DataFraction)
		}
	}
	if s.Name() != "time" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestTimeStrategyAlwaysAtLeastOneEpoch(t *testing.T) {
	// Cap smaller than one epoch still yields a single epoch.
	s, err := NewTime(10, 50, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(1).Epochs; got != 1 {
		t.Errorf("tiny cap epochs = %d, want 1", got)
	}
}

func TestTimeStrategySaturation(t *testing.T) {
	s, err := NewTime(100, 400, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Saturated(1) {
		t.Error("saturated at iteration 1")
	}
	if !s.Saturated(4) {
		t.Error("not saturated at the time cap")
	}
	// Epoch ceiling saturates even before the time cap.
	s2, err := NewTime(100, 1e6, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Saturated(3) {
		t.Error("not saturated at the epoch ceiling")
	}
}

func TestTimeStrategyValidation(t *testing.T) {
	cases := []struct {
		min, max, spe float64
		maxE          int
	}{
		{0, 10, 1, 5},
		{10, 5, 1, 5},
		{1, 10, 0, 5},
		{1, 10, 1, 0},
	}
	for i, c := range cases {
		if _, err := NewTime(c.min, c.max, c.spe, c.maxE); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestTimeStrategyMonotone(t *testing.T) {
	s, err := NewTime(60, 3600, 120, 20)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for it := 1; it <= 80; it++ {
		e := s.At(it).Epochs
		if e < prev {
			t.Fatalf("epochs decreased at iteration %d: %d -> %d", it, prev, e)
		}
		prev = e
	}
}
